// Location-based game scenario (Tourality, Section 1): a team of players
// races to geographically defined spots. The game server keeps the team
// pointed at the spot minimizing the arrival time of the LAST teammate
// (MAX objective) — and, for a fuel-pooling variant, the spot minimizing
// the team's total travel (SUM objective, Section 6).
//
// Demonstrates the MAX/SUM objectives side by side and the buffering
// optimization under a demanding network-constrained workload.
//
// Build & run:  ./examples/tourality_game
#include <cstdio>

#include "sim/simulator.h"
#include "traj/generators.h"
#include "traj/road_network.h"

int main() {
  using namespace mpn;
  const Rect world({0, 0}, {40000, 40000});
  Rng rng(7117);

  // Game spots scattered across the map.
  PoiOptions popt;
  popt.world = world;
  popt.clusters = 15;
  popt.background_frac = 0.5;
  const std::vector<Point> spots = GeneratePois(4000, popt, &rng);
  const RTree tree = RTree::BulkLoad(spots);

  // Four players biking through the street network.
  const RoadNetwork streets =
      RoadNetwork::RandomGrid(world, 16, 16, 0.25, 0.15, 0.15, &rng);
  BrinkhoffGenerator::Options bopt;
  bopt.min_speed = 5.0;
  bopt.max_speed = 10.0;
  const BrinkhoffGenerator biker(&streets, bopt);
  const auto fleet = biker.GenerateGroupedFleet(4, 4, 3000.0, 2500, &rng);
  const std::vector<const Trajectory*> team = {&fleet[0], &fleet[1],
                                               &fleet[2], &fleet[3]};

  std::printf("Tourality: team of 4, %zu spots, %zu street nodes\n",
              spots.size(), streets.NodeCount());

  struct Mode {
    Objective obj;
    Method method;
    const char* label;
  };
  const Mode modes[] = {
      {Objective::kMax, Method::kTileD, "race mode (MAX, Tile-D)"},
      {Objective::kMax, Method::kTileDBuffered,
       "race mode (MAX, Tile-D-b, b=50)"},
      {Objective::kSum, Method::kTileD, "fuel-pool mode (SUM, Tile-D)"},
      {Objective::kSum, Method::kTileDBuffered,
       "fuel-pool mode (SUM, Tile-D-b, b=50)"},
  };
  for (const Mode& mode : modes) {
    SimOptions opt;
    opt.server.method = mode.method;
    opt.server.objective = mode.obj;
    opt.server.alpha = 20;
    opt.server.buffer_b = 50;
    Simulator sim(&spots, &tree, team, opt);
    const SimMetrics metrics = sim.Run();
    std::printf(
        "\n[%s]\n  target-spot changes: %zu  server contacts: %zu\n"
        "  packets: %zu  compute/update: %.3f ms  R-tree nodes/update: "
        "%.1f\n",
        mode.label, metrics.result_changes, metrics.updates,
        metrics.comm.TotalPackets(), metrics.AvgComputeMsPerUpdate(),
        metrics.updates == 0
            ? 0.0
            : static_cast<double>(metrics.msr.rtree_node_accesses) /
                  static_cast<double>(metrics.updates));
  }
  return 0;
}
