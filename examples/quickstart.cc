// Quickstart: the smallest end-to-end use of the library.
//
// Builds a POI index, computes the optimal meeting point for three users
// with both circular (Section 4) and tile-based (Section 5) safe regions,
// and shows what each user would receive from the server.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "index/rtree.h"
#include "mpn/circle_msr.h"
#include "mpn/compress.h"
#include "mpn/tile_msr.h"
#include "net/message.h"

int main() {
  using namespace mpn;

  // 1. The server indexes the points of interest with an R-tree.
  const std::vector<Point> pois = {
      {120, 80}, {300, 340}, {540, 260}, {220, 500}, {760, 420},
      {420, 120}, {640, 640}, {90, 350},  {480, 480}, {700, 150},
  };
  const RTree tree = RTree::BulkLoad(pois);

  // 2. A group of moving users registers a Meeting Point Notification query.
  const std::vector<Point> users = {{200, 200}, {380, 300}, {280, 420}};

  // 3a. Circular safe regions (Algorithm 1 / Theorem 1).
  const CircleMsrResult circles =
      ComputeCircleMsr(tree, users, Objective::kMax);
  std::printf("optimal meeting point: poi #%u at %s  (max-dist %.1f)\n",
              circles.po_id, circles.po.ToString().c_str(), circles.po_agg);
  std::printf("circular safe regions: common radius rmax = %.2f\n",
              circles.rmax);

  // 3b. Tile-based safe regions (Algorithm 3), directed ordering enabled.
  TileMsrConfig config;
  config.alpha = 12;
  config.split_level = 2;
  const MsrResult tiles = ComputeTileMsr(tree, users, Objective::kMax, config);
  for (size_t i = 0; i < users.size(); ++i) {
    const SafeRegion& r = tiles.regions[i];
    if (r.is_circle()) {
      std::printf("user %zu: circle region, radius %.2f\n", i,
                  r.circle().radius);
      continue;
    }
    const size_t values = RegionValueCount(r, /*compress_tiles=*/true);
    std::printf(
        "user %zu: %zu tiles, bounds %s, %zu values -> %zu packet(s)\n", i,
        r.tiles().size(), r.tiles().Bounds().ToString().c_str(), values,
        PacketModel{}.PacketsForValues(values));
  }

  // 4. Clients only contact the server after leaving their region.
  const Point moved{230, 230};  // user 0 wandered a bit
  std::printf("user 0 moved to %s: %s\n", moved.ToString().c_str(),
              tiles.regions[0].Contains(moved)
                  ? "still inside -> no message sent"
                  : "left region -> notifies server");
  return 0;
}
