// Road-network meetup (the paper's Section-8 extension, implemented):
// commuters on a city street network want the rendezvous point (by network
// distance) monitored continuously. Safe regions are metric balls over
// road segments — "a range search region over road segments", as the paper
// sketches for future work.
//
// Build & run:  ./examples/roadnet_meetup
#include <cstdio>

#include "netmpn/network_mpn.h"

int main() {
  using namespace mpn;
  const Rect world({0, 0}, {20000, 20000});
  Rng rng(808);
  const RoadNetwork streets =
      RoadNetwork::RandomGrid(world, 14, 14, 0.25, 0.12, 0.15, &rng);
  // Preprocess the street network once into a Contraction Hierarchies
  // index; every shortest-path query below then runs through it (with
  // results bit-identical to plain Dijkstra).
  const CHIndex ch = streets.BuildCHIndex();
  NetworkSpace space(&streets);
  space.AttachIndex(&ch);
  std::printf("street network: %zu nodes, %zu edges (+%zu CH shortcuts)\n",
              streets.NodeCount(), space.EdgeCount(), ch.ShortcutCount());

  // Cafes scattered along the streets.
  std::vector<EdgePosition> cafes;
  for (int i = 0; i < 300; ++i) cafes.push_back(RandomEdgePosition(space, &rng));
  const NetworkMpn engine(&space, cafes);

  // Three commuters driving shortest-path routes.
  std::vector<NetworkTrajectory> trajs;
  for (int i = 0; i < 3; ++i) {
    trajs.push_back(GenerateNetworkTrajectory(space, streets, 18.0, 2000, &rng));
  }
  const std::vector<const NetworkTrajectory*> group = {&trajs[0], &trajs[1],
                                                       &trajs[2]};

  // One snapshot computation, to show what a safe region looks like.
  std::vector<EdgePosition> now = {trajs[0].positions[0],
                                   trajs[1].positions[0],
                                   trajs[2].positions[0]};
  const NetworkMpnResult snap = engine.Compute(now, Objective::kMax);
  std::printf(
      "rendezvous cafe #%u (worst commuter drives %.0f m); runner-up at "
      "%.0f m\n",
      snap.po_index, snap.po_agg, snap.second_agg);
  std::printf("metric-ball safe regions (radius %.0f m):\n", snap.rmax);
  for (size_t i = 0; i < snap.regions.size(); ++i) {
    std::printf("  commuter %zu: %zu road segments, %.0f m of road covered\n",
                i, snap.regions[i].SegmentCount(),
                snap.regions[i].TotalLength());
  }

  // Continuous monitoring for both objectives.
  for (Objective obj : {Objective::kMax, Objective::kSum}) {
    const NetworkSimMetrics metrics =
        SimulateNetworkMpn(space, engine, group, obj);
    std::printf(
        "\n[%s objective] %zu timestamps: %zu server contacts (%.2f%%), "
        "%zu rendezvous changes, %zu region values shipped\n",
        ObjectiveName(obj), metrics.timestamps, metrics.updates,
        100.0 * metrics.UpdateFrequency(), metrics.result_changes,
        metrics.region_values);
  }
  return 0;
}
