// Multi-group engine demo: one server process keeping many independent
// meetup groups' safe regions fresh at the same time.
//
// Sixteen groups of three walkers share a POI index; the engine shards
// their per-timestamp work across a thread pool and recomputes safe
// regions only for the sessions whose users left their regions that round.
// The run is bit-deterministic: repeat it with any thread count and every
// per-group counter comes out identical.
//
// Build & run:  ./examples/multi_group
#include <cstdio>

#include "engine/engine.h"
#include "traj/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

int main() {
  using namespace mpn;

  const size_t kGroups = 16;
  const size_t kGroupSize = 3;
  const size_t kTimestamps = 300;

  // Shared world: clustered POIs under an R-tree, co-located user groups.
  Rng rng(0x3117);
  const Rect world({0, 0}, {50000, 50000});
  PoiOptions popt;
  popt.world = world;
  popt.clusters = 20;
  const std::vector<Point> pois = GeneratePois(5000, popt, &rng);
  const RTree tree = RTree::BulkLoad(pois);
  RandomWalkGenerator::Options wopt;
  wopt.world = world;
  wopt.mean_speed = 40.0;
  const RandomWalkGenerator gen(wopt);
  const std::vector<Trajectory> trajs = gen.GenerateGroupedFleet(
      kGroups * kGroupSize, kGroupSize, 1000.0, kTimestamps, &rng);

  // The engine: Tile-D safe regions, one session per group, as many
  // workers as the machine offers, and the per-user verification fan-out
  // enabled inside each recomputation.
  EngineOptions opt;
  opt.threads = 0;  // hardware concurrency
  opt.parallel_verify = true;
  opt.sim.server.method = Method::kTileD;
  Engine engine(&pois, &tree, opt);
  const auto groups = MakeGroups(trajs, kGroupSize, kGroupSize);
  for (const auto& group : groups) engine.AddSession(group);

  std::printf("engine: %zu sessions x %zu users, %zu worker thread(s)\n",
              engine.session_count(), kGroupSize, engine.thread_count());
  engine.Run();

  // Per-round aggregates from the batched event loop.
  engine.round_stats().ToTable().Print("per-round engine stats");

  // A few per-session results: update counts differ per group (different
  // trajectories), but every number is reproducible bit-for-bit.
  std::printf("\n%-8s %-10s %-10s %-10s\n", "group", "updates", "packets",
              "meeting@");
  for (uint32_t id = 0; id < 4; ++id) {
    const SimMetrics& m = engine.session_metrics(id);
    std::printf("%-8u %-10zu %-10zu poi #%u\n", id, m.updates,
                m.comm.TotalPackets(), engine.session_po(id));
  }
  const SimMetrics total = engine.TotalMetrics();
  std::printf("\ntotal: %zu updates over %zu group-rounds "
              "(update frequency %.4f), digest %016llx\n",
              total.updates, total.timestamps, total.UpdateFrequency(),
              static_cast<unsigned long long>(engine.ResultDigest()));
  return 0;
}
