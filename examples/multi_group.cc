// Multi-group engine demo: one server process keeping many independent
// meetup groups' safe regions fresh at the same time, with groups joining
// and leaving mid-run.
//
// Twelve groups of three walkers share a POI index; the event-driven
// scheduler advances every session on its own virtual clock, recomputes
// safe regions asynchronously for the sessions whose users left their
// regions, and four more groups are admitted while the engine is already
// draining (one of them retires halfway). The run is bit-deterministic:
// repeat it with any thread count and every per-group counter comes out
// identical.
//
// Build & run:  ./examples/multi_group
#include <cstdio>

#include "engine/engine.h"
#include "traj/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

int main() {
  using namespace mpn;

  const size_t kGroups = 16;
  const size_t kUpfront = 12;
  const size_t kGroupSize = 3;
  const size_t kTimestamps = 300;

  // Shared world: clustered POIs under an R-tree, co-located user groups.
  Rng rng(0x3117);
  const Rect world({0, 0}, {50000, 50000});
  PoiOptions popt;
  popt.world = world;
  popt.clusters = 20;
  const std::vector<Point> pois = GeneratePois(5000, popt, &rng);
  const RTree tree = RTree::BulkLoad(pois);
  RandomWalkGenerator::Options wopt;
  wopt.world = world;
  wopt.mean_speed = 40.0;
  const RandomWalkGenerator gen(wopt);
  const std::vector<Trajectory> trajs = gen.GenerateGroupedFleet(
      kGroups * kGroupSize, kGroupSize, 1000.0, kTimestamps, &rng);

  // The engine: Tile-D safe regions, as many workers as the machine
  // offers, and the per-user verification fan-out enabled inside each
  // recomputation.
  EngineOptions opt;
  opt.threads = 0;  // hardware concurrency
  opt.parallel_verify = true;
  opt.sim.server.method = Method::kTileD;
  Engine engine(&pois, &tree, opt);
  const auto groups = MakeGroups(trajs, kGroupSize, kGroupSize);
  for (size_t g = 0; g < kUpfront; ++g) engine.AdmitSession(groups[g]);

  std::printf("engine: %zu sessions x %zu users, %zu worker thread(s)\n",
              engine.session_count(), kGroupSize, engine.thread_count());

  // Mid-run churn: hold the drain open, start the engine, then admit the
  // remaining groups while the first twelve are already moving. One of
  // the latecomers only stays for 150 timestamps.
  Engine::Hold hold = engine.AcquireHold();
  engine.Start();
  for (size_t g = kUpfront; g < kGroups; ++g) {
    SessionTuning tuning;
    if (g == kUpfront) tuning.retire_at = kTimestamps / 2;
    engine.AdmitSession(groups[g], tuning);
  }
  std::printf("admitted %zu more mid-run (session %zu retires at t=%zu)\n",
              kGroups - kUpfront, kUpfront, kTimestamps / 2);
  hold.Reset();
  engine.Wait();

  // Per-timestamp aggregates from the event-driven scheduler.
  engine.round_stats().ToTable().Print("per-round engine stats");

  // A few per-session results: update counts differ per group (different
  // trajectories), but every number is reproducible bit-for-bit.
  std::printf("\n%-8s %-10s %-10s %-10s %-10s\n", "group", "rounds",
              "updates", "packets", "meeting@");
  for (uint32_t id : {0u, 1u, static_cast<uint32_t>(kUpfront),
                      static_cast<uint32_t>(kGroups - 1)}) {
    const SimMetrics& m = engine.session_metrics(id);
    std::printf("%-8u %-10zu %-10zu %-10zu poi #%u\n", id, m.timestamps,
                m.updates, m.comm.TotalPackets(), engine.session_po(id));
  }
  const SimMetrics total = engine.TotalMetrics();
  std::printf("\ntotal: %zu updates over %zu group-rounds "
              "(update frequency %.4f), digest %016llx\n",
              total.updates, total.timestamps, total.UpdateFrequency(),
              static_cast<unsigned long long>(engine.ResultDigest()));
  return 0;
}
