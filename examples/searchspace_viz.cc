// Reproduction of the paper's Fig. 4 case study: the search space of the
// optimal meeting point for two users moving in 1-D.
//
// Users u and v move on the segment [0, 9]; POIs a, b, c sit at fixed 1-D
// positions. Each cell (column u, row v) of the printed map shows the
// optimal meeting point for that pair of locations. The diamond-shaped
// 'hyper-regions' and their non-decomposability (Section 3.2) are directly
// visible: the independent safe region group <2-4, 3-9> vs <0-4, 5-9> for
// point 'a' can both be read off the map.
//
// Build & run:  ./examples/searchspace_viz
#include <cstdio>
#include <vector>

#include "index/gnn.h"

int main() {
  using namespace mpn;
  // Fig. 4a: u = 3, v = 6; POIs a = 4.5, b = 0.5, c = 8.5 (1-D positions
  // chosen to reproduce the paper's map qualitatively).
  const std::vector<std::pair<char, double>> pois = {
      {'a', 4.5}, {'b', 0.5}, {'c', 8.5}};

  auto optimal = [&](double u, double v) {
    char best = '?';
    double best_d = 1e300;
    for (const auto& [name, p] : pois) {
      const double d = std::max(std::abs(p - u), std::abs(p - v));
      if (d < best_d) {
        best_d = d;
        best = name;
      }
    }
    return best;
  };

  std::printf("Fig. 4b — optimal meeting point per (u, v) location pair\n");
  std::printf("(users on [0,9]; POIs a=4.5, b=0.5, c=8.5)\n\n    ");
  for (int u = 0; u <= 9; ++u) std::printf(" u=%d", u);
  std::printf("\n");
  for (int v = 9; v >= 0; --v) {
    std::printf("v=%d ", v);
    for (int u = 0; u <= 9; ++u) {
      std::printf("  %c ", optimal(u, v));
    }
    std::printf("\n");
  }

  // Demonstrate the Section-3.2 observations programmatically.
  std::printf("\ncurrent locations u=3, v=6 -> optimal point '%c'\n",
              optimal(3, 6));
  std::printf("safe region group <2-4, 3-9>: all cells 'a'? %s\n",
              [&] {
                for (int u = 2; u <= 4; ++u) {
                  for (int v = 3; v <= 9; ++v) {
                    if (optimal(u, v) != 'a') return "no";
                  }
                }
                return "yes";
              }());
  std::printf("safe region group <0-4, 5-9>: all cells 'a'? %s\n",
              [&] {
                for (int u = 0; u <= 4; ++u) {
                  for (int v = 5; v <= 9; ++v) {
                    if (optimal(u, v) != 'a') return "no";
                  }
                }
                return "yes";
              }());
  std::printf("union <0-4, 3-9>:            all cells 'a'? %s  "
              "(maximal safe region groups are not unique and cannot be "
              "merged)\n",
              [&] {
                for (int u = 0; u <= 4; ++u) {
                  for (int v = 3; v <= 9; ++v) {
                    if (optimal(u, v) != 'a') return "no";
                  }
                }
                return "yes";
              }());
  return 0;
}
