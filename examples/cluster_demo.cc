// Multi-process cluster demo: groups sharded across forked engine worker
// processes, with the coordinator routing admissions by group id over
// socketpair pipes and aggregating bit-identical results.
//
// Twelve groups of three walkers are served by a 3-worker cluster (each
// worker is a full event-driven Engine over its shard of the groups). The
// run is drained twice — eight groups in the first serving round, four
// more admitted while the workers keep serving — and the aggregated
// digest is then checked against a plain single-process Engine over the
// same groups: bit-identical, the cluster's determinism guarantee.
//
// The second act is the elastic-recovery story: the same workload with a
// worker killed mid-run by deterministic crash injection. The supervisor
// forks a replacement, re-admits the dead shard's groups from the
// coordinator snapshot, and the final digest is still bit-identical —
// supervised recovery is invisible in the results.
//
// The third act swaps the byte backend to loopback TCP and turns the
// hardened transport loose: a drain reply corrupted in flight (caught by
// the frame CRC) and a worker stalled mid-reply (caught by the heartbeat
// miss budget). Both are SIGKILLed, recovered by snapshot replay, and the
// digest is re-checked — still bit-identical.
//
// Build & run:  ./examples/cluster_demo
#include <cstdio>

#include "engine/cluster.h"
#include "engine/engine.h"
#include "traj/generators.h"
#include "util/rng.h"

int main() {
  using namespace mpn;

  const size_t kGroups = 12;
  const size_t kUpfront = 8;
  const size_t kGroupSize = 3;
  const size_t kTimestamps = 200;
  const size_t kWorkers = 3;

  // Shared world, built before the fork: the workers inherit the POI set
  // and the R-tree copy-on-write — only trajectories and results cross
  // the process boundary.
  Rng rng(0xC1057E);
  const Rect world({0, 0}, {50000, 50000});
  PoiOptions popt;
  popt.world = world;
  popt.clusters = 20;
  const std::vector<Point> pois = GeneratePois(2500, popt, &rng);
  const RTree tree = RTree::BulkLoad(pois);
  RandomWalkGenerator::Options wopt;
  wopt.world = world;
  wopt.mean_speed = 40.0;
  const RandomWalkGenerator gen(wopt);
  const std::vector<Trajectory> trajs = gen.GenerateGroupedFleet(
      kGroups * kGroupSize, kGroupSize, 1000.0, kTimestamps, &rng);
  const auto groups = MakeGroups(trajs, kGroupSize, kGroupSize);

  ClusterOptions opt;
  opt.workers = kWorkers;
  opt.engine.threads = 1;
  opt.engine.sim.server.method = Method::kTileD;

  ClusterEngine cluster(&pois, &tree, opt);
  cluster.Start();
  std::printf("cluster: %zu worker process(es), admissions routed by "
              "group_id %% %zu\n",
              cluster.worker_count(), cluster.worker_count());

  // Serving round 1: eight groups, drained to completion.
  for (size_t g = 0; g < kUpfront; ++g) cluster.AdmitSession(groups[g]);
  cluster.Wait();
  std::printf("round 1: %zu sessions drained, %zu total updates\n",
              cluster.session_count(), cluster.TotalMetrics().updates);

  // Serving round 2: the workers are still up — admit the rest and drain
  // again. One latecomer leaves after 120 timestamps.
  for (size_t g = kUpfront; g < kGroups; ++g) {
    SessionTuning tuning;
    if (g == kGroups - 1) tuning.retire_at = 120;
    cluster.AdmitSession(groups[g], tuning);
  }
  cluster.Shutdown();
  std::printf("round 2: %zu sessions total, %zu updates, %zu packets\n",
              cluster.session_count(), cluster.TotalMetrics().updates,
              cluster.TotalMetrics().comm.TotalPackets());

  // The whole point: the sharded run is bit-identical to one process.
  Engine engine(&pois, &tree, opt.engine);
  for (size_t g = 0; g < kGroups; ++g) {
    SessionTuning tuning;
    if (g == kGroups - 1) tuning.retire_at = 120;
    engine.AdmitSession(groups[g], tuning);
  }
  engine.Run();
  const bool match = engine.ResultDigest() == cluster.ResultDigest();
  std::printf("digest: cluster %016llx vs single-process %016llx — %s\n",
              static_cast<unsigned long long>(cluster.ResultDigest()),
              static_cast<unsigned long long>(engine.ResultDigest()),
              match ? "bit-identical" : "MISMATCH");

  // Act two: elastic recovery. Same groups, but worker 1 is killed the
  // moment one of its sessions is about to advance to timestamp 100. The
  // supervisor forks a replacement, replays the shard's admissions from
  // the coordinator snapshot, and the digest must not move.
  ClusterEngine elastic(&pois, &tree, opt);
  elastic.KillWorkerAt(/*shard=*/1, /*timestamp=*/kTimestamps / 2);
  for (size_t g = 0; g < kGroups; ++g) {
    SessionTuning tuning;
    if (g == kGroups - 1) tuning.retire_at = 120;
    elastic.AdmitSession(groups[g], tuning);
  }
  elastic.Run();
  const ClusterEngine::RecoveryStats rs = elastic.recovery_stats();
  std::printf("recovery: %zu restart(s), %zu session(s) re-admitted, "
              "%zu frame(s) replayed, %.1f ms\n",
              rs.restarts, rs.sessions_readmitted, rs.frames_replayed,
              rs.recovery_seconds * 1e3);
  const bool recovered_match = elastic.ResultDigest() == engine.ResultDigest();
  std::printf("digest after worker kill: %016llx — %s\n",
              static_cast<unsigned long long>(elastic.ResultDigest()),
              recovered_match ? "bit-identical" : "MISMATCH");

  // Act three: the hardened transport. Same workload again, but over
  // loopback TCP with two transport faults injected at deterministic
  // frame indices: worker 2's first drain reply is corrupted in flight
  // (the coordinator's CRC32 check catches it) and worker 0 stalls
  // mid-reply in the second serving round (the heartbeat miss budget
  // catches that). Both workers are SIGKILLed and recovered by snapshot
  // replay — and the digest still must not move.
  ClusterOptions opt3 = opt;
  opt3.transport.kind = TransportKind::kTcpLoopback;
  opt3.transport.heartbeat_interval_ms = 100;
  opt3.transport.heartbeat_timeout_ms = 500;
  opt3.transport.heartbeat_miss_budget = 3;
  opt3.recovery.max_restarts = 3;
  ClusterEngine hardened(&pois, &tree, opt3);
  // Frame-op indices on a worker's data channel count its recvs and sends
  // together: worker 2 serves groups {2,5,8,11}, so ops 0-1 are the round-1
  // admits and op 3 is its drain-reply send; worker 0 serves {0,3,6,9}, so
  // after three admits, a drain and a round-2 admit its second drain-reply
  // send is op 7.
  hardened.InjectFaultAt(/*shard=*/2, /*frame=*/3, FaultKind::kCorrupt);
  hardened.InjectFaultAt(/*shard=*/0, /*frame=*/7, FaultKind::kStall);
  hardened.Start();
  for (size_t g = 0; g < kUpfront; ++g) hardened.AdmitSession(groups[g]);
  hardened.Wait();
  for (size_t g = kUpfront; g < kGroups; ++g) {
    SessionTuning tuning;
    if (g == kGroups - 1) tuning.retire_at = 120;
    hardened.AdmitSession(groups[g], tuning);
  }
  hardened.Shutdown();
  const ClusterEngine::RecoveryStats hs = hardened.recovery_stats();
  std::printf("hardened transport (loopback TCP): %zu restart(s), "
              "%zu checksum failure(s), %zu heartbeat miss(es), "
              "%zu deadline hit(s), %zu I/O retry(ies)\n",
              hs.restarts, hs.checksum_failures, hs.heartbeat_misses,
              hs.deadline_hits, hs.retries);
  const bool hardened_match = hardened.ResultDigest() == engine.ResultDigest();
  std::printf("digest after corrupt + stalled frames: %016llx — %s\n",
              static_cast<unsigned long long>(hardened.ResultDigest()),
              hardened_match ? "bit-identical" : "MISMATCH");
  const bool faults_seen =
      hs.restarts == 2 && hs.checksum_failures >= 1 && hs.heartbeat_misses >= 3;
  return match && recovered_match && rs.restarts == 1 && hardened_match &&
                 faults_seen
             ? 0
             : 1;
}
