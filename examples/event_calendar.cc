// Event-calendar scenario (Fig. 1 of the paper): a group of friends agreed
// to have dinner together; the event service continuously recommends the
// restaurant minimizing the worst member's travel distance and notifies the
// group when the recommendation changes (e.g., someone is stuck in
// traffic).
//
// The example contrasts three server strategies over the same movements:
//   * naive periodic reporting (every user, every timestamp),
//   * circular safe regions,
//   * directed tile-based safe regions,
// and prints the meeting-point changes the calendar would surface.
//
// Build & run:  ./examples/event_calendar
#include <cstdio>

#include "sim/simulator.h"
#include "traj/generators.h"

int main() {
  using namespace mpn;
  const Rect world({0, 0}, {30000, 30000});
  Rng rng(2026);

  // Restaurants: clustered downtown plus scattered suburbs.
  PoiOptions popt;
  popt.world = world;
  popt.clusters = 8;
  popt.cluster_sigma_frac = 0.04;
  popt.background_frac = 0.35;
  const std::vector<Point> restaurants = GeneratePois(2500, popt, &rng);
  const RTree tree = RTree::BulkLoad(restaurants);

  // Three friends moving through town (smooth correlated walks starting
  // in different neighborhoods).
  RandomWalkGenerator::Options wopt;
  wopt.world = world;
  wopt.mean_speed = 5.0;  // city driving, one tick per second-ish
  wopt.heading_sigma = 0.08;
  const RandomWalkGenerator walker(wopt);
  const auto fleet = walker.GenerateGroupedFleet(3, 3, 4000.0, 3000, &rng);
  const std::vector<const Trajectory*> friends = {&fleet[0], &fleet[1],
                                                  &fleet[2]};

  std::printf("event: 'Italian food together' — 3 friends, %zu restaurants\n",
              restaurants.size());

  // Naive baseline: every user reports every timestamp (1 packet each) and
  // the server answers each with the result (1 packet each).
  const size_t naive_packets = 3 * 3000 * 2;

  const char* labels[] = {"circle safe regions", "tile-D safe regions"};
  const Method methods[] = {Method::kCircle, Method::kTileD};
  for (int k = 0; k < 2; ++k) {
    SimOptions opt;
    opt.server.method = methods[k];
    opt.server.objective = Objective::kMax;
    opt.server.alpha = 20;
    Simulator sim(&restaurants, &tree, friends, opt);
    const SimMetrics metrics = sim.Run();
    std::printf(
        "\n[%s]\n  notifications to the calendar (recommendation changes): "
        "%zu\n  server contacts: %zu (%.2f%% of timestamps)\n  packets: %zu "
        "(naive periodic: %zu, saving %.1f%%)\n  server compute: %.1f ms "
        "total\n",
        labels[k], metrics.result_changes, metrics.updates,
        100.0 * metrics.UpdateFrequency(), metrics.comm.TotalPackets(),
        naive_packets,
        100.0 * (1.0 - static_cast<double>(metrics.comm.TotalPackets()) /
                           static_cast<double>(naive_packets)),
        metrics.server_seconds * 1e3);
  }
  return 0;
}
