#!/usr/bin/env python3
"""Diffs a fresh scripts/run_benches.sh output tree against the checked-in
baseline and fails loudly on regression.

Usage:
    scripts/run_benches.sh build               # writes bench-results/quick/
    scripts/check_baselines.py [quick|full] [--timing-tolerance PCT]
        [--timing-table 'TABLEGLOB[:COLUMNGLOB]' ...]

Comparison model (mirrors scripts/update_baselines.py):
  * Each CSV table's columns split into three classes:
      - parameter columns (PARAM_COLUMNS): identify a row across runs;
      - timing columns (TIMING_MARKERS in the name): machine-dependent,
        compared only when --timing-tolerance is given;
      - everything else: deterministic counters that must match EXACTLY
        across machines for identical code (digest-backed determinism).
  * Rows are matched on their parameter values. Fresh rows with no
    baseline counterpart (e.g. extra thread counts on a bigger machine)
    are informational; baseline rows missing from the fresh run fail.
  * --timing-table restricts which timing columns the tolerance applies
    to: each spec is 'TABLEGLOB' or 'TABLEGLOB:COLUMNGLOB' (fnmatch), and
    only matching columns are compared. This is how CI gates a
    machine-robust ratio (fig_engine_scale_kernels:soa_speedup) without
    failing on raw wall-clock columns that vary across hosts.
  * Any "deterministic" column valued other than "yes" fails outright.
  * A baseline table with no fresh counterpart fails (a bench silently
    disappearing is itself a regression).

Exit status: 0 clean, 1 regression, 2 usage/environment error.
"""
import argparse
import csv
import fnmatch
import json
import sys
from pathlib import Path

# Fallback only: the baseline's own "timing_columns" manifest (written by
# scripts/update_baselines.py, the single owner of the timing
# classification) is authoritative when present.
TIMING_MARKERS = ("second", "cpu", "ms", "time", "/sec", "speedup", "rss", "resident")
PARAM_COLUMNS = {
    "groups", "threads", "sessions", "straggler", "scenario", "method",
    "metric", "objective", "group size", "m", "n", "data size", "speed",
    "buffer", "alpha", "graph", "nodes", "scale", "rounds", "retired",
    "shards", "kills", "faults", "budget_kb",
}


def classify(columns, manifest_timing):
    """Splits column indices into (params, counters, timings).

    `manifest_timing` is the baseline's timing_columns entry for this table
    (None when the baseline predates the manifest — then the name
    heuristics apply).
    """
    params, counters, timings = [], [], []
    for i, c in enumerate(columns):
        name = c.lower()
        if name in PARAM_COLUMNS:
            params.append(i)
        elif (c in manifest_timing if manifest_timing is not None
              else any(m in name for m in TIMING_MARKERS)):
            timings.append(i)
        else:
            counters.append(i)
    return params, counters, timings


def load_results(results_dir):
    tables = {}
    for path in sorted(results_dir.glob("*.csv")):
        with path.open(newline="") as f:
            rows = list(csv.reader(f))
        if rows:
            tables[path.stem] = {"columns": rows[0], "rows": rows[1:]}
    return tables


def timing_gated(table, column, specs):
    """True when --timing-table specs allow comparing this timing column.

    With no specs, every timing column is compared. Each spec is
    'TABLEGLOB' (all of the table's timing columns) or
    'TABLEGLOB:COLUMNGLOB'.
    """
    if not specs:
        return True
    for spec in specs:
        table_glob, _, column_glob = spec.partition(":")
        if fnmatch.fnmatch(table, table_glob) and (
                not column_glob or fnmatch.fnmatch(column, column_glob)):
            return True
    return False


def close_enough(a, b, tolerance_pct):
    try:
        fa, fb = float(a), float(b)
    except ValueError:
        return a == b
    if fa == fb:
        return True
    base = max(abs(fa), abs(fb), 1e-12)
    return abs(fa - fb) / base <= tolerance_pct / 100.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", default="quick")
    parser.add_argument(
        "--timing-tolerance", type=float, default=None, metavar="PCT",
        help="also compare timing columns, failing when a fresh value "
             "deviates more than PCT%% from the baseline (default: timing "
             "is reported but never fails — bench hosts differ)")
    parser.add_argument(
        "--timing-table", action="append", default=[], metavar="SPEC",
        help="with --timing-tolerance, compare only timing columns matching "
             "SPEC ('TABLEGLOB' or 'TABLEGLOB:COLUMNGLOB', fnmatch; "
             "repeatable). Default: all timing columns.")
    parser.add_argument(
        "--results", type=Path, default=None,
        help="results directory (default: bench-results/<scale>)")
    args = parser.parse_args()

    repo = Path(__file__).resolve().parent.parent
    baseline_path = repo / "bench" / "baselines" / f"{args.scale}.json"
    results_dir = args.results or (repo / "bench-results" / args.scale)
    if not baseline_path.is_file():
        print(f"error: {baseline_path} not found", file=sys.stderr)
        return 2
    if not results_dir.is_dir():
        print(f"error: {results_dir} not found — run scripts/run_benches.sh "
              "first", file=sys.stderr)
        return 2

    baseline = json.loads(baseline_path.read_text())
    fresh = load_results(results_dir)
    failures = []
    notes = []
    checked_rows = 0

    for name, base_table in sorted(baseline.get("tables", {}).items()):
        if name not in fresh:
            failures.append(f"{name}: bench table missing from fresh results")
            continue
        fresh_table = fresh[name]
        if fresh_table["columns"] != base_table["columns"]:
            failures.append(
                f"{name}: column set changed "
                f"(baseline {base_table['columns']} vs fresh "
                f"{fresh_table['columns']}) — regenerate the baseline "
                "(scripts/update_baselines.py) if intentional")
            continue
        columns = base_table["columns"]
        params, counters, timings = classify(
            columns, baseline.get("timing_columns", {}).get(name))
        if not params:
            # No recognizable parameter columns: match rows positionally.
            if len(fresh_table["rows"]) < len(base_table["rows"]):
                failures.append(
                    f"{name}: fresh run has {len(fresh_table['rows'])} "
                    f"row(s), baseline has {len(base_table['rows'])}")
            pairs = list(zip(base_table["rows"], fresh_table["rows"]))
        else:
            fresh_by_key = {}
            for row in fresh_table["rows"]:
                fresh_by_key.setdefault(
                    tuple(row[i] for i in params), []).append(row)
            pairs = []
            for row in base_table["rows"]:
                key = tuple(row[i] for i in params)
                matches = fresh_by_key.get(key)
                if not matches:
                    failures.append(
                        f"{name}: baseline row {key} missing from fresh run")
                    continue
                pairs.append((row, matches.pop(0)))
            extra = sum(len(v) for v in fresh_by_key.values())
            if extra:
                notes.append(f"{name}: {extra} fresh row(s) without a "
                             "baseline counterpart (informational)")

        for base_row, fresh_row in pairs:
            checked_rows += 1
            key = tuple(base_row[i] for i in params) if params else "row"
            for i in counters:
                if base_row[i] != fresh_row[i]:
                    failures.append(
                        f"{name} {key}: counter '{columns[i]}' changed "
                        f"{base_row[i]} -> {fresh_row[i]}")
            for i in timings:
                if (args.timing_tolerance is not None
                        and timing_gated(name, columns[i], args.timing_table)
                        and not close_enough(
                            base_row[i], fresh_row[i],
                            args.timing_tolerance)):
                    failures.append(
                        f"{name} {key}: timing '{columns[i]}' moved "
                        f"{base_row[i]} -> {fresh_row[i]} "
                        f"(> {args.timing_tolerance}%)")
            for i, c in enumerate(columns):
                if c.lower() == "deterministic" and fresh_row[i] != "yes":
                    failures.append(
                        f"{name} {key}: determinism check failed "
                        f"('{fresh_row[i]}')")

    for note in notes:
        print(f"note: {note}")
    print(f"checked {checked_rows} row(s) across "
          f"{len(baseline.get('tables', {}))} baseline table(s)")
    if failures:
        print(f"\nBASELINE REGRESSION ({len(failures)} finding(s)):",
              file=sys.stderr)
        for f in failures:
            print(f"  FAIL {f}", file=sys.stderr)
        return 1
    print("baselines OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
