#!/usr/bin/env python3
"""Distills a scripts/run_benches.sh output tree into a baseline JSON.

Usage:
    scripts/run_benches.sh build              # writes bench-results/quick/
    scripts/update_baselines.py [quick|full]  # -> bench/baselines/<scale>.json

The baseline bundles every CSV table the harnesses emitted, keyed by file
stem. Counter columns (updates, packets, tiles, index accesses, digests)
are deterministic and must match across machines for identical code;
timing columns (seconds, cpu_ms, rounds/sec) are machine-dependent and are
listed in "timing_columns" so diff tooling can treat them as informational.
That split extends to the elastic-recovery table (fig_engine_scale_recovery):
restart and re-admission counts and the hardened-transport counters
(crc_fail, hb_miss, deadline_hits) are deterministic — crash injection
fires on a virtual timestamp and transport faults on a frame index —
while recover_ms is timing.

Google-Benchmark JSON dumps in the results tree (micro_ch_bench.json) are
folded into a "micro" section: per-benchmark real time plus counters (the
CH bench's `speedup` counter is the >= 10x acceptance number). All micro
numbers are timing-dependent, so the whole section is informational.

CI runs this after the Release-job bench sweep and uploads the regenerated
JSON as the `bench-baselines-ci` artifact — the ROADMAP's "capture real
4-core CI numbers" loop: download it from a trusted run and check it in.
"""
import csv
import json
import sys
from pathlib import Path

TIMING_MARKERS = ("second", "cpu", "ms", "time", "/sec", "speedup", "rss", "resident")
# Tables whose *name* carries the timing marker (e.g. fig13_GeoLife_cpu):
# every measured column is wall/CPU time even though the column names are
# method labels. scripts/check_baselines.py consumes the resulting
# timing_columns manifest, so this classification is computed only here.
TIMING_TABLE_MARKERS = ("cpu",)


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "quick"
    repo = Path(__file__).resolve().parent.parent
    results = repo / "bench-results" / scale
    if not results.is_dir():
        print(f"error: {results} not found — run scripts/run_benches.sh first",
              file=sys.stderr)
        return 1

    tables = {}
    timing_columns = {}
    for path in sorted(results.glob("*.csv")):
        with path.open(newline="") as f:
            rows = list(csv.reader(f))
        if not rows:
            continue
        header, data = rows[0], rows[1:]
        tables[path.stem] = {"columns": header, "rows": data}
        timing_table = any(m in path.stem.lower()
                           for m in TIMING_TABLE_MARKERS)
        timing = [c for c in header
                  if timing_table
                  or any(m in c.lower() for m in TIMING_MARKERS)]
        if timing:
            timing_columns[path.stem] = timing

    micro = {}
    for path in sorted(results.glob("*.json")):
        with path.open() as f:
            try:
                dump = json.load(f)
            except json.JSONDecodeError:
                continue
        benchmarks = dump.get("benchmarks")
        if not isinstance(benchmarks, list):
            continue
        # Everything that is not known Google-Benchmark metadata is a
        # user counter; keep them all so new counters land automatically.
        metadata_keys = {
            "name", "run_name", "run_type", "family_index",
            "per_family_instance_index", "repetitions", "repetition_index",
            "threads", "iterations", "real_time", "cpu_time", "time_unit",
            "aggregate_name", "aggregate_unit", "label", "error_occurred",
            "error_message",
        }
        entries = []
        for b in benchmarks:
            entry = {
                "name": b.get("name"),
                "real_time": b.get("real_time"),
                "time_unit": b.get("time_unit"),
            }
            counters = {k: v for k, v in b.items() if k not in metadata_keys}
            if counters:
                entry["counters"] = counters
            entries.append(entry)
        micro[path.stem] = entries

    out = repo / "bench" / "baselines" / f"{scale}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(
        {
            "scale": scale,
            "note": ("Reference numbers for perf PRs. Counter columns are "
                     "deterministic; columns listed under timing_columns "
                     "and everything under micro depend on the host and "
                     "are informational."),
            "timing_columns": timing_columns,
            "tables": tables,
            "micro": micro,
        },
        indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(tables)} tables, {len(micro)} micro dumps)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
