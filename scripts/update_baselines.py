#!/usr/bin/env python3
"""Distills a scripts/run_benches.sh output tree into a baseline JSON.

Usage:
    scripts/run_benches.sh build              # writes bench-results/quick/
    scripts/update_baselines.py [quick|full]  # -> bench/baselines/<scale>.json

The baseline bundles every CSV table the harnesses emitted, keyed by file
stem. Counter columns (updates, packets, tiles, index accesses, digests)
are deterministic and must match across machines for identical code;
timing columns (seconds, cpu_ms, rounds/sec) are machine-dependent and are
listed in "timing_columns" so diff tooling can treat them as informational.
"""
import csv
import json
import sys
from pathlib import Path

TIMING_MARKERS = ("second", "cpu", "ms", "time", "/sec", "speedup")


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "quick"
    repo = Path(__file__).resolve().parent.parent
    results = repo / "bench-results" / scale
    if not results.is_dir():
        print(f"error: {results} not found — run scripts/run_benches.sh first",
              file=sys.stderr)
        return 1

    tables = {}
    timing_columns = {}
    for path in sorted(results.glob("*.csv")):
        with path.open(newline="") as f:
            rows = list(csv.reader(f))
        if not rows:
            continue
        header, data = rows[0], rows[1:]
        tables[path.stem] = {"columns": header, "rows": data}
        timing = [c for c in header
                  if any(m in c.lower() for m in TIMING_MARKERS)]
        if timing:
            timing_columns[path.stem] = timing

    out = repo / "bench" / "baselines" / f"{scale}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(
        {
            "scale": scale,
            "note": ("Reference numbers for perf PRs. Counter columns are "
                     "deterministic; columns listed under timing_columns "
                     "depend on the host and are informational."),
            "timing_columns": timing_columns,
            "tables": tables,
        },
        indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(tables)} tables)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
