#!/usr/bin/env bash
# Runs every figure-reproduction bench and saves the tables under
# bench-results/<scale>/, one .txt per harness. Intended for recording
# perf baselines (see ROADMAP.md "Open items"). Harnesses that emit
# several CSV tables (e.g. fig_engine_scale's scale / straggler / churn /
# cluster / recovery sweeps) drop them all into the same directory, so
# new tables flow into scripts/update_baselines.py with no changes here.
#
# Usage:  scripts/run_benches.sh [build-dir]
#         MPN_BENCH_SCALE=full scripts/run_benches.sh
set -euo pipefail

BUILD_DIR="${1:-build}"
SCALE="${MPN_BENCH_SCALE:-quick}"
OUT_DIR="bench-results/${SCALE}"

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: ${BUILD_DIR}/bench not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"
BUILD_DIR="$(cd "${BUILD_DIR}" && pwd)"
OUT_DIR="$(cd "${OUT_DIR}" && pwd)"
# Every harness routes its CSV tables through bench_common.h's OutDir(),
# which honors this variable — so the fig13–fig19 / ablation / scale CSVs
# land next to the captured .txt tables instead of whatever cwd the
# harness happened to run in.
export MPN_BENCH_OUTDIR="${OUT_DIR}"

for bench in "${BUILD_DIR}"/bench/fig* "${BUILD_DIR}"/bench/ablation_bench; do
  [[ -x "${bench}" ]] || continue
  name="$(basename "${bench}")"
  echo "== ${name} (MPN_BENCH_SCALE=${SCALE})"
  (cd "${OUT_DIR}" && MPN_BENCH_SCALE="${SCALE}" "${bench}") \
    | tee "${OUT_DIR}/${name}.txt"
done

# The micro benches feed the perf baseline too — micro_ch_bench carries
# the >= 10x point-to-point speedup criterion and micro_verify_bench the
# scalar-vs-SoA verification-kernel throughput ratio — so capture every
# Google-Benchmark binary as JSON; update_baselines.py folds the dumps
# into the baseline's "micro" section automatically.
for bench in "${BUILD_DIR}"/bench/micro_*_bench; do
  [[ -x "${bench}" ]] || continue
  name="$(basename "${bench}")"
  echo "== ${name} (MPN_BENCH_SCALE=${SCALE})"
  (cd "${OUT_DIR}" && MPN_BENCH_SCALE="${SCALE}" "${bench}" \
      --benchmark_out="${name}.json" --benchmark_out_format=json) \
    | tee "${OUT_DIR}/${name}.txt"
done

echo "Results written to ${OUT_DIR}/"
