// Fig. 14 (MPN): vary the POI count n in {0.25, 0.5, 0.75, 1.0} * N on both
// trajectory sets; report update frequency (communication cost is
// proportional, Section 7.2) for Circle, Tile, Tile-D.
#include "bench_common.h"

namespace mpn {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = GetBenchEnv();
  Banner("Fig. 14 — MPN, vary POI count n", env);
  const auto full_pois = MakePoiSet(env.n_pois);
  const Method methods[] = {Method::kCircle, Method::kTile, Method::kTileD};
  const double fractions[] = {0.25, 0.5, 0.75, 1.0};

  for (const auto& maker : {&MakeGeolifeLike, &MakeOldenburgLike}) {
    const TrajectorySet set = maker(env, 0x14);
    Table freq({"n/N", "Circle", "Tile", "Tile-D"});
    Table packets({"n/N", "Circle", "Tile", "Tile-D"});
    for (double frac : fractions) {
      const size_t n = static_cast<size_t>(frac * full_pois.size());
      // Prefix subset: the generator emits i.i.d. points, so a prefix is an
      // unbiased smaller sample of the same distribution.
      const std::vector<Point> pois(full_pois.begin(),
                                    full_pois.begin() + n);
      const RTree tree = RTree::BulkLoad(pois);
      std::vector<std::string> frow{FormatDouble(frac, 2)};
      std::vector<std::string> prow{FormatDouble(frac, 2)};
      for (Method method : methods) {
        const SimMetrics metrics = RunConfig(
            pois, tree, set, 3, env, MakeServerConfig(method, Objective::kMax));
        frow.push_back(FormatDouble(metrics.UpdateFrequency(), 4));
        prow.push_back(FormatDouble(
            static_cast<double>(metrics.comm.TotalPackets()) /
                static_cast<double>(env.groups),
            1));
      }
      freq.AddRow(frow);
      packets.AddRow(prow);
    }
    freq.Print("Fig. 14 " + set.name + " — update frequency (updates/ts)");
    freq.WriteCsv(CsvPath("fig14_" + set.name + "_freq.csv"));
    packets.Print("Fig. 14 " + set.name + " — packets per group");
    packets.WriteCsv(CsvPath("fig14_" + set.name + "_packets.csv"));
  }
}

}  // namespace
}  // namespace bench
}  // namespace mpn

int main() {
  mpn::bench::Run();
  return 0;
}
