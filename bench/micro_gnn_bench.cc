// Micro benchmarks: MAX/SUM-GNN query latency on the R-tree vs data size,
// group size and result depth (the buffering optimization fetches b+1).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "index/gnn.h"

namespace mpn {
namespace {

struct GnnFixtureData {
  std::vector<Point> pois;
  RTree tree;
  std::vector<std::vector<Point>> user_sets;
};

const GnnFixtureData& Fixture(size_t n, size_t m) {
  static std::map<std::pair<size_t, size_t>, GnnFixtureData> cache;
  auto& f = cache[{n, m}];
  if (f.pois.empty()) {
    f.pois = bench::MakePoiSet(n, 0xA11);
    f.tree = RTree::BulkLoad(f.pois);
    Rng rng(0xB22);
    for (int i = 0; i < 64; ++i) {
      std::vector<Point> users;
      for (size_t j = 0; j < m; ++j) {
        users.push_back({rng.Uniform(20000, 80000),
                         rng.Uniform(20000, 80000)});
      }
      f.user_sets.push_back(std::move(users));
    }
  }
  return f;
}

void BM_GnnTop1(benchmark::State& state, Objective obj) {
  const auto& f = Fixture(static_cast<size_t>(state.range(0)),
                          static_cast<size_t>(state.range(1)));
  size_t i = 0;
  for (auto _ : state) {
    const auto r = FindGnn(f.tree, f.user_sets[i++ % f.user_sets.size()],
                           obj, 1);
    benchmark::DoNotOptimize(r);
  }
}

void BM_GnnTopK(benchmark::State& state, Objective obj) {
  const auto& f = Fixture(21287, 3);
  const size_t k = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    const auto r = FindGnn(f.tree, f.user_sets[i++ % f.user_sets.size()],
                           obj, k);
    benchmark::DoNotOptimize(r);
  }
}

void BM_GnnBruteForce(benchmark::State& state, Objective obj) {
  const auto& f = Fixture(static_cast<size_t>(state.range(0)), 3);
  size_t i = 0;
  for (auto _ : state) {
    const auto r = FindGnnBruteForce(
        f.pois, f.user_sets[i++ % f.user_sets.size()], obj, 1);
    benchmark::DoNotOptimize(r);
  }
}

BENCHMARK_CAPTURE(BM_GnnTop1, max, Objective::kMax)
    ->ArgsProduct({{1000, 5000, 21287}, {2, 3, 6}});
BENCHMARK_CAPTURE(BM_GnnTop1, sum, Objective::kSum)
    ->ArgsProduct({{1000, 5000, 21287}, {2, 3, 6}});
BENCHMARK_CAPTURE(BM_GnnTopK, max, Objective::kMax)->Arg(2)->Arg(26)->Arg(101);
BENCHMARK_CAPTURE(BM_GnnTopK, sum, Objective::kSum)->Arg(2)->Arg(26)->Arg(101);
BENCHMARK_CAPTURE(BM_GnnBruteForce, max, Objective::kMax)
    ->Arg(1000)->Arg(21287);

}  // namespace
}  // namespace mpn

BENCHMARK_MAIN();
