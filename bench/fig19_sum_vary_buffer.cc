// Fig. 19 (Sum-MPN): effect of buffering parameter b under the SUM
// objective (Theorem 7 thresholds).
#include "bench_common.h"

namespace mpn {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = GetBenchEnv();
  Banner("Fig. 19 — Sum-MPN, vary buffering parameter b", env);
  const auto pois = MakePoiSet(env.n_pois);
  const RTree tree = RTree::BulkLoad(pois);
  const TrajectorySet set = MakeGeolifeLike(env, 0x19);

  const SimMetrics ref = RunConfig(
      pois, tree, set, 3, env,
      MakeServerConfig(Method::kTileD, Objective::kSum));

  Table table({"b", "TileD_freq", "TileDb_freq", "TileD_cpu_ms",
               "TileDb_cpu_ms", "TileDb_rtree_nodes_per_update"});
  for (int b : {5, 10, 25, 50, 100, 200}) {
    const SimMetrics buf = RunConfig(
        pois, tree, set, 3, env,
        MakeServerConfig(Method::kTileDBuffered, Objective::kSum, b));
    table.AddRow({std::to_string(b),
                  FormatDouble(ref.UpdateFrequency(), 4),
                  FormatDouble(buf.UpdateFrequency(), 4),
                  FormatDouble(ref.AvgComputeMsPerUpdate(), 3),
                  FormatDouble(buf.AvgComputeMsPerUpdate(), 3),
                  FormatDouble(buf.updates == 0
                                   ? 0.0
                                   : static_cast<double>(
                                         buf.msr.rtree_node_accesses) /
                                         static_cast<double>(buf.updates),
                               1)});
  }
  table.Print("Fig. 19 — Tile-D vs Tile-D-b, SUM (" + set.name + ")");
  table.WriteCsv(CsvPath("fig19_sum_buffering.csv"));
}

}  // namespace
}  // namespace bench
}  // namespace mpn

int main() {
  mpn::bench::Run();
  return 0;
}
