// Shared workload construction for the figure-reproduction benches.
//
// Table 2 defaults: N = 21,287 POIs, group size m = 3, speed limit V, tile
// limit alpha = 30, split level L = 2, buffer b = 100; 60 trajectories of
// 10,000 timestamps split into 10 groups; metrics averaged over groups.
//
// By default the harness runs a scaled-down configuration so that the whole
// bench suite finishes in minutes on one core; set MPN_BENCH_SCALE=full for
// paper-scale runs. The scaling preserves every relative comparison the
// paper makes (it only shortens trajectories and uses fewer groups).
#pragma once

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "index/rtree.h"
#include "sim/simulator.h"
#include "traj/generators.h"
#include "traj/road_network.h"
#include "util/table.h"

namespace mpn {
namespace bench {

/// World frame shared by every workload.
inline const Rect kWorld({0.0, 0.0}, {100000.0, 100000.0});

/// Scaled workload parameters.
struct BenchEnv {
  bool full = false;
  size_t n_pois = 21287;     ///< N (pocketgpsworld size)
  size_t n_trajectories = 60;
  size_t timestamps = 1200;  ///< 10,000 in full mode
  size_t block = 6;          ///< trajectories per group block
  size_t groups = 4;         ///< 10 in full mode
};

/// Reads MPN_BENCH_SCALE (quick | full).
inline BenchEnv GetBenchEnv() {
  BenchEnv env;
  const char* scale = std::getenv("MPN_BENCH_SCALE");
  if (scale != nullptr && std::string(scale) == "full") {
    env.full = true;
    env.timestamps = 10000;
    env.groups = 10;
  }
  return env;
}

/// A named trajectory set.
struct TrajectorySet {
  std::string name;
  std::vector<Trajectory> trajectories;
};

/// "GeoLife"-like smooth-taxi workload (see DESIGN.md substitutions).
inline TrajectorySet MakeGeolifeLike(const BenchEnv& env, uint64_t seed) {
  Rng rng(seed);
  RandomWalkGenerator::Options opt;
  opt.world = kWorld;
  opt.mean_speed = 1.5;
  opt.speed_jitter = 0.25;
  opt.heading_sigma = 0.06;
  opt.dwell_prob = 0.003;
  const RandomWalkGenerator gen(opt);
  // Group members start co-located (2 km spread) as in the paper's per-city
  // trajectory sets.
  return {"GeoLife",
          gen.GenerateGroupedFleet(env.n_trajectories, env.block, 2000.0,
                                   env.timestamps, &rng)};
}

/// "Oldenburg"-like Brinkhoff network workload.
inline TrajectorySet MakeOldenburgLike(const BenchEnv& env, uint64_t seed) {
  Rng rng(seed);
  const RoadNetwork network = RoadNetwork::RandomGrid(
      kWorld, 24, 24, 0.25, 0.12, 0.18, &rng);
  BrinkhoffGenerator::Options opt;
  opt.min_speed = 1.0;
  opt.max_speed = 3.0;
  const BrinkhoffGenerator gen(&network, opt);
  return {"Oldenburg",
          gen.GenerateGroupedFleet(env.n_trajectories, env.block, 2000.0,
                                   env.timestamps, &rng)};
}

/// The synthetic stand-in for the pocketgpsworld POI set.
inline std::vector<Point> MakePoiSet(size_t n, uint64_t seed = 0x901) {
  Rng rng(seed);
  PoiOptions opt;
  opt.world = kWorld;
  opt.clusters = 30;
  opt.cluster_sigma_frac = 0.045;
  opt.background_frac = 0.45;
  return GeneratePois(n, opt, &rng);
}

/// Runs one method over `groups` group blocks of size m and returns merged
/// metrics.
inline SimMetrics RunConfig(const std::vector<Point>& pois, const RTree& tree,
                            const TrajectorySet& set, size_t m,
                            const BenchEnv& env, const ServerConfig& server) {
  auto all_groups = MakeGroups(set.trajectories, m, env.block);
  if (all_groups.size() > env.groups) all_groups.resize(env.groups);
  SimOptions opt;
  opt.server = server;
  return RunGroups(pois, tree, all_groups, opt);
}

/// ServerConfig for one of the paper's method configurations with Table-2
/// parameters.
inline ServerConfig MakeServerConfig(Method method, Objective obj,
                                     int buffer_b = 100) {
  ServerConfig config;
  config.method = method;
  config.objective = obj;
  config.alpha = 30;
  config.split_level = 2;
  config.buffer_b = buffer_b;
  return config;
}

/// Directory every bench CSV lands in: MPN_BENCH_OUTDIR if set, otherwise
/// ./bench-results (gitignored). Created (including parents) on first use
/// so `./build/bench/fig13` run by hand never litters the repo root with
/// stray fig13_*.csv files again; creation is best-effort — WriteCsv
/// reports the actual I/O failure if the path is unusable.
inline const std::string& OutDir() {
  static const std::string dir = [] {
    const char* env = std::getenv("MPN_BENCH_OUTDIR");
    std::string d = (env != nullptr && *env != '\0') ? env : "bench-results";
    while (d.size() > 1 && d.back() == '/') d.pop_back();
    for (size_t slash = d.find('/', d.front() == '/' ? 1 : 0);;
         slash = d.find('/', slash + 1)) {
      ::mkdir(d.substr(0, slash).c_str(), 0777);
      if (slash == std::string::npos) break;
    }
    return d;
  }();
  return dir;
}

/// Output path for one CSV table ("<outdir>/<name>").
inline std::string CsvPath(const std::string& name) {
  return OutDir() + "/" + name;
}

/// Prints a shared bench banner.
inline void Banner(const std::string& title, const BenchEnv& env) {
  std::printf("%s\n", title.c_str());
  std::printf("scale=%s  N=%zu  timestamps=%zu  groups=%zu "
              "(MPN_BENCH_SCALE=full for paper scale)\n",
              env.full ? "full" : "quick", env.n_pois, env.timestamps,
              env.groups);
}

}  // namespace bench
}  // namespace mpn
