// Fig. 15 (MPN): vary user speed in {0.25, 0.5, 0.75, 1.0} * V using the
// paper's resampling protocol (prefix of the path, uniformly resampled);
// report update frequency and communication cost.
#include "bench_common.h"

namespace mpn {
namespace bench {
namespace {

TrajectorySet Rescaled(const TrajectorySet& set, double x) {
  TrajectorySet out;
  out.name = set.name;
  out.trajectories.reserve(set.trajectories.size());
  for (const Trajectory& t : set.trajectories) {
    out.trajectories.push_back(RescaleSpeed(t, x, t.size()));
  }
  return out;
}

void Run() {
  const BenchEnv env = GetBenchEnv();
  Banner("Fig. 15 — MPN, vary user speed", env);
  const auto pois = MakePoiSet(env.n_pois);
  const RTree tree = RTree::BulkLoad(pois);
  const Method methods[] = {Method::kCircle, Method::kTile, Method::kTileD};

  for (const auto& maker : {&MakeGeolifeLike, &MakeOldenburgLike}) {
    const TrajectorySet base = maker(env, 0x15);
    Table freq({"speed/V", "Circle", "Tile", "Tile-D"});
    Table packets({"speed/V", "Circle", "Tile", "Tile-D"});
    for (double x : {0.25, 0.5, 0.75, 1.0}) {
      const TrajectorySet set = Rescaled(base, x);
      std::vector<std::string> frow{FormatDouble(x, 2)};
      std::vector<std::string> prow{FormatDouble(x, 2)};
      for (Method method : methods) {
        const SimMetrics metrics = RunConfig(
            pois, tree, set, 3, env, MakeServerConfig(method, Objective::kMax));
        frow.push_back(FormatDouble(metrics.UpdateFrequency(), 4));
        prow.push_back(FormatDouble(
            static_cast<double>(metrics.comm.TotalPackets()) /
                static_cast<double>(env.groups),
            1));
      }
      freq.AddRow(frow);
      packets.AddRow(prow);
    }
    freq.Print("Fig. 15 " + base.name + " — update frequency (updates/ts)");
    freq.WriteCsv(CsvPath("fig15_" + base.name + "_freq.csv"));
    packets.Print("Fig. 15 " + base.name + " — packets per group");
    packets.WriteCsv(CsvPath("fig15_" + base.name + "_packets.csv"));
  }
}

}  // namespace
}  // namespace bench
}  // namespace mpn

int main() {
  mpn::bench::Run();
  return 0;
}
