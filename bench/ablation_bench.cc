// Ablation harness for the design choices DESIGN.md calls out:
//   A. Theorem-3 index pruning on/off (candidate counts, CPU),
//   B. GT-Verify vs exhaustive IT-Verify inside the full engine,
//   C. directed-ordering cone width (theta sweep),
//   D. compressed vs raw tile-region shipping (values, packets).
#include <cstdio>

#include "bench_common.h"
#include "mpn/compress.h"
#include "mpn/tile_msr.h"
#include "util/timer.h"

namespace mpn {
namespace bench {
namespace {

struct Probe {
  std::vector<Point> users;
  std::vector<MotionHint> hints;
};

std::vector<Probe> MakeProbes(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Probe> probes;
  for (int i = 0; i < count; ++i) {
    Probe p;
    const Point center{rng.Uniform(20000, 80000), rng.Uniform(20000, 80000)};
    for (int j = 0; j < 3; ++j) {
      p.users.push_back({center.x + rng.Uniform(-2000, 2000),
                         center.y + rng.Uniform(-2000, 2000)});
      MotionHint h;
      h.has_heading = true;
      h.heading = rng.Uniform(-3.14, 3.14);
      h.theta = 0.5;
      p.hints.push_back(h);
    }
    probes.push_back(std::move(p));
  }
  return probes;
}

struct RunOut {
  double ms_per_call = 0.0;
  double tiles_added = 0.0;
  double candidates_per_retrieval = 0.0;
  double verify_calls = 0.0;
  double region_values_compressed = 0.0;
  double region_values_raw = 0.0;
};

RunOut RunEngine(const RTree& tree, const std::vector<Probe>& probes,
                 const TileMsrConfig& config) {
  RunOut out;
  Timer timer;
  MsrStats total;
  for (const Probe& p : probes) {
    const MsrResult r =
        ComputeTileMsr(tree, p.users, Objective::kMax, config, p.hints);
    total.tiles_added += r.stats.tiles_added;
    total.verify.calls += r.stats.verify.calls;
    total.candidates.retrievals += r.stats.candidates.retrievals;
    total.candidates.candidates_total += r.stats.candidates.candidates_total;
    for (const SafeRegion& region : r.regions) {
      if (region.is_circle()) continue;
      out.region_values_compressed +=
          static_cast<double>(EncodeTileRegion(region.tiles()).ValueCount());
      out.region_values_raw +=
          static_cast<double>(RawTileValueCount(region.tiles()));
    }
  }
  const double n = static_cast<double>(probes.size());
  out.ms_per_call = timer.ElapsedMillis() / n;
  out.tiles_added = static_cast<double>(total.tiles_added) / n;
  out.verify_calls = static_cast<double>(total.verify.calls) / n;
  out.candidates_per_retrieval =
      static_cast<double>(total.candidates.candidates_total) /
      static_cast<double>(std::max<uint64_t>(1, total.candidates.retrievals));
  out.region_values_compressed /= n;
  out.region_values_raw /= n;
  return out;
}

void Run() {
  const BenchEnv env = GetBenchEnv();
  Banner("Ablations — pruning, GT vs IT, cone width, compression", env);
  const auto pois = MakePoiSet(env.n_pois);
  const RTree tree = RTree::BulkLoad(pois);
  const auto probes = MakeProbes(env.full ? 48 : 16, 0xAB1);

  // A. Theorem-3 pruning.
  {
    TileMsrConfig on;
    on.alpha = 10;
    TileMsrConfig off = on;
    off.index_pruning = false;
    const RunOut a = RunEngine(tree, probes, on);
    const RunOut b = RunEngine(tree, probes, off);
    Table t({"pruning", "ms/computation", "cands/retrieval", "tiles"});
    t.AddRow({"Theorem-3", FormatDouble(a.ms_per_call, 3),
              FormatDouble(a.candidates_per_retrieval, 1),
              FormatDouble(a.tiles_added, 1)});
    t.AddRow({"full-scan", FormatDouble(b.ms_per_call, 3),
              FormatDouble(b.candidates_per_retrieval, 1),
              FormatDouble(b.tiles_added, 1)});
    t.Print("A. index pruning (Theorem 3)");
    t.WriteCsv(CsvPath("ablation_pruning.csv"));
  }

  // B. GT vs IT verification inside the engine. IT's tile-group count is
  // the product of the other users' region sizes, so its cost blows up as
  // regions grow with alpha (Section 5.3's motivation for GT).
  {
    Table t({"alpha", "GT ms", "IT ms", "GT tiles", "IT tiles"});
    for (int alpha : {4, 10, 20}) {
      TileMsrConfig gt;
      gt.alpha = alpha;
      gt.split_level = 1;
      TileMsrConfig it = gt;
      it.verifier = VerifierKind::kIt;
      const RunOut a = RunEngine(tree, probes, gt);
      const RunOut b = RunEngine(tree, probes, it);
      t.AddRow({std::to_string(alpha), FormatDouble(a.ms_per_call, 3),
                FormatDouble(b.ms_per_call, 3), FormatDouble(a.tiles_added, 1),
                FormatDouble(b.tiles_added, 1)});
    }
    t.Print("B. GT-Verify vs exhaustive IT-Verify");
    t.WriteCsv(CsvPath("ablation_verify.csv"));
  }

  // C. Directed cone width.
  {
    Table t({"theta_deg", "ms/computation", "tiles", "values(comp)"});
    for (double deg : {15.0, 30.0, 60.0, 120.0, 180.0}) {
      TileMsrConfig c;
      c.alpha = 20;
      c.directed = true;
      auto tuned = probes;
      for (auto& p : tuned) {
        for (auto& h : p.hints) h.theta = deg * 3.14159265358979 / 180.0;
      }
      const RunOut r = RunEngine(tree, tuned, c);
      t.AddRow({FormatDouble(deg, 0), FormatDouble(r.ms_per_call, 3),
                FormatDouble(r.tiles_added, 1),
                FormatDouble(r.region_values_compressed, 1)});
    }
    t.Print("C. directed ordering cone width");
    t.WriteCsv(CsvPath("ablation_theta.csv"));
  }

  // D. Compression.
  {
    TileMsrConfig c;
    c.alpha = 30;
    const RunOut r = RunEngine(tree, probes, c);
    const PacketModel model;
    Table t({"encoding", "values/region", "packets/region"});
    t.AddRow({"raw (3/square)", FormatDouble(r.region_values_raw / 3.0, 1),
              FormatDouble(
                  static_cast<double>(model.PacketsForValues(
                      static_cast<size_t>(r.region_values_raw / 3.0))),
                  0)});
    t.AddRow({"bitmap codec",
              FormatDouble(r.region_values_compressed / 3.0, 1),
              FormatDouble(
                  static_cast<double>(model.PacketsForValues(
                      static_cast<size_t>(r.region_values_compressed / 3.0))),
                  0)});
    t.Print("D. tile-region shipping cost (per region, alpha=30)");
    t.WriteCsv(CsvPath("ablation_compression.csv"));
  }
}

}  // namespace
}  // namespace bench
}  // namespace mpn

int main() {
  mpn::bench::Run();
  return 0;
}
