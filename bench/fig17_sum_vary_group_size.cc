// Fig. 17 (Sum-MPN): vary group size m in {2..6}; update frequency,
// communication cost and CPU per update for Circle, Tile, Tile-D under the
// SUM objective (Section 6).
#include "bench_common.h"

namespace mpn {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = GetBenchEnv();
  Banner("Fig. 17 — Sum-MPN, vary group size m", env);
  const auto pois = MakePoiSet(env.n_pois);
  const RTree tree = RTree::BulkLoad(pois);
  const Method methods[] = {Method::kCircle, Method::kTile, Method::kTileD};

  for (const auto& maker : {&MakeGeolifeLike, &MakeOldenburgLike}) {
    const TrajectorySet set = maker(env, 0x17);
    Table freq({"m", "Circle", "Tile", "Tile-D"});
    Table packets({"m", "Circle", "Tile", "Tile-D"});
    Table cpu_ms({"m", "Circle", "Tile", "Tile-D"});
    for (size_t m = 2; m <= 6; ++m) {
      std::vector<std::string> frow{std::to_string(m)};
      std::vector<std::string> prow{std::to_string(m)};
      std::vector<std::string> crow{std::to_string(m)};
      for (Method method : methods) {
        const SimMetrics metrics = RunConfig(
            pois, tree, set, m, env,
            MakeServerConfig(method, Objective::kSum));
        frow.push_back(FormatDouble(metrics.UpdateFrequency(), 4));
        prow.push_back(FormatDouble(
            static_cast<double>(metrics.comm.TotalPackets()) /
                static_cast<double>(env.groups),
            1));
        crow.push_back(FormatDouble(metrics.AvgComputeMsPerUpdate(), 3));
      }
      freq.AddRow(frow);
      packets.AddRow(prow);
      cpu_ms.AddRow(crow);
    }
    freq.Print("Fig. 17 " + set.name + " — update frequency (updates/ts)");
    freq.WriteCsv(CsvPath("fig17_" + set.name + "_freq.csv"));
    packets.Print("Fig. 17 " + set.name + " — packets per group");
    packets.WriteCsv(CsvPath("fig17_" + set.name + "_packets.csv"));
    cpu_ms.Print("Fig. 17 " + set.name + " — CPU ms per update");
    cpu_ms.WriteCsv(CsvPath("fig17_" + set.name + "_cpu.csv"));
  }
}

}  // namespace
}  // namespace bench
}  // namespace mpn

int main() {
  mpn::bench::Run();
  return 0;
}
