// Engine scaling harness (not a paper figure): throughput of the
// multi-group concurrent engine as the number of in-flight groups grows
// from 1 to 256 and the thread-pool size grows from 1 to the hardware
// concurrency. Reports groups*rounds/sec, the speedup over the 1-thread
// run, and whether the results stayed bit-identical across thread counts
// (they must — the engine's determinism guarantee). A second table
// isolates the per-user Tile-MSR verification fan-out on a single group.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/engine.h"
#include "util/thread_pool.h"

namespace mpn {
namespace bench {
namespace {

struct RunResult {
  double seconds = 0.0;
  double throughput = 0.0;  // groups*rounds per second
  uint64_t digest = 0;
};

RunResult RunEngineOnce(const std::vector<Point>& pois, const RTree& tree,
                        const std::vector<std::vector<const Trajectory*>>&
                            groups,
                        size_t n_groups, size_t threads, bool parallel_verify,
                        const ServerConfig& server) {
  EngineOptions opt;
  opt.threads = threads;
  opt.parallel_verify = parallel_verify;
  opt.sim.server = server;
  Engine engine(&pois, &tree, opt);
  for (size_t g = 0; g < n_groups; ++g) engine.AddSession(groups[g]);
  Timer timer;
  engine.Run();
  RunResult r;
  r.seconds = timer.ElapsedSeconds();
  const double rounds =
      static_cast<double>(engine.TotalMetrics().timestamps);
  r.throughput = r.seconds > 0.0 ? rounds / r.seconds : 0.0;
  r.digest = engine.ResultDigest();
  return r;
}

void Run() {
  const BenchEnv env = GetBenchEnv();

  // Workload: up to 256 co-located groups of m=3 walkers. Scaled down in
  // quick mode so the full sweep stays in CI budget.
  const size_t max_groups = env.full ? 256 : 64;
  const size_t timestamps = env.full ? 1000 : 200;
  const size_t n_pois = env.full ? env.n_pois : 4000;
  const size_t m = 3;
  std::printf("Engine scale — multi-group throughput vs thread count\n");
  std::printf("scale=%s  N=%zu  timestamps=%zu  max_groups=%zu  m=%zu  "
              "hardware_threads=%zu\n",
              env.full ? "full" : "quick", n_pois, timestamps, max_groups, m,
              ThreadPool::HardwareThreads());

  const auto pois = MakePoiSet(n_pois);
  const RTree tree = RTree::BulkLoad(pois);
  Rng rng(0xE59153);
  RandomWalkGenerator::Options wopt;
  wopt.world = kWorld;
  wopt.mean_speed = 1.5;
  wopt.speed_jitter = 0.25;
  wopt.heading_sigma = 0.06;
  const RandomWalkGenerator gen(wopt);
  const std::vector<Trajectory> trajs =
      gen.GenerateGroupedFleet(max_groups * m, m, 2000.0, timestamps, &rng);
  const auto groups = MakeGroups(trajs, m, m);
  const ServerConfig server = MakeServerConfig(Method::kTileD,
                                               Objective::kMax);

  std::vector<size_t> thread_counts = {1, 2, 4};
  const size_t hw = ThreadPool::HardwareThreads();
  if (hw > 4) thread_counts.push_back(hw);
  std::vector<size_t> group_counts = {1, 4, 16, 64};
  if (max_groups >= 256) group_counts.push_back(256);

  Table table({"groups", "threads", "seconds", "rounds/sec", "speedup",
               "deterministic"});
  for (size_t n_groups : group_counts) {
    double base_throughput = 0.0;
    uint64_t base_digest = 0;
    for (size_t threads : thread_counts) {
      const RunResult r = RunEngineOnce(pois, tree, groups, n_groups,
                                        threads, false, server);
      if (threads == 1) {
        base_throughput = r.throughput;
        base_digest = r.digest;
      }
      table.AddRow({std::to_string(n_groups), std::to_string(threads),
                    FormatDouble(r.seconds, 3), FormatDouble(r.throughput, 0),
                    FormatDouble(base_throughput > 0.0
                                     ? r.throughput / base_throughput
                                     : 1.0,
                                 2),
                    r.digest == base_digest ? "yes" : "NO"});
    }
  }
  table.Print("Engine scale — per-group parallelism (Tile-D, m=3)");
  table.WriteCsv("fig_engine_scale.csv");

  // Per-user verification fan-out on one group: same results, candidate
  // scans spread across the pool. Buffered retrieval keeps candidate lists
  // long enough for the fan-out to engage.
  const ServerConfig buffered = MakeServerConfig(Method::kTileDBuffered,
                                                 Objective::kMax);
  Table fan({"threads", "seconds", "rounds/sec", "deterministic"});
  uint64_t fan_base_digest = 0;
  for (size_t threads : thread_counts) {
    const RunResult r = RunEngineOnce(pois, tree, groups, 1, threads, true,
                                      buffered);
    if (threads == 1) fan_base_digest = r.digest;
    fan.AddRow({std::to_string(threads), FormatDouble(r.seconds, 3),
                FormatDouble(r.throughput, 0),
                r.digest == fan_base_digest ? "yes" : "NO"});
  }
  fan.Print("Engine scale — per-user verification fan-out (1 group, "
            "Tile-D-b)");
  fan.WriteCsv("fig_engine_scale_fanout.csv");
}

}  // namespace
}  // namespace bench
}  // namespace mpn

int main() {
  mpn::bench::Run();
  return 0;
}
