// Engine scaling harness (not a paper figure): the event-driven scheduler
// under three workloads.
//
//  1. Throughput of the multi-group engine as the number of in-flight
//     groups grows from 1 to 256 and the thread-pool size grows from 1 to
//     the hardware concurrency, now with per-session round-latency
//     percentiles (p50/p99 of the gaps between consecutive advance
//     completions, over all sessions). Digests must stay bit-identical
//     across thread counts — the engine's determinism guarantee.
//  2. Straggler isolation: one session's recomputations are padded 10x.
//     Under the old lockstep round loop every session's round latency
//     inflated behind the barrier; with per-session clocks the straggler
//     delays only itself, so the non-stragglers' percentiles should match
//     a straggler-free control run (up to CPU contention — one core of
//     the pool is burning in the padded recompute).
//  3. Churn: half the sessions are admitted mid-run under an admission
//     hold and a quarter retire at half their horizon; the digest must
//     not depend on the thread count.
//  4. Process shards: the same workload on a multi-process ClusterEngine
//     with 1/2/4 forked workers. The cluster digest must be bit-identical
//     to the single-process engine over the same groups (the cluster's
//     determinism guarantee); throughput shows what forked shards buy
//     once real cores are available (the 1-core dev box shows none).
//  5. Elastic recovery: one worker is killed mid-run (deterministic
//     virtual-timestamp crash injection) and one drain reply is corrupted
//     in flight (deterministic transport fault injection, caught by the
//     frame CRC). The supervisor forks replacements and re-admits each
//     shard's groups from the coordinator snapshot. The table reports the
//     restart count, re-admitted session count, the hardened-transport
//     counters (crc_fail / hb_miss / deadline_hits) and recovery
//     wall-clock, and checks the digest is still bit-identical to the
//     single-process engine.
//  6. Kernel ablation: the same workload with the scalar reference
//     verification kernel vs the SoA lane kernels (mpn/tile_msr.h
//     KernelKind). The digests must be bit-identical — the kernels make
//     the same decisions — and soa_speedup is the whole-engine win from
//     batching the candidate scans.
//  7. Index ablation: the same workload over the dynamic R-tree
//     (insert-built and bulk-loaded) and the packed STR/Hilbert flat
//     layouts (index/packed_rtree.h). Digests must be bit-identical;
//     query_speedup (mixed range+circle probe throughput over the
//     insert-built tree) is the CI-gated packed-layout win.
//  8. Out-of-core spill: thousands of m=2 sessions (1M+ in full mode)
//     under a fixed memory budget (engine/session_store.h). The digest
//     must be bit-identical to the unbudgeted run across thread counts
//     and cluster shards, the spill/rehydrate counters are exact at one
//     thread, and peak RSS is sampled to show the cap actually bounds
//     resident session state.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/cluster.h"
#include "engine/engine.h"
#include "index/packed_rtree.h"
#include "index/spatial_index.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace mpn {
namespace bench {
namespace {

struct RunResult {
  double seconds = 0.0;
  double throughput = 0.0;  // groups*rounds per second
  uint64_t digest = 0;
  double p50_ms = 0.0;      // per-session round-latency percentiles
  double p99_ms = 0.0;
  uint64_t verify_calls = 0;  // total verifier invocations (deterministic)
};

/// Round latency of one session: gaps between consecutive advance
/// completions (the time each next virtual timestamp took to land).
void AppendAdvanceGapsMs(const Engine& engine, uint32_t id,
                         std::vector<double>* gaps) {
  const std::vector<double>& at = engine.session_advance_seconds(id);
  for (size_t t = 1; t < at.size(); ++t) {
    if (at[t] > 0.0 && at[t - 1] > 0.0) {
      gaps->push_back((at[t] - at[t - 1]) * 1e3);
    }
  }
}

RunResult RunEngineOnce(const std::vector<Point>& pois, SpatialIndex tree,
                        const std::vector<std::vector<const Trajectory*>>&
                            groups,
                        size_t n_groups, size_t threads, bool parallel_verify,
                        const ServerConfig& server) {
  EngineOptions opt;
  opt.threads = threads;
  opt.parallel_verify = parallel_verify;
  opt.sim.server = server;
  Engine engine(&pois, tree, opt);
  for (size_t g = 0; g < n_groups; ++g) engine.AdmitSession(groups[g]);
  Timer timer;
  engine.Run();
  RunResult r;
  r.seconds = timer.ElapsedSeconds();
  const double rounds =
      static_cast<double>(engine.TotalMetrics().timestamps);
  r.throughput = r.seconds > 0.0 ? rounds / r.seconds : 0.0;
  r.digest = engine.ResultDigest();
  r.verify_calls = engine.TotalMetrics().msr.verify.calls;
  std::vector<double> gaps;
  for (uint32_t id = 0; id < n_groups; ++id) {
    AppendAdvanceGapsMs(engine, id, &gaps);
  }
  r.p50_ms = Quantile(gaps, 0.5);
  r.p99_ms = Quantile(gaps, 0.99);
  return r;
}

void RunScaleTable(const std::vector<Point>& pois, const RTree& tree,
                   const std::vector<std::vector<const Trajectory*>>& groups,
                   const std::vector<size_t>& group_counts,
                   const std::vector<size_t>& thread_counts,
                   const ServerConfig& server) {
  Table table({"groups", "threads", "seconds", "rounds/sec", "speedup",
               "lat_p50_ms", "lat_p99_ms", "deterministic"});
  for (size_t n_groups : group_counts) {
    double base_throughput = 0.0;
    uint64_t base_digest = 0;
    for (size_t threads : thread_counts) {
      const RunResult r = RunEngineOnce(pois, tree, groups, n_groups,
                                        threads, false, server);
      if (threads == thread_counts.front()) {
        base_throughput = r.throughput;
        base_digest = r.digest;
      }
      table.AddRow({std::to_string(n_groups), std::to_string(threads),
                    FormatDouble(r.seconds, 3), FormatDouble(r.throughput, 0),
                    FormatDouble(base_throughput > 0.0
                                     ? r.throughput / base_throughput
                                     : 1.0,
                                 2),
                    FormatDouble(r.p50_ms, 3), FormatDouble(r.p99_ms, 3),
                    r.digest == base_digest ? "yes" : "NO"});
    }
  }
  table.Print("Engine scale — per-session parallelism (Tile-D, m=3)");
  table.WriteCsv(CsvPath("fig_engine_scale.csv"));
}

void RunStragglerTable(const std::vector<Point>& pois, const RTree& tree,
                       const std::vector<std::vector<const Trajectory*>>&
                           groups,
                       size_t n_groups,
                       const std::vector<size_t>& thread_counts,
                       const ServerConfig& server) {
  Table table({"threads", "straggler", "strag_p99_ms", "others_p50_ms",
               "others_p99_ms", "seconds", "deterministic"});
  for (size_t threads : thread_counts) {
    uint64_t control_digest = 0;
    for (int with_straggler = 0; with_straggler < 2; ++with_straggler) {
      EngineOptions opt;
      opt.threads = threads;
      opt.sim.server = server;
      Engine engine(&pois, &tree, opt);
      for (size_t g = 0; g < n_groups; ++g) {
        SessionTuning tuning;
        if (with_straggler == 1 && g == 0) {
          tuning.recompute_cost_factor = 10.0;
        }
        engine.AdmitSession(groups[g], tuning);
      }
      Timer timer;
      engine.Run();
      const double seconds = timer.ElapsedSeconds();
      // The pad is wall-clock only, so the digest must not move.
      if (with_straggler == 0) control_digest = engine.ResultDigest();
      std::vector<double> strag_gaps, other_gaps;
      for (uint32_t id = 0; id < n_groups; ++id) {
        AppendAdvanceGapsMs(engine, id,
                            id == 0 && with_straggler == 1 ? &strag_gaps
                                                           : &other_gaps);
      }
      table.AddRow(
          {std::to_string(threads), with_straggler == 1 ? "10x" : "none",
           with_straggler == 1 ? FormatDouble(Quantile(strag_gaps, 0.99), 3)
                               : "-",
           FormatDouble(Quantile(other_gaps, 0.5), 3),
           FormatDouble(Quantile(other_gaps, 0.99), 3),
           FormatDouble(seconds, 3),
           engine.ResultDigest() == control_digest ? "yes" : "NO"});
    }
  }
  table.Print("Engine scale — straggler isolation (one session padded 10x; "
              "others_p99 should match the straggler-free row)");
  table.WriteCsv(CsvPath("fig_engine_scale_straggler.csv"));
}

void RunChurnTable(const std::vector<Point>& pois, const RTree& tree,
                   const std::vector<std::vector<const Trajectory*>>& groups,
                   size_t n_groups, size_t timestamps,
                   const std::vector<size_t>& thread_counts,
                   const ServerConfig& server) {
  Table table({"threads", "sessions", "retired", "seconds", "rounds/sec",
               "deterministic"});
  uint64_t base_digest = 0;
  for (size_t threads : thread_counts) {
    EngineOptions opt;
    opt.threads = threads;
    opt.sim.server = server;
    Engine engine(&pois, &tree, opt);
    Engine::Hold hold = engine.AcquireHold();
    size_t retired = 0;
    Timer timer;
    // Half the sessions up front (every fourth retiring at half horizon),
    // the other half admitted while the engine is already draining.
    for (size_t g = 0; g < n_groups; ++g) {
      SessionTuning tuning;
      if (g % 4 == 0) {
        tuning.retire_at = timestamps / 2;
        ++retired;
      }
      if (g == n_groups / 2) engine.Start();
      engine.AdmitSession(groups[g], tuning);
    }
    hold.Reset();
    engine.Wait();
    const double seconds = timer.ElapsedSeconds();
    if (threads == thread_counts.front()) base_digest = engine.ResultDigest();
    const double rounds =
        static_cast<double>(engine.TotalMetrics().timestamps);
    table.AddRow({std::to_string(threads), std::to_string(n_groups),
                  std::to_string(retired), FormatDouble(seconds, 3),
                  FormatDouble(seconds > 0.0 ? rounds / seconds : 0.0, 0),
                  engine.ResultDigest() == base_digest ? "yes" : "NO"});
  }
  table.Print("Engine scale — churn (half admitted mid-run, quarter retired "
              "at half horizon)");
  table.WriteCsv(CsvPath("fig_engine_scale_churn.csv"));
}

void RunClusterTable(const std::vector<Point>& pois, const RTree& tree,
                     const std::vector<std::vector<const Trajectory*>>&
                         groups,
                     size_t n_groups,
                     const std::vector<size_t>& shard_counts,
                     const ServerConfig& server) {
  // Single-process reference digest (engine destroyed before the first
  // fork so no thread-pool workers are alive across fork()).
  uint64_t ref_digest = 0;
  {
    const RunResult r = RunEngineOnce(pois, tree, groups, n_groups, 1, false,
                                      server);
    ref_digest = r.digest;
  }
  Table table({"shards", "groups", "seconds", "rounds/sec", "deterministic"});
  for (size_t shards : shard_counts) {
    ClusterOptions opt;
    opt.workers = shards;
    opt.engine.threads = 1;
    opt.engine.sim.server = server;
    ClusterEngine cluster(&pois, &tree, opt);
    for (size_t g = 0; g < n_groups; ++g) cluster.AdmitSession(groups[g]);
    Timer timer;
    cluster.Run();
    const double seconds = timer.ElapsedSeconds();
    const double rounds =
        static_cast<double>(cluster.TotalMetrics().timestamps);
    table.AddRow({std::to_string(shards), std::to_string(n_groups),
                  FormatDouble(seconds, 3),
                  FormatDouble(seconds > 0.0 ? rounds / seconds : 0.0, 0),
                  cluster.ResultDigest() == ref_digest ? "yes" : "NO"});
  }
  table.Print("Engine scale — process shards (forked workers, groups routed "
              "by id % shards; digest vs single-process engine)");
  table.WriteCsv(CsvPath("fig_engine_scale_cluster.csv"));
}

void RunRecoveryTable(const std::vector<Point>& pois, const RTree& tree,
                      const std::vector<std::vector<const Trajectory*>>&
                          groups,
                      size_t n_groups, size_t timestamps,
                      const std::vector<size_t>& shard_counts,
                      const ServerConfig& server) {
  // Single-process reference digest: supervised recovery must be invisible
  // in the results, so every killed-worker run is checked against it.
  uint64_t ref_digest = 0;
  {
    const RunResult r = RunEngineOnce(pois, tree, groups, n_groups, 1, false,
                                      server);
    ref_digest = r.digest;
  }
  Table table({"shards", "groups", "kills", "faults", "restarts",
               "readmitted", "crc_fail", "hb_miss", "deadline_hits",
               "seconds", "recover_ms", "deterministic"});
  for (size_t shards : shard_counts) {
    ClusterOptions opt;
    opt.workers = shards;
    opt.engine.threads = 1;
    opt.engine.sim.server = server;
    // Generous liveness tuning: the bench asserts hb_miss stays exactly 0
    // in the baseline diff, so a descheduled-but-healthy worker on a
    // loaded CI box must never be mistaken for a hang.
    opt.transport.heartbeat_timeout_ms = 2000;
    opt.transport.heartbeat_miss_budget = 5;
    ClusterEngine cluster(&pois, &tree, opt);
    // One deterministic mid-run death on the last shard: the supervisor
    // forks a replacement and re-admits the shard's groups from the
    // coordinator snapshot.
    cluster.KillWorkerAt(shards - 1, timestamps / 2);
    // Plus one transport fault on shard 0: its first drain reply is
    // corrupted in flight. The frame-op index counts the shard's channel
    // ops — n_groups/shards admit recvs, the drain recv, then the reply
    // send — so the coordinator's CRC32 check trips exactly once
    // (crc_fail), the shard restarts and the digest must not move.
    cluster.InjectFaultAt(0, n_groups / shards + 1, FaultKind::kCorrupt);
    for (size_t g = 0; g < n_groups; ++g) cluster.AdmitSession(groups[g]);
    Timer timer;
    cluster.Run();
    const double seconds = timer.ElapsedSeconds();
    const ClusterEngine::RecoveryStats rs = cluster.recovery_stats();
    table.AddRow({std::to_string(shards), std::to_string(n_groups), "1", "1",
                  std::to_string(rs.restarts),
                  std::to_string(rs.sessions_readmitted),
                  std::to_string(rs.checksum_failures),
                  std::to_string(rs.heartbeat_misses),
                  std::to_string(rs.deadline_hits),
                  FormatDouble(seconds, 3),
                  FormatDouble(rs.recovery_seconds * 1e3, 3),
                  cluster.ResultDigest() == ref_digest ? "yes" : "NO"});
  }
  table.Print("Engine scale — elastic recovery (one worker killed mid-run, "
              "one drain reply corrupted in flight; digest vs "
              "single-process engine)");
  table.WriteCsv(CsvPath("fig_engine_scale_recovery.csv"));
}

// Scalar vs SoA verification kernels over the full engine loop (single
// thread so the ratio is a pure kernel comparison). The decision sequences
// are bit-identical by construction, so the digests — which fold every
// verify/candidate/index counter — must match; soa_speedup is the
// wall-clock ratio scalar/soa.
void RunKernelTable(const std::vector<Point>& pois, const RTree& tree,
                    const std::vector<std::vector<const Trajectory*>>& groups,
                    const std::vector<size_t>& group_counts,
                    const ServerConfig& server) {
  Table table({"groups", "scalar_seconds", "soa_seconds", "soa_speedup",
               "verify_calls", "deterministic"});
  ServerConfig scalar_cfg = server;
  scalar_cfg.kernel = KernelKind::kScalar;
  ServerConfig soa_cfg = server;
  soa_cfg.kernel = KernelKind::kSoA;
  for (size_t n_groups : group_counts) {
    const RunResult rs =
        RunEngineOnce(pois, tree, groups, n_groups, 1, false, scalar_cfg);
    const RunResult rv =
        RunEngineOnce(pois, tree, groups, n_groups, 1, false, soa_cfg);
    const bool identical =
        rs.digest == rv.digest && rs.verify_calls == rv.verify_calls;
    table.AddRow({std::to_string(n_groups), FormatDouble(rs.seconds, 3),
                  FormatDouble(rv.seconds, 3),
                  FormatDouble(rv.seconds > 0.0 ? rs.seconds / rv.seconds
                                                : 1.0,
                               2),
                  std::to_string(rv.verify_calls),
                  identical ? "yes" : "NO"});
  }
  table.Print("Engine scale — scalar vs SoA verification kernels (Tile-D, "
              "1 thread)");
  table.WriteCsv(CsvPath("fig_engine_scale_kernels.csv"));
}

/// Index ablation: the same workload over the dynamic R-tree (insert-built
/// and bulk-loaded) and the packed flat layouts (STR / Hilbert). Every
/// backend must produce the bit-identical digest; build_ms is the one-time
/// index construction cost, queries/sec a mixed range+circle probe
/// throughput on the built index, and query_speedup that throughput
/// relative to the insert-built dynamic tree.
void RunIndexTable(const std::vector<Point>& pois,
                   const std::vector<std::vector<const Trajectory*>>& groups,
                   size_t n_groups, const ServerConfig& server) {
  Table table({"index", "build_ms", "queries/sec", "query_speedup",
               "seconds", "rounds/sec", "deterministic"});

  // Mixed probe workload: 128 range + 128 circle queries spanning ~5% of
  // the world each, repeated enough to time reliably.
  Rng rng(0xE7D1CE);
  std::vector<Rect> rects;
  std::vector<Point> centers;
  const double side = 10000.0;
  for (int i = 0; i < 128; ++i) {
    const Point lo{rng.Uniform(0, 100000 - side),
                   rng.Uniform(0, 100000 - side)};
    rects.push_back(Rect(lo, {lo.x + side, lo.y + side}));
    centers.push_back({rng.Uniform(0, 100000), rng.Uniform(0, 100000)});
  }
  const auto queries_per_sec = [&](SpatialIndex view) {
    std::vector<uint32_t> out;
    const size_t reps = 20;
    Timer timer;
    for (size_t rep = 0; rep < reps; ++rep) {
      for (size_t q = 0; q < rects.size(); ++q) {
        out.clear();
        view.RangeQuery(rects[q], &out);
        out.clear();
        view.CircleRangeQuery(centers[q], side / 2.0, &out);
      }
    }
    const double sec = timer.ElapsedSeconds();
    const double n = static_cast<double>(2 * reps * rects.size());
    return sec > 0.0 ? n / sec : 0.0;
  };

  RTree inserted;
  Timer insert_timer;
  for (size_t i = 0; i < pois.size(); ++i) {
    inserted.Insert(pois[i], static_cast<uint32_t>(i));
  }
  const double insert_ms = insert_timer.ElapsedSeconds() * 1e3;

  Timer bulk_timer;
  const RTree bulk = RTree::BulkLoad(pois);
  const double bulk_ms = bulk_timer.ElapsedSeconds() * 1e3;

  Timer str_timer;
  const PackedRTree packed_str =
      PackedRTree::Build(pois, PackAlgorithm::kStr);
  const double str_ms = str_timer.ElapsedSeconds() * 1e3;

  Timer hilbert_timer;
  const PackedRTree packed_hilbert =
      PackedRTree::Build(pois, PackAlgorithm::kHilbert);
  const double hilbert_ms = hilbert_timer.ElapsedSeconds() * 1e3;

  struct IndexRow {
    const char* name;
    SpatialIndex view;
    double build_ms;
  };
  const IndexRow rows[] = {
      {"dynamic_insert", SpatialIndex(&inserted), insert_ms},
      {"dynamic_bulk", SpatialIndex(&bulk), bulk_ms},
      {"packed_str", SpatialIndex(&packed_str), str_ms},
      {"packed_hilbert", SpatialIndex(&packed_hilbert), hilbert_ms},
  };
  double base_qps = 0.0;
  uint64_t base_digest = 0;
  for (const IndexRow& row : rows) {
    const double qps = queries_per_sec(row.view);
    const RunResult r =
        RunEngineOnce(pois, row.view, groups, n_groups, 1, false, server);
    if (row.view.dynamic_tree() == &inserted) {
      base_qps = qps;
      base_digest = r.digest;
    }
    table.AddRow({row.name, FormatDouble(row.build_ms, 2),
                  FormatDouble(qps, 0),
                  FormatDouble(base_qps > 0.0 ? qps / base_qps : 1.0, 2),
                  FormatDouble(r.seconds, 3), FormatDouble(r.throughput, 0),
                  r.digest == base_digest ? "yes" : "NO"});
  }
  table.Print("Engine scale — dynamic vs packed spatial index (Tile-D, "
              "1 thread)");
  table.WriteCsv(CsvPath("fig_engine_scale_index.csv"));
}

// --- out-of-core session spill (8) -----------------------------------------

/// Current VmRSS of this process in bytes (0 if /proc is unreadable).
size_t ReadVmRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

/// Samples VmRSS on a background thread while a run is in flight and keeps
/// the maximum — peak RSS *during this run*, unlike VmHWM which never
/// resets across the rows of the table.
class RssSampler {
 public:
  RssSampler() : peak_(ReadVmRssBytes()) {
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_acquire)) {
        const size_t rss = ReadVmRssBytes();
        if (rss > peak_) peak_ = rss;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }
  size_t Stop() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
    const size_t rss = ReadVmRssBytes();
    return rss > peak_ ? rss : peak_;
  }

 private:
  size_t peak_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

struct SpillRun {
  uint64_t digest = 0;
  MemoryStats mem;
  double seconds = 0.0;
  size_t rss_peak = 0;
};

SpillRun RunSpillOnce(const std::vector<Point>& pois, const RTree& tree,
                      const std::vector<std::vector<const Trajectory*>>&
                          groups,
                      size_t n_sessions, size_t threads, size_t cap_bytes,
                      const ServerConfig& server) {
  EngineOptions opt;
  opt.threads = threads;
  opt.sim.server = server;
  opt.budget.bytes_cap = cap_bytes;
  Engine engine(&pois, &tree, opt);
  RssSampler rss;
  Timer timer;
  for (size_t i = 0; i < n_sessions; ++i) {
    engine.AdmitSession(groups[i % groups.size()]);
  }
  engine.Run();
  SpillRun r;
  r.seconds = timer.ElapsedSeconds();
  r.rss_peak = rss.Stop();
  r.digest = engine.ResultDigest();
  r.mem = engine.memory_stats();
  return r;
}

SpillRun RunSpillClusterOnce(const std::vector<Point>& pois,
                             const RTree& tree,
                             const std::vector<std::vector<const Trajectory*>>&
                                 groups,
                             size_t n_sessions, size_t shards,
                             size_t cap_bytes, const ServerConfig& server) {
  ClusterOptions opt;
  opt.workers = shards;
  opt.engine.threads = 1;
  opt.engine.sim.server = server;
  opt.engine.budget.bytes_cap = cap_bytes;  // per-shard cap
  ClusterEngine cluster(&pois, &tree, opt);
  RssSampler rss;
  Timer timer;
  for (size_t i = 0; i < n_sessions; ++i) {
    cluster.AdmitSession(groups[i % groups.size()]);
  }
  cluster.Run();
  SpillRun r;
  r.seconds = timer.ElapsedSeconds();
  r.rss_peak = rss.Stop();
  r.digest = cluster.ResultDigest();
  r.mem = cluster.memory_stats();
  return r;
}

/// The ROADMAP acceptance table: sessions far beyond what fits resident,
/// run under a fixed byte cap. Counters are printed exactly only where
/// they are deterministic (single-threaded, single-process); the digest
/// must match the unbudgeted reference in every row. 2048 sessions in
/// quick mode; full mode adds a 1M+-session row (the "millions of users"
/// north star) checked via two-cap digest identity.
void RunSpillTable(const std::vector<Point>& pois, const RTree& tree) {
  // Dedicated small workload: m=2 groups over a shared pool of 64 short
  // trajectories, so session count — not trajectory storage — dominates.
  const BenchEnv env = GetBenchEnv();
  const size_t m = 2;
  const size_t n_trajs = 64;
  const size_t timestamps = 16;
  Rng rng(0x5B111);
  RandomWalkGenerator::Options wopt;
  wopt.world = kWorld;
  wopt.mean_speed = 1.5;
  wopt.heading_sigma = 0.06;
  const RandomWalkGenerator gen(wopt);
  const std::vector<Trajectory> trajs =
      gen.GenerateGroupedFleet(n_trajs, m, 2000.0, timestamps, &rng);
  const auto groups = MakeGroups(trajs, m, m);
  const ServerConfig server =
      MakeServerConfig(Method::kCircle, Objective::kMax);

  const size_t quick_sessions = 2048;
  const size_t quick_cap = 256 * 1024;  // bytes; far below resident demand

  Table table({"sessions", "threads", "shards", "budget_kb", "spilled",
               "rehydrated", "spilled_kb", "peak_resident_kb", "rss_mb",
               "seconds", "deterministic"});
  const auto add_row = [&table](size_t sessions, size_t threads,
                                size_t shards, size_t cap_bytes,
                                const SpillRun& r, bool exact_counters,
                                bool ok) {
    table.AddRow(
        {std::to_string(sessions), std::to_string(threads),
         shards == 0 ? "-" : std::to_string(shards),
         std::to_string(cap_bytes / 1024),
         exact_counters ? std::to_string(r.mem.spilled_sessions) : "-",
         exact_counters ? std::to_string(r.mem.rehydrated_sessions) : "-",
         exact_counters ? std::to_string(r.mem.spilled_bytes / 1024) : "-",
         exact_counters ? std::to_string(r.mem.peak_resident_bytes / 1024)
                        : "-",
         FormatDouble(static_cast<double>(r.rss_peak) / (1024.0 * 1024.0), 1),
         FormatDouble(r.seconds, 3), ok ? "yes" : "NO"});
  };

  // Unbudgeted reference: digest D0, nothing may spill.
  const SpillRun base =
      RunSpillOnce(pois, tree, groups, quick_sessions, 1, 0, server);
  add_row(quick_sessions, 1, 0, 0, base, true,
          base.mem.spilled_sessions == 0);

  // Budgeted single-thread row: spill counters deterministic and gated
  // exactly in the baselines; the spill path must actually run, and the
  // charged resident peak must stay at the cap (eviction is synchronous
  // on the charging thread, so the overshoot is at most one snapshot —
  // peak_resident_kb itself stays a timing-class column because the
  // exact overshoot byte count is interleaving-dependent).
  const SpillRun b1 =
      RunSpillOnce(pois, tree, groups, quick_sessions, 1, quick_cap, server);
  add_row(quick_sessions, 1, 0, quick_cap, b1, true,
          b1.digest == base.digest && b1.mem.spilled_sessions > 0 &&
              b1.mem.rehydrated_sessions > 0 &&
              b1.mem.peak_resident_bytes <= quick_cap + quick_cap / 4);

  // Thread scaling: counters race (victim selection depends on timing) so
  // only the digest is gated.
  for (const size_t threads : {size_t{2}, size_t{4}}) {
    const SpillRun r = RunSpillOnce(pois, tree, groups, quick_sessions,
                                    threads, quick_cap, server);
    add_row(quick_sessions, threads, 0, quick_cap, r, false,
            r.digest == base.digest && r.mem.spilled_sessions > 0);
  }

  // Cluster shards with a per-shard cap: spill totals arrive over the
  // drain protocol; the merged digest must still match D0.
  const SpillRun c2 = RunSpillClusterOnce(pois, tree, groups, quick_sessions,
                                          2, quick_cap, server);
  add_row(quick_sessions, 1, 2, quick_cap, c2, false,
          c2.digest == base.digest && c2.mem.spilled_sessions > 0);

  if (env.full) {
    // 1M+ sessions under a fixed cap — would be ~GBs resident unbudgeted.
    // No unbudgeted reference at this scale (that is the point); digest
    // identity across two different caps certifies the spill round trip,
    // since any serialization loss would move at least one of them.
    const size_t big = size_t{1} << 20;
    const SpillRun f1 = RunSpillOnce(pois, tree, groups, big, 1,
                                     4 * 1024 * 1024, server);
    add_row(big, 1, 0, 4 * 1024 * 1024, f1, true,
            f1.mem.spilled_sessions > 0 &&
                f1.mem.peak_resident_bytes <= 4 * 1024 * 1024 + 64 * 1024);
    const SpillRun f2 = RunSpillOnce(pois, tree, groups, big, 1,
                                     16 * 1024 * 1024, server);
    add_row(big, 1, 0, 16 * 1024 * 1024, f2, true,
            f2.digest == f1.digest && f2.mem.spilled_sessions > 0);
    std::printf("1M-session RSS under 4 MB evictable cap: %.1f MB peak\n",
                static_cast<double>(f1.rss_peak) / (1024.0 * 1024.0));
  }

  table.Print("Engine scale — out-of-core session spill (Circle, m=2, "
              "horizon 16; budget caps resident session state)");
  table.WriteCsv(CsvPath("fig_engine_scale_spill.csv"));
}

void Run() {
  const BenchEnv env = GetBenchEnv();

  // Workload: up to 256 co-located groups of m=3 walkers. Scaled down in
  // quick mode so the full sweep stays in CI budget.
  const size_t max_groups = env.full ? 256 : 64;
  const size_t timestamps = env.full ? 1000 : 200;
  const size_t n_pois = env.full ? env.n_pois : 4000;
  const size_t m = 3;
  std::printf("Engine scale — event-driven scheduler, groups vs threads\n");
  std::printf("scale=%s  N=%zu  timestamps=%zu  max_groups=%zu  m=%zu  "
              "hardware_threads=%zu\n",
              env.full ? "full" : "quick", n_pois, timestamps, max_groups, m,
              ThreadPool::HardwareThreads());

  const auto pois = MakePoiSet(n_pois);
  const RTree tree = RTree::BulkLoad(pois);
  Rng rng(0xE59153);
  RandomWalkGenerator::Options wopt;
  wopt.world = kWorld;
  wopt.mean_speed = 1.5;
  wopt.speed_jitter = 0.25;
  wopt.heading_sigma = 0.06;
  const RandomWalkGenerator gen(wopt);
  const std::vector<Trajectory> trajs =
      gen.GenerateGroupedFleet(max_groups * m, m, 2000.0, timestamps, &rng);
  const auto groups = MakeGroups(trajs, m, m);
  const ServerConfig server = MakeServerConfig(Method::kTileD,
                                               Objective::kMax);

  std::vector<size_t> thread_counts = {1, 2, 4};
  const size_t hw = ThreadPool::HardwareThreads();
  if (hw > 4) thread_counts.push_back(hw);
  std::vector<size_t> group_counts = {1, 4, 16, 64};
  if (max_groups >= 256) group_counts.push_back(256);

  RunScaleTable(pois, tree, groups, group_counts, thread_counts, server);
  RunStragglerTable(pois, tree, groups, std::min<size_t>(16, max_groups),
                    thread_counts, server);
  RunChurnTable(pois, tree, groups, std::min<size_t>(32, max_groups),
                timestamps, thread_counts, server);
  RunClusterTable(pois, tree, groups, std::min<size_t>(16, max_groups),
                  {1, 2, 4}, server);
  RunRecoveryTable(pois, tree, groups, std::min<size_t>(16, max_groups),
                   timestamps, {2, 4}, server);
  RunKernelTable(pois, tree, groups, {1, std::min<size_t>(16, max_groups)},
                 server);
  RunIndexTable(pois, groups, std::min<size_t>(16, max_groups), server);
  RunSpillTable(pois, tree);

  // Per-user verification fan-out on one group: same results, candidate
  // scans spread across the pool. Buffered retrieval keeps candidate lists
  // long enough for the fan-out to engage.
  const ServerConfig buffered = MakeServerConfig(Method::kTileDBuffered,
                                                 Objective::kMax);
  Table fan({"threads", "seconds", "rounds/sec", "deterministic"});
  uint64_t fan_base_digest = 0;
  for (size_t threads : thread_counts) {
    const RunResult r = RunEngineOnce(pois, tree, groups, 1, threads, true,
                                      buffered);
    if (threads == 1) fan_base_digest = r.digest;
    fan.AddRow({std::to_string(threads), FormatDouble(r.seconds, 3),
                FormatDouble(r.throughput, 0),
                r.digest == fan_base_digest ? "yes" : "NO"});
  }
  fan.Print("Engine scale — per-user verification fan-out (1 group, "
            "Tile-D-b)");
  fan.WriteCsv(CsvPath("fig_engine_scale_fanout.csv"));
}

}  // namespace
}  // namespace bench
}  // namespace mpn

int main() {
  mpn::bench::Run();
  return 0;
}
