// Fig. 18 (Sum-MPN): vary POI count n in {0.25..1.0} * N under the SUM
// objective; tile-based methods should degrade more slowly than Circle.
#include "bench_common.h"

namespace mpn {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = GetBenchEnv();
  Banner("Fig. 18 — Sum-MPN, vary POI count n", env);
  const auto full_pois = MakePoiSet(env.n_pois);
  const Method methods[] = {Method::kCircle, Method::kTile, Method::kTileD};

  for (const auto& maker : {&MakeGeolifeLike, &MakeOldenburgLike}) {
    const TrajectorySet set = maker(env, 0x18);
    Table freq({"n/N", "Circle", "Tile", "Tile-D"});
    Table packets({"n/N", "Circle", "Tile", "Tile-D"});
    for (double frac : {0.25, 0.5, 0.75, 1.0}) {
      const size_t n = static_cast<size_t>(frac * full_pois.size());
      const std::vector<Point> pois(full_pois.begin(), full_pois.begin() + n);
      const RTree tree = RTree::BulkLoad(pois);
      std::vector<std::string> frow{FormatDouble(frac, 2)};
      std::vector<std::string> prow{FormatDouble(frac, 2)};
      for (Method method : methods) {
        const SimMetrics metrics = RunConfig(
            pois, tree, set, 3, env, MakeServerConfig(method, Objective::kSum));
        frow.push_back(FormatDouble(metrics.UpdateFrequency(), 4));
        prow.push_back(FormatDouble(
            static_cast<double>(metrics.comm.TotalPackets()) /
                static_cast<double>(env.groups),
            1));
      }
      freq.AddRow(frow);
      packets.AddRow(prow);
    }
    freq.Print("Fig. 18 " + set.name + " — update frequency (updates/ts)");
    freq.WriteCsv(CsvPath("fig18_" + set.name + "_freq.csv"));
    packets.Print("Fig. 18 " + set.name + " — packets per group");
    packets.WriteCsv(CsvPath("fig18_" + set.name + "_packets.csv"));
  }
}

}  // namespace
}  // namespace bench
}  // namespace mpn

int main() {
  mpn::bench::Run();
  return 0;
}
