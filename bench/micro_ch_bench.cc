// Micro benchmarks for the Contraction Hierarchies index: point-to-point
// query latency vs per-query Dijkstra on synthetic road networks of 10^4+
// nodes (the acceptance headline — CH must be >= 10x faster), the
// group->POI many-to-many batch, and preprocessing cost.
//
// BM_P2P_SpeedupSummary prints the measured ratio directly as counters
// (dijkstra_us, ch_us, speedup), with distances cross-checked bit-equal.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "index/ch.h"
#include "netmpn/network_mpn.h"
#include "traj/generators.h"
#include "traj/road_network.h"
#include "util/macros.h"
#include "util/timer.h"

namespace mpn {
namespace {

/// The 10^5-node graph only runs at MPN_BENCH_SCALE=full (its CH build is
/// a one-off cost the quick CI budget should not pay).
bool FullScale() {
  const char* s = std::getenv("MPN_BENCH_SCALE");
  return s != nullptr && std::string(s) == "full";
}

void P2PArgs(benchmark::internal::Benchmark* b) {
  b->Arg(16384);
  b->Arg(32400);
  if (FullScale()) b->Arg(102400);
}

struct ChFixtureData {
  RoadNetwork net;
  CHIndex ch;
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
};

/// Grid network of `nodes` (rounded to a square) with the CH built once.
const ChFixtureData& Fixture(size_t nodes) {
  static std::map<size_t, ChFixtureData> cache;
  auto& f = cache[nodes];
  if (f.net.NodeCount() == 0) {
    SyntheticNetworkOptions opt;
    opt.topology = SyntheticNetworkOptions::Topology::kGrid;
    opt.nodes = nodes;
    Rng rng(0xC41);
    f.net = MakeSyntheticNetwork(opt, &rng);
    f.ch = f.net.BuildCHIndex();
    Rng prng(0xC42);
    for (int i = 0; i < 256; ++i) {
      f.pairs.push_back(
          {static_cast<uint32_t>(prng.UniformInt(
               0, static_cast<int64_t>(f.net.NodeCount()) - 1)),
           static_cast<uint32_t>(prng.UniformInt(
               0, static_cast<int64_t>(f.net.NodeCount()) - 1))});
    }
    // The determinism contract, spot-checked right where we benchmark.
    for (int i = 0; i < 16; ++i) {
      const auto [s, t] = f.pairs[i];
      MPN_ASSERT(f.ch.Distance(s, t) == f.net.ShortestPathDistance(s, t));
    }
  }
  return f;
}

void BM_P2P_Dijkstra(benchmark::State& state) {
  const auto& f = Fixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const auto [s, t] = f.pairs[i++ % f.pairs.size()];
    benchmark::DoNotOptimize(f.net.ShortestPathDistance(s, t));
  }
  state.counters["nodes"] = static_cast<double>(f.net.NodeCount());
}
BENCHMARK(BM_P2P_Dijkstra)->Apply(P2PArgs)->Unit(benchmark::kMicrosecond);

void BM_P2P_CH(benchmark::State& state) {
  const auto& f = Fixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const auto [s, t] = f.pairs[i++ % f.pairs.size()];
    benchmark::DoNotOptimize(f.ch.Distance(s, t));
  }
  state.counters["nodes"] = static_cast<double>(f.net.NodeCount());
  state.counters["shortcuts"] = static_cast<double>(f.ch.ShortcutCount());
}
BENCHMARK(BM_P2P_CH)->Apply(P2PArgs)->Unit(benchmark::kMicrosecond);

// One self-contained run that reports the ratio the acceptance criterion
// asks for: >= 10x over per-query Dijkstra on a >= 10^4-node graph.
void BM_P2P_SpeedupSummary(benchmark::State& state) {
  const auto& f = Fixture(static_cast<size_t>(state.range(0)));
  const size_t k = f.pairs.size();
  double dijkstra_s = 0.0, ch_s = 0.0;
  for (auto _ : state) {
    Timer td;
    double sink = 0.0;
    for (size_t i = 0; i < k; ++i) {
      sink += f.net.ShortestPathDistance(f.pairs[i].first, f.pairs[i].second);
    }
    dijkstra_s = td.ElapsedSeconds();
    Timer tc;
    double sink2 = 0.0;
    for (size_t i = 0; i < k; ++i) {
      sink2 += f.ch.Distance(f.pairs[i].first, f.pairs[i].second);
    }
    ch_s = tc.ElapsedSeconds();
    MPN_ASSERT(sink == sink2);  // bit-identical, summed in the same order
    benchmark::DoNotOptimize(sink2);
  }
  state.counters["dijkstra_us"] = 1e6 * dijkstra_s / static_cast<double>(k);
  state.counters["ch_us"] = 1e6 * ch_s / static_cast<double>(k);
  state.counters["speedup"] = ch_s > 0.0 ? dijkstra_s / ch_s : 0.0;
}
BENCHMARK(BM_P2P_SpeedupSummary)->Apply(P2PArgs)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// The netmpn group->POI aggregate query: one Compute (m users x N POIs).
void BM_GroupCompute(benchmark::State& state, bool use_ch) {
  const auto& f = Fixture(16384);
  NetworkSpace space(&f.net);
  if (use_ch) space.AttachIndex(&f.ch);
  Rng rng(0xC43);
  std::vector<EdgePosition> pois;
  for (int i = 0; i < 256; ++i) pois.push_back(RandomEdgePosition(space, &rng));
  const NetworkMpn engine(&space, pois);
  std::vector<std::vector<EdgePosition>> groups;
  for (int g = 0; g < 16; ++g) {
    std::vector<EdgePosition> users;
    for (int i = 0; i < 4; ++i) users.push_back(RandomEdgePosition(space, &rng));
    groups.push_back(std::move(users));
  }
  size_t i = 0;
  for (auto _ : state) {
    const NetworkMpnResult r =
        engine.Compute(groups[i++ % groups.size()], Objective::kMax);
    benchmark::DoNotOptimize(r.po_agg);
  }
}
void BM_GroupCompute_Dijkstra(benchmark::State& state) {
  BM_GroupCompute(state, false);
}
void BM_GroupCompute_CH(benchmark::State& state) {
  BM_GroupCompute(state, true);
}
BENCHMARK(BM_GroupCompute_Dijkstra)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupCompute_CH)->Unit(benchmark::kMillisecond);

void BM_BuildCH(benchmark::State& state) {
  SyntheticNetworkOptions opt;
  opt.nodes = static_cast<size_t>(state.range(0));
  Rng rng(0xC44);
  const RoadNetwork net = MakeSyntheticNetwork(opt, &rng);
  size_t shortcuts = 0;
  for (auto _ : state) {
    const CHIndex ch = net.BuildCHIndex();
    shortcuts = ch.ShortcutCount();
    benchmark::DoNotOptimize(shortcuts);
  }
  state.counters["shortcuts"] = static_cast<double>(shortcuts);
}
void BuildArgs(benchmark::internal::Benchmark* b) {
  b->Arg(4096);
  if (FullScale()) b->Arg(16384);
}
BENCHMARK(BM_BuildCH)->Apply(BuildArgs)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpn
