// Micro benchmarks: one full safe-region computation per method (the cost a
// server pays per update), plus the compression codec.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mpn/circle_msr.h"
#include "mpn/compress.h"
#include "mpn/tile_msr.h"

namespace mpn {
namespace {

struct MsrFixture {
  std::vector<Point> pois;
  RTree tree;
  std::vector<std::vector<Point>> user_sets;
  std::vector<std::vector<MotionHint>> hint_sets;
};

const MsrFixture& Fixture(size_t n) {
  static std::map<size_t, MsrFixture> cache;
  auto& f = cache[n];
  if (f.pois.empty()) {
    f.pois = bench::MakePoiSet(n, 0xD0);
    f.tree = RTree::BulkLoad(f.pois);
    Rng rng(0xD1);
    for (int i = 0; i < 32; ++i) {
      std::vector<Point> users;
      std::vector<MotionHint> hints;
      for (int j = 0; j < 3; ++j) {
        users.push_back({rng.Uniform(30000, 70000),
                         rng.Uniform(30000, 70000)});
        MotionHint h;
        h.has_heading = true;
        h.heading = rng.Uniform(-3.14, 3.14);
        h.theta = 0.8;
        hints.push_back(h);
      }
      f.user_sets.push_back(std::move(users));
      f.hint_sets.push_back(std::move(hints));
    }
  }
  return f;
}

void BM_CircleMsr(benchmark::State& state) {
  const auto& f = Fixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeCircleMsr(f.tree, f.user_sets[i++ % f.user_sets.size()],
                         Objective::kMax));
  }
}

void RunTileMsr(benchmark::State& state, bool directed, bool buffered,
                Objective obj, KernelKind kernel = KernelKind::kSoA) {
  const auto& f = Fixture(static_cast<size_t>(state.range(0)));
  MsrScratch scratch;
  TileMsrConfig config;
  config.alpha = 30;
  config.split_level = 2;
  config.directed = directed;
  config.buffered = buffered;
  config.kernel = kernel;
  config.scratch = &scratch;
  size_t i = 0;
  for (auto _ : state) {
    const size_t k = i++ % f.user_sets.size();
    benchmark::DoNotOptimize(
        ComputeTileMsr(f.tree, f.user_sets[k], obj, config, f.hint_sets[k]));
  }
}

void BM_TileMsr(benchmark::State& state) {
  RunTileMsr(state, false, false, Objective::kMax);
}
void BM_TileDMsr(benchmark::State& state) {
  RunTileMsr(state, true, false, Objective::kMax);
}
// The scalar-kernel ablation of BM_TileDMsr: same computation through the
// original AoS verification walk, for the before/after kernel comparison.
void BM_TileDMsrScalar(benchmark::State& state) {
  RunTileMsr(state, true, false, Objective::kMax, KernelKind::kScalar);
}
void BM_TileDbMsr(benchmark::State& state) {
  RunTileMsr(state, true, true, Objective::kMax);
}
void BM_SumTileDMsr(benchmark::State& state) {
  RunTileMsr(state, true, false, Objective::kSum);
}
void BM_SumTileDbMsr(benchmark::State& state) {
  RunTileMsr(state, true, true, Objective::kSum);
}

void BM_EncodeDecodeRegion(benchmark::State& state) {
  const auto& f = Fixture(21287);
  TileMsrConfig config;
  config.alpha = 30;
  const auto result =
      ComputeTileMsr(f.tree, f.user_sets[0], Objective::kMax, config);
  TileRegion region = result.regions[0].is_circle()
                          ? TileRegion({0, 0}, 1.0)
                          : result.regions[0].tiles();
  if (region.empty()) region.Add(GridTile{0, 0, 0});
  for (auto _ : state) {
    const auto enc = EncodeTileRegion(region);
    benchmark::DoNotOptimize(DecodeTileRegion(enc));
  }
}

BENCHMARK(BM_CircleMsr)->Arg(1000)->Arg(21287);
BENCHMARK(BM_TileMsr)->Arg(1000)->Arg(21287)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TileDMsr)->Arg(1000)->Arg(21287)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TileDMsrScalar)->Arg(21287)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TileDbMsr)->Arg(1000)->Arg(21287)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SumTileDMsr)->Arg(21287)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SumTileDbMsr)->Arg(21287)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EncodeDecodeRegion);

}  // namespace
}  // namespace mpn

BENCHMARK_MAIN();
