// Micro benchmarks for the verification layer: Lemma-1 Verify, GT-Verify vs
// exhaustive IT-Verify (the Section-5.3 ablation), the scalar-vs-SoA
// candidate-scan kernels (the tentpole >= 2x acceptance number), and the
// hyperbola focal-difference minimization of Algorithm 6.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "geom/focal_diff.h"
#include "mpn/circle_msr.h"
#include "mpn/tile_msr.h"
#include "mpn/tile_verify.h"
#include "mpn/verify.h"
#include "util/arena.h"
#include "util/macros.h"

namespace mpn {
namespace {

struct VerifyFixture {
  std::vector<Point> pois;
  RTree tree;
  std::vector<Point> users;
  Point po;
  uint32_t po_id = 0;
  std::vector<TileRegion> regions;  // grown regions with several tiles
  std::vector<Candidate> candidates;
  Rect probe_tile;
};

// Builds a realistic verification scenario: Table-2-style engine state with
// grown regions, then probes a fresh ring-2 tile.
const VerifyFixture& Fixture(size_t tiles_per_user) {
  static std::map<size_t, VerifyFixture> cache;
  auto& f = cache[tiles_per_user];
  if (f.pois.empty()) {
    f.pois = bench::MakePoiSet(5000, 0xC0);
    f.tree = RTree::BulkLoad(f.pois);
    Rng rng(0xC1);
    for (int i = 0; i < 3; ++i) {
      f.users.push_back({rng.Uniform(40000, 60000),
                         rng.Uniform(40000, 60000)});
    }
    TileMsrConfig config;
    config.alpha = static_cast<int>(tiles_per_user);
    const auto result =
        ComputeTileMsr(f.tree, f.users, Objective::kMax, config);
    f.po = result.po;
    f.po_id = result.po_id;
    for (const auto& r : result.regions) {
      f.regions.push_back(r.is_circle() ? TileRegion(Point{0, 0}, 1.0)
                                        : r.tiles());
      if (f.regions.back().empty()) f.regions.back().Add(GridTile{0, 0, 0});
    }
    const auto top = FindGnn(f.tree, f.users, Objective::kMax, 64);
    for (size_t i = 1; i < top.size(); ++i) {
      f.candidates.push_back({top[i].id, top[i].p});
    }
    f.probe_tile = f.regions[0].TileRect(GridTile{0, 2, 0});

    // The scan benches below compare the scalar and SoA kernels; assert
    // here, once per fixture, that they agree on every decision and
    // produce identical counters (the bit-identity contract the
    // differential tests enforce engine-wide).
    MaxGtVerifier verifier;
    Arena arena;
    const TileLanes lanes = BuildTileLanes(f.regions, f.probe_tile, f.po,
                                           &arena);
    VerifyStats scalar_stats, soa_stats;
    for (const Candidate& c : f.candidates) {
      const bool a = verifier.VerifyTileThreadSafe(f.regions, 0, f.probe_tile,
                                                   c, f.po, &scalar_stats);
      const bool b = verifier.VerifyTileLanes(lanes, 0, f.probe_tile, c,
                                              &soa_stats);
      MPN_ASSERT_MSG(a == b, "scalar/SoA kernel decision divergence");
    }
    MPN_ASSERT(scalar_stats.calls == soa_stats.calls &&
               scalar_stats.accepted == soa_stats.accepted);
  }
  return f;
}

void BM_VerifyLemma1(benchmark::State& state) {
  const auto& f = Fixture(8);
  std::vector<SafeRegion> regions;
  for (const auto& r : f.regions) regions.push_back(SafeRegion::MakeTiles(r));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VerifyLemma1(regions, f.po, f.candidates[i++ % f.candidates.size()].p));
  }
}

void BM_GtVerify(benchmark::State& state) {
  const auto& f = Fixture(static_cast<size_t>(state.range(0)));
  MaxGtVerifier verifier;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.VerifyTile(
        f.regions, 0, f.probe_tile, f.candidates[i++ % f.candidates.size()],
        f.po));
  }
}

void BM_ItVerify(benchmark::State& state) {
  const auto& f = Fixture(static_cast<size_t>(state.range(0)));
  MaxItVerifier verifier(1ull << 40);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.VerifyTile(
        f.regions, 0, f.probe_tile, f.candidates[i++ % f.candidates.size()],
        f.po));
  }
}

// One full candidate scan per iteration — the unit of work Divide-Verify
// pays per probed tile — on the scalar AoS walk. No early exit so both
// scan benches measure the same number of verifications.
void BM_GtVerifyScanScalar(benchmark::State& state) {
  const auto& f = Fixture(static_cast<size_t>(state.range(0)));
  MaxGtVerifier verifier;
  VerifyStats stats;
  for (auto _ : state) {
    bool all = true;
    for (const Candidate& c : f.candidates) {
      all &= verifier.VerifyTileThreadSafe(f.regions, 0, f.probe_tile, c,
                                           f.po, &stats);
    }
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.candidates.size()));
}

// The same scan through the batched SoA kernel: one snapshot build (which
// hoists the candidate-independent ||po,t||_max lanes) plus one lane pass
// per candidate. items/sec vs BM_GtVerifyScanScalar is the tentpole's
// >= 2x acceptance ratio.
void BM_GtVerifyScanSoA(benchmark::State& state) {
  const auto& f = Fixture(static_cast<size_t>(state.range(0)));
  MaxGtVerifier verifier;
  Arena arena;
  VerifyStats stats;
  for (auto _ : state) {
    arena.Reset();
    const TileLanes lanes = BuildTileLanes(f.regions, f.probe_tile, f.po,
                                           &arena);
    bool all = true;
    for (const Candidate& c : f.candidates) {
      all &= verifier.VerifyTileLanes(lanes, 0, f.probe_tile, c, &stats);
    }
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.candidates.size()));
}

void BM_SumHyperbolaVerify(benchmark::State& state) {
  const auto& f = Fixture(static_cast<size_t>(state.range(0)));
  SumHyperbolaVerifier verifier(f.po, f.regions.size());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.VerifyTile(
        f.regions, 0, f.probe_tile, f.candidates[i++ % f.candidates.size()],
        f.po));
  }
}

void BM_MinFocalDiff(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::tuple<Point, Point, Rect>> cases;
  for (int i = 0; i < 256; ++i) {
    const Point lo{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    cases.push_back({{rng.Uniform(-100, 100), rng.Uniform(-100, 100)},
                     {rng.Uniform(-100, 100), rng.Uniform(-100, 100)},
                     Rect(lo, {lo.x + 10, lo.y + 10})});
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b, r] = cases[i++ % cases.size()];
    benchmark::DoNotOptimize(MinFocalDiffOverRect(a, b, r));
  }
}

// GT vs IT at growing region sizes: the Section-5.3 motivation. IT explodes
// combinatorially; GT stays near-linear in the total tile count.
BENCHMARK(BM_GtVerify)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_ItVerify)->Arg(2)->Arg(4)->Arg(8);
// Scalar vs SoA full-scan throughput — compare items/sec at equal Arg.
BENCHMARK(BM_GtVerifyScanScalar)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_GtVerifyScanSoA)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_SumHyperbolaVerify)->Arg(2)->Arg(8)->Arg(16);
BENCHMARK(BM_VerifyLemma1);
BENCHMARK(BM_MinFocalDiff);

}  // namespace
}  // namespace mpn

BENCHMARK_MAIN();
