// Road-network scale harness (not a paper figure): the netmpn layer on
// synthetic grid / random-planar networks as the node count grows far
// beyond the seed fixtures. For each graph it reports CH preprocessing
// cost, point-to-point query latency (per-query Dijkstra vs CH), and the
// group->POI aggregate query (NetworkMpn::Compute) with and without the
// index — asserting along the way that both paths return bit-identical
// results, the CH determinism contract.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "netmpn/network_mpn.h"
#include "traj/generators.h"
#include "util/macros.h"
#include "util/timer.h"

namespace mpn {
namespace bench {
namespace {

struct ScaleRow {
  std::string topology;
  size_t nodes = 0;
  size_t edges = 0;
  size_t shortcuts = 0;
  double build_s = 0.0;
  double p2p_dijkstra_us = 0.0;
  double p2p_ch_us = 0.0;
  double group_dijkstra_ms = 0.0;
  double group_ch_ms = 0.0;
  bool identical = true;
};

ScaleRow RunOne(SyntheticNetworkOptions::Topology topology, size_t nodes,
                uint64_t seed) {
  ScaleRow row;
  row.topology =
      topology == SyntheticNetworkOptions::Topology::kGrid ? "grid" : "planar";
  SyntheticNetworkOptions opt;
  opt.topology = topology;
  opt.nodes = nodes;
  Rng rng(seed);
  const RoadNetwork net = MakeSyntheticNetwork(opt, &rng);
  row.nodes = net.NodeCount();
  row.edges = net.EdgeCount();

  Timer build_timer;
  const CHIndex ch = net.BuildCHIndex();
  row.build_s = build_timer.ElapsedSeconds();
  row.shortcuts = ch.ShortcutCount();

  NetworkSpace dijkstra_space(&net);
  NetworkSpace ch_space(&net);
  ch_space.AttachIndex(&ch);

  // Point-to-point: random node pairs, both engines, distances bit-equal.
  const size_t p2p_queries = 64;
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (size_t i = 0; i < p2p_queries; ++i) {
    pairs.push_back({static_cast<uint32_t>(rng.UniformInt(
                         0, static_cast<int64_t>(net.NodeCount()) - 1)),
                     static_cast<uint32_t>(rng.UniformInt(
                         0, static_cast<int64_t>(net.NodeCount()) - 1))});
  }
  Timer td;
  double dsum = 0.0;
  for (const auto& [s, t] : pairs) dsum += net.ShortestPathDistance(s, t);
  row.p2p_dijkstra_us =
      1e6 * td.ElapsedSeconds() / static_cast<double>(p2p_queries);
  Timer tc;
  double csum = 0.0;
  for (const auto& [s, t] : pairs) csum += ch.Distance(s, t);
  row.p2p_ch_us = 1e6 * tc.ElapsedSeconds() / static_cast<double>(p2p_queries);
  row.identical = row.identical && dsum == csum;

  // Group->POI aggregate queries: m=4 users, 256 POIs, 8 groups.
  std::vector<EdgePosition> pois;
  for (int i = 0; i < 256; ++i) {
    pois.push_back(RandomEdgePosition(dijkstra_space, &rng));
  }
  const NetworkMpn dijkstra_engine(&dijkstra_space, pois);
  const NetworkMpn ch_engine(&ch_space, pois);
  std::vector<std::vector<EdgePosition>> groups;
  for (int g = 0; g < 8; ++g) {
    std::vector<EdgePosition> users;
    for (int i = 0; i < 4; ++i) {
      users.push_back(RandomEdgePosition(dijkstra_space, &rng));
    }
    groups.push_back(std::move(users));
  }
  std::vector<NetworkMpnResult> dijkstra_results;
  Timer tg;
  for (const auto& users : groups) {
    dijkstra_results.push_back(dijkstra_engine.Compute(users, Objective::kMax));
  }
  row.group_dijkstra_ms =
      1e3 * tg.ElapsedSeconds() / static_cast<double>(groups.size());
  Timer th;
  for (size_t g = 0; g < groups.size(); ++g) {
    const NetworkMpnResult r = ch_engine.Compute(groups[g], Objective::kMax);
    row.identical = row.identical &&
                    r.po_index == dijkstra_results[g].po_index &&
                    r.po_agg == dijkstra_results[g].po_agg &&
                    r.rmax == dijkstra_results[g].rmax;
  }
  row.group_ch_ms =
      1e3 * th.ElapsedSeconds() / static_cast<double>(groups.size());
  MPN_ASSERT_MSG(row.identical, "CH results diverged from Dijkstra");
  return row;
}

void Run() {
  const BenchEnv env = GetBenchEnv();
  std::printf("netmpn scale — CH index vs per-query Dijkstra\n");
  std::printf("scale=%s  (MPN_BENCH_SCALE=full adds the 10^5-node graphs)\n",
              env.full ? "full" : "quick");

  using Topology = SyntheticNetworkOptions::Topology;
  std::vector<std::pair<Topology, size_t>> configs = {
      {Topology::kGrid, 4096},
      {Topology::kRandomPlanar, 4096},
      {Topology::kGrid, 16384},
      {Topology::kRandomPlanar, 16384},
  };
  if (env.full) {
    configs.push_back({Topology::kGrid, 102400});
    configs.push_back({Topology::kRandomPlanar, 102400});
  }

  // Timing column names must hit scripts/update_baselines.py's
  // TIMING_MARKERS so baseline diff tooling treats them as host-dependent.
  Table table({"topology", "nodes", "edges", "shortcuts", "build_seconds",
               "p2p_dijkstra_time_us", "p2p_ch_time_us", "p2p_speedup",
               "group_dijkstra_ms", "group_ch_ms", "group_speedup",
               "identical"});
  for (const auto& [topology, nodes] : configs) {
    const ScaleRow r = RunOne(topology, nodes, 0xD15C0 + nodes);
    table.AddRow(
        {r.topology, std::to_string(r.nodes), std::to_string(r.edges),
         std::to_string(r.shortcuts), FormatDouble(r.build_s, 3),
         FormatDouble(r.p2p_dijkstra_us, 1), FormatDouble(r.p2p_ch_us, 1),
         FormatDouble(r.p2p_ch_us > 0 ? r.p2p_dijkstra_us / r.p2p_ch_us : 0.0,
                      1),
         FormatDouble(r.group_dijkstra_ms, 2), FormatDouble(r.group_ch_ms, 2),
         FormatDouble(r.group_ch_ms > 0
                          ? r.group_dijkstra_ms / r.group_ch_ms
                          : 0.0,
                      1),
         r.identical ? "yes" : "NO"});
  }
  table.Print("netmpn scale — CH vs Dijkstra (m=4, N=256 POIs, MAX)");
  table.WriteCsv(CsvPath("fig_netmpn_scale.csv"));
}

}  // namespace
}  // namespace bench
}  // namespace mpn

int main() {
  mpn::bench::Run();
  return 0;
}
