// Micro benchmarks for the spatial-index substrate: build strategies and
// query primitives at (and past) the paper's data scale, for the dynamic
// R-tree and both packed flat layouts (index/packed_rtree.h). The packed
// query benches at the largest sweep point carry the >= 2x range/circle
// throughput criterion over the insert-built dynamic tree
// (scripts/check_baselines.py gates the engine-level ratio; these rows
// localize the win to the index).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "index/spatial_index.h"

namespace mpn {
namespace {

const std::vector<Point>& Pois(size_t n) {
  static std::map<size_t, std::vector<Point>> cache;
  auto& p = cache[n];
  if (p.empty()) p = bench::MakePoiSet(n, 0xE0);
  return p;
}

/// One built index per (kind, n), shared across query benches.
SpatialIndex Index(IndexKind kind, size_t n) {
  static std::map<std::pair<int, size_t>, PoiIndex> cache;
  const auto key = std::make_pair(static_cast<int>(kind), n);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, PoiIndex::Build(Pois(n), kind)).first;
  }
  return it->second.view();
}

/// Insert-built dynamic tree (the packed layouts' comparison baseline).
const RTree& InsertTree(size_t n) {
  static std::map<size_t, RTree> cache;
  auto& tree = cache[n];
  if (tree.empty()) {
    const auto& pts = Pois(n);
    for (size_t i = 0; i < pts.size(); ++i) {
      tree.Insert(pts[i], static_cast<uint32_t>(i));
    }
  }
  return tree;
}

// ---- build-mode sweep ----

void BM_InsertBuild(benchmark::State& state) {
  const auto& pts = Pois(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RTree tree;
    for (size_t i = 0; i < pts.size(); ++i) {
      tree.Insert(pts[i], static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(tree);
  }
}

void BM_BulkLoad(benchmark::State& state) {
  const auto& pts = Pois(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RTree::BulkLoad(pts));
  }
}

void BM_PackStr(benchmark::State& state) {
  const auto& pts = Pois(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PackedRTree::Build(pts, PackAlgorithm::kStr));
  }
}

void BM_PackHilbert(benchmark::State& state) {
  const auto& pts = Pois(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PackedRTree::Build(pts, PackAlgorithm::kHilbert));
  }
}

// ---- query-kind x index-kind sweep ----
// range(0): index kind (-1 = insert-built dynamic); range(1): POI count;
// range(2): query size (rect side / circle radius / k).

std::vector<Rect> RangeQueries(double side, uint64_t seed = 0xE2) {
  Rng rng(seed);
  std::vector<Rect> queries;
  for (int i = 0; i < 128; ++i) {
    const Point lo{rng.Uniform(0, 100000 - side),
                   rng.Uniform(0, 100000 - side)};
    queries.push_back(Rect(lo, {lo.x + side, lo.y + side}));
  }
  return queries;
}

std::vector<Point> QueryPoints(uint64_t seed = 0xE1) {
  Rng rng(seed);
  std::vector<Point> queries;
  for (int i = 0; i < 128; ++i) {
    queries.push_back({rng.Uniform(0, 100000), rng.Uniform(0, 100000)});
  }
  return queries;
}

SpatialIndex IndexArg(const benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(1));
  if (state.range(0) < 0) return SpatialIndex(&InsertTree(n));
  return Index(static_cast<IndexKind>(state.range(0)), n);
}

void BM_RangeQuery(benchmark::State& state) {
  const SpatialIndex index = IndexArg(state);
  const auto queries = RangeQueries(static_cast<double>(state.range(2)));
  size_t i = 0;
  std::vector<uint32_t> out;
  for (auto _ : state) {
    out.clear();
    index.RangeQuery(queries[i++ % queries.size()], &out);
    benchmark::DoNotOptimize(out);
  }
}

void BM_CircleQuery(benchmark::State& state) {
  const SpatialIndex index = IndexArg(state);
  const auto queries = QueryPoints();
  const double radius = static_cast<double>(state.range(2));
  size_t i = 0;
  std::vector<uint32_t> out;
  for (auto _ : state) {
    out.clear();
    index.CircleRangeQuery(queries[i++ % queries.size()], radius, &out);
    benchmark::DoNotOptimize(out);
  }
}

void BM_Knn(benchmark::State& state) {
  const SpatialIndex index = IndexArg(state);
  const auto queries = QueryPoints();
  const size_t k = static_cast<size_t>(state.range(2));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Knn(queries[i++ % queries.size()], k));
  }
}

constexpr int kInsert = -1;  // insert-built dynamic tree (reference)
constexpr int kDynamic = static_cast<int>(IndexKind::kDynamic);
constexpr int kStr = static_cast<int>(IndexKind::kPackedStr);
constexpr int kHilbert = static_cast<int>(IndexKind::kPackedHilbert);

// Paper scale (21,287 POIs) and the large sweep point (100,000), on the
// insert-built reference, the bulk-loaded dynamic tree and both packed
// layouts.
void QuerySweep(benchmark::internal::Benchmark* b,
                std::initializer_list<int64_t> sizes) {
  for (int kind : {kInsert, kDynamic, kStr, kHilbert}) {
    for (int64_t n : {int64_t{21287}, int64_t{100000}}) {
      for (int64_t size : sizes) b->Args({kind, n, size});
    }
  }
}

BENCHMARK(BM_InsertBuild)->Arg(5000)->Arg(21287)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BulkLoad)->Arg(5000)->Arg(21287)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PackStr)->Arg(5000)->Arg(21287)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PackHilbert)->Arg(5000)->Arg(21287)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_RangeQuery)->Apply([](benchmark::internal::Benchmark* b) {
  QuerySweep(b, {1000, 10000});
});
BENCHMARK(BM_CircleQuery)->Apply([](benchmark::internal::Benchmark* b) {
  QuerySweep(b, {500, 5000});
});
BENCHMARK(BM_Knn)->Apply([](benchmark::internal::Benchmark* b) {
  QuerySweep(b, {10, 100});
});

}  // namespace
}  // namespace mpn

BENCHMARK_MAIN();
