// Micro benchmarks for the R-tree substrate: build strategies and query
// primitives at the paper's data scale.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "index/rtree.h"

namespace mpn {
namespace {

const std::vector<Point>& Pois(size_t n) {
  static std::map<size_t, std::vector<Point>> cache;
  auto& p = cache[n];
  if (p.empty()) p = bench::MakePoiSet(n, 0xE0);
  return p;
}

void BM_BulkLoad(benchmark::State& state) {
  const auto& pts = Pois(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RTree::BulkLoad(pts));
  }
}

void BM_InsertBuild(benchmark::State& state) {
  const auto& pts = Pois(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RTree tree;
    for (size_t i = 0; i < pts.size(); ++i) {
      tree.Insert(pts[i], static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(tree);
  }
}

void BM_Knn(benchmark::State& state) {
  const auto& pts = Pois(21287);
  static RTree tree = RTree::BulkLoad(pts);
  Rng rng(0xE1);
  std::vector<Point> queries;
  for (int i = 0; i < 128; ++i) {
    queries.push_back({rng.Uniform(0, 100000), rng.Uniform(0, 100000)});
  }
  const size_t k = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Knn(queries[i++ % queries.size()], k));
  }
}

void BM_RangeQuery(benchmark::State& state) {
  const auto& pts = Pois(21287);
  static RTree tree = RTree::BulkLoad(pts);
  Rng rng(0xE2);
  const double side = static_cast<double>(state.range(0));
  std::vector<Rect> queries;
  for (int i = 0; i < 128; ++i) {
    const Point lo{rng.Uniform(0, 100000 - side),
                   rng.Uniform(0, 100000 - side)};
    queries.push_back(Rect(lo, {lo.x + side, lo.y + side}));
  }
  size_t i = 0;
  std::vector<uint32_t> out;
  for (auto _ : state) {
    out.clear();
    tree.RangeQuery(queries[i++ % queries.size()], &out);
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_BulkLoad)->Arg(5000)->Arg(21287)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InsertBuild)->Arg(5000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Knn)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_RangeQuery)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace mpn

BENCHMARK_MAIN();
