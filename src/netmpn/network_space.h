// Road-network metric space (the paper's Section-8 future-work extension).
//
// Positions live on network edges; distances are shortest-path lengths.
// The key observation enabling the extension is that Theorems 1 and 5 only
// use the triangle inequality, so they hold verbatim in the network metric:
// the Circle-MSR analogue assigns each user the *metric ball* of radius
// rmax = (d2 - d1)/2 (MAX) or (d2 - d1)/(2m) (SUM), materialized as a set
// of road-segment intervals ("a range search region over road segments",
// exactly as the paper sketches).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "index/ch.h"
#include "traj/road_network.h"
#include "util/macros.h"

namespace mpn {

/// A position on a road network: an offset along an (undirected) edge.
struct EdgePosition {
  uint32_t edge_id = 0;
  double offset = 0.0;  ///< distance from the edge's endpoint `a`, in [0, len]
};

/// A union of intervals over network edges; the shape of network safe
/// regions (metric balls).
class NetworkBall {
 public:
  /// One covered stretch of an edge.
  struct Segment {
    uint32_t edge_id;
    double lo;
    double hi;
  };

  /// Adds a raw interval (merged lazily by Finalize).
  void AddSegment(uint32_t edge_id, double lo, double hi);

  /// Sorts and merges overlapping intervals per edge. Must be called after
  /// the last AddSegment and before queries.
  void Finalize();

  /// Closed containment with tolerance `eps` (movement sampling lands on
  /// interval endpoints).
  bool Contains(const EdgePosition& pos, double eps = 1e-9) const;

  /// Total covered road length.
  double TotalLength() const;

  size_t SegmentCount() const { return segments_.size(); }
  const std::vector<Segment>& segments() const { return segments_; }

  /// Number of 8-byte values to ship the region (edge id + two offsets per
  /// segment, packed as 2 values).
  size_t ValueCount() const { return 2 * segments_.size(); }

 private:
  std::vector<Segment> segments_;  // sorted by (edge_id, lo) after Finalize
  bool finalized_ = false;
};

/// Edge-indexed view of a RoadNetwork with shortest-path machinery for
/// edge positions.
class NetworkSpace {
 public:
  struct Edge {
    uint32_t a;
    uint32_t b;
    double length;
  };

  /// The network must outlive the space. Builds the edge table (undirected
  /// edges deduplicated with a < b).
  explicit NetworkSpace(const RoadNetwork* network);

  size_t EdgeCount() const { return edges_.size(); }
  size_t NodeCount() const { return network_->NodeCount(); }
  const Edge& edge(uint32_t id) const { return edges_[id]; }

  /// Attaches a CH index built over the same network (see
  /// RoadNetwork::BuildCHIndex; the index must outlive the space or be
  /// detached with nullptr). Point-to-point `Distance` and
  /// `DistancesToTargets` then route through the index; Dijkstra remains
  /// the fallback and the correctness oracle, and still serves full
  /// one-to-all tables and metric balls, where a bounded / early-exit
  /// Dijkstra beats any point-to-point index.
  void AttachIndex(const CHIndex* index) {
    MPN_ASSERT(index == nullptr || index->NodeCount() == NodeCount());
    index_ = index;
  }
  const CHIndex* index() const { return index_; }

  /// The two CH seeds of an edge position — its endpoints with their
  /// offsets, the exact initialization NodeDistancesFrom uses.
  std::array<CHIndex::Seed, 2> SeedsOf(const EdgePosition& pos) const {
    const Edge& e = edges_[pos.edge_id];
    return {{{e.a, pos.offset}, {e.b, e.length - pos.offset}}};
  }

  /// Euclidean embedding of a network position (for visualization).
  Point ToEuclidean(const EdgePosition& pos) const;

  /// Validates an edge position (offset within the edge).
  bool IsValid(const EdgePosition& pos) const;

  /// Shortest network distance from `src` to every node (Dijkstra seeded
  /// with both endpoints of the source edge).
  std::vector<double> NodeDistancesFrom(const EdgePosition& src) const;

  /// Shortest network distance between two edge positions (accounts for the
  /// direct in-edge path when both lie on the same edge). Routes through
  /// the CH index when attached, else an early-exit Dijkstra; the value is
  /// bit-identical either way.
  double Distance(const EdgePosition& a, const EdgePosition& b) const;

  /// Distances from `src` to every target node of a precomputed CH target
  /// set — bit-identical to reading NodeDistancesFrom(src) at those nodes,
  /// but one upward search instead of a full Dijkstra. Requires an
  /// attached index (the target set must come from it).
  void DistancesToTargets(const EdgePosition& src,
                          const CHIndex::TargetSet& targets,
                          std::vector<double>* out) const;

  /// Distance from a position to a target, given precomputed node distances
  /// from the source (`node_dist = NodeDistancesFrom(src)`), plus the
  /// source position for the same-edge shortcut.
  double DistanceVia(const std::vector<double>& node_dist,
                     const EdgePosition& src, const EdgePosition& dst) const;

  /// Metric ball of `radius` around `center`, materialized as road-segment
  /// intervals (Finalize already called).
  NetworkBall Ball(const EdgePosition& center, double radius) const;

  /// Edge id connecting nodes a and b; asserts existence.
  uint32_t EdgeBetween(uint32_t a, uint32_t b) const;

 private:
  struct DijkstraScratch;  // per-thread reusable workspace (see .cc)

  /// Multi-seed Dijkstra into the per-thread scratch. Stops early when the
  /// frontier passes `bound` or when both `stop_a` and `stop_b` (pass
  /// kNoStop to disable) are settled; every touched node with a final
  /// distance <= bound is exact.
  static constexpr uint32_t kNoStop = 0xFFFFFFFFu;
  void RunDijkstra(const EdgePosition& src, double bound, uint32_t stop_a,
                   uint32_t stop_b, DijkstraScratch* s) const;
  /// The calling thread's workspace (const queries stay thread-safe).
  static DijkstraScratch& TlsScratch();

  const RoadNetwork* network_;
  const CHIndex* index_ = nullptr;
  std::vector<Edge> edges_;
  // node -> incident (edge id) list
  std::vector<std::vector<uint32_t>> incident_;
  // dense lookup (a,b) -> edge id via per-node sorted neighbor lists
};

}  // namespace mpn
