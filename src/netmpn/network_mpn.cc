#include "netmpn/network_mpn.h"

#include <algorithm>

#include "util/macros.h"

namespace mpn {

NetworkMpn::NetworkMpn(const NetworkSpace* space,
                       std::vector<EdgePosition> pois)
    : space_(space), pois_(std::move(pois)) {
  MPN_ASSERT(space_ != nullptr);
  MPN_ASSERT(!pois_.empty());
  for (const EdgePosition& p : pois_) MPN_ASSERT(space_->IsValid(p));
  EnsurePoiTargets();
}

void NetworkMpn::EnsurePoiTargets() const {
  const CHIndex* index = space_->index();
  if (index == target_index_) return;
  poi_slots_.clear();
  poi_targets_ = CHIndex::TargetSet();
  if (index != nullptr) {
    // Deduplicated POI edge endpoints; the backward searches and buckets
    // are computed once here and reused by every group query.
    std::vector<uint32_t> targets;
    std::vector<uint32_t> slot_of(space_->NodeCount(), 0xFFFFFFFFu);
    auto slot = [&](uint32_t node) -> uint32_t {
      if (slot_of[node] == 0xFFFFFFFFu) {
        slot_of[node] = static_cast<uint32_t>(targets.size());
        targets.push_back(node);
      }
      return slot_of[node];
    };
    poi_slots_.reserve(pois_.size());
    for (const EdgePosition& p : pois_) {
      const NetworkSpace::Edge& e = space_->edge(p.edge_id);
      poi_slots_.push_back({slot(e.a), slot(e.b)});
    }
    poi_targets_ = index->MakeTargetSet(targets);
  }
  // Published last, so a rebuild in flight can never satisfy another
  // caller's cache check while the slot/bucket data is still half-built.
  target_index_ = index;
}

std::vector<std::vector<double>> NetworkMpn::UserPoiDistances(
    const std::vector<EdgePosition>& users) const {
  std::vector<std::vector<double>> matrix(users.size());
  EnsurePoiTargets();
  if (target_index_ != nullptr) {
    // One CH many-to-many batch per user against the precomputed POI
    // endpoint buckets.
    std::vector<double> node_d;
    for (size_t i = 0; i < users.size(); ++i) {
      space_->DistancesToTargets(users[i], poi_targets_, &node_d);
      std::vector<double>& row = matrix[i];
      row.resize(pois_.size());
      for (size_t j = 0; j < pois_.size(); ++j) {
        const EdgePosition& p = pois_[j];
        const NetworkSpace::Edge& e = space_->edge(p.edge_id);
        double d = std::min(node_d[poi_slots_[j].first] + p.offset,
                            node_d[poi_slots_[j].second] +
                                (e.length - p.offset));
        if (p.edge_id == users[i].edge_id) {
          d = std::min(d, std::abs(p.offset - users[i].offset));
        }
        row[j] = d;
      }
    }
  } else {
    for (size_t i = 0; i < users.size(); ++i) {
      const std::vector<double> nd = space_->NodeDistancesFrom(users[i]);
      std::vector<double>& row = matrix[i];
      row.resize(pois_.size());
      for (size_t j = 0; j < pois_.size(); ++j) {
        row[j] = space_->DistanceVia(nd, users[i], pois_[j]);
      }
    }
  }
  return matrix;
}

namespace {

/// Aggregate of POI j's column of the users x pois distance matrix,
/// accumulated in user order — the same fold AggNetworkDist performs, so
/// the matrix paths stay bit-identical to the oracle.
double AggFromMatrix(const std::vector<std::vector<double>>& matrix,
                     size_t poi_index, Objective obj) {
  double agg = 0.0;
  for (size_t i = 0; i < matrix.size(); ++i) {
    const double d = matrix[i][poi_index];
    agg = obj == Objective::kMax ? std::max(agg, d) : agg + d;
  }
  return agg;
}

}  // namespace

std::vector<NetworkMpn::PoiRank> NetworkMpn::NearestPOIs(
    const std::vector<EdgePosition>& users, Objective obj, size_t k) const {
  MPN_ASSERT(!users.empty());
  const std::vector<std::vector<double>> matrix = UserPoiDistances(users);
  std::vector<PoiRank> ranks;
  ranks.reserve(pois_.size());
  for (size_t j = 0; j < pois_.size(); ++j) {
    ranks.push_back({static_cast<uint32_t>(j), AggFromMatrix(matrix, j, obj)});
  }
  std::sort(ranks.begin(), ranks.end(),
            [](const PoiRank& x, const PoiRank& y) {
              if (x.agg != y.agg) return x.agg < y.agg;
              return x.poi_index < y.poi_index;
            });
  if (ranks.size() > k) ranks.resize(k);
  return ranks;
}

double NetworkMpn::AggNetworkDist(
    size_t poi_index, const std::vector<std::vector<double>>& node_dists,
    const std::vector<EdgePosition>& users, Objective obj) const {
  const EdgePosition& p = pois_[poi_index];
  double agg = 0.0;
  for (size_t i = 0; i < users.size(); ++i) {
    const double d = space_->DistanceVia(node_dists[i], users[i], p);
    agg = obj == Objective::kMax ? std::max(agg, d) : agg + d;
  }
  return agg;
}

NetworkMpnResult NetworkMpn::Compute(const std::vector<EdgePosition>& users,
                                     Objective obj) const {
  MPN_ASSERT(!users.empty());
  // CH batch when the space has an index, per-user Dijkstra otherwise;
  // the matrix (and so the result) is bit-identical either way.
  const std::vector<std::vector<double>> matrix = UserPoiDistances(users);
  NetworkMpnResult out;
  double best = 0.0, second = 0.0;
  size_t best_idx = 0;
  bool have_best = false, have_second = false;
  for (size_t j = 0; j < pois_.size(); ++j) {
    const double agg = AggFromMatrix(matrix, j, obj);
    if (!have_best || agg < best) {
      second = best;
      have_second = have_best;
      best = agg;
      best_idx = j;
      have_best = true;
    } else if (!have_second || agg < second) {
      second = agg;
      have_second = true;
    }
  }
  out.po_index = static_cast<uint32_t>(best_idx);
  out.po_agg = best;
  out.second_agg = have_second ? second : best;
  if (!have_second) {
    // Single POI: the result can never change; an "infinite" ball would be
    // the whole network.
    out.rmax = 1e15;
  } else {
    const double gap = std::max(0.0, second - best);
    out.rmax = obj == Objective::kMax
                   ? gap / 2.0
                   : gap / (2.0 * static_cast<double>(users.size()));
  }
  out.regions.reserve(users.size());
  for (const EdgePosition& u : users) {
    out.regions.push_back(space_->Ball(u, out.rmax));
  }
  return out;
}

EdgePosition RandomEdgePosition(const NetworkSpace& space, Rng* rng) {
  const uint32_t id = static_cast<uint32_t>(
      rng->UniformInt(0, static_cast<int64_t>(space.EdgeCount()) - 1));
  return {id, rng->Uniform(0.0, space.edge(id).length)};
}

NetworkTrajectory GenerateNetworkTrajectory(const NetworkSpace& space,
                                            const RoadNetwork& network,
                                            double speed, size_t timestamps,
                                            Rng* rng) {
  NetworkTrajectory out;
  out.positions.reserve(timestamps);
  uint32_t node = static_cast<uint32_t>(
      rng->UniformInt(0, static_cast<int64_t>(network.NodeCount()) - 1));
  std::vector<uint32_t> path;
  size_t path_pos = 0;

  // Current leg: moving from `leg_from` to `leg_to` along their edge.
  uint32_t leg_from = node, leg_to = node;
  double leg_len = 0.0, leg_done = 0.0;

  auto pick_route = [&]() {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const uint32_t dst = static_cast<uint32_t>(
          rng->UniformInt(0, static_cast<int64_t>(network.NodeCount()) - 1));
      if (dst == node) continue;
      path = network.ShortestPath(node, dst);
      if (path.size() >= 2) {
        path_pos = 1;
        return true;
      }
    }
    return false;
  };

  auto next_leg = [&]() -> bool {
    if (path_pos >= path.size()) return false;
    leg_from = node;
    leg_to = path[path_pos++];
    leg_len = 0.0;
    for (const auto& [v, w] : network.Neighbors(leg_from)) {
      if (v == leg_to) {
        leg_len = w;
        break;
      }
    }
    leg_done = 0.0;
    node = leg_to;
    return true;
  };

  auto current_pos = [&]() -> EdgePosition {
    if (leg_from == leg_to) {  // parked at a node: use any incident edge
      for (uint32_t id = 0; id < space.EdgeCount(); ++id) {
        const auto& e = space.edge(id);
        if (e.a == leg_from) return {id, 0.0};
        if (e.b == leg_from) return {id, e.length};
      }
      return {0, 0.0};
    }
    const uint32_t id = space.EdgeBetween(leg_from, leg_to);
    const auto& e = space.edge(id);
    // Offsets are measured from the canonical endpoint `a`.
    return leg_from == e.a ? EdgePosition{id, leg_done}
                           : EdgePosition{id, e.length - leg_done};
  };

  pick_route();
  next_leg();
  for (size_t t = 0; t < timestamps; ++t) {
    out.positions.push_back(current_pos());
    double budget = speed;
    while (budget > 0.0 && leg_from != leg_to) {
      const double remaining = leg_len - leg_done;
      if (remaining <= budget) {
        budget -= remaining;
        if (!next_leg()) {
          if (!pick_route() || !next_leg()) {
            leg_from = leg_to;  // park
            break;
          }
        }
      } else {
        leg_done += budget;
        budget = 0.0;
      }
    }
    if (leg_from == leg_to && !path.empty() && path_pos >= path.size()) {
      // Arrived: pick a fresh destination for the next tick.
      if (pick_route()) next_leg();
    }
  }
  return out;
}

NetworkSimMetrics SimulateNetworkMpn(
    const NetworkSpace& space, const NetworkMpn& engine,
    const std::vector<const NetworkTrajectory*>& group, Objective obj,
    bool check_correctness) {
  MPN_ASSERT(!group.empty());
  NetworkSimMetrics metrics;
  size_t horizon = group.front()->size();
  for (const NetworkTrajectory* t : group) {
    horizon = std::min(horizon, t->size());
  }
  std::vector<NetworkBall> regions;
  bool has_result = false;
  uint32_t current_po = 0;
  for (size_t t = 0; t < horizon; ++t) {
    ++metrics.timestamps;
    std::vector<EdgePosition> locations;
    locations.reserve(group.size());
    for (const NetworkTrajectory* traj : group) {
      locations.push_back(traj->positions[t]);
    }
    bool violated = !has_result;
    if (has_result) {
      for (size_t i = 0; i < locations.size(); ++i) {
        if (!regions[i].Contains(locations[i])) {
          violated = true;
          break;
        }
      }
    }
    if (violated) {
      ++metrics.updates;
      NetworkMpnResult result = engine.Compute(locations, obj);
      if (has_result && result.po_index != current_po) {
        ++metrics.result_changes;
      }
      current_po = result.po_index;
      has_result = true;
      regions = std::move(result.regions);
      for (const NetworkBall& b : regions) {
        metrics.region_values += b.ValueCount();
      }
      if (check_correctness) {
        // The fresh ball must contain the user's own location.
        for (size_t i = 0; i < locations.size(); ++i) {
          MPN_ASSERT_MSG(regions[i].Contains(locations[i], 1e-6),
                         "network ball excludes its center");
        }
      }
    } else if (check_correctness) {
      // Invariant: while everyone is inside, the meeting point is optimal.
      std::vector<std::vector<double>> nd;
      for (const EdgePosition& u : locations) {
        nd.push_back(space.NodeDistancesFrom(u));
      }
      double best = 1e300;
      for (size_t j = 0; j < engine.pois().size(); ++j) {
        best = std::min(best, engine.AggNetworkDist(j, nd, locations, obj));
      }
      const double reported =
          engine.AggNetworkDist(current_po, nd, locations, obj);
      MPN_ASSERT_MSG(reported <= best + 1e-6 * (1.0 + best),
                     "stale network meeting point inside safe balls");
    }
  }
  return metrics;
}

}  // namespace mpn
