// Meeting Point Notification in road-network space (Section 8 extension).
//
// Users and POIs live on network edges; distances are shortest-path
// lengths. The optimal meeting point minimizes the MAX or SUM of network
// distances; safe regions are *metric balls* of radius
//   rmax = (d2 - d1) / 2        (MAX)
//   rmax = (d2 - d1) / (2 m)    (SUM)
// materialized as road-segment interval sets. Soundness follows from the
// Theorem-1/5 proofs, which only use the triangle inequality and therefore
// hold in any metric space.
//
// Also ships a network trajectory generator (random-waypoint shortest-path
// movement tracked as edge positions) and a small continuous-notification
// simulator mirroring sim/simulator.h, so the extension can be evaluated
// with the same update-frequency methodology as the planar system.
#pragma once

#include <cstdint>
#include <vector>

#include "index/gnn.h"  // Objective
#include "netmpn/network_space.h"
#include "util/rng.h"

namespace mpn {

/// Result of one network safe-region computation.
struct NetworkMpnResult {
  uint32_t po_index = 0;   ///< index into the POI vector
  double po_agg = 0.0;     ///< aggregate network distance of the optimum
  double second_agg = 0.0; ///< aggregate of the runner-up
  double rmax = 0.0;       ///< metric-ball radius
  std::vector<NetworkBall> regions;  ///< one ball per user
};

/// Network-space MPN engine.
class NetworkMpn {
 public:
  /// The space must outlive the engine; POIs are fixed at construction.
  /// When the space has a CH index attached, the POI edge endpoints are
  /// precomputed into a CH target set once, and every group query becomes
  /// one many-to-many batch instead of one Dijkstra per user.
  NetworkMpn(const NetworkSpace* space, std::vector<EdgePosition> pois);

  const std::vector<EdgePosition>& pois() const { return pois_; }

  /// Aggregate network distance of POI `j` to the users, given per-user
  /// node-distance tables (the Dijkstra correctness oracle).
  double AggNetworkDist(size_t poi_index,
                        const std::vector<std::vector<double>>& node_dists,
                        const std::vector<EdgePosition>& users,
                        Objective obj) const;

  /// users x pois network-distance matrix: one CH batch per user when the
  /// space has an index, else one Dijkstra per user. Bit-identical values
  /// either way.
  std::vector<std::vector<double>> UserPoiDistances(
      const std::vector<EdgePosition>& users) const;

  /// One ranked POI of a group->POI aggregate query.
  struct PoiRank {
    uint32_t poi_index;
    double agg;
  };

  /// The k POIs with the smallest aggregate network distance (ascending,
  /// ties by index) — the network GNN query, CH-accelerated when an index
  /// is attached.
  std::vector<PoiRank> NearestPOIs(const std::vector<EdgePosition>& users,
                                   Objective obj, size_t k) const;

  /// Computes the optimal meeting point and metric-ball safe regions
  /// (exact; scans the POIs via UserPoiDistances).
  NetworkMpnResult Compute(const std::vector<EdgePosition>& users,
                           Objective obj) const;

 private:
  /// (Re)builds the cached POI target set when the space's index changed.
  /// Lazy and not thread-safe on first use; call once up front (any query
  /// does) before sharing the engine across threads.
  void EnsurePoiTargets() const;

  const NetworkSpace* space_;
  std::vector<EdgePosition> pois_;
  mutable const CHIndex* target_index_ = nullptr;
  mutable CHIndex::TargetSet poi_targets_;
  // Per POI: indices of its edge endpoints (a, b) in the target set.
  mutable std::vector<std::pair<uint32_t, uint32_t>> poi_slots_;
};

/// A trajectory over the network: one edge position per timestamp.
struct NetworkTrajectory {
  std::vector<EdgePosition> positions;
  size_t size() const { return positions.size(); }
};

/// Random-waypoint movement along shortest paths (the Brinkhoff model in
/// network coordinates).
NetworkTrajectory GenerateNetworkTrajectory(const NetworkSpace& space,
                                            const RoadNetwork& network,
                                            double speed, size_t timestamps,
                                            Rng* rng);

/// Samples a uniform-ish random edge position.
EdgePosition RandomEdgePosition(const NetworkSpace& space, Rng* rng);

/// Metrics of a network MPN simulation run.
struct NetworkSimMetrics {
  size_t timestamps = 0;
  size_t updates = 0;
  size_t result_changes = 0;
  size_t region_values = 0;  ///< total safe-region values shipped

  double UpdateFrequency() const {
    return timestamps == 0
               ? 0.0
               : static_cast<double>(updates) / static_cast<double>(timestamps);
  }
};

/// Runs the continuous-notification protocol over network trajectories with
/// metric-ball safe regions. With `check_correctness` every recomputation is
/// validated against an exhaustive scan.
NetworkSimMetrics SimulateNetworkMpn(
    const NetworkSpace& space, const NetworkMpn& engine,
    const std::vector<const NetworkTrajectory*>& group, Objective obj,
    bool check_correctness = false);

}  // namespace mpn
