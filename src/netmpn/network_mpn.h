// Meeting Point Notification in road-network space (Section 8 extension).
//
// Users and POIs live on network edges; distances are shortest-path
// lengths. The optimal meeting point minimizes the MAX or SUM of network
// distances; safe regions are *metric balls* of radius
//   rmax = (d2 - d1) / 2        (MAX)
//   rmax = (d2 - d1) / (2 m)    (SUM)
// materialized as road-segment interval sets. Soundness follows from the
// Theorem-1/5 proofs, which only use the triangle inequality and therefore
// hold in any metric space.
//
// Also ships a network trajectory generator (random-waypoint shortest-path
// movement tracked as edge positions) and a small continuous-notification
// simulator mirroring sim/simulator.h, so the extension can be evaluated
// with the same update-frequency methodology as the planar system.
#pragma once

#include <cstdint>
#include <vector>

#include "index/gnn.h"  // Objective
#include "netmpn/network_space.h"
#include "util/rng.h"

namespace mpn {

/// Result of one network safe-region computation.
struct NetworkMpnResult {
  uint32_t po_index = 0;   ///< index into the POI vector
  double po_agg = 0.0;     ///< aggregate network distance of the optimum
  double second_agg = 0.0; ///< aggregate of the runner-up
  double rmax = 0.0;       ///< metric-ball radius
  std::vector<NetworkBall> regions;  ///< one ball per user
};

/// Network-space MPN engine.
class NetworkMpn {
 public:
  /// The space must outlive the engine; POIs are fixed at construction.
  NetworkMpn(const NetworkSpace* space, std::vector<EdgePosition> pois);

  const std::vector<EdgePosition>& pois() const { return pois_; }

  /// Aggregate network distance of POI `j` to the users, given per-user
  /// node-distance tables.
  double AggNetworkDist(size_t poi_index,
                        const std::vector<std::vector<double>>& node_dists,
                        const std::vector<EdgePosition>& users,
                        Objective obj) const;

  /// Computes the optimal meeting point and metric-ball safe regions.
  /// Runs one Dijkstra per user and scans the POIs (exact).
  NetworkMpnResult Compute(const std::vector<EdgePosition>& users,
                           Objective obj) const;

 private:
  const NetworkSpace* space_;
  std::vector<EdgePosition> pois_;
};

/// A trajectory over the network: one edge position per timestamp.
struct NetworkTrajectory {
  std::vector<EdgePosition> positions;
  size_t size() const { return positions.size(); }
};

/// Random-waypoint movement along shortest paths (the Brinkhoff model in
/// network coordinates).
NetworkTrajectory GenerateNetworkTrajectory(const NetworkSpace& space,
                                            const RoadNetwork& network,
                                            double speed, size_t timestamps,
                                            Rng* rng);

/// Samples a uniform-ish random edge position.
EdgePosition RandomEdgePosition(const NetworkSpace& space, Rng* rng);

/// Metrics of a network MPN simulation run.
struct NetworkSimMetrics {
  size_t timestamps = 0;
  size_t updates = 0;
  size_t result_changes = 0;
  size_t region_values = 0;  ///< total safe-region values shipped

  double UpdateFrequency() const {
    return timestamps == 0
               ? 0.0
               : static_cast<double>(updates) / static_cast<double>(timestamps);
  }
};

/// Runs the continuous-notification protocol over network trajectories with
/// metric-ball safe regions. With `check_correctness` every recomputation is
/// validated against an exhaustive scan.
NetworkSimMetrics SimulateNetworkMpn(
    const NetworkSpace& space, const NetworkMpn& engine,
    const std::vector<const NetworkTrajectory*>& group, Objective obj,
    bool check_correctness = false);

}  // namespace mpn
