#include "netmpn/network_space.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace mpn {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// ---------------------------------------------------------------------------
// NetworkBall
// ---------------------------------------------------------------------------

void NetworkBall::AddSegment(uint32_t edge_id, double lo, double hi) {
  if (hi < lo) return;  // degenerate point intervals are kept (radius 0)
  segments_.push_back({edge_id, lo, hi});
  finalized_ = false;
}

void NetworkBall::Finalize() {
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& x, const Segment& y) {
              if (x.edge_id != y.edge_id) return x.edge_id < y.edge_id;
              return x.lo < y.lo;
            });
  std::vector<Segment> merged;
  for (const Segment& s : segments_) {
    if (!merged.empty() && merged.back().edge_id == s.edge_id &&
        s.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, s.hi);
    } else {
      merged.push_back(s);
    }
  }
  segments_ = std::move(merged);
  finalized_ = true;
}

bool NetworkBall::Contains(const EdgePosition& pos, double eps) const {
  MPN_DCHECK(finalized_);
  // Binary search to the first segment of this edge.
  const Segment probe{pos.edge_id, pos.offset, pos.offset};
  auto it = std::lower_bound(
      segments_.begin(), segments_.end(), probe,
      [](const Segment& x, const Segment& y) {
        if (x.edge_id != y.edge_id) return x.edge_id < y.edge_id;
        return x.hi < y.lo;  // strictly before
      });
  for (; it != segments_.end() && it->edge_id == pos.edge_id; ++it) {
    if (pos.offset >= it->lo - eps && pos.offset <= it->hi + eps) return true;
    if (it->lo > pos.offset + eps) break;
  }
  return false;
}

double NetworkBall::TotalLength() const {
  double total = 0.0;
  for (const Segment& s : segments_) total += s.hi - s.lo;
  return total;
}

// ---------------------------------------------------------------------------
// NetworkSpace
// ---------------------------------------------------------------------------

NetworkSpace::NetworkSpace(const RoadNetwork* network) : network_(network) {
  MPN_ASSERT(network_ != nullptr);
  incident_.resize(network_->NodeCount());
  for (uint32_t a = 0; a < network_->NodeCount(); ++a) {
    for (const auto& [b, w] : network_->Neighbors(a)) {
      if (a < b) {
        const uint32_t id = static_cast<uint32_t>(edges_.size());
        edges_.push_back({a, b, w});
        incident_[a].push_back(id);
        incident_[b].push_back(id);
      }
    }
  }
}

Point NetworkSpace::ToEuclidean(const EdgePosition& pos) const {
  const Edge& e = edges_[pos.edge_id];
  const Point pa = network_->NodePos(e.a);
  const Point pb = network_->NodePos(e.b);
  const double t = e.length > 0 ? pos.offset / e.length : 0.0;
  return pa + (pb - pa) * t;
}

bool NetworkSpace::IsValid(const EdgePosition& pos) const {
  return pos.edge_id < edges_.size() && pos.offset >= -1e-9 &&
         pos.offset <= edges_[pos.edge_id].length + 1e-9;
}

uint32_t NetworkSpace::EdgeBetween(uint32_t a, uint32_t b) const {
  if (a > b) std::swap(a, b);
  for (uint32_t id : incident_[a]) {
    if (edges_[id].a == a && edges_[id].b == b) return id;
  }
  MPN_ASSERT_MSG(false, "no edge between the given nodes");
  return 0;
}

// Per-thread reusable Dijkstra workspace: stamped distance array (O(1)
// reset), a heap vector, and the touched-node list. Reusing it across
// queries removes the per-query O(n) allocate-and-fill that dominated the
// old fallback path, and bounded queries (metric balls) only ever pay for
// the nodes they actually reach.
struct NetworkSpace::DijkstraScratch {
  std::vector<double> dist;
  std::vector<uint32_t> stamp;
  uint32_t cur = 0;
  std::vector<std::pair<double, uint32_t>> heap;
  std::vector<uint32_t> touched;

  void Prepare(size_t n) {
    if (dist.size() < n) {
      dist.resize(n);
      stamp.assign(n, 0);
      cur = 0;
    }
    heap.clear();
    touched.clear();
    if (++cur == 0) {  // stamp wrap: invalidate everything once
      std::fill(stamp.begin(), stamp.end(), 0);
      cur = 1;
    }
  }
  bool Reached(uint32_t v) const { return stamp[v] == cur; }
  double Get(uint32_t v) const { return Reached(v) ? dist[v] : kInf; }
  void Set(uint32_t v, double d) {
    if (!Reached(v)) {
      stamp[v] = cur;
      touched.push_back(v);
    }
    dist[v] = d;
  }
};

NetworkSpace::DijkstraScratch& NetworkSpace::TlsScratch() {
  static thread_local DijkstraScratch s;
  return s;
}

void NetworkSpace::RunDijkstra(const EdgePosition& src, double bound,
                               uint32_t stop_a, uint32_t stop_b,
                               DijkstraScratch* s) const {
  MPN_DCHECK(IsValid(src));
  s->Prepare(network_->NodeCount());
  const auto cmp = std::greater<std::pair<double, uint32_t>>();
  const Edge& e = edges_[src.edge_id];
  s->Set(e.a, src.offset);
  s->Set(e.b, e.length - src.offset);
  s->heap.push_back({s->Get(e.a), e.a});
  std::push_heap(s->heap.begin(), s->heap.end(), cmp);
  s->heap.push_back({s->Get(e.b), e.b});
  std::push_heap(s->heap.begin(), s->heap.end(), cmp);
  int stops_left = (stop_a != kNoStop) + (stop_b != kNoStop && stop_b != stop_a);
  while (!s->heap.empty()) {
    std::pop_heap(s->heap.begin(), s->heap.end(), cmp);
    const auto [d, u] = s->heap.back();
    s->heap.pop_back();
    if (d > s->dist[u]) continue;  // stale entry
    if (d > bound) break;
    if (u == stop_a || u == stop_b) {
      if (--stops_left == 0) break;
    }
    for (const auto& [v, w] : network_->Neighbors(u)) {
      const double nd = d + w;
      if (nd < s->Get(v)) {
        s->Set(v, nd);
        s->heap.push_back({nd, v});
        std::push_heap(s->heap.begin(), s->heap.end(), cmp);
      }
    }
  }
}

std::vector<double> NetworkSpace::NodeDistancesFrom(
    const EdgePosition& src) const {
  DijkstraScratch& s = TlsScratch();
  RunDijkstra(src, kInf, kNoStop, kNoStop, &s);
  std::vector<double> dist(network_->NodeCount(), kInf);
  for (uint32_t v : s.touched) dist[v] = s.dist[v];
  return dist;
}

double NetworkSpace::DistanceVia(const std::vector<double>& node_dist,
                                 const EdgePosition& src,
                                 const EdgePosition& dst) const {
  const Edge& e = edges_[dst.edge_id];
  double d = std::min(node_dist[e.a] + dst.offset,
                      node_dist[e.b] + (e.length - dst.offset));
  if (dst.edge_id == src.edge_id) {
    d = std::min(d, std::abs(dst.offset - src.offset));
  }
  return d;
}

double NetworkSpace::Distance(const EdgePosition& a,
                              const EdgePosition& b) const {
  const Edge& eb = edges_[b.edge_id];
  double d;
  if (index_ != nullptr) {
    // CH route: one mu-terminated bidirectional search seeded with both
    // edge positions' endpoint offsets.
    const auto sa = SeedsOf(a);
    const auto sb = SeedsOf(b);
    d = index_->SeededDistance({sa[0], sa[1]}, {sb[0], sb[1]});
  } else {
    // Fallback: Dijkstra, stopped as soon as both endpoints of b's edge
    // are settled.
    DijkstraScratch& s = TlsScratch();
    RunDijkstra(a, kInf, eb.a, eb.b, &s);
    d = std::min(s.Get(eb.a) + b.offset,
                 s.Get(eb.b) + (eb.length - b.offset));
  }
  if (b.edge_id == a.edge_id) {
    d = std::min(d, std::abs(b.offset - a.offset));
  }
  return d;
}

void NetworkSpace::DistancesToTargets(const EdgePosition& src,
                                      const CHIndex::TargetSet& targets,
                                      std::vector<double>* out) const {
  MPN_ASSERT_MSG(index_ != nullptr,
                 "DistancesToTargets requires an attached CH index");
  MPN_DCHECK(IsValid(src));
  const auto seeds = SeedsOf(src);
  index_->SeededDistances({seeds[0], seeds[1]}, targets, out);
}

NetworkBall NetworkSpace::Ball(const EdgePosition& center,
                               double radius) const {
  NetworkBall ball;
  if (radius < 0.0) {
    ball.Finalize();
    return ball;
  }
  // Bounded Dijkstra: only the nodes inside the ball are ever touched, so
  // small balls cost O(ball), not O(network).
  DijkstraScratch& s = TlsScratch();
  RunDijkstra(center, radius, kNoStop, kNoStop, &s);
  for (uint32_t v : s.touched) {
    const double nd = s.dist[v];
    if (nd > radius) continue;  // tentative frontier leftovers
    for (uint32_t id : incident_[v]) {
      const Edge& e = edges_[id];
      if (v == e.a) {
        // Coverage reached from endpoint a.
        ball.AddSegment(id, 0.0, std::min(e.length, radius - nd));
      } else {
        // Coverage reached from endpoint b.
        ball.AddSegment(id, std::max(0.0, e.length - (radius - nd)),
                        e.length);
      }
    }
  }
  // Direct coverage of the center's own edge.
  ball.AddSegment(center.edge_id, std::max(0.0, center.offset - radius),
                  std::min(edges_[center.edge_id].length,
                           center.offset + radius));
  ball.Finalize();
  return ball;
}

}  // namespace mpn
