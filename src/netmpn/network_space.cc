#include "netmpn/network_space.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace mpn {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// ---------------------------------------------------------------------------
// NetworkBall
// ---------------------------------------------------------------------------

void NetworkBall::AddSegment(uint32_t edge_id, double lo, double hi) {
  if (hi < lo) return;  // degenerate point intervals are kept (radius 0)
  segments_.push_back({edge_id, lo, hi});
  finalized_ = false;
}

void NetworkBall::Finalize() {
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& x, const Segment& y) {
              if (x.edge_id != y.edge_id) return x.edge_id < y.edge_id;
              return x.lo < y.lo;
            });
  std::vector<Segment> merged;
  for (const Segment& s : segments_) {
    if (!merged.empty() && merged.back().edge_id == s.edge_id &&
        s.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, s.hi);
    } else {
      merged.push_back(s);
    }
  }
  segments_ = std::move(merged);
  finalized_ = true;
}

bool NetworkBall::Contains(const EdgePosition& pos, double eps) const {
  MPN_DCHECK(finalized_);
  // Binary search to the first segment of this edge.
  const Segment probe{pos.edge_id, pos.offset, pos.offset};
  auto it = std::lower_bound(
      segments_.begin(), segments_.end(), probe,
      [](const Segment& x, const Segment& y) {
        if (x.edge_id != y.edge_id) return x.edge_id < y.edge_id;
        return x.hi < y.lo;  // strictly before
      });
  for (; it != segments_.end() && it->edge_id == pos.edge_id; ++it) {
    if (pos.offset >= it->lo - eps && pos.offset <= it->hi + eps) return true;
    if (it->lo > pos.offset + eps) break;
  }
  return false;
}

double NetworkBall::TotalLength() const {
  double total = 0.0;
  for (const Segment& s : segments_) total += s.hi - s.lo;
  return total;
}

// ---------------------------------------------------------------------------
// NetworkSpace
// ---------------------------------------------------------------------------

NetworkSpace::NetworkSpace(const RoadNetwork* network) : network_(network) {
  MPN_ASSERT(network_ != nullptr);
  incident_.resize(network_->NodeCount());
  for (uint32_t a = 0; a < network_->NodeCount(); ++a) {
    for (const auto& [b, w] : network_->Neighbors(a)) {
      if (a < b) {
        const uint32_t id = static_cast<uint32_t>(edges_.size());
        edges_.push_back({a, b, w});
        incident_[a].push_back(id);
        incident_[b].push_back(id);
      }
    }
  }
}

Point NetworkSpace::ToEuclidean(const EdgePosition& pos) const {
  const Edge& e = edges_[pos.edge_id];
  const Point pa = network_->NodePos(e.a);
  const Point pb = network_->NodePos(e.b);
  const double t = e.length > 0 ? pos.offset / e.length : 0.0;
  return pa + (pb - pa) * t;
}

bool NetworkSpace::IsValid(const EdgePosition& pos) const {
  return pos.edge_id < edges_.size() && pos.offset >= -1e-9 &&
         pos.offset <= edges_[pos.edge_id].length + 1e-9;
}

uint32_t NetworkSpace::EdgeBetween(uint32_t a, uint32_t b) const {
  if (a > b) std::swap(a, b);
  for (uint32_t id : incident_[a]) {
    if (edges_[id].a == a && edges_[id].b == b) return id;
  }
  MPN_ASSERT_MSG(false, "no edge between the given nodes");
  return 0;
}

std::vector<double> NetworkSpace::NodeDistancesFrom(
    const EdgePosition& src) const {
  MPN_DCHECK(IsValid(src));
  std::vector<double> dist(network_->NodeCount(), kInf);
  using QE = std::pair<double, uint32_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> pq;
  const Edge& e = edges_[src.edge_id];
  dist[e.a] = src.offset;
  dist[e.b] = e.length - src.offset;
  pq.push({dist[e.a], e.a});
  pq.push({dist[e.b], e.b});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const auto& [v, w] : network_->Neighbors(u)) {
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  return dist;
}

double NetworkSpace::DistanceVia(const std::vector<double>& node_dist,
                                 const EdgePosition& src,
                                 const EdgePosition& dst) const {
  const Edge& e = edges_[dst.edge_id];
  double d = std::min(node_dist[e.a] + dst.offset,
                      node_dist[e.b] + (e.length - dst.offset));
  if (dst.edge_id == src.edge_id) {
    d = std::min(d, std::abs(dst.offset - src.offset));
  }
  return d;
}

double NetworkSpace::Distance(const EdgePosition& a,
                              const EdgePosition& b) const {
  return DistanceVia(NodeDistancesFrom(a), a, b);
}

NetworkBall NetworkSpace::Ball(const EdgePosition& center,
                               double radius) const {
  NetworkBall ball;
  if (radius < 0.0) {
    ball.Finalize();
    return ball;
  }
  const std::vector<double> nd = NodeDistancesFrom(center);
  for (uint32_t id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    // Coverage reached from endpoint a.
    if (nd[e.a] <= radius) {
      ball.AddSegment(id, 0.0, std::min(e.length, radius - nd[e.a]));
    }
    // Coverage reached from endpoint b.
    if (nd[e.b] <= radius) {
      ball.AddSegment(id, std::max(0.0, e.length - (radius - nd[e.b])),
                      e.length);
    }
  }
  // Direct coverage of the center's own edge.
  ball.AddSegment(center.edge_id, std::max(0.0, center.offset - radius),
                  std::min(edges_[center.edge_id].length,
                           center.offset + radius));
  ball.Finalize();
  return ball;
}

}  // namespace mpn
