#include "engine/session_codec.h"

#include <utility>
#include <vector>

#include "mpn/compress.h"

namespace mpn {

namespace {

void WriteMsrStats(WireBuffer* out, const MsrStats& s) {
  out->PutU64(s.tiles_tried);
  out->PutU64(s.tiles_added);
  out->PutU64(s.divide_calls);
  out->PutU64(s.verify.calls);
  out->PutU64(s.verify.accepted);
  out->PutU64(s.verify.tile_groups);
  out->PutU64(s.verify.focal_evals);
  out->PutU64(s.verify.memo_hits);
  out->PutU64(s.candidates.retrievals);
  out->PutU64(s.candidates.candidates_total);
  out->PutU64(s.candidates.rejected_by_buffer);
  out->PutU64(s.rtree_node_accesses);
}

MsrStats ReadMsrStats(WireReader* r) {
  MsrStats s;
  s.tiles_tried = r->GetU64();
  s.tiles_added = r->GetU64();
  s.divide_calls = r->GetU64();
  s.verify.calls = r->GetU64();
  s.verify.accepted = r->GetU64();
  s.verify.tile_groups = r->GetU64();
  s.verify.focal_evals = r->GetU64();
  s.verify.memo_hits = r->GetU64();
  s.candidates.retrievals = r->GetU64();
  s.candidates.candidates_total = r->GetU64();
  s.candidates.rejected_by_buffer = r->GetU64();
  s.rtree_node_accesses = r->GetU64();
  return s;
}

}  // namespace

void WriteMetrics(WireBuffer* out, const SimMetrics& m) {
  out->PutU64(m.timestamps);
  out->PutU64(m.updates);
  out->PutU64(m.result_changes);
  for (size_t t = 0; t < kMessageTypeCount; ++t) {
    const MessageType type = static_cast<MessageType>(t);
    out->PutU64(m.comm.messages(type));
    out->PutU64(m.comm.packets(type));
    out->PutU64(m.comm.values(type));
  }
  out->PutDouble(m.server_seconds);
  WriteMsrStats(out, m.msr);
}

SimMetrics ReadMetrics(WireReader* r) {
  SimMetrics m;
  m.timestamps = r->GetU64();
  m.updates = r->GetU64();
  m.result_changes = r->GetU64();
  for (size_t t = 0; t < kMessageTypeCount; ++t) {
    const MessageType type = static_cast<MessageType>(t);
    const uint64_t messages = r->GetU64();
    const uint64_t packets = r->GetU64();
    const uint64_t values = r->GetU64();
    m.comm.AddRaw(type, messages, packets, values);
  }
  m.server_seconds = r->GetDouble();
  m.msr = ReadMsrStats(r);
  return m;
}

void WriteSafeRegion(WireBuffer* out, const SafeRegion& region) {
  if (region.is_circle()) {
    out->PutU8(0);
    out->PutDouble(region.circle().center.x);
    out->PutDouble(region.circle().center.y);
    out->PutDouble(region.circle().radius);
    return;
  }
  out->PutU8(1);
  const EncodedTileRegion enc = EncodeTileRegion(region.tiles());
  out->PutDouble(enc.origin.x);
  out->PutDouble(enc.origin.y);
  out->PutDouble(enc.delta);
  out->PutU32(static_cast<uint32_t>(enc.levels.size()));
  for (const EncodedLevel& level : enc.levels) {
    out->PutU32(static_cast<uint32_t>(level.level));
    out->PutU32(static_cast<uint32_t>(level.ix0));
    out->PutU32(static_cast<uint32_t>(level.iy0));
    out->PutU32(static_cast<uint32_t>(level.width));
    out->PutU32(static_cast<uint32_t>(level.height));
    out->PutU64(level.bits.size());
    for (uint64_t word : level.bits.words()) out->PutU64(word);
  }
}

SafeRegion ReadSafeRegion(WireReader* r) {
  const uint8_t kind = r->GetU8();
  if (kind == 0) {
    Circle c;
    c.center.x = r->GetDouble();
    c.center.y = r->GetDouble();
    c.radius = r->GetDouble();
    return SafeRegion::MakeCircle(c);
  }
  if (kind != 1) throw FrameError("unknown safe-region kind");
  EncodedTileRegion enc;
  enc.origin.x = r->GetDouble();
  enc.origin.y = r->GetDouble();
  enc.delta = r->GetDouble();
  const uint32_t n_levels = r->GetU32();
  for (uint32_t i = 0; i < n_levels; ++i) {
    EncodedLevel level;
    level.level = static_cast<int32_t>(r->GetU32());
    level.ix0 = static_cast<int32_t>(r->GetU32());
    level.iy0 = static_cast<int32_t>(r->GetU32());
    level.width = static_cast<int32_t>(r->GetU32());
    level.height = static_cast<int32_t>(r->GetU32());
    const uint64_t bits = r->GetU64();
    if (level.width <= 0 || level.height <= 0 ||
        static_cast<uint64_t>(level.width) *
                static_cast<uint64_t>(level.height) !=
            bits) {
      throw FrameError("tile-region level window does not match its bitset");
    }
    // Words arrive one at a time so a corrupt count cannot force a huge
    // up-front allocation — the bounds-checked reader throws at the real
    // end of the payload first.
    const uint64_t n_words = (bits + 63) / 64;
    std::vector<uint64_t> words;
    for (uint64_t w = 0; w < n_words; ++w) words.push_back(r->GetU64());
    level.bits =
        DynamicBitset::FromWords(words, static_cast<size_t>(bits));
    enc.levels.push_back(std::move(level));
  }
  return SafeRegion::MakeTiles(DecodeTileRegion(enc));
}

namespace {

void WriteClientState(WireBuffer* out, const MpnClient::State& c) {
  out->PutDouble(c.location.x);
  out->PutDouble(c.location.y);
  out->PutU8(c.moved ? 1 : 0);
  out->PutDouble(c.heading);
  out->PutU32(static_cast<uint32_t>(c.recent_headings.size()));
  for (double h : c.recent_headings) out->PutDouble(h);
  out->PutU8(c.has_region ? 1 : 0);
  if (c.has_region) WriteSafeRegion(out, c.region);
}

MpnClient::State ReadClientState(WireReader* r) {
  MpnClient::State c;
  c.location.x = r->GetDouble();
  c.location.y = r->GetDouble();
  c.moved = r->GetU8() != 0;
  c.heading = r->GetDouble();
  const uint32_t n = r->GetU32();
  for (uint32_t i = 0; i < n; ++i) c.recent_headings.push_back(r->GetDouble());
  c.has_region = r->GetU8() != 0;
  if (c.has_region) c.region = ReadSafeRegion(r);
  return c;
}

}  // namespace

void EncodeLiveSession(const GroupSession::State& state, WireBuffer* out) {
  out->PutU8(kSessionSnapshotVersion);
  out->PutU8(static_cast<uint8_t>(SnapshotKind::kLive));
  out->PutU64(state.next_t);
  out->PutU64(state.retire_at);
  out->PutU8(state.has_result ? 1 : 0);
  out->PutU32(state.current_po);
  out->PutU64(state.mailbox_peak);
  out->PutU64(state.stall_count);
  out->PutU64(state.dropped_count);
  WriteMetrics(out, state.metrics);
  out->PutDouble(state.server.compute_seconds);
  out->PutU64(state.server.recompute_count);
  WriteMsrStats(out, state.server.stats);
  out->PutU32(static_cast<uint32_t>(state.clients.size()));
  for (const MpnClient::State& c : state.clients) WriteClientState(out, c);
  // All four traces carry exactly the processed prefix (next_t entries).
  out->PutU32(static_cast<uint32_t>(state.messages_at.size()));
  for (uint32_t v : state.messages_at) out->PutU32(v);
  for (uint8_t v : state.violated_at) out->PutU8(v);
  for (double v : state.advance_at) out->PutDouble(v);
  for (double v : state.seconds_at) out->PutDouble(v);
}

void EncodeFinalSession(const SessionFinalResult& result, WireBuffer* out) {
  out->PutU8(kSessionSnapshotVersion);
  out->PutU8(static_cast<uint8_t>(SnapshotKind::kFinal));
  WriteMetrics(out, result.metrics);
  out->PutU8(result.has_result ? 1 : 0);
  out->PutU32(result.po);
  out->PutU64(result.mailbox_peak);
  out->PutU64(result.stall_count);
  out->PutU64(result.dropped_count);
  out->PutU32(static_cast<uint32_t>(result.advance_seconds.size()));
  for (double v : result.advance_seconds) out->PutDouble(v);
}

SnapshotKind ReadSnapshotHeader(WireReader* r) {
  const uint8_t version = r->GetU8();
  if (version != kSessionSnapshotVersion) {
    throw FrameError("unsupported session snapshot version");
  }
  const uint8_t kind = r->GetU8();
  if (kind > static_cast<uint8_t>(SnapshotKind::kFinal)) {
    throw FrameError("unknown session snapshot kind");
  }
  return static_cast<SnapshotKind>(kind);
}

GroupSession::State DecodeLiveSession(WireReader* r) {
  GroupSession::State state;
  state.next_t = r->GetU64();
  state.retire_at = r->GetU64();
  state.has_result = r->GetU8() != 0;
  state.current_po = r->GetU32();
  state.mailbox_peak = r->GetU64();
  state.stall_count = r->GetU64();
  state.dropped_count = r->GetU64();
  state.metrics = ReadMetrics(r);
  state.server.compute_seconds = r->GetDouble();
  state.server.recompute_count = r->GetU64();
  state.server.stats = ReadMsrStats(r);
  const uint32_t m = r->GetU32();
  for (uint32_t i = 0; i < m; ++i) state.clients.push_back(ReadClientState(r));
  const uint32_t n = r->GetU32();
  if (n != state.next_t) {
    throw FrameError("session trace length does not match next_t");
  }
  for (uint32_t i = 0; i < n; ++i) state.messages_at.push_back(r->GetU32());
  for (uint32_t i = 0; i < n; ++i) state.violated_at.push_back(r->GetU8());
  for (uint32_t i = 0; i < n; ++i) state.advance_at.push_back(r->GetDouble());
  for (uint32_t i = 0; i < n; ++i) state.seconds_at.push_back(r->GetDouble());
  return state;
}

SessionFinalResult DecodeFinalSession(WireReader* r) {
  SessionFinalResult result;
  result.metrics = ReadMetrics(r);
  result.has_result = r->GetU8() != 0;
  result.po = r->GetU32();
  result.mailbox_peak = r->GetU64();
  result.stall_count = r->GetU64();
  result.dropped_count = r->GetU64();
  const uint32_t n = r->GetU32();
  for (uint32_t i = 0; i < n; ++i) {
    result.advance_seconds.push_back(r->GetDouble());
  }
  return result;
}

}  // namespace mpn
