#include "engine/session_table.h"

#include <algorithm>

#include "util/macros.h"

namespace mpn {

SessionTable::SessionTable(size_t shard_count)
    : shard_count_(std::max<size_t>(1, shard_count)),
      shards_(shard_count_) {}

SessionRecord* SessionTable::Insert(std::unique_ptr<SessionRecord> record) {
  MPN_ASSERT(record != nullptr && record->session != nullptr);
  const uint32_t id = record->session->id();
  Shard& shard = shards_[id % shard_count_];
  const size_t slot = id / shard_count_;
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.records.size() <= slot) shard.records.resize(slot + 1);
  MPN_ASSERT_MSG(shard.records[slot] == nullptr, "duplicate session id");
  shard.records[slot] = std::move(record);
  return shard.records[slot].get();
}

SessionRecord* SessionTable::Find(uint32_t id) const {
  const Shard& shard = shards_[id % shard_count_];
  const size_t slot = id / shard_count_;
  std::lock_guard<std::mutex> lock(shard.mu);
  return slot < shard.records.size() ? shard.records[slot].get() : nullptr;
}

}  // namespace mpn
