// Sharded session table of the event-driven engine.
//
// Admission and retirement must never contend with the hot scheduling
// path, so sessions live in a fixed number of shards, each guarded by its
// own mutex: an AdmitSession call locks exactly one shard (id % shards)
// while the scheduler's per-event lookups touch a different shard with
// probability (shards-1)/shards. Ids come from a single atomic counter, so
// they are dense and globally ordered — the digest and the metrics
// iteration read sessions in admission order regardless of which thread
// admitted them.
//
// A SessionRecord bundles the GroupSession with the scheduler's per-session
// flags. The record mutex serializes only the *scheduling decisions* (who
// runs the next event); the session phases themselves execute outside it.
// Records are never erased — a retired session keeps its metrics and final
// meeting point for the digest.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/group_session.h"

namespace mpn {

/// One session plus its scheduling state.
struct SessionRecord {
  explicit SessionRecord(std::unique_ptr<GroupSession> s)
      : session(std::move(s)) {}

  std::unique_ptr<GroupSession> session;

  /// Guards the flags below (never held while a session phase runs).
  std::mutex mu;
  bool event_queued = false;   ///< a session event sits in the ready queue
  bool event_running = false;  ///< a session event is executing
  bool job_running = false;    ///< an async recomputation is in flight
  bool result_ready = false;   ///< `outcome` holds a finished recomputation
  bool finalized = false;      ///< Finish() ran; stats folded
  GroupSession::RecomputeOutcome outcome;  ///< valid while result_ready
};

/// Fixed-shard concurrent map id -> SessionRecord.
class SessionTable {
 public:
  explicit SessionTable(size_t shard_count);

  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;

  /// Inserts a record for the next dense id (returned via record->session's
  /// id, which the caller must construct with ReserveId()).
  uint32_t ReserveId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Registers the record under its session's id (from ReserveId).
  SessionRecord* Insert(std::unique_ptr<SessionRecord> record);

  /// Looks up a session record; nullptr when the id was never admitted.
  SessionRecord* Find(uint32_t id) const;

  /// Sessions admitted so far.
  size_t size() const { return next_id_.load(std::memory_order_acquire); }

  /// Visits every admitted record in ascending id order. Not synchronized
  /// with concurrent admissions — call after the engine drained.
  template <typename Fn>
  void ForEachOrdered(Fn&& fn) const {
    const size_t n = size();
    for (uint32_t id = 0; id < n; ++id) {
      SessionRecord* r = Find(id);
      if (r != nullptr) fn(r);
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Record for id sits at slot id / shard_count (dense per shard).
    std::vector<std::unique_ptr<SessionRecord>> records;
  };

  size_t shard_count_;
  std::vector<Shard> shards_;
  std::atomic<uint32_t> next_id_{0};
};

}  // namespace mpn
