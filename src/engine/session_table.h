// Sharded session table of the event-driven engine.
//
// Admission and retirement must never contend with the hot scheduling
// path, so sessions live in a fixed number of shards, each guarded by its
// own mutex: an AdmitSession call locks exactly one shard (id % shards)
// while the scheduler's per-event lookups touch a different shard with
// probability (shards-1)/shards. Ids come from a single atomic counter, so
// they are dense and globally ordered — the digest and the metrics
// iteration read sessions in admission order regardless of which thread
// admitted them.
//
// A SessionRecord bundles the GroupSession with the scheduler's per-session
// flags. The record mutex serializes only the *scheduling decisions* (who
// runs the next event); the session phases themselves execute outside it.
// Records are never erased — a retired session keeps its metrics and final
// meeting point for the digest.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/group_session.h"

namespace mpn {

/// One session plus its scheduling state.
///
/// With the session store (engine/session_store.h) the record outlives its
/// GroupSession: `session` is null once the session finalized and was
/// compacted to `final_result`, or while a live session's state is spilled
/// (`spilled`; the serialized snapshot lives in the store's external list
/// and `cached_next_t` keeps the scheduler able to re-arm it). The id,
/// trajectory group and tuning stay on the record so the store can rebuild
/// the state machine on rehydration.
struct SessionRecord {
  SessionRecord(uint32_t session_id, std::vector<const Trajectory*> g,
                const SessionTuning& t, std::unique_ptr<GroupSession> s)
      : session(std::move(s)), id(session_id), group(std::move(g)),
        tuning(t) {}

  std::unique_ptr<GroupSession> session;

  const uint32_t id;                        ///< dense global session id
  const std::vector<const Trajectory*> group;  ///< for rehydration
  const SessionTuning tuning;               ///< admission-time tuning

  /// Guards the flags below (never held while a session phase runs).
  std::mutex mu;
  bool event_queued = false;   ///< a session event sits in the ready queue
  bool event_running = false;  ///< a session event is executing
  bool job_running = false;    ///< an async recomputation is in flight
  bool result_ready = false;   ///< `outcome` holds a finished recomputation
  bool finalized = false;      ///< Finish() ran; stats folded
  GroupSession::RecomputeOutcome outcome;  ///< valid while result_ready

  // --- session-store state (guarded by mu like the flags) ---------------
  /// Distilled result of a finalized session (session itself destroyed).
  std::unique_ptr<SessionFinalResult> final_result;
  bool spilled = false;         ///< state lives in the store's spill file
  /// A legacy by-reference accessor handed out pointers into this record's
  /// state: it must stay resident for the rest of the run.
  bool accessor_pinned = false;
  /// next_timestamp() at spill time — lets the scheduler arm a spilled
  /// session's next event without rehydrating it first.
  size_t cached_next_t = 0;
  /// Retirement requested while spilled; applied on rehydration.
  size_t pending_retire_at = std::numeric_limits<size_t>::max();
  size_t spill_offset = 0;      ///< extent in the store's spill file
  size_t spill_length = 0;      ///< encoded snapshot bytes
  size_t spill_capacity = 0;    ///< size-class capacity of the extent
  size_t accounted_bytes = 0;   ///< resident estimate charged to the budget
  /// Key in the store's spill-candidate map (guarded by the *store* mutex,
  /// not `mu` — it is bookkeeping for the store's victim index).
  uint64_t store_key = ~uint64_t{0};
};

/// Fixed-shard concurrent map id -> SessionRecord.
class SessionTable {
 public:
  explicit SessionTable(size_t shard_count);

  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;

  /// Inserts a record for the next dense id (returned via record->session's
  /// id, which the caller must construct with ReserveId()).
  uint32_t ReserveId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Registers the record under its session's id (from ReserveId).
  SessionRecord* Insert(std::unique_ptr<SessionRecord> record);

  /// Looks up a session record; nullptr when the id was never admitted.
  SessionRecord* Find(uint32_t id) const;

  /// Sessions admitted so far.
  size_t size() const { return next_id_.load(std::memory_order_acquire); }

  /// Visits every admitted record in ascending id order. Not synchronized
  /// with concurrent admissions — call after the engine drained.
  template <typename Fn>
  void ForEachOrdered(Fn&& fn) const {
    const size_t n = size();
    for (uint32_t id = 0; id < n; ++id) {
      SessionRecord* r = Find(id);
      if (r != nullptr) fn(r);
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Record for id sits at slot id / shard_count (dense per shard).
    std::vector<std::unique_ptr<SessionRecord>> records;
  };

  size_t shard_count_;
  std::vector<Shard> shards_;
  std::atomic<uint32_t> next_id_{0};
};

}  // namespace mpn
