// Memory-budgeted out-of-core session store.
//
// The engine's session table holds every admitted session for the whole
// run (records are never erased — digests and round stats replay them at
// the end), which caps the session count a run can hold at whatever fits
// in RAM. The store breaks that coupling:
//
//   - Every *finalized* session is unconditionally compacted: the full
//     GroupSession state machine (clients, regions, traces) is distilled
//     into a small SessionFinalResult and destroyed. This runs budget or
//     no budget — a drained engine's footprint is per-session results,
//     not per-session simulators.
//   - Under a byte budget (EngineOptions::budget.bytes_cap > 0) the store
//     additionally *spills*: when the resident estimate exceeds the cap,
//     cold sessions — live-but-idle state machines and compacted final
//     results — are serialized through engine/session_codec.h into a
//     bounded spill file (anonymous: mkstemp + immediate unlink) and
//     their in-memory state destroyed. Only the record's fixed-size
//     scheduling fields stay resident, so the in-memory index over
//     spilled sessions is O(1) per session and tiny.
//   - Rehydration is transparent: the scheduler calls
//     EnsureResidentLocked() before running a spilled session's event,
//     the store decodes the snapshot and rebuilds the GroupSession via
//     the engine-provided factory. Snapshot encode/decode is a bit-exact
//     identity at event boundaries, so digests are identical to an
//     unbudgeted run for any cap.
//
// Victim selection: live candidates are kept in a map ordered by the
// scheduler's locality priority (id-major), so the evicted session is the
// one the depth-first scheduler will reach *last*; compacted finals are
// spilled first (FIFO) since nothing reads them before the drain.
//
// Locking: the store mutex is a strict leaf — it is acquired with record
// mutexes (and the scheduler's stats mutex) held, and no record mutex is
// ever acquired under it. Rebalance() pops a victim candidate under the
// store mutex, *releases it*, locks the victim's record mutex, and
// re-checks eligibility before spilling (the candidate may have been
// re-armed in between; it re-registers itself on its next event).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/memory_budget.h"
#include "engine/session_table.h"

namespace mpn {

/// Rebuilds a GroupSession for rehydration (same id, trajectories and
/// tuning as admission; the engine binds pois/tree/options/timer).
using SessionFactory = std::function<std::unique_ptr<GroupSession>(
    uint32_t id, const std::vector<const Trajectory*>& group,
    const SessionTuning& tuning)>;

class SessionStore {
 public:
  SessionStore(const MemoryBudget& budget, SessionFactory factory);
  ~SessionStore();

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  /// True when a byte cap is configured (spilling active). Finalized
  /// compaction runs regardless.
  bool enabled() const { return budget_.bytes_cap > 0; }

  /// Registers a freshly admitted record: charges its resident estimate
  /// and makes it a spill candidate. Locks record->mu itself. The caller
  /// follows up with Rebalance() once outside all locks.
  void OnAdmit(SessionRecord* r);

  /// Re-accounts a record after one of its events ran (state grew, clock
  /// advanced, possibly finalized) and rebalances against the budget.
  /// Locks record->mu itself; call with no locks held.
  void OnEventDone(SessionRecord* r);

  /// Destroys a finalized record's GroupSession, keeping only its
  /// SessionFinalResult. Caller holds r->mu (the scheduler's finalize
  /// path); the store mutex is acquired inside.
  void CompactFinalizedLocked(SessionRecord* r);

  /// Rehydrates a spilled record (no-op when resident). With `pin` the
  /// record is additionally excluded from future spilling — used by the
  /// legacy by-reference accessors whose pointers must stay valid.
  /// Caller holds r->mu.
  void EnsureResidentLocked(SessionRecord* r, bool pin = false);

  /// Streams the record's result fields to `fn` without pinning and — for
  /// spilled records — without rehydrating: the snapshot is decoded into
  /// a stack-local that dies with the call. For a spilled *live* session
  /// the advance_seconds trace carries only the processed prefix.
  void WithResult(SessionRecord* r,
                  const std::function<void(const SessionFinalResult&)>& fn);

  /// Spills cold sessions until the resident estimate fits the cap.
  /// Call with no record mutex held.
  void Rebalance();

  MemoryStats stats() const;

 private:
  /// Sentinel: record not in active_. (Real keys collide with this only
  /// for id 0xffffffff at a clamped timestamp — ids are dense from 0 and
  /// a run with 4 billion sessions is out of scope by construction.)
  static constexpr uint64_t kNoKey = ~uint64_t{0};

  static uint64_t LocalityKey(uint32_t id, size_t next_t);
  static size_t FinalBytesEstimate(const SessionFinalResult& fr);

  /// Updates the record's charged bytes to `bytes` (store mutex held).
  void SetAccountedLocked(SessionRecord* r, size_t bytes);
  void InsertActiveLocked(SessionRecord* r, size_t next_t);
  void EraseActiveLocked(SessionRecord* r);

  /// Spills `r` if it is still eligible (r->mu held; it was popped from
  /// the candidate structures already). Ineligible records are left
  /// resident — they re-register via OnEventDone.
  void SpillIfEligibleLocked(SessionRecord* r);

  /// Spill-file extent management (store mutex held for alloc/free; the
  /// positioned reads/writes themselves need no lock — extents are
  /// exclusively owned).
  void EnsureFileLocked();
  size_t AllocExtentLocked(size_t length, size_t* capacity);
  void FreeExtentLocked(size_t offset, size_t capacity);
  void WriteExtent(size_t offset, const std::vector<uint8_t>& bytes);
  std::vector<uint8_t> ReadExtent(size_t offset, size_t length) const;

  const MemoryBudget budget_;
  const SessionFactory factory_;

  mutable std::mutex mu_;
  int fd_ = -1;                ///< unlinked spill file (lazy)
  size_t file_end_ = 0;        ///< allocation watermark
  /// Power-of-two size classes (>= 256 B) -> free extent offsets.
  std::map<size_t, std::vector<size_t>> free_lists_;
  /// Resident live sessions by locality key; victim = largest key.
  std::map<uint64_t, SessionRecord*> active_;
  /// Resident compacted finals, spill-first in FIFO order.
  std::deque<SessionRecord*> finals_;
  MemoryStats stats_;
};

}  // namespace mpn
