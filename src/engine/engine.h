// Multi-group concurrent server engine (event-driven).
//
// The Engine owns a sharded session table, a fixed-size thread pool, and an
// event-driven scheduler (engine/scheduler.h): every session advances on
// its own virtual clock, ordered by (next_timestamp, session_id) in the
// pool's priority queue, so a lagging session delays only itself — there is
// no global round barrier. A safe-region violation posts the Tile/Circle-
// MSR recomputation as an async pool job; the session keeps buffering
// location updates in a bounded mailbox and re-enters the ready queue when
// its fresh regions arrive. Groups can be admitted and retired mid-run:
// AdmitSession / RetireSession are callable from any thread while the
// engine drains, and only ever touch one shard of the session table.
//
// Since the cluster layer landed (engine/cluster.h) the engine is a
// persistent server: Wait() drains the sessions admitted so far but keeps
// the engine serving, so admit/Wait cycles can repeat indefinitely (the
// worker serving loop); Shutdown() ends the engine's life explicitly and
// Run() keeps the legacy one-shot drain semantics (Start + Shutdown).
//
// Determinism: sessions share only immutable data (POIs, R-tree), every
// session phase except the recomputation job is serialized per session,
// and the per-session logical step order is independent of wall-clock
// interleaving (see scheduler.h). Everything in SimMetrics except the
// wall-clock timing fields is therefore bit-identical across thread
// counts for a fixed session set — ResultDigest() hashes exactly those
// deterministic fields.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/group_session.h"
#include "engine/memory_budget.h"
#include "engine/scheduler.h"
#include "engine/session_table.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mpn {

/// Engine configuration.
struct EngineOptions {
  /// Worker threads in the pool (0 = hardware concurrency).
  size_t threads = 1;
  /// Per-session simulation options (server method, horizon, checks).
  SimOptions sim;
  /// Fan per-user Tile-MSR candidate verification out across the pool
  /// inside each recomputation (in addition to the per-session parallelism).
  bool parallel_verify = false;
  /// Candidates per fan-out chunk; fixed layout keeps results
  /// bit-identical across thread counts.
  size_t verify_grain = 16;
  /// Minimum candidate-list size before the fan-out engages.
  size_t verify_min_candidates = 32;
  /// Shards of the session table (admission locks one shard, never the
  /// scheduling hot path).
  size_t table_shards = 16;
  /// Crash-injection test hook: the process _Exit(134)s the first time any
  /// session is about to advance to this virtual timestamp (deterministic
  /// in virtual time). SIZE_MAX disables. Set by the cluster supervisor
  /// when a KillWorkerAt / MPN_CRASH_PLAN event is armed for a worker
  /// incarnation (engine/cluster.h); never use it in-process.
  size_t crash_at_timestamp = static_cast<size_t>(-1);
  /// Resident-session byte budget (engine/memory_budget.h). bytes_cap == 0
  /// defers to the MPN_MEMORY_BUDGET environment variable ("64m", "1g",
  /// ...; unset/empty keeps spilling off). Any cap produces bit-identical
  /// digests to an unbudgeted run — only memory_stats() and wall time
  /// change.
  MemoryBudget budget;
};

/// Per-timestamp aggregates of one Engine run, built on util/stats. A
/// "round" is one virtual timestamp slot: since sessions run on their own
/// clocks, the per-slot totals aggregate each session's timestamp t
/// regardless of when it was processed in wall-clock terms — which makes
/// them deterministic.
struct EngineRoundStats {
  RunningStat messages_per_round;      ///< protocol messages per timestamp
  RunningStat recomputes_per_round;    ///< safe-region recomputations
  RunningStat round_seconds;           ///< processing seconds per timestamp
  size_t rounds = 0;                   ///< timestamp slots processed
  /// Mailbox high-water marks, one observation per session: the highest
  /// occupancy each session's mailbox reached, and how often a
  /// recomputation flight saturated it (stalling the session's clock).
  /// Wall-clock dependent — excluded from ResultDigest().
  RunningStat mailbox_peak_per_session;
  RunningStat mailbox_stalls_per_session;

  /// Renders the aggregates as a util/table (one row per metric).
  Table ToTable() const;
};

/// Concurrent multi-group server engine.
class Engine {
 public:
  /// Retire as soon as the session's event chain notices (non-deterministic
  /// cut point; pass an explicit timestamp for a deterministic one).
  static constexpr size_t kRetireNow = 0;

  /// RAII admission hold: keeps Run()/Wait() from returning while mid-run
  /// admissions are still coming. Shares ownership of the scheduler, so a
  /// hold that outlives its engine releases safely (though holding one
  /// past ~Engine just forfeits the hold — the destructor drains anyway).
  class Hold {
   public:
    Hold() = default;
    explicit Hold(std::shared_ptr<Scheduler> scheduler)
        : scheduler_(std::move(scheduler)) {
      scheduler_->Hold();
    }
    Hold(Hold&& other) noexcept = default;
    Hold& operator=(Hold&& other) noexcept {
      Reset();
      scheduler_ = std::move(other.scheduler_);
      return *this;
    }
    ~Hold() { Reset(); }
    /// Releases the hold early.
    void Reset() {
      if (scheduler_ != nullptr) scheduler_->Release();
      scheduler_.reset();
    }

   private:
    std::shared_ptr<Scheduler> scheduler_;
  };

  /// `pois` and `tree` are shared, read-only, and must outlive the engine.
  /// `tree` accepts either index backend (index/spatial_index.h); session
  /// results and digests are identical across backends.
  Engine(const std::vector<Point>* pois, SpatialIndex tree,
         const EngineOptions& options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers one group; returns its session id (dense, in admission
  /// order). All trajectories must outlive the engine. Callable from any
  /// thread, before Start or while the engine drains; throws
  /// std::logic_error once the engine has finished.
  uint32_t AdmitSession(std::vector<const Trajectory*> group,
                        const SessionTuning& tuning = SessionTuning());

  /// Legacy pre-run registration. Throws std::logic_error after
  /// Start()/Run() — use AdmitSession for mid-run admission.
  uint32_t AddSession(std::vector<const Trajectory*> group);

  /// Stops session `id` before it advances to timestamp `at` (a
  /// deterministic truncation of its horizon — same digest on every thread
  /// count if `at` is set before the session reaches it, e.g. via
  /// SessionTuning::retire_at at admission). kRetireNow stops it at the
  /// next event boundary instead, which is wall-clock dependent.
  /// Already-processed timestamps are unaffected; the session keeps its
  /// metrics and digest contribution. Callable from any thread.
  void RetireSession(uint32_t id, size_t at_timestamp = kRetireNow);

  size_t session_count() const { return table_->size(); }
  size_t thread_count() const { return pool_->thread_count(); }

  /// Begins dispatching (non-blocking; work runs on the pool). Throws
  /// std::logic_error when called twice.
  void Start();

  /// Serving-loop drain: blocks until every session admitted so far has
  /// finished and no admission hold is outstanding, then refreshes the
  /// round stats. The engine keeps serving — new sessions may be admitted
  /// after Wait() returns and drained by another Wait(), so a worker built
  /// on the engine is a long-lived server rather than a one-shot drain.
  /// Results (digest, metrics, stats) are valid after every Wait().
  void Wait();

  /// Wait() + permanently stop serving: AdmitSession afterwards is a hard
  /// std::logic_error. Idempotent.
  void Shutdown();

  /// Start() + Shutdown() — the legacy one-shot drain. Throws
  /// std::logic_error when called twice.
  void Run();

  /// Keeps Run()/Wait() from returning while the caller still plans
  /// mid-run admissions. Acquire before Start (or while holding another
  /// hold) to avoid racing the drain.
  Hold AcquireHold() { return Hold(scheduler_); }

  /// Per-session metrics (valid after Wait). By-reference: pins the
  /// session resident for the rest of the run (see WithSessionResult for
  /// the streaming alternative the budget-friendly paths use).
  const SimMetrics& session_metrics(uint32_t id) const;

  /// POI id of session `id`'s final meeting point.
  uint32_t session_po(uint32_t id) const;

  /// True once session `id` received its first meeting point (false for
  /// sessions retired before their first update).
  bool session_has_result(uint32_t id) const;

  /// Mailbox high-water mark / stall count of session `id` (see
  /// GroupSession::mailbox_peak / stall_count).
  size_t session_mailbox_peak(uint32_t id) const;
  size_t session_stall_count(uint32_t id) const;

  /// Buffered updates session `id` dropped (and later force-recomputed)
  /// under MailboxPolicy::kDropOldest (see GroupSession::dropped_count).
  size_t session_dropped_count(uint32_t id) const;

  /// Wall-clock completion stamps of session `id`'s advances (seconds
  /// since Start); consecutive gaps are the per-session round latencies.
  /// By-reference: pins the session resident (see session_metrics).
  const std::vector<double>& session_advance_seconds(uint32_t id) const;

  /// Streams session `id`'s result fields to `fn` without pinning — for a
  /// spilled session the snapshot is decoded into a stack-local that dies
  /// with the call, so iterating every session stays O(1) resident. The
  /// reference is valid only inside `fn`.
  void WithSessionResult(
      uint32_t id,
      const std::function<void(const SessionFinalResult&)>& fn) const;

  /// Spill/rehydrate counters and resident accounting of the session
  /// store (zeros when no budget is configured). Counters are
  /// deterministic at threads == 1 under a fixed budget; with more
  /// threads the victim timing is wall-clock dependent.
  MemoryStats memory_stats() const;

  /// Merged metrics across all sessions (valid after Wait).
  SimMetrics TotalMetrics() const;

  /// Per-timestamp aggregates (valid after Wait; refreshed by every Wait).
  const EngineRoundStats& round_stats() const { return round_stats_; }

  /// Raw per-timestamp slot totals (valid after Wait; copied under the
  /// scheduler's stats lock). Exposed so the cluster layer can serialize
  /// a worker's timeline and re-aggregate it coordinator-side with the
  /// same commutative per-slot sums.
  std::vector<Scheduler::Slot> timeline_slots() const {
    return scheduler_->SnapshotSlots();
  }

  /// Monotone count of scheduler events dispatched — the liveness signal
  /// a cluster worker's heartbeat replies carry (see Scheduler::
  /// events_processed). Safe to read from any thread at any time.
  uint64_t events_processed() const { return scheduler_->events_processed(); }

  /// FNV-1a hash over every deterministic per-session result field
  /// (protocol counters, algorithm counters, final meeting point) in
  /// session-id order. Identical across thread counts for identical
  /// admissions; wall-clock fields are excluded.
  uint64_t ResultDigest() const;

 private:
  class PoolExecutor;  // VerifyExecutor adapter over the thread pool

  SessionRecord* FindChecked(uint32_t id) const;
  /// Rebuilds round_stats_ from the scheduler slots and session mailbox
  /// counters. Called after every drain (idle engine, all sessions final).
  void RebuildRoundStats();

  const std::vector<Point>* pois_;
  SpatialIndex tree_;
  EngineOptions options_;
  /// Per-session SimOptions with the parallel-verify executor wired in —
  /// computed once so mid-run rehydration rebuilds sessions with exactly
  /// the admission-time options.
  SimOptions session_sim_options_;
  Timer run_timer_;
  EngineRoundStats round_stats_;
  // Atomic: AdmitSession/RetireSession read these from arbitrary threads
  // while Start()/Wait() write them.
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  // Destruction order matters: the pool (declared last) is destroyed
  // first, joining every worker before the scheduler and table they
  // reference go away. ~Engine additionally drains outstanding work so no
  // task re-posts into a stopping pool.
  std::unique_ptr<SessionTable> table_;
  // Destroyed after the scheduler (which holds a raw pointer into it) and
  // before the table whose records it compacts/spills.
  std::unique_ptr<SessionStore> store_;
  // shared_ptr so outstanding Holds keep the Scheduler object (whose
  // Release() only touches its own mutex/cv) alive past ~Engine.
  std::shared_ptr<Scheduler> scheduler_;
  std::unique_ptr<PoolExecutor> executor_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace mpn
