// Multi-group concurrent server engine.
//
// The Engine owns N GroupSessions and a fixed-size thread pool, and drives
// all sessions through a batched event loop: every round (one timestamp) it
// drains the per-timestamp location updates of all live sessions in
// parallel — each session's Tick runs as one job, and within a tick the
// optional per-user Tile-MSR verification fan-out (ServerConfig::
// verify_fanout) splits a group's candidate scans across the same pool.
// Per-round totals (messages, recomputations, wall time) accumulate into
// util/stats RunningStat tables.
//
// Determinism: sessions share only immutable data (POIs, R-tree), each
// session's work runs on exactly one thread per tick, and the fan-out's
// chunk layout is independent of the worker count. Everything in
// SimMetrics except the wall-clock timing fields is therefore bit-identical
// across thread counts for a fixed seed — ResultDigest() hashes exactly
// those deterministic fields.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/group_session.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace mpn {

/// Engine configuration.
struct EngineOptions {
  /// Worker threads in the pool (0 = hardware concurrency).
  size_t threads = 1;
  /// Per-session simulation options (server method, horizon, checks).
  SimOptions sim;
  /// Fan per-user Tile-MSR candidate verification out across the pool
  /// inside each recomputation (in addition to the per-group parallelism).
  bool parallel_verify = false;
  /// Candidates per fan-out chunk; fixed layout keeps results
  /// bit-identical across thread counts.
  size_t verify_grain = 16;
  /// Minimum candidate-list size before the fan-out engages.
  size_t verify_min_candidates = 32;
};

/// Per-round aggregates of one Engine::Run, built on util/stats.
struct EngineRoundStats {
  RunningStat messages_per_round;      ///< protocol messages sent per round
  RunningStat recomputes_per_round;    ///< safe-region recomputations
  RunningStat round_seconds;           ///< wall time per round
  size_t rounds = 0;                   ///< timestamps processed

  /// Renders the aggregates as a util/table (one row per metric).
  Table ToTable() const;
};

/// Concurrent multi-group server engine.
class Engine {
 public:
  /// `pois` and `tree` are shared, read-only, and must outlive the engine.
  Engine(const std::vector<Point>* pois, const RTree* tree,
         const EngineOptions& options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers one group; returns its session id (dense, starting at 0).
  /// All trajectories must outlive the engine.
  uint32_t AddSession(std::vector<const Trajectory*> group);

  size_t session_count() const { return sessions_.size(); }
  size_t thread_count() const { return pool_->thread_count(); }

  /// Runs every session to completion (batched round loop). May be called
  /// once per engine.
  void Run();

  /// Per-session metrics (valid after Run).
  const SimMetrics& session_metrics(uint32_t id) const {
    return sessions_[id]->metrics();
  }

  /// POI id of session `id`'s final meeting point.
  uint32_t session_po(uint32_t id) const { return sessions_[id]->current_po(); }

  /// Merged metrics across all sessions (valid after Run).
  SimMetrics TotalMetrics() const;

  /// Per-round aggregates (valid after Run).
  const EngineRoundStats& round_stats() const { return round_stats_; }

  /// FNV-1a hash over every deterministic per-session result field
  /// (protocol counters, algorithm counters, final meeting point) in
  /// session order. Identical across thread counts for identical inputs;
  /// wall-clock fields are excluded.
  uint64_t ResultDigest() const;

 private:
  class PoolExecutor;  // VerifyExecutor adapter over the thread pool

  const std::vector<Point>* pois_;
  const RTree* tree_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<PoolExecutor> executor_;
  std::vector<std::unique_ptr<GroupSession>> sessions_;
  EngineRoundStats round_stats_;
  bool ran_ = false;
};

}  // namespace mpn
