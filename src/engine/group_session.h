// One group's Fig. 3 protocol round-trip as an independent state machine.
//
// A GroupSession owns the server-side computation state (MpnServer) and the
// client replicas (MpnClient) of a single moving group. Since the engine
// went event-driven the per-timestamp step is split into schedulable
// phases so the expensive safe-region recomputation can run off the tick
// path:
//
//   AdvanceAndCheck  — advance clients one timestamp and check containment
//                      (the fast path). On a violation it captures the
//                      locations + motion hints the recomputation needs.
//   Recompute        — the Tile/Circle-MSR run. Touches only the server
//                      state, so the scheduler executes it as an async pool
//                      job concurrently with BufferAdvance calls.
//   BufferAdvance    — while a recomputation is in flight, location
//                      updates keep arriving: advance clients and append
//                      the snapshot to a bounded mailbox instead of
//                      checking regions the session does not have yet.
//   InstallResult    — apply a finished recomputation (step-3 messages,
//                      codec round-trip, region installation), then
//   ReplayOne        — re-check the buffered updates, oldest first,
//                      against the fresh regions; a violation mid-replay
//                      captures a new recomputation snapshot and leaves
//                      the remaining mailbox entries queued.
//
// The logical per-session order — advance t, check t against the newest
// regions, recompute with the locations of the violating timestamp — is
// exactly the order the old synchronous Tick() produced, so per-session
// results are bit-identical to a sequential run no matter how the
// scheduler interleaves sessions or how long a recomputation takes in
// wall-clock terms. Sessions share nothing mutable with each other.
//
// Thread-safety contract: all methods except Recompute must be serialized
// per session (the scheduler guarantees one session event at a time).
// Recompute may run concurrently with BufferAdvance on the same session —
// it touches only the MpnServer and its own outcome. Two Recomputes of the
// same session never overlap.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "net/message.h"
#include "sim/client.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "traj/trajectory.h"
#include "util/timer.h"

namespace mpn {

/// What a session does when a recomputation flight saturates its mailbox.
enum class MailboxPolicy : uint8_t {
  /// Stop advancing the virtual clock until the fresh regions arrive (the
  /// original backpressure behaviour; counted in stall_count()).
  kBlock = 0,
  /// Keep advancing: drop the oldest buffered payload instead (its slot
  /// stays queued as a timestamp-only husk) and *force-recompute* the
  /// payload from the source trajectories when the husk is replayed. Every
  /// timestamp is therefore still checked, in order, against the same
  /// regions as under kBlock — results and digest are bit-identical; only
  /// the wall-clock cost moves from the producer (stall) to the replayer
  /// (rematerialization). Dropped-and-recomputed entries are counted in
  /// dropped_count().
  kDropOldest = 1,
};

/// Per-session knobs of the dynamic-admission API.
struct SessionTuning {
  /// Multiplies the wall-clock cost of every recomputation by busy-waiting
  /// (straggler injection for scheduling benches). Results are unaffected —
  /// only wall time, which the digest excludes.
  double recompute_cost_factor = 1.0;
  /// Deterministic retirement: the session stops before advancing to this
  /// timestamp, exactly as if its horizon were min(horizon, retire_at).
  /// Settable later via Engine::RetireSession.
  size_t retire_at = std::numeric_limits<size_t>::max();
  /// Buffered location updates the session may accumulate while a
  /// recomputation is in flight (0 = the session stalls instead, or drops
  /// every payload under kDropOldest).
  size_t mailbox_capacity = 16;
  /// Backpressure policy once a recomputation flight saturates the mailbox.
  MailboxPolicy mailbox_policy = MailboxPolicy::kBlock;
};

/// The per-session fields the engine still serves after a finalized
/// session's state machine has been destroyed (engine/session_store.h
/// compacts every finalized session down to this, budget or not).
struct SessionFinalResult {
  SimMetrics metrics;
  bool has_result = false;
  uint32_t po = 0;
  size_t mailbox_peak = 0;
  size_t stall_count = 0;
  size_t dropped_count = 0;
  /// Full advance-completion trace (horizon-sized, like advance_seconds()),
  /// kept so round-latency percentiles survive compaction.
  std::vector<double> advance_seconds;
};

/// Single-group protocol state machine, driven by the engine's scheduler.
class GroupSession {
 public:
  /// Probe-phase capture of one timestamp: everything a recomputation (or a
  /// deferred region check) needs from the clients.
  struct Snapshot {
    size_t t = 0;
    std::vector<Point> locations;
    std::vector<MotionHint> hints;
  };

  /// Result of one async recomputation, handed back to InstallResult.
  struct RecomputeOutcome {
    size_t t = 0;                 ///< violating timestamp
    MsrResult result;
    double compute_seconds = 0.0; ///< server time (excl. straggler spin)
  };

  /// Outcome of re-checking one buffered location update.
  enum class Replay {
    kClean,      ///< inside the fresh regions; entry consumed
    kViolation,  ///< outside; entry consumed, snapshot captured
    kEmpty       ///< mailbox drained
  };

  /// All referenced data must outlive the session. All trajectories must be
  /// at least as long as the simulated horizon. `run_timer` (optional) is
  /// the engine-wide clock advance completions are stamped against.
  GroupSession(uint32_t id, const std::vector<Point>* pois, SpatialIndex tree,
               std::vector<const Trajectory*> group, const SimOptions& options,
               const SessionTuning& tuning = SessionTuning(),
               const Timer* run_timer = nullptr);

  uint32_t id() const { return id_; }

  /// Timestamps this session would simulate without retirement (min
  /// trajectory length, capped by SimOptions::max_timestamps).
  size_t horizon() const { return horizon_; }

  /// Horizon after retirement truncation.
  size_t effective_horizon() const {
    const size_t r = retire_at_;
    return r < horizon_ ? r : horizon_;
  }

  /// Next timestamp an Advance call would process.
  size_t next_timestamp() const { return next_t_; }

  /// True when no further advances are possible.
  bool AdvancesExhausted() const { return next_t_ >= effective_horizon(); }

  /// True when every advanced timestamp has also been region-checked (or
  /// dropped by retirement) — i.e. nothing is buffered.
  bool MailboxEmpty() const { return mailbox_.empty(); }

  /// True while a recomputation is in flight and another location update
  /// can land in the mailbox. Under kBlock a full mailbox stalls the
  /// clock; under kDropOldest buffering never blocks (overflow drops the
  /// oldest payload instead — see MailboxPolicy).
  bool CanBuffer() const {
    if (AdvancesExhausted()) return false;
    if (tuning_.mailbox_policy == MailboxPolicy::kDropOldest) return true;
    return mailbox_.size() < tuning_.mailbox_capacity;
  }

  /// True once every timestamp has been processed (the scheduler must also
  /// see no recomputation in flight before finalizing).
  bool done() const { return AdvancesExhausted() && mailbox_.empty(); }

  /// Fast path: advance clients one timestamp and check containment.
  /// Returns true on a safe-region violation, with `snap` filled for the
  /// recomputation. Requires an empty mailbox; no-op (returns false) when
  /// a concurrent retirement already exhausted the horizon.
  bool AdvanceAndCheck(Snapshot* snap);

  /// Advance clients one timestamp into the mailbox (recompute in flight).
  /// No-op when a concurrent retirement invalidated CanBuffer().
  void BufferAdvance();

  /// Runs the safe-region recomputation for `snap`. The only method the
  /// scheduler may run concurrently with BufferAdvance.
  RecomputeOutcome Recompute(const Snapshot& snap);

  /// Applies a finished recomputation: result bookkeeping, step-3 messages,
  /// codec round-trip, region installation.
  void InstallResult(RecomputeOutcome outcome);

  /// Re-checks the oldest buffered update against the current regions.
  Replay ReplayOne(Snapshot* snap);

  /// Pulls the server's accumulated algorithm counters into metrics().
  /// Call once after the last phase (no recomputation may be in flight).
  void Finish() { metrics_.msr = server_.stats(); }

  /// Requests retirement: the session stops before advancing to timestamp
  /// `at` (already-advanced timestamps are unaffected; buffered updates at
  /// or past `at` are dropped unchecked). Callable from any thread.
  void RequestRetire(size_t at) {
    size_t cur = retire_at_;
    while (at < cur && !retire_at_.compare_exchange_weak(cur, at)) {
    }
  }

  /// Metrics accumulated so far.
  const SimMetrics& metrics() const { return metrics_; }

  /// POI id of the current meeting point (valid after the first update).
  uint32_t current_po() const { return current_po_; }

  /// True after the first update round.
  bool has_result() const { return has_result_; }

  /// Highest mailbox occupancy the session ever reached. Wall-clock
  /// dependent (how many updates land during a recomputation depends on
  /// its latency), so it is observability only and excluded from digests.
  size_t mailbox_peak() const { return mailbox_peak_; }

  /// Times a recomputation flight saturated the mailbox — further location
  /// updates had to stall the session's virtual clock until the fresh
  /// regions arrived. With mailbox_capacity == 0 every non-final
  /// recomputation stalls (deterministically); for capacity >= 1 the count
  /// is wall-clock dependent. Observability only, excluded from digests.
  size_t stall_count() const { return stall_count_; }

  /// Buffered payloads dropped (and later force-recomputed at replay)
  /// under MailboxPolicy::kDropOldest. Wall-clock dependent for
  /// capacity >= 1, deterministic at capacity 0. Observability only,
  /// excluded from digests.
  size_t dropped_count() const { return dropped_count_; }

  /// Distills the finalized session into the fields the engine keeps
  /// serving after compaction. Requires Finish() to have run.
  SessionFinalResult ExtractFinalResult() const {
    SessionFinalResult fr;
    fr.metrics = metrics_;
    fr.has_result = has_result_;
    fr.po = current_po_;
    fr.mailbox_peak = mailbox_peak_;
    fr.stall_count = stall_count_;
    fr.dropped_count = dropped_count_;
    fr.advance_seconds = advance_at_;
    return fr;
  }

  // --- out-of-core snapshotting (engine/session_store.h) -------------------

  /// Plain-data snapshot of a live session's evolving state. Everything the
  /// constructor arguments do not already determine; the per-timestamp
  /// traces carry only the first next_t entries (later entries are provably
  /// still at their initial zero). Wire encoding lives in
  /// engine/session_codec.h so this layer stays IPC-free.
  struct State {
    size_t next_t = 0;
    size_t retire_at = std::numeric_limits<size_t>::max();
    bool has_result = false;
    uint32_t current_po = 0;
    size_t mailbox_peak = 0;
    size_t stall_count = 0;
    size_t dropped_count = 0;
    SimMetrics metrics;
    MpnServer::State server;
    std::vector<MpnClient::State> clients;
    std::vector<uint32_t> messages_at;
    std::vector<uint8_t> violated_at;
    std::vector<double> advance_at;
    std::vector<double> seconds_at;
  };

  /// Captures the session's full evolving state. Only valid between events
  /// with an empty mailbox and no recomputation in flight (asserted) — at
  /// that boundary Import(Export()) is a bit-exact identity, which is what
  /// makes spilling digest-neutral.
  State ExportState() const;

  /// Restores a captured state into a freshly constructed session (same id,
  /// same trajectories, same options/tuning).
  void ImportState(const State& state);

  /// Deterministic resident-byte estimate: a pure function of the logical
  /// state, identical across runs/machines for the engine's accounting.
  size_t StateBytesEstimate() const;

  // --- per-timestamp traces (engine round stats + latency percentiles) ---

  /// Protocol messages attributed to timestamp t (step 1/2 at the
  /// violation, step 3 at the install of that violation's result).
  const std::vector<uint32_t>& messages_at() const { return messages_at_; }
  /// 1 when timestamp t triggered a recomputation.
  const std::vector<uint8_t>& violated_at() const { return violated_at_; }
  /// Wall seconds (against the engine run timer) when timestamp t's advance
  /// completed; the gaps are the per-session round latencies.
  const std::vector<double>& advance_seconds() const { return advance_at_; }
  /// Processing seconds attributed to timestamp t (tick + recompute +
  /// install work).
  const std::vector<double>& work_seconds_at() const { return seconds_at_; }

 private:
  void AdvanceClients(size_t t);
  void CaptureSnapshot(size_t t, Snapshot* snap) const;
  /// kDropOldest forced recompute: rebuilds a dropped payload (locations +
  /// motion hints at entry->t) by replaying fresh client replicas over the
  /// source trajectories from timestamp 0 — bit-identical to the original
  /// capture, because MpnClient is a pure function of its trajectory
  /// prefix.
  void RematerializeSnapshot(Snapshot* entry) const;
  /// Step 1/2 message accounting + update counters for a violation at t.
  void RecordViolation(size_t t);
  /// check_correctness mode: the last reported meeting point must still be
  /// optimal for `locations` while every user is inside their region.
  void CheckInvariantAt(const std::vector<Point>& locations) const;
  double Now() const { return run_timer_ != nullptr
                                  ? run_timer_->ElapsedSeconds() : 0.0; }

  uint32_t id_;
  const std::vector<Point>* pois_;
  SpatialIndex tree_;
  std::vector<const Trajectory*> group_;
  SimOptions options_;
  SessionTuning tuning_;
  const Timer* run_timer_;
  MpnServer server_;
  std::vector<MpnClient> clients_;
  PacketModel packet_model_;
  SimMetrics metrics_;
  size_t horizon_ = 0;
  size_t next_t_ = 0;
  std::atomic<size_t> retire_at_{std::numeric_limits<size_t>::max()};
  std::deque<Snapshot> mailbox_;
  size_t mailbox_peak_ = 0;
  size_t stall_count_ = 0;
  /// Mailbox entries still carrying their payload (kDropOldest husks
  /// excluded). Always the newest entries: drops husk-ify oldest-first, so
  /// the deque is [husks...][materialized...].
  size_t materialized_ = 0;
  size_t dropped_count_ = 0;
  /// The in-flight recomputation filled the mailbox; counted as one stall
  /// when its result installs.
  bool flight_saturated_ = false;
  bool has_result_ = false;
  uint32_t current_po_ = 0;

  std::vector<uint32_t> messages_at_;
  std::vector<uint8_t> violated_at_;
  std::vector<double> advance_at_;
  std::vector<double> seconds_at_;
};

}  // namespace mpn
