// One group's Fig. 3 protocol round-trip as an independent state machine.
//
// A GroupSession owns the server-side computation state (MpnServer) and the
// client replicas (MpnClient) of a single moving group, and advances them
// one timestamp per Tick(): advance clients, detect a safe-region
// violation, and — when violated — run the full update round (steps 1-3 of
// the protocol, including the lossless tile codec round-trip). Sessions
// share nothing mutable with each other, so the Engine can run any set of
// sessions' Ticks concurrently and the per-session results are bit-exact
// regardless of the thread count or interleaving.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.h"
#include "sim/client.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "traj/trajectory.h"

namespace mpn {

/// Single-group protocol state machine, driven by the Engine.
class GroupSession {
 public:
  /// All referenced data must outlive the session. All trajectories must be
  /// at least as long as the simulated horizon.
  GroupSession(uint32_t id, const std::vector<Point>* pois, const RTree* tree,
               std::vector<const Trajectory*> group,
               const SimOptions& options);

  uint32_t id() const { return id_; }

  /// Timestamps this session will simulate (min trajectory length, capped
  /// by SimOptions::max_timestamps).
  size_t horizon() const { return horizon_; }

  /// True once every timestamp has been processed.
  bool done() const { return next_t_ >= horizon_; }

  /// Processes the next timestamp; returns true when the tick triggered a
  /// safe-region recomputation (a notification round). Must not be called
  /// when done(); safe to call concurrently with other sessions' Tick but
  /// never concurrently for the same session.
  bool Tick();

  /// Pulls the server's accumulated algorithm counters into metrics().
  /// Call once after the last Tick.
  void Finish() { metrics_.msr = server_.stats(); }

  /// Metrics accumulated so far.
  const SimMetrics& metrics() const { return metrics_; }

  /// POI id of the current meeting point (valid after the first update).
  uint32_t current_po() const { return current_po_; }

  /// True after the first update round.
  bool has_result() const { return has_result_; }

 private:
  void TriggerUpdate();
  void CheckInvariant() const;  // check_correctness mode only

  uint32_t id_;
  const std::vector<Point>* pois_;
  const RTree* tree_;
  std::vector<const Trajectory*> group_;
  SimOptions options_;
  MpnServer server_;
  std::vector<MpnClient> clients_;
  PacketModel packet_model_;
  SimMetrics metrics_;
  size_t horizon_ = 0;
  size_t next_t_ = 0;
  bool has_result_ = false;
  uint32_t current_po_ = 0;
};

}  // namespace mpn
