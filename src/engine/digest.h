// Deterministic result digest shared by the single-process Engine and the
// multi-process ClusterEngine.
//
// The digest is an FNV-1a hash over every deterministic per-session result
// field (protocol counters, algorithm counters, final meeting point) in
// session-id order. Wall-clock fields (server_seconds, mailbox high-water
// marks, stall counts) and index-structure-dependent fields (R-tree node
// accesses) are excluded. Both engines feed the *same* word
// stream through AddSessionResultToDigest — the cluster coordinator ships
// the per-session fields over IPC and replays them in global session-id
// order — which is what makes the cluster digest bit-identical to a
// single-process run over the same groups, for any shard count.
#pragma once

#include <cstdint>

#include "net/message.h"
#include "sim/simulator.h"

namespace mpn {

/// FNV-1a over a stream of 64-bit words.
struct Fnv1a {
  uint64_t hash = 1469598103934665603ULL;
  void Add(uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (word >> (8 * i)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
};

/// Folds one session's deterministic result fields into the digest. `po`
/// is the POI id of the session's final meeting point, meaningful only
/// when `has_result` (sessions retired before their first update have
/// none).
inline void AddSessionResultToDigest(Fnv1a* fnv, const SimMetrics& m,
                                     bool has_result, uint32_t po) {
  fnv->Add(m.timestamps);
  fnv->Add(m.updates);
  fnv->Add(m.result_changes);
  fnv->Add(has_result ? 1 + static_cast<uint64_t>(po) : 0);
  for (size_t t = 0; t < kMessageTypeCount; ++t) {
    const MessageType type = static_cast<MessageType>(t);
    fnv->Add(m.comm.messages(type));
    fnv->Add(m.comm.packets(type));
    fnv->Add(m.comm.values(type));
  }
  fnv->Add(m.msr.tiles_tried);
  fnv->Add(m.msr.tiles_added);
  fnv->Add(m.msr.divide_calls);
  fnv->Add(m.msr.verify.calls);
  fnv->Add(m.msr.verify.accepted);
  fnv->Add(m.msr.verify.tile_groups);
  fnv->Add(m.msr.verify.focal_evals);
  fnv->Add(m.msr.verify.memo_hits);
  fnv->Add(m.msr.candidates.retrievals);
  fnv->Add(m.msr.candidates.candidates_total);
  fnv->Add(m.msr.candidates.rejected_by_buffer);
  // rtree_node_accesses is deliberately NOT digested: it depends on index
  // structure (dynamic vs packed, fanout, build order), and the digest
  // contract is bit-identity across index backends. It still travels over
  // IPC and shows up in metrics tables.
}

}  // namespace mpn
