#include "engine/cluster.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <utility>

#include "engine/digest.h"
#include "util/macros.h"

namespace mpn {

namespace {

/// Cluster protocol frame types (first payload byte). Coordinator ->
/// worker: kAdmit, kRetire, kDrain, kShutdown. Worker -> coordinator:
/// kDrainedOk, kShutdownAck, kWorkerError. See docs/ARCHITECTURE.md §5c.
enum FrameType : uint8_t {
  kAdmit = 1,
  kRetire = 2,
  kDrain = 3,
  kShutdown = 4,
  kDrainedOk = 5,
  kShutdownAck = 6,
  kWorkerError = 7,
};

/// Serializes every SimMetrics field the digest and the result accessors
/// consume. The double (server_seconds) travels as its bit pattern, so the
/// round-trip is byte-exact.
void WriteMetrics(WireBuffer* out, const SimMetrics& m) {
  out->PutU64(m.timestamps);
  out->PutU64(m.updates);
  out->PutU64(m.result_changes);
  for (size_t t = 0; t < kMessageTypeCount; ++t) {
    const MessageType type = static_cast<MessageType>(t);
    out->PutU64(m.comm.messages(type));
    out->PutU64(m.comm.packets(type));
    out->PutU64(m.comm.values(type));
  }
  out->PutDouble(m.server_seconds);
  out->PutU64(m.msr.tiles_tried);
  out->PutU64(m.msr.tiles_added);
  out->PutU64(m.msr.divide_calls);
  out->PutU64(m.msr.verify.calls);
  out->PutU64(m.msr.verify.accepted);
  out->PutU64(m.msr.verify.tile_groups);
  out->PutU64(m.msr.verify.focal_evals);
  out->PutU64(m.msr.verify.memo_hits);
  out->PutU64(m.msr.candidates.retrievals);
  out->PutU64(m.msr.candidates.candidates_total);
  out->PutU64(m.msr.candidates.rejected_by_buffer);
  out->PutU64(m.msr.rtree_node_accesses);
}

SimMetrics ReadMetrics(WireReader* r) {
  SimMetrics m;
  m.timestamps = r->GetU64();
  m.updates = r->GetU64();
  m.result_changes = r->GetU64();
  for (size_t t = 0; t < kMessageTypeCount; ++t) {
    const MessageType type = static_cast<MessageType>(t);
    const uint64_t messages = r->GetU64();
    const uint64_t packets = r->GetU64();
    const uint64_t values = r->GetU64();
    m.comm.AddRaw(type, messages, packets, values);
  }
  m.server_seconds = r->GetDouble();
  m.msr.tiles_tried = r->GetU64();
  m.msr.tiles_added = r->GetU64();
  m.msr.divide_calls = r->GetU64();
  m.msr.verify.calls = r->GetU64();
  m.msr.verify.accepted = r->GetU64();
  m.msr.verify.tile_groups = r->GetU64();
  m.msr.verify.focal_evals = r->GetU64();
  m.msr.verify.memo_hits = r->GetU64();
  m.msr.candidates.retrievals = r->GetU64();
  m.msr.candidates.candidates_total = r->GetU64();
  m.msr.candidates.rejected_by_buffer = r->GetU64();
  m.msr.rtree_node_accesses = r->GetU64();
  return m;
}

/// Worker serving loop: one Engine over this shard's groups, fed by
/// frames until the coordinator shuts it down or closes the pipe. Runs in
/// the forked child; must not touch the coordinator's state or stdio.
int WorkerMain(IpcChannel* ch, const std::vector<Point>* pois,
               const RTree* tree, const EngineOptions& options) {
  try {
    Engine engine(pois, tree, options);
    engine.Start();
    // Owned backing store for deserialized trajectories: sessions keep
    // pointers into it, so entries must never move (deque).
    std::deque<std::vector<Trajectory>> storage;
    std::vector<uint32_t> global_ids;
    std::vector<uint8_t> payload;
    while (ch->Recv(&payload)) {
      WireReader r(payload);
      switch (r.GetU8()) {
        case kAdmit: {
          const uint32_t global_id = r.GetU32();
          SessionTuning tuning;
          tuning.recompute_cost_factor = r.GetDouble();
          tuning.retire_at = static_cast<size_t>(r.GetU64());
          tuning.mailbox_capacity = static_cast<size_t>(r.GetU64());
          const uint32_t m = r.GetU32();
          std::vector<Trajectory> trajs(m);
          for (uint32_t i = 0; i < m; ++i) {
            const uint32_t n = r.GetU32();
            trajs[i].positions.resize(n);
            for (uint32_t j = 0; j < n; ++j) {
              trajs[i].positions[j].x = r.GetDouble();
              trajs[i].positions[j].y = r.GetDouble();
            }
          }
          storage.push_back(std::move(trajs));
          std::vector<const Trajectory*> group;
          group.reserve(storage.back().size());
          for (const Trajectory& t : storage.back()) group.push_back(&t);
          const uint32_t local = engine.AdmitSession(std::move(group), tuning);
          if (local != global_ids.size()) {
            throw std::runtime_error("cluster worker: local id out of sync");
          }
          global_ids.push_back(global_id);
          break;
        }
        case kRetire: {
          const uint32_t local = r.GetU32();
          const uint64_t at = r.GetU64();
          engine.RetireSession(local, static_cast<size_t>(at));
          break;
        }
        case kDrain: {
          engine.Wait();
          WireBuffer out;
          out.PutU8(kDrainedOk);
          const size_t sessions = engine.session_count();
          out.PutU32(static_cast<uint32_t>(sessions));
          for (uint32_t local = 0; local < sessions; ++local) {
            out.PutU32(global_ids[local]);
            WriteMetrics(&out, engine.session_metrics(local));
            out.PutU8(engine.session_has_result(local) ? 1 : 0);
            out.PutU32(engine.session_po(local));
            out.PutU64(engine.session_mailbox_peak(local));
            out.PutU64(engine.session_stall_count(local));
          }
          const std::vector<Scheduler::Slot> slots = engine.timeline_slots();
          out.PutU32(static_cast<uint32_t>(slots.size()));
          for (const Scheduler::Slot& slot : slots) {
            out.PutU64(slot.messages);
            out.PutU64(slot.recomputes);
            out.PutDouble(slot.seconds);
          }
          if (!ch->Send(out)) return 1;
          break;
        }
        case kShutdown: {
          engine.Shutdown();
          WireBuffer out;
          out.PutU8(kShutdownAck);
          ch->Send(out);
          return 0;
        }
        default:
          throw std::runtime_error("cluster worker: unknown frame type");
      }
    }
    return 0;  // coordinator closed the pipe: clean exit
  } catch (const std::exception& e) {
    WireBuffer out;
    out.PutU8(kWorkerError);
    out.PutString(e.what());
    ch->Send(out);  // best effort; the exit code says it all otherwise
    return 1;
  }
}

std::string ShardError(size_t shard, const std::string& detail) {
  return "mpn cluster: worker for shard " + std::to_string(shard) + " " +
         detail;
}

}  // namespace

ClusterEngine::ClusterEngine(const std::vector<Point>* pois, const RTree* tree,
                             const ClusterOptions& options)
    : pois_(pois), tree_(tree), options_(options) {
  MPN_ASSERT(pois_ != nullptr && tree_ != nullptr);
  MPN_ASSERT_MSG(options_.workers >= 1, "cluster needs at least one worker");
}

ClusterEngine::~ClusterEngine() { TeardownWorkers(/*force=*/false); }

void ClusterEngine::RequireStarted() const {
  if (!started_) {
    throw std::logic_error("ClusterEngine: not started (call Start/Run)");
  }
}

void ClusterEngine::RequireServing() const {
  if (stopped_) {
    throw std::logic_error(
        "ClusterEngine: AdmitSession/RetireSession after Shutdown");
  }
  RequireHealthy();
}

void ClusterEngine::RequireHealthy() const {
  if (failed_) {
    throw std::runtime_error(
        "ClusterEngine: a worker failed earlier; the cluster is poisoned "
        "(results of the last successful Wait remain readable)");
  }
}

uint32_t ClusterEngine::AdmitSession(
    const std::vector<const Trajectory*>& group, const SessionTuning& tuning) {
  std::lock_guard<std::mutex> lock(mu_);
  RequireServing();
  MPN_ASSERT(!group.empty());
  const uint32_t id = next_id_++;
  const size_t shard = id % options_.workers;
  WireBuffer frame;
  frame.PutU8(kAdmit);
  frame.PutU32(id);
  frame.PutDouble(tuning.recompute_cost_factor);
  frame.PutU64(static_cast<uint64_t>(tuning.retire_at));
  frame.PutU64(static_cast<uint64_t>(tuning.mailbox_capacity));
  frame.PutU32(static_cast<uint32_t>(group.size()));
  for (const Trajectory* t : group) {
    MPN_ASSERT(t != nullptr);
    frame.PutU32(static_cast<uint32_t>(t->positions.size()));
    for (const Point& p : t->positions) {
      frame.PutDouble(p.x);
      frame.PutDouble(p.y);
    }
  }
  if (!started_) {
    pending_.emplace_back(shard, std::move(frame));
  } else {
    SendOrThrow(shard, frame);
  }
  return id;
}

void ClusterEngine::RetireSession(uint32_t id, size_t at_timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  RequireServing();
  if (id >= next_id_) {
    throw std::out_of_range("ClusterEngine::RetireSession: unknown id");
  }
  const size_t shard = id % options_.workers;
  WireBuffer frame;
  frame.PutU8(kRetire);
  frame.PutU32(id / static_cast<uint32_t>(options_.workers));
  frame.PutU64(static_cast<uint64_t>(at_timestamp));
  if (!started_) {
    pending_.emplace_back(shard, std::move(frame));
  } else {
    SendOrThrow(shard, frame);
  }
}

void ClusterEngine::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    throw std::logic_error("ClusterEngine::Run/Start may be called once");
  }
  started_ = true;
  workers_.reserve(options_.workers);
  for (size_t shard = 0; shard < options_.workers; ++shard) {
    IpcChannel parent_end, child_end;
    IpcChannel::MakePair(&parent_end, &child_end);
    const pid_t pid = fork();
    if (pid < 0) {
      throw std::runtime_error("mpn cluster: fork failed");
    }
    if (pid == 0) {
      // Worker process. Drop every coordinator-side fd so a dead sibling
      // (or a closing coordinator) reliably surfaces as EOF, then serve.
      parent_end.Close();
      for (Worker& w : workers_) w.channel.Close();
      const int code =
          WorkerMain(&child_end, pois_, tree_, options_.engine);
      child_end.Close();
      // _Exit: no atexit handlers, no static destructors, no flushing of
      // stdio buffers inherited from the coordinator.
      std::_Exit(code);
    }
    child_end.Close();
    Worker w;
    w.pid = pid;
    w.channel = std::move(parent_end);
    workers_.push_back(std::move(w));
  }
  for (auto& [shard, frame] : pending_) SendOrThrow(shard, frame);
  pending_.clear();
}

void ClusterEngine::Wait() {
  std::lock_guard<std::mutex> lock(mu_);
  RequireStarted();
  RequireHealthy();
  if (stopped_) return;  // results were frozen by Shutdown
  WireBuffer drain;
  drain.PutU8(kDrain);
  for (size_t shard = 0; shard < workers_.size(); ++shard) {
    SendOrThrow(shard, drain);
  }

  std::vector<SessionResult> results(next_id_);
  std::vector<SlotTotals> slots;
  for (size_t shard = 0; shard < workers_.size(); ++shard) {
    const std::vector<uint8_t> payload = RecvOrThrow(shard);
    WireReader r(payload);
    if (r.GetU8() != kDrainedOk) {
      throw std::runtime_error(ShardError(shard, "sent an invalid reply"));
    }
    const uint32_t sessions = r.GetU32();
    for (uint32_t local = 0; local < sessions; ++local) {
      const uint32_t global_id = r.GetU32();
      const uint32_t expected =
          static_cast<uint32_t>(shard) +
          local * static_cast<uint32_t>(options_.workers);
      if (global_id != expected || global_id >= results.size()) {
        throw std::runtime_error(ShardError(shard, "routed ids out of sync"));
      }
      SessionResult& res = results[global_id];
      res.metrics = ReadMetrics(&r);
      res.has_result = r.GetU8() != 0;
      res.po = r.GetU32();
      res.mailbox_peak = r.GetU64();
      res.stalls = r.GetU64();
    }
    const uint32_t slot_count = r.GetU32();
    if (slots.size() < slot_count) slots.resize(slot_count);
    for (uint32_t t = 0; t < slot_count; ++t) {
      slots[t].messages += r.GetU64();
      slots[t].recomputes += r.GetU64();
      slots[t].seconds += r.GetDouble();
    }
  }
  results_ = std::move(results);

  // Fold exactly like Engine::RebuildRoundStats: slot totals in timestamp
  // order (bit-identical counter sequences for any worker count), then the
  // per-session mailbox marks in global session order.
  EngineRoundStats stats;
  for (const SlotTotals& slot : slots) {
    stats.messages_per_round.Add(static_cast<double>(slot.messages));
    stats.recomputes_per_round.Add(static_cast<double>(slot.recomputes));
    stats.round_seconds.Add(slot.seconds);
    ++stats.rounds;
  }
  for (const SessionResult& res : results_) {
    stats.mailbox_peak_per_session.Add(static_cast<double>(res.mailbox_peak));
    stats.mailbox_stalls_per_session.Add(static_cast<double>(res.stalls));
  }
  round_stats_ = stats;
}

void ClusterEngine::Shutdown() {
  Wait();
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return;
  stopped_ = true;
  WireBuffer bye;
  bye.PutU8(kShutdown);
  for (size_t shard = 0; shard < workers_.size(); ++shard) {
    SendOrThrow(shard, bye);
  }
  for (size_t shard = 0; shard < workers_.size(); ++shard) {
    const std::vector<uint8_t> payload = RecvOrThrow(shard);
    WireReader r(payload);
    if (r.GetU8() != kShutdownAck) {
      throw std::runtime_error(ShardError(shard, "sent an invalid reply"));
    }
    workers_[shard].channel.Close();
    Reap(shard);
  }
}

void ClusterEngine::Run() {
  Start();
  Shutdown();
}

const ClusterEngine::SessionResult& ClusterEngine::ResultChecked(
    uint32_t id) const {
  if (id >= results_.size()) {
    throw std::out_of_range(
        "ClusterEngine: unknown session id (results are valid after Wait)");
  }
  return results_[id];
}

const SimMetrics& ClusterEngine::session_metrics(uint32_t id) const {
  return ResultChecked(id).metrics;
}

uint32_t ClusterEngine::session_po(uint32_t id) const {
  return ResultChecked(id).po;
}

bool ClusterEngine::session_has_result(uint32_t id) const {
  return ResultChecked(id).has_result;
}

size_t ClusterEngine::session_mailbox_peak(uint32_t id) const {
  return static_cast<size_t>(ResultChecked(id).mailbox_peak);
}

size_t ClusterEngine::session_stall_count(uint32_t id) const {
  return static_cast<size_t>(ResultChecked(id).stalls);
}

SimMetrics ClusterEngine::TotalMetrics() const {
  SimMetrics total;
  for (const SessionResult& res : results_) total.Merge(res.metrics);
  return total;
}

uint64_t ClusterEngine::ResultDigest() const {
  Fnv1a fnv;
  for (const SessionResult& res : results_) {
    AddSessionResultToDigest(&fnv, res.metrics, res.has_result, res.po);
  }
  return fnv.hash;
}

void ClusterEngine::KillWorkerForTest(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  RequireStarted();
  MPN_ASSERT(shard < workers_.size());
  if (!workers_[shard].reaped && workers_[shard].pid > 0) {
    kill(workers_[shard].pid, SIGKILL);
  }
}

void ClusterEngine::SendOrThrow(size_t shard, const WireBuffer& frame) {
  if (!workers_[shard].channel.Send(frame)) {
    failed_ = true;  // replies may now be out of phase: poison the cluster
    Reap(shard);
    throw std::runtime_error(
        ShardError(shard, "exited unexpectedly (send failed)"));
  }
}

std::vector<uint8_t> ClusterEngine::RecvOrThrow(size_t shard) {
  std::vector<uint8_t> payload;
  if (!workers_[shard].channel.Recv(&payload)) {
    failed_ = true;
    Reap(shard);
    throw std::runtime_error(
        ShardError(shard, "exited unexpectedly (connection closed)"));
  }
  if (!payload.empty() && payload[0] == kWorkerError) {
    WireReader r(payload);
    r.GetU8();
    const std::string what = r.GetString();
    failed_ = true;
    Reap(shard);
    throw std::runtime_error(ShardError(shard, "failed: " + what));
  }
  return payload;
}

void ClusterEngine::Reap(size_t shard) {
  Worker& w = workers_[shard];
  if (w.reaped || w.pid <= 0) return;
  int status = 0;
  for (;;) {
    const pid_t r = waitpid(w.pid, &status, 0);
    if (r == w.pid) break;
    if (r < 0 && errno == EINTR) continue;  // interrupted: retry
    break;  // ECHILD: collected elsewhere (or pid gone) — nothing to do
  }
  w.reaped = true;
}

void ClusterEngine::TeardownWorkers(bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Worker& w : workers_) {
    if (!w.reaped && w.pid > 0 && force) kill(w.pid, SIGKILL);
    // Closing the channel makes a live worker's Recv return EOF, which
    // ends its serving loop — the blocking reap below cannot hang.
    w.channel.Close();
  }
  for (size_t shard = 0; shard < workers_.size(); ++shard) {
    Reap(shard);
  }
}

}  // namespace mpn
