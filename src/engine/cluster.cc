#include "engine/cluster.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "engine/digest.h"
#include "engine/session_codec.h"
#include "util/macros.h"
#include "util/timer.h"

namespace mpn {

namespace {

/// Cluster protocol frame types (first payload byte). Coordinator ->
/// worker: kAdmit, kRetire, kDrain, kShutdown; kPing on the heartbeat
/// channel. Worker -> coordinator: kDrainedOk, kShutdownAck,
/// kWorkerError; kPong on the heartbeat channel. See
/// docs/ARCHITECTURE.md §5c-§5d.
enum FrameType : uint8_t {
  kAdmit = 1,
  kRetire = 2,
  kDrain = 3,
  kShutdown = 4,
  kDrainedOk = 5,
  kShutdownAck = 6,
  kWorkerError = 7,
  kPing = 8,
  kPong = 9,
};

/// Byte offset of the SessionTuning::retire_at u64 inside a kAdmit frame
/// (tag u8 + id u32 + recompute_cost_factor double). The snapshot replay
/// patches this field in place — see ReplayShardSnapshot.
constexpr size_t kAdmitRetireAtOffset = 1 + 4 + 8;

uint64_t ReadAdmitRetireAt(const WireBuffer& frame) {
  MPN_ASSERT(frame.size() >= kAdmitRetireAtOffset + 8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(frame.data()[kAdmitRetireAtOffset + i])
         << (8 * i);
  }
  return v;
}

// SimMetrics serialization (WriteMetrics/ReadMetrics) moved to
// engine/session_codec.h, shared with the session store's spill snapshots.

/// Worker serving loop: one Engine over this shard's groups, fed by
/// frames until the coordinator shuts it down or closes the pipe. Runs in
/// the forked child; must not touch the coordinator's state or stdio.
/// Retire frames carry *global* ids (a replacement worker's local ids
/// restart from 0 while global ids do not), so the worker keeps the
/// global->local map.
int WorkerMain(IpcChannel* ch, IpcChannel* hb,
               const std::vector<Point>* pois, SpatialIndex tree,
               const EngineOptions& options) {
  try {
    Engine engine(pois, tree, options);
    engine.Start();
    // Heartbeat responder: a dedicated thread answers coordinator pings
    // even while this (main) thread blocks inside Engine::Wait during a
    // drain — so "busy recomputing" stays distinguishable from "hung".
    // SIGSTOP freezes every thread of the process, this one included,
    // which is exactly how a stopped worker fails its liveness probes.
    // The RAII joiner half-closes the channel (waking the thread with
    // EOF) and joins it on every exit path *before* `engine` is
    // destroyed, so the thread can never touch a dead engine.
    struct HeartbeatJoiner {
      IpcChannel* hb;
      std::thread thread;
      ~HeartbeatJoiner() {
        hb->ShutdownBoth();
        if (thread.joinable()) thread.join();
      }
    } heartbeat{hb, std::thread([hb, &engine] {
                  std::vector<uint8_t> ping;
                  for (;;) {
                    try {
                      if (!hb->Recv(&ping)) return;
                      WireReader r(ping);
                      if (r.GetU8() != kPing) return;
                      const uint64_t seq = r.GetU64();
                      WireBuffer pong;
                      pong.PutU8(kPong);
                      pong.PutU64(seq);
                      pong.PutU64(engine.events_processed());
                      if (!hb->Send(pong)) return;
                    } catch (const std::exception&) {
                      return;  // torn ping: the coordinator gave up on us
                    }
                  }
                })};
    // Owned backing store for deserialized trajectories: sessions keep
    // pointers into it, so entries must never move (deque).
    std::deque<std::vector<Trajectory>> storage;
    std::vector<uint32_t> global_ids;
    std::unordered_map<uint32_t, uint32_t> local_of;
    std::vector<uint8_t> payload;
    // Transport retries already shipped in an earlier drain reply (the
    // coordinator folds the per-drain delta into its RecoveryStats).
    uint64_t reported_retries = 0;
    while (ch->Recv(&payload)) {
      WireReader r(payload);
      switch (r.GetU8()) {
        case kAdmit: {
          const uint32_t global_id = r.GetU32();
          SessionTuning tuning;
          tuning.recompute_cost_factor = r.GetDouble();
          tuning.retire_at = static_cast<size_t>(r.GetU64());
          tuning.mailbox_capacity = static_cast<size_t>(r.GetU64());
          tuning.mailbox_policy = static_cast<MailboxPolicy>(r.GetU8());
          const uint32_t m = r.GetU32();
          std::vector<Trajectory> trajs(m);
          for (uint32_t i = 0; i < m; ++i) {
            const uint32_t n = r.GetU32();
            trajs[i].positions.resize(n);
            for (uint32_t j = 0; j < n; ++j) {
              trajs[i].positions[j].x = r.GetDouble();
              trajs[i].positions[j].y = r.GetDouble();
            }
          }
          storage.push_back(std::move(trajs));
          std::vector<const Trajectory*> group;
          group.reserve(storage.back().size());
          for (const Trajectory& t : storage.back()) group.push_back(&t);
          const uint32_t local = engine.AdmitSession(std::move(group), tuning);
          if (local != global_ids.size()) {
            throw std::runtime_error("cluster worker: local id out of sync");
          }
          global_ids.push_back(global_id);
          local_of.emplace(global_id, local);
          break;
        }
        case kRetire: {
          const uint32_t global_id = r.GetU32();
          const uint64_t at = r.GetU64();
          const auto it = local_of.find(global_id);
          if (it == local_of.end()) {
            throw std::runtime_error("cluster worker: retire for unknown id");
          }
          engine.RetireSession(it->second, static_cast<size_t>(at));
          break;
        }
        case kDrain: {
          engine.Wait();
          WireBuffer out;
          out.PutU8(kDrainedOk);
          const size_t sessions = engine.session_count();
          out.PutU32(static_cast<uint32_t>(sessions));
          for (uint32_t local = 0; local < sessions; ++local) {
            out.PutU32(global_ids[local]);
            // Streamed (not the pinning by-reference accessors): under a
            // memory budget a spilled session's result decodes into a
            // stack-local, so the drain itself stays O(1) resident.
            engine.WithSessionResult(
                local, [&out](const SessionFinalResult& fr) {
                  WriteMetrics(&out, fr.metrics);
                  out.PutU8(fr.has_result ? 1 : 0);
                  out.PutU32(fr.po);
                  out.PutU64(fr.mailbox_peak);
                  out.PutU64(fr.stall_count);
                  out.PutU64(fr.dropped_count);
                });
          }
          const std::vector<Scheduler::Slot> slots = engine.timeline_slots();
          out.PutU32(static_cast<uint32_t>(slots.size()));
          for (const Scheduler::Slot& slot : slots) {
            out.PutU64(slot.messages);
            out.PutU64(slot.recomputes);
            out.PutDouble(slot.seconds);
          }
          const uint64_t retries = ch->counters().retries;
          out.PutU64(retries - reported_retries);
          reported_retries = retries;
          // Session-store counters (cumulative for this incarnation; the
          // coordinator folds incarnations like slot_base/last_slots).
          const MemoryStats mem = engine.memory_stats();
          out.PutU64(mem.spilled_sessions);
          out.PutU64(mem.rehydrated_sessions);
          out.PutU64(mem.spilled_bytes);
          out.PutU64(mem.peak_resident_bytes);
          if (!ch->Send(out)) return 1;
          break;
        }
        case kShutdown: {
          engine.Shutdown();
          WireBuffer out;
          out.PutU8(kShutdownAck);
          ch->Send(out);
          return 0;
        }
        default:
          throw std::runtime_error("cluster worker: unknown frame type");
      }
    }
    return 0;  // coordinator closed the pipe: clean exit
  } catch (const std::exception& e) {
    WireBuffer out;
    out.PutU8(kWorkerError);
    out.PutString(e.what());
    ch->Send(out);  // best effort; the exit code says it all otherwise
    return 1;
  }
}

std::string ShardError(size_t shard, const std::string& detail) {
  return "mpn cluster: worker for shard " + std::to_string(shard) + " " +
         detail;
}

}  // namespace

ClusterEngine::ClusterEngine(const std::vector<Point>* pois, SpatialIndex tree,
                             const ClusterOptions& options)
    : pois_(pois), tree_(tree), options_(options) {
  MPN_ASSERT(pois_ != nullptr && tree_.valid());
  MPN_ASSERT_MSG(options_.workers >= 1, "cluster needs at least one worker");
  crash_plan_ = CrashPlan::FromEnv();
  fault_plan_ = FaultPlan::FromEnv(options_.workers);
}

ClusterEngine::~ClusterEngine() { TeardownWorkers(); }

void ClusterEngine::RequireStarted() const {
  if (!started_) {
    throw std::logic_error("ClusterEngine: not started (call Start/Run)");
  }
}

void ClusterEngine::RequireServing() const {
  if (stopped_) {
    throw std::logic_error(
        "ClusterEngine: AdmitSession/RetireSession after Shutdown");
  }
  RequireHealthy();
}

void ClusterEngine::RequireHealthy() const {
  if (failed_) {
    throw std::runtime_error(
        "ClusterEngine: a worker failed earlier; the cluster is poisoned "
        "(results of the last successful Wait remain readable)");
  }
}

size_t ClusterEngine::ShardSessionCount(size_t shard) const {
  if (next_id_ <= shard) return 0;
  return (next_id_ - shard - 1) / options_.workers + 1;
}

uint32_t ClusterEngine::AdmitSession(
    const std::vector<const Trajectory*>& group, const SessionTuning& tuning) {
  std::lock_guard<std::mutex> lock(mu_);
  RequireServing();
  MPN_ASSERT(!group.empty());
  const size_t shard = next_id_ % options_.workers;
  if (started_ && workers_[shard].lost) {
    throw std::runtime_error(workers_[shard].lost_reason);
  }
  const uint32_t id = next_id_++;
  WireBuffer frame;
  frame.PutU8(kAdmit);
  frame.PutU32(id);
  frame.PutDouble(tuning.recompute_cost_factor);
  frame.PutU64(static_cast<uint64_t>(tuning.retire_at));
  frame.PutU64(static_cast<uint64_t>(tuning.mailbox_capacity));
  frame.PutU8(static_cast<uint8_t>(tuning.mailbox_policy));
  frame.PutU32(static_cast<uint32_t>(group.size()));
  for (const Trajectory* t : group) {
    MPN_ASSERT(t != nullptr);
    frame.PutU32(static_cast<uint32_t>(t->positions.size()));
    for (const Point& p : t->positions) {
      frame.PutDouble(p.x);
      frame.PutDouble(p.y);
    }
  }
  // Record intent in the snapshot BEFORE the first send: if the worker is
  // already dead, the recovery replay delivers this very frame — a second
  // send would duplicate it.
  SessionState state;
  state.admit_frame = std::move(frame);
  snapshot_.push_back(std::move(state));
  if (started_ && !SendToShard(shard, snapshot_[id].admit_frame)) {
    RecoverShard(shard);  // replay includes the new admit frame
  }
  return id;
}

void ClusterEngine::RetireSession(uint32_t id, size_t at_timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  RequireServing();
  if (id >= next_id_) {
    throw std::out_of_range("ClusterEngine::RetireSession: unknown id");
  }
  const size_t shard = id % options_.workers;
  Worker* w = started_ ? &workers_[shard] : nullptr;
  if (w != nullptr && w->lost) throw std::runtime_error(w->lost_reason);
  // Snapshot first (see AdmitSession).
  snapshot_[id].retire_ats.push_back(static_cast<uint64_t>(at_timestamp));
  if (w == nullptr) return;
  const size_t shard_index = id / options_.workers;
  // Sessions final as of the shard's last drain are restored from the
  // coordinator snapshot, not re-admitted: retiring one is a no-op (its
  // timestamps are all processed already).
  if (shard_index < w->restored_below) return;
  WireBuffer frame;
  frame.PutU8(kRetire);
  frame.PutU32(id);
  frame.PutU64(static_cast<uint64_t>(at_timestamp));
  if (!SendToShard(shard, frame)) {
    RecoverShard(shard);  // replay includes the new retire frame
  }
}

void ClusterEngine::ForkWorker(size_t shard) {
  Worker& w = workers_[shard];
  const TransportTuning& tt = options_.transport;
  IpcChannel parent_end, child_end, hb_parent, hb_child;
  IpcChannel::MakePair(tt.kind, &parent_end, &child_end);
  IpcChannel::MakePair(tt.kind, &hb_parent, &hb_child);
  // Arm the next planned crash for this shard (FIFO per incarnation);
  // CrashPlan::kNoCrash == the engine's "disabled" sentinel. Transport
  // faults batch the same way: this incarnation gets the shard's events
  // up to and including the first fatal one.
  EngineOptions engine_options = options_.engine;
  engine_options.crash_at_timestamp = crash_plan_.Take(shard);
  const std::vector<FaultPlan::Event> faults =
      fault_plan_.TakeIncarnation(shard);
  const pid_t pid = fork();
  if (pid < 0) {
    throw std::runtime_error("mpn cluster: fork failed");
  }
  if (pid == 0) {
    // Worker process. Drop every coordinator-side fd so a dead sibling
    // (or a closing coordinator) reliably surfaces as EOF, then serve.
    // Faults arm on the worker's end of the data channel: its frame-op
    // sequence (admit receives, drain receive, reply send, ...) is
    // deterministic because the serving loop is single-threaded.
    // Worker-side channels stay deadline-free: a slow coordinator must
    // never make a worker give up (see TransportTuning::io_deadline_ms).
    parent_end.Close();
    hb_parent.Close();
    for (Worker& other : workers_) {
      other.channel.Close();
      other.heartbeat.Close();
    }
    for (const FaultPlan::Event& ev : faults) {
      child_end.ArmFault(ev.frame, ev.kind);
    }
    const int code =
        WorkerMain(&child_end, &hb_child, pois_, tree_, engine_options);
    child_end.Close();
    hb_child.Close();
    // _Exit: no atexit handlers, no static destructors, no flushing of
    // stdio buffers inherited from the coordinator.
    std::_Exit(code);
  }
  child_end.Close();
  hb_child.Close();
  w.pid = pid;
  w.channel = std::move(parent_end);
  w.channel.set_io_deadline_ms(tt.io_deadline_ms);
  w.heartbeat = std::move(hb_parent);
  w.heartbeat.set_io_deadline_ms(tt.heartbeat_timeout_ms);
  w.ping_seq = 0;
  w.last_progress = 0;
  w.reaped = false;
}

bool ClusterEngine::ReplayShardSnapshot(size_t shard, bool count_stats) {
  Worker& w = workers_[shard];
  const size_t shard_sessions = ShardSessionCount(shard);
  if (count_stats) stats_.sessions_restored += w.restored_below;
  for (size_t k = w.restored_below; k < shard_sessions; ++k) {
    const uint32_t id =
        static_cast<uint32_t>(shard + k * options_.workers);
    const SessionState& state = snapshot_[id];
    // Recorded retirements ride INSIDE the admit frame (folded into the
    // tuning's retire_at, which RequestRetire min-merges with anyway): a
    // worker's engine starts advancing a session the moment it is
    // admitted, so a separate kRetire frame behind the admit could lose
    // the race against the session finishing — the retirement would be a
    // no-op and the digest would diverge from the single-process run.
    if (state.retire_ats.empty()) {
      if (!SendToShard(shard, state.admit_frame)) return false;
    } else {
      WireBuffer patched = state.admit_frame;
      uint64_t at = ReadAdmitRetireAt(patched);
      for (const uint64_t r : state.retire_ats) at = std::min(at, r);
      patched.PatchU64(kAdmitRetireAtOffset, at);
      if (!SendToShard(shard, patched)) return false;
    }
    if (count_stats) {
      ++stats_.sessions_readmitted;
      ++stats_.frames_replayed;
    }
  }
  return true;
}

bool ClusterEngine::SendToShard(size_t shard, const WireBuffer& frame) {
  Worker& w = workers_[shard];
  const IoStatus st =
      w.channel.SendFrame(frame, options_.transport.io_deadline_ms);
  if (st == IoStatus::kOk) return true;
  if (st == IoStatus::kDeadline) {
    // The worker stopped draining its pipe within the deadline: count
    // the expiry, kill it (the stream is no longer trustworthy) and let
    // the caller run the normal recovery path.
    ++stats_.deadline_hits;
    if (w.pid > 0 && !w.reaped) kill(w.pid, SIGKILL);
  }
  if (!w.channel.last_error().empty()) {
    w.last_io_error = w.channel.last_error();
  }
  return false;
}

bool ClusterEngine::ProbeWorker(size_t shard) {
  Worker& w = workers_[shard];
  if (!w.heartbeat.valid()) return false;
  const double timeout = options_.transport.heartbeat_timeout_ms;
  try {
    WireBuffer ping;
    ping.PutU8(kPing);
    ping.PutU64(++w.ping_seq);
    if (w.heartbeat.SendFrame(ping, timeout) != IoStatus::kOk) return false;
    std::vector<uint8_t> payload;
    for (;;) {
      if (w.heartbeat.RecvFrame(&payload, timeout) != IoStatus::kOk) {
        return false;
      }
      WireReader r(payload);
      if (r.GetU8() != kPong) return false;
      const uint64_t seq = r.GetU64();
      const uint64_t progress = r.GetU64();
      if (seq == w.ping_seq) {
        w.last_progress = progress;
        return true;
      }
      // A stale pong answering a probe that already timed out: drain it
      // and keep waiting for ours.
    }
  } catch (const std::exception&) {
    return false;  // a torn pong is as good as no pong
  }
}

IoStatus ClusterEngine::RecvReplySliced(size_t shard,
                                        std::vector<uint8_t>* payload) {
  Worker& w = workers_[shard];
  const TransportTuning& tt = options_.transport;
  if (!tt.heartbeats || !w.heartbeat.valid()) {
    // Pre-hardening behaviour: block until the reply or EOF. A hung
    // worker blocks forever — that is what heartbeats are for.
    return w.channel.RecvFrame(payload, 0);
  }
  size_t misses = 0;
  uint64_t progress_mark = w.last_progress;
  Timer since_progress;
  for (;;) {
    const IoStatus st =
        w.channel.RecvFrame(payload, tt.heartbeat_interval_ms);
    if (st != IoStatus::kDeadline) return st;
    // The slice elapsed without a reply. Distinguish "busy recomputing"
    // (slow is fine, the pong proves life) from "hung" (SIGSTOPped or
    // wedged: pings go unanswered until the miss budget declares it).
    if (ProbeWorker(shard)) {
      misses = 0;
      if (w.last_progress != progress_mark) {
        progress_mark = w.last_progress;
        since_progress.Reset();
      }
    } else {
      ++stats_.heartbeat_misses;
      if (++misses >= tt.heartbeat_miss_budget) {
        w.last_io_error = "heartbeat miss budget exhausted";
        if (w.pid > 0 && !w.reaped) kill(w.pid, SIGKILL);
        return IoStatus::kClosed;
      }
    }
    if (tt.drain_deadline_ms > 0 &&
        since_progress.ElapsedMillis() > tt.drain_deadline_ms) {
      ++stats_.deadline_hits;
      w.last_io_error = "drain deadline expired without progress";
      if (w.pid > 0 && !w.reaped) kill(w.pid, SIGKILL);
      return IoStatus::kClosed;
    }
  }
}

void ClusterEngine::HarvestChannelCounters(Worker* w) {
  if (w->channel.valid()) stats_.retries += w->channel.counters().retries;
  if (w->heartbeat.valid()) {
    stats_.retries += w->heartbeat.counters().retries;
  }
}

void ClusterEngine::MarkShardLost(size_t shard) {
  Worker& w = workers_[shard];
  std::string ids;
  const size_t shard_sessions = ShardSessionCount(shard);
  for (size_t k = w.drained_through; k < shard_sessions; ++k) {
    if (!ids.empty()) ids += ", ";
    ids += std::to_string(shard + k * options_.workers);
  }
  w.lost = true;
  w.lost_reason = ShardError(
      shard, "lost after " + std::to_string(w.restarts) +
                 " restart(s): restart budget exhausted; groups lost: [" +
                 (ids.empty() ? std::string("none") : ids) + "]" +
                 (w.last_io_error.empty()
                      ? std::string()
                      : "; last transport error: " + w.last_io_error));
  ++stats_.shards_lost;
  throw std::runtime_error(w.lost_reason);
}

void ClusterEngine::RecoverShard(size_t shard) {
  Timer timer;
  for (;;) {
    Worker& w = workers_[shard];
    // The worker may be a zombie (crashed) or alive-but-wedged (its engine
    // deadlocked would also land here via a test kill); SIGKILL is
    // idempotent either way, and closing the channel first guarantees the
    // blocking reap cannot hang.
    if (w.pid > 0 && !w.reaped) kill(w.pid, SIGKILL);
    if (!w.channel.last_error().empty()) {
      w.last_io_error = w.channel.last_error();
    }
    HarvestChannelCounters(&w);
    w.channel.Close();
    w.heartbeat.Close();
    Reap(shard);
    const RecoveryOptions& recovery = options_.recovery;
    if (recovery.max_restarts == 0) {
      // Pre-elastic fail-stop: poison the cluster instead of recovering.
      failed_ = true;
      stats_.recovery_seconds += timer.ElapsedSeconds();
      throw std::runtime_error(ShardError(
          shard, "exited unexpectedly (recovery disabled)" +
                     (w.last_io_error.empty()
                          ? std::string()
                          : "; last transport error: " + w.last_io_error)));
    }
    if (w.restarts >= recovery.max_restarts) {
      stats_.recovery_seconds += timer.ElapsedSeconds();
      MarkShardLost(shard);
    }
    ++w.restarts;
    ++stats_.restarts;
    if (recovery.backoff_initial_ms > 0.0) {
      double ms = recovery.backoff_initial_ms;
      for (size_t i = 1; i < w.restarts && ms < recovery.backoff_max_ms; ++i) {
        ms *= 2.0;
      }
      ms = std::min(ms, recovery.backoff_max_ms);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    }
    // Everything the dead incarnation did since its last successful drain
    // is discarded; finals below drained_through keep their coordinator-
    // held results and their slot contribution moves into slot_base.
    w.restored_below = w.drained_through;
    w.slot_base = w.last_slots;
    // Same fold for the session-store counters: sums accumulate across
    // incarnations, the peak is the max any incarnation reached.
    w.mem_base.spilled_sessions += w.last_mem.spilled_sessions;
    w.mem_base.rehydrated_sessions += w.last_mem.rehydrated_sessions;
    w.mem_base.spilled_bytes += w.last_mem.spilled_bytes;
    w.mem_base.peak_resident_bytes = std::max(
        w.mem_base.peak_resident_bytes, w.last_mem.peak_resident_bytes);
    w.last_mem = MemoryStats();
    ForkWorker(shard);
    if (ReplayShardSnapshot(shard, /*count_stats=*/true)) break;
    // The replacement died mid-replay (e.g. a crash plan armed at t=0 on a
    // replayed session): charge another restart attempt.
  }
  stats_.recovery_seconds += timer.ElapsedSeconds();
}

void ClusterEngine::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    throw std::logic_error("ClusterEngine::Run/Start may be called once");
  }
  started_ = true;
  workers_.resize(options_.workers);
  for (size_t shard = 0; shard < options_.workers; ++shard) {
    ForkWorker(shard);
  }
  // Initial delivery shares the recovery replay path (restored_below is 0,
  // so the full snapshot goes out); stats stay zero for it — only real
  // recoveries count. A worker dying this early (e.g. a crash plan armed
  // at t=0) is recovered like any other death.
  for (size_t shard = 0; shard < options_.workers; ++shard) {
    if (!ReplayShardSnapshot(shard, /*count_stats=*/false)) {
      RecoverShard(shard);  // loops until replayed, lost, or poisoned
    }
  }
}

bool ClusterEngine::SendDrainRecovering(size_t shard) {
  WireBuffer drain;
  drain.PutU8(kDrain);
  for (;;) {
    if (workers_[shard].lost) return false;
    if (SendToShard(shard, drain)) return true;
    try {
      RecoverShard(shard);
    } catch (const std::runtime_error&) {
      if (failed_) throw;  // poison latch: not a graceful degradation
      return false;        // shard lost; reason stored in lost_reason
    }
  }
}

bool ClusterEngine::RecvDrainRecovering(size_t shard) {
  for (;;) {
    if (workers_[shard].lost) return false;
    std::vector<uint8_t> payload;
    bool dead = false;
    try {
      dead = RecvReplySliced(shard, &payload) != IoStatus::kOk;
    } catch (const FrameError& e) {
      // Frame integrity failure (bad magic/version, CRC mismatch, torn
      // frame, mid-frame wedge): the stream is no longer trustworthy.
      // Count it and restart the worker — same path as a death.
      ++stats_.checksum_failures;
      workers_[shard].last_io_error = e.what();
      dead = true;
    }
    if (!dead && !payload.empty() && payload[0] == kWorkerError) {
      // The worker hit an internal error and exited; treat like a death —
      // deterministic errors (e.g. a failing correctness check) recur on
      // replay and exhaust the budget, transient ones recover.
      dead = true;
    }
    if (dead) {
      try {
        RecoverShard(shard);
      } catch (const std::runtime_error&) {
        if (failed_) throw;
        return false;
      }
      if (!SendDrainRecovering(shard)) return false;
      continue;  // replacement is recomputing; await its drain reply
    }
    ParseDrainReply(shard, payload);
    return true;
  }
}

void ClusterEngine::ParseDrainReply(size_t shard,
                                    const std::vector<uint8_t>& payload) {
  Worker& w = workers_[shard];
  WireReader r(payload);
  if (r.GetU8() != kDrainedOk) {
    failed_ = true;
    throw std::runtime_error(ShardError(shard, "sent an invalid reply"));
  }
  const size_t shard_sessions = ShardSessionCount(shard);
  const uint32_t sessions = r.GetU32();
  if (sessions != shard_sessions - w.restored_below) {
    failed_ = true;
    throw std::runtime_error(ShardError(shard, "routed ids out of sync"));
  }
  for (uint32_t local = 0; local < sessions; ++local) {
    const uint32_t global_id = r.GetU32();
    const uint32_t expected = static_cast<uint32_t>(
        shard + (w.restored_below + local) * options_.workers);
    if (global_id != expected || global_id >= results_.size()) {
      failed_ = true;
      throw std::runtime_error(ShardError(shard, "routed ids out of sync"));
    }
    SessionResult& res = results_[global_id];
    res.metrics = ReadMetrics(&r);
    res.has_result = r.GetU8() != 0;
    res.po = r.GetU32();
    res.mailbox_peak = r.GetU64();
    res.stalls = r.GetU64();
    res.dropped = r.GetU64();
  }
  // Effective slot totals = dead incarnations' drained history + this
  // incarnation's recomputed timeline (commutative per-slot sums, so the
  // split is invisible to the folded round stats).
  const uint32_t slot_count = r.GetU32();
  std::vector<SlotTotals> slots = w.slot_base;
  if (slots.size() < slot_count) slots.resize(slot_count);
  for (uint32_t t = 0; t < slot_count; ++t) {
    slots[t].messages += r.GetU64();
    slots[t].recomputes += r.GetU64();
    slots[t].seconds += r.GetDouble();
  }
  w.last_slots = std::move(slots);
  // The worker ships its transport-retry delta with every drain so the
  // coordinator's RecoveryStats see both ends of each channel.
  stats_.retries += r.GetU64();
  // Session-store counters, cumulative for the current incarnation (a
  // replacement restarts from zero; RecoverShard folds the dead
  // incarnation's last report into mem_base).
  w.last_mem.spilled_sessions = r.GetU64();
  w.last_mem.rehydrated_sessions = r.GetU64();
  w.last_mem.spilled_bytes = r.GetU64();
  w.last_mem.peak_resident_bytes = r.GetU64();
  // Every session admitted so far is final now (Engine::Wait drains all).
  w.drained_through = shard_sessions;
}

void ClusterEngine::Wait() {
  std::lock_guard<std::mutex> lock(mu_);
  RequireStarted();
  RequireHealthy();
  if (stopped_) return;  // results were frozen by Shutdown
  results_.resize(next_id_);

  // Phase 1: fan the drain request out to every healthy shard so workers
  // recompute concurrently; phase 2 collects replies (and recovers +
  // re-drains through any deaths). Shards that exhaust their budget are
  // collected, not fatal — healthy shards still refresh their results.
  std::vector<bool> draining(workers_.size(), false);
  for (size_t shard = 0; shard < workers_.size(); ++shard) {
    draining[shard] = SendDrainRecovering(shard);
  }
  for (size_t shard = 0; shard < workers_.size(); ++shard) {
    if (draining[shard]) RecvDrainRecovering(shard);
  }

  // Fold exactly like Engine::RebuildRoundStats: slot totals in timestamp
  // order (bit-identical counter sequences for any worker count), then the
  // per-session mailbox marks in global session order. Lost shards
  // contribute their last drained history — consistent with their results_
  // entries staying frozen at the last successful drain.
  std::vector<SlotTotals> slots;
  for (const Worker& w : workers_) {
    if (slots.size() < w.last_slots.size()) slots.resize(w.last_slots.size());
    for (size_t t = 0; t < w.last_slots.size(); ++t) {
      slots[t].messages += w.last_slots[t].messages;
      slots[t].recomputes += w.last_slots[t].recomputes;
      slots[t].seconds += w.last_slots[t].seconds;
    }
  }
  EngineRoundStats stats;
  for (const SlotTotals& slot : slots) {
    stats.messages_per_round.Add(static_cast<double>(slot.messages));
    stats.recomputes_per_round.Add(static_cast<double>(slot.recomputes));
    stats.round_seconds.Add(slot.seconds);
    ++stats.rounds;
  }
  for (const SessionResult& res : results_) {
    stats.mailbox_peak_per_session.Add(static_cast<double>(res.mailbox_peak));
    stats.mailbox_stalls_per_session.Add(static_cast<double>(res.stalls));
  }
  round_stats_ = stats;

  // Graceful degradation: report every lost shard (this drain's and
  // earlier ones') after the healthy shards' results landed.
  std::string lost;
  for (const Worker& w : workers_) {
    if (!w.lost) continue;
    if (!lost.empty()) lost += "; ";
    lost += w.lost_reason;
  }
  if (!lost.empty()) throw std::runtime_error(lost);
}

void ClusterEngine::Shutdown() {
  // A degraded Wait (lost shards) still stops the healthy workers
  // gracefully below, then re-throws; a poisoned cluster propagates
  // immediately (the protocol state is not trustworthy).
  std::exception_ptr degraded;
  try {
    Wait();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (failed_) throw;
    }
    degraded = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopped_) {
      stopped_ = true;
      WireBuffer bye;
      bye.PutU8(kShutdown);
      // Ack waits are bounded by the liveness window: a worker hung
      // between its drain reply and the shutdown ack must not wedge
      // Shutdown (the SIGKILL-on-timeout below loses nothing — every
      // result already crossed).
      const TransportTuning& tt = options_.transport;
      const double ack_deadline_ms =
          tt.heartbeats ? (tt.heartbeat_interval_ms +
                           tt.heartbeat_timeout_ms) *
                              static_cast<double>(tt.heartbeat_miss_budget)
                        : tt.io_deadline_ms;
      for (size_t shard = 0; shard < workers_.size(); ++shard) {
        Worker& w = workers_[shard];
        if (w.lost) continue;
        // A worker dying between its drain reply and the shutdown ack
        // loses nothing — every result already crossed — so transport
        // failures here are tolerated, not recovered.
        if (SendToShard(shard, bye)) {
          std::vector<uint8_t> payload;
          bool acked = false;
          try {
            const IoStatus st = w.channel.RecvFrame(&payload, ack_deadline_ms);
            if (st == IoStatus::kDeadline) {
              ++stats_.deadline_hits;
              if (w.pid > 0 && !w.reaped) kill(w.pid, SIGKILL);
            }
            acked = st == IoStatus::kOk;
          } catch (const FrameError&) {
            ++stats_.checksum_failures;  // torn ack: tolerated
          }
          if (acked) {
            WireReader r(payload);
            const uint8_t type = r.GetU8();
            // kWorkerError here means an injected fault (or a real one)
            // hit the shutdown exchange itself; the worker is exiting
            // either way and its results already crossed — tolerated.
            if (type != kShutdownAck && type != kWorkerError) {
              failed_ = true;
              throw std::runtime_error(
                  ShardError(shard, "sent an invalid reply"));
            }
          }
        }
        HarvestChannelCounters(&w);
        w.channel.Close();
        w.heartbeat.Close();
        Reap(shard);
      }
    }
  }
  if (degraded) std::rethrow_exception(degraded);
}

void ClusterEngine::Run() {
  Start();
  Shutdown();
}

const ClusterEngine::SessionResult& ClusterEngine::ResultChecked(
    uint32_t id) const {
  if (id >= results_.size()) {
    throw std::out_of_range(
        "ClusterEngine: unknown session id (results are valid after Wait)");
  }
  return results_[id];
}

const SimMetrics& ClusterEngine::session_metrics(uint32_t id) const {
  return ResultChecked(id).metrics;
}

uint32_t ClusterEngine::session_po(uint32_t id) const {
  return ResultChecked(id).po;
}

bool ClusterEngine::session_has_result(uint32_t id) const {
  return ResultChecked(id).has_result;
}

size_t ClusterEngine::session_mailbox_peak(uint32_t id) const {
  return static_cast<size_t>(ResultChecked(id).mailbox_peak);
}

size_t ClusterEngine::session_stall_count(uint32_t id) const {
  return static_cast<size_t>(ResultChecked(id).stalls);
}

size_t ClusterEngine::session_dropped_count(uint32_t id) const {
  return static_cast<size_t>(ResultChecked(id).dropped);
}

SimMetrics ClusterEngine::TotalMetrics() const {
  SimMetrics total;
  for (const SessionResult& res : results_) total.Merge(res.metrics);
  return total;
}

uint64_t ClusterEngine::ResultDigest() const {
  Fnv1a fnv;
  for (const SessionResult& res : results_) {
    AddSessionResultToDigest(&fnv, res.metrics, res.has_result, res.po);
  }
  return fnv.hash;
}

ClusterEngine::RecoveryStats ClusterEngine::recovery_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RecoveryStats s = stats_;
  // stats_ holds the counters of channels already closed (harvested just
  // before each Close); live channels contribute on the fly.
  for (const Worker& w : workers_) {
    if (w.channel.valid()) s.retries += w.channel.counters().retries;
    if (w.heartbeat.valid()) s.retries += w.heartbeat.counters().retries;
  }
  return s;
}

MemoryStats ClusterEngine::memory_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  MemoryStats total;
  for (const Worker& w : workers_) {
    total.spilled_sessions +=
        w.mem_base.spilled_sessions + w.last_mem.spilled_sessions;
    total.rehydrated_sessions +=
        w.mem_base.rehydrated_sessions + w.last_mem.rehydrated_sessions;
    total.spilled_bytes += w.mem_base.spilled_bytes + w.last_mem.spilled_bytes;
    total.peak_resident_bytes += std::max(w.mem_base.peak_resident_bytes,
                                          w.last_mem.peak_resident_bytes);
  }
  return total;
}

bool ClusterEngine::shard_lost(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  MPN_ASSERT(shard < options_.workers);
  return started_ && workers_[shard].lost;
}

void ClusterEngine::KillWorkerForTest(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  RequireStarted();
  MPN_ASSERT(shard < workers_.size());
  if (!workers_[shard].reaped && workers_[shard].pid > 0) {
    kill(workers_[shard].pid, SIGKILL);
  }
}

void ClusterEngine::StopWorkerForTest(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  RequireStarted();
  MPN_ASSERT(shard < workers_.size());
  if (!workers_[shard].reaped && workers_[shard].pid > 0) {
    kill(workers_[shard].pid, SIGSTOP);
  }
}

void ClusterEngine::InjectFaultAt(size_t shard, size_t frame,
                                  FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    throw std::logic_error(
        "ClusterEngine::InjectFaultAt must be called before Start");
  }
  MPN_ASSERT(shard < options_.workers);
  FaultPlan::Event event;
  event.shard = shard;
  event.frame = frame;
  event.kind = kind;
  fault_plan_.events.push_back(event);
}

void ClusterEngine::KillWorkerAt(size_t shard, size_t timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    throw std::logic_error(
        "ClusterEngine::KillWorkerAt must be called before Start");
  }
  MPN_ASSERT(shard < options_.workers);
  CrashPlan::Event event;
  event.shard = shard;
  event.timestamp = timestamp;
  crash_plan_.events.push_back(event);
}

void ClusterEngine::Reap(size_t shard) {
  Worker& w = workers_[shard];
  if (w.reaped || w.pid <= 0) return;
  int status = 0;
  for (;;) {
    const pid_t r = waitpid(w.pid, &status, 0);
    if (r == w.pid) break;
    if (r < 0 && errno == EINTR) continue;  // interrupted: retry
    break;  // ECHILD: collected elsewhere (or pid gone) — nothing to do
  }
  w.reaped = true;
}

void ClusterEngine::TeardownWorkers() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Worker& w : workers_) {
    // SIGKILL unconditionally: this is the abnormal path (Shutdown is
    // the graceful one), and a SIGSTOPped worker would never notice the
    // channel EOF — the blocking reap below must not hang on it.
    if (!w.reaped && w.pid > 0) kill(w.pid, SIGKILL);
    w.channel.Close();
    w.heartbeat.Close();
  }
  for (size_t shard = 0; shard < workers_.size(); ++shard) {
    Reap(shard);
  }
}

}  // namespace mpn
