// Versioned wire serialization for per-session engine state.
//
// Two producers share this codec:
//
//   - The session store (engine/session_store.h) spills cold sessions: a
//     live GroupSession::State or a compacted SessionFinalResult is encoded
//     behind a one-byte version + one-byte kind header, and decoding is a
//     bit-exact inverse — which is what makes spilling digest-neutral.
//   - The cluster drain protocol (engine/cluster.cc) ships SimMetrics per
//     session; WriteMetrics/ReadMetrics moved here so both layers keep one
//     field order. That order predates this header and must stay stable
//     (same forked binary on both ends, but the baseline digests fold the
//     replayed values).
//
// Doubles travel as IEEE-754 bit patterns (WireBuffer::PutDouble), tile
// regions through the canonical mpn/compress bitmap encoding — Encode is
// idempotent on decoded regions, so a spill round trip reproduces the
// client's region representation exactly. All readers are bounds-checked
// and throw FrameError ("mpn ipc: ...") on truncated or malformed input.
#pragma once

#include <cstdint>

#include "engine/group_session.h"
#include "engine/ipc.h"

namespace mpn {

/// Bump when the snapshot layout changes; decoders reject other versions.
inline constexpr uint8_t kSessionSnapshotVersion = 1;

/// What a session snapshot holds (second header byte).
enum class SnapshotKind : uint8_t { kLive = 0, kFinal = 1 };

/// Serializes every SimMetrics field the digest and the result accessors
/// consume. The double (server_seconds) travels as its bit pattern, so the
/// round-trip is byte-exact.
void WriteMetrics(WireBuffer* out, const SimMetrics& m);
SimMetrics ReadMetrics(WireReader* r);

/// SafeRegion codec: circles as three raw doubles, tile regions through
/// the canonical mpn/compress bitmap encoding (per-level bounding window +
/// row-major bitset). Bit-exact round trip; ReadSafeRegion validates the
/// window dimensions against the shipped bitset and throws FrameError on
/// mismatch.
void WriteSafeRegion(WireBuffer* out, const SafeRegion& region);
SafeRegion ReadSafeRegion(WireReader* r);

/// Whole-session snapshots, version + kind header included.
void EncodeLiveSession(const GroupSession::State& state, WireBuffer* out);
void EncodeFinalSession(const SessionFinalResult& result, WireBuffer* out);

/// Reads and validates the two-byte header; the caller dispatches on the
/// returned kind. Throws FrameError on an unsupported version or kind.
SnapshotKind ReadSnapshotHeader(WireReader* r);

/// Payload decoders (call after ReadSnapshotHeader).
GroupSession::State DecodeLiveSession(WireReader* r);
SessionFinalResult DecodeFinalSession(WireReader* r);

}  // namespace mpn
