// Byte transport under the cluster's frame layer (engine/ipc.h).
//
// One concrete class covers both backends: a Transport owns a connected
// stream-socket file descriptor — from socketpair(2) (AF_UNIX) or from a
// loopback-TCP accept/connect pair — switched to non-blocking mode and
// driven through poll(2). Both backends are created *pre-fork* by
// MakePair, so they cross fork(2) identically and the cluster layer never
// cares which one it got; the seam exists so the follow-on multi-machine
// step only has to add a new pair factory.
//
// Every byte operation takes a deadline: partial reads/writes, EINTR and
// EAGAIN/EWOULDBLOCK are retried internally (counted in
// TransportCounters), and a peer that stops moving bytes surfaces as
// IoStatus::kDeadline instead of hanging the caller forever.
//
// Deterministic fault injection lives here too: the frame layer announces
// each frame operation via BeginFrameOp, and a fault armed for that index
// (FaultPlan, engine/ipc.h) fires exactly then — short I/O and EINTR
// storms shape the byte loops below, while corruption/truncation/stall/
// reset are executed by the frame layer, which knows where payload bytes
// and frame boundaries are.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mpn {

/// Which pair factory produced the connected endpoints.
enum class TransportKind : uint8_t {
  kSocketPair = 0,  ///< AF_UNIX socketpair(2) — the original backend.
  kTcpLoopback = 1  ///< accept/connect over 127.0.0.1 with TCP_NODELAY.
};

/// Result of a deadline-bounded byte or frame operation.
enum class IoStatus : uint8_t {
  kOk = 0,       ///< All requested bytes moved.
  kClosed = 1,   ///< Peer gone: EOF, EPIPE, ECONNRESET or local close.
  kDeadline = 2  ///< Deadline expired before the operation completed.
};

/// Deterministic transport fault kinds (FaultPlan, engine/ipc.h).
enum class FaultKind : uint8_t {
  kShortIo = 0,     ///< Byte ops capped at 1 byte each for one frame op.
  kEintrStorm = 1,  ///< A burst of simulated EINTR returns before progress.
  kCorrupt = 2,     ///< One payload byte flipped after the CRC is computed.
  kTruncate = 3,    ///< Frame cut mid-payload, then the stream is closed.
  kStall = 4,       ///< raise(SIGSTOP): the process hangs without dying.
  kReset = 5        ///< Abortive close (RST on TCP) at a frame boundary.
};

/// Human-readable fault name ("corrupt", "stall", ...), for logs/specs.
const char* FaultKindName(FaultKind kind);

/// Parses a FaultKindName back into the enum; throws std::runtime_error
/// on an unknown name.
FaultKind ParseFaultKind(const std::string& name);

/// Cumulative per-endpoint I/O health counters.
struct TransportCounters {
  /// EINTR returns (real or injected) plus EAGAIN poll round-trips.
  uint64_t retries = 0;
  /// Syscalls that moved fewer bytes than requested (partial I/O).
  uint64_t partial_ops = 0;
  /// Armed faults that actually fired on this endpoint.
  uint64_t faults_injected = 0;
};

/// One non-blocking stream endpoint. Owns the fd. Movable, not copyable.
class Transport {
 public:
  Transport() = default;
  /// Takes ownership of `fd` and switches it to O_NONBLOCK.
  explicit Transport(int fd);
  ~Transport() { Close(); }

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  Transport(Transport&& other) noexcept;
  Transport& operator=(Transport&& other) noexcept;

  /// Creates a connected pair of the given kind. Throws
  /// std::runtime_error when the underlying syscalls fail.
  static void MakePair(TransportKind kind, Transport* a, Transport* b);

  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Half-closes both directions without releasing the fd: a peer (or a
  /// sibling thread of this process) blocked in poll() wakes with EOF.
  void ShutdownBoth();

  /// Abortive close for the kReset fault: on TCP, SO_LINGER(0) turns the
  /// close into an RST so the peer may see ECONNRESET instead of a clean
  /// EOF. On AF_UNIX it degrades to a plain close.
  void Abort();

  /// Sends exactly `n` bytes. `deadline_ms <= 0` waits indefinitely.
  /// Returns kClosed when the peer is gone (never raises SIGPIPE),
  /// kDeadline when the deadline expires mid-operation. Throws
  /// std::runtime_error on unexpected socket errors.
  IoStatus SendBytes(const uint8_t* data, size_t n, double deadline_ms);

  /// Receives exactly `n` bytes. On EOF/reset returns kClosed;
  /// `*received` (optional) reports how many bytes had arrived, so the
  /// frame layer can tell a clean between-frames EOF (0) from a torn
  /// frame (> 0).
  IoStatus RecvBytes(uint8_t* data, size_t n, double deadline_ms,
                     size_t* received = nullptr);

  /// Arms `kind` to fire on this endpoint's `frame`-th frame operation
  /// (0-based, sends and receives share one counter). Multiple faults on
  /// distinct indices may be armed; arming order does not matter.
  void ArmFault(size_t frame, FaultKind kind);

  /// Called by the frame layer at the start of every frame operation.
  /// Clears byte-level shaping from the previous frame op, advances the
  /// frame-op counter and, when a fault is armed for this index, consumes
  /// it: kShortIo / kEintrStorm are applied to this frame op's byte loops
  /// internally, every kind is counted in counters().faults_injected, and
  /// the kind is returned via `*kind` (return value true) so the frame
  /// layer can execute the frame-level kinds. Returns false when no fault
  /// fires here.
  bool BeginFrameOp(FaultKind* kind);

  const TransportCounters& counters() const { return counters_; }

  /// strerror text of the last peer-gone or deadline condition ("" when
  /// none) — surfaced into per-shard error messages by the cluster layer.
  const std::string& last_error() const { return last_error_; }

 private:
  struct ArmedFault {
    size_t frame = 0;
    FaultKind kind = FaultKind::kShortIo;
  };

  /// poll()s for the given events until ready, EOF/error, or deadline.
  IoStatus WaitReady(short events, const double* deadline_left_ms);

  int fd_ = -1;
  size_t frame_ops_ = 0;
  std::vector<ArmedFault> armed_;
  bool short_io_ = false;   ///< Active for the current frame op only.
  int eintr_pending_ = 0;   ///< Simulated EINTRs left in the storm.
  TransportCounters counters_;
  std::string last_error_;
};

}  // namespace mpn
