// Length-prefixed binary framing over socketpair(2) pipes — the transport
// of the multi-process cluster layer (engine/cluster.h).
//
// The cluster needs no network: the coordinator forks its workers, so a
// pair of connected AF_UNIX stream sockets per worker is enough, and the
// kernel gives us exactly the failure signal the robustness story needs —
// when a worker dies, its end of the pair closes and the coordinator's
// next Recv returns EOF (and Send fails) instead of hanging.
//
// Wire format: every frame is a 32-bit little-endian payload length
// followed by the payload bytes. Payloads are built with WireBuffer and
// decoded with WireReader: fixed little-endian integers, doubles as their
// IEEE-754 bit pattern — byte-exact round-trips, which the cluster's
// bit-identical digest aggregation depends on. WireReader throws
// std::runtime_error on a truncated or oversized frame; a malformed peer
// is an error, never undefined behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mpn {

/// Serialization buffer for one frame payload.
class WireBuffer {
 public:
  void PutU8(uint8_t v) { data_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// IEEE-754 bit pattern via the u64 path: byte-exact round-trip.
  void PutDouble(double v);
  void PutString(const std::string& s);

  const std::vector<uint8_t>& data() const { return data_; }
  size_t size() const { return data_.size(); }

 private:
  std::vector<uint8_t> data_;
};

/// Bounds-checked decoder over a received payload. Get* throw
/// std::runtime_error past the end (malformed frame).
class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  double GetDouble();
  std::string GetString();

  bool AtEnd() const { return off_ == size_; }

 private:
  void Need(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
};

/// Deterministic crash-injection plan for the cluster's recovery paths
/// (engine/cluster.h). Each event kills one worker incarnation the moment
/// any of its sessions is about to advance to the given *virtual*
/// timestamp — deterministic in virtual time, so tests, the lifecycle
/// fuzzer and the bench recovery table can kill workers mid-drain
/// reproducibly. Events are consumed FIFO per shard: the k-th event of a
/// shard arms the k-th incarnation forked for it (initial worker first,
/// then each replacement), so a plan with several events for one shard
/// exercises repeated restarts and, past the retry budget, graceful
/// degradation.
struct CrashPlan {
  struct Event {
    size_t shard = 0;
    size_t timestamp = 0;
  };
  std::vector<Event> events;

  bool empty() const { return events.empty(); }

  /// Pops the next planned crash timestamp for `shard`; returns
  /// kNoCrash (SIZE_MAX, the "disabled" sentinel the engine uses) when
  /// none is planned.
  size_t Take(size_t shard);

  /// Parses "shard:timestamp[,shard:timestamp...]" (spaces allowed around
  /// tokens). Throws std::runtime_error on a malformed spec — a typo in a
  /// crash plan must fail loudly, not silently disarm the fuzz run.
  static CrashPlan Parse(const std::string& spec);

  /// Reads the MPN_CRASH_PLAN environment variable (empty plan when unset
  /// or empty).
  static CrashPlan FromEnv();

  /// The "no crash planned" sentinel returned by Take.
  static const size_t kNoCrash;
};

/// One endpoint of a socketpair, speaking length-prefixed frames. Owns the
/// file descriptor.
class IpcChannel {
 public:
  IpcChannel() = default;
  /// Takes ownership of `fd`.
  explicit IpcChannel(int fd) : fd_(fd) {}
  ~IpcChannel() { Close(); }

  IpcChannel(const IpcChannel&) = delete;
  IpcChannel& operator=(const IpcChannel&) = delete;
  IpcChannel(IpcChannel&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  IpcChannel& operator=(IpcChannel&& other) noexcept;

  /// Creates a connected AF_UNIX stream socket pair. Throws
  /// std::runtime_error when socketpair(2) fails.
  static void MakePair(IpcChannel* a, IpcChannel* b);

  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Sends one frame. Returns false when the peer is gone (EPIPE /
  /// connection reset / closed channel) — never raises SIGPIPE. Throws
  /// std::runtime_error on unexpected socket errors.
  bool Send(const WireBuffer& frame);

  /// Receives one frame into `payload`. Returns false on EOF (peer exited
  /// or closed). Throws std::runtime_error on unexpected socket errors or
  /// a malformed length prefix.
  bool Recv(std::vector<uint8_t>* payload);

 private:
  int fd_ = -1;
};

}  // namespace mpn
