// Checksummed binary framing over the cluster's byte transport
// (engine/transport.h) — the protocol of the multi-process cluster layer
// (engine/cluster.h).
//
// The cluster needs no network: the coordinator forks its workers, so a
// connected stream pair per worker (AF_UNIX socketpair or loopback TCP)
// is enough, and the kernel gives us exactly the failure signal the
// robustness story needs — when a worker dies, its end closes and the
// coordinator's next receive returns EOF (and sends fail) instead of
// hanging. For workers that hang *without* dying, every frame operation
// takes a deadline (IoStatus::kDeadline) so the coordinator's liveness
// machinery can step in.
//
// Wire format: every frame is a 16-byte little-endian header
//
//   [magic u32 "MPN1"] [version u32] [payload length u32] [CRC32 u32]
//
// followed by the payload bytes. The CRC (IEEE 802.3, poly 0xEDB88320)
// covers the payload; a bad magic, unknown version, oversized length,
// CRC mismatch or torn frame throws the typed FrameError, which the
// cluster layer routes into its worker-restart path — a corrupt peer is
// a recoverable fault, never undefined decoding. Payloads are built with
// WireBuffer and decoded with WireReader: fixed little-endian integers,
// doubles as their IEEE-754 bit pattern — byte-exact round-trips, which
// the cluster's bit-identical digest aggregation depends on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/transport.h"

namespace mpn {

/// Serialization buffer for one frame payload.
class WireBuffer {
 public:
  void PutU8(uint8_t v) { data_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// IEEE-754 bit pattern via the u64 path: byte-exact round-trip.
  void PutDouble(double v);
  void PutString(const std::string& s);
  /// Overwrites the 8 bytes at `offset` with `v` (same little-endian
  /// layout as PutU64). For in-place patching of a recorded frame — the
  /// cluster's snapshot replay folds recorded retirements into the admit
  /// frame's tuning field so retirement never races the admission.
  void PatchU64(size_t offset, uint64_t v);

  const std::vector<uint8_t>& data() const { return data_; }
  size_t size() const { return data_.size(); }

 private:
  std::vector<uint8_t> data_;
};

/// A frame failed integrity checks: bad magic, version mismatch, CRC
/// mismatch, oversized length, truncated payload or a peer that wedged
/// mid-frame. Derives std::runtime_error so pre-existing catch sites
/// still treat it as a fatal worker error; the cluster layer catches it
/// specifically to count the failure and restart the shard.
class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what)
      : std::runtime_error("mpn ipc: " + what) {}
};

/// Bounds-checked decoder over a received payload. Get* throw FrameError
/// past the end (malformed frame).
class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  double GetDouble();
  std::string GetString();

  bool AtEnd() const { return off_ == size_; }

 private:
  void Need(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
};

/// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) over `n` bytes —
/// Crc32((const uint8_t*)"123456789", 9) == 0xCBF43926.
uint32_t Crc32(const uint8_t* data, size_t n);

/// Deterministic crash-injection plan for the cluster's recovery paths
/// (engine/cluster.h). Each event kills one worker incarnation the moment
/// any of its sessions is about to advance to the given *virtual*
/// timestamp — deterministic in virtual time, so tests, the lifecycle
/// fuzzer and the bench recovery table can kill workers mid-drain
/// reproducibly. Events are consumed FIFO per shard: the k-th event of a
/// shard arms the k-th incarnation forked for it (initial worker first,
/// then each replacement), so a plan with several events for one shard
/// exercises repeated restarts and, past the retry budget, graceful
/// degradation.
struct CrashPlan {
  struct Event {
    size_t shard = 0;
    size_t timestamp = 0;
  };
  std::vector<Event> events;

  bool empty() const { return events.empty(); }

  /// Pops the next planned crash timestamp for `shard`; returns
  /// kNoCrash (SIZE_MAX, the "disabled" sentinel the engine uses) when
  /// none is planned.
  size_t Take(size_t shard);

  /// Parses "shard:timestamp[,shard:timestamp...]" (spaces allowed around
  /// tokens). Throws std::runtime_error on a malformed spec — a typo in a
  /// crash plan must fail loudly, not silently disarm the fuzz run.
  static CrashPlan Parse(const std::string& spec);

  /// Reads the MPN_CRASH_PLAN environment variable (empty plan when unset
  /// or empty).
  static CrashPlan FromEnv();

  /// The "no crash planned" sentinel returned by Take.
  static const size_t kNoCrash;
};

/// Deterministic transport-fault plan — CrashPlan's sibling for faults
/// that damage or delay frames instead of killing the process outright.
/// Each event injects one FaultKind at the Nth frame operation (0-based,
/// sends and receives share the worker channel's counter) of a shard's
/// data channel. The worker side of the cluster protocol is
/// single-threaded, so its frame-op sequence — admit receives, the drain
/// receive, the result send — is a deterministic function of the
/// workload, which makes "the Nth frame of shard k" reproducible.
///
/// Events are consumed per incarnation: TakeIncarnation pops a shard's
/// events in plan order up to and including the first *fatal* kind
/// (corrupt / truncate / stall / reset — anything that costs the
/// incarnation its life), so the k-th batch arms the k-th incarnation
/// forked for the shard, mirroring CrashPlan's FIFO semantics.
struct FaultPlan {
  struct Event {
    size_t shard = 0;
    size_t frame = 0;
    FaultKind kind = FaultKind::kCorrupt;
  };
  std::vector<Event> events;

  bool empty() const { return events.empty(); }

  /// True for kinds after which the incarnation cannot survive (the
  /// coordinator restarts the shard): corrupt, truncate, stall, reset.
  static bool IsFatal(FaultKind kind);

  /// Pops the next batch of events for `shard`: everything up to and
  /// including the first fatal kind. Returns an empty vector when the
  /// shard has no events left.
  std::vector<Event> TakeIncarnation(size_t shard);

  /// Parses "shard:frame:kind[,shard:frame:kind...]" where kind is a
  /// FaultKindName ("short", "eintr", "corrupt", "trunc", "stall",
  /// "reset"); spaces allowed around tokens. Throws std::runtime_error
  /// on a malformed spec.
  static FaultPlan Parse(const std::string& spec);

  /// Derives a small random plan (1-2 events over `shards` shards) from
  /// a seed — the "seed:N" form of MPN_FAULT_PLAN, used by the CI fault
  /// soak. Deterministic for a given (seed, shards).
  static FaultPlan FromSeed(uint64_t seed, size_t shards);

  /// Reads the MPN_FAULT_PLAN environment variable: empty plan when
  /// unset or empty, FromSeed when the value is "seed:N", Parse
  /// otherwise. Events naming a shard >= `shards` are kept but never
  /// taken — a plan written for a larger cluster degrades gracefully.
  static FaultPlan FromEnv(size_t shards);
};

/// One endpoint of a connected pair, speaking checksummed frames over a
/// Transport. Owns the underlying file descriptor.
class IpcChannel {
 public:
  /// Frame header constants (also asserted by tests).
  static constexpr uint32_t kFrameMagic = 0x314E504Du;  // "MPN1" in LE
  static constexpr uint32_t kFrameVersion = 1;
  static constexpr size_t kHeaderBytes = 16;

  IpcChannel() = default;
  /// Takes ownership of `fd` (switched to non-blocking).
  explicit IpcChannel(int fd) : transport_(fd) {}
  explicit IpcChannel(Transport transport)
      : transport_(std::move(transport)) {}

  IpcChannel(const IpcChannel&) = delete;
  IpcChannel& operator=(const IpcChannel&) = delete;
  IpcChannel(IpcChannel&&) noexcept = default;
  IpcChannel& operator=(IpcChannel&&) noexcept = default;

  /// Creates a connected pair of the given kind (engine/transport.h).
  /// Throws std::runtime_error when the underlying syscalls fail.
  static void MakePair(TransportKind kind, IpcChannel* a, IpcChannel* b);
  /// Legacy AF_UNIX socketpair form.
  static void MakePair(IpcChannel* a, IpcChannel* b);

  bool valid() const { return transport_.valid(); }
  void Close() { transport_.Close(); }
  /// Half-closes both directions (wakes a blocked reader with EOF)
  /// without releasing the fd.
  void ShutdownBoth() { transport_.ShutdownBoth(); }

  /// Sends one frame; the whole operation (header + payload) must
  /// complete before `deadline_ms` (<= 0: wait indefinitely). Returns
  /// kClosed when the peer is gone (never raises SIGPIPE), kDeadline on
  /// expiry — after which the stream is no longer trustworthy and the
  /// peer should be restarted. Throws FrameError on oversized frames,
  /// std::runtime_error on unexpected socket errors.
  IoStatus SendFrame(const WireBuffer& frame, double deadline_ms);

  /// Receives one frame into `payload`. `first_byte_deadline_ms` bounds
  /// only the wait for the frame to *begin* (<= 0: wait indefinitely);
  /// kDeadline then means "no frame yet", nothing was consumed and the
  /// stream is still clean, so the caller may retry or probe liveness.
  /// Once the first byte has arrived the per-op deadline
  /// (set_io_deadline_ms) applies: a peer that wedges or closes
  /// mid-frame, a bad magic/version/length or a CRC mismatch all throw
  /// FrameError. Returns kClosed on a clean between-frames EOF or reset.
  IoStatus RecvFrame(std::vector<uint8_t>* payload,
                     double first_byte_deadline_ms);

  /// Blocking compatibility wrappers: Send waits io_deadline_ms (false
  /// on a gone peer or expiry), Recv blocks until a frame begins (false
  /// on EOF). Both throw FrameError on integrity failures.
  bool Send(const WireBuffer& frame);
  bool Recv(std::vector<uint8_t>* payload);

  /// Deadline applied to Send and to mid-frame receive progress
  /// (<= 0: unbounded, the pre-hardening behaviour). Default 0.
  void set_io_deadline_ms(double ms) { io_deadline_ms_ = ms; }
  double io_deadline_ms() const { return io_deadline_ms_; }

  /// Arms a deterministic fault on this endpoint (engine/transport.h).
  void ArmFault(size_t frame, FaultKind kind) {
    transport_.ArmFault(frame, kind);
  }

  const TransportCounters& counters() const {
    return transport_.counters();
  }
  /// Last transport-level error text ("" when none) for error messages.
  const std::string& last_error() const { return transport_.last_error(); }

 private:
  Transport transport_;
  double io_deadline_ms_ = 0;
};

}  // namespace mpn
