#include "engine/group_session.h"

#include <algorithm>
#include <utility>

#include "index/gnn.h"
#include "util/macros.h"

namespace mpn {

GroupSession::GroupSession(uint32_t id, const std::vector<Point>* pois,
                           SpatialIndex tree,
                           std::vector<const Trajectory*> group,
                           const SimOptions& options,
                           const SessionTuning& tuning, const Timer* run_timer)
    : id_(id),
      pois_(pois),
      tree_(tree),
      group_(std::move(group)),
      options_(options),
      tuning_(tuning),
      run_timer_(run_timer),
      server_(pois, tree, options.server) {
  MPN_ASSERT(!group_.empty());
  MPN_ASSERT(tuning_.recompute_cost_factor >= 1.0);
  clients_.reserve(group_.size());
  for (const Trajectory* t : group_) clients_.emplace_back(t);
  horizon_ = group_.front()->size();
  for (const Trajectory* t : group_) horizon_ = std::min(horizon_, t->size());
  if (options_.max_timestamps > 0) {
    horizon_ = std::min(horizon_, options_.max_timestamps);
  }
  retire_at_ = tuning_.retire_at;
  messages_at_.assign(horizon_, 0);
  violated_at_.assign(horizon_, 0);
  advance_at_.assign(horizon_, 0.0);
  seconds_at_.assign(horizon_, 0.0);
}

void GroupSession::AdvanceClients(size_t t) {
  for (MpnClient& c : clients_) c.Advance(t);
  ++metrics_.timestamps;
  advance_at_[t] = Now();
}

void GroupSession::CaptureSnapshot(size_t t, Snapshot* snap) const {
  snap->t = t;
  snap->locations.clear();
  snap->hints.clear();
  snap->locations.reserve(clients_.size());
  snap->hints.reserve(clients_.size());
  for (const MpnClient& c : clients_) {
    snap->locations.push_back(c.location());
    snap->hints.push_back(c.Hint());
  }
}

void GroupSession::RecordViolation(size_t t) {
  const size_t m = clients_.size();
  ++metrics_.updates;
  violated_at_[t] = 1;

  // Step 1: the triggering user reports location + motion hint.
  metrics_.comm.Record(MessageType::kLocationUpdate,
                       kValuesPerPoint + kValuesPerMotionHint, packet_model_);
  // Step 2: probe the other users; each replies with location + hint.
  for (size_t i = 0; i + 1 < m; ++i) {
    metrics_.comm.Record(MessageType::kProbe, 0, packet_model_);
    metrics_.comm.Record(MessageType::kProbeReply,
                         kValuesPerPoint + kValuesPerMotionHint,
                         packet_model_);
  }
  messages_at_[t] += 1 + 2 * (m - 1);
}

bool GroupSession::AdvanceAndCheck(Snapshot* snap) {
  MPN_ASSERT(mailbox_.empty());
  // Re-checked (not asserted): a concurrent RetireSession may truncate the
  // horizon between the scheduler's readiness check and this call.
  if (AdvancesExhausted()) return false;
  Timer timer;
  const size_t t = next_t_++;
  AdvanceClients(t);
  bool violated = !has_result_;
  if (!violated) {
    for (const MpnClient& c : clients_) {
      if (!c.InsideRegion()) {
        violated = true;
        break;
      }
    }
  }
  if (violated) {
    RecordViolation(t);
    CaptureSnapshot(t, snap);
  } else if (options_.check_correctness && has_result_) {
    std::vector<Point> locations;
    locations.reserve(clients_.size());
    for (const MpnClient& c : clients_) locations.push_back(c.location());
    CheckInvariantAt(locations);
  }
  seconds_at_[t] += timer.ElapsedSeconds();
  return violated;
}

void GroupSession::BufferAdvance() {
  // Re-checked (not asserted): a concurrent RetireSession may have
  // exhausted the horizon since the event was scheduled.
  if (!CanBuffer()) return;
  Timer timer;
  const size_t t = next_t_++;
  AdvanceClients(t);
  mailbox_.emplace_back();
  CaptureSnapshot(t, &mailbox_.back());
  ++materialized_;
  mailbox_peak_ = std::max(mailbox_peak_, mailbox_.size());
  if (tuning_.mailbox_policy == MailboxPolicy::kDropOldest) {
    if (materialized_ > tuning_.mailbox_capacity) {
      // Drop the oldest payload, keeping its timestamp queued as a husk
      // for the forced recompute at replay. Oldest materialized = first
      // entry past the husk prefix ([husks...][materialized...]).
      Snapshot& victim = mailbox_[mailbox_.size() - materialized_];
      victim.locations.clear();
      victim.locations.shrink_to_fit();
      victim.hints.clear();
      victim.hints.shrink_to_fit();
      --materialized_;
      ++dropped_count_;
    }
  } else if (mailbox_.size() >= tuning_.mailbox_capacity) {
    flight_saturated_ = true;
  }
  seconds_at_[t] += timer.ElapsedSeconds();
}

GroupSession::RecomputeOutcome GroupSession::Recompute(const Snapshot& snap) {
  Timer timer;
  RecomputeOutcome outcome;
  outcome.t = snap.t;
  const double before = server_.compute_seconds();
  outcome.result = server_.Recompute(snap.locations, snap.hints);
  outcome.compute_seconds = server_.compute_seconds() - before;

  if (options_.check_correctness) {
    // The reported optimum must match brute force (ties by distance allowed).
    const auto best = FindGnnBruteForce(*pois_, snap.locations,
                                        options_.server.objective, 1);
    MPN_ASSERT(!best.empty());
    const double reported = AggDist(outcome.result.po, snap.locations,
                                    options_.server.objective);
    MPN_ASSERT_MSG(reported <= best[0].agg + 1e-7 * (1.0 + best[0].agg),
                   "server reported a non-optimal meeting point");
    // Every client must be inside its fresh region.
    for (size_t i = 0; i < snap.locations.size(); ++i) {
      MPN_ASSERT_MSG(outcome.result.regions[i].Contains(snap.locations[i]),
                     "fresh safe region excludes the user's location");
    }
  }

  // Straggler injection: pad the recomputation to cost_factor times its
  // real duration. Pure wall-clock — results and digest are unaffected.
  if (tuning_.recompute_cost_factor > 1.0) {
    const double target =
        timer.ElapsedSeconds() * tuning_.recompute_cost_factor;
    while (timer.ElapsedSeconds() < target) {
    }
  }
  seconds_at_[snap.t] += timer.ElapsedSeconds();
  return outcome;
}

void GroupSession::InstallResult(RecomputeOutcome outcome) {
  Timer timer;
  // A capacity-0 mailbox cannot buffer at all: every recomputation with
  // timestamps still ahead stalled the clock (deterministically). For
  // capacity >= 1 the stall was flagged by the BufferAdvance that filled
  // the mailbox while this result was in flight. kDropOldest never stalls
  // — overflow drops payloads (dropped_count_) instead.
  if (tuning_.mailbox_policy == MailboxPolicy::kBlock &&
      (flight_saturated_ ||
       (tuning_.mailbox_capacity == 0 && !AdvancesExhausted()))) {
    ++stall_count_;
  }
  flight_saturated_ = false;
  const size_t m = clients_.size();
  MsrResult& result = outcome.result;
  if (!has_result_ || result.po_id != current_po_) {
    if (has_result_) ++metrics_.result_changes;
    current_po_ = result.po_id;
    has_result_ = true;
  }
  metrics_.server_seconds += outcome.compute_seconds;

  // Step 3: ship po + safe region to every user; tile regions go through
  // the lossless codec so clients hold exactly the wire representation.
  for (size_t i = 0; i < m; ++i) {
    const SafeRegion& region = result.regions[i];
    const size_t values = kValuesPerPoint + RegionValueCount(region, true);
    metrics_.comm.Record(MessageType::kResult, values, packet_model_);
    if (region.is_circle()) {
      clients_[i].SetRegion(region);
    } else {
      const EncodedTileRegion enc = EncodeTileRegion(region.tiles());
      clients_[i].SetRegion(SafeRegion::MakeTiles(DecodeTileRegion(enc)));
    }
  }
  messages_at_[outcome.t] += m;
  seconds_at_[outcome.t] += timer.ElapsedSeconds();
}

GroupSession::Replay GroupSession::ReplayOne(Snapshot* snap) {
  if (mailbox_.empty()) return Replay::kEmpty;
  Timer timer;
  Snapshot entry = std::move(mailbox_.front());
  // Empty locations = a kDropOldest husk (real payloads always have one
  // location per group member, and groups are non-empty).
  const bool dropped = entry.locations.empty();
  mailbox_.pop_front();
  if (!dropped) --materialized_;
  // Retirement landed below an already-buffered timestamp (asap mode):
  // drop the update unchecked — the session is past its horizon.
  if (entry.t >= effective_horizon()) return Replay::kClean;
  if (dropped) RematerializeSnapshot(&entry);

  bool violated = false;
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (!clients_[i].region().Contains(entry.locations[i])) {
      violated = true;
      break;
    }
  }
  if (violated) {
    RecordViolation(entry.t);
    *snap = std::move(entry);
    seconds_at_[snap->t] += timer.ElapsedSeconds();
    return Replay::kViolation;
  }
  if (options_.check_correctness) CheckInvariantAt(entry.locations);
  seconds_at_[entry.t] += timer.ElapsedSeconds();
  return Replay::kClean;
}

void GroupSession::RematerializeSnapshot(Snapshot* entry) const {
  const size_t t = entry->t;
  entry->locations.clear();
  entry->hints.clear();
  entry->locations.reserve(group_.size());
  entry->hints.reserve(group_.size());
  for (const Trajectory* traj : group_) {
    // Fresh replica, default options — exactly how clients_ were built, so
    // replaying timestamps 0..t reproduces the dropped capture bit-for-bit
    // (location and learned motion hint are pure functions of the
    // trajectory prefix).
    MpnClient replica(traj);
    for (size_t u = 0; u <= t; ++u) replica.Advance(u);
    entry->locations.push_back(replica.location());
    entry->hints.push_back(replica.Hint());
  }
}

GroupSession::State GroupSession::ExportState() const {
  // Spill boundary: between events, mailbox drained, no recompute in
  // flight (the scheduler's flags guarantee the latter). Under those
  // conditions flight_saturated_ is provably false and materialized_ 0,
  // so neither needs to travel.
  MPN_ASSERT(mailbox_.empty());
  State state;
  state.next_t = next_t_;
  state.retire_at = retire_at_;
  state.has_result = has_result_;
  state.current_po = current_po_;
  state.mailbox_peak = mailbox_peak_;
  state.stall_count = stall_count_;
  state.dropped_count = dropped_count_;
  state.metrics = metrics_;
  state.server = server_.ExportState();
  state.clients.reserve(clients_.size());
  for (const MpnClient& c : clients_) state.clients.push_back(c.ExportState());
  // Entries at t >= next_t_ are still at their ctor-assigned zero, so only
  // the processed prefix travels; ImportState re-zero-fills the tail.
  state.messages_at.assign(messages_at_.begin(), messages_at_.begin() + next_t_);
  state.violated_at.assign(violated_at_.begin(), violated_at_.begin() + next_t_);
  state.advance_at.assign(advance_at_.begin(), advance_at_.begin() + next_t_);
  state.seconds_at.assign(seconds_at_.begin(), seconds_at_.begin() + next_t_);
  return state;
}

void GroupSession::ImportState(const State& state) {
  MPN_ASSERT(mailbox_.empty());
  MPN_ASSERT(state.clients.size() == clients_.size());
  MPN_ASSERT(state.next_t <= horizon_);
  next_t_ = state.next_t;
  retire_at_ = state.retire_at;
  has_result_ = state.has_result;
  current_po_ = state.current_po;
  mailbox_peak_ = state.mailbox_peak;
  stall_count_ = state.stall_count;
  dropped_count_ = state.dropped_count;
  metrics_ = state.metrics;
  server_.ImportState(state.server);
  for (size_t i = 0; i < clients_.size(); ++i) {
    clients_[i].ImportState(state.clients[i]);
  }
  materialized_ = 0;
  flight_saturated_ = false;
  messages_at_.assign(horizon_, 0);
  violated_at_.assign(horizon_, 0);
  advance_at_.assign(horizon_, 0.0);
  seconds_at_.assign(horizon_, 0.0);
  std::copy(state.messages_at.begin(), state.messages_at.end(),
            messages_at_.begin());
  std::copy(state.violated_at.begin(), state.violated_at.end(),
            violated_at_.begin());
  std::copy(state.advance_at.begin(), state.advance_at.end(),
            advance_at_.begin());
  std::copy(state.seconds_at.begin(), state.seconds_at.end(),
            seconds_at_.begin());
}

size_t GroupSession::StateBytesEstimate() const {
  // Fixed part covers the session object, server counters and metrics; the
  // variable part is the per-timestamp traces plus each client's region.
  size_t bytes = 256 + horizon_ * 32;
  for (const MpnClient& c : clients_) bytes += c.StateBytesEstimate();
  return bytes;
}

void GroupSession::CheckInvariantAt(
    const std::vector<Point>& locations) const {
  // Safe-region invariant: while everyone is inside, the last reported
  // meeting point must still be optimal.
  const auto best = FindGnnBruteForce(*pois_, locations,
                                      options_.server.objective, 1);
  const double reported =
      AggDist((*pois_)[current_po_], locations, options_.server.objective);
  MPN_ASSERT_MSG(reported <= best[0].agg + 1e-7 * (1.0 + best[0].agg),
                 "stale meeting point while all users inside regions");
}

}  // namespace mpn
