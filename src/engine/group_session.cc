#include "engine/group_session.h"

#include <algorithm>

#include "index/gnn.h"
#include "util/macros.h"

namespace mpn {

GroupSession::GroupSession(uint32_t id, const std::vector<Point>* pois,
                           const RTree* tree,
                           std::vector<const Trajectory*> group,
                           const SimOptions& options)
    : id_(id),
      pois_(pois),
      tree_(tree),
      group_(std::move(group)),
      options_(options),
      server_(pois, tree, options.server) {
  MPN_ASSERT(!group_.empty());
  clients_.reserve(group_.size());
  for (const Trajectory* t : group_) clients_.emplace_back(t);
  horizon_ = group_.front()->size();
  for (const Trajectory* t : group_) horizon_ = std::min(horizon_, t->size());
  if (options_.max_timestamps > 0) {
    horizon_ = std::min(horizon_, options_.max_timestamps);
  }
}

void GroupSession::TriggerUpdate() {
  const size_t m = clients_.size();
  ++metrics_.updates;

  // Step 1: the triggering user reports location + motion hint.
  metrics_.comm.Record(MessageType::kLocationUpdate,
                       kValuesPerPoint + kValuesPerMotionHint, packet_model_);
  // Step 2: probe the other users; each replies with location + hint.
  for (size_t i = 0; i + 1 < m; ++i) {
    metrics_.comm.Record(MessageType::kProbe, 0, packet_model_);
    metrics_.comm.Record(MessageType::kProbeReply,
                         kValuesPerPoint + kValuesPerMotionHint,
                         packet_model_);
  }

  // Server recomputation.
  std::vector<Point> locations;
  std::vector<MotionHint> hints;
  locations.reserve(m);
  hints.reserve(m);
  for (const MpnClient& c : clients_) {
    locations.push_back(c.location());
    hints.push_back(c.Hint());
  }
  const double before = server_.compute_seconds();
  MsrResult result = server_.Recompute(locations, hints);
  metrics_.server_seconds += server_.compute_seconds() - before;

  if (options_.check_correctness) {
    // The reported optimum must match brute force (ties by distance allowed).
    const auto best = FindGnnBruteForce(*pois_, locations,
                                        options_.server.objective, 1);
    MPN_ASSERT(!best.empty());
    const double reported = AggDist(result.po, locations,
                                    options_.server.objective);
    MPN_ASSERT_MSG(reported <= best[0].agg + 1e-7 * (1.0 + best[0].agg),
                   "server reported a non-optimal meeting point");
    // Every client must be inside its fresh region.
    for (size_t i = 0; i < m; ++i) {
      MPN_ASSERT_MSG(result.regions[i].Contains(locations[i]),
                     "fresh safe region excludes the user's location");
    }
  }

  if (!has_result_ || result.po_id != current_po_) {
    if (has_result_) ++metrics_.result_changes;
    current_po_ = result.po_id;
    has_result_ = true;
  }

  // Step 3: ship po + safe region to every user; tile regions go through
  // the lossless codec so clients hold exactly the wire representation.
  for (size_t i = 0; i < m; ++i) {
    const SafeRegion& region = result.regions[i];
    const size_t values = kValuesPerPoint + RegionValueCount(region, true);
    metrics_.comm.Record(MessageType::kResult, values, packet_model_);
    if (region.is_circle()) {
      clients_[i].SetRegion(region);
    } else {
      const EncodedTileRegion enc = EncodeTileRegion(region.tiles());
      clients_[i].SetRegion(SafeRegion::MakeTiles(DecodeTileRegion(enc)));
    }
  }
}

void GroupSession::CheckInvariant() const {
  // Safe-region invariant: while everyone is inside, the last reported
  // meeting point must still be optimal.
  bool all_inside = true;
  std::vector<Point> locations;
  for (const MpnClient& c : clients_) {
    locations.push_back(c.location());
    all_inside = all_inside && c.InsideRegion();
  }
  if (!all_inside) return;
  const auto best = FindGnnBruteForce(*pois_, locations,
                                      options_.server.objective, 1);
  const double reported =
      AggDist((*pois_)[current_po_], locations, options_.server.objective);
  MPN_ASSERT_MSG(reported <= best[0].agg + 1e-7 * (1.0 + best[0].agg),
                 "stale meeting point while all users inside regions");
}

bool GroupSession::Tick() {
  MPN_ASSERT(!done());
  const size_t t = next_t_++;
  for (MpnClient& c : clients_) c.Advance(t);
  ++metrics_.timestamps;
  bool violated = !has_result_;
  for (const MpnClient& c : clients_) {
    if (!c.InsideRegion()) {
      violated = true;
      break;
    }
  }
  if (violated) TriggerUpdate();
  if (options_.check_correctness && has_result_) CheckInvariant();
  return violated;
}

}  // namespace mpn
