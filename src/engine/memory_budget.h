// Memory budget for the engine's out-of-core session store.
//
// A budget caps the bytes of *evictable* per-session state the engine keeps
// resident: live GroupSession state machines and compacted final results.
// When the deterministic byte estimate crosses the cap, the session store
// (engine/session_store.h) serializes cold sessions through the versioned
// snapshot codec (engine/session_codec.h) and spills them to a bounded
// external list, rehydrating transparently when the scheduler re-arms them.
// Fixed per-record overhead (SessionRecord, trajectory pointers) is not
// charged — the cap governs what spilling can actually evict.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace mpn {

/// Byte cap for resident per-session state. 0 disables spilling entirely
/// (finalized-session compaction stays on — it only frees memory).
struct MemoryBudget {
  size_t bytes_cap = 0;
  /// Directory for the spill file (empty = $TMPDIR, falling back to /tmp).
  /// The file is created with mkstemp and unlinked immediately, so nothing
  /// survives the process.
  std::string spill_dir;
};

/// Spill/rehydrate accounting. The byte figures are the store's
/// deterministic estimates, so at threads=1 every field is a pure function
/// of the admitted workload and the cap (and exact-matchable in baselines).
struct MemoryStats {
  uint64_t spilled_sessions = 0;     ///< spill events (cumulative)
  uint64_t rehydrated_sessions = 0;  ///< rehydrate events (cumulative)
  uint64_t spilled_bytes = 0;        ///< encoded bytes written (cumulative)
  uint64_t resident_bytes = 0;       ///< current resident estimate
  uint64_t peak_resident_bytes = 0;  ///< high-water resident estimate
};

/// Parses a byte-count spec with an optional k/m/g suffix ("64k", "256M",
/// "1g", "12345"). Returns 0 for null/empty/garbage — i.e. "no budget".
/// Used for the MPN_MEMORY_BUDGET environment override.
inline size_t ParseMemoryBudgetBytes(const char* spec) {
  if (spec == nullptr || *spec == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(spec, &end, 10);
  if (end == spec) return 0;
  size_t mult = 1;
  if (*end == 'k' || *end == 'K') {
    mult = 1024;
    ++end;
  } else if (*end == 'm' || *end == 'M') {
    mult = 1024ull * 1024;
    ++end;
  } else if (*end == 'g' || *end == 'G') {
    mult = 1024ull * 1024 * 1024;
    ++end;
  }
  if (*end != '\0') return 0;  // trailing junk ("64kb") is garbage, not 64k
  return static_cast<size_t>(v) * mult;
}

}  // namespace mpn
