#include "engine/scheduler.h"

#include <cstdlib>
#include <memory>
#include <utility>

#include "engine/session_store.h"
#include "util/macros.h"

namespace mpn {

Scheduler::Scheduler(ThreadPool* pool, SessionTable* table)
    : pool_(pool), table_(table) {
  MPN_ASSERT(pool_ != nullptr && table_ != nullptr);
}

void Scheduler::Start() {
  MPN_ASSERT_MSG(!started(), "Scheduler::Start called twice");
  started_.store(true, std::memory_order_release);
  table_->ForEachOrdered([this](SessionRecord* r) {
    std::lock_guard<std::mutex> lock(r->mu);
    ScheduleNextLocked(r);
  });
}

void Scheduler::Admit(SessionRecord* r) {
  if (!started()) return;  // Start() schedules pre-start admissions
  std::lock_guard<std::mutex> lock(r->mu);
  ScheduleNextLocked(r);
}

void Scheduler::WaitIdle(bool ignore_holds) {
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [this, ignore_holds]() {
    return outstanding_ == 0 && (ignore_holds || holds_ == 0);
  });
}

void Scheduler::Hold() {
  std::lock_guard<std::mutex> lock(idle_mu_);
  ++holds_;
}

void Scheduler::Release() {
  std::lock_guard<std::mutex> lock(idle_mu_);
  MPN_ASSERT(holds_ > 0);
  if (--holds_ == 0 && outstanding_ == 0) idle_cv_.notify_all();
}

std::vector<Scheduler::Slot> Scheduler::SnapshotSlots() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return slots_;
}

void Scheduler::AddOutstanding() {
  std::lock_guard<std::mutex> lock(idle_mu_);
  ++outstanding_;
}

void Scheduler::SubOutstanding() {
  std::lock_guard<std::mutex> lock(idle_mu_);
  MPN_ASSERT(outstanding_ > 0);
  if (--outstanding_ == 0 && holds_ == 0) idle_cv_.notify_all();
}

void Scheduler::ScheduleEventLocked(SessionRecord* r, uint64_t priority) {
  r->event_queued = true;
  AddOutstanding();
  pool_->Post([this, r]() { RunEvent(r); }, priority);
}

void Scheduler::ScheduleNextLocked(SessionRecord* r) {
  if (!started()) return;
  if (r->finalized || r->event_queued || r->event_running) return;
  if (r->spilled) {
    // A spilled session is idle by construction (no job in flight, no
    // pending result, not done — spill eligibility): arm its next tick
    // from the cached clock without rehydrating; RunEvent rehydrates.
    ScheduleEventLocked(r, EventPriority(r->cached_next_t, r->id));
    return;
  }
  GroupSession* s = r->session.get();
  if (r->result_ready) {
    // Install + replay, at the violating timestamp's priority: a lagging
    // session's catch-up beats other sessions' future ticks.
    ScheduleEventLocked(r, EventPriority(r->outcome.t, r->id));
    return;
  }
  if (r->job_running) {
    // Recompute in flight: keep draining location updates into the
    // mailbox while it has room; otherwise the job's completion callback
    // re-arms the session.
    if (s->CanBuffer()) {
      ScheduleEventLocked(r, EventPriority(s->next_timestamp(), r->id));
    }
    return;
  }
  if (!s->done()) {
    ScheduleEventLocked(r, EventPriority(s->next_timestamp(), r->id));
    return;
  }
  FinalizeLocked(r);
}

void Scheduler::FinalizeLocked(SessionRecord* r) {
  MPN_ASSERT(!r->job_running && !r->result_ready && !r->finalized);
  GroupSession* s = r->session.get();
  s->Finish();
  r->finalized = true;
  const size_t n = s->next_timestamp();  // timestamps actually advanced
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (slots_.size() < n) slots_.resize(n);
    for (size_t t = 0; t < n; ++t) {
      slots_[t].messages += s->messages_at()[t];
      slots_[t].recomputes += s->violated_at()[t];
      slots_[t].seconds += s->work_seconds_at()[t];
      ++slots_[t].sessions;
    }
  }
  // Compact: the state machine collapses to its SessionFinalResult.
  if (store_ != nullptr) store_->CompactFinalizedLocked(r);
}

void Scheduler::RunEvent(SessionRecord* r) {
  events_processed_.fetch_add(1, std::memory_order_relaxed);
  bool do_install = false;
  bool awaiting = false;
  GroupSession::RecomputeOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(r->mu);
    // The event may belong to a spilled session — bring it back first.
    if (store_ != nullptr) store_->EnsureResidentLocked(r);
    r->event_queued = false;
    r->event_running = true;
    if (r->result_ready) {
      do_install = true;
      outcome = std::move(r->outcome);
      r->result_ready = false;
    } else {
      awaiting = r->job_running;
    }
  }
  GroupSession* s = r->session.get();
  // Crash injection (see set_crash_at_timestamp): die without unwinding —
  // the kernel closes the IPC pipe, which is exactly the failure signal a
  // real worker crash produces. next_timestamp() only grows and is capped
  // by the (finite) horizon, so the SIZE_MAX default can never trigger.
  if (s->next_timestamp() >= crash_at_timestamp_ && !s->AdvancesExhausted()) {
    std::_Exit(134);
  }

  bool post_job = false;
  GroupSession::Snapshot snap;
  if (do_install) {
    s->InstallResult(std::move(outcome));
    for (;;) {
      const GroupSession::Replay rr = s->ReplayOne(&snap);
      if (rr == GroupSession::Replay::kViolation) {
        post_job = true;
        break;
      }
      if (rr == GroupSession::Replay::kEmpty) break;
    }
  } else if (awaiting) {
    // The event was queued as a buffer tick; room may have vanished if a
    // retirement truncated the horizon meanwhile.
    if (s->CanBuffer()) s->BufferAdvance();
  } else if (!s->AdvancesExhausted()) {
    MPN_ASSERT(s->MailboxEmpty());
    post_job = s->AdvanceAndCheck(&snap);
  }

  {
    std::lock_guard<std::mutex> lock(r->mu);
    r->event_running = false;
    if (post_job) r->job_running = true;
    ScheduleNextLocked(r);
  }
  if (post_job) PostJob(r, std::move(snap));
  // Re-account the (grown) session and spill whatever the budget no
  // longer covers. After the flags settle, outside every lock.
  if (store_ != nullptr) store_->OnEventDone(r);
  SubOutstanding();
}

void Scheduler::PostJob(SessionRecord* r, GroupSession::Snapshot snap) {
  AddOutstanding();
  const uint64_t priority = EventPriority(snap.t, r->id);
  // shared_ptr because std::function requires copyable callables.
  auto shared = std::make_shared<GroupSession::Snapshot>(std::move(snap));
  pool_->Post(
      [r, shared]() {
        GroupSession::RecomputeOutcome outcome =
            r->session->Recompute(*shared);
        std::lock_guard<std::mutex> lock(r->mu);
        r->outcome = std::move(outcome);
      },
      priority,
      /*on_complete=*/[this, r]() { OnJobDone(r); });
}

void Scheduler::OnJobDone(SessionRecord* r) {
  {
    std::lock_guard<std::mutex> lock(r->mu);
    r->job_running = false;
    r->result_ready = true;
    ScheduleNextLocked(r);
  }
  SubOutstanding();
}

}  // namespace mpn
