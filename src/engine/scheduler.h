// Event-driven session scheduler.
//
// Replaces the old lockstep round loop (every live session ticked once per
// global round, barrier between rounds) with independent per-session
// virtual clocks: each session's next step is an event ordered by
// (next_timestamp, session_id) in the thread pool's priority queue — the
// ready min-heap. A lagging session therefore delays only itself; everyone
// else keeps draining their own timelines.
//
// Per session, exactly one *event* (tick / buffer tick / install+replay)
// executes at a time; re-arming is a chain — each event schedules the
// session's next step as it completes. A safe-region violation posts the
// expensive recomputation as an async pool job and the session leaves the
// ready queue; while the job runs, location updates keep landing through
// buffer-tick events into the session's bounded mailbox. The job's
// completion callback re-arms the session: the next event installs the
// fresh regions and replays the mailbox. The recomputation job is the only
// session work that may run concurrently with a session event (it touches
// only server state — see group_session.h).
//
// Determinism: the scheduler fixes *which* logical step a session runs
// next, never the wall-clock interleaving across sessions — and a
// session's logical step order is a pure function of its own inputs, so
// per-session results are bit-identical across thread counts, admission
// timing, and recomputation latency. Per-timestamp aggregates fold at
// session finalization with commutative sums, so they are deterministic
// too.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "engine/session_table.h"
#include "util/thread_pool.h"

namespace mpn {

class SessionStore;

/// Drives session events and async recomputations over a thread pool.
class Scheduler {
 public:
  Scheduler(ThreadPool* pool, SessionTable* table);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Begins dispatching: schedules the first event of every session
  /// admitted so far. Sessions admitted later self-schedule via Admit.
  void Start();

  /// Crash-injection test hook (cluster recovery harness): the process
  /// calls std::_Exit the first time any session's event fires while that
  /// session is about to advance to virtual timestamp >= `t` — a
  /// deterministic-in-virtual-time worker death for EngineOptions::
  /// crash_at_timestamp / MPN_CRASH_PLAN. Must be set before Start (no
  /// synchronization). SIZE_MAX (the default) disables the hook.
  void set_crash_at_timestamp(size_t t) { crash_at_timestamp_ = t; }

  /// Wires the engine's session store: RunEvent rehydrates spilled
  /// sessions through it and re-accounts/rebalances after every event,
  /// and finalization compacts through it. Must be set before Start.
  void set_store(SessionStore* store) { store_ = store; }

  /// Switches the ready ordering from time-major (t, id) to id-major
  /// (id, t): each session runs its whole timeline before the next
  /// session's first event fires. Per-session results are interleaving-
  /// independent (see the determinism note above), so this is digest-
  /// neutral — but under a memory budget it turns the spill pattern from
  /// one rehydration per (session, timestamp) into roughly one per
  /// session. Must be set before Start.
  void set_locality_priority(bool on) { locality_priority_ = on; }

  /// True after Start().
  bool started() const { return started_.load(std::memory_order_acquire); }

  /// Monotone count of session events dispatched so far — a cheap
  /// liveness signal: a worker whose scheduler is making progress keeps
  /// incrementing this, one that is wedged does not. Read concurrently by
  /// the cluster worker's heartbeat responder thread.
  uint64_t events_processed() const {
    return events_processed_.load(std::memory_order_relaxed);
  }

  /// Schedules a freshly admitted session's first event (no-op before
  /// Start — Start picks it up). Finalizes already-done (zero-horizon)
  /// sessions immediately.
  void Admit(SessionRecord* record);

  /// Blocks until no events or jobs are queued/running and no holds are
  /// outstanding. With `ignore_holds`, returns as soon as the work drains
  /// (engine destruction path).
  void WaitIdle(bool ignore_holds = false);

  /// A hold keeps WaitIdle from returning while mid-run admissions are
  /// still coming (otherwise the engine could drain and stop between two
  /// AdmitSession calls).
  void Hold();
  void Release();

  /// Per-timestamp aggregates across all finalized sessions.
  struct Slot {
    size_t messages = 0;    ///< protocol messages attributed to this ts
    size_t recomputes = 0;  ///< safe-region violations at this ts
    double seconds = 0.0;   ///< processing seconds attributed to this ts
    size_t sessions = 0;    ///< sessions that advanced through this ts
  };
  /// Copies the slot totals under the stats lock — safe against sessions
  /// finalizing concurrently (the serving loop allows admissions while a
  /// Wait() is folding stats).
  std::vector<Slot> SnapshotSlots() const;

 private:
  /// Priority of a session event. Default: virtual time first, session id
  /// as the tie-break — the (next_timestamp, session_id) ready ordering.
  /// Under locality mode the fields swap (id-major, timestamp clamped to
  /// 32 bits; ids are dense from 0, so realistic keys stay well below the
  /// pool's kDefaultPriority).
  uint64_t EventPriority(size_t t, uint32_t id) const {
    if (locality_priority_) {
      const uint64_t clamped =
          t < 0xffffffffu ? static_cast<uint64_t>(t) : 0xffffffffu;
      return (static_cast<uint64_t>(id) << 32) | clamped;
    }
    return (static_cast<uint64_t>(t) << 32) | id;
  }

  void RunEvent(SessionRecord* r);
  void PostJob(SessionRecord* r, GroupSession::Snapshot snap);
  void OnJobDone(SessionRecord* r);
  /// Decides and schedules the session's next step. Caller holds r->mu.
  void ScheduleNextLocked(SessionRecord* r);
  void ScheduleEventLocked(SessionRecord* r, uint64_t priority);
  /// Finish + fold the session's traces into the slots. Caller holds r->mu.
  void FinalizeLocked(SessionRecord* r);
  void AddOutstanding();
  void SubOutstanding();

  ThreadPool* pool_;
  SessionTable* table_;
  SessionStore* store_ = nullptr;    ///< set by the engine before Start
  bool locality_priority_ = false;   ///< id-major ready ordering
  std::atomic<bool> started_{false};
  std::atomic<uint64_t> events_processed_{0};
  size_t crash_at_timestamp_ = static_cast<size_t>(-1);

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  size_t outstanding_ = 0;  ///< queued/running events + jobs (idle_mu_)
  size_t holds_ = 0;        ///< outstanding admission holds (idle_mu_)

  mutable std::mutex stats_mu_;
  std::vector<Slot> slots_;
};

}  // namespace mpn
