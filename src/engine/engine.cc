#include "engine/engine.h"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "engine/digest.h"
#include "engine/session_store.h"
#include "util/macros.h"

namespace mpn {

/// Adapts the thread pool to the core's VerifyExecutor interface.
/// ThreadPool::ParallelFor already guarantees the worker-count-independent
/// chunk layout the interface demands.
class Engine::PoolExecutor : public VerifyExecutor {
 public:
  explicit PoolExecutor(ThreadPool* pool) : pool_(pool) {}

  void Run(size_t n, size_t grain,
           const std::function<void(size_t, size_t)>& body) override {
    pool_->ParallelFor(n, grain, body);
  }

 private:
  ThreadPool* pool_;
};

Table EngineRoundStats::ToTable() const {
  Table table({"metric", "rounds", "mean", "min", "max", "total"});
  const auto row = [&table](const char* name, const RunningStat& s) {
    table.AddRow({name, std::to_string(s.count()), FormatDouble(s.Mean()),
                  FormatDouble(s.Min()), FormatDouble(s.Max()),
                  FormatDouble(s.Sum())});
  };
  row("messages/round", messages_per_round);
  row("recomputes/round", recomputes_per_round);
  row("seconds/round", round_seconds);
  row("mailbox_peak/session", mailbox_peak_per_session);
  row("mailbox_stalls/session", mailbox_stalls_per_session);
  return table;
}

Engine::Engine(const std::vector<Point>* pois, SpatialIndex tree,
               const EngineOptions& options)
    : pois_(pois), tree_(tree), options_(options) {
  MPN_ASSERT(pois_ != nullptr && tree_.valid());
  const size_t threads =
      options_.threads == 0 ? ThreadPool::HardwareThreads() : options_.threads;
  table_ = std::make_unique<SessionTable>(options_.table_shards);
  pool_ = std::make_unique<ThreadPool>(threads);
  executor_ = std::make_unique<PoolExecutor>(pool_.get());
  scheduler_ = std::make_shared<Scheduler>(pool_.get(), table_.get());
  scheduler_->set_crash_at_timestamp(options_.crash_at_timestamp);
  // An explicit cap wins; otherwise the MPN_MEMORY_BUDGET environment
  // variable arms spilling (so existing binaries/tests can cross the
  // out-of-core path unmodified).
  if (options_.budget.bytes_cap == 0) {
    options_.budget.bytes_cap =
        ParseMemoryBudgetBytes(std::getenv("MPN_MEMORY_BUDGET"));
  }
  session_sim_options_ = options_.sim;
  if (options_.parallel_verify) {
    session_sim_options_.server.verify_fanout.executor = executor_.get();
    session_sim_options_.server.verify_fanout.grain = options_.verify_grain;
    session_sim_options_.server.verify_fanout.min_candidates =
        options_.verify_min_candidates;
  }
  store_ = std::make_unique<SessionStore>(
      options_.budget,
      [this](uint32_t id, const std::vector<const Trajectory*>& group,
             const SessionTuning& tuning) {
        return std::make_unique<GroupSession>(id, pois_, tree_, group,
                                              session_sim_options_, tuning,
                                              &run_timer_);
      });
  scheduler_->set_store(store_.get());
  // Under a budget, run each session to completion before the next one
  // rehydrates — digest-neutral (sessions are independent), but it turns
  // the spill pattern from one round trip per (session, timestamp) into
  // roughly one per session.
  scheduler_->set_locality_priority(store_->enabled());
}

Engine::~Engine() {
  // Drain in-flight work (ignoring admission holds) so no event chain
  // re-posts into the pool while its destructor joins the workers.
  if (started_.load(std::memory_order_acquire)) {
    scheduler_->WaitIdle(/*ignore_holds=*/true);
  }
}

SessionRecord* Engine::FindChecked(uint32_t id) const {
  SessionRecord* r = table_->Find(id);
  MPN_ASSERT_MSG(r != nullptr, "unknown session id");
  return r;
}

uint32_t Engine::AdmitSession(std::vector<const Trajectory*> group,
                              const SessionTuning& tuning) {
  if (stopped_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "Engine::AdmitSession on a finished engine (Run/Shutdown already "
        "returned)");
  }
  const uint32_t id = table_->ReserveId();
  auto session = std::make_unique<GroupSession>(
      id, pois_, tree_, group, session_sim_options_, tuning, &run_timer_);
  auto record = std::make_unique<SessionRecord>(id, std::move(group), tuning,
                                                std::move(session));
  SessionRecord* r = table_->Insert(std::move(record));
  scheduler_->Admit(r);
  // Charge the new session (a zero-horizon one already finalized and
  // compacted inside Admit) and evict whatever no longer fits.
  store_->OnAdmit(r);
  store_->Rebalance();
  return id;
}

uint32_t Engine::AddSession(std::vector<const Trajectory*> group) {
  if (started_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "Engine::AddSession after Run/Start — use AdmitSession for mid-run "
        "admission");
  }
  return AdmitSession(std::move(group));
}

void Engine::RetireSession(uint32_t id, size_t at_timestamp) {
  SessionRecord* r = FindChecked(id);
  std::lock_guard<std::mutex> lock(r->mu);
  if (r->session != nullptr) {
    r->session->RequestRetire(at_timestamp);
    return;
  }
  if (r->finalized) return;  // already done — retirement is a no-op
  // Spilled live session: remember the earliest request; the store
  // applies it on rehydration, before the next event runs.
  if (at_timestamp < r->pending_retire_at) r->pending_retire_at = at_timestamp;
}

void Engine::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    throw std::logic_error("Engine::Run/Start may be called once");
  }
  run_timer_.Reset();
  scheduler_->Start();
}

void Engine::Wait() {
  if (!started_.load(std::memory_order_acquire)) {
    throw std::logic_error("Engine::Wait before Run/Start");
  }
  scheduler_->WaitIdle();
  RebuildRoundStats();
}

void Engine::Shutdown() {
  Wait();
  stopped_.store(true, std::memory_order_release);
}

void Engine::Run() {
  Start();
  Shutdown();
}

void Engine::RebuildRoundStats() {
  EngineRoundStats stats;
  for (const Scheduler::Slot& slot : scheduler_->SnapshotSlots()) {
    stats.messages_per_round.Add(static_cast<double>(slot.messages));
    stats.recomputes_per_round.Add(static_cast<double>(slot.recomputes));
    stats.round_seconds.Add(slot.seconds);
    ++stats.rounds;
  }
  table_->ForEachOrdered([&stats, this](SessionRecord* r) {
    // Sessions admitted concurrently with this Wait (no hold held) may
    // still be running; fold only finalized ones — their result fields
    // are no longer written, so the read is race-free.
    {
      std::lock_guard<std::mutex> lock(r->mu);
      if (!r->finalized) return;
    }
    store_->WithResult(r, [&stats](const SessionFinalResult& fr) {
      stats.mailbox_peak_per_session.Add(static_cast<double>(fr.mailbox_peak));
      stats.mailbox_stalls_per_session.Add(
          static_cast<double>(fr.stall_count));
    });
  });
  round_stats_ = stats;
}

SimMetrics Engine::TotalMetrics() const {
  SimMetrics total;
  table_->ForEachOrdered([&total, this](SessionRecord* r) {
    store_->WithResult(r, [&total](const SessionFinalResult& fr) {
      total.Merge(fr.metrics);
    });
  });
  return total;
}

uint64_t Engine::ResultDigest() const {
  Fnv1a fnv;
  table_->ForEachOrdered([&fnv, this](SessionRecord* r) {
    store_->WithResult(r, [&fnv](const SessionFinalResult& fr) {
      AddSessionResultToDigest(&fnv, fr.metrics, fr.has_result, fr.po);
    });
  });
  return fnv.hash;
}

// --- legacy per-session accessors -----------------------------------------
//
// The by-value accessors stream through the store (no pinning); the
// by-reference ones must hand out pointers into the record's state, so
// they rehydrate-and-pin: the session stays resident for the rest of the
// run. Budget-friendly iteration goes through WithSessionResult instead.

const SimMetrics& Engine::session_metrics(uint32_t id) const {
  SessionRecord* r = FindChecked(id);
  const SimMetrics* out = nullptr;
  {
    std::lock_guard<std::mutex> lock(r->mu);
    store_->EnsureResidentLocked(r, /*pin=*/true);
    out = r->final_result != nullptr ? &r->final_result->metrics
                                     : &r->session->metrics();
  }
  store_->Rebalance();  // pinning may have pushed residency over the cap
  return *out;
}

const std::vector<double>& Engine::session_advance_seconds(uint32_t id) const {
  SessionRecord* r = FindChecked(id);
  const std::vector<double>* out = nullptr;
  {
    std::lock_guard<std::mutex> lock(r->mu);
    store_->EnsureResidentLocked(r, /*pin=*/true);
    out = r->final_result != nullptr ? &r->final_result->advance_seconds
                                     : &r->session->advance_seconds();
  }
  store_->Rebalance();
  return *out;
}

uint32_t Engine::session_po(uint32_t id) const {
  uint32_t po = 0;
  store_->WithResult(FindChecked(id),
                     [&po](const SessionFinalResult& fr) { po = fr.po; });
  return po;
}

bool Engine::session_has_result(uint32_t id) const {
  bool has = false;
  store_->WithResult(
      FindChecked(id),
      [&has](const SessionFinalResult& fr) { has = fr.has_result; });
  return has;
}

size_t Engine::session_mailbox_peak(uint32_t id) const {
  size_t peak = 0;
  store_->WithResult(
      FindChecked(id),
      [&peak](const SessionFinalResult& fr) { peak = fr.mailbox_peak; });
  return peak;
}

size_t Engine::session_stall_count(uint32_t id) const {
  size_t stalls = 0;
  store_->WithResult(
      FindChecked(id),
      [&stalls](const SessionFinalResult& fr) { stalls = fr.stall_count; });
  return stalls;
}

size_t Engine::session_dropped_count(uint32_t id) const {
  size_t dropped = 0;
  store_->WithResult(
      FindChecked(id),
      [&dropped](const SessionFinalResult& fr) { dropped = fr.dropped_count; });
  return dropped;
}

void Engine::WithSessionResult(
    uint32_t id,
    const std::function<void(const SessionFinalResult&)>& fn) const {
  store_->WithResult(FindChecked(id), fn);
}

MemoryStats Engine::memory_stats() const { return store_->stats(); }

}  // namespace mpn
