#include "engine/engine.h"

#include <algorithm>

#include "util/macros.h"
#include "util/timer.h"

namespace mpn {

/// Adapts the thread pool to the core's VerifyExecutor interface.
/// ThreadPool::ParallelFor already guarantees the worker-count-independent
/// chunk layout the interface demands.
class Engine::PoolExecutor : public VerifyExecutor {
 public:
  explicit PoolExecutor(ThreadPool* pool) : pool_(pool) {}

  void Run(size_t n, size_t grain,
           const std::function<void(size_t, size_t)>& body) override {
    pool_->ParallelFor(n, grain, body);
  }

 private:
  ThreadPool* pool_;
};

Table EngineRoundStats::ToTable() const {
  Table table({"metric", "rounds", "mean", "min", "max", "total"});
  const auto row = [&table](const char* name, const RunningStat& s) {
    table.AddRow({name, std::to_string(s.count()), FormatDouble(s.Mean()),
                  FormatDouble(s.Min()), FormatDouble(s.Max()),
                  FormatDouble(s.Sum())});
  };
  row("messages/round", messages_per_round);
  row("recomputes/round", recomputes_per_round);
  row("seconds/round", round_seconds);
  return table;
}

Engine::Engine(const std::vector<Point>* pois, const RTree* tree,
               const EngineOptions& options)
    : pois_(pois), tree_(tree), options_(options) {
  MPN_ASSERT(pois_ != nullptr && tree_ != nullptr);
  const size_t threads =
      options_.threads == 0 ? ThreadPool::HardwareThreads() : options_.threads;
  pool_ = std::make_unique<ThreadPool>(threads);
  executor_ = std::make_unique<PoolExecutor>(pool_.get());
}

Engine::~Engine() = default;

uint32_t Engine::AddSession(std::vector<const Trajectory*> group) {
  MPN_ASSERT_MSG(!ran_, "AddSession after Run");
  SimOptions session_options = options_.sim;
  if (options_.parallel_verify) {
    session_options.server.verify_fanout.executor = executor_.get();
    session_options.server.verify_fanout.grain = options_.verify_grain;
    session_options.server.verify_fanout.min_candidates =
        options_.verify_min_candidates;
  }
  const uint32_t id = static_cast<uint32_t>(sessions_.size());
  sessions_.push_back(std::make_unique<GroupSession>(
      id, pois_, tree_, std::move(group), session_options));
  return id;
}

void Engine::Run() {
  MPN_ASSERT_MSG(!ran_, "Engine::Run may be called once");
  ran_ = true;

  // Sessions still running this round, in session-id order. The order of
  // this list fixes the work partition; which worker claims which session
  // is irrelevant to the results.
  std::vector<GroupSession*> live;
  live.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    if (!s->done()) live.push_back(s.get());
  }

  std::vector<uint8_t> recomputed(sessions_.size(), 0);
  std::vector<size_t> message_delta(sessions_.size(), 0);
  while (!live.empty()) {
    Timer round_timer;

    // Drain this timestamp: every live session ticks as one pool job. The
    // loop thread only orchestrates (caller_participates = false), so the
    // configured thread count is exactly the number of threads doing
    // session work.
    pool_->ParallelFor(
        live.size(), 1,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            GroupSession* s = live[i];
            const size_t before = s->metrics().comm.TotalMessages();
            recomputed[s->id()] = s->Tick() ? 1 : 0;
            message_delta[s->id()] =
                s->metrics().comm.TotalMessages() - before;
          }
        },
        /*caller_participates=*/false);

    size_t recomputes = 0;
    size_t messages = 0;
    for (const GroupSession* s : live) {
      recomputes += recomputed[s->id()];
      messages += message_delta[s->id()];
    }
    round_stats_.messages_per_round.Add(static_cast<double>(messages));
    round_stats_.recomputes_per_round.Add(static_cast<double>(recomputes));
    round_stats_.round_seconds.Add(round_timer.ElapsedSeconds());
    ++round_stats_.rounds;

    live.erase(std::remove_if(live.begin(), live.end(),
                              [](GroupSession* s) { return s->done(); }),
               live.end());
  }
  for (const auto& s : sessions_) s->Finish();
}

SimMetrics Engine::TotalMetrics() const {
  SimMetrics total;
  for (const auto& s : sessions_) total.Merge(s->metrics());
  return total;
}

namespace {

/// FNV-1a over a stream of 64-bit words.
struct Fnv1a {
  uint64_t hash = 1469598103934665603ULL;
  void Add(uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (word >> (8 * i)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
};

}  // namespace

uint64_t Engine::ResultDigest() const {
  Fnv1a fnv;
  for (const auto& s : sessions_) {
    const SimMetrics& m = s->metrics();
    fnv.Add(m.timestamps);
    fnv.Add(m.updates);
    fnv.Add(m.result_changes);
    fnv.Add(s->has_result() ? 1 + static_cast<uint64_t>(s->current_po()) : 0);
    for (size_t t = 0; t < kMessageTypeCount; ++t) {
      const MessageType type = static_cast<MessageType>(t);
      fnv.Add(m.comm.messages(type));
      fnv.Add(m.comm.packets(type));
      fnv.Add(m.comm.values(type));
    }
    fnv.Add(m.msr.tiles_tried);
    fnv.Add(m.msr.tiles_added);
    fnv.Add(m.msr.divide_calls);
    fnv.Add(m.msr.verify.calls);
    fnv.Add(m.msr.verify.accepted);
    fnv.Add(m.msr.verify.tile_groups);
    fnv.Add(m.msr.verify.focal_evals);
    fnv.Add(m.msr.verify.memo_hits);
    fnv.Add(m.msr.candidates.retrievals);
    fnv.Add(m.msr.candidates.candidates_total);
    fnv.Add(m.msr.candidates.rejected_by_buffer);
    fnv.Add(m.msr.rtree_node_accesses);
  }
  return fnv.hash;
}

}  // namespace mpn
