#include "engine/engine.h"

#include <stdexcept>
#include <utility>

#include "util/macros.h"

namespace mpn {

/// Adapts the thread pool to the core's VerifyExecutor interface.
/// ThreadPool::ParallelFor already guarantees the worker-count-independent
/// chunk layout the interface demands.
class Engine::PoolExecutor : public VerifyExecutor {
 public:
  explicit PoolExecutor(ThreadPool* pool) : pool_(pool) {}

  void Run(size_t n, size_t grain,
           const std::function<void(size_t, size_t)>& body) override {
    pool_->ParallelFor(n, grain, body);
  }

 private:
  ThreadPool* pool_;
};

Table EngineRoundStats::ToTable() const {
  Table table({"metric", "rounds", "mean", "min", "max", "total"});
  const auto row = [&table](const char* name, const RunningStat& s) {
    table.AddRow({name, std::to_string(s.count()), FormatDouble(s.Mean()),
                  FormatDouble(s.Min()), FormatDouble(s.Max()),
                  FormatDouble(s.Sum())});
  };
  row("messages/round", messages_per_round);
  row("recomputes/round", recomputes_per_round);
  row("seconds/round", round_seconds);
  return table;
}

Engine::Engine(const std::vector<Point>* pois, const RTree* tree,
               const EngineOptions& options)
    : pois_(pois), tree_(tree), options_(options) {
  MPN_ASSERT(pois_ != nullptr && tree_ != nullptr);
  const size_t threads =
      options_.threads == 0 ? ThreadPool::HardwareThreads() : options_.threads;
  table_ = std::make_unique<SessionTable>(options_.table_shards);
  pool_ = std::make_unique<ThreadPool>(threads);
  executor_ = std::make_unique<PoolExecutor>(pool_.get());
  scheduler_ = std::make_shared<Scheduler>(pool_.get(), table_.get());
}

Engine::~Engine() {
  // Drain in-flight work (ignoring admission holds) so no event chain
  // re-posts into the pool while its destructor joins the workers.
  if (started_.load(std::memory_order_acquire)) {
    scheduler_->WaitIdle(/*ignore_holds=*/true);
  }
}

SessionRecord* Engine::FindChecked(uint32_t id) const {
  SessionRecord* r = table_->Find(id);
  MPN_ASSERT_MSG(r != nullptr, "unknown session id");
  return r;
}

uint32_t Engine::AdmitSession(std::vector<const Trajectory*> group,
                              const SessionTuning& tuning) {
  if (stopped_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "Engine::AdmitSession on a finished engine (Run/Wait already "
        "returned)");
  }
  SimOptions session_options = options_.sim;
  if (options_.parallel_verify) {
    session_options.server.verify_fanout.executor = executor_.get();
    session_options.server.verify_fanout.grain = options_.verify_grain;
    session_options.server.verify_fanout.min_candidates =
        options_.verify_min_candidates;
  }
  const uint32_t id = table_->ReserveId();
  auto record = std::make_unique<SessionRecord>(std::make_unique<GroupSession>(
      id, pois_, tree_, std::move(group), session_options, tuning,
      &run_timer_));
  SessionRecord* r = table_->Insert(std::move(record));
  scheduler_->Admit(r);
  return id;
}

uint32_t Engine::AddSession(std::vector<const Trajectory*> group) {
  if (started_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "Engine::AddSession after Run/Start — use AdmitSession for mid-run "
        "admission");
  }
  return AdmitSession(std::move(group));
}

void Engine::RetireSession(uint32_t id, size_t at_timestamp) {
  FindChecked(id)->session->RequestRetire(at_timestamp);
}

void Engine::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    throw std::logic_error("Engine::Run/Start may be called once");
  }
  run_timer_.Reset();
  scheduler_->Start();
}

void Engine::Wait() {
  if (!started_.load(std::memory_order_acquire)) {
    throw std::logic_error("Engine::Wait before Run/Start");
  }
  scheduler_->WaitIdle();
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  for (const Scheduler::Slot& slot : scheduler_->slots()) {
    round_stats_.messages_per_round.Add(static_cast<double>(slot.messages));
    round_stats_.recomputes_per_round.Add(
        static_cast<double>(slot.recomputes));
    round_stats_.round_seconds.Add(slot.seconds);
    ++round_stats_.rounds;
  }
}

void Engine::Run() {
  Start();
  Wait();
}

SimMetrics Engine::TotalMetrics() const {
  SimMetrics total;
  table_->ForEachOrdered([&total](SessionRecord* r) {
    total.Merge(r->session->metrics());
  });
  return total;
}

namespace {

/// FNV-1a over a stream of 64-bit words.
struct Fnv1a {
  uint64_t hash = 1469598103934665603ULL;
  void Add(uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (word >> (8 * i)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
};

}  // namespace

uint64_t Engine::ResultDigest() const {
  Fnv1a fnv;
  table_->ForEachOrdered([&fnv](SessionRecord* r) {
    const GroupSession& s = *r->session;
    const SimMetrics& m = s.metrics();
    fnv.Add(m.timestamps);
    fnv.Add(m.updates);
    fnv.Add(m.result_changes);
    fnv.Add(s.has_result() ? 1 + static_cast<uint64_t>(s.current_po()) : 0);
    for (size_t t = 0; t < kMessageTypeCount; ++t) {
      const MessageType type = static_cast<MessageType>(t);
      fnv.Add(m.comm.messages(type));
      fnv.Add(m.comm.packets(type));
      fnv.Add(m.comm.values(type));
    }
    fnv.Add(m.msr.tiles_tried);
    fnv.Add(m.msr.tiles_added);
    fnv.Add(m.msr.divide_calls);
    fnv.Add(m.msr.verify.calls);
    fnv.Add(m.msr.verify.accepted);
    fnv.Add(m.msr.verify.tile_groups);
    fnv.Add(m.msr.verify.focal_evals);
    fnv.Add(m.msr.verify.memo_hits);
    fnv.Add(m.msr.candidates.retrievals);
    fnv.Add(m.msr.candidates.candidates_total);
    fnv.Add(m.msr.candidates.rejected_by_buffer);
    fnv.Add(m.msr.rtree_node_accesses);
  });
  return fnv.hash;
}

}  // namespace mpn
