#include "engine/engine.h"

#include <stdexcept>
#include <utility>

#include "engine/digest.h"
#include "util/macros.h"

namespace mpn {

/// Adapts the thread pool to the core's VerifyExecutor interface.
/// ThreadPool::ParallelFor already guarantees the worker-count-independent
/// chunk layout the interface demands.
class Engine::PoolExecutor : public VerifyExecutor {
 public:
  explicit PoolExecutor(ThreadPool* pool) : pool_(pool) {}

  void Run(size_t n, size_t grain,
           const std::function<void(size_t, size_t)>& body) override {
    pool_->ParallelFor(n, grain, body);
  }

 private:
  ThreadPool* pool_;
};

Table EngineRoundStats::ToTable() const {
  Table table({"metric", "rounds", "mean", "min", "max", "total"});
  const auto row = [&table](const char* name, const RunningStat& s) {
    table.AddRow({name, std::to_string(s.count()), FormatDouble(s.Mean()),
                  FormatDouble(s.Min()), FormatDouble(s.Max()),
                  FormatDouble(s.Sum())});
  };
  row("messages/round", messages_per_round);
  row("recomputes/round", recomputes_per_round);
  row("seconds/round", round_seconds);
  row("mailbox_peak/session", mailbox_peak_per_session);
  row("mailbox_stalls/session", mailbox_stalls_per_session);
  return table;
}

Engine::Engine(const std::vector<Point>* pois, SpatialIndex tree,
               const EngineOptions& options)
    : pois_(pois), tree_(tree), options_(options) {
  MPN_ASSERT(pois_ != nullptr && tree_.valid());
  const size_t threads =
      options_.threads == 0 ? ThreadPool::HardwareThreads() : options_.threads;
  table_ = std::make_unique<SessionTable>(options_.table_shards);
  pool_ = std::make_unique<ThreadPool>(threads);
  executor_ = std::make_unique<PoolExecutor>(pool_.get());
  scheduler_ = std::make_shared<Scheduler>(pool_.get(), table_.get());
  scheduler_->set_crash_at_timestamp(options_.crash_at_timestamp);
}

Engine::~Engine() {
  // Drain in-flight work (ignoring admission holds) so no event chain
  // re-posts into the pool while its destructor joins the workers.
  if (started_.load(std::memory_order_acquire)) {
    scheduler_->WaitIdle(/*ignore_holds=*/true);
  }
}

SessionRecord* Engine::FindChecked(uint32_t id) const {
  SessionRecord* r = table_->Find(id);
  MPN_ASSERT_MSG(r != nullptr, "unknown session id");
  return r;
}

uint32_t Engine::AdmitSession(std::vector<const Trajectory*> group,
                              const SessionTuning& tuning) {
  if (stopped_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "Engine::AdmitSession on a finished engine (Run/Shutdown already "
        "returned)");
  }
  SimOptions session_options = options_.sim;
  if (options_.parallel_verify) {
    session_options.server.verify_fanout.executor = executor_.get();
    session_options.server.verify_fanout.grain = options_.verify_grain;
    session_options.server.verify_fanout.min_candidates =
        options_.verify_min_candidates;
  }
  const uint32_t id = table_->ReserveId();
  auto record = std::make_unique<SessionRecord>(std::make_unique<GroupSession>(
      id, pois_, tree_, std::move(group), session_options, tuning,
      &run_timer_));
  SessionRecord* r = table_->Insert(std::move(record));
  scheduler_->Admit(r);
  return id;
}

uint32_t Engine::AddSession(std::vector<const Trajectory*> group) {
  if (started_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "Engine::AddSession after Run/Start — use AdmitSession for mid-run "
        "admission");
  }
  return AdmitSession(std::move(group));
}

void Engine::RetireSession(uint32_t id, size_t at_timestamp) {
  FindChecked(id)->session->RequestRetire(at_timestamp);
}

void Engine::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    throw std::logic_error("Engine::Run/Start may be called once");
  }
  run_timer_.Reset();
  scheduler_->Start();
}

void Engine::Wait() {
  if (!started_.load(std::memory_order_acquire)) {
    throw std::logic_error("Engine::Wait before Run/Start");
  }
  scheduler_->WaitIdle();
  RebuildRoundStats();
}

void Engine::Shutdown() {
  Wait();
  stopped_.store(true, std::memory_order_release);
}

void Engine::Run() {
  Start();
  Shutdown();
}

void Engine::RebuildRoundStats() {
  EngineRoundStats stats;
  for (const Scheduler::Slot& slot : scheduler_->SnapshotSlots()) {
    stats.messages_per_round.Add(static_cast<double>(slot.messages));
    stats.recomputes_per_round.Add(static_cast<double>(slot.recomputes));
    stats.round_seconds.Add(slot.seconds);
    ++stats.rounds;
  }
  table_->ForEachOrdered([&stats](SessionRecord* r) {
    // Sessions admitted concurrently with this Wait (no hold held) may
    // still be running; fold only finalized ones — their mailbox fields
    // are no longer written, so the read is race-free.
    {
      std::lock_guard<std::mutex> lock(r->mu);
      if (!r->finalized) return;
    }
    stats.mailbox_peak_per_session.Add(
        static_cast<double>(r->session->mailbox_peak()));
    stats.mailbox_stalls_per_session.Add(
        static_cast<double>(r->session->stall_count()));
  });
  round_stats_ = stats;
}

SimMetrics Engine::TotalMetrics() const {
  SimMetrics total;
  table_->ForEachOrdered([&total](SessionRecord* r) {
    total.Merge(r->session->metrics());
  });
  return total;
}

uint64_t Engine::ResultDigest() const {
  Fnv1a fnv;
  table_->ForEachOrdered([&fnv](SessionRecord* r) {
    const GroupSession& s = *r->session;
    AddSessionResultToDigest(&fnv, s.metrics(), s.has_result(),
                             s.current_po());
  });
  return fnv.hash;
}

}  // namespace mpn
