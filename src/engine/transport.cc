#include "engine/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace mpn {

namespace {

using Clock = std::chrono::steady_clock;

/// Simulated-EINTR burst length for FaultKind::kEintrStorm — long enough
/// that a loop missing the retry would visibly fail, short enough to be
/// free in tests.
constexpr int kEintrStormLength = 8;

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string("mpn transport: ") + what + ": " +
                           std::strerror(errno));
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    ThrowErrno("fcntl(O_NONBLOCK)");
  }
}

Clock::time_point DeadlineFrom(double deadline_ms) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                deadline_ms));
}

void MakeTcpLoopbackPair(int fds[2]) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) ThrowErrno("socket(listener)");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // Ephemeral: getsockname reports the bound port.
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listener, 1) != 0) {
    const int saved = errno;
    ::close(listener);
    errno = saved;
    ThrowErrno("bind/listen(loopback)");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    const int saved = errno;
    ::close(listener);
    errno = saved;
    ThrowErrno("getsockname");
  }
  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  if (client < 0) {
    const int saved = errno;
    ::close(listener);
    errno = saved;
    ThrowErrno("socket(client)");
  }
  // A blocking connect to our own listening socket on loopback completes
  // as soon as the kernel queues the connection — no retry loop needed.
  if (::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(listener);
    ::close(client);
    errno = saved;
    ThrowErrno("connect(loopback)");
  }
  const int server = ::accept(listener, nullptr, nullptr);
  if (server < 0) {
    const int saved = errno;
    ::close(listener);
    ::close(client);
    errno = saved;
    ThrowErrno("accept(loopback)");
  }
  ::close(listener);
  // Frames are small and latency-sensitive (heartbeats, drain replies):
  // never let Nagle batch them.
  const int one = 1;
  (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  (void)::setsockopt(server, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fds[0] = client;
  fds[1] = server;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kShortIo:
      return "short";
    case FaultKind::kEintrStorm:
      return "eintr";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kTruncate:
      return "trunc";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kReset:
      return "reset";
  }
  return "unknown";
}

FaultKind ParseFaultKind(const std::string& name) {
  for (const FaultKind k :
       {FaultKind::kShortIo, FaultKind::kEintrStorm, FaultKind::kCorrupt,
        FaultKind::kTruncate, FaultKind::kStall, FaultKind::kReset}) {
    if (name == FaultKindName(k)) return k;
  }
  throw std::runtime_error("mpn transport: unknown fault kind: " + name);
}

Transport::Transport(int fd) : fd_(fd) { SetNonBlocking(fd_); }

Transport::Transport(Transport&& other) noexcept
    : fd_(other.fd_),
      frame_ops_(other.frame_ops_),
      armed_(std::move(other.armed_)),
      short_io_(other.short_io_),
      eintr_pending_(other.eintr_pending_),
      counters_(other.counters_),
      last_error_(std::move(other.last_error_)) {
  other.fd_ = -1;
}

Transport& Transport::operator=(Transport&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    frame_ops_ = other.frame_ops_;
    armed_ = std::move(other.armed_);
    short_io_ = other.short_io_;
    eintr_pending_ = other.eintr_pending_;
    counters_ = other.counters_;
    last_error_ = std::move(other.last_error_);
    other.fd_ = -1;
  }
  return *this;
}

void Transport::MakePair(TransportKind kind, Transport* a, Transport* b) {
  int fds[2];
  if (kind == TransportKind::kSocketPair) {
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      ThrowErrno("socketpair");
    }
  } else {
    MakeTcpLoopbackPair(fds);
  }
  *a = Transport(fds[0]);
  *b = Transport(fds[1]);
}

void Transport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Transport::ShutdownBoth() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Transport::Abort() {
  if (fd_ >= 0) {
    struct linger lg;
    lg.l_onoff = 1;
    lg.l_linger = 0;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  }
  Close();
}

IoStatus Transport::WaitReady(short events,
                              const double* deadline_left_ms) {
  for (;;) {
    int timeout = -1;
    if (deadline_left_ms != nullptr) {
      if (*deadline_left_ms <= 0) {
        last_error_ = "I/O deadline expired";
        return IoStatus::kDeadline;
      }
      // Round up so a sub-millisecond remainder still polls once.
      timeout = static_cast<int>(*deadline_left_ms) + 1;
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) {
        ++counters_.retries;
        continue;
      }
      ThrowErrno("poll");
    }
    if (rc == 0) {
      last_error_ = "I/O deadline expired";
      return IoStatus::kDeadline;
    }
    // POLLERR/POLLHUP fall through: the following send/recv reports the
    // precise errno (or EOF), which is more useful than guessing here.
    return IoStatus::kOk;
  }
}

IoStatus Transport::SendBytes(const uint8_t* data, size_t n,
                              double deadline_ms) {
  if (fd_ < 0) {
    last_error_ = "channel closed";
    return IoStatus::kClosed;
  }
  const bool bounded = deadline_ms > 0;
  const Clock::time_point deadline =
      bounded ? DeadlineFrom(deadline_ms) : Clock::time_point();
  while (n > 0) {
    if (eintr_pending_ > 0) {
      --eintr_pending_;
      ++counters_.retries;
      continue;
    }
    const size_t chunk = short_io_ ? 1 : n;
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
    const ssize_t w = ::send(fd_, data, chunk, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        ++counters_.retries;
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ++counters_.retries;
        double left = -1;
        if (bounded) {
          left = std::chrono::duration<double, std::milli>(deadline -
                                                           Clock::now())
                     .count();
        }
        const IoStatus st =
            WaitReady(POLLOUT, bounded ? &left : nullptr);
        if (st != IoStatus::kOk) return st;
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        last_error_ = std::strerror(errno);
        return IoStatus::kClosed;
      }
      ThrowErrno("send");
    }
    if (static_cast<size_t>(w) < n) ++counters_.partial_ops;
    data += w;
    n -= static_cast<size_t>(w);
  }
  return IoStatus::kOk;
}

IoStatus Transport::RecvBytes(uint8_t* data, size_t n, double deadline_ms,
                              size_t* received) {
  if (received != nullptr) *received = 0;
  if (fd_ < 0) {
    last_error_ = "channel closed";
    return IoStatus::kClosed;
  }
  const bool bounded = deadline_ms > 0;
  const Clock::time_point deadline =
      bounded ? DeadlineFrom(deadline_ms) : Clock::time_point();
  size_t got = 0;
  while (got < n) {
    if (eintr_pending_ > 0) {
      --eintr_pending_;
      ++counters_.retries;
      continue;
    }
    const size_t want = n - got;
    const size_t chunk = short_io_ ? 1 : want;
    const ssize_t r = ::recv(fd_, data + got, chunk, 0);
    if (r < 0) {
      if (errno == EINTR) {
        ++counters_.retries;
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ++counters_.retries;
        double left = -1;
        if (bounded) {
          left = std::chrono::duration<double, std::milli>(deadline -
                                                           Clock::now())
                     .count();
        }
        const IoStatus st = WaitReady(POLLIN, bounded ? &left : nullptr);
        if (st != IoStatus::kOk) {
          if (received != nullptr) *received = got;
          return st;
        }
        continue;
      }
      if (errno == ECONNRESET) {
        last_error_ = std::strerror(errno);
        if (received != nullptr) *received = got;
        return IoStatus::kClosed;
      }
      ThrowErrno("recv");
    }
    if (r == 0) {
      last_error_ = got == 0 ? "peer closed" : "peer closed mid-frame";
      if (received != nullptr) *received = got;
      return IoStatus::kClosed;
    }
    if (static_cast<size_t>(r) < want) ++counters_.partial_ops;
    got += static_cast<size_t>(r);
  }
  if (received != nullptr) *received = got;
  return IoStatus::kOk;
}

void Transport::ArmFault(size_t frame, FaultKind kind) {
  ArmedFault f;
  f.frame = frame;
  f.kind = kind;
  armed_.push_back(f);
}

bool Transport::BeginFrameOp(FaultKind* kind) {
  short_io_ = false;
  eintr_pending_ = 0;
  const size_t index = frame_ops_++;
  for (size_t i = 0; i < armed_.size(); ++i) {
    if (armed_[i].frame != index) continue;
    const FaultKind k = armed_[i].kind;
    armed_.erase(armed_.begin() + static_cast<ptrdiff_t>(i));
    ++counters_.faults_injected;
    if (k == FaultKind::kShortIo) short_io_ = true;
    if (k == FaultKind::kEintrStorm) eintr_pending_ = kEintrStormLength;
    if (kind != nullptr) *kind = k;
    return true;
  }
  return false;
}

}  // namespace mpn
