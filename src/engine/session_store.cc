#include "engine/session_store.h"

#include <errno.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "engine/session_codec.h"
#include "util/macros.h"

namespace mpn {

namespace {
constexpr size_t kMinExtentBytes = 256;
constexpr size_t kNoRetire = std::numeric_limits<size_t>::max();
}  // namespace

SessionStore::SessionStore(const MemoryBudget& budget, SessionFactory factory)
    : budget_(budget), factory_(std::move(factory)) {}

SessionStore::~SessionStore() {
  if (fd_ >= 0) close(fd_);
}

uint64_t SessionStore::LocalityKey(uint32_t id, size_t next_t) {
  const uint64_t clamped =
      next_t < 0xffffffffu ? static_cast<uint64_t>(next_t) : 0xffffffffu;
  return (static_cast<uint64_t>(id) << 32) | clamped;
}

size_t SessionStore::FinalBytesEstimate(const SessionFinalResult& fr) {
  return 128 + fr.advance_seconds.size() * sizeof(double);
}

void SessionStore::SetAccountedLocked(SessionRecord* r, size_t bytes) {
  stats_.resident_bytes -= r->accounted_bytes;
  stats_.resident_bytes += bytes;
  r->accounted_bytes = bytes;
  if (stats_.resident_bytes > stats_.peak_resident_bytes) {
    stats_.peak_resident_bytes = stats_.resident_bytes;
  }
}

void SessionStore::InsertActiveLocked(SessionRecord* r, size_t next_t) {
  const uint64_t key = LocalityKey(r->id, next_t);
  active_[key] = r;
  r->store_key = key;
}

void SessionStore::EraseActiveLocked(SessionRecord* r) {
  if (r->store_key == kNoKey) return;
  active_.erase(r->store_key);
  r->store_key = kNoKey;
}

void SessionStore::OnAdmit(SessionRecord* r) {
  std::lock_guard<std::mutex> rl(r->mu);
  // A zero-horizon session may already have finalized (and compacted)
  // inside Scheduler::Admit — compaction did the accounting then.
  if (r->finalized || r->spilled || r->session == nullptr) return;
  const size_t est = r->session->StateBytesEstimate();
  const size_t next_t = r->session->next_timestamp();
  std::lock_guard<std::mutex> sl(mu_);
  SetAccountedLocked(r, est);
  if (enabled()) InsertActiveLocked(r, next_t);
}

void SessionStore::OnEventDone(SessionRecord* r) {
  {
    std::lock_guard<std::mutex> rl(r->mu);
    if (!r->finalized && !r->spilled && r->session != nullptr) {
      const size_t est = r->session->StateBytesEstimate();
      const size_t next_t = r->session->next_timestamp();
      std::lock_guard<std::mutex> sl(mu_);
      SetAccountedLocked(r, est);
      if (enabled()) {
        EraseActiveLocked(r);
        if (!r->accessor_pinned) InsertActiveLocked(r, next_t);
      }
    }
  }
  Rebalance();
}

void SessionStore::CompactFinalizedLocked(SessionRecord* r) {
  if (r->final_result != nullptr || r->session == nullptr) return;
  r->final_result =
      std::make_unique<SessionFinalResult>(r->session->ExtractFinalResult());
  r->session.reset();
  const size_t est = FinalBytesEstimate(*r->final_result);
  std::lock_guard<std::mutex> sl(mu_);
  EraseActiveLocked(r);
  SetAccountedLocked(r, est);
  if (enabled() && !r->accessor_pinned) finals_.push_back(r);
}

void SessionStore::EnsureResidentLocked(SessionRecord* r, bool pin) {
  if (pin) r->accessor_pinned = true;
  if (!r->spilled) return;
  const std::vector<uint8_t> bytes =
      ReadExtent(r->spill_offset, r->spill_length);
  WireReader reader(bytes);
  const SnapshotKind kind = ReadSnapshotHeader(&reader);
  bool live = false;
  size_t est = 0;
  if (kind == SnapshotKind::kLive) {
    const GroupSession::State state = DecodeLiveSession(&reader);
    std::unique_ptr<GroupSession> session =
        factory_(r->id, r->group, r->tuning);
    session->ImportState(state);
    if (r->pending_retire_at != kNoRetire) {
      session->RequestRetire(r->pending_retire_at);
      r->pending_retire_at = kNoRetire;
    }
    r->session = std::move(session);
    est = r->session->StateBytesEstimate();
    live = true;
  } else {
    r->final_result =
        std::make_unique<SessionFinalResult>(DecodeFinalSession(&reader));
    est = FinalBytesEstimate(*r->final_result);
  }
  r->spilled = false;
  std::lock_guard<std::mutex> sl(mu_);
  FreeExtentLocked(r->spill_offset, r->spill_capacity);
  ++stats_.rehydrated_sessions;
  SetAccountedLocked(r, est);
  if (!r->accessor_pinned) {
    if (live) {
      InsertActiveLocked(r, r->session->next_timestamp());
    } else {
      finals_.push_back(r);
    }
  }
}

void SessionStore::WithResult(
    SessionRecord* r,
    const std::function<void(const SessionFinalResult&)>& fn) {
  std::lock_guard<std::mutex> rl(r->mu);
  if (r->final_result != nullptr) {
    fn(*r->final_result);
    return;
  }
  if (r->session != nullptr) {
    const GroupSession& s = *r->session;
    SessionFinalResult tmp;
    tmp.metrics = s.metrics();
    tmp.has_result = s.has_result();
    tmp.po = s.current_po();
    tmp.mailbox_peak = s.mailbox_peak();
    tmp.stall_count = s.stall_count();
    tmp.dropped_count = s.dropped_count();
    tmp.advance_seconds = s.advance_seconds();
    fn(tmp);
    return;
  }
  MPN_ASSERT(r->spilled);
  const std::vector<uint8_t> bytes =
      ReadExtent(r->spill_offset, r->spill_length);
  WireReader reader(bytes);
  const SnapshotKind kind = ReadSnapshotHeader(&reader);
  if (kind == SnapshotKind::kFinal) {
    const SessionFinalResult tmp = DecodeFinalSession(&reader);
    fn(tmp);
    return;
  }
  GroupSession::State state = DecodeLiveSession(&reader);
  SessionFinalResult tmp;
  tmp.metrics = state.metrics;
  tmp.has_result = state.has_result;
  tmp.po = state.current_po;
  tmp.mailbox_peak = state.mailbox_peak;
  tmp.stall_count = state.stall_count;
  tmp.dropped_count = state.dropped_count;
  // Processed prefix only — the tail of a live session's trace is still
  // zero, and the mid-run readers (drain, digest) never consume it.
  tmp.advance_seconds = std::move(state.advance_at);
  fn(tmp);
}

void SessionStore::Rebalance() {
  if (!enabled()) return;
  while (true) {
    SessionRecord* victim = nullptr;
    {
      std::lock_guard<std::mutex> sl(mu_);
      if (stats_.resident_bytes <= budget_.bytes_cap) return;
      if (!finals_.empty()) {
        victim = finals_.front();
        finals_.pop_front();
      } else if (!active_.empty()) {
        auto it = std::prev(active_.end());
        victim = it->second;
        victim->store_key = kNoKey;
        active_.erase(it);
      } else {
        // Everything resident is pinned or mid-event: the cap is
        // best-effort until those sessions come back through OnEventDone.
        return;
      }
    }
    // The store mutex is released: lock the victim's record mutex fresh
    // (never the other way around) and re-check eligibility — the
    // scheduler may have re-armed it in between.
    std::lock_guard<std::mutex> rl(victim->mu);
    SpillIfEligibleLocked(victim);
  }
}

void SessionStore::SpillIfEligibleLocked(SessionRecord* r) {
  if (r->spilled || r->accessor_pinned) return;
  WireBuffer buf;
  if (r->final_result != nullptr) {
    EncodeFinalSession(*r->final_result, &buf);
    r->final_result.reset();
  } else if (r->session != nullptr && !r->event_running && !r->job_running &&
             !r->result_ready && !r->finalized && !r->session->done() &&
             r->session->MailboxEmpty()) {
    // event_queued is fine: RunEvent rehydrates before touching the
    // session. Under the flags above the mailbox is provably empty and no
    // recomputation is in flight, so ExportState is a clean boundary.
    const GroupSession::State state = r->session->ExportState();
    r->cached_next_t = state.next_t;
    EncodeLiveSession(state, &buf);
    r->session.reset();
  } else {
    // Popped but no longer eligible; it re-registers via OnEventDone.
    return;
  }
  r->spilled = true;
  size_t offset = 0;
  size_t capacity = 0;
  {
    std::lock_guard<std::mutex> sl(mu_);
    EnsureFileLocked();
    offset = AllocExtentLocked(buf.size(), &capacity);
  }
  // The extent is exclusively ours: positioned write needs no lock.
  WriteExtent(offset, buf.data());
  r->spill_offset = offset;
  r->spill_length = buf.size();
  r->spill_capacity = capacity;
  std::lock_guard<std::mutex> sl(mu_);
  ++stats_.spilled_sessions;
  stats_.spilled_bytes += buf.size();
  SetAccountedLocked(r, 0);
}

MemoryStats SessionStore::stats() const {
  std::lock_guard<std::mutex> sl(mu_);
  return stats_;
}

void SessionStore::EnsureFileLocked() {
  if (fd_ >= 0) return;
  std::string dir = budget_.spill_dir;
  if (dir.empty()) {
    const char* tmp = getenv("TMPDIR");
    dir = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
  }
  std::string templ = dir + "/mpn-spill-XXXXXX";
  std::vector<char> path(templ.begin(), templ.end());
  path.push_back('\0');
  const int fd = mkstemp(path.data());
  if (fd < 0) {
    throw std::runtime_error("session store: cannot create spill file in " +
                             dir + ": " + strerror(errno));
  }
  // Anonymous from birth: the extents die with the process, crash or not.
  unlink(path.data());
  fd_ = fd;
}

size_t SessionStore::AllocExtentLocked(size_t length, size_t* capacity) {
  size_t cap = kMinExtentBytes;
  while (cap < length) cap <<= 1;
  *capacity = cap;
  auto it = free_lists_.find(cap);
  if (it != free_lists_.end() && !it->second.empty()) {
    const size_t offset = it->second.back();
    it->second.pop_back();
    return offset;
  }
  const size_t offset = file_end_;
  file_end_ += cap;
  return offset;
}

void SessionStore::FreeExtentLocked(size_t offset, size_t capacity) {
  free_lists_[capacity].push_back(offset);
}

void SessionStore::WriteExtent(size_t offset,
                               const std::vector<uint8_t>& bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n =
        pwrite(fd_, bytes.data() + done, bytes.size() - done,
               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("session store: spill write: ") +
                               strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
}

std::vector<uint8_t> SessionStore::ReadExtent(size_t offset,
                                              size_t length) const {
  std::vector<uint8_t> bytes(length);
  size_t done = 0;
  while (done < length) {
    const ssize_t n = pread(fd_, bytes.data() + done, length - done,
                            static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("session store: spill read: ") +
                               strerror(errno));
    }
    if (n == 0) {
      throw std::runtime_error("session store: short spill read");
    }
    done += static_cast<size_t>(n);
  }
  return bytes;
}

}  // namespace mpn
