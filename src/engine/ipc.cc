#include "engine/ipc.h"

#include <csignal>
#include <cstdlib>
#include <cstring>

#include "util/macros.h"
#include "util/rng.h"

namespace mpn {

namespace {

/// Frames above this are a protocol bug or a corrupted length prefix, not
/// a legitimate payload (the largest real frame — a drained worker's
/// result snapshot — is a few MB at most).
constexpr uint32_t kMaxFrameBytes = 256u * 1024u * 1024u;

void PutLe32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = (v >> (8 * i)) & 0xFF;
}

uint32_t GetLe32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

std::string TrimToken(const std::string& tok) {
  const size_t b = tok.find_first_not_of(" \t");
  if (b == std::string::npos) return std::string();
  const size_t e = tok.find_last_not_of(" \t");
  return tok.substr(b, e - b + 1);
}

}  // namespace

void WireBuffer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) data_.push_back((v >> (8 * i)) & 0xFF);
}

void WireBuffer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) data_.push_back((v >> (8 * i)) & 0xFF);
}

void WireBuffer::PatchU64(size_t offset, uint64_t v) {
  MPN_ASSERT(offset + 8 <= data_.size());
  for (int i = 0; i < 8; ++i) data_[offset + i] = (v >> (8 * i)) & 0xFF;
}

void WireBuffer::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireBuffer::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  data_.insert(data_.end(), s.begin(), s.end());
}

void WireReader::Need(size_t n) const {
  if (size_ - off_ < n) {
    throw FrameError("truncated frame payload");
  }
}

uint8_t WireReader::GetU8() {
  Need(1);
  return data_[off_++];
}

uint32_t WireReader::GetU32() {
  Need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[off_++]) << (8 * i);
  }
  return v;
}

uint64_t WireReader::GetU64() {
  Need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[off_++]) << (8 * i);
  }
  return v;
}

double WireReader::GetDouble() {
  const uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::GetString() {
  const uint32_t n = GetU32();
  Need(n);
  std::string s(reinterpret_cast<const char*>(data_ + off_), n);
  off_ += n;
  return s;
}

uint32_t Crc32(const uint8_t* data, size_t n) {
  // Table-driven reflected CRC32 (IEEE 802.3). The table is built once;
  // function-local static init is thread-safe.
  static const auto* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

const size_t CrashPlan::kNoCrash = static_cast<size_t>(-1);

size_t CrashPlan::Take(size_t shard) {
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].shard == shard) {
      const size_t t = events[i].timestamp;
      events.erase(events.begin() + static_cast<ptrdiff_t>(i));
      return t;
    }
  }
  return kNoCrash;
}

CrashPlan CrashPlan::Parse(const std::string& spec) {
  CrashPlan plan;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string tok = TrimToken(spec.substr(pos, comma - pos));
    pos = comma + 1;
    if (tok.empty()) continue;  // trailing commas are ok
    const size_t colon = tok.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == tok.size()) {
      throw std::runtime_error(
          "mpn ipc: malformed crash plan entry (want shard:timestamp): " +
          tok);
    }
    char* end = nullptr;
    Event ev;
    ev.shard = std::strtoull(tok.c_str(), &end, 10);
    if (end != tok.c_str() + colon) {
      throw std::runtime_error("mpn ipc: malformed crash plan shard: " + tok);
    }
    ev.timestamp = std::strtoull(tok.c_str() + colon + 1, &end, 10);
    if (end != tok.c_str() + tok.size()) {
      throw std::runtime_error("mpn ipc: malformed crash plan timestamp: " +
                               tok);
    }
    plan.events.push_back(ev);
  }
  return plan;
}

CrashPlan CrashPlan::FromEnv() {
  const char* env = std::getenv("MPN_CRASH_PLAN");
  if (env == nullptr || *env == '\0') return CrashPlan();
  return Parse(env);
}

bool FaultPlan::IsFatal(FaultKind kind) {
  return kind == FaultKind::kCorrupt || kind == FaultKind::kTruncate ||
         kind == FaultKind::kStall || kind == FaultKind::kReset;
}

std::vector<FaultPlan::Event> FaultPlan::TakeIncarnation(size_t shard) {
  std::vector<Event> batch;
  for (size_t i = 0; i < events.size();) {
    if (events[i].shard != shard) {
      ++i;
      continue;
    }
    batch.push_back(events[i]);
    events.erase(events.begin() + static_cast<ptrdiff_t>(i));
    if (IsFatal(batch.back().kind)) break;
  }
  return batch;
}

FaultPlan FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string tok = TrimToken(spec.substr(pos, comma - pos));
    pos = comma + 1;
    if (tok.empty()) continue;
    const size_t c1 = tok.find(':');
    const size_t c2 = c1 == std::string::npos ? std::string::npos
                                              : tok.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos || c1 == 0 ||
        c2 == c1 + 1 || c2 + 1 == tok.size()) {
      throw std::runtime_error(
          "mpn ipc: malformed fault plan entry (want shard:frame:kind): " +
          tok);
    }
    char* end = nullptr;
    Event ev;
    ev.shard = std::strtoull(tok.c_str(), &end, 10);
    if (end != tok.c_str() + c1) {
      throw std::runtime_error("mpn ipc: malformed fault plan shard: " + tok);
    }
    ev.frame = std::strtoull(tok.c_str() + c1 + 1, &end, 10);
    if (end != tok.c_str() + c2) {
      throw std::runtime_error("mpn ipc: malformed fault plan frame: " + tok);
    }
    ev.kind = ParseFaultKind(tok.substr(c2 + 1));
    plan.events.push_back(ev);
  }
  return plan;
}

FaultPlan FaultPlan::FromSeed(uint64_t seed, size_t shards) {
  FaultPlan plan;
  if (shards == 0) return plan;
  Rng rng(seed);
  const size_t count = 1 + static_cast<size_t>(rng.UniformInt(0, 1));
  for (size_t i = 0; i < count; ++i) {
    Event ev;
    ev.shard = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(shards) - 1));
    // Early frame indices: the first frames of a shard are its admit
    // receives, so low indices are the ones a small workload reaches.
    ev.frame = static_cast<size_t>(rng.UniformInt(0, 11));
    static const FaultKind kKinds[] = {
        FaultKind::kShortIo, FaultKind::kEintrStorm, FaultKind::kCorrupt,
        FaultKind::kTruncate, FaultKind::kStall, FaultKind::kReset};
    ev.kind = kKinds[rng.UniformInt(0, 5)];
    plan.events.push_back(ev);
  }
  return plan;
}

FaultPlan FaultPlan::FromEnv(size_t shards) {
  const char* env = std::getenv("MPN_FAULT_PLAN");
  if (env == nullptr || *env == '\0') return FaultPlan();
  const std::string spec(env);
  if (spec.rfind("seed:", 0) == 0) {
    char* end = nullptr;
    const uint64_t seed = std::strtoull(spec.c_str() + 5, &end, 10);
    if (end != spec.c_str() + spec.size()) {
      throw std::runtime_error("mpn ipc: malformed fault plan seed: " + spec);
    }
    return FromSeed(seed, shards);
  }
  return Parse(spec);
}

void IpcChannel::MakePair(TransportKind kind, IpcChannel* a, IpcChannel* b) {
  Transport ta, tb;
  Transport::MakePair(kind, &ta, &tb);
  *a = IpcChannel(std::move(ta));
  *b = IpcChannel(std::move(tb));
}

void IpcChannel::MakePair(IpcChannel* a, IpcChannel* b) {
  MakePair(TransportKind::kSocketPair, a, b);
}

IoStatus IpcChannel::SendFrame(const WireBuffer& frame, double deadline_ms) {
  if (!transport_.valid()) return IoStatus::kClosed;
  if (frame.size() > kMaxFrameBytes) {
    // Mirror the receive-side limit at the sender: an oversized frame is
    // a protocol bug and must fail here, not desync the peer's stream.
    throw FrameError("frame length exceeds limit");
  }

  FaultKind fault = FaultKind::kShortIo;
  bool corrupt = false;
  bool truncate = false;
  if (transport_.BeginFrameOp(&fault)) {
    switch (fault) {
      case FaultKind::kStall:
        // "Hung, not dead": SIGSTOP freezes every thread of this process
        // until the coordinator's heartbeat machinery SIGKILLs it (or a
        // SIGCONT resumes it, after which the send proceeds normally).
        ::raise(SIGSTOP);
        break;
      case FaultKind::kReset:
        transport_.Abort();
        return IoStatus::kClosed;
      case FaultKind::kCorrupt:
        corrupt = true;
        break;
      case FaultKind::kTruncate:
        truncate = true;
        break;
      default:
        break;  // kShortIo / kEintrStorm shape the byte loops internally.
    }
  }

  const uint32_t len = static_cast<uint32_t>(frame.size());
  uint32_t crc = Crc32(frame.data().data(), frame.size());
  // A corrupt fault on an empty payload damages the checksum field
  // instead, so the fault is never a silent no-op.
  if (corrupt && len == 0) crc ^= 0xFFu;
  uint8_t header[kHeaderBytes];
  PutLe32(header + 0, kFrameMagic);
  PutLe32(header + 4, kFrameVersion);
  PutLe32(header + 8, len);
  PutLe32(header + 12, crc);

  if (truncate) {
    // Tear the frame: deliver a valid-looking prefix, then hang up, so
    // the receiver observes EOF mid-frame. An empty payload tears inside
    // the header instead.
    const size_t header_part = len > 0 ? kHeaderBytes : kHeaderBytes / 2;
    (void)transport_.SendBytes(header, header_part, deadline_ms);
    if (len > 0) {
      (void)transport_.SendBytes(frame.data().data(), len / 2, deadline_ms);
    }
    transport_.ShutdownBoth();
    return IoStatus::kClosed;
  }

  IoStatus st = transport_.SendBytes(header, kHeaderBytes, deadline_ms);
  if (st != IoStatus::kOk) return st;
  if (len == 0) return IoStatus::kOk;
  if (corrupt) {
    // Flip one payload byte *after* the CRC was computed — the receiver
    // must detect the mismatch and raise FrameError.
    std::vector<uint8_t> dirty(frame.data());
    dirty[0] ^= 0x01u;
    return transport_.SendBytes(dirty.data(), len, deadline_ms);
  }
  return transport_.SendBytes(frame.data().data(), len, deadline_ms);
}

IoStatus IpcChannel::RecvFrame(std::vector<uint8_t>* payload,
                               double first_byte_deadline_ms) {
  if (!transport_.valid()) return IoStatus::kClosed;

  FaultKind fault = FaultKind::kShortIo;
  bool corrupt = false;
  if (transport_.BeginFrameOp(&fault)) {
    switch (fault) {
      case FaultKind::kStall:
        ::raise(SIGSTOP);
        break;
      case FaultKind::kReset:
        transport_.Abort();
        return IoStatus::kClosed;
      case FaultKind::kTruncate:
        // Receive-side truncation degrades to losing the stream: we hang
        // up before the frame, so the peer's next op fails instead.
        transport_.ShutdownBoth();
        return IoStatus::kClosed;
      case FaultKind::kCorrupt:
        corrupt = true;
        break;
      default:
        break;
    }
  }

  // The first byte is bounded by the caller's deadline (frame-start
  // slice); a kDeadline here consumed nothing and the stream stays
  // aligned, so the caller may probe liveness and retry. Once a frame
  // has begun, the per-op io deadline applies — a peer that stops
  // mid-frame is broken, not merely idle.
  uint8_t header[kHeaderBytes];
  size_t got = 0;
  IoStatus st =
      transport_.RecvBytes(header, 1, first_byte_deadline_ms, &got);
  if (st != IoStatus::kOk) return st;
  st = transport_.RecvBytes(header + 1, kHeaderBytes - 1, io_deadline_ms_,
                            &got);
  if (st != IoStatus::kOk) {
    throw FrameError(st == IoStatus::kDeadline
                         ? "peer wedged mid-frame (header)"
                         : "peer closed mid-frame (header)");
  }

  const uint32_t magic = GetLe32(header + 0);
  const uint32_t version = GetLe32(header + 4);
  const uint32_t len = GetLe32(header + 8);
  const uint32_t crc = GetLe32(header + 12);
  if (magic != kFrameMagic) throw FrameError("bad frame magic");
  if (version != kFrameVersion) {
    throw FrameError("protocol version mismatch");
  }
  if (len > kMaxFrameBytes) throw FrameError("frame length exceeds limit");

  payload->resize(len);
  if (len > 0) {
    st = transport_.RecvBytes(payload->data(), len, io_deadline_ms_, &got);
    if (st != IoStatus::kOk) {
      throw FrameError(st == IoStatus::kDeadline
                           ? "peer wedged mid-frame (payload)"
                           : "peer closed mid-frame (payload)");
    }
  }

  // A receive-side corrupt fault simulates wire damage after the bytes
  // arrived; either way the CRC must catch it.
  uint32_t expect = crc;
  if (corrupt) {
    if (len > 0) {
      (*payload)[0] ^= 0x01u;
    } else {
      expect ^= 0xFFu;
    }
  }
  if (Crc32(payload->data(), payload->size()) != expect) {
    throw FrameError("frame CRC mismatch");
  }
  return IoStatus::kOk;
}

bool IpcChannel::Send(const WireBuffer& frame) {
  return SendFrame(frame, io_deadline_ms_) == IoStatus::kOk;
}

bool IpcChannel::Recv(std::vector<uint8_t>* payload) {
  return RecvFrame(payload, 0) == IoStatus::kOk;
}

}  // namespace mpn
