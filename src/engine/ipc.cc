#include "engine/ipc.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace mpn {

namespace {

/// Frames above this are a protocol bug or a corrupted length prefix, not
/// a legitimate payload (the largest real frame — a drained worker's
/// result snapshot — is a few MB at most).
constexpr uint32_t kMaxFrameBytes = 256u * 1024u * 1024u;

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string("mpn ipc: ") + what + ": " +
                           std::strerror(errno));
}

}  // namespace

void WireBuffer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) data_.push_back((v >> (8 * i)) & 0xFF);
}

void WireBuffer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) data_.push_back((v >> (8 * i)) & 0xFF);
}

void WireBuffer::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireBuffer::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  data_.insert(data_.end(), s.begin(), s.end());
}

void WireReader::Need(size_t n) const {
  if (size_ - off_ < n) {
    throw std::runtime_error("mpn ipc: truncated frame payload");
  }
}

uint8_t WireReader::GetU8() {
  Need(1);
  return data_[off_++];
}

uint32_t WireReader::GetU32() {
  Need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[off_++]) << (8 * i);
  }
  return v;
}

uint64_t WireReader::GetU64() {
  Need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[off_++]) << (8 * i);
  }
  return v;
}

double WireReader::GetDouble() {
  const uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::GetString() {
  const uint32_t n = GetU32();
  Need(n);
  std::string s(reinterpret_cast<const char*>(data_ + off_), n);
  off_ += n;
  return s;
}

const size_t CrashPlan::kNoCrash = static_cast<size_t>(-1);

size_t CrashPlan::Take(size_t shard) {
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].shard == shard) {
      const size_t t = events[i].timestamp;
      events.erase(events.begin() + static_cast<ptrdiff_t>(i));
      return t;
    }
  }
  return kNoCrash;
}

CrashPlan CrashPlan::Parse(const std::string& spec) {
  CrashPlan plan;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string tok = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding whitespace; empty tokens (trailing commas) are ok.
    const size_t b = tok.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const size_t e = tok.find_last_not_of(" \t");
    tok = tok.substr(b, e - b + 1);
    const size_t colon = tok.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == tok.size()) {
      throw std::runtime_error(
          "mpn ipc: malformed crash plan entry (want shard:timestamp): " +
          tok);
    }
    char* end = nullptr;
    Event ev;
    ev.shard = std::strtoull(tok.c_str(), &end, 10);
    if (end != tok.c_str() + colon) {
      throw std::runtime_error("mpn ipc: malformed crash plan shard: " + tok);
    }
    ev.timestamp = std::strtoull(tok.c_str() + colon + 1, &end, 10);
    if (end != tok.c_str() + tok.size()) {
      throw std::runtime_error("mpn ipc: malformed crash plan timestamp: " +
                               tok);
    }
    plan.events.push_back(ev);
  }
  return plan;
}

CrashPlan CrashPlan::FromEnv() {
  const char* env = std::getenv("MPN_CRASH_PLAN");
  if (env == nullptr || *env == '\0') return CrashPlan();
  return Parse(env);
}

IpcChannel& IpcChannel::operator=(IpcChannel&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void IpcChannel::MakePair(IpcChannel* a, IpcChannel* b) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    ThrowErrno("socketpair");
  }
  *a = IpcChannel(fds[0]);
  *b = IpcChannel(fds[1]);
}

void IpcChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool IpcChannel::Send(const WireBuffer& frame) {
  if (fd_ < 0) return false;
  if (frame.size() > kMaxFrameBytes) {
    // Mirror the receive-side limit at the sender: an oversized frame is
    // a protocol bug and must fail here, not desync the peer's stream
    // (the 32-bit length prefix would silently truncate past 4 GiB).
    throw std::runtime_error("mpn ipc: frame length exceeds limit");
  }
  uint8_t header[4];
  const uint32_t len = static_cast<uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i) header[i] = (len >> (8 * i)) & 0xFF;

  const auto send_all = [this](const uint8_t* p, size_t n) {
    while (n > 0) {
      // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
      const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET) return false;
        ThrowErrno("send");
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return true;
  };
  if (!send_all(header, sizeof(header))) return false;
  return send_all(frame.data().data(), frame.size());
}

bool IpcChannel::Recv(std::vector<uint8_t>* payload) {
  if (fd_ < 0) return false;
  const auto recv_all = [this](uint8_t* p, size_t n) -> int {
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd_, p + got, n - got, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) return 0;  // peer died: treat as EOF
        ThrowErrno("recv");
      }
      if (r == 0) {
        // Clean EOF only between frames; inside one it is truncation.
        if (got == 0) return 0;
        throw std::runtime_error("mpn ipc: peer closed mid-frame");
      }
      got += static_cast<size_t>(r);
    }
    return 1;
  };

  uint8_t header[4];
  if (recv_all(header, sizeof(header)) == 0) return false;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    throw std::runtime_error("mpn ipc: frame length exceeds limit");
  }
  payload->resize(len);
  if (len > 0 && recv_all(payload->data(), len) == 0) {
    throw std::runtime_error("mpn ipc: peer closed mid-frame");
  }
  return true;
}

}  // namespace mpn
