// Multi-process engine sharding: a ClusterEngine forks N worker processes,
// each running an Engine (engine/engine.h) over its shard of groups, with
// admissions and retirements routed by group_id % N over length-prefixed
// binary frames on socketpair(2) pipes (engine/ipc.h). No network is
// involved: the coordinator forks after the immutable world (POIs, R-tree)
// is built, so workers share it copy-on-write; only per-group data
// (trajectories, tuning) and results cross the process boundary.
//
// Ids and routing: the coordinator assigns dense global session ids in
// admission order; id g lives on worker g % N as that worker's local
// session g / N (per-pipe FIFO keeps per-worker admission order equal to
// global order restricted to the shard). When a drain completes, each
// worker ships every session's deterministic result fields plus its
// per-timestamp slot totals; the coordinator reassembles the per-session
// stream in global id order and feeds it through the same digest code the
// single-process engine uses (engine/digest.h) — so ResultDigest() is
// bit-identical to one Engine over the same groups, for any worker count
// and any admission interleaving. Round-stat counters re-aggregate with
// the same commutative per-timestamp sums and are bit-identical too;
// wall-clock columns (seconds, mailbox marks) are machine-dependent as
// always.
//
// Serving loop: workers run Engine::Start immediately and then serve
// frames forever — admit, retire, drain (Engine::Wait + result snapshot),
// shutdown — so a cluster supports repeated AdmitSession/Wait() cycles
// exactly like the single-process serving loop.
//
// Robustness: a worker that exits mid-run closes its socketpair end, so
// the coordinator's next Send/Recv fails instead of hanging — Wait() then
// throws std::runtime_error naming the failing shard. Double Start() and
// AdmitSession after Shutdown() are hard std::logic_errors. See
// docs/ARCHITECTURE.md §5c for the protocol.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/ipc.h"

namespace mpn {

/// Cluster configuration.
struct ClusterOptions {
  /// Worker processes (shards). Groups are routed by group_id % workers.
  size_t workers = 2;
  /// Per-worker engine configuration (thread pool size, sim options, ...).
  EngineOptions engine;
};

/// Coordinator of a multi-process engine cluster. Mirrors the Engine
/// lifecycle API; calls are serialized internally — the concurrency lives
/// in the worker processes. A transport failure (e.g. a worker death
/// surfaced by a throwing Wait) latches the cluster as failed: further
/// admits/drains throw instead of risking out-of-phase replies, and the
/// result accessors keep returning the last successful drain's snapshot.
class ClusterEngine {
 public:
  /// `pois` and `tree` must be fully built before Start() forks the
  /// workers and must outlive the cluster (workers inherit them
  /// copy-on-write).
  ClusterEngine(const std::vector<Point>* pois, const RTree* tree,
                const ClusterOptions& options);
  ~ClusterEngine();

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  /// Registers one group; returns its global session id (dense, in
  /// admission order). The trajectories are serialized into the admit
  /// frame, so they only need to stay alive for the duration of the call.
  /// Throws std::logic_error after Shutdown().
  uint32_t AdmitSession(const std::vector<const Trajectory*>& group,
                        const SessionTuning& tuning = SessionTuning());

  /// Deterministically truncates session `id`'s horizon at `at_timestamp`
  /// (see Engine::RetireSession; Engine::kRetireNow asks for the next
  /// event boundary instead, which is wall-clock dependent).
  void RetireSession(uint32_t id, size_t at_timestamp = Engine::kRetireNow);

  /// Forks the worker processes (each starts its engine immediately) and
  /// flushes admissions queued before Start. Throws std::logic_error when
  /// called twice.
  void Start();

  /// Serving-loop drain: asks every worker to drain (Engine::Wait) and
  /// collects their result snapshots. Valid results afterwards; more
  /// admissions may follow. Throws std::runtime_error naming the shard
  /// when a worker exited instead of draining (which latches the cluster
  /// as failed — see RequireHealthy); std::logic_error before Start.
  void Wait();

  /// Wait() + stop the workers (graceful shutdown frames, then reap).
  /// AdmitSession afterwards is a hard std::logic_error. Idempotent.
  void Shutdown();

  /// Start() + Shutdown() — one-shot drain over the queued admissions.
  void Run();

  size_t worker_count() const { return options_.workers; }
  size_t session_count() const { return next_id_; }

  /// Per-session results (valid after Wait), indexed by global id.
  const SimMetrics& session_metrics(uint32_t id) const;
  uint32_t session_po(uint32_t id) const;
  bool session_has_result(uint32_t id) const;
  size_t session_mailbox_peak(uint32_t id) const;
  size_t session_stall_count(uint32_t id) const;

  /// Merged metrics across all sessions (valid after Wait).
  SimMetrics TotalMetrics() const;

  /// Cluster-level per-timestamp aggregates (valid after Wait): worker
  /// slot totals summed per timestamp, then folded exactly like the
  /// single-process engine folds its own slots.
  const EngineRoundStats& round_stats() const { return round_stats_; }

  /// Bit-identical to Engine::ResultDigest() over the same groups in the
  /// same admission order, for any worker count (valid after Wait).
  uint64_t ResultDigest() const;

  /// Test hook: SIGKILLs shard's worker process so the robustness paths
  /// (Send failure, EOF instead of a drain reply) can be exercised.
  void KillWorkerForTest(size_t shard);

 private:
  struct Worker {
    pid_t pid = -1;
    IpcChannel channel;
    bool reaped = false;
  };

  /// One session's deterministic result fields plus observability marks,
  /// as shipped by its worker.
  struct SessionResult {
    SimMetrics metrics;
    bool has_result = false;
    uint32_t po = 0;
    uint64_t mailbox_peak = 0;
    uint64_t stalls = 0;
  };

  /// Cluster-level per-timestamp totals (mirrors Scheduler::Slot).
  struct SlotTotals {
    uint64_t messages = 0;
    uint64_t recomputes = 0;
    double seconds = 0.0;
  };

  void RequireStarted() const;
  void RequireServing() const;
  /// A transport failure (dead or misbehaving worker) poisons the
  /// cluster: replies may be out of phase with requests, so refreshed
  /// results could silently be wrong. Every subsequent admit/retire/
  /// drain throws; results from the last *successful* Wait stay
  /// readable.
  void RequireHealthy() const;
  const SessionResult& ResultChecked(uint32_t id) const;
  /// Sends `frame` to `shard`, throwing std::runtime_error naming the
  /// shard when the worker is gone.
  void SendOrThrow(size_t shard, const WireBuffer& frame);
  /// Receives one frame from `shard`; throws on EOF or a kWorkerError
  /// reply, naming the shard (and quoting the worker's error).
  std::vector<uint8_t> RecvOrThrow(size_t shard);
  /// Reaps shard's process if still outstanding (blocking, EINTR-safe).
  void Reap(size_t shard);
  /// Closes every channel and reaps every worker; SIGKILLs on `force`.
  void TeardownWorkers(bool force);

  const std::vector<Point>* pois_;
  const RTree* tree_;
  ClusterOptions options_;
  mutable std::mutex mu_;
  bool started_ = false;
  bool stopped_ = false;
  bool failed_ = false;  ///< transport failure latch (see RequireHealthy)
  uint32_t next_id_ = 0;
  std::vector<Worker> workers_;
  /// (shard, frame) admissions/retirements queued before Start, flushed in
  /// order right after the fork.
  std::vector<std::pair<size_t, WireBuffer>> pending_;
  std::vector<SessionResult> results_;
  EngineRoundStats round_stats_;
};

}  // namespace mpn
