// Multi-process engine sharding: a ClusterEngine forks N worker processes,
// each running an Engine (engine/engine.h) over its shard of groups, with
// admissions and retirements routed by group_id % N over length-prefixed
// binary frames on socketpair(2) pipes (engine/ipc.h). No network is
// involved: the coordinator forks after the immutable world (POIs, R-tree)
// is built, so workers share it copy-on-write; only per-group data
// (trajectories, tuning) and results cross the process boundary.
//
// Ids and routing: the coordinator assigns dense global session ids in
// admission order; id g lives on worker g % N as that shard's k-th group
// (k = g / N — per-pipe FIFO keeps per-worker admission order equal to
// global order restricted to the shard). When a drain completes, each
// worker ships every session's deterministic result fields plus its
// per-timestamp slot totals; the coordinator reassembles the per-session
// stream in global id order and feeds it through the same digest code the
// single-process engine uses (engine/digest.h) — so ResultDigest() is
// bit-identical to one Engine over the same groups, for any worker count
// and any admission interleaving. Round-stat counters re-aggregate with
// the same commutative per-timestamp sums and are bit-identical too;
// wall-clock columns (seconds, mailbox marks) are machine-dependent as
// always.
//
// Serving loop: workers run Engine::Start immediately and then serve
// frames forever — admit, retire, drain (Engine::Wait + result snapshot),
// shutdown — so a cluster supports repeated AdmitSession/Wait() cycles
// exactly like the single-process serving loop.
//
// Elastic recovery: the coordinator keeps a session snapshot — every
// group's serialized admit frame and retirement timestamps, plus each
// session's last drained result — so a worker death (EOF / EPIPE /
// kWorkerError on any interaction) is survivable. The supervisor forks a
// replacement, re-admits the dead shard's *non-final* groups from the
// snapshot (sessions final as of the shard's last successful drain keep
// their coordinator-held results and are not recomputed), and resumes the
// interrupted operation. Replayed sessions recompute deterministically
// from timestamp 0, so the post-recovery ResultDigest() is bit-identical
// to an uninterrupted run; per-timestamp round stats stay bit-identical
// too because each shard's slot totals split into the dead incarnations'
// drained history (slot_base) plus the replacement's recomputed timeline,
// and per-slot integer sums are commutative. Restarts are bounded per
// shard (RecoveryOptions::max_restarts, with exponential backoff);
// exhausting the budget degrades gracefully — the shard is marked lost,
// the error names every group lost with it, and the healthy shards keep
// serving and draining. RecoveryStats reports restarts, re-admissions,
// replayed frames and recovery latency. Crash injection for tests and
// benches: KillWorkerAt / MPN_CRASH_PLAN arm a deterministic virtual-
// timestamp kill in each worker incarnation (engine/ipc.h CrashPlan,
// EngineOptions::crash_at_timestamp).
//
// Hardened transport (engine/transport.h, engine/ipc.h): frames carry a
// magic/version/CRC32 header, channels are non-blocking with per-operation
// deadlines, and the coordinator probes a silent worker's liveness over a
// dedicated heartbeat channel (a worker-side responder thread answers
// pings even while the worker's main thread blocks inside Engine::Wait).
// A hung-but-alive worker — SIGSTOPped, wedged, or stalling mid-frame —
// exhausts the heartbeat miss budget (TransportTuning), is SIGKILLed and
// recovered through the same snapshot replay as a death, so the digest
// contract holds for hangs exactly as it does for crashes. Corrupt or
// torn frames surface as the typed FrameError and take the same restart
// path. Deterministic fault injection for tests and benches:
// InjectFaultAt / MPN_FAULT_PLAN arm per-frame transport faults
// (engine/ipc.h FaultPlan) in each worker incarnation.
//
// With max_restarts = 0 the pre-elastic fail-stop behaviour is restored:
// any transport failure latches the cluster as failed and every
// subsequent call throws. Double Start() and AdmitSession after
// Shutdown() are hard std::logic_errors. See docs/ARCHITECTURE.md §5c for
// the protocol and the recovery determinism argument, §5d for the frame
// format, deadlines, heartbeats and the fault taxonomy.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/ipc.h"

namespace mpn {

/// Worker supervision policy.
struct RecoveryOptions {
  /// Replacement workers the supervisor may fork per shard before the
  /// shard degrades to lost. 0 disables recovery entirely: the first
  /// transport failure poisons the cluster (pre-elastic fail-stop).
  size_t max_restarts = 2;
  /// Sleep before the k-th consecutive restart of a shard:
  /// backoff_initial_ms * 2^(k-1), capped at backoff_max_ms. 0 restarts
  /// immediately (test-friendly default; benches/servers set it > 0 to
  /// avoid hammering a crash-looping shard).
  double backoff_initial_ms = 0.0;
  double backoff_max_ms = 200.0;
};

/// Transport hardening knobs (see docs/ARCHITECTURE.md §5d).
struct TransportTuning {
  /// Byte transport under the frames: AF_UNIX socketpair or loopback TCP
  /// (engine/transport.h). Both are created pre-fork and behave
  /// identically; TCP is the rehearsal for off-box workers.
  TransportKind kind = TransportKind::kSocketPair;
  /// Coordinator-side per-operation I/O deadline (ms): bounds every send
  /// and any *mid-frame* receive progress. A worker that stops moving
  /// bytes inside an operation is killed and recovered. <= 0 restores
  /// the pre-hardening unbounded blocking. Worker-side channels stay
  /// unbounded — deadlines protect the coordinator from workers, never
  /// the reverse (a wedged coordinator means the cluster is gone anyway).
  double io_deadline_ms = 10'000.0;
  /// Liveness probing while awaiting a drain reply. Every
  /// heartbeat_interval_ms without a reply, the coordinator pings the
  /// worker's heartbeat channel and waits heartbeat_timeout_ms for the
  /// pong; heartbeat_miss_budget *consecutive* unanswered probes declare
  /// the worker hung — it is SIGKILLed and recovered via snapshot
  /// replay. Disable with heartbeats = false (a hung worker then blocks
  /// Wait forever, as before this layer existed).
  bool heartbeats = true;
  double heartbeat_interval_ms = 500.0;
  double heartbeat_timeout_ms = 1'000.0;
  size_t heartbeat_miss_budget = 3;
  /// Optional cap (ms) on a drain wait with no scheduler progress
  /// observed via heartbeat pongs: when exceeded, the worker is killed
  /// and recovered (counted in RecoveryStats::deadline_hits). 0 (the
  /// default) trusts heartbeats alone — a slow-but-alive worker is never
  /// killed for being slow.
  double drain_deadline_ms = 0.0;
};

/// Cluster configuration.
struct ClusterOptions {
  /// Worker processes (shards). Groups are routed by group_id % workers.
  size_t workers = 2;
  /// Per-worker engine configuration (thread pool size, sim options, ...).
  EngineOptions engine;
  /// Worker supervision (restart budget, backoff).
  RecoveryOptions recovery;
  /// Transport hardening (backend, deadlines, heartbeats).
  TransportTuning transport;
};

/// Coordinator of a multi-process engine cluster. Mirrors the Engine
/// lifecycle API; calls are serialized internally — the concurrency lives
/// in the worker processes. Worker deaths are handled by the supervisor
/// (see the header comment); only an exhausted restart budget (per-shard
/// graceful degradation), max_restarts = 0 (fail-stop poison latch) or a
/// protocol violation (poison latch) surface as errors, and the result
/// accessors always keep returning the last successful drain's snapshot.
class ClusterEngine {
 public:
  /// Counters of the supervisor (cumulative over the cluster's life).
  struct RecoveryStats {
    size_t restarts = 0;            ///< replacement workers forked
    size_t sessions_readmitted = 0; ///< non-final sessions replayed to them
    size_t sessions_restored = 0;   ///< final sessions kept from snapshot
    size_t frames_replayed = 0;     ///< admit+retire frames re-sent
    size_t shards_lost = 0;         ///< shards degraded after the budget
    double recovery_seconds = 0.0;  ///< wall time spent recovering
    /// Transport-level EINTR/EAGAIN retries absorbed (coordinator
    /// channels harvested continuously, worker channels via drain
    /// replies) — nonzero is normal under load, growth without progress
    /// is the smell.
    uint64_t retries = 0;
    size_t checksum_failures = 0;  ///< frames rejected by integrity checks
    size_t heartbeat_misses = 0;   ///< liveness probes that went unanswered
    size_t deadline_hits = 0;      ///< I/O or drain deadlines that expired
  };

  /// `pois` and `tree` must be fully built before Start() forks the
  /// workers and must outlive the cluster (workers inherit them
  /// copy-on-write).
  ClusterEngine(const std::vector<Point>* pois, SpatialIndex tree,
                const ClusterOptions& options);
  ~ClusterEngine();

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  /// Registers one group; returns its global session id (dense, in
  /// admission order). The trajectories are serialized into the admit
  /// frame (which the coordinator also snapshots for recovery replay), so
  /// they only need to stay alive for the duration of the call. Throws
  /// std::logic_error after Shutdown() and std::runtime_error when the
  /// group routes to a lost shard.
  uint32_t AdmitSession(const std::vector<const Trajectory*>& group,
                        const SessionTuning& tuning = SessionTuning());

  /// Deterministically truncates session `id`'s horizon at `at_timestamp`
  /// (see Engine::RetireSession; Engine::kRetireNow asks for the next
  /// event boundary instead, which is wall-clock dependent). Recorded in
  /// the recovery snapshot, so replayed sessions retire identically —
  /// and delivered *inside* the admit frame when recorded before the
  /// session's admission ships (pre-Start, or before a recovery replay):
  /// a worker's engine advances sessions the moment they are admitted,
  /// so a separate retire frame could lose the race against the session
  /// finishing.
  void RetireSession(uint32_t id, size_t at_timestamp = Engine::kRetireNow);

  /// Forks the worker processes (each starts its engine immediately) and
  /// replays the admissions/retirements recorded before Start. Throws
  /// std::logic_error when called twice.
  void Start();

  /// Serving-loop drain: asks every healthy worker to drain (Engine::Wait)
  /// and collects their result snapshots. Valid results afterwards; more
  /// admissions may follow. A worker dying anywhere in the drain is
  /// recovered and re-drained transparently (bit-identical results — see
  /// the header comment). Throws std::runtime_error naming the shard and
  /// its lost group ids when a shard exhausts its restart budget (healthy
  /// shards still drain first, and their fresh results stay readable —
  /// every later Wait re-throws for the lost shard); std::logic_error
  /// before Start.
  void Wait();

  /// Wait() + stop the workers (graceful shutdown frames, then reap).
  /// AdmitSession afterwards is a hard std::logic_error. Idempotent. When
  /// Wait degrades (lost shards), healthy workers are still stopped
  /// gracefully before the error propagates.
  void Shutdown();

  /// Start() + Shutdown() — one-shot drain over the queued admissions.
  void Run();

  size_t worker_count() const { return options_.workers; }
  size_t session_count() const { return next_id_; }

  /// Per-session results (valid after Wait), indexed by global id.
  const SimMetrics& session_metrics(uint32_t id) const;
  uint32_t session_po(uint32_t id) const;
  bool session_has_result(uint32_t id) const;
  size_t session_mailbox_peak(uint32_t id) const;
  size_t session_stall_count(uint32_t id) const;
  size_t session_dropped_count(uint32_t id) const;

  /// Merged metrics across all sessions (valid after Wait).
  SimMetrics TotalMetrics() const;

  /// Cluster-level per-timestamp aggregates (valid after Wait): worker
  /// slot totals summed per timestamp, then folded exactly like the
  /// single-process engine folds its own slots.
  const EngineRoundStats& round_stats() const { return round_stats_; }

  /// Bit-identical to Engine::ResultDigest() over the same groups in the
  /// same admission order, for any worker count and any recovered worker
  /// deaths (valid after Wait).
  uint64_t ResultDigest() const;

  /// Supervisor counters so far.
  RecoveryStats recovery_stats() const;

  /// Session-store (memory budget) counters summed across shards, as
  /// reported by each worker's last drain: spill/rehydrate counts and
  /// spilled bytes are sums over every incarnation; peak_resident_bytes
  /// sums each shard's per-incarnation maximum (shards run concurrently).
  /// resident_bytes is not meaningful coordinator-side and stays zero.
  /// The budget itself flows to workers via ClusterOptions::engine (or
  /// the MPN_MEMORY_BUDGET environment variable they inherit).
  MemoryStats memory_stats() const;

  /// True once `shard` exhausted its restart budget and degraded to lost.
  bool shard_lost(size_t shard) const;

  /// Test hook: SIGKILLs shard's worker process so the recovery paths
  /// (Send failure, EOF instead of a drain reply) can be exercised at a
  /// wall-clock instant. For a deterministic kill use KillWorkerAt.
  void KillWorkerForTest(size_t shard);

  /// Test hook: SIGSTOPs shard's worker — hung, not dead. The kernel
  /// keeps its pipes open, so only the heartbeat machinery (not EOF) can
  /// detect it; the next Wait must kill and recover it via the miss
  /// budget.
  void StopWorkerForTest(size_t shard);

  /// Deterministic crash injection: the next worker incarnation forked for
  /// `shard` (initial worker first, then each replacement) _Exit(134)s the
  /// first time one of its sessions is about to advance to virtual
  /// timestamp `timestamp`. Events stack FIFO per shard — see
  /// CrashPlan (engine/ipc.h); the MPN_CRASH_PLAN environment variable
  /// ("shard:timestamp,...") prepends events at construction. Must be
  /// called before Start (std::logic_error afterwards).
  void KillWorkerAt(size_t shard, size_t timestamp);

  /// Deterministic transport-fault injection: arms `kind` at the
  /// `frame`-th frame operation of shard's data channel (engine/ipc.h
  /// FaultPlan — batches are consumed per incarnation, fatal kinds
  /// last). The MPN_FAULT_PLAN environment variable
  /// ("shard:frame:kind,..." or "seed:N") prepends events at
  /// construction. Must be called before Start (std::logic_error
  /// afterwards).
  void InjectFaultAt(size_t shard, size_t frame, FaultKind kind);

 private:
  /// Cluster-level per-timestamp totals (mirrors Scheduler::Slot).
  struct SlotTotals {
    uint64_t messages = 0;
    uint64_t recomputes = 0;
    double seconds = 0.0;
  };

  struct Worker {
    pid_t pid = -1;
    IpcChannel channel;
    /// Dedicated liveness channel: pings answered by a worker-side
    /// responder thread even while the worker's main thread is draining.
    IpcChannel heartbeat;
    /// Sequence number of the last ping sent (pongs echo it, so stale
    /// replies to timed-out probes are recognizable and drained).
    uint64_t ping_seq = 0;
    /// Scheduler progress reported by the worker's last pong.
    uint64_t last_progress = 0;
    /// Last transport-level failure text (errno / integrity detail) for
    /// this shard, surfaced into per-shard error messages.
    std::string last_io_error;
    bool reaped = false;
    /// Replacements forked for this shard so far.
    size_t restarts = 0;
    /// Restart budget exhausted: the shard is permanently degraded.
    bool lost = false;
    std::string lost_reason;
    /// Shard-local indices below this are final (drained) sessions whose
    /// results live in the coordinator snapshot; they are not re-admitted
    /// to the current incarnation.
    size_t restored_below = 0;
    /// Shard-local session count at this shard's last successful drain —
    /// everything below it was final then (Engine::Wait drains every
    /// admitted session to completion).
    size_t drained_through = 0;
    /// Per-timestamp slot totals owned by dead incarnations' drained
    /// history; the current incarnation's drain adds on top.
    std::vector<SlotTotals> slot_base;
    /// slot_base + the last successful drain's reported slots — this
    /// shard's effective contribution to the cluster round stats.
    std::vector<SlotTotals> last_slots;
    /// Session-store counters owned by dead incarnations (sums folded,
    /// peak maxed — see RecoverShard); the replacement restarts at zero.
    MemoryStats mem_base;
    /// Counters reported by the current incarnation's last drain.
    MemoryStats last_mem;
  };

  /// One session's deterministic result fields plus observability marks,
  /// as shipped by its worker.
  struct SessionResult {
    SimMetrics metrics;
    bool has_result = false;
    uint32_t po = 0;
    uint64_t mailbox_peak = 0;
    uint64_t stalls = 0;
    uint64_t dropped = 0;
  };

  /// Coordinator-side snapshot of one session: everything needed to
  /// re-admit it to a replacement worker, bit-identically.
  struct SessionState {
    WireBuffer admit_frame;            ///< full serialized kAdmit frame
    std::vector<uint64_t> retire_ats;  ///< RetireSession timestamps, in order
  };

  void RequireStarted() const;
  void RequireServing() const;
  /// With recovery disabled (max_restarts = 0) or after a protocol
  /// violation the cluster is poisoned: replies may be out of phase with
  /// requests, so refreshed results could silently be wrong. Every
  /// subsequent admit/retire/drain throws; results from the last
  /// *successful* Wait stay readable.
  void RequireHealthy() const;
  const SessionResult& ResultChecked(uint32_t id) const;
  /// Shard-local session count (groups routed to `shard` so far).
  size_t ShardSessionCount(size_t shard) const;
  /// Forks one worker for `shard` (arming the next crash-plan event) and
  /// installs its channel. Caller holds mu_.
  void ForkWorker(size_t shard);
  /// Replays the snapshot to shard's current incarnation: the admit frame
  /// of every non-final session, ascending, with recorded retirements
  /// folded into each frame's retire_at tuning (a trailing retire frame
  /// would race the session finishing on the live worker). Returns false
  /// when the replacement died mid-replay (caller recovers again).
  /// Caller holds mu_.
  bool ReplayShardSnapshot(size_t shard, bool count_stats);
  /// Supervisor: reaps the dead worker and brings up a replayed
  /// replacement. Throws (std::runtime_error) when the restart budget is
  /// exhausted — marking the shard lost and naming its lost groups — or
  /// when recovery is disabled (poison latch). Caller holds mu_.
  void RecoverShard(size_t shard);
  /// Marks `shard` lost and throws the per-shard degradation error.
  [[noreturn]] void MarkShardLost(size_t shard);
  /// Deadline-bounded send on shard's data channel. A deadline expiry
  /// counts in stats_, kills the worker (it stopped draining its pipe)
  /// and returns false so the caller runs the normal recovery path; a
  /// gone peer just returns false. Caller holds mu_.
  bool SendToShard(size_t shard, const WireBuffer& frame);
  /// One liveness probe: ping + pong (seq-matched, stale pongs drained)
  /// within heartbeat_timeout_ms. Updates last_progress on success.
  /// Caller holds mu_.
  bool ProbeWorker(size_t shard);
  /// Receives shard's next data-channel frame, slicing the wait every
  /// heartbeat_interval_ms to probe liveness: a worker that answers
  /// probes may take forever (slow != dead), one that exhausts the miss
  /// budget — or the optional drain_deadline_ms without scheduler
  /// progress — is SIGKILLed and reported as kClosed. Throws FrameError
  /// on integrity failures. Caller holds mu_.
  IoStatus RecvReplySliced(size_t shard, std::vector<uint8_t>* payload);
  /// Folds shard's channel counters into stats_ (exactly once per
  /// channel: call right before Close). Caller holds mu_.
  void HarvestChannelCounters(Worker* w);
  /// Sends the drain frame to `shard`, recovering through worker deaths.
  /// Returns false when the shard degraded to lost (error recorded in
  /// lost_reason). Caller holds mu_.
  bool SendDrainRecovering(size_t shard);
  /// Receives + parses shard's drain reply into results_/last_slots,
  /// recovering and re-draining through worker deaths. Returns false when
  /// the shard degraded to lost. Caller holds mu_.
  bool RecvDrainRecovering(size_t shard);
  /// Parses one kDrainedOk payload. Throws on protocol violations.
  void ParseDrainReply(size_t shard, const std::vector<uint8_t>& payload);
  /// Reaps shard's process if still outstanding (blocking, EINTR-safe).
  void Reap(size_t shard);
  /// SIGKILLs, closes and reaps every remaining worker (destructor /
  /// abnormal paths — the graceful route is Shutdown). The kill is
  /// unconditional: a SIGSTOPped worker never sees the channel EOF, so
  /// waiting for a voluntary exit could hang forever.
  void TeardownWorkers();

  const std::vector<Point>* pois_;
  SpatialIndex tree_;
  ClusterOptions options_;
  mutable std::mutex mu_;
  bool started_ = false;
  bool stopped_ = false;
  bool failed_ = false;  ///< poison latch (see RequireHealthy)
  uint32_t next_id_ = 0;
  std::vector<Worker> workers_;
  /// Recovery snapshot, indexed by global session id (admit frame recorded
  /// *before* the first send, so a replay can never miss a session).
  std::vector<SessionState> snapshot_;
  CrashPlan crash_plan_;
  FaultPlan fault_plan_;
  RecoveryStats stats_;
  /// Last drained result per global id; persists across Waits so final
  /// sessions on recovered (or lost) shards keep their results.
  std::vector<SessionResult> results_;
  EngineRoundStats round_stats_;
};

}  // namespace mpn
