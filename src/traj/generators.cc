#include "traj/generators.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace mpn {

Trajectory BrinkhoffGenerator::Generate(size_t timestamps, Rng* rng,
                                        const Point* start_near) const {
  MPN_ASSERT(network_->NodeCount() >= 2);
  const double speed = rng->Uniform(options_.min_speed, options_.max_speed);
  Trajectory out;
  out.positions.reserve(timestamps);

  uint32_t node;
  if (start_near != nullptr) {
    node = 0;
    double best = Dist(network_->NodePos(0), *start_near);
    for (uint32_t v = 1; v < network_->NodeCount(); ++v) {
      const double d = Dist(network_->NodePos(v), *start_near);
      if (d < best) {
        best = d;
        node = v;
      }
    }
  } else {
    node = static_cast<uint32_t>(
        rng->UniformInt(0, static_cast<int64_t>(network_->NodeCount()) - 1));
  }
  std::vector<uint32_t> path;   // remaining nodes of the current route
  size_t path_pos = 0;
  Point pos = network_->NodePos(node);
  double leg_remaining = 0.0;   // distance left on the current edge
  Point leg_dir{0, 0};
  Point leg_target = pos;

  auto pick_route = [&]() {
    // Choose a fresh random destination reachable from `node`.
    for (int attempt = 0; attempt < 16; ++attempt) {
      const uint32_t dst = static_cast<uint32_t>(rng->UniformInt(
          0, static_cast<int64_t>(network_->NodeCount()) - 1));
      if (dst == node) continue;
      path = network_->ShortestPath(node, dst);
      if (path.size() >= 2) {
        path_pos = 1;  // path[0] == node
        return;
      }
    }
    path.clear();  // isolated node: stand still (cannot happen, connected)
  };

  auto next_leg = [&]() -> bool {
    if (path_pos >= path.size()) return false;
    const uint32_t nxt = path[path_pos++];
    leg_target = network_->NodePos(nxt);
    leg_remaining = Dist(pos, leg_target);
    leg_dir = (leg_target - pos).Normalized();
    node = nxt;
    return true;
  };

  pick_route();
  next_leg();
  for (size_t t = 0; t < timestamps; ++t) {
    out.positions.push_back(pos);
    double budget = speed;
    while (budget > 0.0) {
      if (leg_remaining <= budget) {
        budget -= leg_remaining;
        pos = leg_target;
        leg_remaining = 0.0;
        if (!next_leg()) {
          pick_route();
          if (!next_leg()) {
            budget = 0.0;  // stuck (no route): dwell at the node
          }
        }
      } else {
        pos += leg_dir * budget;
        leg_remaining -= budget;
        budget = 0.0;
      }
    }
  }
  return out;
}

std::vector<Trajectory> BrinkhoffGenerator::GenerateFleet(size_t count,
                                                          size_t timestamps,
                                                          Rng* rng) const {
  std::vector<Trajectory> fleet;
  fleet.reserve(count);
  for (size_t i = 0; i < count; ++i) fleet.push_back(Generate(timestamps, rng));
  return fleet;
}

std::vector<Trajectory> BrinkhoffGenerator::GenerateGroupedFleet(
    size_t count, size_t block, double spread, size_t timestamps,
    Rng* rng) const {
  std::vector<Trajectory> fleet;
  fleet.reserve(count);
  const Rect world = network_->Bounds();
  Point center{0, 0};
  for (size_t i = 0; i < count; ++i) {
    if (i % block == 0) {
      center = {rng->Uniform(world.lo.x, world.hi.x),
                rng->Uniform(world.lo.y, world.hi.y)};
    }
    const Point start{center.x + rng->Uniform(-spread, spread),
                      center.y + rng->Uniform(-spread, spread)};
    fleet.push_back(Generate(timestamps, rng, &start));
  }
  return fleet;
}

Trajectory RandomWalkGenerator::Generate(size_t timestamps, Rng* rng,
                                         const Point* start) const {
  Trajectory out;
  out.positions.reserve(timestamps);
  Point pos = start != nullptr
                  ? Point{std::clamp(start->x, world().lo.x, world().hi.x),
                          std::clamp(start->y, world().lo.y, world().hi.y)}
                  : Point{rng->Uniform(world().lo.x, world().hi.x),
                          rng->Uniform(world().lo.y, world().hi.y)};
  double heading = rng->Uniform(-3.14159265358979, 3.14159265358979);
  int dwell = 0;
  for (size_t t = 0; t < timestamps; ++t) {
    out.positions.push_back(pos);
    if (dwell > 0) {
      --dwell;
      continue;
    }
    if (rng->Bernoulli(options_.dwell_prob)) {
      dwell = static_cast<int>(
          rng->UniformInt(options_.dwell_min, options_.dwell_max));
      continue;
    }
    heading = NormalizeAngle(heading +
                             rng->Gaussian(0.0, options_.heading_sigma));
    const double speed = std::max(
        0.0, options_.mean_speed *
                 (1.0 + rng->Gaussian(0.0, options_.speed_jitter)));
    Point next = pos + UnitFromAngle(heading) * speed;
    // Reflect at the world boundary.
    if (next.x < world().lo.x || next.x > world().hi.x) {
      heading = NormalizeAngle(3.14159265358979 - heading);
      next.x = std::clamp(next.x, world().lo.x, world().hi.x);
    }
    if (next.y < world().lo.y || next.y > world().hi.y) {
      heading = NormalizeAngle(-heading);
      next.y = std::clamp(next.y, world().lo.y, world().hi.y);
    }
    pos = next;
  }
  return out;
}

std::vector<Trajectory> RandomWalkGenerator::GenerateFleet(size_t count,
                                                           size_t timestamps,
                                                           Rng* rng) const {
  std::vector<Trajectory> fleet;
  fleet.reserve(count);
  for (size_t i = 0; i < count; ++i) fleet.push_back(Generate(timestamps, rng));
  return fleet;
}

std::vector<Trajectory> RandomWalkGenerator::GenerateGroupedFleet(
    size_t count, size_t block, double spread, size_t timestamps,
    Rng* rng) const {
  std::vector<Trajectory> fleet;
  fleet.reserve(count);
  Point center{0, 0};
  for (size_t i = 0; i < count; ++i) {
    if (i % block == 0) {
      center = {rng->Uniform(world().lo.x, world().hi.x),
                rng->Uniform(world().lo.y, world().hi.y)};
    }
    const Point start{center.x + rng->Uniform(-spread, spread),
                      center.y + rng->Uniform(-spread, spread)};
    fleet.push_back(Generate(timestamps, rng, &start));
  }
  return fleet;
}

std::vector<Point> GeneratePois(size_t n, const PoiOptions& options,
                                Rng* rng) {
  std::vector<Point> pois;
  pois.reserve(n);
  const Rect& world = options.world;
  // Cluster centers and relative weights.
  std::vector<Point> centers;
  std::vector<double> weights;
  for (int c = 0; c < options.clusters; ++c) {
    centers.push_back({rng->Uniform(world.lo.x, world.hi.x),
                       rng->Uniform(world.lo.y, world.hi.y)});
    weights.push_back(rng->Uniform(0.2, 1.0));
  }
  const double sigma = options.cluster_sigma_frac * world.Width();
  for (size_t i = 0; i < n; ++i) {
    Point p;
    if (options.clusters == 0 || rng->Bernoulli(options.background_frac)) {
      p = {rng->Uniform(world.lo.x, world.hi.x),
           rng->Uniform(world.lo.y, world.hi.y)};
    } else {
      const size_t c = rng->WeightedIndex(weights);
      p = {centers[c].x + rng->Gaussian(0.0, sigma),
           centers[c].y + rng->Gaussian(0.0, sigma)};
      p.x = std::clamp(p.x, world.lo.x, world.hi.x);
      p.y = std::clamp(p.y, world.lo.y, world.hi.y);
    }
    pois.push_back(p);
  }
  return pois;
}

std::vector<std::vector<const Trajectory*>> MakeGroups(
    const std::vector<Trajectory>& trajectories, size_t m, size_t block) {
  MPN_ASSERT(m >= 1 && m <= block);
  std::vector<std::vector<const Trajectory*>> groups;
  for (size_t start = 0; start + block <= trajectories.size();
       start += block) {
    std::vector<const Trajectory*> group;
    group.reserve(m);
    for (size_t i = 0; i < m; ++i) group.push_back(&trajectories[start + i]);
    groups.push_back(std::move(group));
  }
  return groups;
}

namespace {

/// Disjoint-set forest for the connectivity patch of the random-planar
/// topology.
struct UnionFind {
  std::vector<uint32_t> parent;
  explicit UnionFind(size_t n) : parent(n) {
    for (size_t i = 0; i < n; ++i) parent[i] = static_cast<uint32_t>(i);
  }
  uint32_t Find(uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent[b] = a;
    return true;
  }
};

RoadNetwork MakeRandomPlanarNetwork(const SyntheticNetworkOptions& options,
                                    Rng* rng) {
  const size_t n = std::max<size_t>(options.nodes, 2);
  const Rect& world = options.world;
  RoadNetwork net;
  for (size_t i = 0; i < n; ++i) {
    net.AddNode({rng->Uniform(world.lo.x, world.hi.x),
                 rng->Uniform(world.lo.y, world.hi.y)});
  }

  // Bucket hash: ~2 nodes per cell keeps candidate gathering O(1) per node.
  const size_t cells = std::max<size_t>(
      1, static_cast<size_t>(std::sqrt(static_cast<double>(n) / 2.0)));
  auto cell_of = [&](const Point& p) -> std::pair<size_t, size_t> {
    const double fx = world.Width() > 0 ? (p.x - world.lo.x) / world.Width()
                                        : 0.0;
    const double fy = world.Height() > 0 ? (p.y - world.lo.y) / world.Height()
                                         : 0.0;
    const size_t cx = std::min(cells - 1, static_cast<size_t>(fx * cells));
    const size_t cy = std::min(cells - 1, static_cast<size_t>(fy * cells));
    return {cx, cy};
  };
  std::vector<std::vector<uint32_t>> buckets(cells * cells);
  for (uint32_t i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_of(net.NodePos(i));
    buckets[cy * cells + cx].push_back(i);
  }

  // k-nearest-neighbor edges from a widening ring of cells.
  const int knn = std::max(1, options.knn);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  std::vector<std::pair<double, uint32_t>> cand;
  for (uint32_t i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_of(net.NodePos(i));
    cand.clear();
    for (int ring = 1; ring <= 2 && cand.size() < static_cast<size_t>(knn);
         ++ring) {
      cand.clear();
      for (int dy = -ring; dy <= ring; ++dy) {
        for (int dx = -ring; dx <= ring; ++dx) {
          const int64_t x = static_cast<int64_t>(cx) + dx;
          const int64_t y = static_cast<int64_t>(cy) + dy;
          if (x < 0 || y < 0 || x >= static_cast<int64_t>(cells) ||
              y >= static_cast<int64_t>(cells)) {
            continue;
          }
          for (uint32_t j : buckets[static_cast<size_t>(y) * cells +
                                    static_cast<size_t>(x)]) {
            if (j == i) continue;
            cand.push_back({Dist(net.NodePos(i), net.NodePos(j)), j});
          }
        }
      }
    }
    // Ties break on node id: fully deterministic.
    std::sort(cand.begin(), cand.end());
    const size_t take = std::min(cand.size(), static_cast<size_t>(knn));
    for (size_t k = 0; k < take; ++k) {
      const uint32_t j = cand[k].second;
      edges.push_back({std::min(i, j), std::max(i, j)});
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  UnionFind uf(n);
  for (const auto& [a, b] : edges) {
    net.AddEdge(a, b);
    uf.Union(a, b);
  }

  // Connectivity patch: walk nodes in cell-major (spatial) order and bridge
  // consecutive nodes that sit in different components — bridges stay
  // local, so the graph keeps its road-like geometry.
  uint32_t prev = 0xFFFFFFFFu;
  for (const auto& bucket : buckets) {
    for (uint32_t i : bucket) {
      if (prev != 0xFFFFFFFFu && uf.Find(prev) != uf.Find(i)) {
        net.AddEdge(prev, i);
        uf.Union(prev, i);
      }
      prev = i;
    }
  }
  MPN_ASSERT(net.IsConnected());
  return net;
}

}  // namespace

RoadNetwork MakeSyntheticNetwork(const SyntheticNetworkOptions& options,
                                 Rng* rng) {
  if (options.topology == SyntheticNetworkOptions::Topology::kRandomPlanar) {
    return MakeRandomPlanarNetwork(options, rng);
  }
  const int side = std::max(
      2, static_cast<int>(std::lround(
             std::sqrt(static_cast<double>(std::max<size_t>(options.nodes,
                                                            4))))));
  return RoadNetwork::RandomGrid(options.world, side, side,
                                 options.jitter_frac, options.diagonal_prob,
                                 options.drop_prob, rng);
}

}  // namespace mpn
