// Trajectory and POI generators (Section 7.1 data substitutes).
//
//  * BrinkhoffGenerator — network-constrained movement ("Oldenburg"):
//    random-waypoint routing over shortest paths of a RoadNetwork with
//    per-object speed classes.
//  * RandomWalkGenerator — smooth correlated random walk ("GeoLife"-like
//    taxi traces): bounded per-step heading deviation, speed jitter,
//    occasional dwells, reflection at the world boundary. Reproduces the
//    bounded-angular-deviation property the directed ordering exploits.
//  * GeneratePois — clustered POI set standing in for the pocketgpsworld
//    UK data set (N = 21,287 by default): Gaussian clusters over a uniform
//    background, mimicking the density skew of real POI data.
#pragma once

#include <vector>

#include "geom/rect.h"
#include "traj/road_network.h"
#include "traj/trajectory.h"
#include "util/rng.h"

namespace mpn {

/// Brinkhoff-style network-based generator.
class BrinkhoffGenerator {
 public:
  struct Options {
    double min_speed = 60.0;   ///< distance units per timestamp
    double max_speed = 140.0;  ///< per-object speed drawn uniformly
  };

  /// The network must outlive the generator.
  BrinkhoffGenerator(const RoadNetwork* network, Options options)
      : network_(network), options_(options) {}

  /// One object's trajectory of `timestamps` samples. When `start_near` is
  /// non-null the object begins at the network node closest to it (user
  /// groups in the MPN workloads start co-located, like the paper's
  /// per-city trajectory sets).
  Trajectory Generate(size_t timestamps, Rng* rng,
                      const Point* start_near = nullptr) const;

  /// A fleet of `count` trajectories.
  std::vector<Trajectory> GenerateFleet(size_t count, size_t timestamps,
                                        Rng* rng) const;

  /// A fleet whose consecutive blocks of `block` objects start near a common
  /// random point with per-object jitter `spread`.
  std::vector<Trajectory> GenerateGroupedFleet(size_t count, size_t block,
                                               double spread,
                                               size_t timestamps,
                                               Rng* rng) const;

 private:
  const RoadNetwork* network_;
  Options options_;
};

/// Smooth correlated random walk ("GeoLife"-like).
class RandomWalkGenerator {
 public:
  struct Options {
    Rect world = Rect({0.0, 0.0}, {100000.0, 100000.0});
    double mean_speed = 100.0;    ///< distance units per timestamp
    double speed_jitter = 0.25;   ///< relative stddev of speed
    double heading_sigma = 0.15;  ///< per-step heading deviation (radians)
    double dwell_prob = 0.002;    ///< chance to start a dwell each step
    int dwell_min = 5;            ///< dwell length range (timestamps)
    int dwell_max = 40;
  };

  explicit RandomWalkGenerator(Options options) : options_(options) {}

  /// One walk; starts at `start` when non-null, else uniformly in the world.
  Trajectory Generate(size_t timestamps, Rng* rng,
                      const Point* start = nullptr) const;
  std::vector<Trajectory> GenerateFleet(size_t count, size_t timestamps,
                                        Rng* rng) const;

  /// A fleet whose consecutive blocks of `block` walks start near a common
  /// random point with per-object jitter `spread`.
  std::vector<Trajectory> GenerateGroupedFleet(size_t count, size_t block,
                                               double spread,
                                               size_t timestamps,
                                               Rng* rng) const;

 private:
  const Rect& world() const { return options_.world; }
  Options options_;
};

/// Options for the clustered POI synthesizer.
struct PoiOptions {
  Rect world = Rect({0.0, 0.0}, {100000.0, 100000.0});
  int clusters = 40;
  double cluster_sigma_frac = 0.02;  ///< cluster stddev / world width
  double background_frac = 0.25;     ///< fraction drawn uniformly
};

/// Generates `n` POIs (clusters + uniform background), clipped to the world.
std::vector<Point> GeneratePois(size_t n, const PoiOptions& options, Rng* rng);

/// Partitions `trajectories` into groups of size m: group g takes the first
/// m members of the g-th consecutive block of `block` trajectories
/// (the paper splits 60 trajectories into 10 groups of 6 and uses the first
/// m per group).
std::vector<std::vector<const Trajectory*>> MakeGroups(
    const std::vector<Trajectory>& trajectories, size_t m, size_t block);

/// Options for the scalable synthetic road networks used by the CH index
/// benches and property tests — node counts far beyond the seed fixtures.
struct SyntheticNetworkOptions {
  enum class Topology {
    kGrid,          ///< jittered grid with diagonals and drops (RandomGrid)
    kRandomPlanar,  ///< scattered nodes with k-nearest-neighbor local edges
  };
  Topology topology = Topology::kGrid;
  size_t nodes = 10000;  ///< approximate; the grid rounds to rows x cols
  Rect world = Rect({0.0, 0.0}, {100000.0, 100000.0});
  double jitter_frac = 0.2;    ///< grid positional jitter
  double diagonal_prob = 0.1;  ///< grid diagonal shortcut probability
  double drop_prob = 0.1;      ///< grid edge-drop probability
  int knn = 3;                 ///< random-planar neighbors per node
};

/// Generates a connected synthetic road network of roughly `options.nodes`
/// nodes. The random-planar topology scatters nodes uniformly, links each
/// to its k nearest neighbors (bucket-hashed, O(n)), and patches the graph
/// connected by joining components along a spatial node order — edges stay
/// local, like a road network. Deterministic for a fixed Rng.
RoadNetwork MakeSyntheticNetwork(const SyntheticNetworkOptions& options,
                                 Rng* rng);

}  // namespace mpn
