// Road network substrate for the Brinkhoff-style trajectory generator.
//
// The paper's "Oldenburg" workload comes from Brinkhoff's network-based
// generator (GeoInformatica 2002): objects travel along shortest paths of a
// road network between random endpoints. We reproduce the model class with
// a synthetic network: a jittered grid with random diagonal shortcuts and
// random edge removals under a connectivity guarantee.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/rect.h"
#include "geom/vec2.h"
#include "index/ch.h"
#include "util/rng.h"

namespace mpn {

class ThreadPool;

/// Undirected weighted graph embedded in the plane.
class RoadNetwork {
 public:
  /// One endpoint of the graph.
  struct NodeRef {
    uint32_t id;
  };

  /// Adds a node; returns its id.
  uint32_t AddNode(const Point& p);

  /// Adds an undirected edge; weight = Euclidean length.
  void AddEdge(uint32_t a, uint32_t b);

  size_t NodeCount() const { return nodes_.size(); }
  size_t EdgeCount() const { return edge_count_; }
  const Point& NodePos(uint32_t id) const { return nodes_[id]; }

  /// Neighbor list of node `id` as (neighbor, edge length) pairs.
  const std::vector<std::pair<uint32_t, double>>& Neighbors(
      uint32_t id) const {
    return adj_[id];
  }

  /// Dijkstra shortest path from `src` to `dst` as a node sequence
  /// (inclusive). Empty when unreachable.
  std::vector<uint32_t> ShortestPath(uint32_t src, uint32_t dst) const;

  /// Dijkstra shortest-path distance (the canonical left-fold of edge
  /// weights along the path); +infinity when unreachable. This is the
  /// correctness oracle the CH index must match bit-for-bit.
  double ShortestPathDistance(uint32_t src, uint32_t dst) const;

  /// Builds a Contraction Hierarchies index over this network. Preprocess
  /// once per scenario, then answer point-to-point / many-to-many queries
  /// orders of magnitude faster than per-query Dijkstra (see index/ch.h).
  /// `pool` parallelizes the initial-priority pass (identical result).
  CHIndex BuildCHIndex(ThreadPool* pool = nullptr) const;

  /// True when the graph is connected (BFS reachability).
  bool IsConnected() const;

  /// Bounding box of all nodes.
  Rect Bounds() const;

  /// Generates a random connected network inside `world`:
  /// a rows x cols grid with positional jitter, random extra diagonals and
  /// random edge drops that keep the graph connected.
  static RoadNetwork RandomGrid(const Rect& world, int rows, int cols,
                                double jitter_frac, double diagonal_prob,
                                double drop_prob, Rng* rng);

 private:
  std::vector<Point> nodes_;
  std::vector<std::vector<std::pair<uint32_t, double>>> adj_;
  size_t edge_count_ = 0;
};

}  // namespace mpn
