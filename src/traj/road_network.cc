#include "traj/road_network.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/macros.h"

namespace mpn {

uint32_t RoadNetwork::AddNode(const Point& p) {
  nodes_.push_back(p);
  adj_.emplace_back();
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void RoadNetwork::AddEdge(uint32_t a, uint32_t b) {
  MPN_ASSERT(a < nodes_.size() && b < nodes_.size() && a != b);
  const double w = Dist(nodes_[a], nodes_[b]);
  adj_[a].push_back({b, w});
  adj_[b].push_back({a, w});
  ++edge_count_;
}

std::vector<uint32_t> RoadNetwork::ShortestPath(uint32_t src,
                                                uint32_t dst) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodes_.size(), kInf);
  std::vector<int64_t> prev(nodes_.size(), -1);
  using QE = std::pair<double, uint32_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (const auto& [v, w] : adj_[u]) {
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        pq.push({nd, v});
      }
    }
  }
  std::vector<uint32_t> path;
  if (dist[dst] == kInf) return path;
  for (int64_t v = dst; v >= 0; v = prev[v]) {
    path.push_back(static_cast<uint32_t>(v));
    if (static_cast<uint32_t>(v) == src) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double RoadNetwork::ShortestPathDistance(uint32_t src, uint32_t dst) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodes_.size(), kInf);
  using QE = std::pair<double, uint32_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == dst) return d;
    for (const auto& [v, w] : adj_[u]) {
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  return dist[dst];
}

CHIndex RoadNetwork::BuildCHIndex(ThreadPool* pool) const {
  std::vector<CHIndex::InputEdge> edges;
  edges.reserve(edge_count_);
  for (uint32_t a = 0; a < nodes_.size(); ++a) {
    for (const auto& [b, w] : adj_[a]) {
      if (a < b) edges.push_back({a, b, w});
    }
  }
  CHIndex::Options options;
  options.directed = false;
  options.pool = pool;
  return CHIndex::Build(nodes_.size(), edges, options);
}

bool RoadNetwork::IsConnected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<uint32_t> q;
  q.push(0);
  seen[0] = true;
  size_t count = 1;
  while (!q.empty()) {
    const uint32_t u = q.front();
    q.pop();
    for (const auto& [v, w] : adj_[u]) {
      (void)w;
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        q.push(v);
      }
    }
  }
  return count == nodes_.size();
}

Rect RoadNetwork::Bounds() const {
  Rect b = Rect::Empty();
  for (const Point& p : nodes_) b.ExpandToInclude(p);
  return b;
}

RoadNetwork RoadNetwork::RandomGrid(const Rect& world, int rows, int cols,
                                    double jitter_frac, double diagonal_prob,
                                    double drop_prob, Rng* rng) {
  MPN_ASSERT(rows >= 2 && cols >= 2);
  RoadNetwork net;
  const double dx = world.Width() / (cols - 1);
  const double dy = world.Height() / (rows - 1);
  auto id_of = [cols](int r, int c) {
    return static_cast<uint32_t>(r * cols + c);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double jx = rng->Uniform(-jitter_frac, jitter_frac) * dx;
      const double jy = rng->Uniform(-jitter_frac, jitter_frac) * dy;
      net.AddNode({world.lo.x + c * dx + jx, world.lo.y + r * dy + jy});
    }
  }
  // Horizontal and vertical edges; randomly dropped ones are collected and
  // re-added at the end if the graph fell apart.
  std::vector<std::pair<uint32_t, uint32_t>> dropped;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        if (rng->Bernoulli(drop_prob)) {
          dropped.push_back({id_of(r, c), id_of(r, c + 1)});
        } else {
          net.AddEdge(id_of(r, c), id_of(r, c + 1));
        }
      }
      if (r + 1 < rows) {
        if (rng->Bernoulli(drop_prob)) {
          dropped.push_back({id_of(r, c), id_of(r + 1, c)});
        } else {
          net.AddEdge(id_of(r, c), id_of(r + 1, c));
        }
      }
      if (r + 1 < rows && c + 1 < cols && rng->Bernoulli(diagonal_prob)) {
        net.AddEdge(id_of(r, c), id_of(r + 1, c + 1));
      }
    }
  }
  // Connectivity guarantee: restore dropped edges until connected.
  rng->Shuffle(&dropped);
  while (!net.IsConnected() && !dropped.empty()) {
    const auto [a, b] = dropped.back();
    dropped.pop_back();
    net.AddEdge(a, b);
  }
  MPN_ASSERT(net.IsConnected());
  return net;
}

}  // namespace mpn
