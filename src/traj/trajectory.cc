#include "traj/trajectory.h"

#include <algorithm>

#include "util/macros.h"

namespace mpn {

Trajectory RescaleSpeed(const Trajectory& traj, double x, size_t n_samples) {
  MPN_ASSERT(x > 0.0 && x <= 1.0);
  MPN_ASSERT(traj.size() >= 2);
  const size_t prefix = std::max<size_t>(
      2, static_cast<size_t>(x * static_cast<double>(traj.size())));
  // Cumulative arc length over the prefix.
  std::vector<double> cum(prefix, 0.0);
  for (size_t i = 1; i < prefix; ++i) {
    cum[i] = cum[i - 1] + Dist(traj.positions[i - 1], traj.positions[i]);
  }
  const double total = cum.back();
  Trajectory out;
  out.positions.reserve(n_samples);
  if (total <= 0.0) {
    out.positions.assign(n_samples, traj.positions[0]);
    return out;
  }
  size_t seg = 1;
  for (size_t k = 0; k < n_samples; ++k) {
    const double target =
        total * static_cast<double>(k) / static_cast<double>(n_samples - 1);
    while (seg < prefix - 1 && cum[seg] < target) ++seg;
    const double seg_len = cum[seg] - cum[seg - 1];
    const double frac =
        seg_len > 0.0 ? (target - cum[seg - 1]) / seg_len : 0.0;
    const Point a = traj.positions[seg - 1];
    const Point b = traj.positions[seg];
    out.positions.push_back(a + (b - a) * std::clamp(frac, 0.0, 1.0));
  }
  return out;
}

}  // namespace mpn
