// Trajectories: one location per timestamp.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/vec2.h"

namespace mpn {

/// A sampled trajectory; positions[t] is the location at timestamp t.
struct Trajectory {
  std::vector<Point> positions;

  size_t size() const { return positions.size(); }
  const Point& at(size_t t) const { return positions[t]; }

  /// Total polyline length.
  double Length() const {
    double len = 0.0;
    for (size_t i = 1; i < positions.size(); ++i) {
      len += Dist(positions[i - 1], positions[i]);
    }
    return len;
  }

  /// Maximum per-step displacement (the effective speed limit).
  double MaxStep() const {
    double s = 0.0;
    for (size_t i = 1; i < positions.size(); ++i) {
      s = std::max(s, Dist(positions[i - 1], positions[i]));
    }
    return s;
  }
};

/// Rescales a trajectory to speed fraction `x` of the original, following
/// the paper's protocol (Section 7.2, "Effect of user speed"): take the
/// prefix of the path with x fraction of its timestamps and resample
/// `n_samples` locations uniformly along that prefix polyline. The result
/// has the same number of timestamps but x times the speed.
Trajectory RescaleSpeed(const Trajectory& traj, double x, size_t n_samples);

}  // namespace mpn
