#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace mpn {

void RunningStat::Add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::Mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStat::Variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::Stddev() const { return std::sqrt(Variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const size_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  MPN_ASSERT(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace mpn
