// Dynamically sized bitset backed by 64-bit words.
//
// Used by the tile-set lossless compression (mpn/compress.h), where the
// number of 64-bit words is exactly the "values" count charged to the
// communication-cost model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/macros.h"

namespace mpn {

/// Fixed-size-after-construction bitset with word-level access.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `size` bits, all zero.
  explicit DynamicBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  /// Number of bits.
  size_t size() const { return size_; }

  /// Number of backing 64-bit words.
  size_t WordCount() const { return words_.size(); }

  /// Sets bit i to 1.
  void Set(size_t i) {
    MPN_DCHECK(i < size_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  /// Clears bit i.
  void Clear(size_t i) {
    MPN_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Tests bit i.
  bool Test(size_t i) const {
    MPN_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Raw word access (for serialization).
  const std::vector<uint64_t>& words() const { return words_; }

  /// Replaces backing words; `size` bits must fit in `words`.
  static DynamicBitset FromWords(std::vector<uint64_t> words, size_t size) {
    MPN_ASSERT(words.size() == (size + 63) / 64);
    DynamicBitset b;
    b.size_ = size;
    b.words_ = std::move(words);
    return b;
  }

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace mpn
