// Streaming and batch descriptive statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace mpn {

/// Online accumulator for mean / variance / extrema (Welford's algorithm).
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added so far.
  size_t count() const { return n_; }

  /// Arithmetic mean; 0 when empty.
  double Mean() const;

  /// Unbiased sample variance; 0 when fewer than two observations.
  double Variance() const;

  /// Sample standard deviation.
  double Stddev() const;

  /// Smallest observation; +inf when empty.
  double Min() const { return min_; }

  /// Largest observation; -inf when empty.
  double Max() const { return max_; }

  /// Sum of all observations.
  double Sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const RunningStat& other);

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the q-quantile (0 <= q <= 1) of the values using linear
/// interpolation between order statistics. Returns 0 for an empty vector.
double Quantile(std::vector<double> values, double q);

/// Mean of a vector; 0 when empty.
double MeanOf(const std::vector<double>& values);

}  // namespace mpn
