#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/macros.h"

namespace mpn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  MPN_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(FormatDouble(c, precision));
  AddRow(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << "  ";
      out << row[i];
      out << std::string(widths[i] - row[i].size(), ' ');
    }
    out << "\n";
  };
  emit_row(headers_);
  size_t total = 2;
  for (size_t w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), ToString().c_str());
  std::fflush(stdout);
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) f << ",";
      f << row[i];
    }
    f << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return static_cast<bool>(f);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace mpn
