// Common macros: assertions and compiler hints.
//
// MPN_ASSERT is active in all build types (the library is a research
// reproduction; correctness beats the last few percent of speed).
// MPN_DCHECK compiles away in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

#define MPN_ASSERT(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "MPN_ASSERT failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                       \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define MPN_ASSERT_MSG(cond, msg)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "MPN_ASSERT failed: %s (%s) at %s:%d\n", #cond,    \
                   (msg), __FILE__, __LINE__);                                \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define MPN_DCHECK(cond) ((void)0)
#else
#define MPN_DCHECK(cond) MPN_ASSERT(cond)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define MPN_LIKELY(x) __builtin_expect(!!(x), 1)
#define MPN_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define MPN_LIKELY(x) (x)
#define MPN_UNLIKELY(x) (x)
#endif
