#include "util/thread_pool.h"

#include <atomic>
#include <algorithm>

#include "util/macros.h"

namespace mpn {

/// Shared state of one ParallelFor call. Lives in a shared_ptr because
/// helper tasks may still sit in the queue after the call returned (they
/// become no-ops once every chunk is claimed).
struct ThreadPool::ForState {
  size_t n = 0;
  size_t grain = 1;
  size_t chunk_count = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;
  std::atomic<size_t> next_chunk{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t done = 0;                          // finished chunks (guarded by mu)
  std::vector<std::exception_ptr> errors;   // per chunk, guarded by mu
};

ThreadPool::ThreadPool(size_t threads) {
  const size_t count = std::max<size_t>(1, threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Post(std::function<void()> fn, uint64_t priority,
                      std::function<void()> on_complete) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MPN_ASSERT_MSG(!stop_, "Post on a stopped ThreadPool");
    queue_.push(Task{priority, next_seq_++, std::move(fn),
                     std::move(on_complete)});
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      // priority_queue::top is const; the task is about to be popped, so
      // moving out of it is safe.
      task = std::move(const_cast<Task&>(queue_.top()));
      queue_.pop();
    }
    task.fn();
    if (task.on_complete) task.on_complete();
  }
}

void ThreadPool::DrainChunks(const std::shared_ptr<ForState>& state) {
  for (;;) {
    const size_t chunk =
        state->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= state->chunk_count) return;
    const size_t begin = chunk * state->grain;
    const size_t end = std::min(state->n, begin + state->grain);
    std::exception_ptr error;
    try {
      (*state->body)(begin, end);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->errors[chunk] = error;
      if (++state->done == state->chunk_count) state->done_cv.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& body,
                             bool caller_participates) {
  MPN_ASSERT(grain >= 1);
  if (n == 0) return;
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->grain = grain;
  state->chunk_count = (n + grain - 1) / grain;
  state->body = &body;
  state->errors.resize(state->chunk_count);

  // One chunk: no sharing worth the synchronization (and only one executor
  // ever runs, so inline execution cannot oversubscribe).
  if (state->chunk_count == 1) {
    body(0, n);
    return;
  }

  // Helper tasks race (the caller and) each other for chunks; late-running
  // ones no-op. Urgent priority: the fan-out is sub-work of a job that is
  // already executing, so it must not queue behind unrelated events.
  const size_t helpers = std::min(
      workers_.size(),
      caller_participates ? state->chunk_count - 1 : state->chunk_count);
  for (size_t i = 0; i < helpers; ++i) {
    Post([state]() { DrainChunks(state); }, kUrgentPriority);
  }
  if (caller_participates) DrainChunks(state);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(
        lock, [&state]() { return state->done == state->chunk_count; });
  }
  for (const std::exception_ptr& e : state->errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace mpn
