#include "util/arena.h"

#include <cstdlib>
#include <new>

#include "util/macros.h"

namespace mpn {

namespace {

// Rounds `p` up to the next multiple of `align` (a power of two).
inline char* AlignUp(char* p, size_t align) {
  const uintptr_t u = reinterpret_cast<uintptr_t>(p);
  return reinterpret_cast<char*>((u + align - 1) & ~(uintptr_t{align} - 1));
}

}  // namespace

Arena::~Arena() {
  Block* b = head_;
  while (b != nullptr) {
    Block* prev = b->prev;
    ::operator delete(b);
    b = prev;
  }
}

void Arena::AddBlock(size_t min_bytes) {
  size_t payload = next_block_bytes_;
  while (payload < min_bytes) payload *= 2;
  next_block_bytes_ = payload * 2;  // geometric growth caps block count
  auto* block = static_cast<Block*>(
      ::operator new(sizeof(Block) + payload + alignof(std::max_align_t)));
  block->prev = head_;
  block->size = payload;
  head_ = block;
  cursor_ = AlignUp(reinterpret_cast<char*>(block + 1),
                    alignof(std::max_align_t));
  limit_ = cursor_ + payload;
  bytes_reserved_ += payload;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  MPN_DCHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  char* p = head_ != nullptr ? AlignUp(cursor_, align) : nullptr;
  if (p == nullptr || p + bytes > limit_) {
    AddBlock(bytes + align);
    p = AlignUp(cursor_, align);
  }
  cursor_ = p + bytes;
  bytes_used_ += bytes;
  return p;
}

void Arena::Reset() {
  // Keep only the newest (largest, by geometric growth) block; the chain
  // behind it existed only because the high-water mark was still rising.
  if (head_ != nullptr) {
    Block* b = head_->prev;
    while (b != nullptr) {
      Block* prev = b->prev;
      bytes_reserved_ -= b->size;
      ::operator delete(b);
      b = prev;
    }
    head_->prev = nullptr;
    cursor_ = AlignUp(reinterpret_cast<char*>(head_ + 1),
                      alignof(std::max_align_t));
    limit_ = cursor_ + head_->size;
  }
  bytes_used_ = 0;
}

}  // namespace mpn
