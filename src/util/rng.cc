#include "util/rng.h"

#include <cmath>

#include "util/macros.h"

namespace mpn {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform01();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MPN_ASSERT(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return lo + static_cast<int64_t>(x % span);
}

double Rng::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * f;
  has_spare_ = true;
  return u * f;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform01() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    MPN_ASSERT(w >= 0.0);
    total += w;
  }
  MPN_ASSERT(total > 0.0);
  double x = Uniform(0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: land on the last bucket
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace mpn
