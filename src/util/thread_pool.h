// Fixed-size thread pool for the concurrent server engine.
//
// Two execution primitives:
//
//  * Submit(fn)     — enqueues a task and returns a std::future for its
//    result; exceptions thrown by the task propagate through the future.
//  * ParallelFor    — partitions [0, n) into fixed-size chunks and runs a
//    body over each, using the pool AND the calling thread. The chunk
//    layout depends only on (n, grain), never on the worker count, so any
//    per-chunk accumulation a caller merges in chunk order is bit-identical
//    across thread counts — the property the engine's determinism guarantee
//    rests on. The caller claims chunks itself while it waits, so nested
//    ParallelFor calls from inside pool tasks cannot deadlock even when
//    every worker is busy: a saturated pool degrades to the caller running
//    all chunks inline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mpn {

/// Fixed-size worker pool. Threads are started in the constructor and
/// joined in the destructor; tasks still queued at destruction are drained
/// before shutdown completes.
class ThreadPool {
 public:
  /// Starts `threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t thread_count() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t HardwareThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by the task are rethrown by future::get.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs body(begin, end) over every chunk [k*grain, min(n, (k+1)*grain))
  /// of [0, n). Blocks until all chunks completed. The first exception
  /// (lowest chunk index) is rethrown here. `grain` must be >= 1.
  ///
  /// With `caller_participates` (the default) the calling thread claims
  /// chunks alongside the workers — mandatory when calling from inside a
  /// pool task (it is what makes nested calls deadlock-free, and the
  /// calling worker would otherwise idle-block a pool slot). Pass false
  /// from threads *outside* the pool that must not add an extra executor —
  /// the engine's round loop does, so that "N threads" means exactly N
  /// threads doing session work. Exception: a single-chunk call still runs
  /// inline on the caller (there is never more than one executor active,
  /// so nothing is oversubscribed and the handoff latency is saved).
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body,
                   bool caller_participates = true);

 private:
  struct ForState;  // shared chunk-claiming state of one ParallelFor

  void Enqueue(std::function<void()> fn);
  void WorkerLoop();
  /// Claims and runs chunks until none remain. Returns once every chunk is
  /// claimed (not necessarily finished).
  static void DrainChunks(const std::shared_ptr<ForState>& state);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mpn
