// Fixed-size thread pool for the concurrent server engine.
//
// Three execution primitives:
//
//  * Post(fn, priority, on_complete) — enqueues a fire-and-forget task into
//    a priority queue (smaller priority value runs first; equal priorities
//    run in submission order). The optional completion callback fires on
//    the worker right after the task body — the event-driven scheduler uses
//    it to re-arm a session when its async recomputation lands. Task bodies
//    must not throw (there is no future to carry the exception).
//  * Submit(fn)     — enqueues a task at the default priority and returns a
//    std::future for its result; exceptions thrown by the task propagate
//    through the future.
//  * ParallelFor    — partitions [0, n) into fixed-size chunks and runs a
//    body over each, using the pool AND the calling thread. The chunk
//    layout depends only on (n, grain), never on the worker count, so any
//    per-chunk accumulation a caller merges in chunk order is bit-identical
//    across thread counts — the property the engine's determinism guarantee
//    rests on. The caller claims chunks itself while it waits, so nested
//    ParallelFor calls from inside pool tasks cannot deadlock even when
//    every worker is busy: a saturated pool degrades to the caller running
//    all chunks inline. Helper tasks run at kUrgentPriority so a fan-out
//    issued from inside a running job is never starved by queued events.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mpn {

/// Fixed-size worker pool. Threads are started in the constructor and
/// joined in the destructor; tasks still queued at destruction are drained
/// before shutdown completes.
class ThreadPool {
 public:
  /// Runs before anything else in the queue (ParallelFor helpers: sub-work
  /// of a job that is already executing).
  static constexpr uint64_t kUrgentPriority = 0;
  /// Priority of plain Submit calls; prioritized work should sort below
  /// this to preempt the default lane.
  static constexpr uint64_t kDefaultPriority = uint64_t{1} << 63;

  /// Starts `threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t thread_count() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t HardwareThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

  /// Enqueues a fire-and-forget task. Smaller `priority` runs first; ties
  /// run in submission order. `on_complete` (optional) runs on the same
  /// worker immediately after `fn`. Neither callable may throw.
  void Post(std::function<void()> fn, uint64_t priority = kDefaultPriority,
            std::function<void()> on_complete = nullptr);

  /// Enqueues `fn` at the default priority and returns a future for its
  /// result. Exceptions thrown by the task are rethrown by future::get.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Post([task]() { (*task)(); });
    return future;
  }

  /// Runs body(begin, end) over every chunk [k*grain, min(n, (k+1)*grain))
  /// of [0, n). Blocks until all chunks completed. The first exception
  /// (lowest chunk index) is rethrown here. `grain` must be >= 1.
  ///
  /// With `caller_participates` (the default) the calling thread claims
  /// chunks alongside the workers — mandatory when calling from inside a
  /// pool task (it is what makes nested calls deadlock-free, and the
  /// calling worker would otherwise idle-block a pool slot). Pass false
  /// from threads *outside* the pool that must not add an extra executor,
  /// so that "N threads" means exactly N threads doing work. Exception: a
  /// single-chunk call still runs inline on the caller (there is never
  /// more than one executor active, so nothing is oversubscribed and the
  /// handoff latency is saved).
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body,
                   bool caller_participates = true);

 private:
  struct ForState;  // shared chunk-claiming state of one ParallelFor

  /// One queued task with its ordering key.
  struct Task {
    uint64_t priority;
    uint64_t seq;
    std::function<void()> fn;
    std::function<void()> on_complete;
  };
  /// Min-heap order: smallest (priority, seq) on top.
  struct TaskOrder {
    bool operator()(const Task& a, const Task& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  void WorkerLoop();
  /// Claims and runs chunks until none remain. Returns once every chunk is
  /// claimed (not necessarily finished).
  static void DrainChunks(const std::shared_ptr<ForState>& state);

  std::vector<std::thread> workers_;
  std::priority_queue<Task, std::vector<Task>, TaskOrder> queue_;
  uint64_t next_seq_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mpn
