// Bump-pointer arena for per-recompute scratch memory.
//
// The tile-MSR hot path allocates short-lived buffers on every candidate
// scan (SoA tile snapshots, per-chunk fan-out scratch, statistics blocks).
// Routing those through the general-purpose allocator costs a lock + free
// per scan; an Arena turns each allocation into a pointer bump and each
// "free" into a single Reset() at a point where no allocation is live.
//
// Usage contract:
//  * Allocate()/AllocateArray() return uninitialized storage valid until
//    the next Reset() (or destruction). Nothing is ever freed individually
//    and destructors are NOT run — only trivially destructible payloads
//    belong in an arena.
//  * Reset() retains the capacity of the largest block seen so far, so a
//    steady-state recompute performs zero heap allocations.
//  * Not thread-safe: one arena per owner (e.g. one per MpnServer, whose
//    Recompute calls are serialized by the owning GroupSession). Parallel
//    fan-out workers may *read and write* arena-backed buffers handed to
//    them, but only the owner thread may call Allocate()/Reset().
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace mpn {

class Arena {
 public:
  /// `initial_block_bytes` sizes the first block lazily allocated on first
  /// use; subsequent blocks grow geometrically.
  explicit Arena(size_t initial_block_bytes = 1 << 14)
      : next_block_bytes_(initial_block_bytes < kMinBlockBytes
                              ? kMinBlockBytes
                              : initial_block_bytes) {}
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two), valid
  /// until Reset(). Zero-byte requests return a unique non-null pointer.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Typed array allocation; T must be trivially destructible (the arena
  /// never runs destructors). The storage is uninitialized.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "arena storage is reclaimed without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Invalidates every outstanding allocation and rewinds to the start of
  /// a single retained block sized for the high-water mark, so steady-state
  /// callers stop touching the heap entirely.
  void Reset();

  /// Bytes handed out since the last Reset (diagnostics).
  size_t bytes_used() const { return bytes_used_; }

  /// Capacity currently held across all blocks (diagnostics).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    Block* prev;
    size_t size;  // payload bytes following the header
  };
  static constexpr size_t kMinBlockBytes = 1024;

  /// Allocates a fresh block of at least `min_bytes` payload and makes it
  /// current.
  void AddBlock(size_t min_bytes);

  Block* head_ = nullptr;    // current (most recent) block
  char* cursor_ = nullptr;   // next free byte in head_
  char* limit_ = nullptr;    // one past head_'s payload
  size_t next_block_bytes_;  // size of the next block to allocate
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace mpn
