// Wall-clock timing helpers for the experiment harness.
#pragma once

#include <chrono>

namespace mpn {

/// Monotonic stopwatch measuring elapsed wall-clock time.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates total time across many timed sections.
class TimeAccumulator {
 public:
  /// RAII scope that adds its lifetime to the accumulator.
  class Scope {
   public:
    explicit Scope(TimeAccumulator* acc) : acc_(acc) {}
    ~Scope() { acc_->total_seconds_ += timer_.ElapsedSeconds(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TimeAccumulator* acc_;
    Timer timer_;
  };

  /// Total accumulated seconds.
  double TotalSeconds() const { return total_seconds_; }

  /// Adds raw seconds (for merging measurements).
  void AddSeconds(double s) { total_seconds_ += s; }

  /// Clears the accumulated total.
  void Reset() { total_seconds_ = 0.0; }

 private:
  double total_seconds_ = 0.0;
};

}  // namespace mpn
