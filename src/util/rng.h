// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (workload generators, samplers in
// property tests, simulation jitter) draw from Rng so that every experiment
// is exactly reproducible from a 64-bit seed. The engine is xoshiro256**,
// which is small, fast and has no measurable bias for our use cases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mpn {

/// Seedable 64-bit PRNG (xoshiro256**) with convenience samplers.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed via splitmix64 expansion.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box-Muller, cached spare).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-entity streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace mpn
