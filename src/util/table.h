// Lightweight table formatting for the benchmark harness: prints aligned
// paper-style series tables to stdout and mirrors them to CSV files.
#pragma once

#include <string>
#include <vector>

namespace mpn {

/// Column-aligned text table with optional CSV export.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::vector<double>& cells, int precision = 4);

  /// Renders the aligned table to a string.
  std::string ToString() const;

  /// Prints to stdout with a title line.
  void Print(const std::string& title) const;

  /// Writes the table as CSV to `path`. Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for mixed-type rows).
std::string FormatDouble(double v, int precision = 4);

}  // namespace mpn
