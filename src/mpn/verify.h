// Conservative verification of safe-region groups (Section 4.1, Lemma 1).
//
// Verify(R, po, p) returns true only if the dominant distance of po is
// guaranteed to be <= that of p for *every* location instance in
// R_1 x ... x R_m. The test is conservative: no false positives, possible
// false negatives (Fig. 6b) — those are what the tile-group refinements in
// mpn/gt_verify.h recover.
#pragma once

#include <vector>

#include "index/gnn.h"
#include "mpn/safe_region.h"

namespace mpn {

/// Lemma 1: ||po, R||_top <= ||p, R||_bot for the MAX objective.
bool VerifyLemma1(const std::vector<SafeRegion>& regions, const Point& po,
                  const Point& p);

/// Sum-objective analogue used by the circle method and by exhaustive tile
/// group checks: sum_i ||po, R_i||_max <= sum_i ||p, R_i||_min. Conservative
/// (the exact sum criterion is the hyperbola-based one in mpn/gt_verify.h).
bool VerifySumConservative(const std::vector<SafeRegion>& regions,
                           const Point& po, const Point& p);

/// Dispatches on the objective.
bool VerifyConservative(const std::vector<SafeRegion>& regions,
                        const Point& po, const Point& p, Objective obj);

}  // namespace mpn
