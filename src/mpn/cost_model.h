// Analytical cost model (the paper's Section-8 future work: "develop a
// cost model for estimating the update frequency, the communication cost,
// and the running time of our methods").
//
// The model targets the circle method, whose geometry is closed-form: a
// user escapes her circle of radius rmax after traveling ~rmax, i.e. after
// ~rmax / v timestamps under near-straight movement. Sampling group
// configurations from the workload yields the distribution of rmax
// (half the gap between the best and second-best aggregate distances);
// the expected update frequency is then
//
//   freq ~= E[ 1 / max(1, rmax / v) ]
//
// (the max() accounts for the one-timestamp floor: a region smaller than
// one step forces an update every tick). Communication cost follows
// deterministically from the protocol arithmetic: an update costs
// 1 + 2(m-1) packets of probing plus m result packets.
#pragma once

#include <cstddef>
#include <vector>

#include "index/gnn.h"
#include "net/message.h"

namespace mpn {

/// Closed-form estimates for the circle method.
struct CircleCostEstimate {
  double update_frequency = 0.0;   ///< expected updates per timestamp
  double packets_per_update = 0.0; ///< protocol packets per update
  double packets_per_timestamp = 0.0;
  double mean_rmax = 0.0;          ///< sampled mean safe radius
};

/// Estimates circle-method costs from `configs` — sampled instantaneous
/// group configurations (user location vectors drawn from the workload) —
/// and the per-timestamp user speed `v`.
CircleCostEstimate EstimateCircleCost(
    SpatialIndex tree, const std::vector<std::vector<Point>>& configs,
    Objective obj, double speed, const PacketModel& model = PacketModel());

/// Protocol packets per update for a group of size m when every safe region
/// ships `region_values` values (Fig. 3 arithmetic; exact, not estimated).
double PacketsPerUpdate(size_t m, size_t region_values,
                        const PacketModel& model = PacketModel());

}  // namespace mpn
