#include "mpn/cost_model.h"

#include <algorithm>

#include "mpn/circle_msr.h"
#include "util/macros.h"

namespace mpn {

double PacketsPerUpdate(size_t m, size_t region_values,
                        const PacketModel& model) {
  MPN_ASSERT(m >= 1);
  // Step 1: one location update; step 2: (m-1) probes + (m-1) replies;
  // step 3: m results of (po + region) values.
  double packets = static_cast<double>(model.PacketsForValues(
      kValuesPerPoint + kValuesPerMotionHint));
  packets += static_cast<double>((m - 1) * (model.PacketsForValues(0) +
                                            model.PacketsForValues(
                                                kValuesPerPoint +
                                                kValuesPerMotionHint)));
  packets += static_cast<double>(
      m * model.PacketsForValues(kValuesPerPoint + region_values));
  return packets;
}

CircleCostEstimate EstimateCircleCost(
    SpatialIndex tree, const std::vector<std::vector<Point>>& configs,
    Objective obj, double speed, const PacketModel& model) {
  MPN_ASSERT(!configs.empty());
  MPN_ASSERT(speed > 0.0);
  CircleCostEstimate out;
  double freq_sum = 0.0, rmax_sum = 0.0;
  size_t m = configs.front().size();
  for (const auto& users : configs) {
    MPN_ASSERT(users.size() == m);
    const auto top2 = FindGnn(tree, users, obj, 2);
    const double rmax =
        top2.size() < 2
            ? 1e15
            : MaxCircleRadius(top2[0].agg, top2[1].agg, m, obj);
    rmax_sum += std::min(rmax, 1e15);
    // Escape after ~rmax/speed timestamps, floored at one tick.
    const double escape_ticks = std::max(1.0, rmax / speed);
    freq_sum += 1.0 / escape_ticks;
  }
  out.update_frequency = freq_sum / static_cast<double>(configs.size());
  out.mean_rmax = rmax_sum / static_cast<double>(configs.size());
  out.packets_per_update = PacketsPerUpdate(m, kValuesPerCircle, model);
  out.packets_per_timestamp = out.update_frequency * out.packets_per_update;
  return out;
}

}  // namespace mpn
