// Circular safe regions (Section 4, Algorithm 1; Sum variant Section 6.2).
//
// Every user receives a circle centered at her current location with the
// same radius rmax:
//   MAX: rmax = (||p2, U||_max - ||po, U||_max) / 2        (Theorem 1)
//   SUM: rmax = (||p2, U||_sum - ||po, U||_sum) / (2 m)    (Theorem 5)
// where p2 is the second-best meeting point, found by the incremental GNN
// search on the R-tree.
#pragma once

#include <cstdint>
#include <vector>

#include "index/gnn.h"
#include "mpn/safe_region.h"

namespace mpn {

/// Result of a circle safe-region computation.
struct CircleMsrResult {
  uint32_t po_id = 0;    ///< id of the optimal meeting point
  Point po;              ///< its location
  double po_agg = 0.0;   ///< ||po, U||_agg
  double rmax = 0.0;     ///< common safe-region radius
  std::vector<SafeRegion> regions;  ///< one circle per user
};

/// Maximum common circle radius given the best and second-best aggregate
/// distances (Theorems 1 / 5). `m` is the group size; returns a very large
/// radius when there is no second-best point (single-POI dataset).
double MaxCircleRadius(double best_agg, double second_agg, size_t m,
                       Objective obj);

/// Algorithm 1 (Circle-MSR): finds the top-2 GNNs on the index and derives
/// the circular safe regions. `tree` accepts either backend.
CircleMsrResult ComputeCircleMsr(SpatialIndex tree,
                                 const std::vector<Point>& users,
                                 Objective obj);

}  // namespace mpn
