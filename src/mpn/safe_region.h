// Safe-region representations (Sections 4 and 5).
//
// A safe region is either a circle (Section 4, Circle-MSR) or a set of
// grid-anchored square tiles (Section 5, Tile-MSR). Tiles are kept in
// *canonical grid coordinates*: a TileRegion fixes an origin (the lower-left
// corner of the initial tile, which is centered at the user location) and a
// base tile side `delta`; a tile at level k is a cell of the 2^k-times
// refined grid. This makes tile subdivision, containment tests and the
// lossless compression of mpn/compress.h exact (no floating-point drift
// between server and client).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/circle.h"
#include "geom/lanes.h"
#include "geom/rect.h"
#include "geom/vec2.h"
#include "util/macros.h"

namespace mpn {

/// A square tile in canonical grid coordinates. Level-k cells have side
/// delta / 2^k; cell (ix, iy) covers
/// [origin + (ix, iy) * side, origin + (ix+1, iy+1) * side].
struct GridTile {
  int32_t level = 0;
  int32_t ix = 0;
  int32_t iy = 0;

  /// The four children at level+1 (quadrants of this tile).
  void Children(GridTile out[4]) const {
    for (int q = 0; q < 4; ++q) {
      out[q] = GridTile{level + 1, 2 * ix + (q & 1), 2 * iy + (q >> 1)};
    }
  }

  bool operator==(const GridTile& o) const {
    return level == o.level && ix == o.ix && iy == o.iy;
  }
};

/// Tile-based safe region for one user: a set of disjoint grid tiles.
class TileRegion {
 public:
  TileRegion() = default;

  /// Creates an empty region anchored at user location `user` with base tile
  /// side `delta`. The initial tile (level 0, cell (0,0)) is *not* added
  /// automatically.
  TileRegion(const Point& user, double delta)
      : origin_{user.x - delta / 2.0, user.y - delta / 2.0}, delta_(delta) {}

  /// Constructs an empty region from an explicit anchor (decoder side; the
  /// anchor must match the encoder's bit-for-bit, so it is passed through
  /// rather than recomputed from the user location).
  static TileRegion FromOrigin(const Point& origin, double delta) {
    TileRegion r;
    r.origin_ = origin;
    r.delta_ = delta;
    return r;
  }

  /// Anchor point (lower-left corner of cell (0,0,0)).
  const Point& origin() const { return origin_; }

  /// Base (level-0) tile side length; delta = sqrt(2) * rmax in Algorithm 3.
  double delta() const { return delta_; }

  /// Cell side at `level`.
  double CellSide(int level) const {
    return delta_ / static_cast<double>(int64_t{1} << level);
  }

  /// Geometric extent of a grid tile.
  Rect TileRect(const GridTile& t) const {
    const double side = CellSide(t.level);
    const Point lo{origin_.x + t.ix * side, origin_.y + t.iy * side};
    return Rect(lo, {lo.x + side, lo.y + side});
  }

  /// Adds a tile. Tiles added by the MSR algorithms are disjoint by
  /// construction (a spiral cell is added whole or via disjoint sub-tiles).
  void Add(const GridTile& t) {
    tiles_.push_back(t);
    const Rect r = TileRect(t);
    rects_.push_back(r);
    lo_x_.push_back(r.lo.x);
    lo_y_.push_back(r.lo.y);
    hi_x_.push_back(r.hi.x);
    hi_y_.push_back(r.hi.y);
  }

  /// Number of tiles.
  size_t size() const { return tiles_.size(); }

  /// True when no tile has been added.
  bool empty() const { return tiles_.empty(); }

  const std::vector<GridTile>& tiles() const { return tiles_; }

  /// Cached geometric extents, parallel to tiles().
  const std::vector<Rect>& rects() const { return rects_; }

  /// The same extents as SoA coordinate lanes (parallel to tiles()); the
  /// batched verification kernels (geom/lanes.h, mpn/tile_verify.h) read
  /// these directly.
  RectLanes lanes() const {
    return RectLanes{lo_x_.data(), lo_y_.data(), hi_x_.data(), hi_y_.data(),
                     lo_x_.size()};
  }

  /// True when `p` lies in some tile (closed containment).
  bool Contains(const Point& p) const {
    for (const Rect& r : rects_) {
      if (r.Contains(p)) return true;
    }
    return false;
  }

  /// ||p, R_i||_min = min over tiles of the rect min-distance. Runs the
  /// branch-light lane reduction; value-identical to folding
  /// Rect::MinDist over rects() (sqrt is monotone, min selects).
  double MinDist(const Point& p) const {
    MPN_DCHECK(!rects_.empty());
    return RectMinDistReduce(lanes(), p);
  }

  /// ||p, R_i||_max = max over tiles of the rect max-distance (lane
  /// reduction, value-identical to the scalar fold).
  double MaxDist(const Point& p) const {
    MPN_DCHECK(!rects_.empty());
    return RectMaxDistReduce(lanes(), p);
  }

  /// Bounding box of all tiles.
  Rect Bounds() const {
    Rect b = Rect::Empty();
    for (const Rect& r : rects_) b.ExpandToInclude(r);
    return b;
  }

 private:
  Point origin_;
  double delta_ = 0.0;
  std::vector<GridTile> tiles_;
  std::vector<Rect> rects_;
  // SoA coordinate lanes mirroring rects_ (see lanes()).
  std::vector<double> lo_x_, lo_y_, hi_x_, hi_y_;
};

/// A safe region handed to a client: circle or tile set.
class SafeRegion {
 public:
  SafeRegion() : kind_(Kind::kCircle) {}

  /// Shape discriminator.
  enum class Kind { kCircle, kTiles };

  static SafeRegion MakeCircle(const Circle& c) {
    SafeRegion r;
    r.kind_ = Kind::kCircle;
    r.circle_ = c;
    return r;
  }

  static SafeRegion MakeTiles(TileRegion t) {
    SafeRegion r;
    r.kind_ = Kind::kTiles;
    r.tiles_ = std::move(t);
    return r;
  }

  Kind kind() const { return kind_; }
  bool is_circle() const { return kind_ == Kind::kCircle; }
  const Circle& circle() const { return circle_; }
  const TileRegion& tiles() const { return tiles_; }

  /// True when the user location `p` is inside the region.
  bool Contains(const Point& p) const {
    return is_circle() ? circle_.Contains(p) : tiles_.Contains(p);
  }

  /// ||p, R_i||_min (Definition 1).
  double MinDist(const Point& p) const {
    return is_circle() ? circle_.MinDist(p) : tiles_.MinDist(p);
  }

  /// ||p, R_i||_max (Definition 1).
  double MaxDist(const Point& p) const {
    return is_circle() ? circle_.MaxDist(p) : tiles_.MaxDist(p);
  }

 private:
  Kind kind_;
  Circle circle_;
  TileRegion tiles_;
};

/// Dominant maximum distance ||p, R||_top = max_i ||p, R_i||_max (Eq. 4).
double DominantMaxDist(const std::vector<SafeRegion>& regions, const Point& p);

/// Dominant minimum distance ||p, R||_bot = max_i ||p, R_i||_min (Eq. 3).
double DominantMinDist(const std::vector<SafeRegion>& regions, const Point& p);

}  // namespace mpn
