// Per-tile verification back-ends for Divide-Verify (Algorithm 2).
//
// A TileVerifier answers: "given the current (already valid) tile regions R
// and the optimum po, does allocating tile s to user_i keep po optimal
// against candidate p for every location instance?" Three back-ends:
//
//  * MaxGtVerifier  — GT-Verify (Algorithm 4 / Theorem 2): partitions each
//    other user's tiles into the four dominance groups induced by
//    do = ||po,s||_max and dp = ||p,s||_min and tests the grouped region
//    sets with Lemma 1 in a single pass per user. Conservative and sound;
//    O(sum_j |R_j|) per (tile, candidate).
//
//  * MaxItVerifier  — IT-Verify: exhaustively enumerates every tile group
//    <t_1..t_m> and applies Lemma 1 per group. Exact w.r.t. tile-group
//    granularity but exponential; reference implementation for tests and
//    the ablation benchmark.
//
//  * SumHyperbolaVerifier — Algorithm 6: minimizes the comparison function
//    F(p', po, L) = sum_i (||p',l_i|| - ||po,l_i||) per user independently
//    using the exact focal-difference minimum over each tile (hyperbola
//    analysis, Fig. 12), with per-user memo tables keyed by candidate id.
//    Memo entries are validated against the owning region's size so that
//    buffered candidate sets (which may skip a candidate while a region
//    grows) can never leave a stale, unsafely large minimum behind.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/focal_diff.h"
#include "geom/lanes.h"
#include "mpn/candidates.h"
#include "mpn/safe_region.h"
#include "util/arena.h"

namespace mpn {

/// Immutable SoA snapshot of every user's tile rects for one candidate
/// scan of Divide-Verify. Built once per (tile, candidate-set) scan by
/// BuildTileLanes; the per-candidate kernels then run over the contiguous
/// lanes instead of walking vector<Rect> per user.
///
/// Layout: the tiles of user j occupy lanes [offset[j], offset[j+1]) of
/// `rects` and of every parallel array. `max_po` caches the per-tile
/// ||po, t||_max — the candidate-independent half of GT-Verify — so it is
/// computed once per scan instead of once per (tile, candidate).
struct TileLanes {
  size_t users = 0;                ///< m
  size_t total = 0;                ///< total tiles across users
  const size_t* offset = nullptr;  ///< users + 1 prefix offsets
  RectLanes rects;                 ///< `total` rect lanes
  const double* max_po = nullptr;  ///< per-tile MaxDist(po), hoisted
  double d_o = 0.0;                ///< s.MaxDist(po) of the tile under test
};

/// Builds the scan snapshot for tile `s` from the current regions. All
/// storage comes from `arena` and stays valid until the arena is reset;
/// the per-tile geometry is copied out of the regions' SoA lanes.
TileLanes BuildTileLanes(const std::vector<TileRegion>& regions, const Rect& s,
                         const Point& po, Arena* arena);

/// Verification statistics (shared across back-ends).
struct VerifyStats {
  uint64_t calls = 0;            ///< VerifyTile invocations
  uint64_t accepted = 0;         ///< calls returning true
  uint64_t tile_groups = 0;      ///< tile groups enumerated (IT only)
  uint64_t focal_evals = 0;      ///< focal-diff minimizations (SUM only)
  uint64_t memo_hits = 0;        ///< memo cache hits (SUM only)
};

/// Interface used by Divide-Verify.
class TileVerifier {
 public:
  virtual ~TileVerifier() = default;

  /// True iff tile `s` for `user_i` is verified safe against candidate
  /// `cand` given the current regions (optimum is `po`).
  virtual bool VerifyTile(const std::vector<TileRegion>& regions,
                          size_t user_i, const Rect& s, const Candidate& cand,
                          const Point& po) = 0;

  /// True when VerifyTileThreadSafe may run concurrently from several
  /// threads (the engine's per-user candidate fan-out). Back-ends with
  /// mutable cross-call state (memo tables) return false and are always
  /// driven sequentially.
  virtual bool parallel_safe() const { return false; }

  /// Re-entrant verification core: identical decision to VerifyTile but
  /// accumulates counters into `stats` instead of the member state. Only
  /// called when parallel_safe() is true.
  virtual bool VerifyTileThreadSafe(const std::vector<TileRegion>& regions,
                                    size_t user_i, const Rect& s,
                                    const Candidate& cand, const Point& po,
                                    VerifyStats* stats) const;

  /// True when the back-end has a lane (SoA) kernel: Divide-Verify then
  /// builds one TileLanes snapshot per candidate scan and drives
  /// VerifyTileLanes instead of the AoS walk. Implies parallel_safe().
  virtual bool lanes_capable() const { return false; }

  /// SoA verification core: decision and counters bit-identical to
  /// VerifyTileThreadSafe, but reading the prebuilt snapshot. The lane loop
  /// runs entirely in the squared-distance domain (no per-lane sqrt; see
  /// SqrtLtThreshold for the exactness argument), which is where the SoA
  /// kernel's throughput comes from.
  virtual bool VerifyTileLanes(const TileLanes& lanes, size_t user_i,
                               const Rect& s, const Candidate& cand,
                               VerifyStats* stats) const;

  /// Folds externally accumulated counters (one fan-out chunk) into the
  /// member statistics.
  void MergeStats(const VerifyStats& s) {
    stats_.calls += s.calls;
    stats_.accepted += s.accepted;
    stats_.tile_groups += s.tile_groups;
    stats_.focal_evals += s.focal_evals;
    stats_.memo_hits += s.memo_hits;
  }

  /// Called after `s` was accepted for all candidates and inserted;
  /// `new_region_size` is the region's tile count after insertion.
  virtual void OnCommitted(size_t user_i, size_t new_region_size) {
    (void)user_i;
    (void)new_region_size;
  }

  /// Called when the tile's candidate scan failed (before any split).
  virtual void OnRejected() {}

  const VerifyStats& stats() const { return stats_; }

 protected:
  VerifyStats stats_;
};

/// GT-Verify for the MAX objective (Algorithm 4, Theorem 2). Stateless
/// between calls, so the parallel fan-out is safe.
class MaxGtVerifier : public TileVerifier {
 public:
  bool VerifyTile(const std::vector<TileRegion>& regions, size_t user_i,
                  const Rect& s, const Candidate& cand,
                  const Point& po) override;

  bool parallel_safe() const override { return true; }

  bool VerifyTileThreadSafe(const std::vector<TileRegion>& regions,
                            size_t user_i, const Rect& s,
                            const Candidate& cand, const Point& po,
                            VerifyStats* stats) const override;

  bool lanes_capable() const override { return true; }

  bool VerifyTileLanes(const TileLanes& lanes, size_t user_i, const Rect& s,
                       const Candidate& cand,
                       VerifyStats* stats) const override;
};

/// IT-Verify for the MAX objective: exhaustive tile-group enumeration.
/// Aborts if the number of groups exceeds `max_groups` (guard against
/// accidental exponential blow-ups in production paths).
class MaxItVerifier : public TileVerifier {
 public:
  explicit MaxItVerifier(uint64_t max_groups = 2'000'000)
      : max_groups_(max_groups) {}

  bool VerifyTile(const std::vector<TileRegion>& regions, size_t user_i,
                  const Rect& s, const Candidate& cand,
                  const Point& po) override;

  bool parallel_safe() const override { return true; }

  bool VerifyTileThreadSafe(const std::vector<TileRegion>& regions,
                            size_t user_i, const Rect& s,
                            const Candidate& cand, const Point& po,
                            VerifyStats* stats) const override;

 private:
  uint64_t max_groups_;
};

/// Sum-GT-Verify (Algorithm 6) with memoization (Section 6.3.1).
class SumHyperbolaVerifier : public TileVerifier {
 public:
  /// `po` is the session optimum; `m` the group size.
  SumHyperbolaVerifier(const Point& po, size_t m) : po_(po), memo_(m) {}

  bool VerifyTile(const std::vector<TileRegion>& regions, size_t user_i,
                  const Rect& s, const Candidate& cand,
                  const Point& po) override;

  void OnCommitted(size_t user_i, size_t new_region_size) override;
  void OnRejected() override { pending_.clear(); }

 private:
  struct MemoEntry {
    double min_f = 0.0;       // min over tiles of the focal difference
    size_t region_size = 0;   // |R_j| when the entry was (re)computed
  };

  /// Memoized min_{l in R_j} (||p',l|| - ||po,l||); recomputed when R_j has
  /// grown since the entry was filled (unless refreshed by OnCommitted).
  double UserMinFocalDiff(size_t j, const TileRegion& region,
                          const Candidate& cand);

  Point po_;
  std::vector<std::unordered_map<uint32_t, MemoEntry>> memo_;
  // Focal minima of the tile currently under scan, keyed by candidate id;
  // committed into memo_[user] only when the tile is accepted.
  std::unordered_map<uint32_t, double> pending_;
};

/// Name of the lane-aggregation path the SoA verifier is running on
/// ("scalar", "sse2" or "avx2"). The widest CPU-supported path is chosen
/// at first use; MPN_LANE_ISA=scalar|sse2|avx2 in the environment pins a
/// narrower one (requests the hardware cannot honor fall back).
const char* LaneIsaName();

/// Test hook: re-resolves the lane-aggregation path as if MPN_LANE_ISA were
/// `isa` (nullptr = auto-detect). Every path is bit-identical, which is
/// exactly what differential tests pin down with this. Not thread-safe
/// against in-flight verifications.
void SetLaneIsaForTesting(const char* isa);

}  // namespace mpn
