// Per-tile verification back-ends for Divide-Verify (Algorithm 2).
//
// A TileVerifier answers: "given the current (already valid) tile regions R
// and the optimum po, does allocating tile s to user_i keep po optimal
// against candidate p for every location instance?" Three back-ends:
//
//  * MaxGtVerifier  — GT-Verify (Algorithm 4 / Theorem 2): partitions each
//    other user's tiles into the four dominance groups induced by
//    do = ||po,s||_max and dp = ||p,s||_min and tests the grouped region
//    sets with Lemma 1 in a single pass per user. Conservative and sound;
//    O(sum_j |R_j|) per (tile, candidate).
//
//  * MaxItVerifier  — IT-Verify: exhaustively enumerates every tile group
//    <t_1..t_m> and applies Lemma 1 per group. Exact w.r.t. tile-group
//    granularity but exponential; reference implementation for tests and
//    the ablation benchmark.
//
//  * SumHyperbolaVerifier — Algorithm 6: minimizes the comparison function
//    F(p', po, L) = sum_i (||p',l_i|| - ||po,l_i||) per user independently
//    using the exact focal-difference minimum over each tile (hyperbola
//    analysis, Fig. 12), with per-user memo tables keyed by candidate id.
//    Memo entries are validated against the owning region's size so that
//    buffered candidate sets (which may skip a candidate while a region
//    grows) can never leave a stale, unsafely large minimum behind.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/focal_diff.h"
#include "mpn/candidates.h"
#include "mpn/safe_region.h"

namespace mpn {

/// Verification statistics (shared across back-ends).
struct VerifyStats {
  uint64_t calls = 0;            ///< VerifyTile invocations
  uint64_t accepted = 0;         ///< calls returning true
  uint64_t tile_groups = 0;      ///< tile groups enumerated (IT only)
  uint64_t focal_evals = 0;      ///< focal-diff minimizations (SUM only)
  uint64_t memo_hits = 0;        ///< memo cache hits (SUM only)
};

/// Interface used by Divide-Verify.
class TileVerifier {
 public:
  virtual ~TileVerifier() = default;

  /// True iff tile `s` for `user_i` is verified safe against candidate
  /// `cand` given the current regions (optimum is `po`).
  virtual bool VerifyTile(const std::vector<TileRegion>& regions,
                          size_t user_i, const Rect& s, const Candidate& cand,
                          const Point& po) = 0;

  /// True when VerifyTileThreadSafe may run concurrently from several
  /// threads (the engine's per-user candidate fan-out). Back-ends with
  /// mutable cross-call state (memo tables) return false and are always
  /// driven sequentially.
  virtual bool parallel_safe() const { return false; }

  /// Re-entrant verification core: identical decision to VerifyTile but
  /// accumulates counters into `stats` instead of the member state. Only
  /// called when parallel_safe() is true.
  virtual bool VerifyTileThreadSafe(const std::vector<TileRegion>& regions,
                                    size_t user_i, const Rect& s,
                                    const Candidate& cand, const Point& po,
                                    VerifyStats* stats) const;

  /// Folds externally accumulated counters (one fan-out chunk) into the
  /// member statistics.
  void MergeStats(const VerifyStats& s) {
    stats_.calls += s.calls;
    stats_.accepted += s.accepted;
    stats_.tile_groups += s.tile_groups;
    stats_.focal_evals += s.focal_evals;
    stats_.memo_hits += s.memo_hits;
  }

  /// Called after `s` was accepted for all candidates and inserted;
  /// `new_region_size` is the region's tile count after insertion.
  virtual void OnCommitted(size_t user_i, size_t new_region_size) {
    (void)user_i;
    (void)new_region_size;
  }

  /// Called when the tile's candidate scan failed (before any split).
  virtual void OnRejected() {}

  const VerifyStats& stats() const { return stats_; }

 protected:
  VerifyStats stats_;
};

/// GT-Verify for the MAX objective (Algorithm 4, Theorem 2). Stateless
/// between calls, so the parallel fan-out is safe.
class MaxGtVerifier : public TileVerifier {
 public:
  bool VerifyTile(const std::vector<TileRegion>& regions, size_t user_i,
                  const Rect& s, const Candidate& cand,
                  const Point& po) override;

  bool parallel_safe() const override { return true; }

  bool VerifyTileThreadSafe(const std::vector<TileRegion>& regions,
                            size_t user_i, const Rect& s,
                            const Candidate& cand, const Point& po,
                            VerifyStats* stats) const override;
};

/// IT-Verify for the MAX objective: exhaustive tile-group enumeration.
/// Aborts if the number of groups exceeds `max_groups` (guard against
/// accidental exponential blow-ups in production paths).
class MaxItVerifier : public TileVerifier {
 public:
  explicit MaxItVerifier(uint64_t max_groups = 2'000'000)
      : max_groups_(max_groups) {}

  bool VerifyTile(const std::vector<TileRegion>& regions, size_t user_i,
                  const Rect& s, const Candidate& cand,
                  const Point& po) override;

  bool parallel_safe() const override { return true; }

  bool VerifyTileThreadSafe(const std::vector<TileRegion>& regions,
                            size_t user_i, const Rect& s,
                            const Candidate& cand, const Point& po,
                            VerifyStats* stats) const override;

 private:
  uint64_t max_groups_;
};

/// Sum-GT-Verify (Algorithm 6) with memoization (Section 6.3.1).
class SumHyperbolaVerifier : public TileVerifier {
 public:
  /// `po` is the session optimum; `m` the group size.
  SumHyperbolaVerifier(const Point& po, size_t m) : po_(po), memo_(m) {}

  bool VerifyTile(const std::vector<TileRegion>& regions, size_t user_i,
                  const Rect& s, const Candidate& cand,
                  const Point& po) override;

  void OnCommitted(size_t user_i, size_t new_region_size) override;
  void OnRejected() override { pending_.clear(); }

 private:
  struct MemoEntry {
    double min_f = 0.0;       // min over tiles of the focal difference
    size_t region_size = 0;   // |R_j| when the entry was (re)computed
  };

  /// Memoized min_{l in R_j} (||p',l|| - ||po,l||); recomputed when R_j has
  /// grown since the entry was filled (unless refreshed by OnCommitted).
  double UserMinFocalDiff(size_t j, const TileRegion& region,
                          const Candidate& cand);

  Point po_;
  std::vector<std::unordered_map<uint32_t, MemoEntry>> memo_;
  // Focal minima of the tile currently under scan, keyed by candidate id;
  // committed into memo_[user] only when the tile is accepted.
  std::unordered_map<uint32_t, double> pending_;
};

}  // namespace mpn
