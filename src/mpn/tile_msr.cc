#include "mpn/tile_msr.h"

#include <cmath>

#include "util/macros.h"

namespace mpn {

namespace {

// Tile sides below this are useless (the region degenerates to a point);
// above the upper bound the whole plane is effectively safe.
constexpr double kMinDelta = 1e-9;
constexpr double kMaxDelta = 1e14;

// Fans the candidate scan out over the executor in fixed-size chunks.
// Every chunk early-exits on its first failure; chunk statistics merge into
// the verifier in chunk order, so for a fixed grain the counters do not
// depend on how many workers ran the chunks. With `lanes` non-null the
// chunks run the SoA kernel over the shared snapshot (read-only; workers
// never touch the arena).
bool ParallelVerifyScan(const std::vector<TileRegion>& regions, size_t user_i,
                        const Rect& rect,
                        const std::vector<Candidate>& candidates,
                        const Point& po, TileVerifier* verifier,
                        const VerifyFanout& fanout, const TileLanes* lanes,
                        VerifyStats* chunk_stats, uint8_t* chunk_ok,
                        size_t chunk_count) {
  const size_t grain = fanout.grain < 1 ? 1 : fanout.grain;
  for (size_t c = 0; c < chunk_count; ++c) {
    chunk_stats[c] = VerifyStats{};
    chunk_ok[c] = 1;
  }
  fanout.executor->Run(
      candidates.size(), grain, [&](size_t begin, size_t end) {
        const size_t chunk = begin / grain;
        if (lanes != nullptr) {
          for (size_t k = begin; k < end; ++k) {
            if (!verifier->VerifyTileLanes(*lanes, user_i, rect,
                                           candidates[k],
                                           &chunk_stats[chunk])) {
              chunk_ok[chunk] = 0;
              break;
            }
          }
        } else {
          for (size_t k = begin; k < end; ++k) {
            if (!verifier->VerifyTileThreadSafe(regions, user_i, rect,
                                                candidates[k], po,
                                                &chunk_stats[chunk])) {
              chunk_ok[chunk] = 0;
              break;
            }
          }
        }
      });
  bool ok = true;
  for (size_t c = 0; c < chunk_count; ++c) {
    verifier->MergeStats(chunk_stats[c]);
    if (!chunk_ok[c]) ok = false;
  }
  return ok;
}

bool DivideVerifyImpl(std::vector<TileRegion>* regions, size_t user_i,
                      const GridTile& tile, const Point& po,
                      CandidateSource* source, TileVerifier* verifier,
                      int level, MsrStats* stats, const VerifyFanout& fanout,
                      KernelKind kernel, MsrScratch* scratch) {
  ++stats->divide_calls;
  TileRegion& region = (*regions)[user_i];
  const Rect rect = region.TileRect(tile);

  std::vector<Candidate>& candidates = scratch->candidates;
  bool ok = source->GetCandidates(*regions, user_i, rect, &candidates);
  if (ok && !candidates.empty()) {
    const bool use_lanes =
        kernel == KernelKind::kSoA && verifier->lanes_capable();
    const bool use_fanout = fanout.executor != nullptr &&
                            verifier->parallel_safe() &&
                            candidates.size() >= fanout.min_candidates;
    // The snapshot (and all fan-out scratch) lives until the scan ends; a
    // recursion into sub-tiles only starts after that, so resetting here
    // can never invalidate a live allocation.
    Arena& arena = scratch->arena;
    arena.Reset();
    TileLanes lanes;
    if (use_lanes) lanes = BuildTileLanes(*regions, rect, po, &arena);
    if (use_fanout) {
      const size_t grain = fanout.grain < 1 ? 1 : fanout.grain;
      const size_t chunk_count = (candidates.size() + grain - 1) / grain;
      auto* chunk_stats = arena.AllocateArray<VerifyStats>(chunk_count);
      auto* chunk_ok = arena.AllocateArray<uint8_t>(chunk_count);
      ok = ParallelVerifyScan(*regions, user_i, rect, candidates, po,
                              verifier, fanout, use_lanes ? &lanes : nullptr,
                              chunk_stats, chunk_ok, chunk_count);
    } else if (use_lanes) {
      VerifyStats scan_stats;
      for (const Candidate& c : candidates) {
        if (!verifier->VerifyTileLanes(lanes, user_i, rect, c,
                                       &scan_stats)) {
          ok = false;
          break;
        }
      }
      verifier->MergeStats(scan_stats);
    } else {
      for (const Candidate& c : candidates) {
        if (!verifier->VerifyTile(*regions, user_i, rect, c, po)) {
          ok = false;
          break;
        }
      }
    }
  }
  if (ok) {
    region.Add(tile);
    verifier->OnCommitted(user_i, region.size());
    ++stats->tiles_added;
    return true;
  }
  verifier->OnRejected();
  if (level <= 0) return false;
  GridTile children[4];
  tile.Children(children);
  bool flag = false;
  for (const GridTile& child : children) {
    if (DivideVerifyImpl(regions, user_i, child, po, source, verifier,
                         level - 1, stats, fanout, kernel, scratch)) {
      flag = true;
    }
  }
  return flag;
}

}  // namespace

bool DivideVerify(std::vector<TileRegion>* regions, size_t user_i,
                  const GridTile& tile, const Point& po,
                  CandidateSource* source, TileVerifier* verifier, int level,
                  MsrStats* stats, const VerifyFanout& fanout,
                  KernelKind kernel, MsrScratch* scratch) {
  MsrScratch local;
  return DivideVerifyImpl(regions, user_i, tile, po, source, verifier, level,
                          stats, fanout, kernel,
                          scratch != nullptr ? scratch : &local);
}

MsrResult ComputeTileMsr(SpatialIndex tree, const std::vector<Point>& users,
                         Objective obj, const TileMsrConfig& config,
                         const std::vector<MotionHint>& hints) {
  MPN_ASSERT(!users.empty());
  MPN_ASSERT(!tree.empty());
  MPN_ASSERT(hints.empty() || hints.size() == users.size());
  const size_t m = users.size();

  MsrResult out;
  MsrScratch local_scratch;
  MsrScratch* scratch =
      config.scratch != nullptr ? config.scratch : &local_scratch;

  // Step 1 (Algorithm 3 line 1): optimum + maximal circle radius. In
  // buffered mode the best b+1 GNNs come from a single index pass and
  // rmax == beta_1. Index traffic is accounted per phase on the calling
  // thread: the delta below covers this setup phase, and each candidate
  // source accumulates its own traversal deltas (see
  // CandidateSource::node_accesses) — so the total is a per-recompute sum
  // that no fan-out worker can skew, whatever the thread count.
  const uint64_t setup_before = tree.node_accesses();
  std::unique_ptr<CandidateSource> source;
  double rmax = 0.0;
  if (config.buffered) {
    auto buffered = std::make_unique<BufferedCandidateSource>(
        tree, users, obj, config.buffer_b);
    out.po_id = buffered->best().id;
    out.po = buffered->best().p;
    out.po_agg = buffered->best().agg;
    rmax = buffered->Beta(1);
    source = std::move(buffered);
  } else {
    const CircleMsrResult circle = ComputeCircleMsr(tree, users, obj);
    out.po_id = circle.po_id;
    out.po = circle.po;
    out.po_agg = circle.po_agg;
    rmax = circle.rmax;
    source = std::make_unique<FreshCandidateSource>(
        tree, &users, obj, out.po_id, out.po, config.index_pruning);
  }
  const uint64_t setup_accesses = tree.node_accesses() - setup_before;

  // Degenerate radii: fall back to circles (radius-0 regions force an update
  // on any movement; unbounded regions never trigger one).
  const double delta = std::sqrt(2.0) * rmax;
  if (delta < kMinDelta || delta > kMaxDelta) {
    out.regions.reserve(m);
    for (const Point& u : users) {
      out.regions.push_back(SafeRegion::MakeCircle(Circle(u, rmax)));
    }
    out.stats.rtree_node_accesses = setup_accesses + source->node_accesses();
    return out;
  }

  // Step 2 (lines 2-4): initial regions hold the square inscribed in the
  // Theorem-1/5 circle.
  std::vector<TileRegion> regions;
  regions.reserve(m);
  for (const Point& u : users) {
    regions.emplace_back(u, delta);
    regions.back().Add(GridTile{0, 0, 0});
    ++out.stats.tiles_added;
  }

  // Verifier back-end.
  std::unique_ptr<TileVerifier> verifier;
  if (obj == Objective::kSum) {
    verifier = std::make_unique<SumHyperbolaVerifier>(out.po, m);
  } else if (config.verifier == VerifierKind::kIt) {
    verifier = std::make_unique<MaxItVerifier>();
  } else {
    verifier = std::make_unique<MaxGtVerifier>();
  }

  // Tile orderings (Fig. 8); directed when a heading hint is available.
  std::vector<TileOrdering> orderings;
  orderings.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    if (config.directed && !hints.empty() && hints[i].has_heading) {
      const double theta =
          hints[i].theta > 0.0 ? hints[i].theta : config.default_theta;
      orderings.emplace_back(hints[i].heading, theta);
    } else {
      orderings.emplace_back();
    }
  }

  // Step 3 (lines 5-10): alpha rounds of round-robin tile growth.
  std::vector<bool> exhausted(m, false);
  for (int t = 0; t < config.alpha; ++t) {
    bool any_active = false;
    for (size_t i = 0; i < m; ++i) {
      if (exhausted[i]) continue;
      any_active = true;
      for (;;) {
        const auto cell = orderings[i].Next(regions[i]);
        if (!cell) {
          exhausted[i] = true;
          break;
        }
        ++out.stats.tiles_tried;
        if (DivideVerifyImpl(&regions, i, *cell, out.po, source.get(),
                             verifier.get(), config.split_level, &out.stats,
                             config.fanout, config.kernel, scratch)) {
          orderings[i].MarkInserted();
          break;
        }
      }
    }
    if (!any_active) break;
  }

  out.regions.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    out.regions.push_back(SafeRegion::MakeTiles(std::move(regions[i])));
  }
  out.stats.verify = verifier->stats();
  out.stats.candidates = source->stats();
  out.stats.rtree_node_accesses = setup_accesses + source->node_accesses();
  return out;
}

}  // namespace mpn
