#include "mpn/tile_verify.h"

#include <algorithm>
#include <limits>

#include "util/macros.h"

namespace mpn {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

bool TileVerifier::VerifyTileThreadSafe(const std::vector<TileRegion>& regions,
                                        size_t user_i, const Rect& s,
                                        const Candidate& cand, const Point& po,
                                        VerifyStats* stats) const {
  (void)regions;
  (void)user_i;
  (void)s;
  (void)cand;
  (void)po;
  (void)stats;
  MPN_ASSERT_MSG(false, "VerifyTileThreadSafe on a sequential-only verifier");
  return false;
}

// ---------------------------------------------------------------------------
// MaxGtVerifier (Algorithm 4 / Theorem 2)
// ---------------------------------------------------------------------------

bool MaxGtVerifier::VerifyTile(const std::vector<TileRegion>& regions,
                               size_t user_i, const Rect& s,
                               const Candidate& cand, const Point& po) {
  return VerifyTileThreadSafe(regions, user_i, s, cand, po, &stats_);
}

bool MaxGtVerifier::VerifyTileThreadSafe(const std::vector<TileRegion>& regions,
                                         size_t user_i, const Rect& s,
                                         const Candidate& cand, const Point& po,
                                         VerifyStats* stats) const {
  ++stats->calls;
  const Point& p = cand.p;
  const size_t m = regions.size();
  const double d_o = s.MaxDist(po);   // dominant max dist of the new tile
  const double d_p = s.MinDist(p);    // dominant min dist of the new tile

  // One pass over every other user's tiles computes, simultaneously:
  //  - whole-region aggregates (for the line-1 Lemma-1 check and case 4),
  //  - the four dominance-group aggregates of Theorem 2.
  double full_top = d_o;   // ||po, R'||_top with R'_i = {s}
  double full_bot = d_p;   // ||p, R'||_bot
  double m_star = 0.0;     // max_{j != i} ||po, R_j||_max   (case 4)
  double n_star = 0.0;     // max_{j != i} ||p,  R_j||_min   (case 4)
  bool any_dd_empty = false;   // some G_j^{down,down} empty  -> case 1 vacuous
  bool any_s_empty = false;    // some G^{dd} u G^{ud} empty  -> case 2 vacuous
  bool any_t_empty = false;    // some G^{dd} u G^{du} empty  -> case 3 vacuous
  double case2_top = d_o;      // max maxdist over mindist<dp tiles (+ d_o)
  double case3_bot = d_p;      // max over j of min mindist over maxdist<do
  bool has_other = false;

  for (size_t j = 0; j < m; ++j) {
    if (j == user_i) continue;
    has_other = true;
    const TileRegion& rj = regions[j];
    MPN_DCHECK(!rj.empty());
    bool has_dd = false, has_s = false, has_t = false;
    double maxmax_all = 0.0, minmin_all = kInf;
    double maxmax_s = 0.0, minmin_t = kInf;
    for (const Rect& t : rj.rects()) {
      const double mx = t.MaxDist(po);
      const double mn = t.MinDist(p);
      maxmax_all = std::max(maxmax_all, mx);
      minmin_all = std::min(minmin_all, mn);
      const bool below_do = mx < d_o;
      const bool below_dp = mn < d_p;
      if (below_do && below_dp) has_dd = true;
      if (below_dp) {  // G^{dd} u G^{ud}: u_i stays dominant-min
        has_s = true;
        maxmax_s = std::max(maxmax_s, mx);
      }
      if (below_do) {  // G^{dd} u G^{du}: u_i stays dominant-max
        has_t = true;
        minmin_t = std::min(minmin_t, mn);
      }
    }
    full_top = std::max(full_top, maxmax_all);
    full_bot = std::max(full_bot, minmin_all);
    m_star = std::max(m_star, maxmax_all);
    n_star = std::max(n_star, minmin_all);
    if (!has_dd) any_dd_empty = true;
    if (!has_s) any_s_empty = true;
    if (!has_t) any_t_empty = true;
    if (has_s) case2_top = std::max(case2_top, maxmax_s);
    if (has_t) case3_bot = std::max(case3_bot, minmin_t);
  }

  // Single user: only the new tile matters.
  if (!has_other) {
    const bool ok = d_o <= d_p;
    if (ok) ++stats->accepted;
    return ok;
  }

  // Line 1: Lemma 1 on the whole regions with {s} for user_i.
  if (full_top <= full_bot) {
    ++stats->accepted;
    return true;
  }

  // Case 1: u_i dominates both po and p. All other users pick from G^{dd}.
  const bool case1 = any_dd_empty || d_o <= d_p;
  // Case 2: u_i is the dominant-min user; another user dominates po.
  const bool case2 = any_s_empty || case2_top <= d_p;
  // Case 3: u_i is the dominant-max user; another user dominates p.
  const bool case3 = any_t_empty || d_o <= case3_bot;
  if (!case1 || !case2 || !case3) return false;

  // Case 4: both dominant users are others. If R_i already holds a tile s'
  // that is at least as "hard" as s (||po,s'||_max >= do and
  // ||p,s'||_min <= dp), the previously verified groups cover these; else
  // require the worst cross-combination to stay valid:
  //   M* <= max(dp, N*), since every such group has dominant max <= M* and
  //   dominant min >= max(dp, N*).
  bool has_role_tile = false;
  for (const Rect& t : regions[user_i].rects()) {
    if (t.MaxDist(po) >= d_o && t.MinDist(p) <= d_p) {
      has_role_tile = true;
      break;
    }
  }
  const bool case4 = has_role_tile || m_star <= std::max(d_p, n_star);
  if (case4) ++stats->accepted;
  return case4;
}

// ---------------------------------------------------------------------------
// MaxItVerifier (exhaustive reference)
// ---------------------------------------------------------------------------

bool MaxItVerifier::VerifyTile(const std::vector<TileRegion>& regions,
                               size_t user_i, const Rect& s,
                               const Candidate& cand, const Point& po) {
  return VerifyTileThreadSafe(regions, user_i, s, cand, po, &stats_);
}

bool MaxItVerifier::VerifyTileThreadSafe(const std::vector<TileRegion>& regions,
                                         size_t user_i, const Rect& s,
                                         const Candidate& cand, const Point& po,
                                         VerifyStats* stats) const {
  ++stats->calls;
  const Point& p = cand.p;
  const size_t m = regions.size();

  uint64_t combos = 1;
  for (size_t j = 0; j < m; ++j) {
    if (j == user_i) continue;
    MPN_ASSERT(!regions[j].empty());
    combos *= regions[j].size();
    MPN_ASSERT_MSG(combos <= max_groups_, "IT-Verify tile-group explosion");
  }

  // Odometer over the other users' tiles; user_i is pinned to s.
  std::vector<size_t> idx(m, 0);
  const double s_max_po = s.MaxDist(po);
  const double s_min_p = s.MinDist(p);
  for (;;) {
    ++stats->tile_groups;
    double top = s_max_po, bot = s_min_p;
    for (size_t j = 0; j < m; ++j) {
      if (j == user_i) continue;
      const Rect& t = regions[j].rects()[idx[j]];
      top = std::max(top, t.MaxDist(po));
      bot = std::max(bot, t.MinDist(p));
    }
    if (top > bot) return false;
    // Advance the odometer.
    size_t j = 0;
    for (; j < m; ++j) {
      if (j == user_i) continue;
      if (++idx[j] < regions[j].size()) break;
      idx[j] = 0;
    }
    if (j >= m) break;
  }
  ++stats->accepted;
  return true;
}

// ---------------------------------------------------------------------------
// SumHyperbolaVerifier (Algorithm 6 + memoization)
// ---------------------------------------------------------------------------

double SumHyperbolaVerifier::UserMinFocalDiff(size_t j,
                                              const TileRegion& region,
                                              const Candidate& cand) {
  auto& table = memo_[j];
  auto it = table.find(cand.id);
  if (it != table.end() && it->second.region_size == region.size()) {
    ++stats_.memo_hits;
    return it->second.min_f;
  }
  double f = kInf;
  for (const Rect& t : region.rects()) {
    f = std::min(f, MinFocalDiffOverRect(cand.p, po_, t));
    ++stats_.focal_evals;
  }
  table[cand.id] = MemoEntry{f, region.size()};
  return f;
}

bool SumHyperbolaVerifier::VerifyTile(const std::vector<TileRegion>& regions,
                                      size_t user_i, const Rect& s,
                                      const Candidate& cand, const Point& po) {
  (void)po;  // fixed at construction (po_); parameter kept for interface
  ++stats_.calls;
  const double f_new = MinFocalDiffOverRect(cand.p, po_, s);
  ++stats_.focal_evals;
  double total = f_new;
  for (size_t j = 0; j < regions.size(); ++j) {
    if (j == user_i) continue;
    MPN_DCHECK(!regions[j].empty());
    total += UserMinFocalDiff(j, regions[j], cand);
    if (total < -1e12) break;  // early exit on hopeless sums
  }
  if (total < 0.0) return false;
  pending_[cand.id] = f_new;
  ++stats_.accepted;
  return true;
}

void SumHyperbolaVerifier::OnCommitted(size_t user_i, size_t new_region_size) {
  auto& table = memo_[user_i];
  for (const auto& [id, f] : pending_) {
    auto it = table.find(id);
    if (it != table.end()) {
      it->second.min_f = std::min(it->second.min_f, f);
      it->second.region_size = new_region_size;
    }
  }
  // Entries not refreshed above keep their old region_size and will be
  // recomputed on the next read (correctness under buffered candidate sets).
  pending_.clear();
}

}  // namespace mpn
