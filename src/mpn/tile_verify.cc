#include "mpn/tile_verify.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "util/macros.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

// The AVX2 path compiles via a per-function target attribute (no global
// -mavx2), so the binary still runs on SSE2-only machines; the wider path
// is selected at runtime only when cpuid reports AVX2.
#if defined(__SSE2__) && defined(__GNUC__)
#include <immintrin.h>
#define MPN_HAVE_AVX2_PATH 1
#endif

namespace mpn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Per-user lane aggregates of the GT-Verify scan (see VerifyTileLanes).
// All five are min/max selections over per-lane values, so any evaluation
// order — including the two-accumulator SIMD split below — produces the
// identical doubles.
struct UserLaneAgg {
  double maxmax_all = 0.0;   // max ||po,t||_max
  double min_mx = kInf;      // min ||po,t||_max   (-> has_t)
  double minmin_all2 = kInf; // min squared ||p,t||_min
  double maxmax_s = 0.0;     // max ||po,t||_max over lanes with mn < d_p
  double minmin_t2 = kInf;   // min squared ||p,t||_min over lanes mx < d_o
};

// Folds one scalar lane into the aggregates using the branch-free select
// forms (identities: 0 for max over nonnegative distances, +inf for min).
inline void FoldLane(double mn2, double mx, double d_o, double t_lt,
                     UserLaneAgg* a) {
  a->maxmax_all = std::max(a->maxmax_all, mx);
  a->min_mx = std::min(a->min_mx, mx);
  a->minmin_all2 = std::min(a->minmin_all2, mn2);
  const bool below_do = mx < d_o;
  const bool below_dp = mn2 <= t_lt;
  a->maxmax_s = std::max(a->maxmax_s, below_dp ? mx : 0.0);
  a->minmin_t2 = std::min(a->minmin_t2, below_do ? mn2 : kInf);
}

// Folds lanes [k, end) with the scalar loop into an existing aggregate —
// the reference path and the shared tail of both SIMD paths.
inline void FoldScalarLanes(const RectLanes& r, const double* max_po,
                            size_t k, size_t end, double px, double py,
                            double d_o, double t_lt, UserLaneAgg* a) {
  for (; k < end; ++k) {
    const double dx =
        std::max(std::max(r.lo_x[k] - px, 0.0), px - r.hi_x[k]);
    const double dy =
        std::max(std::max(r.lo_y[k] - py, 0.0), py - r.hi_y[k]);
    FoldLane(dx * dx + dy * dy, max_po[k], d_o, t_lt, a);
  }
}

// Pure-scalar aggregation (MPN_LANE_ISA=scalar, or no SSE2 at build time).
UserLaneAgg AggregateUserLanesScalar(const RectLanes& r, const double* max_po,
                                     size_t begin, size_t end, double px,
                                     double py, double d_o, double t_lt) {
  UserLaneAgg a;
  FoldScalarLanes(r, max_po, begin, end, px, py, d_o, t_lt, &a);
  return a;
}

#if defined(__SSE2__)
// Aggregates lanes [begin, end): squared Rect::MinDist per lane (the exact
// IEEE square the scalar path feeds to sqrt) plus the five reductions. GCC
// will not auto-vectorize floating min/max reductions without fast-math,
// so the two-wide SSE2 form is written out by hand; maxpd/minpd/cmppd are
// exact IEEE selections and compares, keeping every aggregate bit-identical
// to the scalar loop (the fallback below and the tail share its code).
UserLaneAgg AggregateUserLanesSse2(const RectLanes& r, const double* max_po,
                                   size_t begin, size_t end, double px,
                                   double py, double d_o, double t_lt) {
  UserLaneAgg a;
  size_t k = begin;
  if (end - k >= 2) {
    const __m128d vpx = _mm_set1_pd(px);
    const __m128d vpy = _mm_set1_pd(py);
    const __m128d vdo = _mm_set1_pd(d_o);
    const __m128d vtl = _mm_set1_pd(t_lt);
    const __m128d vzero = _mm_setzero_pd();
    const __m128d vinf = _mm_set1_pd(kInf);
    // Two accumulator sets (4 lanes per iteration) so the serial
    // min/max latency chains overlap; accumulators merge with the same
    // selection at the end, so the split cannot change any value.
    __m128d maxmax_all = vzero, min_mx = vinf, minmin_all2 = vinf;
    __m128d maxmax_s = vzero, minmin_t2 = vinf;
    __m128d maxmax_all1 = vzero, min_mx1 = vinf, minmin_all21 = vinf;
    __m128d maxmax_s1 = vzero, minmin_t21 = vinf;
    const auto fold2 = [&](size_t at, __m128d* mm_all, __m128d* mn_mx,
                           __m128d* mn_all2, __m128d* mm_s, __m128d* mn_t2) {
      const __m128d dx = _mm_max_pd(
          _mm_max_pd(_mm_sub_pd(_mm_loadu_pd(r.lo_x + at), vpx), vzero),
          _mm_sub_pd(vpx, _mm_loadu_pd(r.hi_x + at)));
      const __m128d dy = _mm_max_pd(
          _mm_max_pd(_mm_sub_pd(_mm_loadu_pd(r.lo_y + at), vpy), vzero),
          _mm_sub_pd(vpy, _mm_loadu_pd(r.hi_y + at)));
      const __m128d mn2 =
          _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
      const __m128d mx = _mm_loadu_pd(max_po + at);
      *mm_all = _mm_max_pd(*mm_all, mx);
      *mn_mx = _mm_min_pd(*mn_mx, mx);
      *mn_all2 = _mm_min_pd(*mn_all2, mn2);
      const __m128d below_dp = _mm_cmple_pd(mn2, vtl);
      const __m128d below_do = _mm_cmplt_pd(mx, vdo);
      // below_dp ? mx : 0.0 — the all-ones mask ANDs to mx, else +0.0.
      *mm_s = _mm_max_pd(*mm_s, _mm_and_pd(below_dp, mx));
      *mn_t2 = _mm_min_pd(
          *mn_t2, _mm_or_pd(_mm_and_pd(below_do, mn2),
                            _mm_andnot_pd(below_do, vinf)));
    };
    for (; k + 4 <= end; k += 4) {
      fold2(k, &maxmax_all, &min_mx, &minmin_all2, &maxmax_s, &minmin_t2);
      fold2(k + 2, &maxmax_all1, &min_mx1, &minmin_all21, &maxmax_s1,
            &minmin_t21);
    }
    for (; k + 2 <= end; k += 2) {
      fold2(k, &maxmax_all, &min_mx, &minmin_all2, &maxmax_s, &minmin_t2);
    }
    maxmax_all = _mm_max_pd(maxmax_all, maxmax_all1);
    min_mx = _mm_min_pd(min_mx, min_mx1);
    minmin_all2 = _mm_min_pd(minmin_all2, minmin_all21);
    maxmax_s = _mm_max_pd(maxmax_s, maxmax_s1);
    minmin_t2 = _mm_min_pd(minmin_t2, minmin_t21);
    double lane2[2];
    _mm_storeu_pd(lane2, maxmax_all);
    a.maxmax_all = std::max(lane2[0], lane2[1]);
    _mm_storeu_pd(lane2, min_mx);
    a.min_mx = std::min(lane2[0], lane2[1]);
    _mm_storeu_pd(lane2, minmin_all2);
    a.minmin_all2 = std::min(lane2[0], lane2[1]);
    _mm_storeu_pd(lane2, maxmax_s);
    a.maxmax_s = std::max(lane2[0], lane2[1]);
    _mm_storeu_pd(lane2, minmin_t2);
    a.minmin_t2 = std::min(lane2[0], lane2[1]);
  }
  FoldScalarLanes(r, max_po, k, end, px, py, d_o, t_lt, &a);
  return a;
}
#endif  // __SSE2__

#if defined(MPN_HAVE_AVX2_PATH)
// One four-wide fold step of the AVX2 path (free function rather than a
// lambda: the target attribute does not propagate into lambda bodies on
// older GCC).
__attribute__((target("avx2"))) inline void Fold4Avx2(
    const RectLanes& r, const double* max_po, size_t at, __m256d vpx,
    __m256d vpy, __m256d vdo, __m256d vtl, __m256d vzero, __m256d vinf,
    __m256d* mm_all, __m256d* mn_mx, __m256d* mn_all2, __m256d* mm_s,
    __m256d* mn_t2) {
  const __m256d dx = _mm256_max_pd(
      _mm256_max_pd(_mm256_sub_pd(_mm256_loadu_pd(r.lo_x + at), vpx), vzero),
      _mm256_sub_pd(vpx, _mm256_loadu_pd(r.hi_x + at)));
  const __m256d dy = _mm256_max_pd(
      _mm256_max_pd(_mm256_sub_pd(_mm256_loadu_pd(r.lo_y + at), vpy), vzero),
      _mm256_sub_pd(vpy, _mm256_loadu_pd(r.hi_y + at)));
  const __m256d mn2 =
      _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
  const __m256d mx = _mm256_loadu_pd(max_po + at);
  *mm_all = _mm256_max_pd(*mm_all, mx);
  *mn_mx = _mm256_min_pd(*mn_mx, mx);
  *mn_all2 = _mm256_min_pd(*mn_all2, mn2);
  const __m256d below_dp = _mm256_cmp_pd(mn2, vtl, _CMP_LE_OQ);
  const __m256d below_do = _mm256_cmp_pd(mx, vdo, _CMP_LT_OQ);
  *mm_s = _mm256_max_pd(*mm_s, _mm256_and_pd(below_dp, mx));
  *mn_t2 = _mm256_min_pd(*mn_t2,
                         _mm256_or_pd(_mm256_and_pd(below_do, mn2),
                                      _mm256_andnot_pd(below_do, vinf)));
}

// Four-wide AVX2 form of the same fold, dual accumulators (8 lanes per
// iteration). vmaxpd/vminpd/vcmppd are the same exact IEEE selections as
// their SSE2 counterparts and the reductions are pure min/max, so every
// aggregate stays bit-identical to the scalar loop.
__attribute__((target("avx2"))) UserLaneAgg AggregateUserLanesAvx2(
    const RectLanes& r, const double* max_po, size_t begin, size_t end,
    double px, double py, double d_o, double t_lt) {
  UserLaneAgg a;
  size_t k = begin;
  if (end - k >= 4) {
    const __m256d vpx = _mm256_set1_pd(px);
    const __m256d vpy = _mm256_set1_pd(py);
    const __m256d vdo = _mm256_set1_pd(d_o);
    const __m256d vtl = _mm256_set1_pd(t_lt);
    const __m256d vzero = _mm256_setzero_pd();
    const __m256d vinf = _mm256_set1_pd(kInf);
    __m256d maxmax_all = vzero, min_mx = vinf, minmin_all2 = vinf;
    __m256d maxmax_s = vzero, minmin_t2 = vinf;
    __m256d maxmax_all1 = vzero, min_mx1 = vinf, minmin_all21 = vinf;
    __m256d maxmax_s1 = vzero, minmin_t21 = vinf;
    for (; k + 8 <= end; k += 8) {
      Fold4Avx2(r, max_po, k, vpx, vpy, vdo, vtl, vzero, vinf, &maxmax_all,
                &min_mx, &minmin_all2, &maxmax_s, &minmin_t2);
      Fold4Avx2(r, max_po, k + 4, vpx, vpy, vdo, vtl, vzero, vinf,
                &maxmax_all1, &min_mx1, &minmin_all21, &maxmax_s1,
                &minmin_t21);
    }
    for (; k + 4 <= end; k += 4) {
      Fold4Avx2(r, max_po, k, vpx, vpy, vdo, vtl, vzero, vinf, &maxmax_all,
                &min_mx, &minmin_all2, &maxmax_s, &minmin_t2);
    }
    maxmax_all = _mm256_max_pd(maxmax_all, maxmax_all1);
    min_mx = _mm256_min_pd(min_mx, min_mx1);
    minmin_all2 = _mm256_min_pd(minmin_all2, minmin_all21);
    maxmax_s = _mm256_max_pd(maxmax_s, maxmax_s1);
    minmin_t2 = _mm256_min_pd(minmin_t2, minmin_t21);
    double lane4[4];
    _mm256_storeu_pd(lane4, maxmax_all);
    a.maxmax_all = std::max(std::max(lane4[0], lane4[1]),
                            std::max(lane4[2], lane4[3]));
    _mm256_storeu_pd(lane4, min_mx);
    a.min_mx = std::min(std::min(lane4[0], lane4[1]),
                        std::min(lane4[2], lane4[3]));
    _mm256_storeu_pd(lane4, minmin_all2);
    a.minmin_all2 = std::min(std::min(lane4[0], lane4[1]),
                             std::min(lane4[2], lane4[3]));
    _mm256_storeu_pd(lane4, maxmax_s);
    a.maxmax_s = std::max(std::max(lane4[0], lane4[1]),
                          std::max(lane4[2], lane4[3]));
    _mm256_storeu_pd(lane4, minmin_t2);
    a.minmin_t2 = std::min(std::min(lane4[0], lane4[1]),
                           std::min(lane4[2], lane4[3]));
  }
  FoldScalarLanes(r, max_po, k, end, px, py, d_o, t_lt, &a);
  return a;
}
#endif  // MPN_HAVE_AVX2_PATH

using LaneAggFn = UserLaneAgg (*)(const RectLanes&, const double*, size_t,
                                  size_t, double, double, double, double);

// Picks the widest fold the CPU supports. `request` (normally the
// MPN_LANE_ISA environment variable) pins a narrower path for differential
// testing and perf triage; requests the hardware cannot honor fall back to
// the widest supported path at or below the request.
LaneAggFn ResolveLaneAggFn(const char* request) {
  const bool want_scalar =
      request != nullptr && std::strcmp(request, "scalar") == 0;
  const bool want_sse2 = request != nullptr && std::strcmp(request, "sse2") == 0;
#if defined(MPN_HAVE_AVX2_PATH)
  if (!want_scalar && !want_sse2 && __builtin_cpu_supports("avx2")) {
    return &AggregateUserLanesAvx2;
  }
#endif
#if defined(__SSE2__)
  if (!want_scalar) return &AggregateUserLanesSse2;
#endif
  return &AggregateUserLanesScalar;
}

// Latched on first use (relaxed is enough: racing resolvers compute the
// same pointer from the same environment).
std::atomic<LaneAggFn> g_lane_agg_fn{nullptr};

inline LaneAggFn LaneAggImpl() {
  LaneAggFn fn = g_lane_agg_fn.load(std::memory_order_relaxed);
  if (fn == nullptr) {
    fn = ResolveLaneAggFn(std::getenv("MPN_LANE_ISA"));
    g_lane_agg_fn.store(fn, std::memory_order_relaxed);
  }
  return fn;
}

inline UserLaneAgg AggregateUserLanes(const RectLanes& r,
                                      const double* max_po, size_t begin,
                                      size_t end, double px, double py,
                                      double d_o, double t_lt) {
  return LaneAggImpl()(r, max_po, begin, end, px, py, d_o, t_lt);
}

}  // namespace

const char* LaneIsaName() {
  const LaneAggFn fn = LaneAggImpl();
#if defined(MPN_HAVE_AVX2_PATH)
  if (fn == &AggregateUserLanesAvx2) return "avx2";
#endif
#if defined(__SSE2__)
  if (fn == &AggregateUserLanesSse2) return "sse2";
#endif
  (void)fn;
  return "scalar";
}

void SetLaneIsaForTesting(const char* isa) {
  g_lane_agg_fn.store(ResolveLaneAggFn(isa), std::memory_order_relaxed);
}

bool TileVerifier::VerifyTileThreadSafe(const std::vector<TileRegion>& regions,
                                        size_t user_i, const Rect& s,
                                        const Candidate& cand, const Point& po,
                                        VerifyStats* stats) const {
  (void)regions;
  (void)user_i;
  (void)s;
  (void)cand;
  (void)po;
  (void)stats;
  MPN_ASSERT_MSG(false, "VerifyTileThreadSafe on a sequential-only verifier");
  return false;
}

bool TileVerifier::VerifyTileLanes(const TileLanes& lanes, size_t user_i,
                                   const Rect& s, const Candidate& cand,
                                   VerifyStats* stats) const {
  (void)lanes;
  (void)user_i;
  (void)s;
  (void)cand;
  (void)stats;
  MPN_ASSERT_MSG(false, "VerifyTileLanes on a lanes-incapable verifier");
  return false;
}

TileLanes BuildTileLanes(const std::vector<TileRegion>& regions, const Rect& s,
                         const Point& po, Arena* arena) {
  TileLanes out;
  out.users = regions.size();
  size_t* offset = arena->AllocateArray<size_t>(out.users + 1);
  size_t total = 0;
  for (size_t j = 0; j < out.users; ++j) {
    offset[j] = total;
    total += regions[j].size();
  }
  offset[out.users] = total;
  out.total = total;
  out.offset = offset;

  double* lo_x = arena->AllocateArray<double>(total);
  double* lo_y = arena->AllocateArray<double>(total);
  double* hi_x = arena->AllocateArray<double>(total);
  double* hi_y = arena->AllocateArray<double>(total);
  for (size_t j = 0; j < out.users; ++j) {
    const RectLanes src = regions[j].lanes();
    std::copy(src.lo_x, src.lo_x + src.n, lo_x + offset[j]);
    std::copy(src.lo_y, src.lo_y + src.n, lo_y + offset[j]);
    std::copy(src.hi_x, src.hi_x + src.n, hi_x + offset[j]);
    std::copy(src.hi_y, src.hi_y + src.n, hi_y + offset[j]);
  }
  out.rects = RectLanes{lo_x, lo_y, hi_x, hi_y, total};

  // Candidate-independent halves of the GT predicates, hoisted per scan.
  double* max_po = arena->AllocateArray<double>(total);
  RectMaxDistLanes(out.rects, po, max_po);
  out.max_po = max_po;
  out.d_o = s.MaxDist(po);
  return out;
}

// ---------------------------------------------------------------------------
// MaxGtVerifier (Algorithm 4 / Theorem 2)
// ---------------------------------------------------------------------------

bool MaxGtVerifier::VerifyTile(const std::vector<TileRegion>& regions,
                               size_t user_i, const Rect& s,
                               const Candidate& cand, const Point& po) {
  return VerifyTileThreadSafe(regions, user_i, s, cand, po, &stats_);
}

bool MaxGtVerifier::VerifyTileThreadSafe(const std::vector<TileRegion>& regions,
                                         size_t user_i, const Rect& s,
                                         const Candidate& cand, const Point& po,
                                         VerifyStats* stats) const {
  ++stats->calls;
  const Point& p = cand.p;
  const size_t m = regions.size();
  const double d_o = s.MaxDist(po);   // dominant max dist of the new tile
  const double d_p = s.MinDist(p);    // dominant min dist of the new tile

  // One pass over every other user's tiles computes, simultaneously:
  //  - whole-region aggregates (for the line-1 Lemma-1 check and case 4),
  //  - the four dominance-group aggregates of Theorem 2.
  double full_top = d_o;   // ||po, R'||_top with R'_i = {s}
  double full_bot = d_p;   // ||p, R'||_bot
  double m_star = 0.0;     // max_{j != i} ||po, R_j||_max   (case 4)
  double n_star = 0.0;     // max_{j != i} ||p,  R_j||_min   (case 4)
  bool any_dd_empty = false;   // some G_j^{down,down} empty  -> case 1 vacuous
  bool any_s_empty = false;    // some G^{dd} u G^{ud} empty  -> case 2 vacuous
  bool any_t_empty = false;    // some G^{dd} u G^{du} empty  -> case 3 vacuous
  double case2_top = d_o;      // max maxdist over mindist<dp tiles (+ d_o)
  double case3_bot = d_p;      // max over j of min mindist over maxdist<do
  bool has_other = false;

  for (size_t j = 0; j < m; ++j) {
    if (j == user_i) continue;
    has_other = true;
    const TileRegion& rj = regions[j];
    MPN_DCHECK(!rj.empty());
    bool has_dd = false, has_s = false, has_t = false;
    double maxmax_all = 0.0, minmin_all = kInf;
    double maxmax_s = 0.0, minmin_t = kInf;
    for (const Rect& t : rj.rects()) {
      const double mx = t.MaxDist(po);
      const double mn = t.MinDist(p);
      maxmax_all = std::max(maxmax_all, mx);
      minmin_all = std::min(minmin_all, mn);
      const bool below_do = mx < d_o;
      const bool below_dp = mn < d_p;
      if (below_do && below_dp) has_dd = true;
      if (below_dp) {  // G^{dd} u G^{ud}: u_i stays dominant-min
        has_s = true;
        maxmax_s = std::max(maxmax_s, mx);
      }
      if (below_do) {  // G^{dd} u G^{du}: u_i stays dominant-max
        has_t = true;
        minmin_t = std::min(minmin_t, mn);
      }
    }
    full_top = std::max(full_top, maxmax_all);
    full_bot = std::max(full_bot, minmin_all);
    m_star = std::max(m_star, maxmax_all);
    n_star = std::max(n_star, minmin_all);
    if (!has_dd) any_dd_empty = true;
    if (!has_s) any_s_empty = true;
    if (!has_t) any_t_empty = true;
    if (has_s) case2_top = std::max(case2_top, maxmax_s);
    if (has_t) case3_bot = std::max(case3_bot, minmin_t);
  }

  // Single user: only the new tile matters.
  if (!has_other) {
    const bool ok = d_o <= d_p;
    if (ok) ++stats->accepted;
    return ok;
  }

  // Line 1: Lemma 1 on the whole regions with {s} for user_i.
  if (full_top <= full_bot) {
    ++stats->accepted;
    return true;
  }

  // Case 1: u_i dominates both po and p. All other users pick from G^{dd}.
  const bool case1 = any_dd_empty || d_o <= d_p;
  // Case 2: u_i is the dominant-min user; another user dominates po.
  const bool case2 = any_s_empty || case2_top <= d_p;
  // Case 3: u_i is the dominant-max user; another user dominates p.
  const bool case3 = any_t_empty || d_o <= case3_bot;
  if (!case1 || !case2 || !case3) return false;

  // Case 4: both dominant users are others. If R_i already holds a tile s'
  // that is at least as "hard" as s (||po,s'||_max >= do and
  // ||p,s'||_min <= dp), the previously verified groups cover these; else
  // require the worst cross-combination to stay valid:
  //   M* <= max(dp, N*), since every such group has dominant max <= M* and
  //   dominant min >= max(dp, N*).
  bool has_role_tile = false;
  for (const Rect& t : regions[user_i].rects()) {
    if (t.MaxDist(po) >= d_o && t.MinDist(p) <= d_p) {
      has_role_tile = true;
      break;
    }
  }
  const bool case4 = has_role_tile || m_star <= std::max(d_p, n_star);
  if (case4) ++stats->accepted;
  return case4;
}

bool MaxGtVerifier::VerifyTileLanes(const TileLanes& lanes, size_t user_i,
                                    const Rect& s, const Candidate& cand,
                                    VerifyStats* stats) const {
  // Decision-identical to VerifyTileThreadSafe, but the lane loop runs in
  // the squared-distance domain with no per-lane sqrt or branch:
  //  - mx = ||po,t||_max is hoisted into lanes.max_po at scan build (the
  //    candidate-independent half of every GT predicate);
  //  - mn2 below is the exact square the scalar path feeds to sqrt, so
  //    mn < d_p becomes mn2 <= SqrtLtThreshold(d_p) (see lanes.h);
  //  - every aggregate is a min/max selection, which commutes with the
  //    monotone correctly-rounded sqrt, so folding squares and taking one
  //    sqrt per user yields the identical double;
  //  - the group-nonempty flags are derived from masked minima after the
  //    loop: "some lane passes a <= threshold" iff "the masked min does";
  //  - conditional updates become selects with fold identities (0 for max
  //    over nonnegative distances, +inf for min).
  ++stats->calls;
  const double d_o = lanes.d_o;          // == s.MaxDist(po)
  const double d_p = s.MinDist(cand.p);  // dominant min dist of the new tile
  const double t_lt = SqrtLtThreshold(d_p);
  const double px = cand.p.x, py = cand.p.y;

  double full_top = d_o;
  double full_bot = d_p;
  double m_star = 0.0;
  double n_star = 0.0;
  bool any_dd_empty = false;
  bool any_s_empty = false;
  bool any_t_empty = false;
  double case2_top = d_o;
  double case3_bot = d_p;
  bool has_other = false;

  const size_t m = lanes.users;
  for (size_t j = 0; j < m; ++j) {
    if (j == user_i) continue;
    has_other = true;
    const size_t begin = lanes.offset[j];
    const size_t end = lanes.offset[j + 1];
    MPN_DCHECK(begin < end);
    const UserLaneAgg agg = AggregateUserLanes(lanes.rects, lanes.max_po,
                                               begin, end, px, py, d_o, t_lt);
    const bool has_s = agg.minmin_all2 <= t_lt;   // some mn < d_p
    const bool has_t = agg.min_mx < d_o;          // some mx < d_o
    const bool has_dd = agg.minmin_t2 <= t_lt;    // some lane in both groups
    const double minmin_all = std::sqrt(agg.minmin_all2);
    const double minmin_t = std::sqrt(agg.minmin_t2);  // +inf stays +inf
    full_top = std::max(full_top, agg.maxmax_all);
    full_bot = std::max(full_bot, minmin_all);
    m_star = std::max(m_star, agg.maxmax_all);
    n_star = std::max(n_star, minmin_all);
    any_dd_empty |= !has_dd;
    any_s_empty |= !has_s;
    any_t_empty |= !has_t;
    if (has_s) case2_top = std::max(case2_top, agg.maxmax_s);
    if (has_t) case3_bot = std::max(case3_bot, minmin_t);
  }

  if (!has_other) {
    const bool ok = d_o <= d_p;
    if (ok) ++stats->accepted;
    return ok;
  }

  if (full_top <= full_bot) {
    ++stats->accepted;
    return true;
  }

  const bool case1 = any_dd_empty || d_o <= d_p;
  const bool case2 = any_s_empty || case2_top <= d_p;
  const bool case3 = any_t_empty || d_o <= case3_bot;
  if (!case1 || !case2 || !case3) return false;

  // Case 4 reads user_i's own lanes; the squared test mirrors the scalar
  // t.MinDist(p) <= d_p via the non-strict threshold.
  bool has_role_tile = false;
  const double t_le = SqrtLeqThreshold(d_p);
  const RectLanes& r = lanes.rects;
  for (size_t k = lanes.offset[user_i]; k < lanes.offset[user_i + 1]; ++k) {
    if (lanes.max_po[k] >= d_o) {
      const double dx =
          std::max(std::max(r.lo_x[k] - px, 0.0), px - r.hi_x[k]);
      const double dy =
          std::max(std::max(r.lo_y[k] - py, 0.0), py - r.hi_y[k]);
      if (dx * dx + dy * dy <= t_le) {
        has_role_tile = true;
        break;
      }
    }
  }
  const bool case4 = has_role_tile || m_star <= std::max(d_p, n_star);
  if (case4) ++stats->accepted;
  return case4;
}

// ---------------------------------------------------------------------------
// MaxItVerifier (exhaustive reference)
// ---------------------------------------------------------------------------

bool MaxItVerifier::VerifyTile(const std::vector<TileRegion>& regions,
                               size_t user_i, const Rect& s,
                               const Candidate& cand, const Point& po) {
  return VerifyTileThreadSafe(regions, user_i, s, cand, po, &stats_);
}

bool MaxItVerifier::VerifyTileThreadSafe(const std::vector<TileRegion>& regions,
                                         size_t user_i, const Rect& s,
                                         const Candidate& cand, const Point& po,
                                         VerifyStats* stats) const {
  ++stats->calls;
  const Point& p = cand.p;
  const size_t m = regions.size();

  uint64_t combos = 1;
  for (size_t j = 0; j < m; ++j) {
    if (j == user_i) continue;
    MPN_ASSERT(!regions[j].empty());
    combos *= regions[j].size();
    MPN_ASSERT_MSG(combos <= max_groups_, "IT-Verify tile-group explosion");
  }

  // Odometer over the other users' tiles; user_i is pinned to s.
  std::vector<size_t> idx(m, 0);
  const double s_max_po = s.MaxDist(po);
  const double s_min_p = s.MinDist(p);
  for (;;) {
    ++stats->tile_groups;
    double top = s_max_po, bot = s_min_p;
    for (size_t j = 0; j < m; ++j) {
      if (j == user_i) continue;
      const Rect& t = regions[j].rects()[idx[j]];
      top = std::max(top, t.MaxDist(po));
      bot = std::max(bot, t.MinDist(p));
    }
    if (top > bot) return false;
    // Advance the odometer.
    size_t j = 0;
    for (; j < m; ++j) {
      if (j == user_i) continue;
      if (++idx[j] < regions[j].size()) break;
      idx[j] = 0;
    }
    if (j >= m) break;
  }
  ++stats->accepted;
  return true;
}

// ---------------------------------------------------------------------------
// SumHyperbolaVerifier (Algorithm 6 + memoization)
// ---------------------------------------------------------------------------

double SumHyperbolaVerifier::UserMinFocalDiff(size_t j,
                                              const TileRegion& region,
                                              const Candidate& cand) {
  auto& table = memo_[j];
  auto it = table.find(cand.id);
  if (it != table.end() && it->second.region_size == region.size()) {
    ++stats_.memo_hits;
    return it->second.min_f;
  }
  double f = kInf;
  for (const Rect& t : region.rects()) {
    f = std::min(f, MinFocalDiffOverRect(cand.p, po_, t));
    ++stats_.focal_evals;
  }
  table[cand.id] = MemoEntry{f, region.size()};
  return f;
}

bool SumHyperbolaVerifier::VerifyTile(const std::vector<TileRegion>& regions,
                                      size_t user_i, const Rect& s,
                                      const Candidate& cand, const Point& po) {
  (void)po;  // fixed at construction (po_); parameter kept for interface
  ++stats_.calls;
  const double f_new = MinFocalDiffOverRect(cand.p, po_, s);
  ++stats_.focal_evals;
  double total = f_new;
  for (size_t j = 0; j < regions.size(); ++j) {
    if (j == user_i) continue;
    MPN_DCHECK(!regions[j].empty());
    total += UserMinFocalDiff(j, regions[j], cand);
    if (total < -1e12) break;  // early exit on hopeless sums
  }
  if (total < 0.0) return false;
  pending_[cand.id] = f_new;
  ++stats_.accepted;
  return true;
}

void SumHyperbolaVerifier::OnCommitted(size_t user_i, size_t new_region_size) {
  auto& table = memo_[user_i];
  for (const auto& [id, f] : pending_) {
    auto it = table.find(id);
    if (it != table.end()) {
      it->second.min_f = std::min(it->second.min_f, f);
      it->second.region_size = new_region_size;
    }
  }
  // Entries not refreshed above keep their old region_size and will be
  // recomputed on the next read (correctness under buffered candidate sets).
  pending_.clear();
}

}  // namespace mpn
