#include "mpn/candidates.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/macros.h"

namespace mpn {

namespace {

// Maximum displacement of user j from her current location within her
// region, including (for user_i) the tile under test: r_up in Theorems 3/6.
// Runs the SoA lane reduction over the region's coordinate lanes;
// value-identical to folding Rect::MaxDist tile by tile.
double UserMaxDisplacement(const TileRegion& region, const Point& user,
                           const Rect* extra_tile) {
  double r = RectMaxDistReduce(region.lanes(), user);
  if (extra_tile != nullptr) r = std::max(r, extra_tile->MaxDist(user));
  return r;
}

// Normalizes candidate order across index layouts: the traversal emits in
// layout order, but the verify loop early-exits per candidate and its
// counters go into the result digest, so the scan order must be a function
// of the candidate *set* only.
void SortCandidatesById(std::vector<Candidate>* out) {
  std::sort(out->begin(), out->end(),
            [](const Candidate& a, const Candidate& b) { return a.id < b.id; });
}

}  // namespace

FreshCandidateSource::FreshCandidateSource(SpatialIndex tree,
                                           const std::vector<Point>* users,
                                           Objective obj, uint32_t po_id,
                                           const Point& po, bool use_pruning)
    : tree_(tree),
      users_(users),
      obj_(obj),
      po_id_(po_id),
      po_(po),
      use_pruning_(use_pruning) {}

bool FreshCandidateSource::GetCandidates(
    const std::vector<TileRegion>& regions, size_t user_i, const Rect& s,
    std::vector<Candidate>* out) {
  out->clear();
  ++stats_.retrievals;
  const std::vector<Point>& users = *users_;
  const size_t m = users.size();
  MPN_DCHECK(regions.size() == m);
  // Tight per-call delta on the calling thread (see node_accesses()).
  const uint64_t accesses_before = tree_.node_accesses();

  if (!use_pruning_) {  // ablation baseline: every non-result POI
    tree_.Traverse([](const Rect&) { return true; },
                   [&](const Point& p, uint32_t id) {
                     if (id != po_id_) out->push_back({id, p});
                   });
    SortCandidatesById(out);
    stats_.candidates_total += out->size();
    node_accesses_ += tree_.node_accesses() - accesses_before;
    return true;
  }

  // Per-user displacement bounds r_up (tile s counts for user_i).
  bound_.resize(m);
  for (size_t j = 0; j < m; ++j) {
    bound_[j] =
        UserMaxDisplacement(regions[j], users[j], j == user_i ? &s : nullptr);
  }

  if (obj_ == Objective::kMax) {
    // Theorem 3: p survives iff ||p,u_j|| <= ||po,R||_top + r_up_j for all j.
    double top = s.MaxDist(po_);
    for (size_t j = 0; j < m; ++j) {
      if (!regions[j].empty()) top = std::max(top, regions[j].MaxDist(po_));
    }
    for (size_t j = 0; j < m; ++j) bound_[j] = top + bound_[j];
    tree_.Traverse(
        [&](const Rect& mbr) {
          for (size_t j = 0; j < m; ++j) {
            if (mbr.MinDist(users[j]) > bound_[j]) return false;
          }
          return true;
        },
        [&](const Point& p, uint32_t id) {
          if (id == po_id_) return;
          for (size_t j = 0; j < m; ++j) {
            if (Dist(p, users[j]) > bound_[j]) return;
          }
          out->push_back({id, p});
        });
  } else {
    // Theorem 6: p survives iff ||p,U||_sum <= ||po,U||_sum + 2*sum_j r_up_j.
    double sum_r = 0.0;
    for (size_t j = 0; j < m; ++j) sum_r += bound_[j];
    const double bound = AggDist(po_, users, Objective::kSum) + 2.0 * sum_r;
    tree_.Traverse(
        [&](const Rect& mbr) {
          return AggMinDist(mbr, users, Objective::kSum) <= bound;
        },
        [&](const Point& p, uint32_t id) {
          if (id == po_id_) return;
          if (AggDist(p, users, Objective::kSum) <= bound) {
            out->push_back({id, p});
          }
        });
  }
  SortCandidatesById(out);
  stats_.candidates_total += out->size();
  node_accesses_ += tree_.node_accesses() - accesses_before;
  return true;
}

BufferedCandidateSource::BufferedCandidateSource(
    SpatialIndex tree, const std::vector<Point>& users, Objective obj, int b)
    : users_(users), obj_(obj) {
  MPN_ASSERT(b >= 1);
  buffer_ = FindGnn(tree, users_, obj, static_cast<size_t>(b) + 1);
  MPN_ASSERT(!buffer_.empty());
  const double denom =
      obj == Objective::kMax ? 2.0 : 2.0 * static_cast<double>(users_.size());
  betas_.reserve(static_cast<size_t>(b));
  for (int z = 1; z <= b; ++z) {
    // beta_z = (agg(p^{z+1}) - agg(po)) / denom; +inf when the dataset has
    // no (z+1)-th point (then no point outside the buffer can ever win).
    if (static_cast<size_t>(z) < buffer_.size()) {
      betas_.push_back((buffer_[static_cast<size_t>(z)].agg - buffer_[0].agg) /
                       denom);
    } else {
      betas_.push_back(std::numeric_limits<double>::infinity());
    }
  }
}

double BufferedCandidateSource::Beta(int z) const {
  MPN_ASSERT(z >= 1 && static_cast<size_t>(z) <= betas_.size());
  return betas_[static_cast<size_t>(z) - 1];
}

bool BufferedCandidateSource::GetCandidates(
    const std::vector<TileRegion>& regions, size_t user_i, const Rect& s,
    std::vector<Candidate>* out) {
  out->clear();
  ++stats_.retrievals;
  const size_t m = users_.size();
  MPN_DCHECK(regions.size() == m);
  // Algorithm 5 line 1: the largest displacement any user can have.
  double dist = s.MaxDist(users_[user_i]);
  for (size_t j = 0; j < m; ++j) {
    if (!regions[j].empty()) {
      dist = std::max(dist,
                      UserMaxDisplacement(regions[j], users_[j], nullptr));
    }
  }
  // Minimum slot z with dist <= beta_z (binary search; betas are sorted).
  const auto it = std::lower_bound(betas_.begin(), betas_.end(), dist);
  if (it == betas_.end()) {
    ++stats_.rejected_by_buffer;
    return false;  // Algorithm 5 lines 3-4
  }
  const int z = static_cast<int>(it - betas_.begin()) + 1;
  // Verify against P*_{1..z} - {po} = buffered points 2..z.
  for (int j = 1; j < z && static_cast<size_t>(j) < buffer_.size(); ++j) {
    out->push_back({buffer_[static_cast<size_t>(j)].id,
                    buffer_[static_cast<size_t>(j)].p});
  }
  stats_.candidates_total += out->size();
  return true;
}

}  // namespace mpn
