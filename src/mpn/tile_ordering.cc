#include "mpn/tile_ordering.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace mpn {

void TileOrdering::RingCell(int k, int pos, int* ix, int* iy) {
  MPN_DCHECK(k >= 1 && pos >= 0 && pos < 8 * k);
  if (pos <= k) {
    *ix = k;
    *iy = pos;
  } else if (pos <= 3 * k) {
    *ix = k - (pos - k);
    *iy = k;
  } else if (pos <= 5 * k) {
    *ix = -k;
    *iy = k - (pos - 3 * k);
  } else if (pos <= 7 * k) {
    *ix = -k + (pos - 5 * k);
    *iy = -k;
  } else {
    *ix = k;
    *iy = -k + (pos - 7 * k);
  }
}

bool TileOrdering::AcceptCell(const TileRegion& region, int ix, int iy) const {
  if (!directed_) return true;
  const Rect rect = region.TileRect(GridTile{0, ix, iy});
  // The user sits at the center of cell (0,0).
  const Point u{region.origin().x + region.delta() / 2.0,
                region.origin().y + region.delta() / 2.0};
  if (rect.Contains(u)) return true;
  const double center_angle = (rect.Center() - u).Angle();
  double half_span = 0.0;
  for (int c = 0; c < 4; ++c) {
    half_span = std::max(
        half_span, AngleDiff((rect.Corner(c) - u).Angle(), center_angle));
  }
  return AngleDiff(center_angle, heading_) <= theta_ + half_span;
}

std::optional<GridTile> TileOrdering::Next(const TileRegion& region) {
  if (exhausted_) return std::nullopt;
  if (ring_ == 0) {
    ring_ = 1;
    pos_ = 0;
    inserted_in_ring_ = false;
  }
  for (;;) {
    if (pos_ >= 8 * ring_) {
      if (!inserted_in_ring_) {
        exhausted_ = true;
        return std::nullopt;
      }
      ++ring_;
      pos_ = 0;
      inserted_in_ring_ = false;
    }
    int ix = 0, iy = 0;
    RingCell(ring_, pos_, &ix, &iy);
    ++pos_;
    if (AcceptCell(region, ix, iy)) return GridTile{0, ix, iy};
  }
}

}  // namespace mpn
