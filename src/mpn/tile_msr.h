// Tile-based safe regions (Section 5): Divide-Verify (Algorithm 2) and
// Tile-MSR (Algorithm 3), with GT-Verify, Theorem-3/6 index pruning,
// directed orderings and the Section-5.4 buffering optimization — and the
// Sum-MPN extensions of Section 6.3.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "index/gnn.h"
#include "mpn/candidates.h"
#include "mpn/circle_msr.h"
#include "mpn/safe_region.h"
#include "mpn/tile_ordering.h"
#include "mpn/tile_verify.h"
#include "util/arena.h"

namespace mpn {

/// Verification back-end selector.
enum class VerifierKind {
  kGt,  ///< GT-Verify (Algorithm 4) / Sum hyperbola verify (Algorithm 6)
  kIt,  ///< exhaustive IT-Verify (MAX only; reference & ablation)
};

/// Inner-kernel selector for the candidate scan. Both kernels make the
/// same decisions and produce the same counters bit-for-bit (asserted by
/// the differential tests and the lifecycle fuzzer); kScalar exists as the
/// reference for differential testing and ablation.
enum class KernelKind {
  kScalar,  ///< per-(tile, candidate) AoS walk over vector<Rect>
  kSoA,     ///< batched SoA lane kernels (default; geom/lanes.h)
};

/// Reusable per-computation scratch: a bump arena for the SoA scan
/// snapshots and fan-out chunk state, plus the candidate buffer. Owned by
/// the caller (MpnServer keeps one per session) so steady-state recomputes
/// perform no allocator traffic; ComputeTileMsr falls back to a local one
/// when the config carries none. Not thread-safe — callers must serialize
/// recomputes sharing a scratch (GroupSession already serializes its own).
struct MsrScratch {
  Arena arena;
  std::vector<Candidate> candidates;
};

/// Abstract parallel executor for the per-user candidate fan-out inside
/// Divide-Verify. Implementations (the engine wraps util/thread_pool.h)
/// must partition [0, n) into chunks of exactly `grain` indices (last chunk
/// may be short), run body(begin, end) for each — possibly concurrently —
/// and return only after every chunk finished. The chunk layout must never
/// depend on the worker count; that is what keeps verification statistics
/// bit-identical across thread counts.
class VerifyExecutor {
 public:
  virtual ~VerifyExecutor() = default;
  virtual void Run(size_t n, size_t grain,
                   const std::function<void(size_t begin, size_t end)>& body) = 0;
};

/// Knobs of the optional parallel candidate fan-out inside Divide-Verify.
/// With a null executor the scan is the sequential legacy loop (stops at
/// the first failing candidate). With an executor, chunks of `grain`
/// candidates are verified concurrently — each chunk still early-exits, so
/// counters stay deterministic for a fixed grain.
struct VerifyFanout {
  VerifyExecutor* executor = nullptr;
  size_t grain = 16;
  /// Below this many candidates the scan stays sequential (fan-out
  /// overhead would dominate).
  size_t min_candidates = 32;
};

/// Configuration of the tile-based safe-region computation.
struct TileMsrConfig {
  int alpha = 30;         ///< tile limit per user (Table 2 default)
  int split_level = 2;    ///< L, recursion depth of Divide-Verify
  bool directed = false;  ///< Tile-D: directed tile ordering
  bool buffered = false;  ///< Tile-D-b: Section-5.4 buffering
  int buffer_b = 100;     ///< b, buffer size (paper recommends 10..100)
  VerifierKind verifier = VerifierKind::kGt;
  /// Theorem-3/6 index pruning during candidate retrieval. Disable only for
  /// the ablation benchmarks (full scans are drastically slower).
  bool index_pruning = true;
  /// Fallback cone half-angle for directed ordering when a user supplies no
  /// learned deviation (radians).
  double default_theta = 1.0471975511965976;  // 60 degrees
  /// Parallel per-user verification fan-out (engine integration; defaults
  /// to sequential).
  VerifyFanout fanout;
  /// Candidate-scan kernel. kSoA batches the scan through the lane kernels
  /// of geom/lanes.h; kScalar keeps the reference AoS walk selectable for
  /// differential testing. Results are bit-identical either way.
  KernelKind kernel = KernelKind::kSoA;
  /// Optional caller-owned scratch (arena + candidate buffer) reused
  /// across computations; null allocates per call.
  MsrScratch* scratch = nullptr;
};

/// Per-computation statistics (drives the running-time/ablation benches).
struct MsrStats {
  uint64_t tiles_tried = 0;        ///< level-0 cells pulled from orderings
  uint64_t tiles_added = 0;        ///< tiles inserted (all levels)
  uint64_t divide_calls = 0;       ///< Divide-Verify invocations
  VerifyStats verify;              ///< verifier counters
  CandidateStats candidates;       ///< candidate-source counters
  uint64_t rtree_node_accesses = 0;  ///< R-tree nodes touched
};

/// Result of one safe-region computation.
struct MsrResult {
  uint32_t po_id = 0;
  Point po;
  double po_agg = 0.0;
  std::vector<SafeRegion> regions;
  MsrStats stats;
};

/// Per-user movement hint for directed orderings.
struct MotionHint {
  bool has_heading = false;
  double heading = 0.0;  ///< radians
  double theta = 0.0;    ///< learned angular deviation bound (radians); <= 0
                         ///< means "use TileMsrConfig::default_theta"
};

/// Algorithm 2 (Divide-Verify), exposed for testing. Attempts to add grid
/// tile `tile` (or sub-tiles down to `level` more splits) to
/// (*regions)[user_i]. Returns true when at least one tile was inserted.
/// `fanout` optionally parallelizes the candidate scan (see VerifyFanout);
/// `kernel` selects the scan kernel (SoA requires a lanes-capable
/// verifier, otherwise the scalar walk runs); `scratch` may be null.
bool DivideVerify(std::vector<TileRegion>* regions, size_t user_i,
                  const GridTile& tile, const Point& po,
                  CandidateSource* source, TileVerifier* verifier, int level,
                  MsrStats* stats, const VerifyFanout& fanout = {},
                  KernelKind kernel = KernelKind::kSoA,
                  MsrScratch* scratch = nullptr);

/// Algorithm 3 (Tile-MSR). `hints` may be empty (undirected behaviour) or
/// one entry per user. Falls back to circular regions when the tile side
/// would degenerate (rmax ~ 0 or unbounded). `tree` accepts either index
/// backend (index/spatial_index.h); the result and every digested counter
/// are identical across backends.
MsrResult ComputeTileMsr(SpatialIndex tree, const std::vector<Point>& users,
                         Objective obj, const TileMsrConfig& config,
                         const std::vector<MotionHint>& hints = {});

}  // namespace mpn
