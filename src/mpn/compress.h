// Lossless compression of tile-based safe regions.
//
// The TKDE version of the paper omits the encoding details "due to space
// limitations" and refers to the ICDE 2013 version; the property it relies
// on (Section 7.1) is that a tile-based region costs only a few packets.
// We implement a grid-anchored bitmap encoding with exactly that behaviour:
//
//   header:  origin.x, origin.y, delta, level_count          (4 values)
//   per level present in the region:
//            level, window_ix, window_iy, width, height      (5 values)
//            ceil(width*height / 64) bitmap words            (1 value each)
//
// Because tiles live on the canonical grid of mpn/safe_region.h, encoding
// and decoding are exact (integer cell coordinates; no floating-point
// drift). One "value" is one 8-byte slot of the paper's packet model
// (67 values per 576-byte packet), so a 30-tile region costs ~10 values
// instead of 90 for the naive 3-values-per-square encoding.
#pragma once

#include <cstdint>
#include <vector>

#include "mpn/safe_region.h"
#include "util/bitset.h"

namespace mpn {

/// One encoded level: a bitmap over the level's bounding window of cells.
struct EncodedLevel {
  int32_t level = 0;
  int32_t ix0 = 0;     ///< window lower-left cell x
  int32_t iy0 = 0;     ///< window lower-left cell y
  int32_t width = 0;   ///< window width in cells
  int32_t height = 0;  ///< window height in cells
  DynamicBitset bits;  ///< row-major occupancy, bit = (iy-iy0)*width+(ix-ix0)
};

/// Compressed representation of a TileRegion.
struct EncodedTileRegion {
  Point origin;
  double delta = 0.0;
  std::vector<EncodedLevel> levels;

  /// Number of 8-byte values the encoding occupies in a message.
  size_t ValueCount() const;
};

/// Encodes a region; exact (DecodeTileRegion returns an equal tile set).
EncodedTileRegion EncodeTileRegion(const TileRegion& region);

/// Decodes back to a TileRegion (tile order is canonical: by level, then
/// row-major within the window).
TileRegion DecodeTileRegion(const EncodedTileRegion& enc);

/// Value count of the naive encoding: 3 values per square tile.
size_t RawTileValueCount(const TileRegion& region);

}  // namespace mpn
