#include "mpn/circle_msr.h"

#include "util/macros.h"

namespace mpn {

namespace {
// Effectively-unbounded radius for single-POI datasets: the result can never
// change, so the safe region is the whole plane.
constexpr double kUnboundedRadius = 1e15;
}  // namespace

double MaxCircleRadius(double best_agg, double second_agg, size_t m,
                       Objective obj) {
  MPN_ASSERT(m >= 1);
  if (second_agg < best_agg) return kUnboundedRadius;  // "no second" marker
  const double gap = second_agg - best_agg;
  return obj == Objective::kMax ? gap / 2.0
                                : gap / (2.0 * static_cast<double>(m));
}

CircleMsrResult ComputeCircleMsr(SpatialIndex tree,
                                 const std::vector<Point>& users,
                                 Objective obj) {
  MPN_ASSERT(!users.empty());
  MPN_ASSERT(!tree.empty());
  const auto top2 = FindGnn(tree, users, obj, 2);
  CircleMsrResult out;
  out.po_id = top2[0].id;
  out.po = top2[0].p;
  out.po_agg = top2[0].agg;
  out.rmax = top2.size() < 2
                 ? kUnboundedRadius
                 : MaxCircleRadius(top2[0].agg, top2[1].agg, users.size(), obj);
  out.regions.reserve(users.size());
  for (const Point& u : users) {
    out.regions.push_back(SafeRegion::MakeCircle(Circle(u, out.rmax)));
  }
  return out;
}

}  // namespace mpn
