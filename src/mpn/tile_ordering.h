// Tile browsing orders for Algorithm 3 (Fig. 8).
//
// Undirected ordering visits level-0 grid cells ring by ring around the
// user's initial tile, counter-clockwise starting east. The next ring is
// entered only if at least one tile of the current ring was inserted into
// the safe region; otherwise the ordering is exhausted (no farther tile can
// be valid for this user).
//
// Directed ordering additionally skips cells whose subtended angle at the
// user deviates from the user's current travel direction by more than
// theta, exploiting the bounded angular deviation of near-future movement
// (Tao et al., SIGMOD 2004). The angular test is slightly widened by the
// cell's angular half-span so that cells partially inside the cone are kept
// (conservative: extra tiles cost time, never correctness).
#pragma once

#include <optional>

#include "geom/rect.h"
#include "mpn/safe_region.h"

namespace mpn {

/// Streaming generator of candidate level-0 tiles for one user.
class TileOrdering {
 public:
  /// Undirected ordering.
  TileOrdering() = default;

  /// Directed ordering around `heading` (radians) with half-angle `theta`.
  TileOrdering(double heading, double theta)
      : directed_(true), heading_(heading), theta_(theta) {}

  /// Next level-0 cell to try (never the initial cell (0,0)), or nullopt
  /// when exhausted. Cells are reported in ring order; within a ring,
  /// counter-clockwise from east.
  std::optional<GridTile> Next(const TileRegion& region);

  /// Marks that a tile from the most recently reported cell (or one of its
  /// sub-tiles) was inserted; enables advancing to the next ring.
  void MarkInserted() { inserted_in_ring_ = true; }

  /// Ring currently being browsed (1-based; 0 before the first Next call).
  int ring() const { return ring_; }

 private:
  // Cell at position `pos` (0-based) of ring `k`, CCW from (k, 0).
  static void RingCell(int k, int pos, int* ix, int* iy);
  bool AcceptCell(const TileRegion& region, int ix, int iy) const;

  bool directed_ = false;
  double heading_ = 0.0;
  double theta_ = 0.0;
  int ring_ = 0;
  int pos_ = 0;  // next position within the ring
  bool inserted_in_ring_ = false;
  bool exhausted_ = false;
};

}  // namespace mpn
