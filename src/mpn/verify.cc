#include "mpn/verify.h"

namespace mpn {

double DominantMaxDist(const std::vector<SafeRegion>& regions,
                       const Point& p) {
  double d = 0.0;
  for (const SafeRegion& r : regions) d = std::max(d, r.MaxDist(p));
  return d;
}

double DominantMinDist(const std::vector<SafeRegion>& regions,
                       const Point& p) {
  double d = 0.0;
  for (const SafeRegion& r : regions) d = std::max(d, r.MinDist(p));
  return d;
}

bool VerifyLemma1(const std::vector<SafeRegion>& regions, const Point& po,
                  const Point& p) {
  return DominantMaxDist(regions, po) <= DominantMinDist(regions, p);
}

bool VerifySumConservative(const std::vector<SafeRegion>& regions,
                           const Point& po, const Point& p) {
  double sum_max = 0.0, sum_min = 0.0;
  for (const SafeRegion& r : regions) {
    sum_max += r.MaxDist(po);
    sum_min += r.MinDist(p);
  }
  return sum_max <= sum_min;
}

bool VerifyConservative(const std::vector<SafeRegion>& regions,
                        const Point& po, const Point& p, Objective obj) {
  return obj == Objective::kMax ? VerifyLemma1(regions, po, p)
                                : VerifySumConservative(regions, po, p);
}

}  // namespace mpn
