#include "mpn/compress.h"

#include <algorithm>
#include <map>

#include "util/macros.h"

namespace mpn {

size_t EncodedTileRegion::ValueCount() const {
  size_t v = 4;  // origin.x, origin.y, delta, level_count
  for (const EncodedLevel& lv : levels) v += 5 + lv.bits.WordCount();
  return v;
}

EncodedTileRegion EncodeTileRegion(const TileRegion& region) {
  EncodedTileRegion enc;
  enc.origin = region.origin();
  enc.delta = region.delta();

  // Group tiles by level and compute per-level windows.
  std::map<int32_t, std::vector<const GridTile*>> by_level;
  for (const GridTile& t : region.tiles()) by_level[t.level].push_back(&t);

  for (const auto& [level, tiles] : by_level) {
    EncodedLevel lv;
    lv.level = level;
    int32_t min_x = tiles[0]->ix, max_x = tiles[0]->ix;
    int32_t min_y = tiles[0]->iy, max_y = tiles[0]->iy;
    for (const GridTile* t : tiles) {
      min_x = std::min(min_x, t->ix);
      max_x = std::max(max_x, t->ix);
      min_y = std::min(min_y, t->iy);
      max_y = std::max(max_y, t->iy);
    }
    lv.ix0 = min_x;
    lv.iy0 = min_y;
    lv.width = max_x - min_x + 1;
    lv.height = max_y - min_y + 1;
    lv.bits = DynamicBitset(static_cast<size_t>(lv.width) *
                            static_cast<size_t>(lv.height));
    for (const GridTile* t : tiles) {
      const size_t bit = static_cast<size_t>(t->iy - lv.iy0) *
                             static_cast<size_t>(lv.width) +
                         static_cast<size_t>(t->ix - lv.ix0);
      lv.bits.Set(bit);
    }
    enc.levels.push_back(std::move(lv));
  }
  return enc;
}

TileRegion DecodeTileRegion(const EncodedTileRegion& enc) {
  TileRegion region = TileRegion::FromOrigin(enc.origin, enc.delta);
  for (const EncodedLevel& lv : enc.levels) {
    for (int32_t y = 0; y < lv.height; ++y) {
      for (int32_t x = 0; x < lv.width; ++x) {
        const size_t bit = static_cast<size_t>(y) *
                               static_cast<size_t>(lv.width) +
                           static_cast<size_t>(x);
        if (lv.bits.Test(bit)) {
          region.Add(GridTile{lv.level, lv.ix0 + x, lv.iy0 + y});
        }
      }
    }
  }
  return region;
}

size_t RawTileValueCount(const TileRegion& region) {
  return region.size() * 3;
}

}  // namespace mpn
