// Candidate retrieval for tile verification.
//
// Divide-Verify (Algorithm 2) must test a tile against every POI that could
// displace the current optimum. Two sources are provided:
//
//  * FreshCandidateSource — traverses the R-tree on every call, pruning
//    with Theorem 3 (MAX) or Theorem 6 (SUM). Exact but touches the index
//    repeatedly; this is the cost the Section-5.4 buffering removes.
//
//  * BufferedCandidateSource — retrieves the best b+1 GNNs once per safe-
//    region computation and serves verification from that buffer using the
//    distance-threshold slots of Theorem 4 / Theorem 7 (Algorithm 5). A
//    tile whose required displacement exceeds the largest threshold is
//    rejected outright (conservative).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "index/gnn.h"
#include "mpn/safe_region.h"

namespace mpn {

/// A POI that must be checked during tile verification.
struct Candidate {
  uint32_t id = 0;
  Point p;
};

/// Shared statistics across candidate retrievals.
struct CandidateStats {
  uint64_t retrievals = 0;        ///< calls to GetCandidates
  uint64_t candidates_total = 0;  ///< candidates returned in total
  uint64_t rejected_by_buffer = 0;  ///< tiles rejected for exceeding beta_b
};

/// Interface used by Divide-Verify.
class CandidateSource {
 public:
  virtual ~CandidateSource() = default;

  /// Computes the candidates that must be verified when tile `s` (geometric
  /// extent) is being allocated to `user_i`, given the current tile regions.
  /// Returns false when the tile must be rejected without verification
  /// (buffered mode: no valid distance-threshold slot).
  virtual bool GetCandidates(const std::vector<TileRegion>& regions,
                             size_t user_i, const Rect& s,
                             std::vector<Candidate>* out) = 0;

  const CandidateStats& stats() const { return stats_; }

  /// R-tree nodes touched by this source's own retrievals, accumulated as
  /// tight per-call deltas on the calling thread. ComputeTileMsr sums this
  /// with its setup-phase delta into MsrStats::rtree_node_accesses, so the
  /// per-recompute total is robust against any unrelated index traffic a
  /// pooled thread may run between setup and finish (the R-tree counter is
  /// thread-local and shared across computations).
  uint64_t node_accesses() const { return node_accesses_; }

 protected:
  CandidateStats stats_;
  uint64_t node_accesses_ = 0;
};

/// Theorem 3 / Theorem 6 pruned retrieval from the R-tree on every call.
class FreshCandidateSource : public CandidateSource {
 public:
  /// `tree`, `users` must outlive the source. `po_id`/`po`/`po_agg` identify
  /// the current optimum and its aggregate distance. With
  /// `use_pruning = false` the traversal degenerates to a full scan
  /// (ablation baseline for the Theorem-3/6 pruning). Candidates are
  /// returned sorted by id: the raw traversal order depends on the index
  /// layout (index/spatial_index.h), and downstream early-exit scans feed
  /// their counters into the engine digest, so the order must not.
  FreshCandidateSource(SpatialIndex tree, const std::vector<Point>* users,
                       Objective obj, uint32_t po_id, const Point& po,
                       bool use_pruning = true);

  bool GetCandidates(const std::vector<TileRegion>& regions, size_t user_i,
                     const Rect& s, std::vector<Candidate>* out) override;

 private:
  SpatialIndex tree_;
  const std::vector<Point>* users_;
  Objective obj_;
  uint32_t po_id_;
  Point po_;
  bool use_pruning_;
  // Per-call scratch reused across retrievals (a source lives for one
  // safe-region computation and is driven from one thread).
  std::vector<double> bound_;
};

/// Theorem 4 / Theorem 7 buffered retrieval (Algorithm 5).
class BufferedCandidateSource : public CandidateSource {
 public:
  /// Fetches the best b+1 GNNs from the tree (one-time index access) and
  /// precomputes the distance thresholds beta_1..beta_b. Buffer order is
  /// the GNN (agg, id) order, identical for every index backend.
  BufferedCandidateSource(SpatialIndex tree, const std::vector<Point>& users,
                          Objective obj, int b);

  bool GetCandidates(const std::vector<TileRegion>& regions, size_t user_i,
                     const Rect& s, std::vector<Candidate>* out) override;

  /// The optimum (first buffered GNN).
  const GnnCursor::Item& best() const { return buffer_.front(); }

  /// Distance threshold of slot z (1-based); +inf past the dataset end.
  double Beta(int z) const;

  /// Number of usable slots.
  int slot_count() const { return static_cast<int>(betas_.size()); }

 private:
  std::vector<Point> users_;
  Objective obj_;
  std::vector<GnnCursor::Item> buffer_;  // best b+1 GNNs (or fewer)
  std::vector<double> betas_;            // betas_[z-1] = beta_z, z = 1..b
};

}  // namespace mpn
