// Aggregate (group) nearest-neighbor search over the R-tree.
//
// Implements the MAX-GNN and SUM-GNN queries of Papadias et al. (ICDE 2004),
// which the paper uses as FindMaxGNN / FindSumGNN in Algorithm 1 and in the
// buffering optimization (Section 5.4 needs the best b+1 group nearest
// neighbors). The search is an incremental best-first traversal whose
// priority key for an index node is the aggregate of per-user MINDIST lower
// bounds, so results stream out in exact aggregate-distance order.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "index/spatial_index.h"

namespace mpn {

/// Aggregate objective for the meeting point (Definitions 2 and 8).
enum class Objective {
  kMax,  ///< minimize max_i ||p, u_i|| (MPN / MAX-GNN)
  kSum,  ///< minimize sum_i ||p, u_i|| (Sum-MPN / SUM-GNN)
};

/// Human-readable objective name.
const char* ObjectiveName(Objective obj);

/// Aggregate distance ||p, U||_agg of point p to the user set.
double AggDist(const Point& p, const std::vector<Point>& users, Objective obj);

/// Lower bound of the aggregate distance for any point inside `mbr`.
double AggMinDist(const Rect& mbr, const std::vector<Point>& users,
                  Objective obj);

/// Incremental best-first GNN cursor: Next() yields POIs in non-decreasing
/// aggregate distance order, ties broken by id (deterministic).
class GnnCursor {
 public:
  /// A result point with its aggregate distance.
  struct Item {
    uint32_t id = 0;
    Point p;
    double agg = 0.0;
  };

  /// The indexed tree must outlive the cursor (`tree` accepts `&rtree` or
  /// `&packed` via SpatialIndex's converting constructors). `users` is
  /// copied. The yield order (agg, id) is identical for every backend.
  GnnCursor(SpatialIndex tree, std::vector<Point> users, Objective obj);

  /// Next best POI, or nullopt when exhausted.
  std::optional<Item> Next();

 private:
  struct Entry {
    double key;
    bool is_point;
    int32_t node;
    uint32_t id;
    Point p;
    bool operator>(const Entry& o) const {
      if (key != o.key) return key > o.key;
      if (is_point != o.is_point) return is_point && !o.is_point;
      return id > o.id;
    }
  };

  SpatialIndex tree_;
  std::vector<Point> users_;
  Objective obj_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
};

/// Top-k aggregate nearest neighbors, best first. Returns fewer than k when
/// the dataset is smaller.
std::vector<GnnCursor::Item> FindGnn(SpatialIndex tree,
                                     const std::vector<Point>& users,
                                     Objective obj, size_t k);

/// Brute-force reference (O(n*m)); used for validation and tiny inputs.
std::vector<GnnCursor::Item> FindGnnBruteForce(
    const std::vector<Point>& pois, const std::vector<Point>& users,
    Objective obj, size_t k);

}  // namespace mpn
