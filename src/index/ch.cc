#include "index/ch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "util/macros.h"
#include "util/thread_pool.h"

namespace mpn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr uint32_t kNoNode = 0xFFFFFFFFu;

/// One adjacency entry of the dynamic "core" graph during contraction.
struct CoreArc {
  uint32_t node;
  double weight;
  uint32_t arc;  ///< arc-pool index
};

/// Stamped scratch for the bounded witness Dijkstras. One per thread so the
/// initial-priority pass can run under ParallelFor.
struct WitnessScratch {
  std::vector<double> dist;
  std::vector<uint32_t> stamp;
  uint32_t cur = 0;
  std::vector<std::pair<double, uint32_t>> heap;

  void Prepare(size_t n) {
    if (dist.size() < n) {
      dist.resize(n);
      stamp.assign(n, 0);
      cur = 0;
    }
    heap.clear();
    if (++cur == 0) {  // stamp wrap: invalidate everything once
      std::fill(stamp.begin(), stamp.end(), 0);
      cur = 1;
    }
  }
  double Get(uint32_t v) const { return stamp[v] == cur ? dist[v] : kInf; }
  void Set(uint32_t v, double d) {
    stamp[v] = cur;
    dist[v] = d;
  }
};

thread_local WitnessScratch g_witness_scratch;

}  // namespace

/// Stamped Dijkstra state for the query-time upward searches (thread_local
/// via TlsFwd/TlsBwd, so const queries are safe from concurrent threads).
/// One node's state lives in a single 16-byte Label so the hot relax/stall
/// loops pay one cache access per looked-up node, not three.
struct CHIndex::SearchScratch {
  struct Label {
    double dist;
    uint32_t stamp;
    uint32_t parent;  ///< arc used to reach the node, or kNoArc
  };
  std::vector<Label> label;
  std::vector<uint32_t> pos;  ///< settle-order position (MakeTargetSet)
  uint32_t cur = 0;
  std::vector<uint32_t> settled;  ///< nodes in settle order
  std::vector<std::pair<double, uint32_t>> heap;
  struct Candidate {
    uint32_t node;
    uint32_t arc;
    double dist;
  };
  std::vector<Candidate> buf;  ///< deferred relaxations (fused stall pass)

  void Prepare(size_t n) {
    if (label.size() < n) {
      label.assign(n, Label{0.0, 0, 0});
      pos.resize(n);
      cur = 0;
    }
    settled.clear();
    heap.clear();
    if (++cur == 0) {
      for (Label& l : label) l.stamp = 0;
      cur = 1;
    }
  }
  bool Reached(uint32_t v) const { return label[v].stamp == cur; }
  double Dist(uint32_t v) const { return label[v].dist; }
};

CHIndex::SearchScratch& CHIndex::TlsFwd() {
  static thread_local SearchScratch s;
  return s;
}

CHIndex::SearchScratch& CHIndex::TlsBwd() {
  static thread_local SearchScratch s;
  return s;
}

// ---------------------------------------------------------------------------
// Preprocessing
// ---------------------------------------------------------------------------

CHIndex CHIndex::Build(size_t node_count, const std::vector<InputEdge>& edges,
                       const Options& options) {
  CHIndex ch;
  ch.rank_.assign(node_count, 0);
  ch.arcs_.reserve(edges.size() * (options.directed ? 1 : 2));
  for (const InputEdge& e : edges) {
    MPN_ASSERT(e.from < node_count && e.to < node_count && e.from != e.to);
    MPN_ASSERT(e.weight >= 0.0 && std::isfinite(e.weight));
    ch.arcs_.push_back({e.from, e.to, e.weight, kNoArc, kNoArc});
    if (!options.directed) {
      ch.arcs_.push_back({e.to, e.from, e.weight, kNoArc, kNoArc});
    }
  }
  ch.original_arcs_ = ch.arcs_.size();
  ch.directed_ = options.directed;

  const size_t n = node_count;
  std::vector<std::vector<CoreArc>> out(n), in(n);
  for (uint32_t a = 0; a < ch.arcs_.size(); ++a) {
    const Arc& arc = ch.arcs_[a];
    out[arc.from].push_back({arc.to, arc.weight, a});
    in[arc.to].push_back({arc.from, arc.weight, a});
  }
  std::vector<bool> contracted(n, false);
  std::vector<int64_t> deleted_neighbors(n, 0);

  // Bounded Dijkstra from `src` over the remaining core, skipping
  // `excluded` (the node being contracted). Tentative distances are left in
  // the thread-local scratch; reading a tentative (over-)estimate is safe
  // because it can only *fail* to certify a witness, never fake one.
  const size_t settle_limit = options.witness_settle_limit;
  auto witness_search = [&](uint32_t src, uint32_t excluded, double cap) {
    WitnessScratch& ws = g_witness_scratch;
    ws.Prepare(n);
    ws.Set(src, 0.0);
    ws.heap.push_back({0.0, src});
    size_t settles = 0;
    const auto cmp = std::greater<std::pair<double, uint32_t>>();
    while (!ws.heap.empty()) {
      std::pop_heap(ws.heap.begin(), ws.heap.end(), cmp);
      const auto [d, u] = ws.heap.back();
      ws.heap.pop_back();
      if (d > ws.Get(u)) continue;  // stale entry
      if (d > cap || ++settles > settle_limit) break;
      for (const CoreArc& e : out[u]) {
        if (contracted[e.node] || e.node == excluded) continue;
        const double nd = d + e.weight;
        if (nd < ws.Get(e.node)) {
          ws.Set(e.node, nd);
          ws.heap.push_back({nd, e.node});
          std::push_heap(ws.heap.begin(), ws.heap.end(), cmp);
        }
      }
    }
  };

  // One planned shortcut of a contraction.
  struct Shortcut {
    uint32_t u;
    uint32_t w;
    double via;
    uint32_t left;
    uint32_t right;
  };

  // Collects into `plan` the shortcuts needed to remove `v` while
  // preserving all shortest-path distances (witness searches over the
  // pre-contraction core).
  auto plan_contraction = [&](uint32_t v, std::vector<Shortcut>* plan) {
    plan->clear();
    for (const CoreArc& ia : in[v]) {
      const uint32_t u = ia.node;
      if (contracted[u]) continue;
      double cap = 0.0;
      bool any_pair = false;
      for (const CoreArc& oa : out[v]) {
        if (contracted[oa.node] || oa.node == u) continue;
        cap = std::max(cap, ia.weight + oa.weight);
        any_pair = true;
      }
      if (!any_pair) continue;
      witness_search(u, v, cap);
      for (const CoreArc& oa : out[v]) {
        if (contracted[oa.node] || oa.node == u) continue;
        const double via = ia.weight + oa.weight;
        if (g_witness_scratch.Get(oa.node) <= via) continue;  // witness found
        plan->push_back({u, oa.node, via, ia.arc, oa.arc});
      }
    }
  };

  // Edge-difference priority with the deleted-neighbors uniformity term.
  // The plan is kept so a contraction decided right after an evaluation
  // reuses it instead of re-running every witness search.
  auto priority = [&](uint32_t v, std::vector<Shortcut>* plan) -> int64_t {
    plan_contraction(v, plan);
    int64_t removed = 0;
    for (const CoreArc& e : in[v]) removed += contracted[e.node] ? 0 : 1;
    for (const CoreArc& e : out[v]) removed += contracted[e.node] ? 0 : 1;
    return 2 * static_cast<int64_t>(plan->size()) - removed +
           deleted_neighbors[v];
  };

  // Initial priorities: per-node pure functions of the input graph, so the
  // parallel pass is bit-deterministic for any thread count.
  std::vector<int64_t> prio(n, 0);
  if (options.pool != nullptr && n >= 4096) {
    options.pool->ParallelFor(n, 512, [&](size_t lo, size_t hi) {
      std::vector<Shortcut> plan;
      for (size_t v = lo; v < hi; ++v) {
        prio[v] = priority(static_cast<uint32_t>(v), &plan);
      }
    });
  } else {
    std::vector<Shortcut> plan;
    for (size_t v = 0; v < n; ++v) {
      prio[v] = priority(static_cast<uint32_t>(v), &plan);
    }
  }

  // Lazy-update contraction loop: pop the cheapest node, re-evaluate, and
  // contract it unless something else became cheaper. Ties resolve to the
  // smaller node id via the pair ordering — fully deterministic.
  using PQE = std::pair<int64_t, uint32_t>;
  std::priority_queue<PQE, std::vector<PQE>, std::greater<PQE>> pq;
  for (uint32_t v = 0; v < n; ++v) pq.push({prio[v], v});
  std::vector<uint32_t> neighbor_set;
  std::vector<Shortcut> plan;
  uint32_t next_rank = 0;
  while (!pq.empty()) {
    const auto [p, v] = pq.top();
    pq.pop();
    if (contracted[v]) continue;
    const int64_t cur = priority(v, &plan);
    if (!pq.empty() && cur > pq.top().first) {
      pq.push({cur, v});
      continue;
    }
    for (const Shortcut& sc : plan) {
      const uint32_t idx = static_cast<uint32_t>(ch.arcs_.size());
      ch.arcs_.push_back({sc.u, sc.w, sc.via, sc.left, sc.right});
      out[sc.u].push_back({sc.w, sc.via, idx});
      in[sc.w].push_back({sc.u, sc.via, idx});
    }
    contracted[v] = true;
    ch.rank_[v] = next_rank++;
    neighbor_set.clear();
    for (const CoreArc& e : out[v]) {
      if (!contracted[e.node]) neighbor_set.push_back(e.node);
    }
    for (const CoreArc& e : in[v]) {
      if (!contracted[e.node]) neighbor_set.push_back(e.node);
    }
    std::sort(neighbor_set.begin(), neighbor_set.end());
    neighbor_set.erase(std::unique(neighbor_set.begin(), neighbor_set.end()),
                       neighbor_set.end());
    for (uint32_t w : neighbor_set) ++deleted_neighbors[w];
  }
  MPN_ASSERT(next_rank == n);

  // Renumber into the internal rank-order id space (see ch.h): the arc
  // pool and both CSRs use internal ids from here on.
  ch.perm_.resize(n);
  ch.inv_.resize(n);
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t internal = static_cast<uint32_t>(n) - 1 - ch.rank_[v];
    ch.perm_[v] = internal;
    ch.inv_[internal] = v;
  }
  for (Arc& a : ch.arcs_) {
    a.from = ch.perm_[a.from];
    a.to = ch.perm_[a.to];
  }

  ch.BuildCsr();
  return ch;
}

void CHIndex::BuildCsr() {
  // A contraction can insert a shortcut (u, w) although a heavier parallel
  // arc (u, w) already exists; only the lightest parallel arc can ever lie
  // on a shortest path, so the query graphs keep exactly that one. (The
  // arc pool keeps them all — shortcut unpacking still needs every arc.)
  const size_t n = rank_.size();
  struct Slot {
    uint32_t key;  // CSR key node
    uint32_t node;
    double weight;
    uint32_t arc;
  };
  std::vector<Slot> fwd, bwd;
  fwd.reserve(arcs_.size());
  for (uint32_t i = 0; i < arcs_.size(); ++i) {
    const Arc& a = arcs_[i];  // internal ids: smaller id = higher rank
    if (a.to < a.from) {
      fwd.push_back({a.from, a.to, a.weight, i});
    } else {
      bwd.push_back({a.to, a.from, a.weight, i});
    }
  }
  const auto build_one = [n](std::vector<Slot>* slots, Csr* csr) {
    // Sort by (key, node, weight, arc): parallel arcs become adjacent with
    // the lightest first; ties keep the lowest arc id — deterministic.
    std::sort(slots->begin(), slots->end(),
              [](const Slot& x, const Slot& y) {
                if (x.key != y.key) return x.key < y.key;
                if (x.node != y.node) return x.node < y.node;
                if (x.weight != y.weight) return x.weight < y.weight;
                return x.arc < y.arc;
              });
    csr->off.assign(n + 1, 0);
    csr->entries.clear();
    csr->entries.reserve(slots->size());
    for (size_t i = 0; i < slots->size(); ++i) {
      const Slot& s = (*slots)[i];
      if (i > 0 && (*slots)[i - 1].key == s.key &&
          (*slots)[i - 1].node == s.node) {
        continue;  // dominated parallel arc
      }
      ++csr->off[s.key + 1];
      csr->entries.push_back({s.node, s.weight, s.arc});
    }
    for (size_t v = 0; v < n; ++v) csr->off[v + 1] += csr->off[v];
  };
  build_one(&fwd, &up_fwd_);
  build_one(&bwd, &up_bwd_);
}

// ---------------------------------------------------------------------------
// Query machinery
// ---------------------------------------------------------------------------

uint32_t CHIndex::ProcessTop(const Csr& graph, const Csr& stall_graph,
                             SearchScratch* s, P2P* p2p) {
  const auto cmp = std::greater<std::pair<double, uint32_t>>();
  std::pop_heap(s->heap.begin(), s->heap.end(), cmp);
  const auto [d, u] = s->heap.back();
  s->heap.pop_back();
  if (d > s->label[u].dist) return kNoNode;  // stale entry
  // Stall-on-demand: a strictly shorter label through a higher-ranked
  // settled neighbor proves u cannot be the meet of an optimal up-down
  // path; skip it (it may be re-queued if its label improves).
  bool stalled = false;
  if (&graph == &stall_graph) {
    // Undirected: the stall row IS the relax row, so one pass reads each
    // neighbor label exactly once, deciding stall and relaxation from the
    // same load. Relaxations are buffered and dropped if u stalls.
    s->buf.clear();
    for (uint32_t k = graph.off[u]; k < graph.off[u + 1]; ++k) {
      const Csr::Entry& e = graph.entries[k];
      const SearchScratch::Label& l = s->label[e.node];
      const bool reached = l.stamp == s->cur;
      if (reached && l.dist + e.weight < d) {
        stalled = true;
        break;
      }
      const double nd = d + e.weight;
      if (!reached || nd < l.dist) s->buf.push_back({e.node, e.arc, nd});
    }
    if (stalled) return kNoNode;
    s->settled.push_back(u);
    for (const SearchScratch::Candidate& c : s->buf) {
      s->label[c.node] = {c.dist, s->cur, c.arc};
      if (p2p != nullptr) {
        // Meeting-value candidate at relax time (tightens mu early), and
        // push pruning: a label at mu or above can never improve the meet.
        if (p2p->other->Reached(c.node)) {
          const double cand = c.dist + p2p->other->Dist(c.node);
          if (cand < p2p->mu) {
            p2p->mu = cand;
            p2p->meet = c.node;
          }
        }
        if (c.dist >= p2p->mu) continue;
      }
      s->heap.push_back({c.dist, c.node});
      std::push_heap(s->heap.begin(), s->heap.end(), cmp);
    }
    return u;
  }
  for (uint32_t k = stall_graph.off[u]; k < stall_graph.off[u + 1]; ++k) {
    const Csr::Entry& e = stall_graph.entries[k];
    const SearchScratch::Label& l = s->label[e.node];
    if (l.stamp == s->cur && l.dist + e.weight < d) {
      stalled = true;
      break;
    }
  }
  if (stalled) return kNoNode;
  s->settled.push_back(u);
  for (uint32_t k = graph.off[u]; k < graph.off[u + 1]; ++k) {
    const Csr::Entry& e = graph.entries[k];
    const double nd = d + e.weight;
    SearchScratch::Label& l = s->label[e.node];
    if (l.stamp != s->cur || nd < l.dist) {
      l = {nd, s->cur, e.arc};
      if (p2p != nullptr) {
        if (p2p->other->Reached(e.node)) {
          const double cand = nd + p2p->other->Dist(e.node);
          if (cand < p2p->mu) {
            p2p->mu = cand;
            p2p->meet = e.node;
          }
        }
        if (nd >= p2p->mu) continue;
      }
      s->heap.push_back({nd, e.node});
      std::push_heap(s->heap.begin(), s->heap.end(), cmp);
    }
  }
  return u;
}

void CHIndex::UpwardSearch(const Csr& graph, const Csr& stall_graph,
                           const Seed* seeds, size_t seed_count,
                           SearchScratch* s) {
  const auto cmp = std::greater<std::pair<double, uint32_t>>();
  for (size_t i = 0; i < seed_count; ++i) {
    const Seed& sd = seeds[i];
    SearchScratch::Label& l = s->label[sd.node];
    if (l.stamp != s->cur || sd.dist < l.dist) {
      l = {sd.dist, s->cur, kNoArc};
      s->heap.push_back({sd.dist, sd.node});
      std::push_heap(s->heap.begin(), s->heap.end(), cmp);
    }
  }
  while (!s->heap.empty()) ProcessTop(graph, stall_graph, s);
}

void CHIndex::AppendOriginalArcs(uint32_t arc,
                                 std::vector<uint32_t>* out) const {
  static thread_local std::vector<uint32_t> stack;
  stack.clear();
  stack.push_back(arc);
  while (!stack.empty()) {
    const uint32_t a = stack.back();
    stack.pop_back();
    const Arc& rec = arcs_[a];
    if (rec.left == kNoArc) {
      out->push_back(a);
      continue;
    }
    stack.push_back(rec.right);  // popped after left: left-to-right order
    stack.push_back(rec.left);
  }
}

uint32_t CHIndex::CollectForwardArcs(const SearchScratch& fwd, uint32_t node,
                                     std::vector<uint32_t>* arcs) const {
  static thread_local std::vector<uint32_t> chain;
  chain.clear();
  uint32_t v = node;
  while (fwd.label[v].parent != kNoArc) {
    chain.push_back(fwd.label[v].parent);
    v = arcs_[fwd.label[v].parent].from;
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    AppendOriginalArcs(*it, arcs);
  }
  return v;  // the chain root (a seed node)
}

uint32_t CHIndex::CollectBackwardArcs(const SearchScratch& bwd, uint32_t node,
                                      std::vector<uint32_t>* arcs) const {
  uint32_t v = node;
  while (bwd.label[v].parent != kNoArc) {
    const uint32_t a = bwd.label[v].parent;
    AppendOriginalArcs(a, arcs);
    v = arcs_[a].to;
  }
  return v;  // the chain root (a seed node)
}

double CHIndex::FoldTargetSuffix(const TargetSet& targets, uint32_t j,
                                 uint32_t entry, double init) {
  const std::vector<TargetSet::Entry>& entries = targets.per_target_[j];
  const std::vector<double>& weights = targets.per_target_weights_[j];
  double d = init;
  uint32_t e = entry;
  while (entries[e].parent != TargetSet::kNoEntry) {
    const TargetSet::Entry& rec = entries[e];
    const double* w = weights.data() + rec.unpack_off;
    for (uint32_t k = 0; k < rec.unpack_len; ++k) d += w[k];
    e = rec.parent;
  }
  return d;
}

double CHIndex::FoldArcs(double init, const std::vector<uint32_t>& arcs) const {
  double d = init;
  for (uint32_t a : arcs) d += arcs_[a].weight;
  return d;
}

uint32_t CHIndex::RunP2P(const Seed* src_seeds, size_t src_count,
                         const Seed* dst_seeds, size_t dst_count) const {
  const auto cmp = std::greater<std::pair<double, uint32_t>>();
  SearchScratch& fwd = TlsFwd();
  SearchScratch& bwd = TlsBwd();
  fwd.Prepare(NodeCount());
  bwd.Prepare(NodeCount());
  for (size_t i = 0; i < src_count; ++i) {
    const Seed& sd = src_seeds[i];
    SearchScratch::Label& l = fwd.label[sd.node];
    if (l.stamp != fwd.cur || sd.dist < l.dist) {
      l = {sd.dist, fwd.cur, kNoArc};
      fwd.heap.push_back({sd.dist, sd.node});
      std::push_heap(fwd.heap.begin(), fwd.heap.end(), cmp);
    }
  }
  for (size_t i = 0; i < dst_count; ++i) {
    const Seed& sd = dst_seeds[i];
    SearchScratch::Label& l = bwd.label[sd.node];
    if (l.stamp != bwd.cur || sd.dist < l.dist) {
      l = {sd.dist, bwd.cur, kNoArc};
      bwd.heap.push_back({sd.dist, sd.node});
      std::push_heap(bwd.heap.begin(), bwd.heap.end(), cmp);
    }
  }
  // Candidate events fire on label *writes* during the search, which the
  // direct seed writes above bypass — so a node seeded on both sides (e.g.
  // a shared edge endpoint) must be evaluated as a meet up front.
  P2P fctx{&bwd, kInf, kNoNode};
  for (size_t i = 0; i < src_count; ++i) {
    const uint32_t v = src_seeds[i].node;
    if (bwd.Reached(v)) {
      const double cand = fwd.Dist(v) + bwd.Dist(v);
      if (cand < fctx.mu) {
        fctx.mu = cand;
        fctx.meet = v;
      }
    }
  }

  // Interleaved bidirectional search with mu-termination: pop the cheaper
  // frontier; once neither frontier can beat the best meeting value found,
  // nothing better exists (any unsettled candidate costs at least the
  // frontier minimum). A settle event on either side evaluates the node
  // against the other side's label (settled or tentative — either is a
  // real path). At termination mu equals the exact distance and the
  // recorded meet's labels are final: a candidate event with both labels
  // at their true values must have fired for the optimal up-down path's
  // meeting node, and a sum at the d(s,meet) + d(meet,t) lower bound
  // leaves neither label room to improve, so the parent chains the refold
  // walks are exactly the chains the recorded value came from.
  while (!fwd.heap.empty() || !bwd.heap.empty()) {
    const double tf = fwd.heap.empty() ? kInf : fwd.heap.front().first;
    const double tb = bwd.heap.empty() ? kInf : bwd.heap.front().first;
    if (std::min(tf, tb) >= fctx.mu) break;
    if (tf <= tb) {
      fctx.other = &bwd;
      ProcessTop(up_fwd_, FwdStallGraph(), &fwd, &fctx);
    } else {
      fctx.other = &fwd;
      ProcessTop(up_bwd_, BwdStallGraph(), &bwd, &fctx);
    }
  }
  return fctx.meet;
}

double CHIndex::Distance(uint32_t src, uint32_t dst) const {
  MPN_ASSERT(src < NodeCount() && dst < NodeCount());
  if (src == dst) return 0.0;
  const Seed s{perm_[src], 0.0};
  const Seed t{perm_[dst], 0.0};
  const uint32_t meet = RunP2P(&s, 1, &t, 1);
  if (meet == kNoNode) return kInf;
  static thread_local std::vector<uint32_t> arcs;
  arcs.clear();
  CollectForwardArcs(TlsFwd(), meet, &arcs);
  CollectBackwardArcs(TlsBwd(), meet, &arcs);
  return FoldArcs(0.0, arcs);
}

double CHIndex::SeededDistance(const std::vector<Seed>& sources,
                               const std::vector<Seed>& targets) const {
  if (sources.empty() || targets.empty()) return kInf;
  static thread_local std::vector<Seed> src_seeds, dst_seeds;
  src_seeds.clear();
  dst_seeds.clear();
  for (const Seed& s : sources) {
    MPN_ASSERT(s.node < NodeCount());
    src_seeds.push_back({perm_[s.node], s.dist});
  }
  for (const Seed& t : targets) {
    MPN_ASSERT(t.node < NodeCount());
    dst_seeds.push_back({perm_[t.node], t.dist});
  }
  const uint32_t meet = RunP2P(src_seeds.data(), src_seeds.size(),
                               dst_seeds.data(), dst_seeds.size());
  if (meet == kNoNode) return kInf;
  // Dijkstra's grouping: fold the source seed through the whole original
  // path, then add the target offset last.
  static thread_local std::vector<uint32_t> arcs;
  arcs.clear();
  const uint32_t fwd_root = CollectForwardArcs(TlsFwd(), meet, &arcs);
  const uint32_t bwd_root = CollectBackwardArcs(TlsBwd(), meet, &arcs);
  return FoldArcs(TlsFwd().Dist(fwd_root), arcs) + TlsBwd().Dist(bwd_root);
}

std::vector<uint32_t> CHIndex::Path(uint32_t src, uint32_t dst) const {
  MPN_ASSERT(src < NodeCount() && dst < NodeCount());
  if (src == dst) return {src};
  const Seed s{perm_[src], 0.0};
  const Seed t{perm_[dst], 0.0};
  const uint32_t meet = RunP2P(&s, 1, &t, 1);
  if (meet == kNoNode) return {};
  std::vector<uint32_t> arcs;
  CollectForwardArcs(TlsFwd(), meet, &arcs);
  CollectBackwardArcs(TlsBwd(), meet, &arcs);
  std::vector<uint32_t> path;
  path.reserve(arcs.size() + 1);
  path.push_back(src);
  for (uint32_t a : arcs) path.push_back(inv_[arcs_[a].to]);
  return path;
}

// ---------------------------------------------------------------------------
// Bucket-based many-to-many
// ---------------------------------------------------------------------------

CHIndex::TargetSet CHIndex::MakeTargetSet(const std::vector<uint32_t>& targets,
                                          ThreadPool* pool) const {
  TargetSet ts;
  ts.per_target_.resize(targets.size());
  ts.per_target_weights_.resize(targets.size());
  auto run_target = [&](size_t lo, size_t hi) {
    static thread_local std::vector<uint32_t> expansion;
    for (size_t j = lo; j < hi; ++j) {
      MPN_ASSERT(targets[j] < NodeCount());
      SearchScratch& s = TlsBwd();
      s.Prepare(NodeCount());
      const Seed seed{perm_[targets[j]], 0.0};
      UpwardSearch(up_bwd_, BwdStallGraph(), &seed, 1, &s);
      std::vector<TargetSet::Entry>& entries = ts.per_target_[j];
      std::vector<double>& weights = ts.per_target_weights_[j];
      entries.reserve(s.settled.size());
      for (uint32_t idx = 0; idx < s.settled.size(); ++idx) {
        const uint32_t v = s.settled[idx];
        uint32_t parent_entry = TargetSet::kNoEntry;
        uint32_t arc = kNoArc;
        uint32_t unpack_off = 0;
        uint32_t unpack_len = 0;
        if (s.label[v].parent != kNoArc) {
          arc = s.label[v].parent;
          // The parent settles before the child, so its position is known.
          parent_entry = s.pos[arcs_[arc].to];
          // Refold cache: expand the (possibly shortcut) arc into original
          // arcs once, at build time, and keep only their weights in path
          // order — queries then fold slices instead of recursing.
          expansion.clear();
          AppendOriginalArcs(arc, &expansion);
          unpack_off = static_cast<uint32_t>(weights.size());
          unpack_len = static_cast<uint32_t>(expansion.size());
          for (uint32_t a : expansion) weights.push_back(arcs_[a].weight);
        }
        s.pos[v] = idx;
        entries.push_back(
            {v, parent_entry, arc, s.label[v].dist, unpack_off, unpack_len});
      }
    }
  };
  if (pool != nullptr && targets.size() >= 32) {
    pool->ParallelFor(targets.size(), 8, run_target);
  } else {
    run_target(0, targets.size());
  }

  // Bucket CSR: every settled (node, target) pair, sorted by node id.
  struct Tmp {
    uint32_t node;
    uint32_t target;
    uint32_t entry;
  };
  std::vector<Tmp> tmp;
  size_t total = 0;
  for (const auto& entries : ts.per_target_) total += entries.size();
  tmp.reserve(total);
  for (uint32_t j = 0; j < ts.per_target_.size(); ++j) {
    const auto& entries = ts.per_target_[j];
    for (uint32_t e = 0; e < entries.size(); ++e) {
      tmp.push_back({entries[e].node, j, e});
    }
  }
  std::sort(tmp.begin(), tmp.end(), [](const Tmp& x, const Tmp& y) {
    if (x.node != y.node) return x.node < y.node;
    if (x.target != y.target) return x.target < y.target;
    return x.entry < y.entry;
  });
  ts.bucket_items_.reserve(tmp.size());
  for (const Tmp& t : tmp) {
    if (ts.bucket_node_.empty() || ts.bucket_node_.back() != t.node) {
      ts.bucket_node_.push_back(t.node);
      ts.bucket_off_.push_back(static_cast<uint32_t>(ts.bucket_items_.size()));
    }
    ts.bucket_items_.push_back(
        {t.target, t.entry, ts.per_target_[t.target][t.entry].dist});
  }
  ts.bucket_off_.push_back(static_cast<uint32_t>(ts.bucket_items_.size()));
  return ts;
}

void CHIndex::SeededDistances(const std::vector<Seed>& seeds,
                              const TargetSet& targets,
                              std::vector<double>* out) const {
  const size_t t_count = targets.TargetCount();
  out->assign(t_count, kInf);
  if (seeds.empty() || t_count == 0) return;
  static thread_local std::vector<Seed> internal_seeds;
  internal_seeds.clear();
  for (const Seed& s : seeds) {
    MPN_ASSERT(s.node < NodeCount());
    internal_seeds.push_back({perm_[s.node], s.dist});
  }

  SearchScratch& fwd = TlsFwd();
  fwd.Prepare(NodeCount());
  UpwardSearch(up_fwd_, FwdStallGraph(), internal_seeds.data(),
               internal_seeds.size(), &fwd);

  // Selection pass: cheapest (meeting node, backward entry) per target. The
  // shortcut-weight sums here only pick the path; the reported distance is
  // refolded below.
  static thread_local std::vector<double> best;
  static thread_local std::vector<std::pair<uint32_t, uint32_t>> pick;
  best.assign(t_count, kInf);
  pick.assign(t_count, {kNoNode, TargetSet::kNoEntry});
  for (uint32_t x : fwd.settled) {
    const auto it = std::lower_bound(targets.bucket_node_.begin(),
                                     targets.bucket_node_.end(), x);
    if (it == targets.bucket_node_.end() || *it != x) continue;
    const size_t bi =
        static_cast<size_t>(it - targets.bucket_node_.begin());
    const double fd = fwd.Dist(x);
    for (uint32_t k = targets.bucket_off_[bi]; k < targets.bucket_off_[bi + 1];
         ++k) {
      const TargetSet::BucketItem& item = targets.bucket_items_[k];
      const double cand = fd + item.dist;
      if (cand < best[item.target]) {
        best[item.target] = cand;
        pick[item.target] = {x, item.entry};
      }
    }
  }

  // Refold pass: Dijkstra's left-sum along the unpacked original path,
  // starting from the seed value at the chain root. Targets that picked
  // the same meeting node share the forward chain, so group by meet and
  // unpack + fold it once; the per-target remainder continues the fold
  // over the cached unpacked suffix (FoldTargetSuffix). Both reuse steps
  // replay exactly the additions of the ungrouped refold, in the same
  // order, so the distances stay bit-identical.
  static thread_local std::vector<std::pair<uint32_t, uint32_t>> by_meet;
  by_meet.clear();
  for (size_t j = 0; j < t_count; ++j) {
    if (pick[j].first != kNoNode) {
      by_meet.emplace_back(pick[j].first, static_cast<uint32_t>(j));
    }
  }
  std::sort(by_meet.begin(), by_meet.end());
  static thread_local std::vector<uint32_t> arcs;
  size_t i = 0;
  while (i < by_meet.size()) {
    const uint32_t meet = by_meet[i].first;
    arcs.clear();
    const uint32_t root = CollectForwardArcs(fwd, meet, &arcs);
    const double at_meet = FoldArcs(fwd.Dist(root), arcs);
    for (; i < by_meet.size() && by_meet[i].first == meet; ++i) {
      const uint32_t j = by_meet[i].second;
      (*out)[j] = FoldTargetSuffix(targets, j, pick[j].second, at_meet);
    }
  }
}

}  // namespace mpn
