// Static bulk-loaded R-tree in a packed flat-array layout.
//
// PackedRTree answers the same queries as the dynamic RTree (rtree.h) over
// an immutable point set, but stores the tree as index-addressed flat
// arrays instead of per-node heap vectors:
//
//  * Nodes are level-contiguous: leaves occupy ids [0, leaf_count), each
//    upper level directly follows its children, the root is the last node.
//    A node is a leaf iff id < leaf_count — no is_leaf byte, no parent
//    pointers, no per-node allocations.
//  * A node's children (or point slots) are the contiguous index run
//    [first, first + count), so the per-node MBRs live in four global SoA
//    lanes (lo_x/lo_y/hi_x/hi_y) and a node's child MBRs form a
//    geom/lanes.h RectLanes view by plain pointer offset — range and
//    circle queries run the branch-light lane predicates instead of
//    pointer-chasing an AoS node graph.
//  * Leaf payloads are global SoA point arrays (px/py/ids) packed in the
//    chosen space-filling order; every leaf is 100% full except the last.
//  * Every subtree covers a contiguous slot range of the point arrays, so
//    a range query that fully contains a child MBR appends the whole
//    subtree's ids in one contiguous copy instead of descending.
//
// Two leaf orders are selectable (PackAlgorithm): STR sort-tile-recursive
// slicing — the same ordering RTree::BulkLoad derives — and Hilbert-curve
// ordering over a 2^16 x 2^16 grid. Upper levels pack each run of `fanout`
// consecutive nodes under one parent (flatbush-style sequential grouping),
// which is what keeps both the children and the subtree slot ranges
// contiguous for either order.
//
// Bit-identity contract: RangeQuery / CircleRangeQuery / Knn return exactly
// the id sets (and, for Knn, the order) the dynamic tree returns over the
// same points. The per-point predicates are the identical IEEE-754 scalar
// expressions, the range fast path fires only on exact coordinate
// comparisons, and CircleRangeQuery takes no containment fast path at all
// (a rounded MaxDist2 bound could disagree with the per-point Dist2 at the
// boundary). Output *order* of the range queries is layout-defined, as it
// is for the dynamic tree; callers needing index-independent order sort
// (mpn/candidates.cc does).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/lanes.h"
#include "geom/rect.h"
#include "geom/vec2.h"
#include "index/rtree.h"
#include "util/macros.h"

namespace mpn {

/// Leaf ordering used by PackedRTree::Build.
enum class PackAlgorithm {
  kStr,      ///< sort-tile-recursive slicing (RTree::BulkLoad's order)
  kHilbert,  ///< Hilbert-curve order over a quantized 2^16 grid
};

/// Human-readable packer name ("str" / "hilbert").
const char* PackAlgorithmName(PackAlgorithm algo);

/// Tuning knobs for the packed tree.
struct PackedRTreeOptions {
  /// Children per internal node / points per leaf (the last sibling of a
  /// level may be short). Matches RTreeOptions::max_entries by default so
  /// packed and dynamic trees compare at equal fanout. Must be in [2, 256]
  /// (queries keep per-child scratch on the stack).
  uint32_t fanout = 32;
};

/// Immutable packed R-tree over points; payloads are the 32-bit input
/// indices, as in RTree. Copyable and cheaply movable (flat vectors).
class PackedRTree {
 public:
  /// Empty tree (size() == 0, root() < 0).
  PackedRTree() = default;

  /// Bulk loads all points at once; ids are 0..points.size()-1. O(n log n)
  /// — two sorts plus one linear packing pass per level.
  static PackedRTree Build(const std::vector<Point>& points,
                           PackAlgorithm algo = PackAlgorithm::kStr,
                           PackedRTreeOptions options = {});

  /// Number of points stored.
  size_t size() const { return px_.size(); }

  /// True when no points are stored.
  bool empty() const { return px_.empty(); }

  /// MBR of the whole tree (empty rect when empty).
  Rect bounds() const;

  /// Tree height (leaf = 1); 0 when empty.
  int Height() const { return height_; }

  /// The leaf order this tree was packed with.
  PackAlgorithm algorithm() const { return algo_; }

  /// Collects ids of all points inside `r` (closed containment). Same id
  /// set as RTree::RangeQuery; appends to `out` without clearing it, so
  /// callers can reuse one vector across queries.
  void RangeQuery(const Rect& r, std::vector<uint32_t>* out) const;

  /// Collects ids of all points within `radius` of `center`.
  void CircleRangeQuery(const Point& center, double radius,
                        std::vector<uint32_t>* out) const;

  /// k nearest neighbors of `q` by Euclidean distance, nearest first; ties
  /// broken by id. Identical output to RTree::Knn.
  std::vector<uint32_t> Knn(const Point& q, size_t k) const;

  /// Guided traversal with the same contract as RTree::Traverse: descends
  /// into a child iff `mbr_pred(child_mbr)`, calls `point_fn(point, id)`
  /// for every entry of a reached leaf.
  template <typename MbrPred, typename PointFn>
  void Traverse(MbrPred&& mbr_pred, PointFn&& point_fn) const {
    if (root_ < 0) return;
    internal::TraversalStackLease lease;
    std::vector<int32_t>& stack = *lease;
    stack.push_back(root_);
    while (!stack.empty()) {
      const int32_t idx = stack.back();
      stack.pop_back();
      ++internal::tls_rtree_node_accesses;
      const int32_t first = first_[idx];
      const int32_t cnt = count_[idx];
      if (idx < leaf_count_) {
        for (int32_t i = first; i < first + cnt; ++i) {
          point_fn(Point{px_[i], py_[i]}, ids_[i]);
        }
      } else {
        for (int32_t i = first; i < first + cnt; ++i) {
          if (mbr_pred(NodeMbr(i))) stack.push_back(i);
        }
      }
    }
  }

  // Low-level node access mirroring RTree's cursor interface (index/gnn.h
  // runs its best-first search over either backend through these).

  /// Root node handle; -1 when empty.
  int32_t root() const { return root_; }

  /// True when the handle refers to a leaf.
  bool IsLeafNode(int32_t node) const { return node < leaf_count_; }

  /// Visits (child_handle, child_mbr) pairs of an internal node.
  template <typename Fn>
  void ForEachChild(int32_t node, Fn&& fn) const {
    ++internal::tls_rtree_node_accesses;
    MPN_DCHECK(!IsLeafNode(node));
    const int32_t first = first_[node];
    for (int32_t i = first; i < first + count_[node]; ++i) {
      fn(i, NodeMbr(i));
    }
  }

  /// Visits (point, id) pairs of a leaf node.
  template <typename Fn>
  void ForEachLeafEntry(int32_t node, Fn&& fn) const {
    ++internal::tls_rtree_node_accesses;
    MPN_DCHECK(IsLeafNode(node));
    const int32_t first = first_[node];
    for (int32_t i = first; i < first + count_[node]; ++i) {
      fn(Point{px_[i], py_[i]}, ids_[i]);
    }
  }

  /// Child-MBR lanes of internal `node` — a zero-copy RectLanes view into
  /// the global SoA arrays (children are contiguous by construction).
  RectLanes ChildMbrLanes(int32_t node) const {
    MPN_DCHECK(!IsLeafNode(node));
    const int32_t first = first_[node];
    return RectLanes{lo_x_.data() + first, lo_y_.data() + first,
                     hi_x_.data() + first, hi_y_.data() + first,
                     static_cast<size_t>(count_[node])};
  }

  /// Cumulative per-thread node-visit counter (shared with RTree; see
  /// internal::tls_rtree_node_accesses).
  uint64_t node_accesses() const { return internal::tls_rtree_node_accesses; }

  /// Resets the calling thread's node-access counter.
  void ResetNodeAccesses() const { internal::tls_rtree_node_accesses = 0; }

  /// Validates the packed layout (level contiguity, MBR exactness, full
  /// leaves, contiguous subtree slot ranges). Aborts on violation.
  void CheckInvariants() const;

 private:
  Rect NodeMbr(int32_t idx) const {
    return Rect({lo_x_[idx], lo_y_[idx]}, {hi_x_[idx], hi_y_[idx]});
  }
  void PushNode(int32_t first, int32_t count, int32_t slot_begin,
                int32_t slot_count, const Rect& mbr);
  // Appends all ids under `node` (one contiguous run of ids_).
  void EmitSubtree(int32_t node, std::vector<uint32_t>* out) const;

  PackedRTreeOptions options_;
  PackAlgorithm algo_ = PackAlgorithm::kStr;
  int32_t root_ = -1;
  int32_t leaf_count_ = 0;
  int height_ = 0;
  // Per-node SoA, leaves first then each level above. `first_` is the first
  // point slot (leaf) or first child node id (internal); either way the
  // node's entries are [first, first + count).
  std::vector<int32_t> first_;
  std::vector<int32_t> count_;
  // Contiguous point-slot span covered by the node's subtree.
  std::vector<int32_t> slot_begin_;
  std::vector<int32_t> slot_count_;
  // Node MBR lanes.
  std::vector<double> lo_x_, lo_y_, hi_x_, hi_y_;
  // Point payload SoA in packed leaf order.
  std::vector<double> px_, py_;
  std::vector<uint32_t> ids_;
};

}  // namespace mpn
