#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace mpn {

RTree::RTree(RTreeOptions options) : options_(options) {
  MPN_ASSERT(options_.max_entries >= 4);
  MPN_ASSERT(options_.min_entries >= 2);
  MPN_ASSERT(options_.min_entries <= options_.max_entries / 2);
}

Rect RTree::bounds() const {
  return root_ < 0 ? Rect::Empty() : NodeMbr(root_);
}

int RTree::Height() const {
  if (root_ < 0) return 0;
  int h = 1;
  int32_t n = root_;
  while (!nodes_[n].is_leaf) {
    n = nodes_[n].children.front();
    ++h;
  }
  return h;
}

Rect RTree::NodeMbr(int32_t idx) const {
  const Node& node = nodes_[idx];
  Rect mbr = Rect::Empty();
  if (node.is_leaf) {
    for (const Point& p : node.points) mbr.ExpandToInclude(p);
  } else {
    for (const Rect& r : node.child_mbrs) mbr.ExpandToInclude(r);
  }
  return mbr;
}

int32_t RTree::ChooseLeaf(const Point& p) const {
  int32_t idx = root_;
  while (!nodes_[idx].is_leaf) {
    const Node& node = nodes_[idx];
    // Least area enlargement; ties by smaller area, then by child order.
    double best_enlarge = 0.0, best_area = 0.0;
    int32_t best = -1;
    for (size_t i = 0; i < node.children.size(); ++i) {
      const Rect& r = node.child_mbrs[i];
      Rect grown = r;
      grown.ExpandToInclude(p);
      const double enlarge = grown.Area() - r.Area();
      const double area = r.Area();
      if (best < 0 || enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best = node.children[i];
        best_enlarge = enlarge;
        best_area = area;
      }
    }
    idx = best;
  }
  return idx;
}

void RTree::Insert(const Point& p, uint32_t id) {
  if (root_ < 0) {
    nodes_.push_back(Node{});
    root_ = 0;
  }
  const int32_t leaf = ChooseLeaf(p);
  nodes_[leaf].points.push_back(p);
  nodes_[leaf].ids.push_back(id);
  ++size_;
  AdjustUpward(leaf);
}

void RTree::AdjustUpward(int32_t idx) {
  while (idx >= 0) {
    const int32_t parent = nodes_[idx].parent;
    if (nodes_[idx].EntryCount() > options_.max_entries) {
      SplitNode(idx);
    } else if (parent >= 0) {
      // Refresh this node's MBR in the parent.
      Node& pnode = nodes_[parent];
      for (size_t i = 0; i < pnode.children.size(); ++i) {
        if (pnode.children[i] == idx) {
          pnode.child_mbrs[i] = NodeMbr(idx);
          break;
        }
      }
    }
    idx = parent;
  }
}

std::vector<int> RTree::QuadraticPartition(
    const std::vector<Rect>& entry_mbrs) const {
  const size_t n = entry_mbrs.size();
  std::vector<int> group(n, -1);
  // Pick seeds: pair with the largest dead area.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dead = Rect::Union(entry_mbrs[i], entry_mbrs[j]).Area() -
                          entry_mbrs[i].Area() - entry_mbrs[j].Area();
      if (dead > worst) {
        worst = dead;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  group[seed_a] = 0;
  group[seed_b] = 1;
  Rect mbr[2] = {entry_mbrs[seed_a], entry_mbrs[seed_b]};
  size_t count[2] = {1, 1};
  size_t remaining = n - 2;
  while (remaining > 0) {
    // Force-assign when one group must absorb the rest to meet min_entries.
    for (int g = 0; g < 2; ++g) {
      if (count[g] + remaining == options_.min_entries) {
        for (size_t i = 0; i < n; ++i) {
          if (group[i] < 0) {
            group[i] = g;
            mbr[g].ExpandToInclude(entry_mbrs[i]);
            ++count[g];
          }
        }
        remaining = 0;
      }
    }
    if (remaining == 0) break;
    // PickNext: entry with the greatest preference difference.
    size_t pick = n;
    double best_diff = -1.0;
    double d_pick[2] = {0.0, 0.0};
    for (size_t i = 0; i < n; ++i) {
      if (group[i] >= 0) continue;
      double d[2];
      for (int g = 0; g < 2; ++g) {
        d[g] = Rect::Union(mbr[g], entry_mbrs[i]).Area() - mbr[g].Area();
      }
      const double diff = std::abs(d[0] - d[1]);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        d_pick[0] = d[0];
        d_pick[1] = d[1];
      }
    }
    MPN_ASSERT(pick < n);
    int g = d_pick[0] < d_pick[1] ? 0 : 1;
    if (d_pick[0] == d_pick[1]) g = mbr[0].Area() <= mbr[1].Area() ? 0 : 1;
    group[pick] = g;
    mbr[g].ExpandToInclude(entry_mbrs[pick]);
    ++count[g];
    --remaining;
  }
  return group;
}

void RTree::SplitNode(int32_t idx) {
  // Gather entry MBRs.
  std::vector<Rect> entry_mbrs;
  const bool is_leaf = nodes_[idx].is_leaf;
  if (is_leaf) {
    for (const Point& p : nodes_[idx].points) {
      entry_mbrs.push_back(Rect::FromPoint(p));
    }
  } else {
    entry_mbrs = nodes_[idx].child_mbrs;
  }
  const std::vector<int> group = QuadraticPartition(entry_mbrs);

  // Create the sibling; move group-1 entries into it.
  const int32_t sib = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  // NOTE: nodes_ may have reallocated; re-take references after push_back.
  nodes_[sib].is_leaf = is_leaf;

  Node old_node = std::move(nodes_[idx]);
  Node& left = nodes_[idx];
  Node& right = nodes_[sib];
  left = Node{};
  left.is_leaf = is_leaf;
  left.parent = old_node.parent;
  right.parent = old_node.parent;

  const size_t n = is_leaf ? old_node.points.size() : old_node.children.size();
  for (size_t i = 0; i < n; ++i) {
    Node& dst = group[i] == 0 ? left : right;
    if (is_leaf) {
      dst.points.push_back(old_node.points[i]);
      dst.ids.push_back(old_node.ids[i]);
    } else {
      dst.children.push_back(old_node.children[i]);
      dst.child_mbrs.push_back(old_node.child_mbrs[i]);
      nodes_[old_node.children[i]].parent =
          group[i] == 0 ? idx : sib;
    }
  }

  const int32_t parent = nodes_[idx].parent;
  if (parent < 0) {
    // Grow a new root.
    const int32_t new_root = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    Node& root = nodes_[new_root];
    root.is_leaf = false;
    root.children = {idx, sib};
    root.child_mbrs = {NodeMbr(idx), NodeMbr(sib)};
    nodes_[idx].parent = new_root;
    nodes_[sib].parent = new_root;
    root_ = new_root;
  } else {
    Node& pnode = nodes_[parent];
    for (size_t i = 0; i < pnode.children.size(); ++i) {
      if (pnode.children[i] == idx) {
        pnode.child_mbrs[i] = NodeMbr(idx);
        break;
      }
    }
    pnode.children.push_back(sib);
    pnode.child_mbrs.push_back(NodeMbr(sib));
    // Parent overflow is handled by the caller's upward loop.
  }
}

RTree RTree::BulkLoad(const std::vector<Point>& points, RTreeOptions options) {
  RTree tree(options);
  const size_t n = points.size();
  if (n == 0) return tree;
  tree.size_ = n;
  const size_t cap = options.max_entries;

  // Sort ids by x, slice, sort slices by y, pack leaves (STR).
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (points[a].x != points[b].x) return points[a].x < points[b].x;
    if (points[a].y != points[b].y) return points[a].y < points[b].y;
    return a < b;
  });
  const size_t leaf_count = (n + cap - 1) / cap;
  const size_t slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  const size_t slice_size = (n + slices - 1) / slices;
  std::vector<int32_t> level;  // node handles of the current level
  for (size_t s = 0; s < slices; ++s) {
    const size_t begin = s * slice_size;
    if (begin >= n) break;
    const size_t end = std::min(begin + slice_size, n);
    std::sort(order.begin() + begin, order.begin() + end,
              [&](uint32_t a, uint32_t b) {
                if (points[a].y != points[b].y) return points[a].y < points[b].y;
                if (points[a].x != points[b].x) return points[a].x < points[b].x;
                return a < b;
              });
    for (size_t i = begin; i < end; i += cap) {
      const int32_t h = static_cast<int32_t>(tree.nodes_.size());
      tree.nodes_.push_back(Node{});
      Node& leaf = tree.nodes_.back();
      leaf.is_leaf = true;
      for (size_t j = i; j < std::min(i + cap, end); ++j) {
        leaf.points.push_back(points[order[j]]);
        leaf.ids.push_back(order[j]);
      }
      level.push_back(h);
    }
  }

  // Build internal levels by packing node MBR centers with the same STR.
  while (level.size() > 1) {
    std::vector<Point> centers;
    centers.reserve(level.size());
    for (int32_t h : level) centers.push_back(tree.NodeMbr(h).Center());
    std::vector<uint32_t> idx(level.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
      if (centers[a].x != centers[b].x) return centers[a].x < centers[b].x;
      return centers[a].y < centers[b].y;
    });
    const size_t m = level.size();
    const size_t parent_count = (m + cap - 1) / cap;
    const size_t pslices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(parent_count))));
    const size_t pslice_size = (m + pslices - 1) / pslices;
    std::vector<int32_t> next_level;
    for (size_t s = 0; s < pslices; ++s) {
      const size_t begin = s * pslice_size;
      if (begin >= m) break;
      const size_t end = std::min(begin + pslice_size, m);
      std::sort(idx.begin() + begin, idx.begin() + end,
                [&](uint32_t a, uint32_t b) {
                  if (centers[a].y != centers[b].y)
                    return centers[a].y < centers[b].y;
                  return centers[a].x < centers[b].x;
                });
      for (size_t i = begin; i < end; i += cap) {
        const int32_t h = static_cast<int32_t>(tree.nodes_.size());
        tree.nodes_.push_back(Node{});
        tree.nodes_[h].is_leaf = false;
        for (size_t j = i; j < std::min(i + cap, end); ++j) {
          const int32_t child = level[idx[j]];
          tree.nodes_[h].children.push_back(child);
          tree.nodes_[h].child_mbrs.push_back(tree.NodeMbr(child));
          tree.nodes_[child].parent = h;
        }
        next_level.push_back(h);
      }
    }
    level = std::move(next_level);
  }
  tree.root_ = level.empty() ? -1 : level.front();
  return tree;
}

void RTree::RangeQuery(const Rect& r, std::vector<uint32_t>* out) const {
  Traverse([&](const Rect& mbr) { return mbr.Intersects(r); },
           [&](const Point& p, uint32_t id) {
             if (r.Contains(p)) out->push_back(id);
           });
}

void RTree::CircleRangeQuery(const Point& center, double radius,
                             std::vector<uint32_t>* out) const {
  const double r2 = radius * radius;
  Traverse([&](const Rect& mbr) { return mbr.MinDist2(center) <= r2; },
           [&](const Point& p, uint32_t id) {
             if (Dist2(p, center) <= r2) out->push_back(id);
           });
}

std::vector<uint32_t> RTree::Knn(const Point& q, size_t k) const {
  std::vector<uint32_t> result;
  if (root_ < 0 || k == 0) return result;
  struct Entry {
    double key;
    bool is_point;
    int32_t node;
    uint32_t id;
    Point p;
    bool operator>(const Entry& o) const {
      if (key != o.key) return key > o.key;
      // Expand nodes before points at equal keys; break point ties by id.
      if (is_point != o.is_point) return is_point && !o.is_point;
      return id > o.id;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.push({0.0, false, root_, 0, Point{}});
  while (!heap.empty() && result.size() < k) {
    const Entry e = heap.top();
    heap.pop();
    if (e.is_point) {
      result.push_back(e.id);
    } else if (IsLeafNode(e.node)) {
      ForEachLeafEntry(e.node, [&](const Point& p, uint32_t id) {
        heap.push({Dist(q, p), true, -1, id, p});
      });
    } else {
      ForEachChild(e.node, [&](int32_t child, const Rect& mbr) {
        heap.push({mbr.MinDist(q), false, child, 0, Point{}});
      });
    }
  }
  return result;
}

int RTree::LeafDepth() const {
  int d = 0;
  int32_t n = root_;
  while (n >= 0 && !nodes_[n].is_leaf) {
    n = nodes_[n].children.front();
    ++d;
  }
  return d;
}

void RTree::CheckNode(int32_t idx, int depth, int leaf_depth) const {
  const Node& node = nodes_[idx];
  if (idx != root_) {
    MPN_ASSERT(node.EntryCount() >= 1);
    MPN_ASSERT(node.EntryCount() <= options_.max_entries);
  }
  if (node.is_leaf) {
    MPN_ASSERT(depth == leaf_depth);
    MPN_ASSERT(node.points.size() == node.ids.size());
  } else {
    MPN_ASSERT(node.children.size() == node.child_mbrs.size());
    for (size_t i = 0; i < node.children.size(); ++i) {
      const int32_t c = node.children[i];
      MPN_ASSERT(nodes_[c].parent == idx);
      const Rect actual = NodeMbr(c);
      MPN_ASSERT(node.child_mbrs[i].ContainsRect(actual) ||
                 (actual.IsEmpty() && node.child_mbrs[i].IsEmpty()));
      CheckNode(c, depth + 1, leaf_depth);
    }
  }
}

void RTree::CheckInvariants() const {
  if (root_ < 0) {
    MPN_ASSERT(size_ == 0);
    return;
  }
  size_t counted = 0;
  Traverse([](const Rect&) { return true; },
           [&](const Point&, uint32_t) { ++counted; });
  MPN_ASSERT(counted == size_);
  CheckNode(root_, 0, LeafDepth());
}

}  // namespace mpn
