// In-memory R-tree over 2-D points.
//
// This is the index the paper assumes over the POI set P (Section 3.1).
// It supports Guttman-style insertion with quadratic split, STR (sort-tile-
// recursive) bulk loading, range and kNN queries, and a generic pruned
// traversal used by the Theorem-3/Theorem-6 candidate retrieval and by the
// incremental group-nearest-neighbor search (index/gnn.h).
//
// Nodes live in an arena (std::vector) and are addressed by index, which
// keeps the structure cache-friendly and trivially copyable.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "geom/rect.h"
#include "geom/vec2.h"
#include "util/macros.h"

namespace mpn {

namespace internal {
/// Node-access counter, kept thread-local so that concurrent read-only
/// queries over a shared tree (the engine runs per-group recompute jobs on
/// a thread pool) neither race nor bleed into each other's accounting: a
/// before/after delta taken on one thread counts exactly the accesses of
/// the work that ran between the two reads on that thread. The counter is
/// shared by all trees a thread touches; delta-based accounting (the only
/// consumer, see mpn/tile_msr.cc) is unaffected as long as one computation
/// queries one tree, which holds everywhere in this codebase.
inline thread_local uint64_t tls_rtree_node_accesses = 0;

/// Leases a cleared DFS stack from a per-thread pool. Traversals used to
/// construct a std::vector per call, and the candidate loop issues one
/// pruned traversal per tile per recompute — per-call construction was
/// steady-state allocator churn in the hottest loop. The pool is a deque
/// so a nested traversal (a predicate that itself queries an index) gets a
/// distinct stack without invalidating outstanding references; the stacks
/// keep their capacity across queries.
class TraversalStackLease {
 public:
  TraversalStackLease() : stack_(Acquire()) { stack_.clear(); }
  ~TraversalStackLease() { --Pool().depth; }
  TraversalStackLease(const TraversalStackLease&) = delete;
  TraversalStackLease& operator=(const TraversalStackLease&) = delete;

  std::vector<int32_t>& operator*() const { return stack_; }

 private:
  struct StackPool {
    std::deque<std::vector<int32_t>> stacks;
    size_t depth = 0;
  };
  static StackPool& Pool() {
    static thread_local StackPool pool;
    return pool;
  }
  static std::vector<int32_t>& Acquire() {
    StackPool& pool = Pool();
    if (pool.depth == pool.stacks.size()) pool.stacks.emplace_back();
    return pool.stacks[pool.depth++];
  }

  std::vector<int32_t>& stack_;
};
}  // namespace internal

/// Tuning knobs for the R-tree.
struct RTreeOptions {
  /// Maximum entries per node before a split.
  uint32_t max_entries = 32;
  /// Minimum entries per node after a split (must be <= max_entries / 2).
  uint32_t min_entries = 8;
};

/// R-tree over points; point payloads are 32-bit ids (indices into the
/// caller's point array).
class RTree {
 public:
  explicit RTree(RTreeOptions options = {});

  /// Bulk loads with the STR packing algorithm; ids are 0..points.size()-1.
  static RTree BulkLoad(const std::vector<Point>& points,
                        RTreeOptions options = {});

  /// Inserts one point with the given id.
  void Insert(const Point& p, uint32_t id);

  /// Number of points stored.
  size_t size() const { return size_; }

  /// True when no points are stored.
  bool empty() const { return size_ == 0; }

  /// MBR of the whole tree (empty rect when empty).
  Rect bounds() const;

  /// Tree height (leaf = 1); 0 when empty.
  int Height() const;

  /// Collects ids of all points inside `r` (closed containment).
  void RangeQuery(const Rect& r, std::vector<uint32_t>* out) const;

  /// Collects ids of all points within `radius` of `center`.
  void CircleRangeQuery(const Point& center, double radius,
                        std::vector<uint32_t>* out) const;

  /// k nearest neighbors of `q` by Euclidean distance, nearest first.
  /// Ties broken by id. Returns fewer than k when the tree is smaller.
  std::vector<uint32_t> Knn(const Point& q, size_t k) const;

  /// Guided traversal. Descends into a child iff `mbr_pred(child_mbr)` is
  /// true; calls `point_fn(point, id)` for every point entry in visited
  /// leaves whose enclosing leaf was reached. Used to implement the paper's
  /// pruned candidate retrieval.
  template <typename MbrPred, typename PointFn>
  void Traverse(MbrPred&& mbr_pred, PointFn&& point_fn) const {
    if (root_ < 0) return;
    internal::TraversalStackLease lease;
    std::vector<int32_t>& stack = *lease;
    stack.push_back(root_);
    while (!stack.empty()) {
      const int32_t idx = stack.back();
      stack.pop_back();
      ++internal::tls_rtree_node_accesses;
      const Node& node = nodes_[idx];
      if (node.is_leaf) {
        for (size_t i = 0; i < node.points.size(); ++i) {
          point_fn(node.points[i], node.ids[i]);
        }
      } else {
        for (size_t i = 0; i < node.children.size(); ++i) {
          if (mbr_pred(node.child_mbrs[i])) stack.push_back(node.children[i]);
        }
      }
    }
  }

  // Low-level node access for best-first searches (index/gnn.h). Node
  // handles are opaque int32 indices; -1 means "no node".

  /// Root node handle; -1 when empty.
  int32_t root() const { return root_; }

  /// True when the handle refers to a leaf.
  bool IsLeafNode(int32_t node) const { return nodes_[node].is_leaf; }

  /// Visits (child_handle, child_mbr) pairs of an internal node.
  template <typename Fn>
  void ForEachChild(int32_t node, Fn&& fn) const {
    ++internal::tls_rtree_node_accesses;
    const Node& n = nodes_[node];
    MPN_DCHECK(!n.is_leaf);
    for (size_t i = 0; i < n.children.size(); ++i) {
      fn(n.children[i], n.child_mbrs[i]);
    }
  }

  /// Visits (point, id) pairs of a leaf node.
  template <typename Fn>
  void ForEachLeafEntry(int32_t node, Fn&& fn) const {
    ++internal::tls_rtree_node_accesses;
    const Node& n = nodes_[node];
    MPN_DCHECK(n.is_leaf);
    for (size_t i = 0; i < n.points.size(); ++i) fn(n.points[i], n.ids[i]);
  }

  /// Cumulative count of node visits across all queries issued by the
  /// calling thread (profiling aid for the buffering experiments,
  /// Fig. 16/19). Thread-local; see internal::tls_rtree_node_accesses.
  uint64_t node_accesses() const { return internal::tls_rtree_node_accesses; }

  /// Resets the calling thread's node-access counter.
  void ResetNodeAccesses() const { internal::tls_rtree_node_accesses = 0; }

  /// Validates structural invariants (MBR containment, fanout bounds,
  /// uniform leaf depth). Aborts on violation; used by tests.
  void CheckInvariants() const;

 private:
  friend class RTreeCursorAccess;

  struct Node {
    bool is_leaf = true;
    int32_t parent = -1;
    // Leaf payload.
    std::vector<Point> points;
    std::vector<uint32_t> ids;
    // Internal payload.
    std::vector<int32_t> children;
    std::vector<Rect> child_mbrs;

    size_t EntryCount() const {
      return is_leaf ? points.size() : children.size();
    }
  };

  Rect NodeMbr(int32_t idx) const;
  int32_t ChooseLeaf(const Point& p) const;
  void AdjustUpward(int32_t idx);
  void SplitNode(int32_t idx);
  // Quadratic-split partition of entry MBRs into two groups; returns group
  // assignment per entry (0/1).
  std::vector<int> QuadraticPartition(const std::vector<Rect>& entry_mbrs) const;
  void CheckNode(int32_t idx, int depth, int leaf_depth) const;
  int LeafDepth() const;

  RTreeOptions options_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t size_ = 0;
};

}  // namespace mpn
