#include "index/packed_rtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace mpn {

namespace {

// Queries keep per-child scratch (masks, squared distances) in fixed stack
// buffers of this many lanes; Build enforces the bound.
constexpr uint32_t kMaxFanout = 256;

// Hilbert order of the quantization grid: 2^16 cells per axis keeps every
// curve index in 32 bits and is far below double's 53-bit mantissa, so the
// quantization itself is exact arithmetic.
constexpr uint32_t kHilbertOrder = 16;

// (x, y) -> distance along the Hilbert curve of the given order (grid side
// 2^order). Standard top-bit-down walk: each step picks the quadrant and
// rotates/reflects the frame so the curve enters and exits on matching
// corners.
uint64_t HilbertD(uint32_t x, uint32_t y, uint32_t order) {
  uint64_t d = 0;
  for (uint32_t s = 1u << (order - 1); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) != 0 ? 1 : 0;
    const uint32_t ry = (y & s) != 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

// STR leaf order: sort by x, cut into ceil(sqrt(#leaves)) vertical slices,
// sort each slice by y — the exact slicing RTree::BulkLoad uses, with the
// same (other axis, id) tie-breaks, so the two builders agree on the point
// order they pack.
std::vector<uint32_t> StrOrder(const std::vector<Point>& points, size_t cap) {
  const size_t n = points.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (points[a].x != points[b].x) return points[a].x < points[b].x;
    if (points[a].y != points[b].y) return points[a].y < points[b].y;
    return a < b;
  });
  const size_t leaf_count = (n + cap - 1) / cap;
  const size_t slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  const size_t slice_size = (n + slices - 1) / slices;
  for (size_t s = 0; s < slices; ++s) {
    const size_t begin = s * slice_size;
    if (begin >= n) break;
    const size_t end = std::min(begin + slice_size, n);
    std::sort(order.begin() + begin, order.begin() + end,
              [&](uint32_t a, uint32_t b) {
                if (points[a].y != points[b].y) return points[a].y < points[b].y;
                if (points[a].x != points[b].x) return points[a].x < points[b].x;
                return a < b;
              });
  }
  return order;
}

// Hilbert leaf order: quantize each point onto the grid over the data
// bounds, sort by curve index, ties by id.
std::vector<uint32_t> HilbertOrder(const std::vector<Point>& points) {
  const size_t n = points.size();
  Rect bound = Rect::Empty();
  for (const Point& p : points) bound.ExpandToInclude(p);
  const double side = static_cast<double>((1u << kHilbertOrder) - 1);
  const double wx = bound.hi.x - bound.lo.x;
  const double wy = bound.hi.y - bound.lo.y;
  const double sx = wx > 0.0 ? side / wx : 0.0;
  const double sy = wy > 0.0 ? side / wy : 0.0;
  std::vector<uint64_t> key(n);
  for (size_t i = 0; i < n; ++i) {
    const double fx = (points[i].x - bound.lo.x) * sx;
    const double fy = (points[i].y - bound.lo.y) * sy;
    // Rounding may push fx a hair past `side`; clamp before truncation.
    const uint32_t gx = static_cast<uint32_t>(std::min(fx, side));
    const uint32_t gy = static_cast<uint32_t>(std::min(fy, side));
    key[i] = HilbertD(gx, gy, kHilbertOrder);
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (key[a] != key[b]) return key[a] < key[b];
    return a < b;
  });
  return order;
}

}  // namespace

const char* PackAlgorithmName(PackAlgorithm algo) {
  return algo == PackAlgorithm::kStr ? "str" : "hilbert";
}

void PackedRTree::PushNode(int32_t first, int32_t count, int32_t slot_begin,
                           int32_t slot_count, const Rect& mbr) {
  first_.push_back(first);
  count_.push_back(count);
  slot_begin_.push_back(slot_begin);
  slot_count_.push_back(slot_count);
  lo_x_.push_back(mbr.lo.x);
  lo_y_.push_back(mbr.lo.y);
  hi_x_.push_back(mbr.hi.x);
  hi_y_.push_back(mbr.hi.y);
}

PackedRTree PackedRTree::Build(const std::vector<Point>& points,
                               PackAlgorithm algo,
                               PackedRTreeOptions options) {
  MPN_ASSERT(options.fanout >= 2 && options.fanout <= kMaxFanout);
  PackedRTree t;
  t.options_ = options;
  t.algo_ = algo;
  const size_t n = points.size();
  if (n == 0) return t;
  const size_t cap = options.fanout;

  const std::vector<uint32_t> order =
      algo == PackAlgorithm::kStr ? StrOrder(points, cap)
                                  : HilbertOrder(points);

  t.px_.resize(n);
  t.py_.resize(n);
  t.ids_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    t.px_[i] = points[order[i]].x;
    t.py_[i] = points[order[i]].y;
    t.ids_[i] = order[i];
  }

  // One reservation for all levels.
  size_t total = 0;
  for (size_t m = (n + cap - 1) / cap;; m = (m + cap - 1) / cap) {
    total += m;
    if (m == 1) break;
  }
  t.first_.reserve(total);
  t.count_.reserve(total);
  t.slot_begin_.reserve(total);
  t.slot_count_.reserve(total);
  t.lo_x_.reserve(total);
  t.lo_y_.reserve(total);
  t.hi_x_.reserve(total);
  t.hi_y_.reserve(total);

  // Leaves: consecutive runs of `cap` slots, all full except the last.
  t.leaf_count_ = static_cast<int32_t>((n + cap - 1) / cap);
  for (int32_t leaf = 0; leaf < t.leaf_count_; ++leaf) {
    const size_t first = static_cast<size_t>(leaf) * cap;
    const size_t cnt = std::min(cap, n - first);
    Rect mbr = Rect::Empty();
    for (size_t i = first; i < first + cnt; ++i) {
      mbr.ExpandToInclude(Point{t.px_[i], t.py_[i]});
    }
    t.PushNode(static_cast<int32_t>(first), static_cast<int32_t>(cnt),
               static_cast<int32_t>(first), static_cast<int32_t>(cnt), mbr);
  }

  // Upper levels: parent k of a level adopts the next `cap` consecutive
  // children, keeping children and subtree slot ranges contiguous.
  size_t level_begin = 0;
  size_t level_end = static_cast<size_t>(t.leaf_count_);
  t.height_ = 1;
  while (level_end - level_begin > 1) {
    for (size_t i = level_begin; i < level_end; i += cap) {
      const size_t cnt = std::min(cap, level_end - i);
      Rect mbr = Rect::Empty();
      int32_t slots = 0;
      for (size_t c = i; c < i + cnt; ++c) {
        mbr.ExpandToInclude(t.NodeMbr(static_cast<int32_t>(c)));
        slots += t.slot_count_[c];
      }
      t.PushNode(static_cast<int32_t>(i), static_cast<int32_t>(cnt),
                 t.slot_begin_[i], slots, mbr);
    }
    level_begin = level_end;
    level_end = t.first_.size();
    ++t.height_;
  }
  t.root_ = static_cast<int32_t>(level_end) - 1;
  return t;
}

Rect PackedRTree::bounds() const {
  return root_ < 0 ? Rect::Empty() : NodeMbr(root_);
}

void PackedRTree::EmitSubtree(int32_t node, std::vector<uint32_t>* out) const {
  const uint32_t* begin = ids_.data() + slot_begin_[node];
  out->insert(out->end(), begin, begin + slot_count_[node]);
}

void PackedRTree::RangeQuery(const Rect& r, std::vector<uint32_t>* out) const {
  if (root_ < 0 || r.IsEmpty()) return;
  internal::TraversalStackLease lease;
  std::vector<int32_t>& stack = *lease;
  stack.push_back(root_);
  uint8_t inter[kMaxFanout];
  uint8_t cont[kMaxFanout];
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    ++internal::tls_rtree_node_accesses;
    const int32_t first = first_[idx];
    const int32_t cnt = count_[idx];
    if (idx < leaf_count_) {
      for (int32_t i = first; i < first + cnt; ++i) {
        if (px_[i] >= r.lo.x && px_[i] <= r.hi.x && py_[i] >= r.lo.y &&
            py_[i] <= r.hi.y) {
          out->push_back(ids_[i]);
        }
      }
    } else {
      const RectLanes lanes = ChildMbrLanes(idx);
      RectIntersectsLanes(lanes, r, inter);
      RectContainedLanes(lanes, r, cont);
      for (int32_t i = 0; i < cnt; ++i) {
        // Fully contained child: append its whole contiguous slot range.
        // Exact coordinate comparisons only, so the emitted set is exactly
        // what descending would have produced.
        if (cont[i] != 0) {
          EmitSubtree(first + i, out);
        } else if (inter[i] != 0) {
          stack.push_back(first + i);
        }
      }
    }
  }
}

void PackedRTree::CircleRangeQuery(const Point& center, double radius,
                                   std::vector<uint32_t>* out) const {
  if (root_ < 0) return;
  const double r2 = radius * radius;
  internal::TraversalStackLease lease;
  std::vector<int32_t>& stack = *lease;
  stack.push_back(root_);
  double d2[kMaxFanout];
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    ++internal::tls_rtree_node_accesses;
    const int32_t first = first_[idx];
    const int32_t cnt = count_[idx];
    if (idx < leaf_count_) {
      // Same per-point predicate (and the same IEEE expression) as the
      // dynamic tree's Dist2(p, center) <= r2, batched over the SoA lanes.
      PointDist2Lanes(px_.data() + first, py_.data() + first,
                      static_cast<size_t>(cnt), center, d2);
      for (int32_t i = 0; i < cnt; ++i) {
        if (d2[i] <= r2) out->push_back(ids_[first + i]);
      }
    } else {
      // MinDist2 pruning, same bound as the dynamic traversal. No
      // MaxDist2 bulk-emit here: its rounding could disagree with the
      // per-point test at the circle boundary, breaking set identity.
      RectMinDist2Lanes(ChildMbrLanes(idx), center, d2);
      for (int32_t i = 0; i < cnt; ++i) {
        if (d2[i] <= r2) stack.push_back(first + i);
      }
    }
  }
}

std::vector<uint32_t> PackedRTree::Knn(const Point& q, size_t k) const {
  std::vector<uint32_t> result;
  if (root_ < 0 || k == 0) return result;
  // Best-first search identical to RTree::Knn: the (key, node-before-point,
  // id) heap order plus the argument below make the output independent of
  // which tree shape produced the entries — every node with key <= the next
  // popped point's key is expanded first, so point pops happen in global
  // (distance, id) order.
  struct Entry {
    double key;
    bool is_point;
    int32_t node;
    uint32_t id;
    Point p;
    bool operator>(const Entry& o) const {
      if (key != o.key) return key > o.key;
      if (is_point != o.is_point) return is_point && !o.is_point;
      return id > o.id;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.push({0.0, false, root_, 0, Point{}});
  while (!heap.empty() && result.size() < k) {
    const Entry e = heap.top();
    heap.pop();
    if (e.is_point) {
      result.push_back(e.id);
    } else if (IsLeafNode(e.node)) {
      ForEachLeafEntry(e.node, [&](const Point& p, uint32_t id) {
        heap.push({Dist(q, p), true, -1, id, p});
      });
    } else {
      ForEachChild(e.node, [&](int32_t child, const Rect& mbr) {
        heap.push({mbr.MinDist(q), false, child, 0, Point{}});
      });
    }
  }
  return result;
}

void PackedRTree::CheckInvariants() const {
  const size_t nodes = first_.size();
  MPN_ASSERT(count_.size() == nodes && slot_begin_.size() == nodes &&
             slot_count_.size() == nodes && lo_x_.size() == nodes &&
             lo_y_.size() == nodes && hi_x_.size() == nodes &&
             hi_y_.size() == nodes);
  MPN_ASSERT(px_.size() == py_.size() && px_.size() == ids_.size());
  const size_t n = px_.size();
  if (root_ < 0) {
    MPN_ASSERT(n == 0 && nodes == 0 && leaf_count_ == 0 && height_ == 0);
    return;
  }
  MPN_ASSERT(root_ == static_cast<int32_t>(nodes) - 1);
  const size_t cap = options_.fanout;
  MPN_ASSERT(static_cast<size_t>(leaf_count_) == (n + cap - 1) / cap);

  for (int32_t idx = 0; idx < static_cast<int32_t>(nodes); ++idx) {
    const int32_t first = first_[idx];
    const int32_t cnt = count_[idx];
    MPN_ASSERT(cnt >= 1 && static_cast<size_t>(cnt) <= cap);
    Rect mbr = Rect::Empty();
    if (idx < leaf_count_) {
      // Leaves own consecutive full slot runs (last leaf may be short).
      MPN_ASSERT(first == static_cast<int32_t>(static_cast<size_t>(idx) * cap));
      MPN_ASSERT(idx == leaf_count_ - 1 || static_cast<size_t>(cnt) == cap);
      MPN_ASSERT(slot_begin_[idx] == first && slot_count_[idx] == cnt);
      for (int32_t i = first; i < first + cnt; ++i) {
        mbr.ExpandToInclude(Point{px_[i], py_[i]});
      }
    } else {
      // Children precede the parent, are contiguous, and tile the parent's
      // slot span exactly.
      MPN_ASSERT(first >= 0 && first + cnt <= idx + 1);
      MPN_ASSERT(first + cnt - 1 < idx);
      MPN_ASSERT(slot_begin_[idx] == slot_begin_[first]);
      int32_t slots = 0;
      for (int32_t c = first; c < first + cnt; ++c) {
        MPN_ASSERT(c == first ||
                   slot_begin_[c] == slot_begin_[c - 1] + slot_count_[c - 1]);
        slots += slot_count_[c];
        mbr.ExpandToInclude(NodeMbr(c));
      }
      MPN_ASSERT(slots == slot_count_[idx]);
    }
    // Stored MBRs are exact (not merely containing).
    MPN_ASSERT(mbr.lo.x == lo_x_[idx] && mbr.lo.y == lo_y_[idx] &&
               mbr.hi.x == hi_x_[idx] && mbr.hi.y == hi_y_[idx]);
  }
  MPN_ASSERT(slot_begin_[root_] == 0 &&
             static_cast<size_t>(slot_count_[root_]) == n);

  // Every input id appears exactly once, and the traversal sees size() points.
  std::vector<uint8_t> seen(n, 0);
  size_t counted = 0;
  Traverse([](const Rect&) { return true; },
           [&](const Point&, uint32_t id) {
             MPN_ASSERT(id < n && seen[id] == 0);
             seen[id] = 1;
             ++counted;
           });
  MPN_ASSERT(counted == n);
}

}  // namespace mpn
