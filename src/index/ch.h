// Contraction Hierarchies shortest-path index (Geisberger et al., WEA 2008).
//
// The road-network MPN extension prices every safe-region and meeting-point
// decision in shortest-path distance, and a rendezvous workload re-queries
// the same static graph thousands of times. A CH index pays one
// preprocessing pass (contract nodes in importance order, inserting
// shortcuts that preserve all shortest-path distances) and then answers
// point-to-point queries with two tiny *upward* Dijkstra searches instead
// of one over the whole graph.
//
// Three query families:
//  * Distance / Path — bidirectional upward search with shortcut unpacking.
//  * MakeTargetSet + SeededDistances — bucket-based many-to-many (Knopp et
//    al., ALENEX 2007): the backward upward searches from a fixed target
//    set (e.g. all POI edge endpoints) are run once and stored; each source
//    then needs a single forward upward search plus bucket scans. This is
//    the shape of the netmpn group->POI aggregate query.
//
// Determinism contract: queries return distances that are **bit-identical**
// to a textbook Dijkstra left-fold over the original edge weights. The
// search phase only *selects* a shortest path (shortcut weights are
// pre-added sums, whose grouping may differ from the fold by ulps); the
// reported distance is then re-accumulated edge-by-edge along the unpacked
// path, in path order — exactly the additions Dijkstra performs. On graphs
// whose distinct shortest paths differ by more than floating-point noise
// (any graph with continuous random weights), the selected path is the
// Dijkstra path and the refold reproduces its distance bit-for-bit; the
// property tests in tests/ch_test.cc assert this across randomized graphs.
// Preprocessing is deterministic for a fixed input regardless of the
// thread count used for the initial-priority pass (per-node priorities are
// pure functions; the contraction loop is sequential).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpn {

class ThreadPool;

/// Contraction Hierarchies index over a static weighted graph.
class CHIndex {
 public:
  /// One input arc. With Options::directed == false each edge is expanded
  /// into both arcs internally.
  struct InputEdge {
    uint32_t from;
    uint32_t to;
    double weight;  ///< must be >= 0 and finite
  };

  struct Options {
    bool directed = false;
    /// Max settled nodes per witness search. Smaller is faster to build but
    /// inserts more (still correct) shortcuts.
    size_t witness_settle_limit = 128;
    /// Optional pool for the initial-priority pass (the only parallel
    /// build phase; results are identical with or without it).
    ThreadPool* pool = nullptr;
  };

  /// Seed of a forward search: a start node with an initial distance (for
  /// edge positions: an endpoint with its offset).
  struct Seed {
    uint32_t node;
    double dist;
  };

  /// Precomputed backward upward searches + node buckets for a fixed set
  /// of target nodes (duplicates allowed). Build once per POI set, reuse
  /// for every group query. Memory is O(targets x upward-search size plus
  /// the unpacked-suffix cache, see below).
  ///
  /// Refold cache: every entry stores the *unpacked original arcs* of its
  /// parent shortcut as a slice into a per-target arc pool, precomputed at
  /// build time. A query's refold then walks the entry chain copying
  /// slices instead of recursively expanding shortcuts — the expansion
  /// that used to dominate repeated SeededDistances calls against the same
  /// POI target set. The arcs (and therefore the left-fold additions) are
  /// identical to the recursive expansion, so distances stay bit-identical
  /// to the Dijkstra oracle.
  class TargetSet {
   public:
    size_t TargetCount() const { return per_target_.size(); }

   private:
    friend class CHIndex;
    static constexpr uint32_t kNoEntry = 0xFFFFFFFFu;
    /// One settled node of a backward search, with its parent chain
    /// (entry 0 is the target itself).
    struct Entry {
      uint32_t node;
      uint32_t parent;  ///< entry index toward the target, or kNoEntry
      uint32_t arc;     ///< arc (node -> parent node) used, or kNoArc
      double dist;      ///< backward search distance (selection only)
      uint32_t unpack_off;  ///< slice of the unpacked weights of `arc`
      uint32_t unpack_len;  ///< (into the target's weight pool)
    };
    struct BucketItem {
      uint32_t target;
      uint32_t entry;
      double dist;
    };
    std::vector<std::vector<Entry>> per_target_;
    /// Per-target pool of unpacked original-arc weights, in path order
    /// (entries slice into it).
    std::vector<std::vector<double>> per_target_weights_;
    // Bucket CSR keyed by settled node id (sorted, unique).
    std::vector<uint32_t> bucket_node_;
    std::vector<uint32_t> bucket_off_;
    std::vector<BucketItem> bucket_items_;
  };

  CHIndex() = default;

  /// Builds the hierarchy: lazy-update edge-difference node ordering with
  /// bounded witness searches. O(n log n)-ish for road-like graphs.
  static CHIndex Build(size_t node_count, const std::vector<InputEdge>& edges,
                       const Options& options);
  static CHIndex Build(size_t node_count, const std::vector<InputEdge>& edges);

  size_t NodeCount() const { return rank_.size(); }
  size_t OriginalArcCount() const { return original_arcs_; }
  size_t ShortcutCount() const { return arcs_.size() - original_arcs_; }
  /// Contraction order of `node` (0 = contracted first / least important).
  uint32_t Rank(uint32_t node) const { return rank_[node]; }

  /// Exact shortest-path distance, +infinity when unreachable. Refolded
  /// along the unpacked path (see the determinism contract above).
  double Distance(uint32_t src, uint32_t dst) const;

  /// Seeded point-to-point: min over source/target seed pairs of
  /// fold(src.dist; path) + dst.dist — bit-identical to a Dijkstra seeded
  /// with `sources` and read at the `targets` with their offsets added
  /// (the shape of an edge-position to edge-position query). One
  /// mu-terminated bidirectional search, no per-query allocation.
  double SeededDistance(const std::vector<Seed>& sources,
                        const std::vector<Seed>& targets) const;

  /// Shortest path as an inclusive node sequence ({src} when src == dst,
  /// empty when unreachable).
  std::vector<uint32_t> Path(uint32_t src, uint32_t dst) const;

  /// Precomputes the backward searches and buckets for `targets`.
  /// With `pool`, targets are processed in parallel (identical result).
  TargetSet MakeTargetSet(const std::vector<uint32_t>& targets,
                          ThreadPool* pool = nullptr) const;

  /// out[j] = min over seeds of fold(seed.dist; shortest path seed.node ->
  /// target j) — bit-identical to one Dijkstra seeded with all of `seeds`
  /// (+infinity when unreachable). One forward upward search total.
  void SeededDistances(const std::vector<Seed>& seeds,
                       const TargetSet& targets,
                       std::vector<double>* out) const;

 private:
  static constexpr uint32_t kNoArc = 0xFFFFFFFFu;

  /// An arc of the hierarchy. Shortcuts carry their two constituent arcs
  /// for unpacking; original arcs have left == right == kNoArc.
  struct Arc {
    uint32_t from;
    uint32_t to;
    double weight;
    uint32_t left;
    uint32_t right;
  };

  /// CSR adjacency over upward arcs. For the forward graph, entry.node is
  /// the arc head; for the backward graph, the arc tail.
  struct Csr {
    struct Entry {
      uint32_t node;
      double weight;
      uint32_t arc;
    };
    std::vector<uint32_t> off;
    std::vector<Entry> entries;
  };

  struct SearchScratch;  // stamped Dijkstra state, thread_local in ch.cc

  void BuildCsr();
  /// Runs an upward Dijkstra over `graph` from `seeds` into `s`, recording
  /// parent arcs and settle order. `stall_graph` is the opposite upward
  /// CSR: a node whose label is dominated through a higher-ranked settled
  /// neighbor is stalled (not settled, not expanded) — such nodes can never
  /// be the meeting point of a shortest up-down path (stall-on-demand,
  /// Geisberger et al. §5.1).
  static void UpwardSearch(const Csr& graph, const Csr& stall_graph,
                           const Seed* seeds, size_t seed_count,
                           SearchScratch* s);
  /// Point-to-point context threaded through ProcessTop: the opposite
  /// search (for meeting-value candidates at relax time), the best meeting
  /// value found (mu, the termination bound and push-pruning bound), and
  /// its meeting node.
  struct P2P {
    const SearchScratch* other;
    double mu;
    uint32_t meet;
  };

  /// Pops and processes one heap entry of an upward search: stale-skip,
  /// stall check, settle + relax. Returns the settled node, or the no-node
  /// sentinel when the entry was stale or stalled. With `p2p`, every label
  /// write is evaluated as a meeting candidate and pushes at or above mu
  /// are pruned.
  static uint32_t ProcessTop(const Csr& graph, const Csr& stall_graph,
                             SearchScratch* s, P2P* p2p = nullptr);
  /// Appends the original-arc expansion of `arc` (left-to-right) to `out`.
  void AppendOriginalArcs(uint32_t arc, std::vector<uint32_t>* out) const;
  /// Appends the unpacked arcs of the forward chain root -> `node` and
  /// returns the chain root (a seed node).
  uint32_t CollectForwardArcs(const SearchScratch& fwd, uint32_t node,
                              std::vector<uint32_t>* arcs) const;
  /// Appends the unpacked arcs of the backward chain `node` -> search root
  /// and returns the chain root (a seed node).
  uint32_t CollectBackwardArcs(const SearchScratch& bwd, uint32_t node,
                               std::vector<uint32_t>* arcs) const;
  /// Continues Dijkstra's left-fold from `init` along the cached unpacked
  /// suffix of target `j`'s entry chain (entry -> target) — the same arc
  /// sequence, and therefore the same additions, as unpacking the chain's
  /// shortcuts recursively.
  static double FoldTargetSuffix(const TargetSet& targets, uint32_t j,
                                 uint32_t entry, double init);
  /// Left-fold of arc weights starting at `init` — Dijkstra's accumulation.
  double FoldArcs(double init, const std::vector<uint32_t>& arcs) const;
  /// Shared p2p search (multi-seed, internal ids): returns the meeting
  /// node (or the no-node sentinel) after filling the thread-local
  /// forward/backward scratches.
  uint32_t RunP2P(const Seed* src_seeds, size_t src_count,
                  const Seed* dst_seeds, size_t dst_count) const;
  /// Per-thread query scratches (safe concurrent const queries).
  static SearchScratch& TlsFwd();
  static SearchScratch& TlsBwd();

  std::vector<uint32_t> rank_;  ///< by original node id
  /// Queries run in an internal id space renumbered by descending rank
  /// (internal 0 = contracted last = most important): the top of the
  /// hierarchy — where every search spends most of its time — occupies a
  /// contiguous, cache-dense prefix of the dist/stamp arrays and the CSRs.
  std::vector<uint32_t> perm_;  ///< original -> internal
  std::vector<uint32_t> inv_;   ///< internal -> original
  std::vector<Arc> arcs_;       ///< endpoints in internal ids after Build
  size_t original_arcs_ = 0;
  bool directed_ = false;
  Csr up_fwd_;  ///< arcs from -> to with Rank(to) > Rank(from), keyed by from
  Csr up_bwd_;  ///< arcs from -> to with Rank(from) > Rank(to), keyed by to

  /// Stall graph of a forward (or backward) search: for undirected graphs
  /// every arc has an equal-weight mirror, so the search's own CSR doubles
  /// as its stall graph (the stall scan then re-reads rows that are already
  /// cache-hot); directed graphs need the opposite CSR.
  const Csr& FwdStallGraph() const { return directed_ ? up_bwd_ : up_fwd_; }
  const Csr& BwdStallGraph() const { return directed_ ? up_fwd_ : up_bwd_; }
};

inline CHIndex CHIndex::Build(size_t node_count,
                              const std::vector<InputEdge>& edges) {
  return Build(node_count, edges, Options());
}

}  // namespace mpn
