#include "index/gnn.h"

#include <algorithm>

#include "util/macros.h"

namespace mpn {

const char* ObjectiveName(Objective obj) {
  return obj == Objective::kMax ? "MAX" : "SUM";
}

double AggDist(const Point& p, const std::vector<Point>& users,
               Objective obj) {
  MPN_DCHECK(!users.empty());
  if (obj == Objective::kMax) {
    double d = 0.0;
    for (const Point& u : users) d = std::max(d, Dist(p, u));
    return d;
  }
  double d = 0.0;
  for (const Point& u : users) d += Dist(p, u);
  return d;
}

double AggMinDist(const Rect& mbr, const std::vector<Point>& users,
                  Objective obj) {
  MPN_DCHECK(!users.empty());
  if (obj == Objective::kMax) {
    double d = 0.0;
    for (const Point& u : users) d = std::max(d, mbr.MinDist(u));
    return d;
  }
  double d = 0.0;
  for (const Point& u : users) d += mbr.MinDist(u);
  return d;
}

GnnCursor::GnnCursor(SpatialIndex tree, std::vector<Point> users,
                     Objective obj)
    : tree_(tree), users_(std::move(users)), obj_(obj) {
  MPN_ASSERT(tree_.valid());
  MPN_ASSERT(!users_.empty());
  if (tree_.root() >= 0) {
    heap_.push({0.0, false, tree_.root(), 0, Point{}});
  }
}

std::optional<GnnCursor::Item> GnnCursor::Next() {
  while (!heap_.empty()) {
    const Entry e = heap_.top();
    heap_.pop();
    if (e.is_point) return Item{e.id, e.p, e.key};
    if (tree_.IsLeafNode(e.node)) {
      tree_.ForEachLeafEntry(e.node, [&](const Point& p, uint32_t id) {
        heap_.push({AggDist(p, users_, obj_), true, -1, id, p});
      });
    } else {
      tree_.ForEachChild(e.node, [&](int32_t child, const Rect& mbr) {
        heap_.push({AggMinDist(mbr, users_, obj_), false, child, 0, Point{}});
      });
    }
  }
  return std::nullopt;
}

std::vector<GnnCursor::Item> FindGnn(SpatialIndex tree,
                                     const std::vector<Point>& users,
                                     Objective obj, size_t k) {
  GnnCursor cursor(tree, users, obj);
  std::vector<GnnCursor::Item> out;
  out.reserve(k);
  while (out.size() < k) {
    auto item = cursor.Next();
    if (!item) break;
    out.push_back(*item);
  }
  return out;
}

std::vector<GnnCursor::Item> FindGnnBruteForce(
    const std::vector<Point>& pois, const std::vector<Point>& users,
    Objective obj, size_t k) {
  std::vector<GnnCursor::Item> all;
  all.reserve(pois.size());
  for (size_t i = 0; i < pois.size(); ++i) {
    all.push_back({static_cast<uint32_t>(i), pois[i],
                   AggDist(pois[i], users, obj)});
  }
  std::sort(all.begin(), all.end(),
            [](const GnnCursor::Item& a, const GnnCursor::Item& b) {
              if (a.agg != b.agg) return a.agg < b.agg;
              return a.id < b.id;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace mpn
