// Uniform read-only view over the two spatial index backends.
//
// SpatialIndex is a non-owning tagged pointer: every query-layer consumer
// (index/gnn, mpn/candidates, tile/circle MSR, sim, engine, cluster) takes
// a SpatialIndex where it used to take `const RTree*`/`const RTree&`, and
// the implicit converting constructors keep those call sites
// source-compatible — passing `&tree` or `tree` works for either backend.
// Dispatch is one pointer test per call; the traversals and cursors are
// templates, so each backend's loop still inlines whole.
//
// PoiIndex owns one backend chosen by IndexKind — the config seam the
// engine and bench layers use to select the index the same way KernelKind
// selects verification kernels (mpn/tile_msr.h). Query results are
// bit-identical across kinds (see index/packed_rtree.h for the contract),
// so the selection is invisible to digests.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "util/macros.h"

namespace mpn {

/// Which spatial index backs the POI set.
enum class IndexKind {
  kDynamic,        ///< dynamic RTree (Guttman inserts / STR bulk load)
  kPackedStr,      ///< PackedRTree, STR leaf order
  kPackedHilbert,  ///< PackedRTree, Hilbert leaf order
};

/// Human-readable kind name ("dynamic" / "packed_str" / "packed_hilbert").
inline const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kDynamic: return "dynamic";
    case IndexKind::kPackedStr: return "packed_str";
    case IndexKind::kPackedHilbert: return "packed_hilbert";
  }
  return "unknown";
}

/// Non-owning view dispatching the shared query interface to one backend.
/// Copyable; the referenced tree must outlive the view.
class SpatialIndex {
 public:
  /// Invalid view (valid() == false); queries on it are programming errors.
  SpatialIndex() = default;

  // Implicit by design — see the header comment.
  SpatialIndex(const RTree* tree) : dyn_(tree) {}             // NOLINT
  SpatialIndex(const RTree& tree) : dyn_(&tree) {}            // NOLINT
  SpatialIndex(const PackedRTree* tree) : packed_(tree) {}    // NOLINT
  SpatialIndex(const PackedRTree& tree) : packed_(&tree) {}   // NOLINT

  bool valid() const { return dyn_ != nullptr || packed_ != nullptr; }

  /// The dynamic backend, or null when packed (and vice versa).
  const RTree* dynamic_tree() const { return dyn_; }
  const PackedRTree* packed_tree() const { return packed_; }

  size_t size() const { return packed_ ? packed_->size() : dyn_->size(); }
  bool empty() const { return packed_ ? packed_->empty() : dyn_->empty(); }
  Rect bounds() const { return packed_ ? packed_->bounds() : dyn_->bounds(); }
  int Height() const { return packed_ ? packed_->Height() : dyn_->Height(); }

  void RangeQuery(const Rect& r, std::vector<uint32_t>* out) const {
    packed_ ? packed_->RangeQuery(r, out) : dyn_->RangeQuery(r, out);
  }

  void CircleRangeQuery(const Point& center, double radius,
                        std::vector<uint32_t>* out) const {
    packed_ ? packed_->CircleRangeQuery(center, radius, out)
            : dyn_->CircleRangeQuery(center, radius, out);
  }

  std::vector<uint32_t> Knn(const Point& q, size_t k) const {
    return packed_ ? packed_->Knn(q, k) : dyn_->Knn(q, k);
  }

  template <typename MbrPred, typename PointFn>
  void Traverse(MbrPred&& mbr_pred, PointFn&& point_fn) const {
    if (packed_ != nullptr) {
      packed_->Traverse(std::forward<MbrPred>(mbr_pred),
                        std::forward<PointFn>(point_fn));
    } else {
      dyn_->Traverse(std::forward<MbrPred>(mbr_pred),
                     std::forward<PointFn>(point_fn));
    }
  }

  int32_t root() const { return packed_ ? packed_->root() : dyn_->root(); }

  bool IsLeafNode(int32_t node) const {
    return packed_ ? packed_->IsLeafNode(node) : dyn_->IsLeafNode(node);
  }

  template <typename Fn>
  void ForEachChild(int32_t node, Fn&& fn) const {
    if (packed_ != nullptr) {
      packed_->ForEachChild(node, std::forward<Fn>(fn));
    } else {
      dyn_->ForEachChild(node, std::forward<Fn>(fn));
    }
  }

  template <typename Fn>
  void ForEachLeafEntry(int32_t node, Fn&& fn) const {
    if (packed_ != nullptr) {
      packed_->ForEachLeafEntry(node, std::forward<Fn>(fn));
    } else {
      dyn_->ForEachLeafEntry(node, std::forward<Fn>(fn));
    }
  }

  /// Per-thread node-visit counter (shared across backends; see
  /// internal::tls_rtree_node_accesses).
  uint64_t node_accesses() const {
    return internal::tls_rtree_node_accesses;
  }
  void ResetNodeAccesses() const { internal::tls_rtree_node_accesses = 0; }

 private:
  const RTree* dyn_ = nullptr;
  const PackedRTree* packed_ = nullptr;
};

/// Owning POI index with config-driven backend selection. Movable; a view
/// taken from it stays valid across moves of the *container* only until
/// the backing tree is destroyed, so take views after the PoiIndex reached
/// its final home.
class PoiIndex {
 public:
  PoiIndex() = default;

  /// Builds the index of the requested kind over the points; ids are
  /// 0..points.size()-1. kDynamic uses RTree::BulkLoad (the seed path).
  static PoiIndex Build(const std::vector<Point>& points, IndexKind kind) {
    PoiIndex idx;
    idx.kind_ = kind;
    switch (kind) {
      case IndexKind::kDynamic:
        idx.dyn_ = RTree::BulkLoad(points);
        break;
      case IndexKind::kPackedStr:
        idx.packed_ = PackedRTree::Build(points, PackAlgorithm::kStr);
        break;
      case IndexKind::kPackedHilbert:
        idx.packed_ = PackedRTree::Build(points, PackAlgorithm::kHilbert);
        break;
    }
    return idx;
  }

  IndexKind kind() const { return kind_; }

  SpatialIndex view() const {
    return kind_ == IndexKind::kDynamic ? SpatialIndex(&dyn_)
                                        : SpatialIndex(&packed_);
  }

  // A PoiIndex converts wherever a SpatialIndex is expected.
  operator SpatialIndex() const { return view(); }  // NOLINT

 private:
  IndexKind kind_ = IndexKind::kDynamic;
  RTree dyn_;
  PackedRTree packed_;
};

}  // namespace mpn
