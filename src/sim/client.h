// Client-side state of the Fig. 3 protocol.
//
// A client replays its trajectory, checks containment in its current safe
// region every timestamp, and maintains the motion statistics (heading and
// learned angular deviation theta) that the server's directed ordering
// consumes (Section 5.2).
#pragma once

#include <deque>
#include <vector>

#include "mpn/safe_region.h"
#include "mpn/tile_msr.h"
#include "traj/trajectory.h"

namespace mpn {

/// One moving user.
class MpnClient {
 public:
  struct Options {
    /// Recent headings used to learn theta.
    int heading_window = 8;
    /// Clamp bounds for the learned deviation (radians).
    double theta_min = 0.26179938779914941;  // 15 degrees
    double theta_max = 3.14159265358979312;  // 180 degrees
  };

  /// The trajectory must outlive the client (default options).
  explicit MpnClient(const Trajectory* trajectory)
      : MpnClient(trajectory, Options()) {}

  /// The trajectory must outlive the client.
  MpnClient(const Trajectory* trajectory, Options options);

  /// Moves to timestamp `t` and updates motion statistics.
  void Advance(size_t t);

  /// Current location.
  const Point& location() const { return location_; }

  /// True when the client holds a region and is inside it.
  bool InsideRegion() const {
    return has_region_ && region_.Contains(location_);
  }

  /// True after the first SetRegion call.
  bool has_region() const { return has_region_; }

  /// Installs a freshly received safe region.
  void SetRegion(SafeRegion region) {
    region_ = std::move(region);
    has_region_ = true;
  }

  const SafeRegion& region() const { return region_; }

  /// Motion hint shipped with location reports: current heading and the
  /// maximum deviation observed over the recent window, clamped to
  /// [theta_min, theta_max]. has_heading is false until the client has
  /// moved.
  MotionHint Hint() const;

  /// Plain-data snapshot of the client's evolving state (everything except
  /// the trajectory pointer and options, which the owner re-supplies on
  /// rehydration). Wire encoding lives in engine/session_codec.h so the sim
  /// layer stays free of IPC dependencies.
  struct State {
    Point location{0, 0};
    bool moved = false;
    double heading = 0.0;
    std::vector<double> recent_headings;
    bool has_region = false;
    SafeRegion region;
  };

  /// Captures the current state, bit-exactly restorable via ImportState.
  State ExportState() const;

  /// Restores a captured state into a freshly constructed client (same
  /// trajectory, same options).
  void ImportState(const State& state);

  /// Deterministic resident-byte estimate: a pure function of the logical
  /// state (never of container capacities), so the engine's memory
  /// accounting is identical across runs and machines.
  size_t StateBytesEstimate() const;

 private:
  const Trajectory* trajectory_;
  Options options_;
  Point location_;
  SafeRegion region_;
  bool has_region_ = false;
  bool moved_ = false;
  double heading_ = 0.0;
  std::deque<double> recent_headings_;
};

}  // namespace mpn
