// Continuous-query simulation of one user group (Fig. 3 protocol).
//
// At every timestamp all clients advance along their trajectories. When a
// client leaves its safe region, it reports its location to the server
// (step 1); the server probes the remaining clients (step 2), recomputes
// the meeting point and per-user safe regions, and ships them back
// (step 3). Tile regions travel through the lossless codec so the client's
// view is exactly what the wire carries. The metrics are the three the
// paper reports: update frequency, communication cost (packets) and server
// running time, plus per-algorithm counters.
//
// Since the engine layer landed (src/engine), the per-timestamp state
// machine lives in engine/group_session.h; Simulator and RunGroups are thin
// fronts that drive a single-threaded Engine so the historical single-group
// API (and every test built on it) keeps working unchanged.
#pragma once

#include <vector>

#include "net/message.h"
#include "sim/client.h"
#include "sim/server.h"
#include "traj/trajectory.h"

namespace mpn {

/// Aggregated results of one simulation run.
struct SimMetrics {
  size_t timestamps = 0;       ///< ticks simulated
  size_t updates = 0;          ///< safe-region violations (step-1 triggers)
  size_t result_changes = 0;   ///< times the optimal meeting point changed
  CommAccounting comm;         ///< protocol traffic
  double server_seconds = 0.0; ///< total safe-region computation time
  MsrStats msr;                ///< accumulated algorithm counters

  /// Updates per timestamp (the paper's "update frequency").
  double UpdateFrequency() const {
    return timestamps == 0
               ? 0.0
               : static_cast<double>(updates) / static_cast<double>(timestamps);
  }

  /// Average safe-region computation time per update, in milliseconds.
  double AvgComputeMsPerUpdate() const {
    return updates == 0 ? 0.0 : server_seconds * 1e3 /
                                    static_cast<double>(updates);
  }

  /// Merges another run (for averaging across groups).
  void Merge(const SimMetrics& other);
};

/// Simulation options.
struct SimOptions {
  ServerConfig server;
  /// Simulate at most this many timestamps (0 = full trajectory length).
  size_t max_timestamps = 0;
  /// Verify after every recomputation that the reported meeting point is
  /// the true optimum for the current locations (integration-test mode;
  /// O(n*m) per update).
  bool check_correctness = false;
};

/// Runs the protocol for one group over its trajectories (a thin Engine
/// with one session and one thread).
class Simulator {
 public:
  /// All referenced data must outlive the simulator. All trajectories must
  /// be at least as long as the simulated horizon.
  Simulator(const std::vector<Point>* pois, SpatialIndex tree,
            std::vector<const Trajectory*> group, const SimOptions& options);

  /// Runs to completion and returns the metrics.
  SimMetrics Run();

 private:
  const std::vector<Point>* pois_;
  SpatialIndex tree_;
  std::vector<const Trajectory*> group_;
  SimOptions options_;
};

/// Convenience: runs every group and returns the group-averaged metrics
/// (the paper reports averages over 10 groups).
SimMetrics RunGroups(const std::vector<Point>& pois, SpatialIndex tree,
                     const std::vector<std::vector<const Trajectory*>>& groups,
                     const SimOptions& options);

}  // namespace mpn
