#include "sim/simulator.h"

#include "engine/engine.h"

namespace mpn {

void SimMetrics::Merge(const SimMetrics& other) {
  timestamps += other.timestamps;
  updates += other.updates;
  result_changes += other.result_changes;
  comm.Merge(other.comm);
  server_seconds += other.server_seconds;
  msr.tiles_tried += other.msr.tiles_tried;
  msr.tiles_added += other.msr.tiles_added;
  msr.divide_calls += other.msr.divide_calls;
  msr.verify.calls += other.msr.verify.calls;
  msr.verify.accepted += other.msr.verify.accepted;
  msr.verify.tile_groups += other.msr.verify.tile_groups;
  msr.verify.focal_evals += other.msr.verify.focal_evals;
  msr.verify.memo_hits += other.msr.verify.memo_hits;
  msr.candidates.retrievals += other.msr.candidates.retrievals;
  msr.candidates.candidates_total += other.msr.candidates.candidates_total;
  msr.candidates.rejected_by_buffer +=
      other.msr.candidates.rejected_by_buffer;
  msr.rtree_node_accesses += other.msr.rtree_node_accesses;
}

Simulator::Simulator(const std::vector<Point>* pois, SpatialIndex tree,
                     std::vector<const Trajectory*> group,
                     const SimOptions& options)
    : pois_(pois), tree_(tree), group_(std::move(group)), options_(options) {}

SimMetrics Simulator::Run() {
  EngineOptions opt;
  opt.threads = 1;
  opt.sim = options_;
  Engine engine(pois_, tree_, opt);
  engine.AdmitSession(group_);
  engine.Run();
  return engine.session_metrics(0);
}

SimMetrics RunGroups(const std::vector<Point>& pois, SpatialIndex tree,
                     const std::vector<std::vector<const Trajectory*>>& groups,
                     const SimOptions& options) {
  EngineOptions opt;
  opt.threads = 1;
  opt.sim = options;
  Engine engine(&pois, tree, opt);
  for (const auto& group : groups) engine.AdmitSession(group);
  engine.Run();
  return engine.TotalMetrics();
}

}  // namespace mpn
