// Server-side safe-region computation dispatch (Fig. 3, step 3).
#pragma once

#include <cstdint>
#include <vector>

#include "index/gnn.h"
#include "mpn/tile_msr.h"
#include "util/timer.h"

namespace mpn {

/// The method configurations evaluated in Section 7.
enum class Method {
  kCircle,        ///< Circle-MSR (Section 4)
  kTile,          ///< Tile-MSR, undirected ordering, GT-Verify + pruning
  kTileD,         ///< Tile-MSR, directed ordering
  kTileDBuffered  ///< Tile-D with the Section-5.4 buffering (Tile-D-b)
};

/// Method name as used in the paper's plots.
const char* MethodName(Method method);

/// Server configuration.
struct ServerConfig {
  Method method = Method::kTileD;
  Objective objective = Objective::kMax;
  int alpha = 30;      ///< Table 2 default
  int split_level = 2; ///< Table 2 default
  int buffer_b = 100;  ///< Section 5.4 recommendation
  /// Per-user verification fan-out; the engine installs its thread pool
  /// here (see engine/engine.h). Null executor = sequential.
  VerifyFanout verify_fanout;
  /// Candidate-scan kernel (bit-identical either way; kScalar is the
  /// reference path for differential testing — see mpn/tile_msr.h).
  KernelKind kernel = KernelKind::kSoA;
};

/// The application server: owns nothing, computes safe regions on demand.
class MpnServer {
 public:
  /// `pois`/`tree` must outlive the server. `tree` accepts either index
  /// backend (index/spatial_index.h); results and digested counters are
  /// identical across backends.
  MpnServer(const std::vector<Point>* pois, SpatialIndex tree,
            const ServerConfig& config);

  /// Recomputes the meeting point and all safe regions from the probed user
  /// locations (+ motion hints for directed orderings). Timing and algorithm
  /// statistics accumulate across calls.
  MsrResult Recompute(const std::vector<Point>& locations,
                      const std::vector<MotionHint>& hints);

  const ServerConfig& config() const { return config_; }

  /// Total wall-clock seconds spent inside Recompute.
  double compute_seconds() const { return compute_seconds_; }

  /// Number of Recompute calls.
  size_t recompute_count() const { return recompute_count_; }

  /// Aggregated per-call statistics.
  const MsrStats& stats() const { return stats_; }

  /// Plain-data snapshot of the accumulated counters (the scratch arena is
  /// transient and rebuilt on demand, so it is not part of the state). Wire
  /// encoding lives in engine/session_codec.h.
  struct State {
    double compute_seconds = 0.0;
    uint64_t recompute_count = 0;
    MsrStats stats;
  };

  State ExportState() const {
    State state;
    state.compute_seconds = compute_seconds_;
    state.recompute_count = recompute_count_;
    state.stats = stats_;
    return state;
  }

  void ImportState(const State& state) {
    compute_seconds_ = state.compute_seconds;
    recompute_count_ = static_cast<size_t>(state.recompute_count);
    stats_ = state.stats;
  }

 private:
  const std::vector<Point>* pois_;
  SpatialIndex tree_;
  ServerConfig config_;
  double compute_seconds_ = 0.0;
  size_t recompute_count_ = 0;
  MsrStats stats_;
  /// Arena + candidate buffer reused across Recompute calls, so a
  /// steady-state recompute allocates nothing. Safe because a server
  /// belongs to one session and the session serializes its recomputes
  /// (engine/group_session.h); fan-out workers only read/write buffers the
  /// recompute thread carved out of the arena.
  MsrScratch scratch_;
};

}  // namespace mpn
