#include "sim/server.h"

#include "mpn/circle_msr.h"
#include "util/macros.h"

namespace mpn {

namespace {

void Accumulate(MsrStats* into, const MsrStats& s) {
  into->tiles_tried += s.tiles_tried;
  into->tiles_added += s.tiles_added;
  into->divide_calls += s.divide_calls;
  into->verify.calls += s.verify.calls;
  into->verify.accepted += s.verify.accepted;
  into->verify.tile_groups += s.verify.tile_groups;
  into->verify.focal_evals += s.verify.focal_evals;
  into->verify.memo_hits += s.verify.memo_hits;
  into->candidates.retrievals += s.candidates.retrievals;
  into->candidates.candidates_total += s.candidates.candidates_total;
  into->candidates.rejected_by_buffer += s.candidates.rejected_by_buffer;
  into->rtree_node_accesses += s.rtree_node_accesses;
}

}  // namespace

const char* MethodName(Method method) {
  switch (method) {
    case Method::kCircle: return "Circle";
    case Method::kTile: return "Tile";
    case Method::kTileD: return "Tile-D";
    case Method::kTileDBuffered: return "Tile-D-b";
  }
  return "?";
}

MpnServer::MpnServer(const std::vector<Point>* pois, SpatialIndex tree,
                     const ServerConfig& config)
    : pois_(pois), tree_(tree), config_(config) {
  MPN_ASSERT(pois_ != nullptr && tree_.valid());
  MPN_ASSERT(pois_->size() == tree_.size());
}

MsrResult MpnServer::Recompute(const std::vector<Point>& locations,
                               const std::vector<MotionHint>& hints) {
  Timer timer;
  MsrResult result;
  if (config_.method == Method::kCircle) {
    const CircleMsrResult c = ComputeCircleMsr(tree_, locations,
                                               config_.objective);
    result.po_id = c.po_id;
    result.po = c.po;
    result.po_agg = c.po_agg;
    result.regions = c.regions;
  } else {
    TileMsrConfig tc;
    tc.alpha = config_.alpha;
    tc.split_level = config_.split_level;
    tc.buffer_b = config_.buffer_b;
    tc.directed = config_.method != Method::kTile;
    tc.buffered = config_.method == Method::kTileDBuffered;
    tc.fanout = config_.verify_fanout;
    tc.kernel = config_.kernel;
    tc.scratch = &scratch_;
    result = ComputeTileMsr(tree_, locations, config_.objective, tc, hints);
  }
  compute_seconds_ += timer.ElapsedSeconds();
  ++recompute_count_;
  Accumulate(&stats_, result.stats);
  return result;
}

}  // namespace mpn
