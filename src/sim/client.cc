#include "sim/client.h"

#include <algorithm>

#include "util/macros.h"

namespace mpn {

MpnClient::MpnClient(const Trajectory* trajectory, Options options)
    : trajectory_(trajectory), options_(options) {
  MPN_ASSERT(trajectory_ != nullptr && trajectory_->size() > 0);
  location_ = trajectory_->at(0);
}

void MpnClient::Advance(size_t t) {
  MPN_ASSERT(t < trajectory_->size());
  const Point next = trajectory_->at(t);
  const Vec2 step = next - location_;
  if (step.Norm2() > 0.0) {
    heading_ = step.Angle();
    moved_ = true;
    recent_headings_.push_back(heading_);
    while (recent_headings_.size() >
           static_cast<size_t>(options_.heading_window)) {
      recent_headings_.pop_front();
    }
  }
  location_ = next;
}

MpnClient::State MpnClient::ExportState() const {
  State state;
  state.location = location_;
  state.moved = moved_;
  state.heading = heading_;
  state.recent_headings.assign(recent_headings_.begin(),
                               recent_headings_.end());
  state.has_region = has_region_;
  state.region = region_;
  return state;
}

void MpnClient::ImportState(const State& state) {
  location_ = state.location;
  moved_ = state.moved;
  heading_ = state.heading;
  recent_headings_.assign(state.recent_headings.begin(),
                          state.recent_headings.end());
  has_region_ = state.has_region;
  region_ = state.region;
}

size_t MpnClient::StateBytesEstimate() const {
  size_t bytes = 128 + recent_headings_.size() * sizeof(double);
  if (has_region_ && !region_.is_circle()) {
    bytes += region_.tiles().size() * 80;
  }
  return bytes;
}

MotionHint MpnClient::Hint() const {
  MotionHint hint;
  if (!moved_) return hint;
  hint.has_heading = true;
  hint.heading = heading_;
  double dev = 0.0;
  for (double h : recent_headings_) {
    dev = std::max(dev, AngleDiff(h, heading_));
  }
  hint.theta = std::clamp(dev, options_.theta_min, options_.theta_max);
  return hint;
}

}  // namespace mpn
