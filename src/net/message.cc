#include "net/message.h"

namespace mpn {

const char* MessageTypeName(MessageType t) {
  switch (t) {
    case MessageType::kLocationUpdate: return "location-update";
    case MessageType::kProbe: return "probe";
    case MessageType::kProbeReply: return "probe-reply";
    case MessageType::kResult: return "result";
  }
  return "?";
}

size_t RegionValueCount(const SafeRegion& region, bool compress_tiles) {
  if (region.is_circle()) return kValuesPerCircle;
  if (!compress_tiles) return RawTileValueCount(region.tiles());
  return EncodeTileRegion(region.tiles()).ValueCount();
}

void CommAccounting::Record(MessageType t, size_t values,
                            const PacketModel& model) {
  const size_t i = static_cast<size_t>(t);
  messages_[i] += 1;
  values_[i] += values;
  packets_[i] += model.PacketsForValues(values);
}

size_t CommAccounting::TotalMessages() const {
  size_t s = 0;
  for (size_t v : messages_) s += v;
  return s;
}

size_t CommAccounting::TotalPackets() const {
  size_t s = 0;
  for (size_t v : packets_) s += v;
  return s;
}

size_t CommAccounting::TotalValues() const {
  size_t s = 0;
  for (size_t v : values_) s += v;
  return s;
}

void CommAccounting::Merge(const CommAccounting& other) {
  for (size_t i = 0; i < kMessageTypeCount; ++i) {
    messages_[i] += other.messages_[i];
    packets_[i] += other.packets_[i];
    values_[i] += other.values_[i];
  }
}

void CommAccounting::AddRaw(MessageType t, size_t messages, size_t packets,
                            size_t values) {
  const size_t i = static_cast<size_t>(t);
  messages_[i] += messages;
  packets_[i] += packets;
  values_[i] += values;
}

}  // namespace mpn
