// Communication cost model (Section 7.1 "Measures" and Fig. 3 protocol).
//
// The server and the clients exchange three kinds of messages. Costs are
// measured in TCP packets: with a 576-byte MTU and a 40-byte header, a
// packet carries (576-40)/8 = 67 double-precision values. Shapes cost
// 3 values per circle, 3 per square, 4 per rectangle; a location is 2
// values. Tile regions are shipped with the lossless encoding of
// mpn/compress.h.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "mpn/compress.h"
#include "mpn/safe_region.h"

namespace mpn {

/// Message kinds of the Fig. 3 protocol.
enum class MessageType : int {
  kLocationUpdate = 0,  ///< step 1: triggering user -> server
  kProbe = 1,           ///< step 2: server -> other users
  kProbeReply = 2,      ///< step 2: other users -> server
  kResult = 3,          ///< step 3: server -> each user (po + safe region)
};

/// Number of distinct message types.
inline constexpr size_t kMessageTypeCount = 4;

/// Human-readable message-type name.
const char* MessageTypeName(MessageType t);

/// Values (8-byte slots) per shape.
inline constexpr size_t kValuesPerPoint = 2;
inline constexpr size_t kValuesPerCircle = 3;
inline constexpr size_t kValuesPerSquare = 3;
inline constexpr size_t kValuesPerRect = 4;
/// Heading + learned deviation shipped with location reports (enables the
/// directed ordering at the server).
inline constexpr size_t kValuesPerMotionHint = 2;

/// The packet size model.
struct PacketModel {
  size_t mtu_bytes = 576;
  size_t header_bytes = 40;
  size_t value_bytes = 8;

  /// Values that fit in one packet (67 under the defaults).
  size_t ValuesPerPacket() const {
    return (mtu_bytes - header_bytes) / value_bytes;
  }

  /// Packets needed for a message carrying `values` values (min. 1: even an
  /// empty probe occupies a packet).
  size_t PacketsForValues(size_t values) const {
    const size_t vpp = ValuesPerPacket();
    return values == 0 ? 1 : (values + vpp - 1) / vpp;
  }
};

/// Value count for shipping a safe region.
size_t RegionValueCount(const SafeRegion& region, bool compress_tiles);

/// Per-type message/packet/value counters.
class CommAccounting {
 public:
  /// Records one message of `values` values.
  void Record(MessageType t, size_t values, const PacketModel& model);

  size_t messages(MessageType t) const {
    return messages_[static_cast<size_t>(t)];
  }
  size_t packets(MessageType t) const {
    return packets_[static_cast<size_t>(t)];
  }
  size_t values(MessageType t) const {
    return values_[static_cast<size_t>(t)];
  }

  size_t TotalMessages() const;
  size_t TotalPackets() const;
  size_t TotalValues() const;

  /// Adds another accounting into this one.
  void Merge(const CommAccounting& other);

  /// Adds pre-aggregated counters for one message type. Used when an
  /// accounting is reassembled from a serialized form (cluster IPC): the
  /// packet model already ran on the worker, so the packet count is
  /// carried verbatim instead of being re-derived.
  void AddRaw(MessageType t, size_t messages, size_t packets, size_t values);

 private:
  std::array<size_t, kMessageTypeCount> messages_{};
  std::array<size_t, kMessageTypeCount> packets_{};
  std::array<size_t, kMessageTypeCount> values_{};
};

}  // namespace mpn
