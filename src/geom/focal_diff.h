// Exact minimization of the focal difference g(l) = ||p',l|| - ||po,l||
// over an axis-aligned rectangle (Section 6.3.1, Fig. 12).
//
// The level sets of g are confocal hyperbola branches with foci p' and po.
// The minimum over a closed rectangle is attained either
//   (a) at a corner,
//   (b) where the boundary crosses the focal axis (the line p'po) — on the
//       axis g is piecewise linear with global minimum -||p',po|| on the
//       ray behind p'; interior critical points of g also lie there, or
//   (c) at an edge-interior critical point, where the edge is tangent to a
//       level curve. The hyperbola tangent bisects the focal angle, so at
//       such a point the directions l->p' and l->po make equal, opposite
//       angles with the edge; equivalently l is the intersection of the
//       edge with the line through p' and the mirror image of po across the
//       edge's supporting line (the Heron reflection construction).
// Evaluating g at this finite candidate set yields the exact minimum.
#pragma once

#include "geom/rect.h"
#include "geom/vec2.h"

namespace mpn {

/// Focal difference g(l) = ||p_other, l|| - ||p_opt, l||.
inline double FocalDiff(const Point& p_other, const Point& p_opt,
                        const Point& l) {
  return Dist(p_other, l) - Dist(p_opt, l);
}

/// Exact minimum of g over the closed rectangle `r`.
///
/// Evaluates g at the four corners and at every intersection of the
/// rectangle boundary with the line through the foci. Degenerate case
/// p_other == p_opt returns 0.
double MinFocalDiffOverRect(const Point& p_other, const Point& p_opt,
                            const Rect& r);

/// Conservative (never smaller than the true value) maximum of g over `r`:
/// max_l ||p_other,l|| - min_l ||po,l|| evaluated via rectangle distance
/// bounds. Used only for pruning, where an upper bound suffices.
double MaxFocalDiffUpperBound(const Point& p_other, const Point& p_opt,
                              const Rect& r);

}  // namespace mpn
