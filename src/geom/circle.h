// Circles; the shape of the Section-4 safe regions.
#pragma once

#include <algorithm>
#include <cmath>

#include "geom/rect.h"
#include "geom/vec2.h"

namespace mpn {

/// Closed disk of radius `radius` centered at `center`.
struct Circle {
  Point center;
  double radius = 0.0;

  Circle() = default;
  Circle(const Point& c, double r) : center(c), radius(r) {}

  /// Closed containment test.
  bool Contains(const Point& p) const {
    return Dist2(p, center) <= radius * radius;
  }

  /// ||p, R||_min for the disk (0 when p is inside).
  double MinDist(const Point& p) const {
    return std::max(0.0, Dist(p, center) - radius);
  }

  /// ||p, R||_max for the disk.
  double MaxDist(const Point& p) const { return Dist(p, center) + radius; }

  /// Tight bounding box.
  Rect Bounds() const {
    return Rect({center.x - radius, center.y - radius},
                {center.x + radius, center.y + radius});
  }

  /// Largest axis-aligned square inscribed in the disk (side sqrt(2)*r);
  /// this seeds the tile size in Algorithm 3 (delta = sqrt(2) * rmax).
  Rect InscribedSquare() const {
    return Rect::CenteredSquare(center, radius * std::sqrt(2.0));
  }
};

}  // namespace mpn
