// 2-D points/vectors and elementary operations.
//
// All coordinates are double precision. The library works in an abstract
// planar Euclidean space (Section 3 of the paper); workload generators map
// their worlds onto it.
#pragma once

#include <cmath>
#include <string>

namespace mpn {

/// A 2-D point or displacement vector.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double px, double py) : x(px), y(py) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }
  constexpr bool operator!=(const Vec2& o) const { return !(*this == o); }

  /// Dot product.
  constexpr double Dot(const Vec2& o) const { return x * o.x + y * o.y; }

  /// Z-component of the 2-D cross product.
  constexpr double Cross(const Vec2& o) const { return x * o.y - y * o.x; }

  /// Squared Euclidean norm.
  constexpr double Norm2() const { return x * x + y * y; }

  /// Euclidean norm.
  double Norm() const { return std::sqrt(Norm2()); }

  /// Unit vector in the same direction; returns (0,0) for the zero vector.
  Vec2 Normalized() const {
    const double n = Norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{0.0, 0.0};
  }

  /// Angle of the vector in radians, in (-pi, pi].
  double Angle() const { return std::atan2(y, x); }

  /// Counter-clockwise rotation by `radians`.
  Vec2 Rotated(double radians) const {
    const double c = std::cos(radians), s = std::sin(radians);
    return {x * c - y * s, x * s + y * c};
  }

  std::string ToString() const;
};

/// A location in the plane (alias emphasizing intent).
using Point = Vec2;

/// Euclidean distance ||a,b|| (Definition 1).
inline double Dist(const Point& a, const Point& b) { return (a - b).Norm(); }

/// Squared Euclidean distance.
inline double Dist2(const Point& a, const Point& b) { return (a - b).Norm2(); }

/// Unit vector from a heading angle in radians.
inline Vec2 UnitFromAngle(double radians) {
  return {std::cos(radians), std::sin(radians)};
}

/// Normalizes an angle to (-pi, pi].
double NormalizeAngle(double radians);

/// Absolute angular difference between two headings, in [0, pi].
double AngleDiff(double a, double b);

}  // namespace mpn
