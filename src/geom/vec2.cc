#include "geom/vec2.h"

#include <cstdio>

namespace mpn {

std::string Vec2::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.6g, %.6g)", x, y);
  return buf;
}

double NormalizeAngle(double radians) {
  constexpr double kPi = 3.141592653589793238462643383279502884;
  constexpr double kTwoPi = 2.0 * kPi;
  while (radians > kPi) radians -= kTwoPi;
  while (radians <= -kPi) radians += kTwoPi;
  return radians;
}

double AngleDiff(double a, double b) {
  const double d = NormalizeAngle(a - b);
  return d < 0.0 ? -d : d;
}

}  // namespace mpn
