#include "geom/focal_diff.h"

#include <algorithm>

namespace mpn {

namespace {

// Appends to `out` the parameter interval [t_enter, t_exit] of the segment
// {a + t*(b-a), t in R} clipped against rect `r`, evaluated as points.
// Uses the Liang-Barsky slab method over the full line (t unbounded), which
// yields the entry/exit points of the focal axis through the rectangle.
void AppendLineRectIntersections(const Point& a, const Point& b, const Rect& r,
                                 Point out[2], int* n_out) {
  *n_out = 0;
  const Vec2 d = b - a;
  double t_lo = -1e300, t_hi = 1e300;
  // x-slab
  if (d.x == 0.0) {
    if (a.x < r.lo.x || a.x > r.hi.x) return;
  } else {
    double t1 = (r.lo.x - a.x) / d.x;
    double t2 = (r.hi.x - a.x) / d.x;
    if (t1 > t2) std::swap(t1, t2);
    t_lo = std::max(t_lo, t1);
    t_hi = std::min(t_hi, t2);
  }
  // y-slab
  if (d.y == 0.0) {
    if (a.y < r.lo.y || a.y > r.hi.y) return;
  } else {
    double t1 = (r.lo.y - a.y) / d.y;
    double t2 = (r.hi.y - a.y) / d.y;
    if (t1 > t2) std::swap(t1, t2);
    t_lo = std::max(t_lo, t1);
    t_hi = std::min(t_hi, t2);
  }
  if (t_lo > t_hi) return;
  out[0] = a + d * t_lo;
  out[1] = a + d * t_hi;
  *n_out = 2;
}

}  // namespace

namespace {

// Evaluates the Heron-reflection critical point on a horizontal edge
// y = c, x in [x0, x1] and folds it into *best.
void FoldHorizontalEdgeCritical(const Point& p_other, const Point& p_opt,
                                double c, double x0, double x1,
                                double* best) {
  const Point mirrored{p_opt.x, 2.0 * c - p_opt.y};
  const Vec2 dir = mirrored - p_other;
  if (dir.y == 0.0) return;  // parallel (or the edge lies on the axis)
  const double t = (c - p_other.y) / dir.y;
  const double x = p_other.x + t * dir.x;
  if (x >= x0 && x <= x1) {
    *best = std::min(*best, FocalDiff(p_other, p_opt, {x, c}));
  }
}

// Same for a vertical edge x = c, y in [y0, y1].
void FoldVerticalEdgeCritical(const Point& p_other, const Point& p_opt,
                              double c, double y0, double y1, double* best) {
  const Point mirrored{2.0 * c - p_opt.x, p_opt.y};
  const Vec2 dir = mirrored - p_other;
  if (dir.x == 0.0) return;
  const double t = (c - p_other.x) / dir.x;
  const double y = p_other.y + t * dir.y;
  if (y >= y0 && y <= y1) {
    *best = std::min(*best, FocalDiff(p_other, p_opt, {c, y}));
  }
}

}  // namespace

double MinFocalDiffOverRect(const Point& p_other, const Point& p_opt,
                            const Rect& r) {
  if (r.IsEmpty()) return 0.0;
  if (p_other == p_opt) return 0.0;
  // (a) corners.
  double best = FocalDiff(p_other, p_opt, r.Corner(0));
  for (int i = 1; i < 4; ++i) {
    best = std::min(best, FocalDiff(p_other, p_opt, r.Corner(i)));
  }
  // (b) focal-axis crossings; also covers p_other inside the rectangle
  // (the global minimum -||p',po|| lies on the axis ray behind p').
  Point axis_pts[2];
  int n = 0;
  AppendLineRectIntersections(p_other, p_opt, r, axis_pts, &n);
  for (int i = 0; i < n; ++i) {
    // Clamp for numerical safety: the intersection should already be on the
    // boundary, but slab arithmetic can land epsilon outside.
    Point q = axis_pts[i];
    q.x = std::clamp(q.x, r.lo.x, r.hi.x);
    q.y = std::clamp(q.y, r.lo.y, r.hi.y);
    best = std::min(best, FocalDiff(p_other, p_opt, q));
  }
  // (c) edge-interior tangency critical points (Heron reflection).
  FoldHorizontalEdgeCritical(p_other, p_opt, r.lo.y, r.lo.x, r.hi.x, &best);
  FoldHorizontalEdgeCritical(p_other, p_opt, r.hi.y, r.lo.x, r.hi.x, &best);
  FoldVerticalEdgeCritical(p_other, p_opt, r.lo.x, r.lo.y, r.hi.y, &best);
  FoldVerticalEdgeCritical(p_other, p_opt, r.hi.x, r.lo.y, r.hi.y, &best);
  return best;
}

double MaxFocalDiffUpperBound(const Point& p_other, const Point& p_opt,
                              const Rect& r) {
  return r.MaxDist(p_other) - r.MinDist(p_opt);
}

}  // namespace mpn
