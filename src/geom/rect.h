// Axis-aligned rectangles (MBRs) with the min/max distance semantics of
// Definition 1: ||p,S||_min and ||p,S||_max for a region S.
#pragma once

#include <algorithm>
#include <string>

#include "geom/vec2.h"

namespace mpn {

/// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
struct Rect {
  Point lo;
  Point hi;

  Rect() : lo{0, 0}, hi{-1, -1} {}  // default: empty
  Rect(const Point& l, const Point& h) : lo(l), hi(h) {}

  /// Rectangle containing a single point.
  static Rect FromPoint(const Point& p) { return Rect(p, p); }

  /// Square of side `side` centered at `c`.
  static Rect CenteredSquare(const Point& c, double side) {
    const double h = side / 2.0;
    return Rect({c.x - h, c.y - h}, {c.x + h, c.y + h});
  }

  /// Empty rectangle (contains nothing; identity for ExpandToInclude).
  static Rect Empty() { return Rect(); }

  /// True when the rectangle contains no points.
  bool IsEmpty() const { return lo.x > hi.x || lo.y > hi.y; }

  /// Geometric center. Undefined for empty rectangles.
  Point Center() const { return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0}; }

  double Width() const { return hi.x - lo.x; }
  double Height() const { return hi.y - lo.y; }

  /// Area; 0 for empty or degenerate rectangles.
  double Area() const { return IsEmpty() ? 0.0 : Width() * Height(); }

  /// Half-perimeter (margin), used by R-tree heuristics.
  double Margin() const { return IsEmpty() ? 0.0 : Width() + Height(); }

  /// Closed containment test.
  bool Contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// True when `other` lies entirely within this rectangle.
  bool ContainsRect(const Rect& other) const {
    return !other.IsEmpty() && other.lo.x >= lo.x && other.hi.x <= hi.x &&
           other.lo.y >= lo.y && other.hi.y <= hi.y;
  }

  /// Closed intersection test.
  bool Intersects(const Rect& other) const {
    if (IsEmpty() || other.IsEmpty()) return false;
    return lo.x <= other.hi.x && other.lo.x <= hi.x && lo.y <= other.hi.y &&
           other.lo.y <= hi.y;
  }

  /// Smallest rectangle containing this one and `p`.
  void ExpandToInclude(const Point& p) {
    if (IsEmpty()) {
      lo = hi = p;
      return;
    }
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Smallest rectangle containing this one and `r`.
  void ExpandToInclude(const Rect& r) {
    if (r.IsEmpty()) return;
    ExpandToInclude(r.lo);
    ExpandToInclude(r.hi);
  }

  /// Union of two rectangles.
  static Rect Union(const Rect& a, const Rect& b) {
    Rect r = a;
    r.ExpandToInclude(b);
    return r;
  }

  /// Area of the intersection; 0 when disjoint.
  double IntersectionArea(const Rect& other) const {
    if (!Intersects(other)) return 0.0;
    const double w = std::min(hi.x, other.hi.x) - std::max(lo.x, other.lo.x);
    const double h = std::min(hi.y, other.hi.y) - std::max(lo.y, other.lo.y);
    return w * h;
  }

  /// ||p, R||_min: distance from p to the nearest point of the rectangle
  /// (0 when p is inside).
  double MinDist(const Point& p) const {
    const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
    const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Squared ||p, R||_min (cheaper; used by index traversals).
  double MinDist2(const Point& p) const {
    const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
    const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
    return dx * dx + dy * dy;
  }

  /// ||p, R||_max: distance from p to the farthest point of the rectangle.
  double MaxDist(const Point& p) const {
    const double dx = std::max(p.x - lo.x, hi.x - p.x);
    const double dy = std::max(p.y - lo.y, hi.y - p.y);
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Corner by index (0: lo-lo, 1: hi-lo, 2: hi-hi, 3: lo-hi).
  Point Corner(int i) const {
    switch (i & 3) {
      case 0: return lo;
      case 1: return {hi.x, lo.y};
      case 2: return hi;
      default: return {lo.x, hi.y};
    }
  }

  std::string ToString() const;
};

}  // namespace mpn
