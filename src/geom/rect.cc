#include "geom/rect.h"

#include <cstdio>

namespace mpn {

std::string Rect::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.6g,%.6g]x[%.6g,%.6g]", lo.x, hi.x, lo.y,
                hi.y);
  return buf;
}

}  // namespace mpn
