// Branch-light distance kernels over contiguous coordinate lanes (SoA).
//
// The scalar predicates in geom/rect.h, geom/circle.h and geom/vec2.h are
// called per (tile, candidate) pair in the tile-MSR verification loop; in
// AoS form (vector<Rect>) each call strides through mixed coordinates and
// the surrounding branches defeat autovectorization. These kernels take the
// same formulas over structure-of-arrays lanes — one contiguous double
// array per coordinate — so the compiler can turn them into packed
// min/max/mul/sqrt instructions.
//
// Bit-identity contract: every kernel performs the exact IEEE-754 double
// operations of its scalar counterpart per lane (std::max/std::min select
// one of their operands; correctly-rounded sqrt is the same instruction),
// so the outputs are bit-identical to calling the scalar predicate per
// element, in any lane order. The *Reduce variants additionally exploit
// that sqrt is monotone: min/max over sqrt(v_i) equals sqrt(min/max v_i),
// so they reduce on squared distances and take one square root at the end
// — still value-identical to the scalar fold they replace.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geom/rect.h"
#include "geom/vec2.h"

namespace mpn {

/// A batch of axis-aligned rectangles in SoA layout. The four arrays are
/// parallel and hold `n` lanes each; lane i is the rectangle
/// [lo_x[i], hi_x[i]] x [lo_y[i], hi_y[i]].
struct RectLanes {
  const double* lo_x = nullptr;
  const double* lo_y = nullptr;
  const double* hi_x = nullptr;
  const double* hi_y = nullptr;
  size_t n = 0;
};

/// out[i] = ||p, rect_i||_min (Rect::MinDist per lane).
void RectMinDistLanes(const RectLanes& r, const Point& p, double* out);

/// out[i] = ||p, rect_i||_max (Rect::MaxDist per lane).
void RectMaxDistLanes(const RectLanes& r, const Point& p, double* out);

/// min_i ||p, rect_i||_min; +infinity when n == 0. Equals the fold
/// min(Rect::MinDist) over the lanes.
double RectMinDistReduce(const RectLanes& r, const Point& p);

/// max_i ||p, rect_i||_max; 0 when n == 0 (distances are nonnegative, so 0
/// is the identity the scalar folds start from). Equals the fold
/// max(Rect::MaxDist) over the lanes.
double RectMaxDistReduce(const RectLanes& r, const Point& p);

/// Largest double t with std::sqrt(t) <= z, or -1.0 when no nonnegative t
/// satisfies it (z < 0 or NaN). Moves sqrt comparisons into the squared
/// domain exactly: for every double t >= 0,
///     std::sqrt(t) <= z   <=>   t <= SqrtLeqThreshold(z).
/// Correctly-rounded sqrt is monotone, so the satisfying set is downward
/// closed; the implementation locates its exact upper end by probing a few
/// neighbours of fl(z*z) with real sqrt calls — no rounding analysis, and
/// the cost is a handful of scalar sqrts, paid once per threshold instead
/// of once per lane.
double SqrtLeqThreshold(double z);

/// Strict variant: for every double t >= 0,
///     std::sqrt(t) < y   <=>   t <= SqrtLtThreshold(y).
double SqrtLtThreshold(double y);

/// out[i] = squared ||p, rect_i||_min (Rect::MinDist2 per lane — the exact
/// IEEE square RectMinDistLanes feeds to sqrt).
void RectMinDist2Lanes(const RectLanes& r, const Point& p, double* out);

/// out[i] = 1 when rect_i intersects `q` (closed; Rect::Intersects per lane
/// assuming non-empty lanes and non-empty q), else 0.
void RectIntersectsLanes(const RectLanes& r, const Rect& q, uint8_t* out);

/// out[i] = 1 when `q` entirely contains rect_i (q.ContainsRect(rect_i) per
/// lane, assuming non-empty lanes), else 0. Pure coordinate comparisons —
/// no rounding — so a set lane proves exact containment of every point of
/// the rectangle (the packed index's bulk-emit fast path relies on this).
void RectContainedLanes(const RectLanes& r, const Rect& q, uint8_t* out);

/// out[i] = squared distance from p to (xs[i], ys[i]) (Dist2 per lane).
void PointDist2Lanes(const double* xs, const double* ys, size_t n,
                     const Point& p, double* out);

/// out[i] = ||p, circle_i||_min = max(dist(p, c_i) - r_i, 0)
/// (Circle::MinDist per lane; centers in cx/cy, radii in rr).
void CircleMinDistLanes(const double* cx, const double* cy, const double* rr,
                        size_t n, const Point& p, double* out);

/// out[i] = ||p, circle_i||_max = dist(p, c_i) + r_i (Circle::MaxDist per
/// lane).
void CircleMaxDistLanes(const double* cx, const double* cy, const double* rr,
                        size_t n, const Point& p, double* out);

}  // namespace mpn
