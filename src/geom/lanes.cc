#include "geom/lanes.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mpn {

// Every loop below is a straight-line pass over contiguous doubles with no
// data-dependent branches: std::max/std::min lower to maxsd/minsd (packed
// under autovectorization) and std::sqrt to sqrtsd/sqrtpd, so -O2/-O3 plus
// -fno-math-errno (set in the top-level CMakeLists) vectorizes them.

void RectMinDistLanes(const RectLanes& r, const Point& p, double* out) {
  const double px = p.x, py = p.y;
  for (size_t i = 0; i < r.n; ++i) {
    const double dx = std::max(std::max(r.lo_x[i] - px, 0.0), px - r.hi_x[i]);
    const double dy = std::max(std::max(r.lo_y[i] - py, 0.0), py - r.hi_y[i]);
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

void RectMaxDistLanes(const RectLanes& r, const Point& p, double* out) {
  const double px = p.x, py = p.y;
  for (size_t i = 0; i < r.n; ++i) {
    const double dx = std::max(px - r.lo_x[i], r.hi_x[i] - px);
    const double dy = std::max(py - r.lo_y[i], r.hi_y[i] - py);
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

double RectMinDistReduce(const RectLanes& r, const Point& p) {
  const double px = p.x, py = p.y;
  double best2 = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < r.n; ++i) {
    const double dx = std::max(std::max(r.lo_x[i] - px, 0.0), px - r.hi_x[i]);
    const double dy = std::max(std::max(r.lo_y[i] - py, 0.0), py - r.hi_y[i]);
    best2 = std::min(best2, dx * dx + dy * dy);
  }
  return std::sqrt(best2);
}

double RectMaxDistReduce(const RectLanes& r, const Point& p) {
  const double px = p.x, py = p.y;
  double best2 = 0.0;
  for (size_t i = 0; i < r.n; ++i) {
    const double dx = std::max(px - r.lo_x[i], r.hi_x[i] - px);
    const double dy = std::max(py - r.lo_y[i], r.hi_y[i] - py);
    best2 = std::max(best2, dx * dx + dy * dy);
  }
  return std::sqrt(best2);
}

double SqrtLeqThreshold(double z) {
  if (!(z >= 0.0)) return -1.0;  // z < 0 or NaN: no nonnegative t qualifies
  if (std::isinf(z)) return z;   // sqrt(t) <= inf for every t, inf included
  double t = z * z;              // within a few ulps of the exact boundary
  if (std::isinf(t)) t = std::numeric_limits<double>::max();
  while (std::sqrt(t) > z) t = std::nextafter(t, 0.0);
  for (;;) {
    const double up =
        std::nextafter(t, std::numeric_limits<double>::infinity());
    if (std::isinf(up) || std::sqrt(up) > z) break;
    t = up;
  }
  return t;
}

double SqrtLtThreshold(double y) {
  if (!(y > 0.0)) return -1.0;  // sqrt(t) >= 0: strict < needs y > 0
  if (std::isinf(y)) {
    // sqrt(t) < inf exactly for finite t.
    return std::numeric_limits<double>::max();
  }
  // sqrt(t) and y are doubles, so sqrt(t) < y <=> sqrt(t) <= pred(y).
  return SqrtLeqThreshold(std::nextafter(y, 0.0));
}

void RectMinDist2Lanes(const RectLanes& r, const Point& p, double* out) {
  const double px = p.x, py = p.y;
  for (size_t i = 0; i < r.n; ++i) {
    const double dx = std::max(std::max(r.lo_x[i] - px, 0.0), px - r.hi_x[i]);
    const double dy = std::max(std::max(r.lo_y[i] - py, 0.0), py - r.hi_y[i]);
    out[i] = dx * dx + dy * dy;
  }
}

void RectIntersectsLanes(const RectLanes& r, const Rect& q, uint8_t* out) {
  const double qlx = q.lo.x, qly = q.lo.y, qhx = q.hi.x, qhy = q.hi.y;
  for (size_t i = 0; i < r.n; ++i) {
    out[i] = static_cast<uint8_t>(r.lo_x[i] <= qhx && qlx <= r.hi_x[i] &&
                                  r.lo_y[i] <= qhy && qly <= r.hi_y[i]);
  }
}

void RectContainedLanes(const RectLanes& r, const Rect& q, uint8_t* out) {
  const double qlx = q.lo.x, qly = q.lo.y, qhx = q.hi.x, qhy = q.hi.y;
  for (size_t i = 0; i < r.n; ++i) {
    out[i] = static_cast<uint8_t>(r.lo_x[i] >= qlx && r.hi_x[i] <= qhx &&
                                  r.lo_y[i] >= qly && r.hi_y[i] <= qhy);
  }
}

void PointDist2Lanes(const double* xs, const double* ys, size_t n,
                     const Point& p, double* out) {
  const double px = p.x, py = p.y;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - px;
    const double dy = ys[i] - py;
    out[i] = dx * dx + dy * dy;
  }
}

void CircleMinDistLanes(const double* cx, const double* cy, const double* rr,
                        size_t n, const Point& p, double* out) {
  const double px = p.x, py = p.y;
  for (size_t i = 0; i < n; ++i) {
    const double dx = px - cx[i];
    const double dy = py - cy[i];
    out[i] = std::max(0.0, std::sqrt(dx * dx + dy * dy) - rr[i]);
  }
}

void CircleMaxDistLanes(const double* cx, const double* cy, const double* rr,
                        size_t n, const Point& p, double* out) {
  const double px = p.x, py = p.y;
  for (size_t i = 0; i < n; ++i) {
    const double dx = px - cx[i];
    const double dy = py - cy[i];
    out[i] = std::sqrt(dx * dx + dy * dy) + rr[i];
  }
}

}  // namespace mpn
