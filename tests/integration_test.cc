// Cross-module integration sweeps: the full protocol under a grid of
// engine knobs (alpha, L, b, orderings, objectives), checked with
// brute-force correctness enabled, plus consistency relations between the
// knobs (more tiles -> no worse update frequency; buffering never breaks
// convergence; codec on the wire preserves behaviour).
#include <gtest/gtest.h>

#include <string>

#include "sim/simulator.h"
#include "traj/generators.h"
#include "util/rng.h"

namespace mpn {
namespace {

struct SharedWorld {
  std::vector<Point> pois;
  RTree tree;
  std::vector<Trajectory> trajs;

  static const SharedWorld& Get() {
    static SharedWorld* world = [] {
      auto* w = new SharedWorld();
      Rng rng(0x1A7E57);
      PoiOptions popt;
      popt.world = Rect({0, 0}, {30000, 30000});
      popt.clusters = 15;
      w->pois = GeneratePois(1500, popt, &rng);
      w->tree = RTree::BulkLoad(w->pois);
      RandomWalkGenerator::Options wopt;
      wopt.world = popt.world;
      wopt.mean_speed = 10.0;
      wopt.heading_sigma = 0.08;
      const RandomWalkGenerator gen(wopt);
      w->trajs = gen.GenerateGroupedFleet(3, 3, 2500, 350, &rng);
      return w;
    }();
    return *world;
  }
};

struct KnobCase {
  int alpha;
  int split_level;
  int buffer_b;
  Method method;
  Objective obj;
  std::string name;
};

class KnobGridTest : public ::testing::TestWithParam<KnobCase> {};

TEST_P(KnobGridTest, ProtocolStaysCorrectUnderKnobs) {
  const KnobCase& kc = GetParam();
  const SharedWorld& w = SharedWorld::Get();
  std::vector<const Trajectory*> group = {&w.trajs[0], &w.trajs[1],
                                          &w.trajs[2]};
  SimOptions opt;
  opt.server.method = kc.method;
  opt.server.objective = kc.obj;
  opt.server.alpha = kc.alpha;
  opt.server.split_level = kc.split_level;
  opt.server.buffer_b = kc.buffer_b;
  opt.check_correctness = true;  // brute-force validated every timestamp
  Simulator sim(&w.pois, &w.tree, group, opt);
  const SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.timestamps, 350u);
  EXPECT_GT(metrics.updates, 0u);
  // Protocol arithmetic must hold for any knob setting.
  EXPECT_EQ(metrics.comm.messages(MessageType::kLocationUpdate),
            metrics.updates);
  EXPECT_EQ(metrics.comm.messages(MessageType::kResult),
            3 * metrics.updates);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KnobGridTest,
    ::testing::Values(
        KnobCase{1, 0, 100, Method::kTile, Objective::kMax, "a1L0"},
        KnobCase{5, 1, 100, Method::kTile, Objective::kMax, "a5L1"},
        KnobCase{30, 2, 100, Method::kTile, Objective::kMax, "a30L2"},
        KnobCase{30, 3, 100, Method::kTileD, Objective::kMax, "a30L3D"},
        KnobCase{10, 2, 5, Method::kTileDBuffered, Objective::kMax, "b5"},
        KnobCase{10, 2, 200, Method::kTileDBuffered, Objective::kMax, "b200"},
        KnobCase{5, 1, 100, Method::kTile, Objective::kSum, "sum_a5L1"},
        KnobCase{30, 2, 50, Method::kTileDBuffered, Objective::kSum,
                 "sum_b50"},
        KnobCase{1, 0, 100, Method::kCircle, Objective::kSum, "sum_circle"}),
    [](const ::testing::TestParamInfo<KnobCase>& info) {
      return info.param.name;
    });

TEST(KnobRelationTest, LargerAlphaNeverHurtsUpdateFrequency) {
  const SharedWorld& w = SharedWorld::Get();
  std::vector<const Trajectory*> group = {&w.trajs[0], &w.trajs[1],
                                          &w.trajs[2]};
  size_t prev_updates = SIZE_MAX;
  for (int alpha : {1, 5, 15, 30}) {
    SimOptions opt;
    opt.server.method = Method::kTileD;
    opt.server.alpha = alpha;
    Simulator sim(&w.pois, &w.tree, group, opt);
    const size_t updates = sim.Run().updates;
    // Bigger tile budgets grow regions monotonically per session; across a
    // whole run the frequency should not get *meaningfully* worse (10%
    // slack for trajectory-dependent session boundaries).
    EXPECT_LE(updates, prev_updates + prev_updates / 10 + 2)
        << "alpha=" << alpha;
    prev_updates = updates;
  }
}

TEST(KnobRelationTest, BufferedFrequencyConvergesToUnbuffered) {
  const SharedWorld& w = SharedWorld::Get();
  std::vector<const Trajectory*> group = {&w.trajs[0], &w.trajs[1],
                                          &w.trajs[2]};
  SimOptions plain;
  plain.server.method = Method::kTileD;
  plain.server.alpha = 15;
  Simulator s0(&w.pois, &w.tree, group, plain);
  const size_t unbuffered = s0.Run().updates;
  SimOptions buffered = plain;
  buffered.server.method = Method::kTileDBuffered;
  buffered.server.buffer_b = 200;
  Simulator s1(&w.pois, &w.tree, group, buffered);
  const size_t with_buffer = s1.Run().updates;
  // At large b the buffered run should be within ~15% of unbuffered.
  EXPECT_NEAR(static_cast<double>(with_buffer),
              static_cast<double>(unbuffered),
              0.15 * static_cast<double>(unbuffered) + 3.0);
}

TEST(KnobRelationTest, SplitLevelRecoversTiles) {
  // Deeper Divide-Verify recursion adds at least as many (sub)tiles.
  const SharedWorld& w = SharedWorld::Get();
  Rng rng(55);
  std::vector<Point> users;
  for (int i = 0; i < 3; ++i) {
    users.push_back({rng.Uniform(10000, 20000), rng.Uniform(10000, 20000)});
  }
  uint64_t prev_added = 0;
  for (int level : {0, 1, 2, 3}) {
    TileMsrConfig config;
    config.alpha = 10;
    config.split_level = level;
    const auto r = ComputeTileMsr(w.tree, users, Objective::kMax, config);
    EXPECT_GE(r.stats.tiles_added + 2, prev_added) << "L=" << level;
    prev_added = r.stats.tiles_added;
  }
}

TEST(KnobRelationTest, WireCodecDoesNotChangeBehaviour) {
  // Two identical runs must produce identical update counts: the simulator
  // routes tile regions through encode/decode, so this also pins down codec
  // determinism end to end.
  const SharedWorld& w = SharedWorld::Get();
  std::vector<const Trajectory*> group = {&w.trajs[0], &w.trajs[1],
                                          &w.trajs[2]};
  SimOptions opt;
  opt.server.method = Method::kTileD;
  Simulator a(&w.pois, &w.tree, group, opt);
  Simulator b(&w.pois, &w.tree, group, opt);
  const SimMetrics ma = a.Run();
  const SimMetrics mb = b.Run();
  EXPECT_EQ(ma.updates, mb.updates);
  EXPECT_EQ(ma.comm.TotalPackets(), mb.comm.TotalPackets());
  EXPECT_EQ(ma.result_changes, mb.result_changes);
}

}  // namespace
}  // namespace mpn
