// Geometry substrate tests: vectors, rectangles, circles and the exact
// focal-difference minimization that underpins Sum-GT-Verify.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "geom/circle.h"
#include "geom/focal_diff.h"
#include "geom/lanes.h"
#include "geom/rect.h"
#include "geom/vec2.h"
#include "util/rng.h"

namespace mpn {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -2.0));
  EXPECT_DOUBLE_EQ(a.Dot(b), 3.0 - 8.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -4.0 - 6.0);
}

TEST(Vec2Test, NormAndDistance) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.Norm2(), 25.0);
  EXPECT_DOUBLE_EQ(Dist({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Dist2({1, 1}, {4, 5}), 25.0);
}

TEST(Vec2Test, NormalizedHandlesZero) {
  EXPECT_EQ(Vec2(0, 0).Normalized(), Vec2(0, 0));
  const Vec2 u = Vec2(0, -2).Normalized();
  EXPECT_DOUBLE_EQ(u.x, 0.0);
  EXPECT_DOUBLE_EQ(u.y, -1.0);
}

TEST(Vec2Test, AngleAndRotation) {
  EXPECT_DOUBLE_EQ(Vec2(1, 0).Angle(), 0.0);
  EXPECT_DOUBLE_EQ(Vec2(0, 1).Angle(), kPi / 2);
  const Vec2 r = Vec2(1, 0).Rotated(kPi / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-15);
  EXPECT_NEAR(r.y, 1.0, 1e-15);
}

TEST(AngleTest, NormalizeAngle) {
  EXPECT_NEAR(NormalizeAngle(3 * kPi), kPi, 1e-12);
  EXPECT_NEAR(NormalizeAngle(-3 * kPi), kPi, 1e-12);
  EXPECT_NEAR(NormalizeAngle(0.5), 0.5, 1e-15);
  EXPECT_LE(NormalizeAngle(123.456), kPi);
  EXPECT_GT(NormalizeAngle(123.456), -kPi);
}

TEST(AngleTest, AngleDiffSymmetricAndBounded) {
  EXPECT_NEAR(AngleDiff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(AngleDiff(kPi - 0.05, -kPi + 0.05), 0.1, 1e-12);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-10, 10), b = rng.Uniform(-10, 10);
    const double d = AngleDiff(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, kPi + 1e-12);
    EXPECT_NEAR(d, AngleDiff(b, a), 1e-12);
  }
}

TEST(RectTest, EmptyAndContainment) {
  EXPECT_TRUE(Rect::Empty().IsEmpty());
  const Rect r({0, 0}, {2, 4});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_TRUE(r.Contains({2, 4}));
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({2.0001, 1}));
  EXPECT_FALSE(r.Contains({1, -0.0001}));
}

TEST(RectTest, AreaMarginCenter) {
  const Rect r({1, 1}, {4, 3});
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 5.0);
  EXPECT_EQ(r.Center(), Vec2(2.5, 2.0));
  EXPECT_DOUBLE_EQ(Rect::Empty().Area(), 0.0);
}

TEST(RectTest, UnionAndExpand) {
  Rect r = Rect::Empty();
  r.ExpandToInclude(Point{1, 1});
  EXPECT_EQ(r.lo, Vec2(1, 1));
  EXPECT_EQ(r.hi, Vec2(1, 1));
  r.ExpandToInclude(Point{-1, 3});
  EXPECT_EQ(r.lo, Vec2(-1, 1));
  EXPECT_EQ(r.hi, Vec2(1, 3));
  const Rect u = Rect::Union(Rect({0, 0}, {1, 1}), Rect({2, -1}, {3, 0.5}));
  EXPECT_EQ(u.lo, Vec2(0, -1));
  EXPECT_EQ(u.hi, Vec2(3, 1));
}

TEST(RectTest, IntersectionTests) {
  const Rect a({0, 0}, {2, 2});
  EXPECT_TRUE(a.Intersects(Rect({1, 1}, {3, 3})));
  EXPECT_TRUE(a.Intersects(Rect({2, 2}, {3, 3})));  // corner touch
  EXPECT_FALSE(a.Intersects(Rect({2.1, 0}, {3, 1})));
  EXPECT_FALSE(a.Intersects(Rect::Empty()));
  EXPECT_DOUBLE_EQ(a.IntersectionArea(Rect({1, 1}, {3, 3})), 1.0);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(Rect({5, 5}, {6, 6})), 0.0);
}

TEST(RectTest, MinMaxDistInsideAndOutside) {
  const Rect r({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(r.MinDist({1, 1}), 0.0);       // inside
  EXPECT_DOUBLE_EQ(r.MinDist({3, 1}), 1.0);       // right of
  EXPECT_DOUBLE_EQ(r.MinDist({-3, -4}), 5.0);     // diagonal
  EXPECT_DOUBLE_EQ(r.MaxDist({0, 0}), std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(r.MaxDist({1, 1}), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(r.MaxDist({3, 1}), std::sqrt(9 + 1));
}

TEST(RectTest, MinMaxDistMatchSampledExtremes) {
  Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    const Point lo{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const Rect r(lo, {lo.x + rng.Uniform(0.1, 5), lo.y + rng.Uniform(0.1, 5)});
    const Point q{rng.Uniform(-20, 20), rng.Uniform(-20, 20)};
    double smin = 1e300, smax = 0.0;
    for (int i = 0; i <= 20; ++i) {
      for (int j = 0; j <= 20; ++j) {
        const Point s{r.lo.x + r.Width() * i / 20.0,
                      r.lo.y + r.Height() * j / 20.0};
        smin = std::min(smin, Dist(q, s));
        smax = std::max(smax, Dist(q, s));
      }
    }
    EXPECT_LE(r.MinDist(q), smin + 1e-9);
    EXPECT_GE(r.MaxDist(q), smax - 1e-9);
    // The bounds are attained at boundary sample points up to grid error.
    EXPECT_NEAR(r.MinDist(q), smin, 0.5);
    EXPECT_NEAR(r.MaxDist(q), smax, 0.5);
  }
}

TEST(RectTest, Corners) {
  const Rect r({0, 1}, {2, 3});
  EXPECT_EQ(r.Corner(0), Vec2(0, 1));
  EXPECT_EQ(r.Corner(1), Vec2(2, 1));
  EXPECT_EQ(r.Corner(2), Vec2(2, 3));
  EXPECT_EQ(r.Corner(3), Vec2(0, 3));
}

TEST(RectTest, CenteredSquare) {
  const Rect r = Rect::CenteredSquare({1, 1}, 2.0);
  EXPECT_EQ(r.lo, Vec2(0, 0));
  EXPECT_EQ(r.hi, Vec2(2, 2));
}

TEST(CircleTest, ContainsAndDistances) {
  const Circle c({0, 0}, 2.0);
  EXPECT_TRUE(c.Contains({0, 2}));
  EXPECT_TRUE(c.Contains({1.2, 1.2}));
  EXPECT_FALSE(c.Contains({1.5, 1.5}));
  EXPECT_DOUBLE_EQ(c.MinDist({5, 0}), 3.0);
  EXPECT_DOUBLE_EQ(c.MinDist({1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(c.MaxDist({5, 0}), 7.0);
}

TEST(CircleTest, InscribedSquareIsInside) {
  const Circle c({3, -2}, 1.7);
  const Rect sq = c.InscribedSquare();
  for (int i = 0; i < 4; ++i) {
    EXPECT_LE(Dist(sq.Corner(i), c.center), c.radius + 1e-12);
  }
  EXPECT_NEAR(sq.Width(), 1.7 * std::sqrt(2.0), 1e-12);
}

// --- Focal difference (hyperbola) minimization -----------------------------

double BruteForceMinFocalDiff(const Point& p_other, const Point& p_opt,
                              const Rect& r, int grid = 160) {
  double best = 1e300;
  for (int i = 0; i <= grid; ++i) {
    for (int j = 0; j <= grid; ++j) {
      const Point l{r.lo.x + r.Width() * i / grid,
                    r.lo.y + r.Height() * j / grid};
      best = std::min(best, FocalDiff(p_other, p_opt, l));
    }
  }
  return best;
}

TEST(FocalDiffTest, DegenerateEqualFoci) {
  const Rect r({0, 0}, {1, 1});
  EXPECT_DOUBLE_EQ(MinFocalDiffOverRect({2, 2}, {2, 2}, r), 0.0);
}

TEST(FocalDiffTest, PaperFigure12Configuration) {
  // po = (1,0), p' = (-1,0); tile on the p' side must have negative minimum
  // close to -||p',po|| when it touches the axis behind p'.
  const Point po{1, 0}, pp{-1, 0};
  const Rect behind({-4, -0.5}, {-2, 0.5});  // crosses the axis behind p'
  EXPECT_NEAR(MinFocalDiffOverRect(pp, po, behind), -2.0, 1e-12);
  const Rect beyond({2, -0.5}, {4, 0.5});  // beyond po: g = +2 on the axis
  const double v = MinFocalDiffOverRect(pp, po, beyond);
  EXPECT_NEAR(v, BruteForceMinFocalDiff(pp, po, beyond), 1e-3);
}

TEST(FocalDiffTest, MatchesBruteForceOnRandomRects) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const Point po{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    Point pp{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    if (pp == po) pp.x += 1.0;
    const Point lo{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
    const Rect r(lo, {lo.x + rng.Uniform(0.05, 4), lo.y + rng.Uniform(0.05, 4)});
    const double exact = MinFocalDiffOverRect(pp, po, r);
    const double sampled = BruteForceMinFocalDiff(pp, po, r);
    // Exact must lower-bound any sampled value and be close to the best one.
    EXPECT_LE(exact, sampled + 1e-9) << "trial " << trial;
    EXPECT_NEAR(exact, sampled, 0.08) << "trial " << trial;
  }
}

TEST(FocalDiffTest, BoundedByFocalDistance) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const Point po{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    Point pp{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    if (pp == po) pp.y += 0.5;
    const Point lo{rng.Uniform(-8, 8), rng.Uniform(-8, 8)};
    const Rect r(lo, {lo.x + rng.Uniform(0.1, 6), lo.y + rng.Uniform(0.1, 6)});
    const double d = Dist(pp, po);
    const double v = MinFocalDiffOverRect(pp, po, r);
    EXPECT_GE(v, -d - 1e-9);
    EXPECT_LE(v, d + 1e-9);
  }
}

// --- SoA lane kernels (geom/lanes.h) ---------------------------------------

std::vector<Rect> RandomRects(Rng* rng, size_t n) {
  std::vector<Rect> rects;
  for (size_t i = 0; i < n; ++i) {
    const Point lo{rng->Uniform(-50, 50), rng->Uniform(-50, 50)};
    rects.push_back(
        Rect(lo, {lo.x + rng->Uniform(0.0, 20), lo.y + rng->Uniform(0.0, 20)}));
  }
  return rects;
}

struct SoaRects {
  std::vector<double> lo_x, lo_y, hi_x, hi_y;
  RectLanes lanes() const {
    return RectLanes{lo_x.data(), lo_y.data(), hi_x.data(), hi_y.data(),
                     lo_x.size()};
  }
};

SoaRects ToSoa(const std::vector<Rect>& rects) {
  SoaRects s;
  for (const Rect& r : rects) {
    s.lo_x.push_back(r.lo.x);
    s.lo_y.push_back(r.lo.y);
    s.hi_x.push_back(r.hi.x);
    s.hi_y.push_back(r.hi.y);
  }
  return s;
}

TEST(LanesTest, RectDistLanesBitIdenticalToScalarPredicates) {
  Rng rng(0x1a9e5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto rects = RandomRects(&rng, 1 + static_cast<size_t>(trial % 9));
    const SoaRects soa = ToSoa(rects);
    const Point p{rng.Uniform(-60, 60), rng.Uniform(-60, 60)};
    std::vector<double> mn(rects.size()), mx(rects.size());
    RectMinDistLanes(soa.lanes(), p, mn.data());
    RectMaxDistLanes(soa.lanes(), p, mx.data());
    double fold_min = std::numeric_limits<double>::infinity();
    double fold_max = 0.0;
    for (size_t i = 0; i < rects.size(); ++i) {
      // Bit-identical, not approximately equal: the kernels must perform
      // the exact IEEE operations of the scalar predicates.
      ASSERT_EQ(mn[i], rects[i].MinDist(p)) << "lane " << i;
      ASSERT_EQ(mx[i], rects[i].MaxDist(p)) << "lane " << i;
      fold_min = std::min(fold_min, mn[i]);
      fold_max = std::max(fold_max, mx[i]);
    }
    ASSERT_EQ(RectMinDistReduce(soa.lanes(), p), fold_min);
    ASSERT_EQ(RectMaxDistReduce(soa.lanes(), p), fold_max);
  }
}

TEST(LanesTest, ReduceIdentitiesOnEmptyInput) {
  const RectLanes empty;
  EXPECT_EQ(RectMinDistReduce(empty, {0, 0}),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(RectMaxDistReduce(empty, {0, 0}), 0.0);
}

TEST(LanesTest, CircleLanesMatchScalarCircle) {
  Rng rng(0xC1AC1E);
  const size_t n = 32;
  std::vector<double> cx, cy, rr;
  std::vector<Circle> circles;
  for (size_t i = 0; i < n; ++i) {
    const Point c{rng.Uniform(-50, 50), rng.Uniform(-50, 50)};
    const double radius = rng.Uniform(0.1, 10.0);
    circles.push_back({c, radius});
    cx.push_back(c.x);
    cy.push_back(c.y);
    rr.push_back(radius);
  }
  const Point p{rng.Uniform(-60, 60), rng.Uniform(-60, 60)};
  std::vector<double> mn(n), mx(n);
  CircleMinDistLanes(cx.data(), cy.data(), rr.data(), n, p, mn.data());
  CircleMaxDistLanes(cx.data(), cy.data(), rr.data(), n, p, mx.data());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(mn[i], circles[i].MinDist(p));
    ASSERT_EQ(mx[i], circles[i].MaxDist(p));
  }
}

TEST(LanesTest, SqrtThresholdsMoveComparesToSquaredDomainExactly) {
  // The defining property, checked exhaustively around the boundary: for
  // every t >= 0, sqrt(t) <= z  <=>  t <= SqrtLeqThreshold(z), and
  // sqrt(t) < y  <=>  t <= SqrtLtThreshold(y). Probing several ulps on
  // both sides of each threshold covers exactly the near-tie squares where
  // a naive t <= z*z compare goes wrong.
  Rng rng(0x5157);
  std::vector<double> values = {0.0, 1.0, 2.0, 1e-300, 1e300, 0.1};
  for (int i = 0; i < 200; ++i) {
    values.push_back(rng.Uniform(0.0, 1e6));
    values.push_back(rng.Uniform(0.0, 1e-3));
  }
  for (const double z : values) {
    const double t_le = SqrtLeqThreshold(z);
    const double t_lt = SqrtLtThreshold(z);
    double probe = t_le;
    for (int step = 0; step < 4; ++step) {
      if (probe >= 0.0) {
        EXPECT_EQ(std::sqrt(probe) <= z, probe <= t_le) << "z=" << z;
        EXPECT_EQ(std::sqrt(probe) < z, probe <= t_lt) << "z=" << z;
      }
      probe = std::nextafter(probe, 0.0);
    }
    probe = t_le;
    for (int step = 0; step < 4; ++step) {
      probe = std::nextafter(probe, std::numeric_limits<double>::infinity());
      EXPECT_EQ(std::sqrt(probe) <= z, probe <= t_le) << "z=" << z;
    }
    probe = t_lt;
    for (int step = 0; step < 4; ++step) {
      probe = std::nextafter(probe, std::numeric_limits<double>::infinity());
      EXPECT_EQ(std::sqrt(probe) < z, probe <= t_lt) << "z=" << z;
    }
  }
  // Degenerate and boundary arguments.
  EXPECT_EQ(SqrtLtThreshold(0.0), -1.0);    // sqrt(t) < 0 never holds
  EXPECT_EQ(SqrtLeqThreshold(-1.0), -1.0);  // negative target: empty set
  EXPECT_EQ(SqrtLeqThreshold(0.0), 0.0);    // only t == 0
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(SqrtLeqThreshold(inf), inf);
  EXPECT_EQ(SqrtLtThreshold(inf), std::numeric_limits<double>::max());
}

TEST(FocalDiffTest, UpperBoundIsConservative) {
  Rng rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    const Point po{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Point pp{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Point lo{rng.Uniform(-8, 8), rng.Uniform(-8, 8)};
    const Rect r(lo, {lo.x + rng.Uniform(0.1, 6), lo.y + rng.Uniform(0.1, 6)});
    const double ub = MaxFocalDiffUpperBound(pp, po, r);
    for (int i = 0; i < 50; ++i) {
      const Point l{rng.Uniform(r.lo.x, r.hi.x), rng.Uniform(r.lo.y, r.hi.y)};
      EXPECT_GE(ub, FocalDiff(pp, po, l) - 1e-9);
    }
  }
}

}  // namespace
}  // namespace mpn
