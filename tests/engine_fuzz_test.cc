// Deterministic lifecycle fuzzer (ctest label `unit`): seeded random
// schedules of admit / retire / recompute-cost / mailbox-capacity /
// mailbox-policy churn, replayed at 1/2/4 threads and at 1/2/4 process
// shards — with seeded worker crashes AND transport faults (0-2 each:
// short I/O, EINTR storms, frame corruption/truncation, stalls, resets,
// over a seed-chosen byte backend) injected into the cluster replays —
// asserting digest bit-identity on every seed.
//
// Each seed derives (a) a small world and (b) a plan: sessions with random
// tunings (mailbox capacity incl. 0, drop-oldest mailboxes, deterministic
// retire_at truncations, wall-clock-only recompute padding), assigned to
// admission waves that are drained by serving-loop Wait() calls, plus
// deterministic pre-start RetireSession truncations, 0–2 crash events
// (shard slot, virtual kill timestamp) armed via KillWorkerAt and 0–2
// transport-fault events (shard slot, frame index, kind) armed via
// InjectFaultAt. Every run admits in the same logical order, so the
// digest must be bit-identical no matter how the work is scheduled —
// across thread counts in one process, across worker processes in a
// cluster, across byte backends, and across supervised worker deaths or
// transport faults recovered by snapshot replay.
//
// The world/plan machinery is shared with kernel_differential_test.cc via
// engine_fuzz_util.h.
//
// The fixed seed list below is what ctest runs; set MPN_FUZZ_SEEDS to
// widen locally (a count, e.g. MPN_FUZZ_SEEDS=32, or an explicit
// comma-separated list of seeds) and run the binary directly:
//   MPN_FUZZ_SEEDS=32 ./tests/engine_fuzz_test
// (ctest registers the test names discovered at build time, so the
// widened set is only addressable through the binary.)
#include <gtest/gtest.h>

#include "engine_fuzz_util.h"

namespace mpn {
namespace {

using fuzz::FuzzPlan;
using fuzz::MakeFuzzPlan;
using fuzz::MakeFuzzWorld;
using fuzz::RunClusterPlan;
using fuzz::RunEnginePlan;
using fuzz::World;

std::vector<uint64_t> FuzzSeeds() {
  return fuzz::SeedsFromEnv("MPN_FUZZ_SEEDS",
                            {0xF0221A01, 0xF0221A02, 0xF0221A03});
}

class EngineFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(EngineFuzzTest, DigestBitIdenticalAcrossThreadsAndShards) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t n_groups = static_cast<size_t>(rng.UniformInt(3, 6));
  const size_t group_size = static_cast<size_t>(rng.UniformInt(1, 3));
  const size_t horizon = static_cast<size_t>(rng.UniformInt(40, 90));
  const World w = MakeFuzzWorld(&rng, n_groups, group_size, horizon);
  const FuzzPlan plan = MakeFuzzPlan(&rng, n_groups, horizon);

  const uint64_t reference = RunEnginePlan(w, plan, 1);
  for (size_t threads : {2u, 4u}) {
    EXPECT_EQ(RunEnginePlan(w, plan, threads), reference)
        << "engine digest diverged at " << threads << " threads (seed 0x"
        << std::hex << seed << ")";
  }
  for (size_t workers : {1u, 2u, 4u}) {
    EXPECT_EQ(RunClusterPlan(w, plan, workers, 2), reference)
        << "cluster digest diverged at " << workers << " worker(s) (seed 0x"
        << std::hex << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         testing::ValuesIn(FuzzSeeds()), fuzz::SeedName);

}  // namespace
}  // namespace mpn
