// Deterministic lifecycle fuzzer (ctest label `unit`): seeded random
// schedules of admit / retire / recompute-cost / mailbox-capacity /
// mailbox-policy churn, replayed at 1/2/4 threads and at 1/2/4 process
// shards — with seeded worker crashes injected into the cluster replays —
// asserting digest bit-identity on every seed.
//
// Each seed derives (a) a small world and (b) a plan: sessions with random
// tunings (mailbox capacity incl. 0, drop-oldest mailboxes, deterministic
// retire_at truncations, wall-clock-only recompute padding), assigned to
// admission waves that are drained by serving-loop Wait() calls, plus
// deterministic pre-start RetireSession truncations and 0–2 crash events
// (shard slot, virtual kill timestamp) armed via KillWorkerAt. Every run
// admits in the same logical order, so the digest must be bit-identical no
// matter how the work is scheduled — across thread counts in one process,
// across worker processes in a cluster, and across supervised worker
// deaths recovered by snapshot replay.
//
// The fixed seed list below is what ctest runs; set MPN_FUZZ_SEEDS to
// widen locally (a count, e.g. MPN_FUZZ_SEEDS=32, or an explicit
// comma-separated list of seeds) and run the binary directly:
//   MPN_FUZZ_SEEDS=32 ./tests/engine_fuzz_test
// (ctest registers the test names discovered at build time, so the
// widened set is only addressable through the binary.)
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "engine/cluster.h"
#include "engine/engine.h"
#include "traj/generators.h"
#include "util/rng.h"

namespace mpn {
namespace {

const Rect kWorld({0, 0}, {20000, 20000});

struct World {
  std::vector<Point> pois;
  RTree tree;
  std::vector<Trajectory> trajs;
  size_t group_size = 0;
};

/// One planned session: which trajectories, which tuning, which admission
/// wave, and an optional deterministic pre-start retirement.
struct PlannedSession {
  size_t group = 0;
  SessionTuning tuning;
  size_t wave = 0;
  bool prestart_retire = false;
  size_t prestart_retire_at = 0;
};

/// One planned worker death for the cluster replays: shard_slot folds onto
/// the actual shard count (shard_slot % workers), the timestamp is the
/// deterministic virtual kill point (ClusterEngine::KillWorkerAt).
struct PlannedCrash {
  size_t shard_slot = 0;
  size_t timestamp = 0;
};

struct FuzzPlan {
  size_t waves = 1;
  size_t horizon = 0;
  /// Per wave: drain (serving-loop Wait) before admitting it, or pour the
  /// admissions in mid-run while earlier sessions are still draining.
  std::vector<uint8_t> drain_before;
  std::vector<PlannedSession> sessions;
  std::vector<PlannedCrash> crashes;
};

World MakeFuzzWorld(Rng* rng, size_t n_groups, size_t group_size,
                    size_t timestamps) {
  World w;
  w.group_size = group_size;
  PoiOptions popt;
  popt.world = kWorld;
  popt.clusters = static_cast<size_t>(rng->UniformInt(4, 16));
  w.pois = GeneratePois(static_cast<size_t>(rng->UniformInt(120, 280)), popt,
                        rng);
  w.tree = RTree::BulkLoad(w.pois);
  RandomWalkGenerator::Options wopt;
  wopt.world = kWorld;
  wopt.mean_speed = rng->Uniform(30.0, 90.0);
  const RandomWalkGenerator gen(wopt);
  w.trajs = gen.GenerateGroupedFleet(n_groups * group_size, group_size,
                                     rng->Uniform(300.0, 900.0), timestamps,
                                     rng);
  return w;
}

FuzzPlan MakeFuzzPlan(Rng* rng, size_t n_groups, size_t horizon) {
  FuzzPlan plan;
  plan.waves = static_cast<size_t>(rng->UniformInt(1, 3));
  plan.horizon = horizon;
  plan.drain_before.assign(plan.waves, 0);
  for (size_t wave = 1; wave < plan.waves; ++wave) {
    plan.drain_before[wave] = rng->Bernoulli(0.5) ? 1 : 0;
  }
  for (size_t g = 0; g < n_groups; ++g) {
    PlannedSession s;
    s.group = g;
    s.wave = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(plan.waves) - 1));
    const size_t capacities[] = {0, 1, 2, 16};
    s.tuning.mailbox_capacity =
        capacities[static_cast<size_t>(rng->UniformInt(0, 3))];
    if (rng->Bernoulli(0.3)) {
      // Drop-oldest backpressure: overflowing payloads are dropped and
      // force-recomputed at replay — a digest no-op by construction.
      s.tuning.mailbox_policy = MailboxPolicy::kDropOldest;
    }
    if (rng->Bernoulli(0.3)) {
      // Deterministic retirement churn: truncated horizon at admission.
      s.tuning.retire_at = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(horizon)));
    }
    if (rng->Bernoulli(0.25)) {
      // Wall-clock-only straggler injection; must never move the digest.
      s.tuning.recompute_cost_factor = rng->Uniform(1.5, 3.0);
    }
    if (s.wave == 0 && rng->Bernoulli(0.2)) {
      // Retire through the API instead of the tuning — deterministic
      // because it lands before Start.
      s.prestart_retire = true;
      s.prestart_retire_at = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(horizon)));
    }
    plan.sessions.push_back(s);
  }
  const size_t n_crashes = static_cast<size_t>(rng->UniformInt(0, 2));
  for (size_t i = 0; i < n_crashes; ++i) {
    PlannedCrash crash;
    crash.shard_slot = static_cast<size_t>(rng->UniformInt(0, 3));
    crash.timestamp = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(horizon)));
    plan.crashes.push_back(crash);
  }
  return plan;
}

std::vector<const Trajectory*> GroupOf(const World& w, size_t g) {
  std::vector<const Trajectory*> group;
  for (size_t i = 0; i < w.group_size; ++i) {
    group.push_back(&w.trajs[g * w.group_size + i]);
  }
  return group;
}

EngineOptions MakeEngineOptions(size_t threads) {
  EngineOptions opt;
  opt.threads = threads;
  opt.sim.server.method = Method::kTileD;
  opt.sim.server.alpha = 10;
  return opt;
}

/// Replays the plan on `engine_like` (Engine or ClusterEngine share the
/// lifecycle API): wave 0 before Start, later waves between serving-loop
/// Wait() drains, Shutdown at the end. Admission order is the plan order
/// within each wave, so the digest stream is identical across replays.
template <typename EngineLike>
uint64_t Replay(EngineLike* engine, const World& w, const FuzzPlan& plan) {
  std::vector<uint32_t> ids(plan.sessions.size(), 0);
  const auto admit_wave = [&](size_t wave) {
    for (size_t i = 0; i < plan.sessions.size(); ++i) {
      const PlannedSession& s = plan.sessions[i];
      if (s.wave != wave) continue;
      ids[i] = engine->AdmitSession(GroupOf(w, s.group), s.tuning);
      if (s.prestart_retire) {
        engine->RetireSession(ids[i], s.prestart_retire_at);
      }
    }
  };
  admit_wave(0);
  engine->Start();
  for (size_t wave = 1; wave < plan.waves; ++wave) {
    // Either drain first (serving-loop rounds) or admit mid-run while
    // earlier sessions are still going — the digest must not care.
    if (plan.drain_before[wave] != 0) engine->Wait();
    admit_wave(wave);
  }
  engine->Shutdown();
  return engine->ResultDigest();
}

uint64_t RunEnginePlan(const World& w, const FuzzPlan& plan, size_t threads) {
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(threads));
  return Replay(&engine, w, plan);
}

uint64_t RunClusterPlan(const World& w, const FuzzPlan& plan, size_t workers,
                        size_t threads) {
  ClusterOptions opt;
  opt.workers = workers;
  opt.engine = MakeEngineOptions(threads);
  // Both planned crashes can fold onto one shard (killing its replacement
  // too); keep the budget above that so every seeded death recovers.
  opt.recovery.max_restarts = 4;
  ClusterEngine cluster(&w.pois, &w.tree, opt);
  for (const PlannedCrash& crash : plan.crashes) {
    cluster.KillWorkerAt(crash.shard_slot % workers, crash.timestamp);
  }
  return Replay(&cluster, w, plan);
}

/// Seed list: the fixed ctest set, widened via MPN_FUZZ_SEEDS (a count or
/// an explicit comma-separated list).
std::vector<uint64_t> FuzzSeeds() {
  std::vector<uint64_t> seeds = {0xF0221A01, 0xF0221A02, 0xF0221A03};
  const char* env = std::getenv("MPN_FUZZ_SEEDS");
  if (env == nullptr || *env == '\0') return seeds;
  const std::string spec(env);
  if (spec.find(',') != std::string::npos) {
    seeds.clear();
    size_t pos = 0;
    while (pos < spec.size()) {
      const size_t comma = spec.find(',', pos);
      const std::string tok =
          spec.substr(pos, comma == std::string::npos ? spec.npos
                                                      : comma - pos);
      if (!tok.empty()) seeds.push_back(std::strtoull(tok.c_str(), nullptr, 0));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return seeds;
  }
  const unsigned long long count = std::strtoull(spec.c_str(), nullptr, 0);
  seeds.clear();
  for (unsigned long long i = 0; i < count; ++i) {
    seeds.push_back(0xF0221A01ULL + i);
  }
  return seeds;
}

class EngineFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(EngineFuzzTest, DigestBitIdenticalAcrossThreadsAndShards) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t n_groups = static_cast<size_t>(rng.UniformInt(3, 6));
  const size_t group_size = static_cast<size_t>(rng.UniformInt(1, 3));
  const size_t horizon = static_cast<size_t>(rng.UniformInt(40, 90));
  const World w = MakeFuzzWorld(&rng, n_groups, group_size, horizon);
  const FuzzPlan plan = MakeFuzzPlan(&rng, n_groups, horizon);

  const uint64_t reference = RunEnginePlan(w, plan, 1);
  for (size_t threads : {2u, 4u}) {
    EXPECT_EQ(RunEnginePlan(w, plan, threads), reference)
        << "engine digest diverged at " << threads << " threads (seed 0x"
        << std::hex << seed << ")";
  }
  for (size_t workers : {1u, 2u, 4u}) {
    EXPECT_EQ(RunClusterPlan(w, plan, workers, 2), reference)
        << "cluster digest diverged at " << workers << " worker(s) (seed 0x"
        << std::hex << seed << ")";
  }
}

std::string SeedName(const testing::TestParamInfo<uint64_t>& info) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seed_%llx",
                static_cast<unsigned long long>(info.param));
  return buf;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         testing::ValuesIn(FuzzSeeds()), SeedName);

}  // namespace
}  // namespace mpn
