// Memory-budgeted session store: snapshot codec round trips at the engine
// boundary, malformed-input rejection, and — the load-bearing property —
// digest bit-identity between budgeted and unbudgeted runs for any cap,
// with the spill/rehydrate counters proving the out-of-core path actually
// ran. The codec tests pin IEEE-754 edge cases (-0.0, denormals, NaN bit
// patterns) because the digest folds raw double bits: a codec that
// canonicalizes them would pass value-equality tests and still break
// digest neutrality.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "engine/memory_budget.h"
#include "engine/session_codec.h"
#include "engine_fuzz_util.h"

namespace mpn {
namespace {

// --- helpers ---------------------------------------------------------------

uint64_t Bits(double d) {
  uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

#define EXPECT_SAME_BITS(a, b) EXPECT_EQ(Bits(a), Bits(b))

// A denormal (subnormal) double: smallest positive representable value.
const double kDenormal = std::numeric_limits<double>::denorm_min();
// A quiet NaN with a recognizable payload; must survive the wire verbatim.
double PayloadNan() {
  const uint64_t u = 0x7ff8dead'beef0001ull;
  double d = 0.0;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

SimMetrics MakeOddMetrics() {
  SimMetrics m;
  m.timestamps = 41;
  m.updates = 17;
  m.result_changes = 5;
  m.server_seconds = -0.0;  // sign bit must survive
  m.comm.AddRaw(MessageType::kLocationUpdate, 3, 4, 5);
  m.comm.AddRaw(MessageType::kProbe, 6, 7, 8);
  m.comm.AddRaw(MessageType::kProbeReply, 9, 10, 11);
  m.comm.AddRaw(MessageType::kResult, 12, 13, 14);
  m.msr.tiles_tried = 100;
  m.msr.tiles_added = 90;
  m.msr.divide_calls = 80;
  m.msr.verify.calls = 70;
  m.msr.verify.accepted = 60;
  m.msr.verify.tile_groups = 50;
  m.msr.verify.focal_evals = 40;
  m.msr.verify.memo_hits = 30;
  m.msr.candidates.retrievals = 20;
  m.msr.candidates.candidates_total = 10;
  m.msr.candidates.rejected_by_buffer = 1;
  m.msr.rtree_node_accesses = 12345;
  return m;
}

// `compare_timings` bit-compares server_seconds too — right for codec
// round trips (same in-process value), wrong across independent runs
// (it accumulates wall-clock time).
void ExpectMetricsEqual(const SimMetrics& a, const SimMetrics& b,
                        bool compare_timings = true) {
  EXPECT_EQ(a.timestamps, b.timestamps);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.result_changes, b.result_changes);
  if (compare_timings) {
    EXPECT_SAME_BITS(a.server_seconds, b.server_seconds);
  }
  for (size_t t = 0; t < kMessageTypeCount; ++t) {
    const MessageType mt = static_cast<MessageType>(t);
    EXPECT_EQ(a.comm.messages(mt), b.comm.messages(mt));
    EXPECT_EQ(a.comm.packets(mt), b.comm.packets(mt));
    EXPECT_EQ(a.comm.values(mt), b.comm.values(mt));
  }
  EXPECT_EQ(a.msr.tiles_tried, b.msr.tiles_tried);
  EXPECT_EQ(a.msr.tiles_added, b.msr.tiles_added);
  EXPECT_EQ(a.msr.divide_calls, b.msr.divide_calls);
  EXPECT_EQ(a.msr.verify.calls, b.msr.verify.calls);
  EXPECT_EQ(a.msr.verify.accepted, b.msr.verify.accepted);
  EXPECT_EQ(a.msr.verify.tile_groups, b.msr.verify.tile_groups);
  EXPECT_EQ(a.msr.verify.focal_evals, b.msr.verify.focal_evals);
  EXPECT_EQ(a.msr.verify.memo_hits, b.msr.verify.memo_hits);
  EXPECT_EQ(a.msr.candidates.retrievals, b.msr.candidates.retrievals);
  EXPECT_EQ(a.msr.candidates.candidates_total,
            b.msr.candidates.candidates_total);
  EXPECT_EQ(a.msr.candidates.rejected_by_buffer,
            b.msr.candidates.rejected_by_buffer);
  EXPECT_EQ(a.msr.rtree_node_accesses, b.msr.rtree_node_accesses);
}

// --- MPN_MEMORY_BUDGET spec parsing ----------------------------------------

TEST(MemoryBudgetTest, ParseSpec) {
  EXPECT_EQ(ParseMemoryBudgetBytes(nullptr), 0u);
  EXPECT_EQ(ParseMemoryBudgetBytes(""), 0u);
  EXPECT_EQ(ParseMemoryBudgetBytes("12345"), 12345u);
  EXPECT_EQ(ParseMemoryBudgetBytes("64k"), 64u * 1024);
  EXPECT_EQ(ParseMemoryBudgetBytes("64K"), 64u * 1024);
  EXPECT_EQ(ParseMemoryBudgetBytes("2m"), 2u * 1024 * 1024);
  EXPECT_EQ(ParseMemoryBudgetBytes("2M"), 2u * 1024 * 1024);
  EXPECT_EQ(ParseMemoryBudgetBytes("1g"), 1024u * 1024 * 1024);
  EXPECT_EQ(ParseMemoryBudgetBytes("1G"), 1024u * 1024 * 1024);
  EXPECT_EQ(ParseMemoryBudgetBytes("0"), 0u);
  // Garbage and trailing junk mean "no budget", never a partial parse.
  EXPECT_EQ(ParseMemoryBudgetBytes("k64"), 0u);
  EXPECT_EQ(ParseMemoryBudgetBytes("64kb"), 0u);
  EXPECT_EQ(ParseMemoryBudgetBytes("lots"), 0u);
}

// --- codec round trips at the engine boundary ------------------------------

TEST(SessionCodecTest, MetricsRoundTripIsBitExact) {
  const SimMetrics m = MakeOddMetrics();
  WireBuffer out;
  WriteMetrics(&out, m);
  WireReader r(out.data());
  const SimMetrics back = ReadMetrics(&r);
  EXPECT_TRUE(r.AtEnd());
  ExpectMetricsEqual(m, back);
}

TEST(SessionCodecTest, CircleRegionRoundTripKeepsIeeeBitPatterns) {
  const SafeRegion region =
      SafeRegion::MakeCircle(Circle{{-0.0, kDenormal}, PayloadNan()});
  WireBuffer out;
  WriteSafeRegion(&out, region);
  WireReader r(out.data());
  const SafeRegion back = ReadSafeRegion(&r);
  EXPECT_TRUE(r.AtEnd());
  ASSERT_TRUE(back.is_circle());
  EXPECT_SAME_BITS(region.circle().center.x, back.circle().center.x);
  EXPECT_SAME_BITS(region.circle().center.y, back.circle().center.y);
  EXPECT_SAME_BITS(region.circle().radius, back.circle().radius);
}

TEST(SessionCodecTest, TileRegionRoundTripIsExact) {
  // Anchor with sign-bit/denormal coordinates; tiles spread across levels
  // and quadrants (negative indices included) so the per-level windows are
  // non-trivial.
  TileRegion tiles = TileRegion::FromOrigin({-0.0, kDenormal}, 128.0);
  tiles.Add(GridTile{0, 0, 0});
  tiles.Add(GridTile{1, -1, 2});
  tiles.Add(GridTile{1, 3, -2});
  tiles.Add(GridTile{3, -5, 7});
  const SafeRegion region = SafeRegion::MakeTiles(std::move(tiles));
  WireBuffer out;
  WriteSafeRegion(&out, region);
  WireReader r(out.data());
  const SafeRegion back = ReadSafeRegion(&r);
  EXPECT_TRUE(r.AtEnd());
  ASSERT_FALSE(back.is_circle());
  EXPECT_SAME_BITS(region.tiles().origin().x, back.tiles().origin().x);
  EXPECT_SAME_BITS(region.tiles().origin().y, back.tiles().origin().y);
  EXPECT_SAME_BITS(region.tiles().delta(), back.tiles().delta());
  ASSERT_EQ(region.tiles().size(), back.tiles().size());
  for (size_t i = 0; i < region.tiles().size(); ++i) {
    // The bitmap codec may reorder tiles canonically; membership must be
    // exact either way.
    const GridTile& t = region.tiles().tiles()[i];
    bool found = false;
    for (const GridTile& u : back.tiles().tiles()) found |= (t == u);
    EXPECT_TRUE(found) << "tile " << i << " lost in round trip";
  }
}

TEST(SessionCodecTest, EmptyTileRegionRoundTrips) {
  const SafeRegion region =
      SafeRegion::MakeTiles(TileRegion::FromOrigin({3.5, -7.25}, 64.0));
  WireBuffer out;
  WriteSafeRegion(&out, region);
  WireReader r(out.data());
  const SafeRegion back = ReadSafeRegion(&r);
  EXPECT_TRUE(r.AtEnd());
  ASSERT_FALSE(back.is_circle());
  EXPECT_TRUE(back.tiles().empty());
  EXPECT_SAME_BITS(region.tiles().delta(), back.tiles().delta());
}

TEST(SessionCodecTest, FinalSnapshotRoundTripIsExact) {
  SessionFinalResult fr;
  fr.metrics = MakeOddMetrics();
  fr.has_result = true;
  fr.po = 0xDEADBEEF;
  fr.mailbox_peak = 7;
  fr.stall_count = 3;
  fr.dropped_count = 2;
  fr.advance_seconds = {0.0, -0.0, kDenormal, PayloadNan(), 1.5e-300};
  WireBuffer out;
  EncodeFinalSession(fr, &out);
  WireReader r(out.data());
  ASSERT_EQ(ReadSnapshotHeader(&r), SnapshotKind::kFinal);
  const SessionFinalResult back = DecodeFinalSession(&r);
  EXPECT_TRUE(r.AtEnd());
  ExpectMetricsEqual(fr.metrics, back.metrics);
  EXPECT_EQ(back.has_result, true);
  EXPECT_EQ(back.po, 0xDEADBEEFu);
  EXPECT_EQ(back.mailbox_peak, 7u);
  EXPECT_EQ(back.stall_count, 3u);
  EXPECT_EQ(back.dropped_count, 2u);
  ASSERT_EQ(back.advance_seconds.size(), fr.advance_seconds.size());
  for (size_t i = 0; i < fr.advance_seconds.size(); ++i) {
    EXPECT_SAME_BITS(fr.advance_seconds[i], back.advance_seconds[i]);
  }
}

TEST(SessionCodecTest, LiveSnapshotRoundTripIsExact) {
  GroupSession::State s;
  s.next_t = 3;
  s.retire_at = 17;
  s.has_result = true;
  s.current_po = 42;
  s.mailbox_peak = 2;
  s.stall_count = 1;
  s.dropped_count = 0;
  s.metrics = MakeOddMetrics();
  s.server.compute_seconds = kDenormal;
  s.server.recompute_count = 9;
  s.server.stats.tiles_tried = 11;
  MpnClient::State c0;
  c0.location = {-0.0, 1e-310};
  c0.moved = true;
  c0.heading = PayloadNan();
  c0.recent_headings = {0.25, -0.0, kDenormal};
  c0.has_region = true;
  c0.region = SafeRegion::MakeCircle(Circle{{1.0, 2.0}, 3.0});
  MpnClient::State c1;  // no region yet — has_region gate must hold
  c1.location = {5.0, 6.0};
  s.clients = {c0, c1};
  s.messages_at = {4, 0, 2};
  s.violated_at = {1, 0, 1};
  s.advance_at = {0.5, -0.0, kDenormal};
  s.seconds_at = {1e-3, 2e-3, 3e-3};

  WireBuffer out;
  EncodeLiveSession(s, &out);
  WireReader r(out.data());
  ASSERT_EQ(ReadSnapshotHeader(&r), SnapshotKind::kLive);
  const GroupSession::State back = DecodeLiveSession(&r);
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(back.next_t, 3u);
  EXPECT_EQ(back.retire_at, 17u);
  EXPECT_EQ(back.has_result, true);
  EXPECT_EQ(back.current_po, 42u);
  EXPECT_EQ(back.mailbox_peak, 2u);
  EXPECT_EQ(back.stall_count, 1u);
  EXPECT_EQ(back.dropped_count, 0u);
  ExpectMetricsEqual(s.metrics, back.metrics);
  EXPECT_SAME_BITS(s.server.compute_seconds, back.server.compute_seconds);
  EXPECT_EQ(back.server.recompute_count, 9u);
  EXPECT_EQ(back.server.stats.tiles_tried, 11u);
  ASSERT_EQ(back.clients.size(), 2u);
  EXPECT_SAME_BITS(c0.location.x, back.clients[0].location.x);
  EXPECT_SAME_BITS(c0.location.y, back.clients[0].location.y);
  EXPECT_EQ(back.clients[0].moved, true);
  EXPECT_SAME_BITS(c0.heading, back.clients[0].heading);
  ASSERT_EQ(back.clients[0].recent_headings.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_SAME_BITS(c0.recent_headings[i], back.clients[0].recent_headings[i]);
  }
  ASSERT_TRUE(back.clients[0].has_region);
  ASSERT_TRUE(back.clients[0].region.is_circle());
  EXPECT_SAME_BITS(c0.region.circle().radius,
                   back.clients[0].region.circle().radius);
  EXPECT_FALSE(back.clients[1].has_region);
  EXPECT_EQ(back.messages_at, s.messages_at);
  EXPECT_EQ(back.violated_at, s.violated_at);
  ASSERT_EQ(back.advance_at.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_SAME_BITS(s.advance_at[i], back.advance_at[i]);
    EXPECT_SAME_BITS(s.seconds_at[i], back.seconds_at[i]);
  }
}

// --- malformed input rejection ---------------------------------------------

TEST(SessionCodecTest, RejectsUnsupportedVersionAndKind) {
  {
    WireBuffer out;
    out.PutU8(kSessionSnapshotVersion + 1);
    out.PutU8(0);
    WireReader r(out.data());
    EXPECT_THROW(ReadSnapshotHeader(&r), FrameError);
  }
  {
    WireBuffer out;
    out.PutU8(kSessionSnapshotVersion);
    out.PutU8(99);  // not a SnapshotKind
    WireReader r(out.data());
    EXPECT_THROW(ReadSnapshotHeader(&r), FrameError);
  }
}

TEST(SessionCodecTest, RejectsTruncatedSnapshots) {
  SessionFinalResult fr;
  fr.metrics = MakeOddMetrics();
  fr.has_result = true;
  fr.po = 1;
  fr.advance_seconds = {1.0, 2.0, 3.0};
  WireBuffer out;
  EncodeFinalSession(fr, &out);
  const std::vector<uint8_t>& full = out.data();
  ASSERT_GT(full.size(), 8u);
  // Every proper prefix must throw, never read out of bounds or return a
  // half-decoded result. (ASan leg makes the OOB half observable.)
  for (size_t len : {size_t{0}, size_t{1}, size_t{2}, full.size() / 2,
                     full.size() - 1}) {
    const std::vector<uint8_t> cut(full.begin(), full.begin() + len);
    WireReader r(cut);
    EXPECT_THROW(
        {
          if (ReadSnapshotHeader(&r) == SnapshotKind::kFinal) {
            DecodeFinalSession(&r);
          } else {
            DecodeLiveSession(&r);
          }
        },
        FrameError)
        << "prefix length " << len;
  }
}

TEST(SessionCodecTest, RejectsTraceLengthMismatch) {
  // The per-timestamp traces must carry exactly next_t entries; a snapshot
  // claiming otherwise is corrupt, not silently resizable.
  GroupSession::State s;
  s.next_t = 5;
  s.messages_at = {1, 2};  // 2 != 5
  s.violated_at = {0, 1};
  s.advance_at = {0.0, 0.0};
  s.seconds_at = {0.0, 0.0};
  WireBuffer out;
  EncodeLiveSession(s, &out);
  WireReader r(out.data());
  ASSERT_EQ(ReadSnapshotHeader(&r), SnapshotKind::kLive);
  EXPECT_THROW(DecodeLiveSession(&r), FrameError);
}

// --- budgeted engine: digest neutrality + spill accounting ------------------

struct BudgetRun {
  uint64_t digest = 0;
  MemoryStats mem;
};

BudgetRun RunWithBudget(const fuzz::World& w, const fuzz::FuzzPlan& plan,
                        size_t threads, size_t bytes_cap) {
  EngineOptions opt = fuzz::MakeEngineOptions(threads);
  opt.budget.bytes_cap = bytes_cap;
  Engine engine(&w.pois, w.Index(IndexKind::kDynamic), opt);
  BudgetRun run;
  run.digest = fuzz::Replay(&engine, w, plan);
  run.mem = engine.memory_stats();
  return run;
}

TEST(SessionStoreTest, BudgetIsDigestNeutralAcrossCapsAndThreads) {
  Rng rng(0x5E55'10CAull);
  const fuzz::World w = fuzz::MakeFuzzWorld(&rng, /*n_groups=*/10,
                                            /*group_size=*/3,
                                            /*timestamps=*/24);
  const fuzz::FuzzPlan plan = fuzz::MakeFuzzPlan(&rng, 10, /*horizon=*/24);

  const BudgetRun base = RunWithBudget(w, plan, /*threads=*/1, /*cap=*/0);
  // No budget: nothing may spill, but finalized compaction still accounts.
  EXPECT_EQ(base.mem.spilled_sessions, 0u);
  EXPECT_EQ(base.mem.rehydrated_sessions, 0u);
  EXPECT_EQ(base.mem.spilled_bytes, 0u);
  EXPECT_GT(base.mem.peak_resident_bytes, 0u);
  EXPECT_GE(base.mem.peak_resident_bytes, base.mem.resident_bytes);

  for (const size_t cap : {size_t{1}, size_t{4} * 1024, size_t{1} << 20}) {
    for (const size_t threads : {size_t{1}, size_t{2}}) {
      const BudgetRun run = RunWithBudget(w, plan, threads, cap);
      EXPECT_EQ(run.digest, base.digest)
          << "cap=" << cap << " threads=" << threads;
      if (cap == 1) {
        // A 1-byte cap forces every admitted session out and back at least
        // once; the live round trip is what the digest identity certifies.
        EXPECT_GT(run.mem.spilled_sessions, 0u)
            << "cap=" << cap << " threads=" << threads;
        EXPECT_GT(run.mem.rehydrated_sessions, 0u)
            << "cap=" << cap << " threads=" << threads;
        EXPECT_GT(run.mem.spilled_bytes, 0u);
      }
      EXPECT_GE(run.mem.peak_resident_bytes, run.mem.resident_bytes);
    }
  }
}

TEST(SessionStoreTest, CountersAreDeterministicSingleThreaded) {
  Rng rng(0xC0FFEEull);
  const fuzz::World w = fuzz::MakeFuzzWorld(&rng, 8, 3, 20);
  const fuzz::FuzzPlan plan = fuzz::MakeFuzzPlan(&rng, 8, 20);
  const BudgetRun a = RunWithBudget(w, plan, 1, 2048);
  const BudgetRun b = RunWithBudget(w, plan, 1, 2048);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.mem.spilled_sessions, b.mem.spilled_sessions);
  EXPECT_EQ(a.mem.rehydrated_sessions, b.mem.rehydrated_sessions);
  EXPECT_EQ(a.mem.spilled_bytes, b.mem.spilled_bytes);
  EXPECT_EQ(a.mem.resident_bytes, b.mem.resident_bytes);
  EXPECT_EQ(a.mem.peak_resident_bytes, b.mem.peak_resident_bytes);
}

TEST(SessionStoreTest, RetireWhileSpilledMatchesResidentRetire) {
  // Pre-start retires land while the session sits spilled under a 1-byte
  // cap (AdmitSession rebalances immediately); the pending request must be
  // applied on rehydration exactly as if the session had stayed resident.
  Rng rng(0x7E71'12Eull);
  const fuzz::World w = fuzz::MakeFuzzWorld(&rng, 6, 3, 20);
  fuzz::FuzzPlan plan = fuzz::MakeFuzzPlan(&rng, 6, 20);
  plan.waves = 1;
  plan.drain_before.assign(1, 0);
  for (size_t i = 0; i < plan.sessions.size(); ++i) {
    fuzz::PlannedSession& s = plan.sessions[i];
    s.wave = 0;
    s.prestart_retire = (i % 2 == 0);
    s.prestart_retire_at = i;  // includes retire-at-0 and mid-run points
  }
  const BudgetRun base = RunWithBudget(w, plan, 1, 0);
  const BudgetRun spill = RunWithBudget(w, plan, 1, 1);
  EXPECT_EQ(spill.digest, base.digest);
  EXPECT_GT(spill.mem.spilled_sessions, 0u);
}

TEST(SessionStoreTest, PerSessionAccessorsMatchUnbudgetedRun) {
  // By-value accessors stream through the store; by-reference ones
  // rehydrate-and-pin. Both must serve the same values a budget-free run
  // serves, including for sessions that were spilled when asked.
  Rng rng(0xACCE5501ull);
  const fuzz::World w = fuzz::MakeFuzzWorld(&rng, 6, 3, 16);
  fuzz::FuzzPlan plan = fuzz::MakeFuzzPlan(&rng, 6, 16);
  plan.waves = 1;
  plan.drain_before.assign(1, 0);
  for (fuzz::PlannedSession& s : plan.sessions) s.wave = 0;

  EngineOptions base_opt = fuzz::MakeEngineOptions(1);
  Engine base(&w.pois, w.Index(IndexKind::kDynamic), base_opt);
  fuzz::Replay(&base, w, plan);

  EngineOptions opt = fuzz::MakeEngineOptions(1);
  opt.budget.bytes_cap = 1;
  Engine budgeted(&w.pois, w.Index(IndexKind::kDynamic), opt);
  fuzz::Replay(&budgeted, w, plan);

  for (uint32_t id = 0; id < plan.sessions.size(); ++id) {
    EXPECT_EQ(budgeted.session_po(id), base.session_po(id));
    EXPECT_EQ(budgeted.session_has_result(id), base.session_has_result(id));
    EXPECT_EQ(budgeted.session_mailbox_peak(id), base.session_mailbox_peak(id));
    EXPECT_EQ(budgeted.session_stall_count(id), base.session_stall_count(id));
    EXPECT_EQ(budgeted.session_dropped_count(id),
              base.session_dropped_count(id));
    // By-reference accessors (rehydrate + pin). The advance trace holds
    // wall-clock timings — only its shape is comparable across runs, but
    // serving it at all proves the pinned rehydration path works.
    ExpectMetricsEqual(budgeted.session_metrics(id), base.session_metrics(id),
                       /*compare_timings=*/false);
    const std::vector<double>& badv = budgeted.session_advance_seconds(id);
    const std::vector<double>& radv = base.session_advance_seconds(id);
    ASSERT_EQ(badv.size(), radv.size());
  }
}

TEST(SessionStoreTest, EnvVarArmsTheBudget) {
  Rng rng(0xE17Aull);
  const fuzz::World w = fuzz::MakeFuzzWorld(&rng, 4, 3, 12);
  const fuzz::FuzzPlan plan = fuzz::MakeFuzzPlan(&rng, 4, 12);
  const BudgetRun base = RunWithBudget(w, plan, 1, 0);

  ASSERT_EQ(setenv("MPN_MEMORY_BUDGET", "1", /*overwrite=*/1), 0);
  const BudgetRun env_run = RunWithBudget(w, plan, 1, /*cap=*/0);
  ASSERT_EQ(unsetenv("MPN_MEMORY_BUDGET"), 0);

  EXPECT_EQ(env_run.digest, base.digest);
  EXPECT_GT(env_run.mem.spilled_sessions, 0u);
  EXPECT_GT(env_run.mem.rehydrated_sessions, 0u);

  // An explicit cap wins over the environment.
  ASSERT_EQ(setenv("MPN_MEMORY_BUDGET", "1", 1), 0);
  const BudgetRun explicit_run = RunWithBudget(w, plan, 1, size_t{1} << 30);
  ASSERT_EQ(unsetenv("MPN_MEMORY_BUDGET"), 0);
  EXPECT_EQ(explicit_run.digest, base.digest);
  EXPECT_EQ(explicit_run.mem.spilled_sessions, 0u);
}

TEST(SessionStoreTest, ClusterShardsSpillUnderPerShardBudget) {
  Rng rng(0xC1C5'7E44ull);
  const fuzz::World w = fuzz::MakeFuzzWorld(&rng, 8, 3, 16);
  fuzz::FuzzPlan plan = fuzz::MakeFuzzPlan(&rng, 8, 16);
  plan.crashes.clear();  // isolate the budget; recovery has its own suite
  plan.faults.clear();

  const BudgetRun base = RunWithBudget(w, plan, 1, 0);

  ClusterOptions opt;
  opt.workers = 2;
  opt.engine = fuzz::MakeEngineOptions(1);
  opt.engine.budget.bytes_cap = 1;  // per-shard cap
  ClusterEngine cluster(&w.pois, w.Index(IndexKind::kDynamic), opt);
  const uint64_t digest = fuzz::Replay(&cluster, w, plan);
  EXPECT_EQ(digest, base.digest);

  const MemoryStats mem = cluster.memory_stats();
  EXPECT_GT(mem.spilled_sessions, 0u);
  EXPECT_GT(mem.rehydrated_sessions, 0u);
  EXPECT_GT(mem.spilled_bytes, 0u);
  EXPECT_GT(mem.peak_resident_bytes, 0u);
}

}  // namespace
}  // namespace mpn
