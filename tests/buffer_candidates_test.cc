// Candidate retrieval tests: Theorem 3 / Theorem 6 index pruning never drops
// a point that could displace the optimum, and the Theorem 4 / Theorem 7
// buffering thresholds are honored (Algorithm 5).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mpn/candidates.h"
#include "mpn/circle_msr.h"
#include "msr_test_util.h"
#include "util/rng.h"

namespace mpn {
namespace {

using testutil::MakeScenario;
using testutil::Scenario;

// Builds simple one-tile regions of side `delta` centered on each user.
std::vector<TileRegion> InitialRegions(const std::vector<Point>& users,
                                       double delta) {
  std::vector<TileRegion> regions;
  for (const Point& u : users) {
    regions.emplace_back(u, delta);
    regions.back().Add(GridTile{0, 0, 0});
  }
  return regions;
}

class PruningSoundnessTest : public ::testing::TestWithParam<Objective> {};

// Theorem 3 / 6 soundness: every POI *not* returned by the pruned retrieval
// must be impossible to become the optimum for any location instance within
// the regions (plus candidate tile). We check a stronger sampled version:
// for sampled instances, the brute-force optimum is always po or one of the
// returned candidates.
TEST_P(PruningSoundnessTest, PrunedPointsCanNeverWin) {
  const Objective obj = GetParam();
  Rng rng(505);
  for (int trial = 0; trial < 25; ++trial) {
    const size_t m = 1 + trial % 3;
    const Scenario s = MakeScenario(200, m, 6200 + trial, 600.0);
    const auto circle = ComputeCircleMsr(s.tree, s.users, obj);
    if (circle.rmax <= 1e-9 || circle.rmax > 1e12) continue;
    const double delta = std::sqrt(2.0) * circle.rmax;
    auto regions = InitialRegions(s.users, delta);
    // Grow one extra tile for user 0 to make regions asymmetric.
    regions[0].Add(GridTile{0, 1, 0});

    FreshCandidateSource source(&s.tree, &s.users, obj, circle.po_id,
                                circle.po);
    std::vector<Candidate> cands;
    const size_t ui = trial % m;
    const Rect tile = regions[ui].TileRect(GridTile{0, 0, 1});
    ASSERT_TRUE(source.GetCandidates(regions, ui, tile, &cands));

    std::set<uint32_t> allowed;
    allowed.insert(circle.po_id);
    for (const Candidate& c : cands) allowed.insert(c.id);

    for (int inst = 0; inst < 80; ++inst) {
      std::vector<Point> locations;
      for (size_t j = 0; j < m; ++j) {
        const Rect& r = j == ui ? tile : regions[j].rects()[0];
        locations.push_back(
            {rng.Uniform(r.lo.x, r.hi.x), rng.Uniform(r.lo.y, r.hi.y)});
      }
      const auto best = FindGnnBruteForce(s.pois, locations, obj, 1);
      EXPECT_TRUE(allowed.count(best[0].id))
          << "pruned point " << best[0].id << " won at trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Objectives, PruningSoundnessTest,
                         ::testing::Values(Objective::kMax, Objective::kSum),
                         [](const ::testing::TestParamInfo<Objective>& info) {
                           return ObjectiveName(info.param);
                         });

TEST(PruningTest, PrunesFarPoints) {
  // A dense local cluster plus one very remote POI: the remote one must be
  // pruned from the candidate list.
  std::vector<Point> pois;
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    pois.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  pois.push_back({100000, 100000});  // id 50: remote
  RTree tree = RTree::BulkLoad(pois);
  const std::vector<Point> users = {{40, 40}, {60, 60}};
  const auto circle = ComputeCircleMsr(tree, users, Objective::kMax);
  const double delta = std::sqrt(2.0) * circle.rmax;
  auto regions = InitialRegions(users, delta);
  FreshCandidateSource source(&tree, &users, Objective::kMax, circle.po_id,
                              circle.po);
  std::vector<Candidate> cands;
  ASSERT_TRUE(source.GetCandidates(regions, 0,
                                   regions[0].TileRect(GridTile{0, 1, 0}),
                                   &cands));
  for (const Candidate& c : cands) EXPECT_NE(c.id, 50u);
  EXPECT_LT(cands.size(), pois.size() - 1);
}

TEST(BufferTest, BetasAreSortedAndMatchDefinition) {
  const Scenario s = MakeScenario(500, 3, 404);
  const int b = 50;
  BufferedCandidateSource source(s.tree, s.users, Objective::kMax, b);
  const auto top = FindGnn(s.tree, s.users, Objective::kMax, b + 1);
  double prev = -1.0;
  for (int z = 1; z <= b; ++z) {
    const double beta = source.Beta(z);
    EXPECT_GE(beta, prev);
    prev = beta;
    if (static_cast<size_t>(z) < top.size()) {
      EXPECT_NEAR(beta, (top[z].agg - top[0].agg) / 2.0, 1e-9);
    }
  }
  // beta_1 equals the Theorem-1 circle radius.
  const auto circle = ComputeCircleMsr(s.tree, s.users, Objective::kMax);
  EXPECT_NEAR(source.Beta(1), circle.rmax, 1e-9);
}

TEST(BufferTest, SumBetasDivideByTwoM) {
  const Scenario s = MakeScenario(500, 4, 405);
  BufferedCandidateSource source(s.tree, s.users, Objective::kSum, 10);
  const auto top = FindGnn(s.tree, s.users, Objective::kSum, 11);
  EXPECT_NEAR(source.Beta(1), (top[1].agg - top[0].agg) / (2.0 * 4), 1e-9);
}

TEST(BufferTest, SlotSelectionBoundsCandidates) {
  const Scenario s = MakeScenario(800, 3, 2929);
  const int b = 30;
  BufferedCandidateSource source(s.tree, s.users, Objective::kMax, b);
  const double delta = 2.0 * source.Beta(1) / std::sqrt(2.0);
  if (delta <= 0) GTEST_SKIP() << "degenerate scenario";
  auto regions = InitialRegions(s.users, delta);
  // Tiny tile -> small dist -> few candidates.
  std::vector<Candidate> small_cands;
  const Rect small = regions[0].TileRect(GridTile{2, 0, 0});
  ASSERT_TRUE(source.GetCandidates(regions, 0, small, &small_cands));
  // Far tile -> larger dist -> at least as many candidates (or rejection).
  std::vector<Candidate> big_cands;
  const Rect far = regions[0].TileRect(GridTile{0, 10, 0});
  const bool far_ok = source.GetCandidates(regions, 0, far, &big_cands);
  if (far_ok) {
    EXPECT_GE(big_cands.size(), small_cands.size());
  } else {
    EXPECT_GT(source.stats().rejected_by_buffer, 0u);
  }
}

TEST(BufferTest, RejectsTilesBeyondBetaB) {
  const Scenario s = MakeScenario(300, 2, 11011);
  const int b = 5;
  BufferedCandidateSource source(s.tree, s.users, Objective::kMax, b);
  const double beta_b = source.Beta(b);
  if (!std::isfinite(beta_b)) GTEST_SKIP() << "tiny dataset";
  const double delta = std::max(1e-6, 2.0 * source.Beta(1) / std::sqrt(2.0));
  auto regions = InitialRegions(s.users, delta);
  // A tile definitely beyond beta_b from the user.
  const int far_cells =
      static_cast<int>(beta_b / regions[0].CellSide(0)) + 3;
  std::vector<Candidate> cands;
  const bool ok = source.GetCandidates(
      regions, 0, regions[0].TileRect(GridTile{0, far_cells, 0}), &cands);
  EXPECT_FALSE(ok);
}

TEST(BufferTest, SmallDatasetInfiniteBetaAcceptsEverything) {
  // Fewer POIs than b+1: trailing betas are infinite, nothing is rejected.
  const Scenario s = MakeScenario(5, 2, 3141);
  BufferedCandidateSource source(s.tree, s.users, Objective::kMax, 100);
  auto regions = InitialRegions(s.users, 10.0);
  std::vector<Candidate> cands;
  EXPECT_TRUE(source.GetCandidates(
      regions, 0, regions[0].TileRect(GridTile{0, 50, 0}), &cands));
  // All non-optimal POIs are candidates at most.
  EXPECT_LE(cands.size(), s.pois.size() - 1);
}

}  // namespace
}  // namespace mpn
