// Protocol and end-to-end simulation tests, including the global system
// invariant: whenever all users are inside their safe regions, the last
// reported meeting point is still optimal (checked against brute force at
// every timestamp).
#include <gtest/gtest.h>

#include "net/message.h"
#include "sim/simulator.h"
#include "traj/generators.h"
#include "util/rng.h"

namespace mpn {
namespace {

const Rect kWorld({0, 0}, {20000, 20000});

struct World {
  std::vector<Point> pois;
  RTree tree;
  std::vector<Trajectory> trajs;
};

World MakeWorld(size_t n_pois, size_t n_trajs, size_t timestamps,
                uint64_t seed) {
  World w;
  Rng rng(seed);
  PoiOptions popt;
  popt.world = kWorld;
  popt.clusters = 12;
  w.pois = GeneratePois(n_pois, popt, &rng);
  w.tree = RTree::BulkLoad(w.pois);
  RandomWalkGenerator::Options wopt;
  wopt.world = kWorld;
  wopt.mean_speed = 60.0;
  const RandomWalkGenerator gen(wopt);
  w.trajs = gen.GenerateFleet(n_trajs, timestamps, &rng);
  return w;
}

// --- Packet model -----------------------------------------------------------

TEST(PacketModelTest, SixtySevenValuesPerPacket) {
  const PacketModel model;
  EXPECT_EQ(model.ValuesPerPacket(), 67u);  // (576-40)/8, RFC 879 MTU
  EXPECT_EQ(model.PacketsForValues(0), 1u);
  EXPECT_EQ(model.PacketsForValues(1), 1u);
  EXPECT_EQ(model.PacketsForValues(67), 1u);
  EXPECT_EQ(model.PacketsForValues(68), 2u);
  EXPECT_EQ(model.PacketsForValues(134), 2u);
  EXPECT_EQ(model.PacketsForValues(135), 3u);
}

TEST(PacketModelTest, RegionValueCounts) {
  const SafeRegion circle = SafeRegion::MakeCircle(Circle({0, 0}, 5));
  EXPECT_EQ(RegionValueCount(circle, true), kValuesPerCircle);
  TileRegion tiles({0, 0}, 1.0);
  for (int i = 0; i < 10; ++i) tiles.Add(GridTile{0, i, 0});
  const SafeRegion tr = SafeRegion::MakeTiles(tiles);
  EXPECT_EQ(RegionValueCount(tr, false), 30u);            // 3 per square
  EXPECT_LT(RegionValueCount(tr, true), 30u);             // compression wins
}

TEST(CommAccountingTest, RecordsPerTypeAndMerges) {
  const PacketModel model;
  CommAccounting a;
  a.Record(MessageType::kLocationUpdate, 4, model);
  a.Record(MessageType::kResult, 70, model);
  EXPECT_EQ(a.messages(MessageType::kLocationUpdate), 1u);
  EXPECT_EQ(a.packets(MessageType::kResult), 2u);
  EXPECT_EQ(a.TotalMessages(), 2u);
  EXPECT_EQ(a.TotalPackets(), 3u);
  EXPECT_EQ(a.TotalValues(), 74u);
  CommAccounting b;
  b.Record(MessageType::kProbe, 0, model);
  b.Merge(a);
  EXPECT_EQ(b.TotalMessages(), 3u);
  EXPECT_EQ(b.TotalPackets(), 4u);
}

// --- Client -----------------------------------------------------------------

TEST(ClientTest, TracksHeadingAndTheta) {
  Trajectory traj;
  for (int i = 0; i < 10; ++i) traj.positions.push_back({i * 1.0, 0.0});
  MpnClient client(&traj);
  EXPECT_FALSE(client.Hint().has_heading);  // not moved yet
  client.Advance(0);
  EXPECT_FALSE(client.Hint().has_heading);  // still at start
  client.Advance(1);
  const MotionHint h = client.Hint();
  EXPECT_TRUE(h.has_heading);
  EXPECT_NEAR(h.heading, 0.0, 1e-12);       // moving east
  EXPECT_GT(h.theta, 0.0);                  // clamped to theta_min
}

TEST(ClientTest, RegionContainmentDrivesViolation) {
  Trajectory traj;
  traj.positions = {{0, 0}, {1, 0}, {10, 0}};
  MpnClient client(&traj);
  client.Advance(0);
  EXPECT_FALSE(client.InsideRegion());  // no region yet
  client.SetRegion(SafeRegion::MakeCircle(Circle({0, 0}, 2)));
  EXPECT_TRUE(client.InsideRegion());
  client.Advance(1);
  EXPECT_TRUE(client.InsideRegion());
  client.Advance(2);
  EXPECT_FALSE(client.InsideRegion());
}

// --- End-to-end simulation ---------------------------------------------------

struct SimCase {
  Method method;
  Objective obj;
  const char* name;
};

class SimulationInvariantTest : public ::testing::TestWithParam<SimCase> {};

// The headline integration test: run the full protocol with brute-force
// checking enabled. MPN_ASSERTs inside the simulator abort on any stale or
// non-optimal meeting point, any user outside a freshly assigned region,
// or a codec mismatch.
TEST_P(SimulationInvariantTest, MeetingPointNeverGoesStale) {
  const SimCase& sc = GetParam();
  const World w = MakeWorld(300, 3, 400, 0xB0B + static_cast<int>(sc.method));
  std::vector<const Trajectory*> group = {&w.trajs[0], &w.trajs[1],
                                          &w.trajs[2]};
  SimOptions opt;
  opt.server.method = sc.method;
  opt.server.objective = sc.obj;
  opt.server.alpha = 10;
  opt.server.buffer_b = 30;
  opt.check_correctness = true;
  Simulator sim(&w.pois, &w.tree, group, opt);
  const SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.timestamps, 400u);
  EXPECT_GT(metrics.updates, 0u);
  EXPECT_GT(metrics.comm.TotalPackets(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, SimulationInvariantTest,
    ::testing::Values(SimCase{Method::kCircle, Objective::kMax, "CircleMax"},
                      SimCase{Method::kTile, Objective::kMax, "TileMax"},
                      SimCase{Method::kTileD, Objective::kMax, "TileDMax"},
                      SimCase{Method::kTileDBuffered, Objective::kMax,
                              "TileDbMax"},
                      SimCase{Method::kCircle, Objective::kSum, "CircleSum"},
                      SimCase{Method::kTile, Objective::kSum, "TileSum"},
                      SimCase{Method::kTileD, Objective::kSum, "TileDSum"},
                      SimCase{Method::kTileDBuffered, Objective::kSum,
                              "TileDbSum"}),
    [](const ::testing::TestParamInfo<SimCase>& info) {
      return info.param.name;
    });

TEST(SimulationTest, TileRegionsReduceUpdatesVsCircle) {
  // The paper's headline claim (Fig. 13): tile-based safe regions cut the
  // update frequency substantially relative to circles.
  const World w = MakeWorld(400, 6, 600, 0xFEED);
  const auto groups = MakeGroups(w.trajs, 3, 3);
  SimOptions circle_opt;
  circle_opt.server.method = Method::kCircle;
  const SimMetrics circle = RunGroups(w.pois, w.tree, groups, circle_opt);
  SimOptions tile_opt;
  tile_opt.server.method = Method::kTileD;
  tile_opt.server.alpha = 20;
  const SimMetrics tile = RunGroups(w.pois, w.tree, groups, tile_opt);
  EXPECT_LT(tile.updates, circle.updates);
  EXPECT_LT(tile.comm.TotalPackets(), circle.comm.TotalPackets());
}

TEST(SimulationTest, ProtocolMessageArithmetic) {
  // Per update: 1 location-update, (m-1) probes, (m-1) replies, m results.
  const World w = MakeWorld(200, 3, 200, 0xCAFE);
  std::vector<const Trajectory*> group = {&w.trajs[0], &w.trajs[1],
                                          &w.trajs[2]};
  SimOptions opt;
  opt.server.method = Method::kCircle;
  Simulator sim(&w.pois, &w.tree, group, opt);
  const SimMetrics metrics = sim.Run();
  const size_t u = metrics.updates;
  EXPECT_EQ(metrics.comm.messages(MessageType::kLocationUpdate), u);
  EXPECT_EQ(metrics.comm.messages(MessageType::kProbe), 2 * u);
  EXPECT_EQ(metrics.comm.messages(MessageType::kProbeReply), 2 * u);
  EXPECT_EQ(metrics.comm.messages(MessageType::kResult), 3 * u);
}

TEST(SimulationTest, BufferingCutsIndexAccesses) {
  // Fig. 16 mechanism: Tile-D-b touches the R-tree far less than Tile-D.
  const World w = MakeWorld(2000, 3, 300, 0xACE);
  std::vector<const Trajectory*> group = {&w.trajs[0], &w.trajs[1],
                                          &w.trajs[2]};
  SimOptions plain;
  plain.server.method = Method::kTileD;
  plain.server.alpha = 15;
  SimOptions buffered = plain;
  buffered.server.method = Method::kTileDBuffered;
  buffered.server.buffer_b = 50;
  Simulator s1(&w.pois, &w.tree, group, plain);
  const SimMetrics m1 = s1.Run();
  Simulator s2(&w.pois, &w.tree, group, buffered);
  const SimMetrics m2 = s2.Run();
  ASSERT_GT(m1.updates, 0u);
  ASSERT_GT(m2.updates, 0u);
  EXPECT_LT(
      static_cast<double>(m2.msr.rtree_node_accesses) / m2.updates,
      static_cast<double>(m1.msr.rtree_node_accesses) / m1.updates);
}

TEST(SimulationTest, FasterUsersUpdateMoreOften) {
  // Fig. 15 mechanism: scaling user speed up increases update frequency.
  const World w = MakeWorld(300, 3, 500, 0xDEAD);
  std::vector<Trajectory> slow, fast;
  for (const auto& t : w.trajs) {
    slow.push_back(RescaleSpeed(t, 0.25, t.size()));
    fast.push_back(t);
  }
  SimOptions opt;
  opt.server.method = Method::kTileD;
  opt.server.alpha = 10;
  std::vector<const Trajectory*> gs = {&slow[0], &slow[1], &slow[2]};
  std::vector<const Trajectory*> gf = {&fast[0], &fast[1], &fast[2]};
  Simulator s1(&w.pois, &w.tree, gs, opt);
  Simulator s2(&w.pois, &w.tree, gf, opt);
  EXPECT_LE(s1.Run().updates, s2.Run().updates);
}

TEST(SimulationTest, MetricsMergeAddsFields) {
  SimMetrics a, b;
  a.timestamps = 10;
  a.updates = 2;
  a.server_seconds = 0.5;
  b.timestamps = 20;
  b.updates = 3;
  b.server_seconds = 0.25;
  a.Merge(b);
  EXPECT_EQ(a.timestamps, 30u);
  EXPECT_EQ(a.updates, 5u);
  EXPECT_DOUBLE_EQ(a.server_seconds, 0.75);
  EXPECT_NEAR(a.UpdateFrequency(), 5.0 / 30.0, 1e-12);
}

TEST(ServerTest, MethodNames) {
  EXPECT_STREQ(MethodName(Method::kCircle), "Circle");
  EXPECT_STREQ(MethodName(Method::kTile), "Tile");
  EXPECT_STREQ(MethodName(Method::kTileD), "Tile-D");
  EXPECT_STREQ(MethodName(Method::kTileDBuffered), "Tile-D-b");
}

}  // namespace
}  // namespace mpn
