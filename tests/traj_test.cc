// Workload substrate tests: road networks, trajectory generators, POI
// synthesis, speed rescaling, grouping.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "traj/generators.h"
#include "traj/road_network.h"
#include "traj/trajectory.h"
#include "util/rng.h"

namespace mpn {
namespace {

const Rect kWorld({0, 0}, {10000, 10000});

TEST(RoadNetworkTest, ManualGraphShortestPath) {
  RoadNetwork net;
  const uint32_t a = net.AddNode({0, 0});
  const uint32_t b = net.AddNode({1, 0});
  const uint32_t c = net.AddNode({2, 0});
  const uint32_t d = net.AddNode({1, 5});
  net.AddEdge(a, b);
  net.AddEdge(b, c);
  net.AddEdge(a, d);
  net.AddEdge(d, c);
  const auto path = net.ShortestPath(a, c);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], a);
  EXPECT_EQ(path[1], b);
  EXPECT_EQ(path[2], c);
}

TEST(RoadNetworkTest, UnreachableReturnsEmpty) {
  RoadNetwork net;
  const uint32_t a = net.AddNode({0, 0});
  net.AddNode({1, 0});  // isolated
  const uint32_t c = net.AddNode({2, 0});
  net.AddEdge(a, c);
  EXPECT_TRUE(net.ShortestPath(a, 1).empty());
  EXPECT_FALSE(net.IsConnected());
}

TEST(RoadNetworkTest, RandomGridIsConnectedAndInBounds) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    const RoadNetwork net =
        RoadNetwork::RandomGrid(kWorld, 12, 12, 0.3, 0.15, 0.2, &rng);
    EXPECT_TRUE(net.IsConnected());
    EXPECT_EQ(net.NodeCount(), 144u);
    EXPECT_GT(net.EdgeCount(), 144u / 2);
    const Rect b = net.Bounds();
    // Jitter can push nodes slightly past the nominal frame; allow slack.
    EXPECT_GE(b.lo.x, kWorld.lo.x - 0.35 * kWorld.Width() / 11);
    EXPECT_LE(b.hi.x, kWorld.hi.x + 0.35 * kWorld.Width() / 11);
  }
}

TEST(RoadNetworkTest, ShortestPathsFollowEdges) {
  Rng rng(77);
  const RoadNetwork net =
      RoadNetwork::RandomGrid(kWorld, 8, 8, 0.2, 0.1, 0.1, &rng);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t s = static_cast<uint32_t>(
        rng.UniformInt(0, static_cast<int64_t>(net.NodeCount()) - 1));
    const uint32_t t = static_cast<uint32_t>(
        rng.UniformInt(0, static_cast<int64_t>(net.NodeCount()) - 1));
    const auto path = net.ShortestPath(s, t);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    for (size_t i = 1; i < path.size(); ++i) {
      bool adjacent = false;
      for (const auto& [v, w] : net.Neighbors(path[i - 1])) {
        (void)w;
        if (v == path[i]) adjacent = true;
      }
      EXPECT_TRUE(adjacent) << "hop " << i << " is not an edge";
    }
  }
}

TEST(BrinkhoffTest, SpeedBoundedByClass) {
  Rng net_rng(5);
  const RoadNetwork net =
      RoadNetwork::RandomGrid(kWorld, 10, 10, 0.25, 0.1, 0.15, &net_rng);
  BrinkhoffGenerator::Options opt;
  opt.min_speed = 30;
  opt.max_speed = 80;
  const BrinkhoffGenerator gen(&net, opt);
  Rng rng(6);
  for (int i = 0; i < 5; ++i) {
    const Trajectory t = gen.Generate(400, &rng);
    ASSERT_EQ(t.size(), 400u);
    EXPECT_LE(t.MaxStep(), opt.max_speed + 1e-6);
    EXPECT_GT(t.Length(), 0.0);
  }
}

TEST(BrinkhoffTest, StaysNearNetworkEdges) {
  Rng net_rng(9);
  const RoadNetwork net =
      RoadNetwork::RandomGrid(kWorld, 6, 6, 0.1, 0.0, 0.0, &net_rng);
  const BrinkhoffGenerator gen(&net, {});
  Rng rng(10);
  const Trajectory t = gen.Generate(300, &rng);
  // Every position lies within the network bounds (movement is on edges).
  const Rect b = net.Bounds();
  for (const Point& p : t.positions) {
    EXPECT_TRUE(b.Contains(p)) << p.ToString();
  }
}

TEST(BrinkhoffTest, FleetIsDeterministicBySeed) {
  Rng net_rng(13);
  const RoadNetwork net =
      RoadNetwork::RandomGrid(kWorld, 8, 8, 0.2, 0.1, 0.1, &net_rng);
  const BrinkhoffGenerator gen(&net, {});
  Rng r1(42), r2(42);
  const auto f1 = gen.GenerateFleet(3, 100, &r1);
  const auto f2 = gen.GenerateFleet(3, 100, &r2);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(f1[i].size(), f2[i].size());
    for (size_t t = 0; t < f1[i].size(); ++t) {
      EXPECT_EQ(f1[i].positions[t], f2[i].positions[t]);
    }
  }
}

TEST(RandomWalkTest, StaysInWorldAndRespectsSpeed) {
  RandomWalkGenerator::Options opt;
  opt.world = kWorld;
  opt.mean_speed = 50;
  opt.speed_jitter = 0.2;
  const RandomWalkGenerator gen(opt);
  Rng rng(21);
  for (int i = 0; i < 5; ++i) {
    const Trajectory t = gen.Generate(500, &rng);
    ASSERT_EQ(t.size(), 500u);
    for (const Point& p : t.positions) EXPECT_TRUE(kWorld.Contains(p));
    // Speed stays within a few sigma of the mean.
    EXPECT_LE(t.MaxStep(), opt.mean_speed * (1.0 + 6 * opt.speed_jitter));
  }
}

TEST(RandomWalkTest, HeadingsAreCorrelated) {
  // The defining GeoLife-like property: consecutive headings deviate little.
  RandomWalkGenerator::Options opt;
  opt.world = kWorld;
  opt.heading_sigma = 0.1;
  opt.dwell_prob = 0.0;
  const RandomWalkGenerator gen(opt);
  Rng rng(22);
  const Trajectory t = gen.Generate(2000, &rng);
  double total_dev = 0.0;
  int n = 0;
  for (size_t i = 2; i < t.size(); ++i) {
    const Vec2 a = t.positions[i - 1] - t.positions[i - 2];
    const Vec2 b = t.positions[i] - t.positions[i - 1];
    if (a.Norm2() == 0 || b.Norm2() == 0) continue;
    total_dev += AngleDiff(a.Angle(), b.Angle());
    ++n;
  }
  ASSERT_GT(n, 1000);
  // Mean deviation of a N(0, 0.1) step is ~0.08; allow generous slack but
  // far below the ~pi/2 of an uncorrelated walk.
  EXPECT_LT(total_dev / n, 0.35);
}

TEST(RandomWalkTest, DwellsProduceRepeatedPositions) {
  RandomWalkGenerator::Options opt;
  opt.world = kWorld;
  opt.dwell_prob = 0.05;
  const RandomWalkGenerator gen(opt);
  Rng rng(23);
  const Trajectory t = gen.Generate(1000, &rng);
  int repeats = 0;
  for (size_t i = 1; i < t.size(); ++i) {
    if (t.positions[i] == t.positions[i - 1]) ++repeats;
  }
  EXPECT_GT(repeats, 10);
}

TEST(PoiGenTest, CountBoundsAndDeterminism) {
  PoiOptions opt;
  opt.world = kWorld;
  Rng r1(31), r2(31);
  const auto a = GeneratePois(5000, opt, &r1);
  const auto b = GeneratePois(5000, opt, &r2);
  ASSERT_EQ(a.size(), 5000u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(kWorld.Contains(a[i]));
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(PoiGenTest, ClusteredIsSkewedVsUniform) {
  // Clustered POIs should put much more mass in their densest cell than a
  // uniform layout would.
  PoiOptions clustered;
  clustered.world = kWorld;
  clustered.clusters = 10;
  clustered.background_frac = 0.1;
  Rng rng(37);
  const auto pois = GeneratePois(8000, clustered, &rng);
  constexpr int kGrid = 10;
  std::vector<int> cell(kGrid * kGrid, 0);
  for (const Point& p : pois) {
    const int cx = std::min(kGrid - 1, static_cast<int>(p.x / 1000.0));
    const int cy = std::min(kGrid - 1, static_cast<int>(p.y / 1000.0));
    ++cell[cy * kGrid + cx];
  }
  const int max_cell = *std::max_element(cell.begin(), cell.end());
  EXPECT_GT(max_cell, 8000 / (kGrid * kGrid) * 3);
}

TEST(RescaleSpeedTest, QuartersTheSpeed) {
  // Straight-line trajectory: rescaling to x=0.25 quarters the step length.
  Trajectory t;
  for (int i = 0; i < 1000; ++i) t.positions.push_back({i * 4.0, 0.0});
  const Trajectory s = RescaleSpeed(t, 0.25, 1000);
  ASSERT_EQ(s.size(), 1000u);
  // Prefix has 249 segments of length 4 resampled into 999 steps:
  // step = 996/999, i.e. one-quarter speed up to discretization.
  EXPECT_NEAR(s.MaxStep(), 1.0, 0.01);
  // Same start, endpoint at the 25% mark of the original.
  EXPECT_EQ(s.positions.front(), t.positions.front());
  EXPECT_NEAR(s.positions.back().x, t.positions[249].x, 5.0);
}

TEST(RescaleSpeedTest, FullSpeedPreservesEndpoints) {
  Rng rng(71);
  Trajectory t;
  Point p{0, 0};
  for (int i = 0; i < 500; ++i) {
    p += {rng.Uniform(-3, 5), rng.Uniform(-4, 4)};
    t.positions.push_back(p);
  }
  const Trajectory s = RescaleSpeed(t, 1.0, 500);
  EXPECT_NEAR(Dist(s.positions.front(), t.positions.front()), 0.0, 1e-9);
  EXPECT_NEAR(Dist(s.positions.back(), t.positions.back()), 0.0, 1e-9);
}

TEST(MakeGroupsTest, PartitionsBlocks) {
  std::vector<Trajectory> trajs(60);
  for (auto& t : trajs) t.positions.push_back({0, 0});
  const auto groups = MakeGroups(trajs, 3, 6);
  ASSERT_EQ(groups.size(), 10u);
  std::set<const Trajectory*> seen;
  for (const auto& g : groups) {
    ASSERT_EQ(g.size(), 3u);
    for (const Trajectory* t : g) EXPECT_TRUE(seen.insert(t).second);
  }
  // m = block uses every trajectory.
  const auto full = MakeGroups(trajs, 6, 6);
  ASSERT_EQ(full.size(), 10u);
}

}  // namespace
}  // namespace mpn
