// Packed R-tree tests: structural invariants of the flat layout, query
// correctness against brute force, and — the load-bearing property — id-set
// identity with the dynamic RTree for both packing algorithms under fuzzed
// point sets and queries (the engine-level digest enforcement lives in
// index_differential_test.cc).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "index/spatial_index.h"
#include "util/rng.h"

namespace mpn {
namespace {

std::vector<Point> RandomPoints(size_t n, uint64_t seed,
                                double extent = 1000.0) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, extent), rng.Uniform(0, extent)});
  }
  return pts;
}

std::vector<uint32_t> BruteRange(const std::vector<Point>& pts,
                                 const Rect& r) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (r.Contains(pts[i])) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

std::vector<uint32_t> BruteCircle(const std::vector<Point>& pts,
                                  const Point& c, double radius) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (Dist2(c, pts[i]) <= radius * radius) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

std::vector<uint32_t> Sorted(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class PackedRTreeAlgoTest : public testing::TestWithParam<PackAlgorithm> {};

TEST_P(PackedRTreeAlgoTest, EmptyTree) {
  const PackedRTree tree = PackedRTree::Build({}, GetParam());
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.bounds().IsEmpty());
  std::vector<uint32_t> out;
  tree.RangeQuery(Rect({0, 0}, {10, 10}), &out);
  EXPECT_TRUE(out.empty());
  tree.CircleRangeQuery({5, 5}, 100.0, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.Knn({5, 5}, 3).empty());
  tree.CheckInvariants();
}

TEST_P(PackedRTreeAlgoTest, InvariantsAcrossSizesAndFanouts) {
  for (size_t n : {1u, 2u, 31u, 32u, 33u, 100u, 1000u}) {
    const std::vector<Point> pts = RandomPoints(n, 0xBEEF00 + n);
    for (uint32_t fanout : {2u, 8u, 32u}) {
      PackedRTreeOptions opt;
      opt.fanout = fanout;
      const PackedRTree tree = PackedRTree::Build(pts, GetParam(), opt);
      EXPECT_EQ(tree.size(), n);
      tree.CheckInvariants();
    }
  }
}

TEST_P(PackedRTreeAlgoTest, QueriesMatchBruteForce) {
  const size_t n = 500;
  const std::vector<Point> pts = RandomPoints(n, 0xFACE01);
  const PackedRTree tree = PackedRTree::Build(pts, GetParam());
  Rng rng(0xFACE02);
  std::vector<uint32_t> out;
  for (int q = 0; q < 200; ++q) {
    const Point a{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const double w = rng.Uniform(0, 300), h = rng.Uniform(0, 300);
    const Rect r({a.x, a.y}, {a.x + w, a.y + h});
    out.clear();
    tree.RangeQuery(r, &out);
    EXPECT_EQ(Sorted(out), BruteRange(pts, r));

    const double radius = rng.Uniform(0, 250);
    out.clear();
    tree.CircleRangeQuery(a, radius, &out);
    EXPECT_EQ(Sorted(out), BruteCircle(pts, a, radius));
  }
}

TEST_P(PackedRTreeAlgoTest, FuzzedIdSetsIdenticalToDynamicTree) {
  Rng rng(0xD1FF10);
  for (int round = 0; round < 20; ++round) {
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 800));
    std::vector<Point> pts = RandomPoints(n, rng.Next());
    if (rng.Bernoulli(0.3)) {
      // Duplicate coordinates stress the (coordinate, id) tie-breaks.
      for (size_t i = 0; i + 1 < pts.size(); i += 2) pts[i + 1] = pts[i];
    }
    const RTree dynamic = RTree::BulkLoad(pts);
    const PackedRTree packed = PackedRTree::Build(pts, GetParam());
    packed.CheckInvariants();
    std::vector<uint32_t> a, b;
    for (int q = 0; q < 30; ++q) {
      const Point c{rng.Uniform(-50, 1050), rng.Uniform(-50, 1050)};
      const double w = rng.Uniform(0, 400), h = rng.Uniform(0, 400);
      const Rect r({c.x, c.y}, {c.x + w, c.y + h});
      a.clear();
      b.clear();
      dynamic.RangeQuery(r, &a);
      packed.RangeQuery(r, &b);
      EXPECT_EQ(Sorted(a), Sorted(b));

      const double radius = rng.Uniform(0, 300);
      a.clear();
      b.clear();
      dynamic.CircleRangeQuery(c, radius, &a);
      packed.CircleRangeQuery(c, radius, &b);
      EXPECT_EQ(Sorted(a), Sorted(b));

      // Knn must agree element-for-element (order included): both heaps
      // pop points in global (distance, id) order whatever the tree shape.
      const size_t k = static_cast<size_t>(rng.UniformInt(1, 12));
      EXPECT_EQ(dynamic.Knn(c, k), packed.Knn(c, k));
    }
  }
}

TEST_P(PackedRTreeAlgoTest, LeavesAreFullAndQueriesAppend) {
  const std::vector<Point> pts = RandomPoints(320, 0xABCD01);
  const PackedRTree tree = PackedRTree::Build(pts, GetParam());
  // 320 points at fanout 32 = exactly 10 full leaves, height 2.
  EXPECT_EQ(tree.Height(), 2);
  std::vector<uint32_t> out = {9999};
  tree.RangeQuery(Rect({0, 0}, {1000, 1000}), &out);
  ASSERT_EQ(out.size(), 321u);  // appended, not cleared
  EXPECT_EQ(out[0], 9999u);
}

TEST_P(PackedRTreeAlgoTest, SpatialIndexFacadeDispatches) {
  const std::vector<Point> pts = RandomPoints(200, 0x5EED01);
  const RTree dynamic = RTree::BulkLoad(pts);
  const PackedRTree packed = PackedRTree::Build(pts, GetParam());
  const SpatialIndex dyn_view(&dynamic);
  const SpatialIndex packed_view(&packed);
  EXPECT_TRUE(dyn_view.valid());
  EXPECT_TRUE(packed_view.valid());
  EXPECT_EQ(dyn_view.size(), packed_view.size());
  const Rect r({100, 100}, {600, 600});
  std::vector<uint32_t> a, b;
  dyn_view.RangeQuery(r, &a);
  packed_view.RangeQuery(r, &b);
  EXPECT_EQ(Sorted(a), Sorted(b));
  // Traverse sees every point exactly once through the facade.
  size_t seen = 0;
  packed_view.Traverse([](const Rect&) { return true; },
                       [&](const Point&, uint32_t) { ++seen; });
  EXPECT_EQ(seen, pts.size());
}

INSTANTIATE_TEST_SUITE_P(Algos, PackedRTreeAlgoTest,
                         testing::Values(PackAlgorithm::kStr,
                                         PackAlgorithm::kHilbert),
                         [](const testing::TestParamInfo<PackAlgorithm>& i) {
                           return std::string(PackAlgorithmName(i.param));
                         });

TEST(PoiIndexTest, BuildsEveryKind) {
  const std::vector<Point> pts = RandomPoints(150, 0x90D501);
  for (IndexKind kind : {IndexKind::kDynamic, IndexKind::kPackedStr,
                         IndexKind::kPackedHilbert}) {
    const PoiIndex index = PoiIndex::Build(pts, kind);
    EXPECT_EQ(index.kind(), kind);
    const SpatialIndex view = index;  // implicit conversion
    EXPECT_TRUE(view.valid());
    EXPECT_EQ(view.size(), pts.size());
    std::vector<uint32_t> out;
    view.RangeQuery(Rect({0, 0}, {1000, 1000}), &out);
    EXPECT_EQ(out.size(), pts.size());
  }
}

TEST(PoiIndexTest, KindNamesAreStable) {
  // Config files and bench tables key on these strings.
  EXPECT_STREQ(IndexKindName(IndexKind::kDynamic), "dynamic");
  EXPECT_STREQ(IndexKindName(IndexKind::kPackedStr), "packed_str");
  EXPECT_STREQ(IndexKindName(IndexKind::kPackedHilbert), "packed_hilbert");
  EXPECT_STREQ(PackAlgorithmName(PackAlgorithm::kStr), "str");
  EXPECT_STREQ(PackAlgorithmName(PackAlgorithm::kHilbert), "hilbert");
}

}  // namespace
}  // namespace mpn
