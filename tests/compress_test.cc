// Tile-region compression tests: exact round-trip, value accounting, and
// compression benefit over the naive 3-values-per-tile encoding.
#include <gtest/gtest.h>

#include <algorithm>

#include "mpn/compress.h"
#include "mpn/tile_msr.h"
#include "msr_test_util.h"
#include "util/rng.h"

namespace mpn {
namespace {

using testutil::MakeScenario;
using testutil::Scenario;

std::vector<GridTile> SortedTiles(const TileRegion& r) {
  std::vector<GridTile> tiles = r.tiles();
  std::sort(tiles.begin(), tiles.end(),
            [](const GridTile& a, const GridTile& b) {
              if (a.level != b.level) return a.level < b.level;
              if (a.iy != b.iy) return a.iy < b.iy;
              return a.ix < b.ix;
            });
  return tiles;
}

TEST(CompressTest, EmptyRegion) {
  TileRegion region({0, 0}, 2.0);
  const auto enc = EncodeTileRegion(region);
  EXPECT_EQ(enc.levels.size(), 0u);
  EXPECT_EQ(enc.ValueCount(), 4u);  // header only
  const TileRegion dec = DecodeTileRegion(enc);
  EXPECT_EQ(dec.size(), 0u);
  EXPECT_DOUBLE_EQ(dec.delta(), 2.0);
}

TEST(CompressTest, SingleTileRoundTrip) {
  TileRegion region({10, -5}, 3.0);
  region.Add(GridTile{0, 0, 0});
  const auto enc = EncodeTileRegion(region);
  const TileRegion dec = DecodeTileRegion(enc);
  ASSERT_EQ(dec.size(), 1u);
  EXPECT_TRUE(dec.tiles()[0] == region.tiles()[0]);
  EXPECT_EQ(dec.origin().x, region.origin().x);
  EXPECT_EQ(dec.origin().y, region.origin().y);
  // Geometric extents identical bit-for-bit.
  EXPECT_EQ(dec.rects()[0].lo.x, region.rects()[0].lo.x);
  EXPECT_EQ(dec.rects()[0].hi.y, region.rects()[0].hi.y);
}

TEST(CompressTest, MultiLevelRoundTripExact) {
  Rng rng(606);
  for (int trial = 0; trial < 60; ++trial) {
    TileRegion region({rng.Uniform(-100, 100), rng.Uniform(-100, 100)},
                      rng.Uniform(0.5, 20));
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) {
      const int level = static_cast<int>(rng.UniformInt(0, 3));
      const int span = 4 << level;
      region.Add(GridTile{level,
                          static_cast<int32_t>(rng.UniformInt(-span, span)),
                          static_cast<int32_t>(rng.UniformInt(-span, span))});
    }
    const TileRegion dec = DecodeTileRegion(EncodeTileRegion(region));
    // Same tile multiset (duplicates from the random generator collapse to
    // set semantics in the bitmap, so compare unique sorted sets).
    auto a = SortedTiles(region);
    auto b = SortedTiles(dec);
    a.erase(std::unique(a.begin(), a.end(),
                        [](const GridTile& x, const GridTile& y) {
                          return x == y;
                        }),
            a.end());
    ASSERT_EQ(a.size(), b.size()) << "trial " << trial;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i] == b[i]) << "trial " << trial << " tile " << i;
    }
  }
}

TEST(CompressTest, ContainmentPreservedThroughCodec) {
  Rng rng(707);
  TileRegion region({0, 0}, 4.0);
  region.Add(GridTile{0, 0, 0});
  region.Add(GridTile{0, 1, 0});
  region.Add(GridTile{1, -1, 1});
  region.Add(GridTile{2, 5, -3});
  const TileRegion dec = DecodeTileRegion(EncodeTileRegion(region));
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    EXPECT_EQ(region.Contains(p), dec.Contains(p)) << p.ToString();
  }
}

TEST(CompressTest, ValueCountMatchesStructure) {
  TileRegion region({0, 0}, 1.0);
  // 3 level-0 tiles in a 3x1 window: 1 word.
  region.Add(GridTile{0, 0, 0});
  region.Add(GridTile{0, 1, 0});
  region.Add(GridTile{0, 2, 0});
  const auto enc = EncodeTileRegion(region);
  ASSERT_EQ(enc.levels.size(), 1u);
  EXPECT_EQ(enc.levels[0].width, 3);
  EXPECT_EQ(enc.levels[0].height, 1);
  EXPECT_EQ(enc.levels[0].bits.WordCount(), 1u);
  EXPECT_EQ(enc.ValueCount(), 4u + 5u + 1u);
  EXPECT_EQ(RawTileValueCount(region), 9u);
}

TEST(CompressTest, BeatsRawEncodingOnRealRegions) {
  // On engine-produced regions with the Table-2 alpha the bitmap encoding
  // must beat 3-values-per-tile (that is what keeps packet counts low).
  size_t compressed = 0, raw = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const Scenario s = MakeScenario(200, 3, 4100 + trial);
    TileMsrConfig config;
    config.alpha = 30;
    const auto result =
        ComputeTileMsr(s.tree, s.users, Objective::kMax, config);
    for (const auto& r : result.regions) {
      if (r.is_circle()) continue;
      compressed += EncodeTileRegion(r.tiles()).ValueCount();
      raw += RawTileValueCount(r.tiles());
    }
  }
  ASSERT_GT(raw, 0u);
  EXPECT_LT(compressed, raw);
}

TEST(CompressTest, LargeSparseWindowStillCorrect) {
  TileRegion region({0, 0}, 1.0);
  region.Add(GridTile{0, -100, -100});
  region.Add(GridTile{0, 100, 100});
  const auto enc = EncodeTileRegion(region);
  ASSERT_EQ(enc.levels.size(), 1u);
  EXPECT_EQ(enc.levels[0].width, 201);
  EXPECT_EQ(enc.levels[0].bits.Count(), 2u);
  const TileRegion dec = DecodeTileRegion(enc);
  EXPECT_EQ(dec.size(), 2u);
}

// --- DynamicBitset ----------------------------------------------------------

TEST(BitsetTest, SetTestClearCount) {
  DynamicBitset b(130);
  EXPECT_EQ(b.WordCount(), 3u);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, FromWordsRoundTrip) {
  DynamicBitset b(70);
  b.Set(3);
  b.Set(69);
  const DynamicBitset c = DynamicBitset::FromWords(b.words(), 70);
  EXPECT_TRUE(b == c);
}

}  // namespace
}  // namespace mpn
