// Tile-region compression tests: exact round-trip, value accounting, and
// compression benefit over the naive 3-values-per-tile encoding.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>

#include "mpn/compress.h"
#include "mpn/tile_msr.h"
#include "msr_test_util.h"
#include "util/rng.h"

namespace mpn {
namespace {

using testutil::MakeScenario;
using testutil::Scenario;

std::vector<GridTile> SortedTiles(const TileRegion& r) {
  std::vector<GridTile> tiles = r.tiles();
  std::sort(tiles.begin(), tiles.end(),
            [](const GridTile& a, const GridTile& b) {
              if (a.level != b.level) return a.level < b.level;
              if (a.iy != b.iy) return a.iy < b.iy;
              return a.ix < b.ix;
            });
  return tiles;
}

TEST(CompressTest, EmptyRegion) {
  TileRegion region({0, 0}, 2.0);
  const auto enc = EncodeTileRegion(region);
  EXPECT_EQ(enc.levels.size(), 0u);
  EXPECT_EQ(enc.ValueCount(), 4u);  // header only
  const TileRegion dec = DecodeTileRegion(enc);
  EXPECT_EQ(dec.size(), 0u);
  EXPECT_DOUBLE_EQ(dec.delta(), 2.0);
}

TEST(CompressTest, SingleTileRoundTrip) {
  TileRegion region({10, -5}, 3.0);
  region.Add(GridTile{0, 0, 0});
  const auto enc = EncodeTileRegion(region);
  const TileRegion dec = DecodeTileRegion(enc);
  ASSERT_EQ(dec.size(), 1u);
  EXPECT_TRUE(dec.tiles()[0] == region.tiles()[0]);
  EXPECT_EQ(dec.origin().x, region.origin().x);
  EXPECT_EQ(dec.origin().y, region.origin().y);
  // Geometric extents identical bit-for-bit.
  EXPECT_EQ(dec.rects()[0].lo.x, region.rects()[0].lo.x);
  EXPECT_EQ(dec.rects()[0].hi.y, region.rects()[0].hi.y);
}

TEST(CompressTest, MultiLevelRoundTripExact) {
  Rng rng(606);
  for (int trial = 0; trial < 60; ++trial) {
    TileRegion region({rng.Uniform(-100, 100), rng.Uniform(-100, 100)},
                      rng.Uniform(0.5, 20));
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) {
      const int level = static_cast<int>(rng.UniformInt(0, 3));
      const int span = 4 << level;
      region.Add(GridTile{level,
                          static_cast<int32_t>(rng.UniformInt(-span, span)),
                          static_cast<int32_t>(rng.UniformInt(-span, span))});
    }
    const TileRegion dec = DecodeTileRegion(EncodeTileRegion(region));
    // Same tile multiset (duplicates from the random generator collapse to
    // set semantics in the bitmap, so compare unique sorted sets).
    auto a = SortedTiles(region);
    auto b = SortedTiles(dec);
    a.erase(std::unique(a.begin(), a.end(),
                        [](const GridTile& x, const GridTile& y) {
                          return x == y;
                        }),
            a.end());
    ASSERT_EQ(a.size(), b.size()) << "trial " << trial;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i] == b[i]) << "trial " << trial << " tile " << i;
    }
  }
}

TEST(CompressTest, ContainmentPreservedThroughCodec) {
  Rng rng(707);
  TileRegion region({0, 0}, 4.0);
  region.Add(GridTile{0, 0, 0});
  region.Add(GridTile{0, 1, 0});
  region.Add(GridTile{1, -1, 1});
  region.Add(GridTile{2, 5, -3});
  const TileRegion dec = DecodeTileRegion(EncodeTileRegion(region));
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    EXPECT_EQ(region.Contains(p), dec.Contains(p)) << p.ToString();
  }
}

TEST(CompressTest, ValueCountMatchesStructure) {
  TileRegion region({0, 0}, 1.0);
  // 3 level-0 tiles in a 3x1 window: 1 word.
  region.Add(GridTile{0, 0, 0});
  region.Add(GridTile{0, 1, 0});
  region.Add(GridTile{0, 2, 0});
  const auto enc = EncodeTileRegion(region);
  ASSERT_EQ(enc.levels.size(), 1u);
  EXPECT_EQ(enc.levels[0].width, 3);
  EXPECT_EQ(enc.levels[0].height, 1);
  EXPECT_EQ(enc.levels[0].bits.WordCount(), 1u);
  EXPECT_EQ(enc.ValueCount(), 4u + 5u + 1u);
  EXPECT_EQ(RawTileValueCount(region), 9u);
}

TEST(CompressTest, BeatsRawEncodingOnRealRegions) {
  // On engine-produced regions with the Table-2 alpha the bitmap encoding
  // must beat 3-values-per-tile (that is what keeps packet counts low).
  size_t compressed = 0, raw = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const Scenario s = MakeScenario(200, 3, 4100 + trial);
    TileMsrConfig config;
    config.alpha = 30;
    const auto result =
        ComputeTileMsr(s.tree, s.users, Objective::kMax, config);
    for (const auto& r : result.regions) {
      if (r.is_circle()) continue;
      compressed += EncodeTileRegion(r.tiles()).ValueCount();
      raw += RawTileValueCount(r.tiles());
    }
  }
  ASSERT_GT(raw, 0u);
  EXPECT_LT(compressed, raw);
}

TEST(CompressTest, LargeSparseWindowStillCorrect) {
  TileRegion region({0, 0}, 1.0);
  region.Add(GridTile{0, -100, -100});
  region.Add(GridTile{0, 100, 100});
  const auto enc = EncodeTileRegion(region);
  ASSERT_EQ(enc.levels.size(), 1u);
  EXPECT_EQ(enc.levels[0].width, 201);
  EXPECT_EQ(enc.levels[0].bits.Count(), 2u);
  const TileRegion dec = DecodeTileRegion(enc);
  EXPECT_EQ(dec.size(), 2u);
}

TEST(CompressTest, AnchorBitPatternsSurviveCodec) {
  // The engine's spill codec (engine/session_codec.h) ships the encoded
  // anchor verbatim; decode must reproduce it bit-for-bit — including a
  // signed zero and a denormal — or a spilled client's region would drift
  // from the server's grid.
  uint64_t neg_zero_bits = 0, origin_y_bits = 0, delta_bits = 0;
  const double neg_zero = -0.0;
  const double denorm = std::numeric_limits<double>::denorm_min();
  TileRegion region = TileRegion::FromOrigin({neg_zero, denorm}, 0.7);
  region.Add(GridTile{0, 0, 0});
  region.Add(GridTile{2, -3, 9});
  const TileRegion dec = DecodeTileRegion(EncodeTileRegion(region));
  std::memcpy(&neg_zero_bits, &neg_zero, sizeof(double));
  double got = dec.origin().x;
  uint64_t got_bits = 0;
  std::memcpy(&got_bits, &got, sizeof(double));
  EXPECT_EQ(got_bits, neg_zero_bits);  // sign bit kept, not canonicalized
  got = dec.origin().y;
  std::memcpy(&origin_y_bits, &denorm, sizeof(double));
  std::memcpy(&got_bits, &got, sizeof(double));
  EXPECT_EQ(got_bits, origin_y_bits);
  const double delta = region.delta();
  got = dec.delta();
  std::memcpy(&delta_bits, &delta, sizeof(double));
  std::memcpy(&got_bits, &got, sizeof(double));
  EXPECT_EQ(got_bits, delta_bits);
}

TEST(CompressTest, EncodeIsIdempotentOnDecodedRegions) {
  // Encode(Decode(enc)) must equal enc: the bitmap form is canonical, so a
  // spill/rehydrate cycle re-encodes to the identical byte stream (the
  // session store relies on this for stable spilled_bytes accounting).
  Rng rng(808);
  for (int trial = 0; trial < 40; ++trial) {
    TileRegion region({rng.Uniform(-50, 50), rng.Uniform(-50, 50)},
                      rng.Uniform(0.25, 8));
    const int n = static_cast<int>(rng.UniformInt(0, 30));
    for (int i = 0; i < n; ++i) {
      const int level = static_cast<int>(rng.UniformInt(0, 4));
      region.Add(GridTile{level,
                          static_cast<int32_t>(rng.UniformInt(-40, 40)),
                          static_cast<int32_t>(rng.UniformInt(-40, 40))});
    }
    const auto enc1 = EncodeTileRegion(region);
    const auto enc2 = EncodeTileRegion(DecodeTileRegion(enc1));
    ASSERT_EQ(enc1.levels.size(), enc2.levels.size()) << "trial " << trial;
    EXPECT_EQ(enc1.ValueCount(), enc2.ValueCount()) << "trial " << trial;
    for (size_t l = 0; l < enc1.levels.size(); ++l) {
      const EncodedLevel& a = enc1.levels[l];
      const EncodedLevel& b = enc2.levels[l];
      EXPECT_EQ(a.level, b.level);
      EXPECT_EQ(a.ix0, b.ix0);
      EXPECT_EQ(a.iy0, b.iy0);
      EXPECT_EQ(a.width, b.width);
      EXPECT_EQ(a.height, b.height);
      EXPECT_TRUE(a.bits == b.bits) << "trial " << trial << " level " << l;
    }
  }
}

TEST(CompressTest, DeepLevelExtremeIndicesRoundTrip) {
  // Degenerate-but-legal shapes: a single tile at a deep refinement level
  // with large negative indices, plus a far-flung partner forcing a wide
  // window at another level.
  TileRegion region({1e-12, -1e12}, 1024.0);
  region.Add(GridTile{12, -100000, 99999});
  region.Add(GridTile{12, -100001, 99998});
  region.Add(GridTile{0, 7, -7});
  const TileRegion dec = DecodeTileRegion(EncodeTileRegion(region));
  ASSERT_EQ(dec.size(), 3u);
  for (const GridTile& t : region.tiles()) {
    bool found = false;
    for (const GridTile& u : dec.tiles()) found |= (t == u);
    EXPECT_TRUE(found) << "tile (" << t.level << "," << t.ix << "," << t.iy
                       << ") lost";
  }
}

// --- DynamicBitset ----------------------------------------------------------

TEST(BitsetTest, SetTestClearCount) {
  DynamicBitset b(130);
  EXPECT_EQ(b.WordCount(), 3u);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, FromWordsRoundTrip) {
  DynamicBitset b(70);
  b.Set(3);
  b.Set(69);
  const DynamicBitset c = DynamicBitset::FromWords(b.words(), 70);
  EXPECT_TRUE(b == c);
}

}  // namespace
}  // namespace mpn
