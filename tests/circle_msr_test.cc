// Circle-MSR tests (Theorem 1 / Theorem 5): radius formulas, soundness of
// the resulting regions against brute force, and near-maximality.
#include <gtest/gtest.h>

#include "mpn/circle_msr.h"
#include "msr_test_util.h"
#include "util/rng.h"

namespace mpn {
namespace {

using testutil::IsOptimalMeetingPoint;
using testutil::MakeScenario;
using testutil::SampleRegion;
using testutil::Scenario;

TEST(CircleRadiusTest, MaxFormula) {
  // Theorem 1: rmax = (d2 - d1) / 2.
  EXPECT_DOUBLE_EQ(MaxCircleRadius(10.0, 16.0, 3, Objective::kMax), 3.0);
  EXPECT_DOUBLE_EQ(MaxCircleRadius(10.0, 10.0, 3, Objective::kMax), 0.0);
}

TEST(CircleRadiusTest, SumFormulaDividesByGroupSize) {
  // Theorem 5: rmax = (d2 - d1) / (2m).
  EXPECT_DOUBLE_EQ(MaxCircleRadius(10.0, 16.0, 3, Objective::kSum), 1.0);
  EXPECT_DOUBLE_EQ(MaxCircleRadius(10.0, 16.0, 1, Objective::kSum), 3.0);
}

TEST(CircleMsrTest, TwoPoiHandComputedExample) {
  // One user at the origin; POIs at distance 2 and 8: rmax = (8-2)/2 = 3.
  const std::vector<Point> pois = {{2, 0}, {-8, 0}};
  RTree tree = RTree::BulkLoad(pois);
  const auto result = ComputeCircleMsr(tree, {{0, 0}}, Objective::kMax);
  EXPECT_EQ(result.po_id, 0u);
  EXPECT_DOUBLE_EQ(result.rmax, 3.0);
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_TRUE(result.regions[0].is_circle());
  EXPECT_DOUBLE_EQ(result.regions[0].circle().radius, 3.0);
}

TEST(CircleMsrTest, SinglePoiGivesUnboundedRegion) {
  const std::vector<Point> pois = {{5, 5}};
  RTree tree = RTree::BulkLoad(pois);
  const auto result = ComputeCircleMsr(tree, {{0, 0}, {9, 3}},
                                       Objective::kMax);
  EXPECT_EQ(result.po_id, 0u);
  EXPECT_GT(result.rmax, 1e12);  // the result can never change
}

class CircleSoundnessTest
    : public ::testing::TestWithParam<std::tuple<size_t, Objective>> {};

TEST_P(CircleSoundnessTest, RegionsKeepOptimumInvariant) {
  const auto [m, obj] = GetParam();
  Rng rng(9100 + m * 10 + (obj == Objective::kSum ? 1 : 0));
  for (int trial = 0; trial < 30; ++trial) {
    const Scenario s =
        MakeScenario(120, m, 5000 + trial * 17 + m, /*extent=*/500.0);
    const auto result = ComputeCircleMsr(s.tree, s.users, obj);
    ASSERT_EQ(result.regions.size(), m);
    // Every user sits at her circle's center.
    for (size_t i = 0; i < m; ++i) {
      EXPECT_TRUE(result.regions[i].Contains(s.users[i]));
    }
    // Property: for sampled instances inside the circles, po stays optimal.
    for (int inst = 0; inst < 60; ++inst) {
      std::vector<Point> locations;
      for (size_t i = 0; i < m; ++i) {
        locations.push_back(SampleRegion(result.regions[i], &rng));
      }
      EXPECT_TRUE(
          IsOptimalMeetingPoint(s.pois, result.po_id, locations, obj, 1e-7))
          << "trial " << trial << " instance " << inst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Groups, CircleSoundnessTest,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{2}, size_t{3},
                                         size_t{5}),
                       ::testing::Values(Objective::kMax, Objective::kSum)),
    [](const ::testing::TestParamInfo<CircleSoundnessTest::ParamType>& info) {
      return std::string(ObjectiveName(std::get<1>(info.param))) + "_m" +
             std::to_string(std::get<0>(info.param));
    });

TEST(CircleMsrTest, RadiusIsTightInWorstCase) {
  // Theorem 1 is worst-case tight: one user between two POIs. rmax =
  // (d2 - d1)/2; moving the user 5% beyond rmax toward the second-best POI
  // flips the optimum, while moving exactly rmax keeps po optimal (tie).
  const double d1 = 10.0, d2 = 16.0;
  const std::vector<Point> pois = {{d1, 0}, {-d2, 0}};
  RTree tree = RTree::BulkLoad(pois);
  const auto result = ComputeCircleMsr(tree, {{0, 0}}, Objective::kMax);
  ASSERT_EQ(result.po_id, 0u);
  ASSERT_DOUBLE_EQ(result.rmax, (d2 - d1) / 2.0);
  const Point at_boundary{-result.rmax, 0};
  EXPECT_TRUE(IsOptimalMeetingPoint(pois, result.po_id, {at_boundary},
                                    Objective::kMax, 1e-12));
  const Point beyond{-result.rmax * 1.05, 0};
  EXPECT_FALSE(IsOptimalMeetingPoint(pois, result.po_id, {beyond},
                                     Objective::kMax, 1e-12));
}

TEST(CircleMsrTest, SumRadiusIsTightInWorstCase) {
  // Theorem 5 analogue for two users moving jointly toward the runner-up:
  // each user contributes 2r of sum-distance swing, so r = (s2 - s1)/(2m).
  const std::vector<Point> pois = {{0, 0}, {10, 0}};
  RTree tree = RTree::BulkLoad(pois);
  const std::vector<Point> users = {{4, 0}, {3, 0}};
  // s1 = 4+3 = 7 (po = p0); s2 = 6+7 = 13; rmax = 6/(2*2) = 1.5.
  const auto result = ComputeCircleMsr(tree, users, Objective::kSum);
  ASSERT_EQ(result.po_id, 0u);
  ASSERT_DOUBLE_EQ(result.rmax, 1.5);
  // Move both users rmax*1.05 toward p1 (east): p1's sum drops below po's.
  std::vector<Point> beyond;
  for (const Point& u : users) beyond.push_back({u.x + 1.575, u.y});
  EXPECT_FALSE(
      IsOptimalMeetingPoint(pois, result.po_id, beyond, Objective::kSum,
                            1e-12));
  // At exactly rmax the sums tie and po survives.
  std::vector<Point> boundary;
  for (const Point& u : users) boundary.push_back({u.x + 1.5, u.y});
  EXPECT_TRUE(IsOptimalMeetingPoint(pois, result.po_id, boundary,
                                    Objective::kSum, 1e-12));
}

TEST(CircleMsrTest, DeterministicAcrossCalls) {
  const Scenario s = MakeScenario(200, 3, 777);
  const auto a = ComputeCircleMsr(s.tree, s.users, Objective::kMax);
  const auto b = ComputeCircleMsr(s.tree, s.users, Objective::kMax);
  EXPECT_EQ(a.po_id, b.po_id);
  EXPECT_DOUBLE_EQ(a.rmax, b.rmax);
}

}  // namespace
}  // namespace mpn
