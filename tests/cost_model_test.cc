// Cost-model tests (Section-8 extension): protocol packet arithmetic is
// exact; the update-frequency estimator lands within a small constant
// factor of the simulated circle method.
#include <gtest/gtest.h>

#include "mpn/cost_model.h"
#include "sim/simulator.h"
#include "traj/generators.h"
#include "util/rng.h"

namespace mpn {
namespace {

TEST(PacketsPerUpdateTest, MatchesProtocolArithmetic) {
  const PacketModel model;
  // m = 3, circle regions (3 values): 1 + 2*(1+1) + 3*1 = 8 packets.
  EXPECT_DOUBLE_EQ(PacketsPerUpdate(3, kValuesPerCircle, model), 8.0);
  // m = 1: no probes; 1 + 0 + 1 = 2.
  EXPECT_DOUBLE_EQ(PacketsPerUpdate(1, kValuesPerCircle, model), 2.0);
  // Large regions spill into several result packets: 200 values + po -> 4.
  EXPECT_DOUBLE_EQ(PacketsPerUpdate(1, 200, model), 1.0 + 4.0);
}

TEST(PacketsPerUpdateTest, AgreesWithSimulatedAccounting) {
  // The closed form must reproduce the simulator's packet counters exactly
  // for the circle method (fixed 3-value regions).
  Rng rng(42);
  PoiOptions popt;
  popt.world = Rect({0, 0}, {20000, 20000});
  const auto pois = GeneratePois(400, popt, &rng);
  const RTree tree = RTree::BulkLoad(pois);
  RandomWalkGenerator::Options wopt;
  wopt.world = popt.world;
  wopt.mean_speed = 30.0;
  const RandomWalkGenerator gen(wopt);
  const auto fleet = gen.GenerateGroupedFleet(3, 3, 2000, 400, &rng);
  std::vector<const Trajectory*> group = {&fleet[0], &fleet[1], &fleet[2]};
  SimOptions opt;
  opt.server.method = Method::kCircle;
  Simulator sim(&pois, &tree, group, opt);
  const SimMetrics metrics = sim.Run();
  ASSERT_GT(metrics.updates, 0u);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(metrics.comm.TotalPackets()) /
          static_cast<double>(metrics.updates),
      PacketsPerUpdate(3, kValuesPerCircle));
}

TEST(CostModelTest, FrequencyEstimateWithinConstantFactor) {
  Rng rng(7);
  PoiOptions popt;
  popt.world = Rect({0, 0}, {50000, 50000});
  popt.clusters = 15;
  const auto pois = GeneratePois(3000, popt, &rng);
  const RTree tree = RTree::BulkLoad(pois);

  RandomWalkGenerator::Options wopt;
  wopt.world = popt.world;
  wopt.mean_speed = 8.0;
  wopt.heading_sigma = 0.05;
  const RandomWalkGenerator gen(wopt);
  const auto fleet = gen.GenerateGroupedFleet(9, 3, 2000, 1500, &rng);

  // Simulated truth over three groups.
  SimMetrics sim_total;
  std::vector<std::vector<Point>> configs;
  for (int g = 0; g < 3; ++g) {
    std::vector<const Trajectory*> group = {&fleet[3 * g], &fleet[3 * g + 1],
                                            &fleet[3 * g + 2]};
    SimOptions opt;
    opt.server.method = Method::kCircle;
    Simulator sim(&pois, &tree, group, opt);
    sim_total.Merge(sim.Run());
    // Model inputs: configurations sampled uniformly over the horizon.
    for (size_t t = 0; t < 1500; t += 50) {
      configs.push_back({group[0]->at(t), group[1]->at(t), group[2]->at(t)});
    }
  }
  const double truth = sim_total.UpdateFrequency();
  ASSERT_GT(truth, 0.0);

  const CircleCostEstimate est =
      EstimateCircleCost(tree, configs, Objective::kMax, wopt.mean_speed);
  EXPECT_GT(est.update_frequency, 0.0);
  // Order-of-magnitude agreement (movement is not perfectly straight and
  // escape directions are not adversarial, so a ~3x band is expected).
  const double ratio = est.update_frequency / truth;
  EXPECT_GT(ratio, 0.25) << "model " << est.update_frequency << " vs sim "
                         << truth;
  EXPECT_LT(ratio, 4.0) << "model " << est.update_frequency << " vs sim "
                        << truth;
  // Packets-per-timestamp estimate combines the two exact pieces.
  EXPECT_NEAR(est.packets_per_timestamp,
              est.update_frequency * est.packets_per_update, 1e-12);
}

TEST(CostModelTest, FrequencyDecreasesWithLargerRegions) {
  // Sanity: doubling speed should roughly double the estimate; holding
  // configs fixed isolates the model's speed dependence.
  Rng rng(9);
  PoiOptions popt;
  popt.world = Rect({0, 0}, {30000, 30000});
  const auto pois = GeneratePois(1000, popt, &rng);
  const RTree tree = RTree::BulkLoad(pois);
  std::vector<std::vector<Point>> configs;
  for (int i = 0; i < 50; ++i) {
    configs.push_back({{rng.Uniform(5000, 25000), rng.Uniform(5000, 25000)},
                       {rng.Uniform(5000, 25000), rng.Uniform(5000, 25000)}});
  }
  const auto slow = EstimateCircleCost(tree, configs, Objective::kMax, 5.0);
  const auto fast = EstimateCircleCost(tree, configs, Objective::kMax, 10.0);
  EXPECT_GT(fast.update_frequency, slow.update_frequency);
  EXPECT_LT(fast.update_frequency, 2.0 * slow.update_frequency + 1e-9);
  EXPECT_DOUBLE_EQ(slow.mean_rmax, fast.mean_rmax);
}

}  // namespace
}  // namespace mpn
