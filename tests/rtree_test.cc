// R-tree tests: structural invariants and query correctness against brute
// force, for both insertion-built and bulk-loaded trees, across sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "index/rtree.h"
#include "util/rng.h"

namespace mpn {
namespace {

std::vector<Point> RandomPoints(size_t n, uint64_t seed,
                                double extent = 1000.0) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, extent), rng.Uniform(0, extent)});
  }
  return pts;
}

RTree BuildByInsert(const std::vector<Point>& pts) {
  RTree tree;
  for (size_t i = 0; i < pts.size(); ++i) {
    tree.Insert(pts[i], static_cast<uint32_t>(i));
  }
  return tree;
}

std::vector<uint32_t> BruteRange(const std::vector<Point>& pts,
                                 const Rect& r) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (r.Contains(pts[i])) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

std::vector<uint32_t> BruteKnn(const std::vector<Point>& pts, const Point& q,
                               size_t k) {
  std::vector<uint32_t> ids(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) ids[i] = static_cast<uint32_t>(i);
  std::sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
    const double da = Dist(q, pts[a]), db = Dist(q, pts[b]);
    if (da != db) return da < db;
    return a < b;
  });
  if (ids.size() > k) ids.resize(k);
  return ids;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.bounds().IsEmpty());
  std::vector<uint32_t> out;
  tree.RangeQuery(Rect({0, 0}, {1, 1}), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.Knn({0, 0}, 5).empty());
  tree.CheckInvariants();
}

TEST(RTreeTest, SinglePoint) {
  RTree tree;
  tree.Insert({5, 5}, 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  std::vector<uint32_t> out;
  tree.RangeQuery(Rect({4, 4}, {6, 6}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
  tree.CheckInvariants();
}

TEST(RTreeTest, InsertInvariantsAcrossSizes) {
  for (size_t n : {1u, 5u, 33u, 100u, 1000u}) {
    const auto pts = RandomPoints(n, 1000 + n);
    RTree tree = BuildByInsert(pts);
    EXPECT_EQ(tree.size(), n);
    tree.CheckInvariants();
  }
}

TEST(RTreeTest, BulkLoadInvariantsAcrossSizes) {
  for (size_t n : {1u, 5u, 32u, 33u, 100u, 5000u}) {
    const auto pts = RandomPoints(n, 2000 + n);
    RTree tree = RTree::BulkLoad(pts);
    EXPECT_EQ(tree.size(), n);
    tree.CheckInvariants();
  }
}

TEST(RTreeTest, DuplicatePointsSupported) {
  std::vector<Point> pts(50, Point{7.0, 7.0});
  RTree tree = BuildByInsert(pts);
  tree.CheckInvariants();
  std::vector<uint32_t> out;
  tree.RangeQuery(Rect({7, 7}, {7, 7}), &out);
  EXPECT_EQ(out.size(), 50u);
}

class RTreeQueryTest : public ::testing::TestWithParam<
                           std::tuple<size_t, bool /*bulk*/>> {};

TEST_P(RTreeQueryTest, RangeMatchesBruteForce) {
  const auto [n, bulk] = GetParam();
  const auto pts = RandomPoints(n, 31 * n + (bulk ? 1 : 0));
  RTree tree = bulk ? RTree::BulkLoad(pts) : BuildByInsert(pts);
  Rng rng(n + 77);
  for (int q = 0; q < 25; ++q) {
    const Point lo{rng.Uniform(-50, 1000), rng.Uniform(-50, 1000)};
    const Rect r(lo, {lo.x + rng.Uniform(1, 400), lo.y + rng.Uniform(1, 400)});
    std::vector<uint32_t> got;
    tree.RangeQuery(r, &got);
    std::vector<uint32_t> want = BruteRange(pts, r);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

TEST_P(RTreeQueryTest, KnnMatchesBruteForce) {
  const auto [n, bulk] = GetParam();
  const auto pts = RandomPoints(n, 57 * n + (bulk ? 1 : 0));
  RTree tree = bulk ? RTree::BulkLoad(pts) : BuildByInsert(pts);
  Rng rng(n + 13);
  for (int q = 0; q < 20; ++q) {
    const Point query{rng.Uniform(-100, 1100), rng.Uniform(-100, 1100)};
    for (size_t k : {size_t{1}, size_t{3}, size_t{10}, n + 5}) {
      const auto got = tree.Knn(query, k);
      const auto want = BruteKnn(pts, query, k);
      ASSERT_EQ(got.size(), want.size());
      // Compare by distance (ids may differ only on exact ties).
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(Dist(query, pts[got[i]]), Dist(query, pts[want[i]]),
                    1e-9);
      }
    }
  }
}

TEST_P(RTreeQueryTest, CircleRangeMatchesBruteForce) {
  const auto [n, bulk] = GetParam();
  const auto pts = RandomPoints(n, 91 * n + (bulk ? 1 : 0));
  RTree tree = bulk ? RTree::BulkLoad(pts) : BuildByInsert(pts);
  Rng rng(n + 5);
  for (int q = 0; q < 20; ++q) {
    const Point c{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const double radius = rng.Uniform(1, 300);
    std::vector<uint32_t> got;
    tree.CircleRangeQuery(c, radius, &got);
    std::sort(got.begin(), got.end());
    std::vector<uint32_t> want;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (Dist(c, pts[i]) <= radius) want.push_back(static_cast<uint32_t>(i));
    }
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RTreeQueryTest,
    ::testing::Combine(::testing::Values(size_t{10}, size_t{100},
                                         size_t{1000}, size_t{4000}),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<RTreeQueryTest::ParamType>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_bulk" : "_insert");
    });

TEST(RTreeTest, TraversePruningRespectsPredicate) {
  const auto pts = RandomPoints(500, 4242);
  RTree tree = RTree::BulkLoad(pts);
  // Predicate rejecting everything visits only the root.
  tree.ResetNodeAccesses();
  size_t visited = 0;
  tree.Traverse([](const Rect&) { return false; },
                [&](const Point&, uint32_t) { ++visited; });
  EXPECT_EQ(visited, 0u);
  EXPECT_EQ(tree.node_accesses(), 1u);
  // Predicate accepting everything visits every point.
  tree.Traverse([](const Rect&) { return true; },
                [&](const Point&, uint32_t) { ++visited; });
  EXPECT_EQ(visited, 500u);
}

TEST(RTreeTest, NodeAccessCounterMonotone) {
  const auto pts = RandomPoints(2000, 8);
  RTree tree = RTree::BulkLoad(pts);
  tree.ResetNodeAccesses();
  std::vector<uint32_t> out;
  tree.RangeQuery(Rect({0, 0}, {100, 100}), &out);
  const uint64_t a1 = tree.node_accesses();
  EXPECT_GT(a1, 0u);
  tree.RangeQuery(Rect({0, 0}, {100, 100}), &out);
  EXPECT_GT(tree.node_accesses(), a1);
}

TEST(RTreeTest, BulkLoadIsDenserThanInsert) {
  const auto pts = RandomPoints(4000, 99);
  RTree ins = BuildByInsert(pts);
  RTree bulk = RTree::BulkLoad(pts);
  EXPECT_LE(bulk.Height(), ins.Height());
}

}  // namespace
}  // namespace mpn
