// Differential property test for the verification kernels (ctest label
// `unit`): replays the lifecycle fuzzer's seed-derived plans through the
// full engine with the scalar (AoS) and the SoA tile-verify kernels and
// asserts Engine::ResultDigest bit-identity between them — across 1/2/4
// verify-thread counts and 1/2 process shards. This is the engine-wide
// enforcement of the kernel bit-identity contract (tile_verify.cc states
// the per-operation argument; gt_verify_test.cc checks single calls).
//
// Widen the seed set with MPN_KERNEL_DIFF_SEEDS (a count or an explicit
// comma-separated list) and run the binary directly.
#include <gtest/gtest.h>

#include "engine_fuzz_util.h"

namespace mpn {
namespace {

using fuzz::FuzzPlan;
using fuzz::MakeFuzzPlan;
using fuzz::MakeFuzzWorld;
using fuzz::RunClusterPlan;
using fuzz::RunEnginePlan;
using fuzz::World;

std::vector<uint64_t> DiffSeeds() {
  return fuzz::SeedsFromEnv("MPN_KERNEL_DIFF_SEEDS",
                            {0xD1FF01, 0xD1FF02, 0xD1FF03});
}

class KernelDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(KernelDifferentialTest, ScalarAndSoAKernelsProduceIdenticalDigests) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t n_groups = static_cast<size_t>(rng.UniformInt(3, 6));
  const size_t group_size = static_cast<size_t>(rng.UniformInt(1, 3));
  const size_t horizon = static_cast<size_t>(rng.UniformInt(40, 90));
  const World w = MakeFuzzWorld(&rng, n_groups, group_size, horizon);
  const FuzzPlan plan = MakeFuzzPlan(&rng, n_groups, horizon);

  // Reference: the original scalar AoS walk, single-threaded.
  const uint64_t reference =
      RunEnginePlan(w, plan, 1, KernelKind::kScalar);
  for (size_t threads : {1u, 2u, 4u}) {
    EXPECT_EQ(RunEnginePlan(w, plan, threads, KernelKind::kSoA), reference)
        << "SoA kernel digest diverged from scalar at " << threads
        << " threads (seed 0x" << std::hex << seed << ")";
  }
  // The SoA kernel under the candidate fan-out. Parallel verify scans
  // whole chunks instead of stopping at the first accepted candidate, so
  // its verify-call counters (and hence the digest) legitimately differ
  // from the sequential scan — the kernel contract is that scalar and SoA
  // agree *given the same scan strategy*, so the reference here is a
  // scalar run under the same fan-out.
  EXPECT_EQ(RunEnginePlan(w, plan, 4, KernelKind::kSoA,
                          /*parallel_verify=*/true),
            RunEnginePlan(w, plan, 4, KernelKind::kScalar,
                          /*parallel_verify=*/true))
      << "SoA kernel digest diverged under parallel verify (seed 0x"
      << std::hex << seed << ")";
  // And across process shards (crash injection disabled: this test is
  // about kernel equivalence, not recovery).
  for (size_t workers : {1u, 2u}) {
    EXPECT_EQ(RunClusterPlan(w, plan, workers, 2, KernelKind::kSoA,
                             /*with_crashes=*/false),
              reference)
        << "SoA kernel digest diverged at " << workers
        << " shard(s) (seed 0x" << std::hex << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDifferentialTest,
                         testing::ValuesIn(DiffSeeds()), fuzz::SeedName);

}  // namespace
}  // namespace mpn
