// Cluster-layer tests (ctest label `cluster`): multi-process digest
// bit-identity against the single-process engine for any shard count,
// serving-loop drains across admission waves, cluster-level round-stat
// aggregation, mailbox-mark shipping, and the death/robustness paths
// (worker killed mid-run, double Start, admit after Shutdown).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "engine/cluster.h"
#include "engine/engine.h"
#include "traj/generators.h"
#include "util/rng.h"

namespace mpn {
namespace {

const Rect kWorld({0, 0}, {20000, 20000});

struct World {
  std::vector<Point> pois;
  RTree tree;
  std::vector<Trajectory> trajs;
};

World MakeWorld(size_t n_pois, size_t n_groups, size_t timestamps,
                uint64_t seed) {
  World w;
  Rng rng(seed);
  PoiOptions popt;
  popt.world = kWorld;
  popt.clusters = 12;
  w.pois = GeneratePois(n_pois, popt, &rng);
  w.tree = RTree::BulkLoad(w.pois);
  RandomWalkGenerator::Options wopt;
  wopt.world = kWorld;
  wopt.mean_speed = 60.0;
  const RandomWalkGenerator gen(wopt);
  w.trajs = gen.GenerateGroupedFleet(n_groups * 3, 3, 500.0, timestamps, &rng);
  return w;
}

EngineOptions MakeEngineOptions(size_t threads) {
  EngineOptions opt;
  opt.threads = threads;
  opt.sim.server.method = Method::kTileD;
  opt.sim.server.alpha = 10;
  return opt;
}

std::vector<const Trajectory*> GroupOf(const World& w, size_t g) {
  return {&w.trajs[3 * g], &w.trajs[3 * g + 1], &w.trajs[3 * g + 2]};
}

ClusterOptions MakeClusterOptions(size_t workers, size_t threads) {
  ClusterOptions opt;
  opt.workers = workers;
  opt.engine = MakeEngineOptions(threads);
  return opt;
}

TEST(ClusterTest, DigestBitIdenticalToSingleProcessForAnyShardCount) {
  const size_t kGroups = 8;
  const World w = MakeWorld(300, kGroups, 120, 0xC1057E);

  // Single-process reference (destroyed before the first fork so no
  // thread-pool workers are alive when the cluster forks).
  uint64_t ref_digest = 0;
  SimMetrics ref_total;
  std::vector<SimMetrics> ref_sessions;
  double ref_messages_sum = 0.0, ref_recomputes_sum = 0.0;
  size_t ref_rounds = 0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(2));
    for (size_t g = 0; g < kGroups; ++g) engine.AdmitSession(GroupOf(w, g));
    engine.Run();
    ref_digest = engine.ResultDigest();
    ref_total = engine.TotalMetrics();
    for (uint32_t g = 0; g < kGroups; ++g) {
      ref_sessions.push_back(engine.session_metrics(g));
    }
    ref_messages_sum = engine.round_stats().messages_per_round.Sum();
    ref_recomputes_sum = engine.round_stats().recomputes_per_round.Sum();
    ref_rounds = engine.round_stats().rounds;
  }

  for (size_t workers : {1u, 2u, 4u}) {
    ClusterEngine cluster(&w.pois, &w.tree, MakeClusterOptions(workers, 2));
    for (size_t g = 0; g < kGroups; ++g) {
      cluster.AdmitSession(GroupOf(w, g));
    }
    cluster.Run();
    EXPECT_EQ(cluster.ResultDigest(), ref_digest)
        << "cluster digest diverged at " << workers << " worker(s)";
    EXPECT_EQ(cluster.session_count(), kGroups);
    const SimMetrics total = cluster.TotalMetrics();
    EXPECT_EQ(total.timestamps, ref_total.timestamps);
    EXPECT_EQ(total.updates, ref_total.updates);
    EXPECT_EQ(total.comm.TotalPackets(), ref_total.comm.TotalPackets());
    EXPECT_EQ(total.msr.tiles_added, ref_total.msr.tiles_added);
    for (uint32_t g = 0; g < kGroups; ++g) {
      EXPECT_EQ(cluster.session_metrics(g).updates, ref_sessions[g].updates)
          << "group " << g;
      EXPECT_EQ(cluster.session_metrics(g).comm.TotalPackets(),
                ref_sessions[g].comm.TotalPackets());
    }
    // Cluster round-stat counters re-aggregate to the same per-timestamp
    // totals the single process computed.
    EXPECT_EQ(cluster.round_stats().rounds, ref_rounds);
    EXPECT_EQ(cluster.round_stats().messages_per_round.Sum(),
              ref_messages_sum);
    EXPECT_EQ(cluster.round_stats().recomputes_per_round.Sum(),
              ref_recomputes_sum);
  }
}

TEST(ClusterTest, ServingLoopDrainsAcrossAdmissionWaves) {
  const size_t kGroups = 6;
  const World w = MakeWorld(250, kGroups, 100, 0xC1057F);
  SessionTuning early;
  early.retire_at = 40;
  SessionTuning tiny;
  tiny.mailbox_capacity = 1;

  uint64_t ref_digest = 0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(1));
    for (size_t g = 0; g < kGroups; ++g) {
      engine.AdmitSession(GroupOf(w, g), g == 4 ? early
                                        : g == 5 ? tiny
                                                 : SessionTuning());
    }
    engine.Run();
    ref_digest = engine.ResultDigest();
  }

  ClusterEngine cluster(&w.pois, &w.tree, MakeClusterOptions(2, 2));
  cluster.Start();
  // Wave 1: three groups, drained to completion.
  for (size_t g = 0; g < 3; ++g) cluster.AdmitSession(GroupOf(w, g));
  cluster.Wait();
  EXPECT_EQ(cluster.session_count(), 3u);
  for (uint32_t g = 0; g < 3; ++g) {
    EXPECT_EQ(cluster.session_metrics(g).timestamps, 100u);
    EXPECT_GT(cluster.session_metrics(g).updates, 0u);
  }
  // Wave 2: the workers are still serving — admit three more (one retiring
  // early, one on a capacity-1 mailbox) and drain again.
  cluster.AdmitSession(GroupOf(w, 3));
  cluster.AdmitSession(GroupOf(w, 4), early);
  cluster.AdmitSession(GroupOf(w, 5), tiny);
  cluster.Wait();
  EXPECT_EQ(cluster.session_count(), kGroups);
  EXPECT_EQ(cluster.session_metrics(4).timestamps, 40u);
  EXPECT_EQ(cluster.ResultDigest(), ref_digest);
  cluster.Shutdown();
  EXPECT_EQ(cluster.ResultDigest(), ref_digest);  // frozen, still valid
}

TEST(ClusterTest, PreStartRetirementsRouteDeterministically) {
  const size_t kGroups = 5;
  const World w = MakeWorld(250, kGroups, 90, 0xC10580);
  SessionTuning zero;
  zero.retire_at = 0;

  uint64_t ref_digest = 0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(1));
    for (size_t g = 0; g < kGroups; ++g) {
      engine.AdmitSession(GroupOf(w, g), g == 2 ? zero : SessionTuning());
    }
    engine.RetireSession(1, 30);
    engine.Run();
    ref_digest = engine.ResultDigest();
  }

  for (size_t workers : {2u, 3u}) {
    ClusterEngine cluster(&w.pois, &w.tree,
                          MakeClusterOptions(workers, 1));
    for (size_t g = 0; g < kGroups; ++g) {
      cluster.AdmitSession(GroupOf(w, g), g == 2 ? zero : SessionTuning());
    }
    cluster.RetireSession(1, 30);  // queued pre-start, flushed in order
    cluster.Run();
    EXPECT_EQ(cluster.session_metrics(1).timestamps, 30u);
    EXPECT_EQ(cluster.session_metrics(2).timestamps, 0u);
    EXPECT_FALSE(cluster.session_has_result(2));
    EXPECT_EQ(cluster.ResultDigest(), ref_digest)
        << "digest diverged at " << workers << " worker(s)";
  }
}

TEST(ClusterTest, ShipsDeterministicCapacityZeroStallCounts) {
  // mailbox_capacity = 0 stalls on every non-final recomputation, a
  // deterministic count — the cluster must ship exactly the number the
  // single process reports (peaks stay 0: nothing can be buffered).
  const World w = MakeWorld(200, 2, 80, 0xC10581);
  SessionTuning unbuffered;
  unbuffered.mailbox_capacity = 0;

  std::vector<size_t> ref_stalls;
  uint64_t ref_digest = 0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(2));
    engine.AdmitSession(GroupOf(w, 0), unbuffered);
    engine.AdmitSession(GroupOf(w, 1), unbuffered);
    engine.Run();
    ref_digest = engine.ResultDigest();
    ref_stalls = {engine.session_stall_count(0),
                  engine.session_stall_count(1)};
    EXPECT_GT(ref_stalls[0], 0u);
  }

  ClusterEngine cluster(&w.pois, &w.tree, MakeClusterOptions(2, 2));
  cluster.AdmitSession(GroupOf(w, 0), unbuffered);
  cluster.AdmitSession(GroupOf(w, 1), unbuffered);
  cluster.Run();
  EXPECT_EQ(cluster.ResultDigest(), ref_digest);
  EXPECT_EQ(cluster.session_stall_count(0), ref_stalls[0]);
  EXPECT_EQ(cluster.session_stall_count(1), ref_stalls[1]);
  EXPECT_EQ(cluster.session_mailbox_peak(0), 0u);
  EXPECT_EQ(cluster.round_stats().mailbox_stalls_per_session.Sum(),
            static_cast<double>(ref_stalls[0] + ref_stalls[1]));
}

// --- Death / robustness ------------------------------------------------------
//
// These tests pin the pre-elastic fail-stop contract, so they disable the
// supervisor (max_restarts = 0). The recovery paths — restart, snapshot
// replay, graceful degradation — are covered by cluster_recovery_test.cc.

ClusterOptions FailStopOptions(size_t workers, size_t threads) {
  ClusterOptions opt = MakeClusterOptions(workers, threads);
  opt.recovery.max_restarts = 0;
  return opt;
}

TEST(ClusterDeathTest, WorkerExitSurfacesCleanErrorWithShardId) {
  const World w = MakeWorld(200, 2, 60, 0xC10582);
  ClusterEngine cluster(&w.pois, &w.tree, FailStopOptions(2, 1));
  cluster.AdmitSession(GroupOf(w, 0));
  cluster.AdmitSession(GroupOf(w, 1));
  cluster.Start();
  cluster.KillWorkerForTest(1);
  try {
    cluster.Wait();
    FAIL() << "Wait() must throw when a worker died";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shard 1"), std::string::npos)
        << "error must name the failing shard: " << e.what();
  }
  // The failure latches: replies may be out of phase with requests, so
  // further drains/admissions must throw instead of silently returning
  // stale or misaligned results.
  EXPECT_THROW(cluster.Wait(), std::runtime_error);
  EXPECT_THROW(cluster.AdmitSession(GroupOf(w, 0)), std::runtime_error);
  // Destruction after the failure must tear the survivors down cleanly
  // (no hang) — implicitly checked by the test finishing inside its ctest
  // timeout.
}

TEST(ClusterDeathTest, WorkerDeathBeforeAdmitFailsTheAdmit) {
  const World w = MakeWorld(150, 2, 40, 0xC10583);
  ClusterEngine cluster(&w.pois, &w.tree, FailStopOptions(1, 1));
  cluster.Start();
  cluster.KillWorkerForTest(0);
  // The send may land in the kernel buffer before the death is visible;
  // the drain definitely observes it.
  try {
    cluster.AdmitSession(GroupOf(w, 0));
    cluster.Wait();
    FAIL() << "admit+drain against a dead worker must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shard 0"), std::string::npos)
        << e.what();
  }
}

TEST(ClusterLifecycleTest, DoubleStartIsAHardError) {
  const World w = MakeWorld(150, 1, 30, 0xC10584);
  ClusterEngine cluster(&w.pois, &w.tree, MakeClusterOptions(2, 1));
  cluster.Start();
  EXPECT_THROW(cluster.Start(), std::logic_error);
  EXPECT_THROW(cluster.Run(), std::logic_error);
}

TEST(ClusterLifecycleTest, WaitBeforeStartIsAHardError) {
  const World w = MakeWorld(150, 1, 30, 0xC10585);
  ClusterEngine cluster(&w.pois, &w.tree, MakeClusterOptions(2, 1));
  EXPECT_THROW(cluster.Wait(), std::logic_error);
}

TEST(ClusterLifecycleTest, AdmitAfterShutdownIsAHardError) {
  const World w = MakeWorld(150, 2, 30, 0xC10586);
  ClusterEngine cluster(&w.pois, &w.tree, MakeClusterOptions(2, 1));
  cluster.AdmitSession(GroupOf(w, 0));
  cluster.Run();
  EXPECT_THROW(cluster.AdmitSession(GroupOf(w, 1)), std::logic_error);
  EXPECT_THROW(cluster.RetireSession(0, 10), std::logic_error);
  // Shutdown stays idempotent and results stay readable.
  cluster.Shutdown();
  EXPECT_EQ(cluster.session_metrics(0).timestamps, 30u);
}

TEST(ClusterLifecycleTest, UnknownSessionIdsAreRejected) {
  const World w = MakeWorld(150, 1, 30, 0xC10587);
  ClusterEngine cluster(&w.pois, &w.tree, MakeClusterOptions(2, 1));
  EXPECT_THROW(cluster.RetireSession(0, 10), std::out_of_range);
  cluster.AdmitSession(GroupOf(w, 0));
  EXPECT_THROW(cluster.session_metrics(0), std::out_of_range);  // pre-Wait
  cluster.Run();
  EXPECT_NO_THROW(cluster.session_metrics(0));
  EXPECT_THROW(cluster.session_metrics(1), std::out_of_range);
}

}  // namespace
}  // namespace mpn
