// Tile-MSR tests (Section 5 + Section 6.3): the central soundness property
// (safe regions never let the optimum change), GT- vs IT-Verify agreement,
// orderings, buffering, and structural checks.
#include <gtest/gtest.h>

#include <string>

#include "mpn/tile_msr.h"
#include "mpn/verify.h"
#include "msr_test_util.h"
#include "util/rng.h"

namespace mpn {
namespace {

using testutil::IsOptimalMeetingPoint;
using testutil::MakeScenario;
using testutil::SampleRegion;
using testutil::Scenario;

std::vector<MotionHint> RandomHints(size_t m, Rng* rng) {
  std::vector<MotionHint> hints(m);
  for (auto& h : hints) {
    h.has_heading = true;
    h.heading = rng->Uniform(-3.14159, 3.14159);
    h.theta = rng->Uniform(0.3, 1.2);
  }
  return hints;
}

struct TileCase {
  Objective obj;
  bool directed;
  bool buffered;
  VerifierKind verifier;
  std::string name;
};

class TileSoundnessTest : public ::testing::TestWithParam<TileCase> {};

// The core paper invariant (Definition 3): for every sampled instance of
// user locations inside the computed regions, the reported meeting point
// remains optimal. Checked against brute force over all POIs.
TEST_P(TileSoundnessTest, RegionsKeepOptimumInvariant) {
  const TileCase& tc = GetParam();
  Rng rng(31337);
  TileMsrConfig config;
  config.alpha = 12;
  config.split_level = 2;
  config.directed = tc.directed;
  config.buffered = tc.buffered;
  config.buffer_b = 40;
  config.verifier = tc.verifier;
  for (int trial = 0; trial < 25; ++trial) {
    const size_t m = 1 + trial % 4;
    const Scenario s = MakeScenario(150, m, 8800 + trial * 31, 800.0);
    const auto hints = RandomHints(m, &rng);
    const auto result = ComputeTileMsr(s.tree, s.users, tc.obj, config, hints);
    ASSERT_EQ(result.regions.size(), m);
    for (size_t i = 0; i < m; ++i) {
      EXPECT_TRUE(result.regions[i].Contains(s.users[i]))
          << "user " << i << " outside her own region, trial " << trial;
    }
    for (int inst = 0; inst < 40; ++inst) {
      std::vector<Point> locations;
      for (size_t i = 0; i < m; ++i) {
        locations.push_back(SampleRegion(result.regions[i], &rng));
      }
      EXPECT_TRUE(
          IsOptimalMeetingPoint(s.pois, result.po_id, locations, tc.obj, 1e-7))
          << tc.name << " trial " << trial << " instance " << inst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TileSoundnessTest,
    ::testing::Values(
        TileCase{Objective::kMax, false, false, VerifierKind::kGt, "Tile"},
        TileCase{Objective::kMax, true, false, VerifierKind::kGt, "TileD"},
        TileCase{Objective::kMax, true, true, VerifierKind::kGt, "TileDb"},
        TileCase{Objective::kMax, false, false, VerifierKind::kIt, "TileIT"},
        TileCase{Objective::kSum, false, false, VerifierKind::kGt, "SumTile"},
        TileCase{Objective::kSum, true, false, VerifierKind::kGt, "SumTileD"},
        TileCase{Objective::kSum, true, true, VerifierKind::kGt, "SumTileDb"}),
    [](const ::testing::TestParamInfo<TileCase>& info) {
      return info.param.name;
    });

// GT-Verify is a conservative refinement: whenever GT accepts a tile,
// exhaustive IT must accept it too (Theorem 2 soundness at tile-group
// granularity).
TEST(GtVsItTest, GtAcceptanceImpliesItAcceptance) {
  Rng rng(1212);
  size_t gt_accepts = 0, checked = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const size_t m = 2 + trial % 2;
    const Scenario s = MakeScenario(60, m, 7100 + trial, 400.0);
    // Build small tile regions with the engine first.
    TileMsrConfig config;
    config.alpha = 4;
    config.split_level = 1;
    const auto result =
        ComputeTileMsr(s.tree, s.users, Objective::kMax, config);
    // Reconstruct TileRegions (skip degenerate circle fallbacks).
    std::vector<TileRegion> regions;
    bool tiles_ok = true;
    for (const auto& r : result.regions) {
      if (r.is_circle()) {
        tiles_ok = false;
        break;
      }
      regions.push_back(r.tiles());
    }
    if (!tiles_ok) continue;
    // Try random new tiles around each user against random candidates.
    MaxGtVerifier gt;
    MaxItVerifier it;
    for (int probe = 0; probe < 20; ++probe) {
      const size_t ui = static_cast<size_t>(rng.UniformInt(0, m - 1));
      const GridTile cell{0, static_cast<int32_t>(rng.UniformInt(-3, 3)),
                          static_cast<int32_t>(rng.UniformInt(-3, 3))};
      const Rect rect = regions[ui].TileRect(cell);
      const uint32_t cid = static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.pois.size()) - 1));
      if (cid == result.po_id) continue;
      const Candidate cand{cid, s.pois[cid]};
      ++checked;
      const bool g = gt.VerifyTile(regions, ui, rect, cand, result.po);
      if (g) {
        ++gt_accepts;
        EXPECT_TRUE(it.VerifyTile(regions, ui, rect, cand, result.po))
            << "GT accepted a tile IT rejects (unsound GT), trial " << trial;
      }
    }
  }
  EXPECT_GT(checked, 100u);
  EXPECT_GT(gt_accepts, 20u);
}

// Divide-Verify splits a rejected tile and can admit sub-tiles (Fig. 6b).
TEST(DivideVerifyTest, SplitsRecoverPartialTiles) {
  // po between two users; a competing point close to one side.
  const std::vector<Point> pois = {{0.0, 0.0}, {3.0, 0.4}};
  RTree tree = RTree::BulkLoad(pois);
  const std::vector<Point> users = {{-2, 0}, {2, 0}};
  TileMsrConfig config;
  config.alpha = 8;
  config.split_level = 2;
  const auto result = ComputeTileMsr(tree, users, Objective::kMax, config);
  ASSERT_FALSE(result.regions.empty());
  // With L=2 splits enabled the engine usually admits sub-level tiles; the
  // stats must reflect divide calls beyond level-0 tests.
  EXPECT_GT(result.stats.divide_calls, result.stats.tiles_tried);
}

TEST(DivideVerifyTest, RespectsSplitLevelZero) {
  const Scenario s = MakeScenario(100, 2, 3333, 500.0);
  TileMsrConfig c0;
  c0.alpha = 6;
  c0.split_level = 0;
  const auto r0 = ComputeTileMsr(s.tree, s.users, Objective::kMax, c0);
  for (const auto& region : r0.regions) {
    if (region.is_circle()) continue;
    for (const GridTile& t : region.tiles().tiles()) {
      EXPECT_EQ(t.level, 0);  // no splits allowed
    }
  }
}

TEST(TileMsrTest, TileRegionsContainInscribedSquareOfCircle) {
  // The initial tile equals the square inscribed in the Theorem-1 circle, so
  // tile regions are never smaller than that square.
  const Scenario s = MakeScenario(200, 3, 11);
  TileMsrConfig config;
  const auto tiles = ComputeTileMsr(s.tree, s.users, Objective::kMax, config);
  const auto circles = ComputeCircleMsr(s.tree, s.users, Objective::kMax);
  for (size_t i = 0; i < s.users.size(); ++i) {
    if (tiles.regions[i].is_circle()) continue;
    const Rect inscribed = Circle(s.users[i], circles.rmax).InscribedSquare();
    const Rect initial = tiles.regions[i].tiles().rects()[0];
    EXPECT_NEAR(initial.lo.x, inscribed.lo.x, 1e-9);
    EXPECT_NEAR(initial.hi.y, inscribed.hi.y, 1e-9);
  }
}

TEST(TileMsrTest, GrowsBeyondCircleRegions) {
  // Aggregate tile area should typically exceed the circle area (that is the
  // whole point of Section 5). Checked across scenarios on average.
  double tile_area = 0.0, circle_area = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const Scenario s = MakeScenario(150, 3, 500 + trial);
    TileMsrConfig config;
    config.alpha = 30;
    const auto t = ComputeTileMsr(s.tree, s.users, Objective::kMax, config);
    const auto c = ComputeCircleMsr(s.tree, s.users, Objective::kMax);
    if (c.rmax > 1e12) continue;
    for (const auto& r : t.regions) {
      if (r.is_circle()) continue;
      for (const Rect& rect : r.tiles().rects()) tile_area += rect.Area();
    }
    circle_area += 3.14159265 * c.rmax * c.rmax * 3;
  }
  EXPECT_GT(tile_area, circle_area);
}

TEST(TileMsrTest, BufferedRegionsAreSubsetsInSpirit) {
  // Buffering limits region extent by beta_b: buffered regions never extend
  // beyond max displacement beta_b from the user.
  const Scenario s = MakeScenario(300, 3, 919);
  TileMsrConfig config;
  config.buffered = true;
  config.buffer_b = 25;
  const auto result = ComputeTileMsr(s.tree, s.users, Objective::kMax, config);
  BufferedCandidateSource source(s.tree, s.users, Objective::kMax,
                                 config.buffer_b);
  const double beta_b = source.Beta(config.buffer_b);
  for (size_t i = 0; i < s.users.size(); ++i) {
    if (result.regions[i].is_circle()) continue;
    for (const Rect& t : result.regions[i].tiles().rects()) {
      EXPECT_LE(t.MaxDist(s.users[i]), beta_b + 1e-9);
    }
  }
}

TEST(TileMsrTest, DegenerateTiedOptimaFallBackToCircles) {
  // Two POIs equidistant from the single user: rmax = 0, no tile fits.
  const std::vector<Point> pois = {{1, 0}, {-1, 0}};
  RTree tree = RTree::BulkLoad(pois);
  const auto result =
      ComputeTileMsr(tree, {{0, 0}}, Objective::kMax, TileMsrConfig{});
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_TRUE(result.regions[0].is_circle());
  EXPECT_DOUBLE_EQ(result.regions[0].circle().radius, 0.0);
}

TEST(TileMsrTest, SinglePoiFallsBackToUnboundedCircle) {
  const std::vector<Point> pois = {{4, 4}};
  RTree tree = RTree::BulkLoad(pois);
  const auto result =
      ComputeTileMsr(tree, {{0, 0}, {5, 5}}, Objective::kMax, TileMsrConfig{});
  for (const auto& r : result.regions) {
    EXPECT_TRUE(r.is_circle());
    EXPECT_GT(r.circle().radius, 1e12);
  }
}

TEST(TileMsrTest, AlphaBoundsTileCount) {
  const Scenario s = MakeScenario(100, 2, 2024);
  for (int alpha : {1, 5, 15}) {
    TileMsrConfig config;
    config.alpha = alpha;
    config.split_level = 0;  // one insert per round at most
    const auto result =
        ComputeTileMsr(s.tree, s.users, Objective::kMax, config);
    for (const auto& r : result.regions) {
      if (r.is_circle()) continue;
      // initial tile + at most alpha successful rounds
      EXPECT_LE(r.tiles().size(), static_cast<size_t>(alpha) + 1);
    }
  }
}

TEST(TileMsrTest, DirectedOrderingBiasesGrowthTowardHeading) {
  // A user moving east should extend farther east than west on average.
  const Scenario s = MakeScenario(250, 1, 606);
  TileMsrConfig config;
  config.alpha = 20;
  config.directed = true;
  std::vector<MotionHint> hints(1);
  hints[0].has_heading = true;
  hints[0].heading = 0.0;  // east
  hints[0].theta = 0.6;
  const auto result =
      ComputeTileMsr(s.tree, s.users, Objective::kMax, config, hints);
  if (!result.regions[0].is_circle()) {
    const Rect b = result.regions[0].tiles().Bounds();
    const double east = b.hi.x - s.users[0].x;
    const double west = s.users[0].x - b.lo.x;
    EXPECT_GE(east + 1e-9, west);
  }
}

TEST(TileMsrTest, StatsArePopulated) {
  const Scenario s = MakeScenario(150, 3, 321);
  TileMsrConfig config;
  const auto result = ComputeTileMsr(s.tree, s.users, Objective::kMax, config);
  EXPECT_GT(result.stats.divide_calls, 0u);
  EXPECT_GT(result.stats.tiles_added, 0u);
  EXPECT_GT(result.stats.candidates.retrievals, 0u);
  EXPECT_GT(result.stats.rtree_node_accesses, 0u);
}

TEST(TileMsrTest, DeterministicAcrossCalls) {
  const Scenario s = MakeScenario(200, 3, 8);
  TileMsrConfig config;
  config.directed = false;
  const auto a = ComputeTileMsr(s.tree, s.users, Objective::kMax, config);
  const auto b = ComputeTileMsr(s.tree, s.users, Objective::kMax, config);
  EXPECT_EQ(a.po_id, b.po_id);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (size_t i = 0; i < a.regions.size(); ++i) {
    ASSERT_EQ(a.regions[i].is_circle(), b.regions[i].is_circle());
    if (!a.regions[i].is_circle()) {
      EXPECT_EQ(a.regions[i].tiles().size(), b.regions[i].tiles().size());
    }
  }
}

// --- Tile ordering unit tests ----------------------------------------------

TEST(TileOrderingTest, FirstRingVisitsEightCellsCcwFromEast) {
  TileRegion region({0, 0}, 1.0);
  region.Add(GridTile{0, 0, 0});
  TileOrdering ordering;
  std::vector<std::pair<int, int>> cells;
  for (int i = 0; i < 8; ++i) {
    auto t = ordering.Next(region);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->level, 0);
    cells.push_back({t->ix, t->iy});
    ordering.MarkInserted();
  }
  const std::vector<std::pair<int, int>> want = {
      {1, 0}, {1, 1}, {0, 1}, {-1, 1}, {-1, 0}, {-1, -1}, {0, -1}, {1, -1}};
  EXPECT_EQ(cells, want);
}

TEST(TileOrderingTest, StopsWhenRingHadNoInsertion) {
  TileRegion region({0, 0}, 1.0);
  region.Add(GridTile{0, 0, 0});
  TileOrdering ordering;
  // Drain ring 1 without marking any insertion.
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(ordering.Next(region).has_value());
  EXPECT_FALSE(ordering.Next(region).has_value());
  EXPECT_FALSE(ordering.Next(region).has_value());  // stays exhausted
}

TEST(TileOrderingTest, AdvancesToOuterRingAfterInsertion) {
  TileRegion region({0, 0}, 1.0);
  region.Add(GridTile{0, 0, 0});
  TileOrdering ordering;
  auto first = ordering.Next(region);
  ASSERT_TRUE(first.has_value());
  ordering.MarkInserted();
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(ordering.Next(region).has_value());
  // Ring 2 opens because ring 1 had an insertion; it has 16 cells.
  auto t = ordering.Next(region);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(std::max(std::abs(t->ix), std::abs(t->iy)), 2);
}

TEST(TileOrderingTest, DirectedConeFiltersCells) {
  TileRegion region({0, 0}, 1.0);
  region.Add(GridTile{0, 0, 0});
  // Narrow cone toward east: western cells must be skipped.
  TileOrdering ordering(/*heading=*/0.0, /*theta=*/0.3);
  std::vector<std::pair<int, int>> cells;
  while (cells.size() < 6) {
    auto t = ordering.Next(region);
    if (!t) break;
    cells.push_back({t->ix, t->iy});
    ordering.MarkInserted();
  }
  ASSERT_FALSE(cells.empty());
  for (const auto& [ix, iy] : cells) {
    EXPECT_GT(ix, 0) << "cell (" << ix << "," << iy
                     << ") is not in the eastern cone";
  }
}

TEST(TileOrderingTest, WideConeBehavesLikeUndirected) {
  TileRegion region({0, 0}, 1.0);
  region.Add(GridTile{0, 0, 0});
  TileOrdering directed(/*heading=*/1.0, /*theta=*/3.2);  // > pi: everything
  TileOrdering undirected;
  for (int i = 0; i < 24; ++i) {
    auto a = directed.Next(region);
    auto b = undirected.Next(region);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    EXPECT_EQ(a->ix, b->ix);
    EXPECT_EQ(a->iy, b->iy);
    directed.MarkInserted();
    undirected.MarkInserted();
  }
}

}  // namespace
}  // namespace mpn
