// Engine-layer tests: thread-pool primitives, multi-group determinism
// across thread counts, engine/simulator equivalence, per-round stats, and
// a 64-group integration run (suites named *Integration* are registered
// under the `integration` ctest label; everything else is `unit`).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "sim/simulator.h"
#include "traj/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mpn {
namespace {

// --- Thread pool ------------------------------------------------------------

TEST(ThreadPoolTest, SubmitRunsTaskAndReturnsValue) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.thread_count(), 2u);
  auto future = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.Submit([&sum, i]() { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran]() { ++ran; });
    }
    // Destructor must wait for all 32, not drop queued ones.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1237;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, 10, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForChunkLayoutIsGrainAligned) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelFor(105, 16, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 7u);  // ceil(105/16)
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin % 16, 0u);
    EXPECT_EQ(end, std::min<size_t>(105, begin + 16));
  }
}

TEST(ThreadPoolTest, ParallelForWithoutCallerParticipationStaysOffCaller) {
  // The engine's round loop relies on this: with caller_participates off
  // (and more than one chunk), every chunk runs on a pool worker, so the
  // configured thread count is exactly the number of executors.
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::mutex mu;
  std::vector<std::thread::id> executors;
  size_t covered = 0;
  pool.ParallelFor(
      100, 10,
      [&](size_t begin, size_t end) {
        std::lock_guard<std::mutex> lock(mu);
        executors.push_back(std::this_thread::get_id());
        covered += end - begin;
      },
      /*caller_participates=*/false);
  EXPECT_EQ(covered, 100u);
  for (const auto& id : executors) EXPECT_NE(id, caller);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(100, 8,
                                [](size_t begin, size_t) {
                                  if (begin == 32) {
                                    throw std::logic_error("chunk failed");
                                  }
                                }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Saturate the pool with outer chunks that each fan out again; the
  // caller-participates design must make progress regardless.
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  pool.ParallelFor(8, 1, [&pool, &total](size_t, size_t) {
    pool.ParallelFor(50, 4, [&total](size_t begin, size_t end) {
      total += end - begin;
    });
  });
  EXPECT_EQ(total.load(), 400u);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, PostRunsInPriorityOrder) {
  // Gate the single worker, queue out of order, then observe that the
  // priority heap replays the queue smallest-priority-first (ties FIFO).
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = false;
  std::vector<int> order;
  pool.Post([&]() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&]() { return gate_open; });
  });
  for (int tag : {3, 1, 2}) {
    pool.Post(
        [&order, &mu, tag]() {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(tag);
        },
        static_cast<uint64_t>(tag));
  }
  auto last = pool.Submit([]() {});  // default priority: runs after 1,2,3
  {
    std::lock_guard<std::mutex> lock(mu);
    gate_open = true;
  }
  cv.notify_all();
  last.get();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadPoolTest, PostCompletionCallbackRunsAfterTask) {
  ThreadPool pool(2);
  std::atomic<int> stage{0};
  std::promise<void> done;
  pool.Post(
      [&stage]() {
        int expected = 0;
        stage.compare_exchange_strong(expected, 1);
      },
      ThreadPool::kDefaultPriority,
      [&stage, &done]() {
        int expected = 1;
        if (stage.compare_exchange_strong(expected, 2)) done.set_value();
      });
  done.get_future().wait();
  EXPECT_EQ(stage.load(), 2);
}

// --- Engine -----------------------------------------------------------------

const Rect kWorld({0, 0}, {20000, 20000});

struct World {
  std::vector<Point> pois;
  RTree tree;
  std::vector<Trajectory> trajs;
};

World MakeWorld(size_t n_pois, size_t n_groups, size_t timestamps,
                uint64_t seed) {
  World w;
  Rng rng(seed);
  PoiOptions popt;
  popt.world = kWorld;
  popt.clusters = 12;
  w.pois = GeneratePois(n_pois, popt, &rng);
  w.tree = RTree::BulkLoad(w.pois);
  RandomWalkGenerator::Options wopt;
  wopt.world = kWorld;
  wopt.mean_speed = 60.0;
  const RandomWalkGenerator gen(wopt);
  w.trajs = gen.GenerateGroupedFleet(n_groups * 3, 3, 500.0, timestamps, &rng);
  return w;
}

EngineOptions MakeEngineOptions(size_t threads, bool parallel_verify) {
  EngineOptions opt;
  opt.threads = threads;
  opt.parallel_verify = parallel_verify;
  opt.verify_min_candidates = 2;  // tiny scenes still exercise the fan-out
  opt.sim.server.method = Method::kTileD;
  opt.sim.server.alpha = 10;
  return opt;
}

uint64_t RunEngine(const World& w, size_t n_groups, size_t threads,
                   bool parallel_verify, SimMetrics* total = nullptr,
                   std::vector<SimMetrics>* per_session = nullptr) {
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(threads, parallel_verify));
  for (size_t g = 0; g < n_groups; ++g) {
    engine.AddSession({&w.trajs[3 * g], &w.trajs[3 * g + 1],
                       &w.trajs[3 * g + 2]});
  }
  engine.Run();
  if (total != nullptr) *total = engine.TotalMetrics();
  if (per_session != nullptr) {
    per_session->clear();
    for (uint32_t id = 0; id < n_groups; ++id) {
      per_session->push_back(engine.session_metrics(id));
    }
  }
  return engine.ResultDigest();
}

TEST(EngineTest, BitIdenticalAcrossThreadCounts) {
  const World w = MakeWorld(300, 6, 200, 0xE7617E);
  std::vector<SimMetrics> sessions1;
  const uint64_t d1 = RunEngine(w, 6, 1, false, nullptr, &sessions1);
  for (size_t threads : {2u, 4u, 7u}) {
    std::vector<SimMetrics> sessions;
    const uint64_t d = RunEngine(w, 6, threads, false, nullptr, &sessions);
    EXPECT_EQ(d, d1) << "digest diverged at " << threads << " threads";
    ASSERT_EQ(sessions.size(), sessions1.size());
    for (size_t g = 0; g < sessions.size(); ++g) {
      EXPECT_EQ(sessions[g].updates, sessions1[g].updates) << "group " << g;
      EXPECT_EQ(sessions[g].result_changes, sessions1[g].result_changes);
      EXPECT_EQ(sessions[g].comm.TotalPackets(),
                sessions1[g].comm.TotalPackets());
    }
  }
}

TEST(EngineTest, BitIdenticalAcrossThreadCountsWithParallelVerify) {
  const World w = MakeWorld(300, 4, 200, 0xFA2007);
  const uint64_t d1 = RunEngine(w, 4, 1, true);
  EXPECT_EQ(RunEngine(w, 4, 2, true), d1);
  EXPECT_EQ(RunEngine(w, 4, 4, true), d1);
}

TEST(EngineTest, NodeAccessCountersStableAcrossVerifyThreadCounts) {
  // R-tree node accesses are accumulated from thread-local counters via
  // tight per-call deltas (candidates.cc, tile_msr.cc). The fan-out must
  // not leak or drop accesses no matter how chunks land on pooled worker
  // threads, so the per-recompute totals — and hence the figure counters —
  // are identical at every thread count.
  const World w = MakeWorld(300, 4, 200, 0xACCE55);
  SimMetrics base;
  RunEngine(w, 4, 1, true, &base);
  EXPECT_GT(base.msr.rtree_node_accesses, 0u);
  for (size_t threads : {2u, 4u}) {
    SimMetrics m;
    RunEngine(w, 4, threads, true, &m);
    EXPECT_EQ(m.msr.rtree_node_accesses, base.msr.rtree_node_accesses)
        << "node-access counter drifted at " << threads << " threads";
  }
}

TEST(EngineTest, ParallelVerifyPreservesProtocolBehavior) {
  // The fan-out changes only how candidate scans are scheduled, never which
  // tiles are accepted — so the protocol-visible results must match the
  // sequential scan exactly (verifier call counters may differ: chunks
  // don't stop at the first failing candidate of the whole list).
  const World w = MakeWorld(300, 4, 200, 0x5E0);
  SimMetrics seq, par;
  RunEngine(w, 4, 1, false, &seq);
  RunEngine(w, 4, 4, true, &par);
  EXPECT_EQ(par.updates, seq.updates);
  EXPECT_EQ(par.result_changes, seq.result_changes);
  EXPECT_EQ(par.comm.TotalMessages(), seq.comm.TotalMessages());
  EXPECT_EQ(par.comm.TotalPackets(), seq.comm.TotalPackets());
  EXPECT_EQ(par.msr.tiles_added, seq.msr.tiles_added);
}

TEST(EngineTest, MatchesIndependentSimulatorRuns) {
  // A multi-session engine must produce exactly the merged metrics of the
  // groups simulated one at a time through the legacy front.
  const World w = MakeWorld(250, 3, 150, 0xBEEF01);
  SimMetrics engine_total;
  RunEngine(w, 3, 2, false, &engine_total);
  SimOptions opt;
  opt.server = MakeEngineOptions(1, false).sim.server;
  SimMetrics legacy;
  for (size_t g = 0; g < 3; ++g) {
    Simulator sim(&w.pois, &w.tree,
                  {&w.trajs[3 * g], &w.trajs[3 * g + 1], &w.trajs[3 * g + 2]},
                  opt);
    legacy.Merge(sim.Run());
  }
  EXPECT_EQ(engine_total.timestamps, legacy.timestamps);
  EXPECT_EQ(engine_total.updates, legacy.updates);
  EXPECT_EQ(engine_total.result_changes, legacy.result_changes);
  EXPECT_EQ(engine_total.comm.TotalMessages(), legacy.comm.TotalMessages());
  EXPECT_EQ(engine_total.comm.TotalPackets(), legacy.comm.TotalPackets());
  EXPECT_EQ(engine_total.msr.tiles_added, legacy.msr.tiles_added);
  EXPECT_EQ(engine_total.msr.verify.calls, legacy.msr.verify.calls);
  EXPECT_EQ(engine_total.msr.rtree_node_accesses,
            legacy.msr.rtree_node_accesses);
}

TEST(EngineTest, RoundStatsAccountForAllWork) {
  const World w = MakeWorld(250, 4, 180, 0xC0FFEE);
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
  for (size_t g = 0; g < 4; ++g) {
    engine.AddSession({&w.trajs[3 * g], &w.trajs[3 * g + 1],
                       &w.trajs[3 * g + 2]});
  }
  engine.Run();
  const EngineRoundStats& rs = engine.round_stats();
  const SimMetrics total = engine.TotalMetrics();
  EXPECT_EQ(rs.rounds, 180u);  // all horizons equal -> one round per ts
  EXPECT_EQ(static_cast<size_t>(rs.recomputes_per_round.Sum()),
            total.updates);
  EXPECT_EQ(static_cast<size_t>(rs.messages_per_round.Sum()),
            total.comm.TotalMessages());
  // First round: no session holds a region yet, so every one recomputes.
  EXPECT_EQ(static_cast<size_t>(rs.recomputes_per_round.Max()), 4u);
  // The table renders one row per metric.
  EXPECT_NE(rs.ToTable().ToString().find("recomputes/round"),
            std::string::npos);
}

TEST(EngineTest, SessionsWithDifferentHorizonsFinishIndependently) {
  const World w = MakeWorld(200, 2, 120, 0xD15C0);
  EngineOptions opt = MakeEngineOptions(2, false);
  Engine engine(&w.pois, &w.tree, opt);
  // Session 0 sees the full 120 timestamps, session 1 only 60.
  engine.AddSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]});
  std::vector<Trajectory> short_trajs;
  for (size_t i = 3; i < 6; ++i) {
    Trajectory t = w.trajs[i];
    t.positions.resize(60);
    short_trajs.push_back(std::move(t));
  }
  engine.AddSession({&short_trajs[0], &short_trajs[1], &short_trajs[2]});
  engine.Run();
  EXPECT_EQ(engine.session_metrics(0).timestamps, 120u);
  EXPECT_EQ(engine.session_metrics(1).timestamps, 60u);
  EXPECT_EQ(engine.round_stats().rounds, 120u);
}

// --- Session lifecycle ------------------------------------------------------

TEST(EngineLifecycleTest, RunTwiceIsAHardError) {
  const World w = MakeWorld(150, 1, 40, 0x2E0);
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(1, false));
  engine.AddSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]});
  engine.Run();
  EXPECT_THROW(engine.Run(), std::logic_error);
  EXPECT_THROW(engine.Start(), std::logic_error);
}

TEST(EngineLifecycleTest, AddSessionAfterRunIsAHardError) {
  const World w = MakeWorld(150, 2, 40, 0x2E1);
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(1, false));
  engine.AddSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]});
  engine.Run();
  EXPECT_THROW(engine.AddSession({&w.trajs[3], &w.trajs[4], &w.trajs[5]}),
               std::logic_error);
  // Dynamic admission is also off the table once the engine drained.
  EXPECT_THROW(engine.AdmitSession({&w.trajs[3], &w.trajs[4], &w.trajs[5]}),
               std::logic_error);
}

TEST(EngineLifecycleTest, WaitBeforeStartIsAHardError) {
  const World w = MakeWorld(120, 1, 20, 0x2E2);
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(1, false));
  EXPECT_THROW(engine.Wait(), std::logic_error);
}

TEST(EngineLifecycleTest, ZeroHorizonSessionFinishesWithNoWork) {
  const World w = MakeWorld(150, 2, 40, 0x2E3);
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
  SessionTuning zero;
  zero.retire_at = 0;  // retired before its first timestamp
  const uint32_t z = engine.AdmitSession(
      {&w.trajs[0], &w.trajs[1], &w.trajs[2]}, zero);
  const uint32_t live = engine.AdmitSession(
      {&w.trajs[3], &w.trajs[4], &w.trajs[5]});
  engine.Run();
  EXPECT_EQ(engine.session_metrics(z).timestamps, 0u);
  EXPECT_EQ(engine.session_metrics(z).updates, 0u);
  EXPECT_EQ(engine.session_metrics(live).timestamps, 40u);
  EXPECT_GT(engine.session_metrics(live).updates, 0u);
}

TEST(EngineLifecycleTest, SingleUserGroupRunsTheProtocol) {
  const World w = MakeWorld(150, 1, 60, 0x2E4);
  uint64_t digest1 = 0;
  for (size_t threads : {1u, 2u, 4u}) {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(threads, false));
    engine.AdmitSession({&w.trajs[0]});
    engine.Run();
    const SimMetrics& m = engine.session_metrics(0);
    EXPECT_EQ(m.timestamps, 60u);
    EXPECT_GT(m.updates, 0u);
    // m = 1: one location update + one result message per round, no probes.
    EXPECT_EQ(m.comm.messages(MessageType::kProbe), 0u);
    if (threads == 1) {
      digest1 = engine.ResultDigest();
    } else {
      EXPECT_EQ(engine.ResultDigest(), digest1);
    }
  }
}

TEST(EngineLifecycleTest, MidRunAdmissionMatchesUpfrontAdmission) {
  // Sessions are independent, so admitting them while the engine is
  // draining must produce exactly the digest of admitting them up front.
  const World w = MakeWorld(250, 4, 120, 0x2E5);
  uint64_t upfront = 0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
    for (size_t g = 0; g < 4; ++g) {
      engine.AdmitSession({&w.trajs[3 * g], &w.trajs[3 * g + 1],
                           &w.trajs[3 * g + 2]});
    }
    engine.Run();
    upfront = engine.ResultDigest();
  }
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
  Engine::Hold hold = engine.AcquireHold();
  engine.AdmitSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]});
  engine.Start();
  for (size_t g = 1; g < 4; ++g) {
    engine.AdmitSession({&w.trajs[3 * g], &w.trajs[3 * g + 1],
                         &w.trajs[3 * g + 2]});
  }
  hold.Reset();
  engine.Wait();
  EXPECT_EQ(engine.ResultDigest(), upfront);
}

TEST(EngineLifecycleTest, RetireWhileRecomputingCompletesCleanly) {
  // A straggler session (every recomputation padded 50x) gets retired
  // "now" while its recompute jobs are in flight; the engine must drain
  // without deadlock and the session must keep a consistent prefix.
  const World w = MakeWorld(200, 2, 150, 0x2E6);
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
  SessionTuning slow;
  slow.recompute_cost_factor = 50.0;
  const uint32_t straggler = engine.AdmitSession(
      {&w.trajs[0], &w.trajs[1], &w.trajs[2]}, slow);
  const uint32_t normal = engine.AdmitSession(
      {&w.trajs[3], &w.trajs[4], &w.trajs[5]});
  Engine::Hold hold = engine.AcquireHold();
  engine.Start();
  engine.RetireSession(straggler);  // asap — lands mid-recompute
  hold.Reset();
  engine.Wait();
  EXPECT_LE(engine.session_metrics(straggler).timestamps, 150u);
  EXPECT_EQ(engine.session_metrics(normal).timestamps, 150u);
  EXPECT_GT(engine.session_metrics(normal).updates, 0u);
}

TEST(EngineLifecycleTest, ChurnDigestBitIdenticalAcrossThreadCounts) {
  // Admission mid-run plus scheduled retirements (deterministic horizon
  // truncation) must leave the digest bit-identical across thread counts.
  const World w = MakeWorld(300, 6, 160, 0x2E7);
  const auto run = [&w](size_t threads) {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(threads, false));
    Engine::Hold hold = engine.AcquireHold();
    // Two sessions up front, one of them retiring at t=70.
    SessionTuning early;
    early.retire_at = 70;
    engine.AdmitSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]}, early);
    engine.AdmitSession({&w.trajs[3], &w.trajs[4], &w.trajs[5]});
    engine.Start();
    // Admit the rest while the engine drains; one with a tiny mailbox,
    // one retiring mid-run, one zero-horizon.
    SessionTuning tiny_mailbox;
    tiny_mailbox.mailbox_capacity = 1;
    engine.AdmitSession({&w.trajs[6], &w.trajs[7], &w.trajs[8]},
                        tiny_mailbox);
    SessionTuning mid;
    mid.retire_at = 40;
    engine.AdmitSession({&w.trajs[9], &w.trajs[10], &w.trajs[11]}, mid);
    SessionTuning zero;
    zero.retire_at = 0;
    engine.AdmitSession({&w.trajs[12], &w.trajs[13], &w.trajs[14]}, zero);
    engine.AdmitSession({&w.trajs[15], &w.trajs[16], &w.trajs[17]});
    hold.Reset();
    engine.Wait();
    EXPECT_EQ(engine.session_metrics(0).timestamps, 70u);
    EXPECT_EQ(engine.session_metrics(3).timestamps, 40u);
    EXPECT_EQ(engine.session_metrics(4).timestamps, 0u);
    return engine.ResultDigest();
  };
  const uint64_t d1 = run(1);
  EXPECT_EQ(run(2), d1);
  EXPECT_EQ(run(4), d1);
}

TEST(EngineLifecycleTest, BoundedMailboxStallsButStaysDeterministic) {
  // Capacity 0 disables buffering entirely (the session stalls during
  // recomputation); results must match the default capacity bit-for-bit.
  const World w = MakeWorld(200, 2, 100, 0x2E8);
  uint64_t digests[2];
  size_t i = 0;
  for (size_t capacity : {size_t{0}, size_t{16}}) {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
    SessionTuning tuning;
    tuning.mailbox_capacity = capacity;
    engine.AdmitSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]}, tuning);
    engine.AdmitSession({&w.trajs[3], &w.trajs[4], &w.trajs[5]}, tuning);
    engine.Run();
    digests[i++] = engine.ResultDigest();
  }
  EXPECT_EQ(digests[0], digests[1]);
}

// --- Serving loop (Wait drains, Shutdown finishes) ---------------------------

TEST(EngineServingLoopTest, WaitServesMultipleAdmissionWaves) {
  // Wait() drains the sessions admitted so far but keeps the engine
  // serving: admit/Wait cycles must repeat, and the final digest must be
  // exactly the one-shot digest over the same admission order.
  const World w = MakeWorld(250, 4, 100, 0x5E71);
  uint64_t oneshot = 0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
    for (size_t g = 0; g < 4; ++g) {
      engine.AddSession({&w.trajs[3 * g], &w.trajs[3 * g + 1],
                         &w.trajs[3 * g + 2]});
    }
    engine.Run();
    oneshot = engine.ResultDigest();
  }
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
  engine.Start();
  for (size_t g = 0; g < 2; ++g) {
    engine.AdmitSession({&w.trajs[3 * g], &w.trajs[3 * g + 1],
                         &w.trajs[3 * g + 2]});
  }
  engine.Wait();
  // First wave fully drained; results already consistent.
  EXPECT_EQ(engine.session_metrics(0).timestamps, 100u);
  EXPECT_EQ(engine.session_metrics(1).timestamps, 100u);
  EXPECT_EQ(engine.round_stats().rounds, 100u);
  // Second wave: the engine is still a server.
  for (size_t g = 2; g < 4; ++g) {
    engine.AdmitSession({&w.trajs[3 * g], &w.trajs[3 * g + 1],
                         &w.trajs[3 * g + 2]});
  }
  engine.Wait();
  engine.Wait();  // re-draining an idle engine is a no-op
  EXPECT_EQ(engine.session_count(), 4u);
  EXPECT_EQ(engine.ResultDigest(), oneshot);
  engine.Shutdown();
  engine.Shutdown();  // idempotent
  EXPECT_EQ(engine.ResultDigest(), oneshot);
  EXPECT_THROW(engine.AdmitSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]}),
               std::logic_error);
}

// --- Mailbox high-water marks ------------------------------------------------

TEST(EngineMailboxStatsTest, CapacityZeroStallCountIsDeterministic) {
  // With no mailbox at all, every recomputation that still has timestamps
  // ahead stalls the clock — a count fixed by the logical step order, so
  // it must match across thread counts; the digest must not move against
  // the default capacity.
  const World w = MakeWorld(200, 2, 100, 0x5E72);
  uint64_t default_digest = 0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
    engine.AdmitSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]});
    engine.Run();
    default_digest = engine.ResultDigest();
  }
  size_t stalls_1thread = 0;
  for (size_t threads : {1u, 2u, 4u}) {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(threads, false));
    SessionTuning unbuffered;
    unbuffered.mailbox_capacity = 0;
    engine.AdmitSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]}, unbuffered);
    engine.Run();
    EXPECT_EQ(engine.ResultDigest(), default_digest)
        << "capacity must not change the digest (threads=" << threads << ")";
    EXPECT_GT(engine.session_stall_count(0), 0u);
    EXPECT_EQ(engine.session_mailbox_peak(0), 0u);
    if (threads == 1) {
      stalls_1thread = engine.session_stall_count(0);
    } else {
      EXPECT_EQ(engine.session_stall_count(0), stalls_1thread);
    }
  }
}

TEST(EngineMailboxStatsTest, CapacityOneReportsStallsWithoutChangingDigest) {
  // A capacity-1 mailbox fills on the first buffered update of every
  // recomputation flight: with a second worker draining location updates
  // while the (padded) recompute runs, stalls must be reported — and the
  // digest must still be bit-identical to the default-capacity run.
  const World w = MakeWorld(200, 2, 120, 0x5E73);
  uint64_t default_digest = 0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
    engine.AdmitSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]});
    engine.Run();
    default_digest = engine.ResultDigest();
  }
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
  SessionTuning tiny;
  tiny.mailbox_capacity = 1;
  tiny.recompute_cost_factor = 10.0;  // widen the buffering window
  engine.AdmitSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]}, tiny);
  engine.Run();
  EXPECT_EQ(engine.ResultDigest(), default_digest);
  const EngineRoundStats& rs = engine.round_stats();
  EXPECT_GT(rs.mailbox_stalls_per_session.Sum(), 0.0);
  EXPECT_EQ(rs.mailbox_peak_per_session.Max(), 1.0);
  EXPECT_EQ(engine.session_mailbox_peak(0), 1u);
  // The marks are surfaced in the rendered stats table.
  const std::string table = rs.ToTable().ToString();
  EXPECT_NE(table.find("mailbox_peak/session"), std::string::npos);
  EXPECT_NE(table.find("mailbox_stalls/session"), std::string::npos);
}

TEST(EngineMailboxStatsTest, DropOldestAtCapacityOneIsDigestNeutral) {
  // Drop-oldest backpressure discards the oldest buffered payload on
  // overflow and force-recomputes it from the source trajectories at
  // replay — so every timestamp is still checked in order, and the digest
  // must match the blocking policy bit-for-bit at every thread count. The
  // session must also never stall: drops replace backpressure entirely.
  const World w = MakeWorld(200, 2, 100, 0x5E74);
  uint64_t block_digest = 0;
  {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
    SessionTuning blocking;
    blocking.mailbox_capacity = 1;
    blocking.recompute_cost_factor = 3.0;  // widen the buffering window
    engine.AdmitSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]}, blocking);
    engine.AdmitSession({&w.trajs[3], &w.trajs[4], &w.trajs[5]}, blocking);
    engine.Run();
    block_digest = engine.ResultDigest();
  }
  bool saw_drop = false;
  for (size_t threads : {1u, 4u}) {
    Engine engine(&w.pois, &w.tree, MakeEngineOptions(threads, false));
    SessionTuning dropping;
    dropping.mailbox_capacity = 1;
    dropping.mailbox_policy = MailboxPolicy::kDropOldest;
    dropping.recompute_cost_factor = 3.0;
    engine.AdmitSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]}, dropping);
    engine.AdmitSession({&w.trajs[3], &w.trajs[4], &w.trajs[5]}, dropping);
    engine.Run();
    EXPECT_EQ(engine.ResultDigest(), block_digest)
        << "drop-oldest moved the digest (threads=" << threads << ")";
    for (uint32_t id = 0; id < 2; ++id) {
      EXPECT_EQ(engine.session_stall_count(id), 0u)
          << "drop-oldest must never stall (session " << id << ")";
      saw_drop = saw_drop || engine.session_dropped_count(id) > 0;
    }
  }
  // With multi-thread runs and 10x recompute padding at capacity 1, at
  // least one run must actually have overflowed — otherwise the policy
  // was never exercised and the digest check is vacuous.
  EXPECT_TRUE(saw_drop);
}

// --- 64-group integration run (labeled `integration` in ctest) --------------

TEST(EngineIntegrationTest, SixtyFourGroupsDeterministicUnderLoad) {
  const size_t kGroups = 64;
  const World w = MakeWorld(800, kGroups, 120, 0x64C0DE);
  SimMetrics serial_total, parallel_total;
  const uint64_t d_serial = RunEngine(w, kGroups, 1, false, &serial_total);
  const uint64_t d_parallel =
      RunEngine(w, kGroups, ThreadPool::HardwareThreads(), true,
                &parallel_total);
  EXPECT_EQ(serial_total.timestamps, kGroups * 120u);
  EXPECT_GT(serial_total.updates, kGroups);  // every group updates at t=0
  // Full parallelism (per-group jobs + per-user fan-out) leaves the
  // protocol results untouched.
  EXPECT_EQ(parallel_total.updates, serial_total.updates);
  EXPECT_EQ(parallel_total.comm.TotalPackets(),
            serial_total.comm.TotalPackets());
  // And an identically-configured run is bit-identical to itself across
  // thread counts.
  EXPECT_EQ(RunEngine(w, kGroups, 2, true), d_parallel);
  EXPECT_EQ(RunEngine(w, kGroups, 2, false), d_serial);
}

}  // namespace
}  // namespace mpn
