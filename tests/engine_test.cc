// Engine-layer tests: thread-pool primitives, multi-group determinism
// across thread counts, engine/simulator equivalence, per-round stats, and
// a 64-group integration run (suites named *Integration* are registered
// under the `integration` ctest label; everything else is `unit`).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "sim/simulator.h"
#include "traj/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mpn {
namespace {

// --- Thread pool ------------------------------------------------------------

TEST(ThreadPoolTest, SubmitRunsTaskAndReturnsValue) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.thread_count(), 2u);
  auto future = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.Submit([&sum, i]() { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran]() { ++ran; });
    }
    // Destructor must wait for all 32, not drop queued ones.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1237;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, 10, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForChunkLayoutIsGrainAligned) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelFor(105, 16, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 7u);  // ceil(105/16)
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin % 16, 0u);
    EXPECT_EQ(end, std::min<size_t>(105, begin + 16));
  }
}

TEST(ThreadPoolTest, ParallelForWithoutCallerParticipationStaysOffCaller) {
  // The engine's round loop relies on this: with caller_participates off
  // (and more than one chunk), every chunk runs on a pool worker, so the
  // configured thread count is exactly the number of executors.
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::mutex mu;
  std::vector<std::thread::id> executors;
  size_t covered = 0;
  pool.ParallelFor(
      100, 10,
      [&](size_t begin, size_t end) {
        std::lock_guard<std::mutex> lock(mu);
        executors.push_back(std::this_thread::get_id());
        covered += end - begin;
      },
      /*caller_participates=*/false);
  EXPECT_EQ(covered, 100u);
  for (const auto& id : executors) EXPECT_NE(id, caller);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(100, 8,
                                [](size_t begin, size_t) {
                                  if (begin == 32) {
                                    throw std::logic_error("chunk failed");
                                  }
                                }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Saturate the pool with outer chunks that each fan out again; the
  // caller-participates design must make progress regardless.
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  pool.ParallelFor(8, 1, [&pool, &total](size_t, size_t) {
    pool.ParallelFor(50, 4, [&total](size_t begin, size_t end) {
      total += end - begin;
    });
  });
  EXPECT_EQ(total.load(), 400u);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

// --- Engine -----------------------------------------------------------------

const Rect kWorld({0, 0}, {20000, 20000});

struct World {
  std::vector<Point> pois;
  RTree tree;
  std::vector<Trajectory> trajs;
};

World MakeWorld(size_t n_pois, size_t n_groups, size_t timestamps,
                uint64_t seed) {
  World w;
  Rng rng(seed);
  PoiOptions popt;
  popt.world = kWorld;
  popt.clusters = 12;
  w.pois = GeneratePois(n_pois, popt, &rng);
  w.tree = RTree::BulkLoad(w.pois);
  RandomWalkGenerator::Options wopt;
  wopt.world = kWorld;
  wopt.mean_speed = 60.0;
  const RandomWalkGenerator gen(wopt);
  w.trajs = gen.GenerateGroupedFleet(n_groups * 3, 3, 500.0, timestamps, &rng);
  return w;
}

EngineOptions MakeEngineOptions(size_t threads, bool parallel_verify) {
  EngineOptions opt;
  opt.threads = threads;
  opt.parallel_verify = parallel_verify;
  opt.verify_min_candidates = 2;  // tiny scenes still exercise the fan-out
  opt.sim.server.method = Method::kTileD;
  opt.sim.server.alpha = 10;
  return opt;
}

uint64_t RunEngine(const World& w, size_t n_groups, size_t threads,
                   bool parallel_verify, SimMetrics* total = nullptr,
                   std::vector<SimMetrics>* per_session = nullptr) {
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(threads, parallel_verify));
  for (size_t g = 0; g < n_groups; ++g) {
    engine.AddSession({&w.trajs[3 * g], &w.trajs[3 * g + 1],
                       &w.trajs[3 * g + 2]});
  }
  engine.Run();
  if (total != nullptr) *total = engine.TotalMetrics();
  if (per_session != nullptr) {
    per_session->clear();
    for (uint32_t id = 0; id < n_groups; ++id) {
      per_session->push_back(engine.session_metrics(id));
    }
  }
  return engine.ResultDigest();
}

TEST(EngineTest, BitIdenticalAcrossThreadCounts) {
  const World w = MakeWorld(300, 6, 200, 0xE7617E);
  std::vector<SimMetrics> sessions1;
  const uint64_t d1 = RunEngine(w, 6, 1, false, nullptr, &sessions1);
  for (size_t threads : {2u, 4u, 7u}) {
    std::vector<SimMetrics> sessions;
    const uint64_t d = RunEngine(w, 6, threads, false, nullptr, &sessions);
    EXPECT_EQ(d, d1) << "digest diverged at " << threads << " threads";
    ASSERT_EQ(sessions.size(), sessions1.size());
    for (size_t g = 0; g < sessions.size(); ++g) {
      EXPECT_EQ(sessions[g].updates, sessions1[g].updates) << "group " << g;
      EXPECT_EQ(sessions[g].result_changes, sessions1[g].result_changes);
      EXPECT_EQ(sessions[g].comm.TotalPackets(),
                sessions1[g].comm.TotalPackets());
    }
  }
}

TEST(EngineTest, BitIdenticalAcrossThreadCountsWithParallelVerify) {
  const World w = MakeWorld(300, 4, 200, 0xFA2007);
  const uint64_t d1 = RunEngine(w, 4, 1, true);
  EXPECT_EQ(RunEngine(w, 4, 2, true), d1);
  EXPECT_EQ(RunEngine(w, 4, 4, true), d1);
}

TEST(EngineTest, ParallelVerifyPreservesProtocolBehavior) {
  // The fan-out changes only how candidate scans are scheduled, never which
  // tiles are accepted — so the protocol-visible results must match the
  // sequential scan exactly (verifier call counters may differ: chunks
  // don't stop at the first failing candidate of the whole list).
  const World w = MakeWorld(300, 4, 200, 0x5E0);
  SimMetrics seq, par;
  RunEngine(w, 4, 1, false, &seq);
  RunEngine(w, 4, 4, true, &par);
  EXPECT_EQ(par.updates, seq.updates);
  EXPECT_EQ(par.result_changes, seq.result_changes);
  EXPECT_EQ(par.comm.TotalMessages(), seq.comm.TotalMessages());
  EXPECT_EQ(par.comm.TotalPackets(), seq.comm.TotalPackets());
  EXPECT_EQ(par.msr.tiles_added, seq.msr.tiles_added);
}

TEST(EngineTest, MatchesIndependentSimulatorRuns) {
  // A multi-session engine must produce exactly the merged metrics of the
  // groups simulated one at a time through the legacy front.
  const World w = MakeWorld(250, 3, 150, 0xBEEF01);
  SimMetrics engine_total;
  RunEngine(w, 3, 2, false, &engine_total);
  SimOptions opt;
  opt.server = MakeEngineOptions(1, false).sim.server;
  SimMetrics legacy;
  for (size_t g = 0; g < 3; ++g) {
    Simulator sim(&w.pois, &w.tree,
                  {&w.trajs[3 * g], &w.trajs[3 * g + 1], &w.trajs[3 * g + 2]},
                  opt);
    legacy.Merge(sim.Run());
  }
  EXPECT_EQ(engine_total.timestamps, legacy.timestamps);
  EXPECT_EQ(engine_total.updates, legacy.updates);
  EXPECT_EQ(engine_total.result_changes, legacy.result_changes);
  EXPECT_EQ(engine_total.comm.TotalMessages(), legacy.comm.TotalMessages());
  EXPECT_EQ(engine_total.comm.TotalPackets(), legacy.comm.TotalPackets());
  EXPECT_EQ(engine_total.msr.tiles_added, legacy.msr.tiles_added);
  EXPECT_EQ(engine_total.msr.verify.calls, legacy.msr.verify.calls);
  EXPECT_EQ(engine_total.msr.rtree_node_accesses,
            legacy.msr.rtree_node_accesses);
}

TEST(EngineTest, RoundStatsAccountForAllWork) {
  const World w = MakeWorld(250, 4, 180, 0xC0FFEE);
  Engine engine(&w.pois, &w.tree, MakeEngineOptions(2, false));
  for (size_t g = 0; g < 4; ++g) {
    engine.AddSession({&w.trajs[3 * g], &w.trajs[3 * g + 1],
                       &w.trajs[3 * g + 2]});
  }
  engine.Run();
  const EngineRoundStats& rs = engine.round_stats();
  const SimMetrics total = engine.TotalMetrics();
  EXPECT_EQ(rs.rounds, 180u);  // all horizons equal -> one round per ts
  EXPECT_EQ(static_cast<size_t>(rs.recomputes_per_round.Sum()),
            total.updates);
  EXPECT_EQ(static_cast<size_t>(rs.messages_per_round.Sum()),
            total.comm.TotalMessages());
  // First round: no session holds a region yet, so every one recomputes.
  EXPECT_EQ(static_cast<size_t>(rs.recomputes_per_round.Max()), 4u);
  // The table renders one row per metric.
  EXPECT_NE(rs.ToTable().ToString().find("recomputes/round"),
            std::string::npos);
}

TEST(EngineTest, SessionsWithDifferentHorizonsFinishIndependently) {
  const World w = MakeWorld(200, 2, 120, 0xD15C0);
  EngineOptions opt = MakeEngineOptions(2, false);
  Engine engine(&w.pois, &w.tree, opt);
  // Session 0 sees the full 120 timestamps, session 1 only 60.
  engine.AddSession({&w.trajs[0], &w.trajs[1], &w.trajs[2]});
  std::vector<Trajectory> short_trajs;
  for (size_t i = 3; i < 6; ++i) {
    Trajectory t = w.trajs[i];
    t.positions.resize(60);
    short_trajs.push_back(std::move(t));
  }
  engine.AddSession({&short_trajs[0], &short_trajs[1], &short_trajs[2]});
  engine.Run();
  EXPECT_EQ(engine.session_metrics(0).timestamps, 120u);
  EXPECT_EQ(engine.session_metrics(1).timestamps, 60u);
  EXPECT_EQ(engine.round_stats().rounds, 120u);
}

// --- 64-group integration run (labeled `integration` in ctest) --------------

TEST(EngineIntegrationTest, SixtyFourGroupsDeterministicUnderLoad) {
  const size_t kGroups = 64;
  const World w = MakeWorld(800, kGroups, 120, 0x64C0DE);
  SimMetrics serial_total, parallel_total;
  const uint64_t d_serial = RunEngine(w, kGroups, 1, false, &serial_total);
  const uint64_t d_parallel =
      RunEngine(w, kGroups, ThreadPool::HardwareThreads(), true,
                &parallel_total);
  EXPECT_EQ(serial_total.timestamps, kGroups * 120u);
  EXPECT_GT(serial_total.updates, kGroups);  // every group updates at t=0
  // Full parallelism (per-group jobs + per-user fan-out) leaves the
  // protocol results untouched.
  EXPECT_EQ(parallel_total.updates, serial_total.updates);
  EXPECT_EQ(parallel_total.comm.TotalPackets(),
            serial_total.comm.TotalPackets());
  // And an identically-configured run is bit-identical to itself across
  // thread counts.
  EXPECT_EQ(RunEngine(w, kGroups, 2, true), d_parallel);
  EXPECT_EQ(RunEngine(w, kGroups, 2, false), d_serial);
}

}  // namespace
}  // namespace mpn
