// Shared helpers for the safe-region test suites: random scenarios, region
// sampling, and brute-force optimality checks.
#pragma once

#include <vector>

#include "index/gnn.h"
#include "index/rtree.h"
#include "mpn/safe_region.h"
#include "util/macros.h"
#include "util/rng.h"

namespace mpn {
namespace testutil {

/// A random MPN scenario: POIs (indexed) and user locations.
struct Scenario {
  std::vector<Point> pois;
  std::vector<Point> users;
  RTree tree;
};

/// Uniform POIs in [0,extent]^2, users in the middle half of the world.
inline Scenario MakeScenario(size_t n_pois, size_t m_users, uint64_t seed,
                             double extent = 1000.0) {
  Rng rng(seed);
  Scenario s;
  s.pois.reserve(n_pois);
  for (size_t i = 0; i < n_pois; ++i) {
    s.pois.push_back({rng.Uniform(0, extent), rng.Uniform(0, extent)});
  }
  for (size_t i = 0; i < m_users; ++i) {
    s.users.push_back({rng.Uniform(extent * 0.25, extent * 0.75),
                       rng.Uniform(extent * 0.25, extent * 0.75)});
  }
  s.tree = RTree::BulkLoad(s.pois);
  return s;
}

/// Uniform sample inside a safe region (circle or tiles).
inline Point SampleRegion(const SafeRegion& region, Rng* rng) {
  if (region.is_circle()) {
    const Circle& c = region.circle();
    // Polar sampling, area-uniform.
    const double r = c.radius * std::sqrt(rng->Uniform01());
    const double a = rng->Uniform(-3.14159265358979, 3.14159265358979);
    return c.center + UnitFromAngle(a) * r;
  }
  const TileRegion& tiles = region.tiles();
  MPN_ASSERT(!tiles.empty());
  // Pick a tile weighted by area, then a uniform point inside it.
  std::vector<double> weights;
  weights.reserve(tiles.size());
  for (const Rect& r : tiles.rects()) weights.push_back(r.Area());
  const Rect& r = tiles.rects()[rng->WeightedIndex(weights)];
  return {rng->Uniform(r.lo.x, r.hi.x), rng->Uniform(r.lo.y, r.hi.y)};
}

/// True when `po_id` is optimal (within relative tolerance for ties) for the
/// given instance of user locations.
inline bool IsOptimalMeetingPoint(const std::vector<Point>& pois,
                                  uint32_t po_id,
                                  const std::vector<Point>& locations,
                                  Objective obj, double tol = 1e-9) {
  const double reported = AggDist(pois[po_id], locations, obj);
  const auto best = FindGnnBruteForce(pois, locations, obj, 1);
  MPN_ASSERT(!best.empty());
  return reported <= best[0].agg + tol * (1.0 + best[0].agg);
}

}  // namespace testutil
}  // namespace mpn
