// Utility substrate tests: RNG determinism and distributional sanity,
// streaming statistics, quantiles, and table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace mpn {
namespace {

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t xa = a.Next();
    EXPECT_EQ(xa, b.Next());
    if (xa != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(6);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const int64_t v = rng.UniformInt(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
  // Degenerate single-value range.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(7);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(rng.Gaussian(10.0, 2.0));
  EXPECT_NEAR(stat.Mean(), 10.0, 0.1);
  EXPECT_NEAR(stat.Stddev(), 2.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexProportional) {
  Rng rng(9);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(10);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(11);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat s;
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(RunningStatTest, MergeEqualsBulk) {
  Rng rng(12);
  RunningStat a, b, bulk;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(3.0, 1.5);
    (i % 2 == 0 ? a : b).Add(x);
    bulk.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.Mean(), bulk.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), bulk.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.Min(), bulk.Min());
  EXPECT_DOUBLE_EQ(a.Max(), bulk.Max());
}

TEST(QuantileTest, InterpolatesOrderStatistics) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.9), 7.0);
}

TEST(MeanOfTest, Basic) {
  EXPECT_DOUBLE_EQ(MeanOf({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(MeanOf({}), 0.0);
}

TEST(TableTest, AlignmentAndCsv) {
  Table t({"name", "value"});
  t.AddRow(std::vector<std::string>{"alpha", "30"});
  t.AddRow(std::vector<double>{1.5, 2.25}, 2);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.25"), std::string::npos);
  const std::string path = "/tmp/mpn_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "name,value");
  std::getline(f, line);
  EXPECT_EQ(line, "alpha,30");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMicros(), 0.0);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

TEST(TimeAccumulatorTest, ScopesAccumulate) {
  TimeAccumulator acc;
  {
    TimeAccumulator::Scope scope(&acc);
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  const double first = acc.TotalSeconds();
  EXPECT_GT(first, 0.0);
  {
    TimeAccumulator::Scope scope(&acc);
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  EXPECT_GT(acc.TotalSeconds(), first);
  acc.Reset();
  EXPECT_DOUBLE_EQ(acc.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace mpn
