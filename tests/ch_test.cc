// Contraction Hierarchies property tests: CH distances must be
// bit-identical to the Dijkstra left-fold oracle on randomized graphs
// (grid / random-planar / directed / disconnected), path unpacking must
// round-trip through original edges, and preprocessing must be
// deterministic across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "index/ch.h"
#include "traj/generators.h"
#include "traj/road_network.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mpn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using AdjList = std::vector<std::vector<std::pair<uint32_t, double>>>;

AdjList MakeAdj(size_t n, const std::vector<CHIndex::InputEdge>& edges,
                bool directed) {
  AdjList adj(n);
  for (const auto& e : edges) {
    adj[e.from].push_back({e.to, e.weight});
    if (!directed) adj[e.to].push_back({e.from, e.weight});
  }
  return adj;
}

/// The oracle: a textbook multi-seed Dijkstra whose dist values are exact
/// left-folds of edge weights along the relaxation paths.
std::vector<double> DijkstraOracle(const AdjList& adj,
                                   const std::vector<CHIndex::Seed>& seeds) {
  std::vector<double> dist(adj.size(), kInf);
  using QE = std::pair<double, uint32_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> pq;
  for (const auto& s : seeds) {
    if (s.dist < dist[s.node]) {
      dist[s.node] = s.dist;
      pq.push({s.dist, s.node});
    }
  }
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const auto& [v, w] : adj[u]) {
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  return dist;
}

std::vector<CHIndex::InputEdge> NetworkEdges(const RoadNetwork& net) {
  std::vector<CHIndex::InputEdge> edges;
  for (uint32_t a = 0; a < net.NodeCount(); ++a) {
    for (const auto& [b, w] : net.Neighbors(a)) {
      if (a < b) edges.push_back({a, b, w});
    }
  }
  return edges;
}

TEST(CHIndexTest, GridDistancesBitIdenticalToDijkstra) {
  const Rect world({0, 0}, {10000, 10000});
  for (uint64_t seed : {21u, 22u, 23u}) {
    Rng rng(seed);
    const RoadNetwork net =
        RoadNetwork::RandomGrid(world, 12, 12, 0.25, 0.12, 0.15, &rng);
    const CHIndex ch = net.BuildCHIndex();
    EXPECT_EQ(ch.NodeCount(), net.NodeCount());
    Rng qrng(seed * 97);
    for (int trial = 0; trial < 60; ++trial) {
      const auto s = static_cast<uint32_t>(
          qrng.UniformInt(0, static_cast<int64_t>(net.NodeCount()) - 1));
      const auto t = static_cast<uint32_t>(
          qrng.UniformInt(0, static_cast<int64_t>(net.NodeCount()) - 1));
      EXPECT_EQ(ch.Distance(s, t), net.ShortestPathDistance(s, t))
          << "seed " << seed << " pair " << s << "->" << t;
    }
  }
}

TEST(CHIndexTest, RandomPlanarDistancesBitIdenticalToDijkstra) {
  SyntheticNetworkOptions opt;
  opt.topology = SyntheticNetworkOptions::Topology::kRandomPlanar;
  opt.nodes = 600;
  opt.world = Rect({0, 0}, {50000, 50000});
  Rng rng(31);
  const RoadNetwork net = MakeSyntheticNetwork(opt, &rng);
  ASSERT_GE(net.NodeCount(), 600u);
  const CHIndex ch = net.BuildCHIndex();
  Rng qrng(313);
  for (int trial = 0; trial < 80; ++trial) {
    const auto s = static_cast<uint32_t>(
        qrng.UniformInt(0, static_cast<int64_t>(net.NodeCount()) - 1));
    const auto t = static_cast<uint32_t>(
        qrng.UniformInt(0, static_cast<int64_t>(net.NodeCount()) - 1));
    EXPECT_EQ(ch.Distance(s, t), net.ShortestPathDistance(s, t));
  }
}

TEST(CHIndexTest, DirectedGraphDistancesBitIdenticalToDijkstra) {
  for (uint64_t seed : {41u, 42u}) {
    Rng rng(seed);
    const size_t n = 200;
    std::vector<CHIndex::InputEdge> edges;
    for (uint32_t u = 0; u < n; ++u) {
      const int degree = 2 + static_cast<int>(rng.UniformInt(0, 2));
      for (int k = 0; k < degree; ++k) {
        const auto v = static_cast<uint32_t>(
            rng.UniformInt(0, static_cast<int64_t>(n) - 1));
        if (v == u) continue;
        edges.push_back({u, v, rng.Uniform(1.0, 10.0)});
      }
    }
    CHIndex::Options options;
    options.directed = true;
    const CHIndex ch = CHIndex::Build(n, edges, options);
    const AdjList adj = MakeAdj(n, edges, /*directed=*/true);
    Rng qrng(seed * 31);
    for (int trial = 0; trial < 60; ++trial) {
      const auto s = static_cast<uint32_t>(
          qrng.UniformInt(0, static_cast<int64_t>(n) - 1));
      const std::vector<double> oracle = DijkstraOracle(adj, {{s, 0.0}});
      const auto t = static_cast<uint32_t>(
          qrng.UniformInt(0, static_cast<int64_t>(n) - 1));
      EXPECT_EQ(ch.Distance(s, t), oracle[t]) << s << "->" << t;
    }
  }
}

TEST(CHIndexTest, DisconnectedComponentsReturnInfinityAcross) {
  // Two grids with disjoint node ranges and no bridge.
  const Rect world({0, 0}, {1000, 1000});
  Rng rng(51);
  const RoadNetwork a =
      RoadNetwork::RandomGrid(world, 5, 5, 0.2, 0.1, 0.0, &rng);
  const RoadNetwork b =
      RoadNetwork::RandomGrid(world, 4, 4, 0.2, 0.1, 0.0, &rng);
  std::vector<CHIndex::InputEdge> edges = NetworkEdges(a);
  const auto offset = static_cast<uint32_t>(a.NodeCount());
  for (const auto& e : NetworkEdges(b)) {
    edges.push_back({e.from + offset, e.to + offset, e.weight});
  }
  const size_t n = a.NodeCount() + b.NodeCount();
  const CHIndex ch = CHIndex::Build(n, edges);
  EXPECT_EQ(ch.Distance(0, offset), kInf);
  EXPECT_EQ(ch.Distance(offset + 1, 3), kInf);
  EXPECT_TRUE(ch.Path(0, offset).empty());
  // Within components the oracle still holds.
  EXPECT_EQ(ch.Distance(0, 7), a.ShortestPathDistance(0, 7));
  EXPECT_EQ(ch.Distance(offset, offset + 5), b.ShortestPathDistance(0, 5));
}

TEST(CHIndexTest, PathUnpackingRoundTrips) {
  const Rect world({0, 0}, {10000, 10000});
  Rng rng(61);
  const RoadNetwork net =
      RoadNetwork::RandomGrid(world, 10, 10, 0.25, 0.15, 0.2, &rng);
  const CHIndex ch = net.BuildCHIndex();
  Rng qrng(616);
  for (int trial = 0; trial < 40; ++trial) {
    const auto s = static_cast<uint32_t>(
        qrng.UniformInt(0, static_cast<int64_t>(net.NodeCount()) - 1));
    const auto t = static_cast<uint32_t>(
        qrng.UniformInt(0, static_cast<int64_t>(net.NodeCount()) - 1));
    const std::vector<uint32_t> path = ch.Path(s, t);
    if (s == t) {
      ASSERT_EQ(path.size(), 1u);
      EXPECT_EQ(path[0], s);
      continue;
    }
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    // Every hop is an original edge; the left-fold of hop weights is the
    // reported distance, bit for bit.
    double fold = 0.0;
    for (size_t i = 1; i < path.size(); ++i) {
      double w = -1.0;
      for (const auto& [v, wt] : net.Neighbors(path[i - 1])) {
        if (v == path[i]) {
          w = wt;
          break;
        }
      }
      ASSERT_GE(w, 0.0) << "hop " << path[i - 1] << "->" << path[i]
                        << " is not an original edge";
      fold += w;
    }
    EXPECT_EQ(fold, ch.Distance(s, t));
    EXPECT_EQ(fold, net.ShortestPathDistance(s, t));
  }
}

TEST(CHIndexTest, SeededManyToManyMatchesSeededDijkstra) {
  const Rect world({0, 0}, {10000, 10000});
  for (uint64_t seed : {71u, 72u}) {
    Rng rng(seed);
    const RoadNetwork net =
        RoadNetwork::RandomGrid(world, 11, 11, 0.25, 0.1, 0.12, &rng);
    const CHIndex ch = net.BuildCHIndex();
    const AdjList adj = MakeAdj(net.NodeCount(), NetworkEdges(net), false);
    Rng qrng(seed * 13);
    // Targets with duplicates, as POI edge endpoints produce.
    std::vector<uint32_t> targets;
    for (int i = 0; i < 50; ++i) {
      targets.push_back(static_cast<uint32_t>(
          qrng.UniformInt(0, static_cast<int64_t>(net.NodeCount()) - 1)));
    }
    targets.push_back(targets[0]);
    targets.push_back(targets[7]);
    const CHIndex::TargetSet ts = ch.MakeTargetSet(targets);
    ASSERT_EQ(ts.TargetCount(), targets.size());
    for (int trial = 0; trial < 12; ++trial) {
      // Two seeds with offsets, the shape of an edge position.
      const auto a = static_cast<uint32_t>(
          qrng.UniformInt(0, static_cast<int64_t>(net.NodeCount()) - 1));
      const auto b = static_cast<uint32_t>(
          qrng.UniformInt(0, static_cast<int64_t>(net.NodeCount()) - 1));
      if (a == b) continue;
      const std::vector<CHIndex::Seed> seeds = {{a, qrng.Uniform(0.0, 90.0)},
                                                {b, qrng.Uniform(0.0, 90.0)}};
      const std::vector<double> oracle = DijkstraOracle(adj, seeds);
      std::vector<double> got;
      ch.SeededDistances(seeds, ts, &got);
      ASSERT_EQ(got.size(), targets.size());
      for (size_t j = 0; j < targets.size(); ++j) {
        EXPECT_EQ(got[j], oracle[targets[j]]) << "target " << j;
      }
    }
  }
}

TEST(CHIndexTest, ParallelBuildIsBitDeterministic) {
  const Rect world({0, 0}, {10000, 10000});
  Rng rng1(81), rng2(81);
  const RoadNetwork net1 =
      RoadNetwork::RandomGrid(world, 16, 16, 0.25, 0.1, 0.1, &rng1);
  const RoadNetwork net2 =
      RoadNetwork::RandomGrid(world, 16, 16, 0.25, 0.1, 0.1, &rng2);
  ThreadPool pool(3);
  const CHIndex serial = net1.BuildCHIndex();
  const CHIndex parallel = net2.BuildCHIndex(&pool);
  ASSERT_EQ(serial.NodeCount(), parallel.NodeCount());
  EXPECT_EQ(serial.ShortcutCount(), parallel.ShortcutCount());
  for (uint32_t v = 0; v < serial.NodeCount(); ++v) {
    EXPECT_EQ(serial.Rank(v), parallel.Rank(v)) << "node " << v;
  }
  Rng qrng(818);
  for (int trial = 0; trial < 40; ++trial) {
    const auto s = static_cast<uint32_t>(
        qrng.UniformInt(0, static_cast<int64_t>(serial.NodeCount()) - 1));
    const auto t = static_cast<uint32_t>(
        qrng.UniformInt(0, static_cast<int64_t>(serial.NodeCount()) - 1));
    EXPECT_EQ(serial.Distance(s, t), parallel.Distance(s, t));
  }
}

TEST(CHIndexTest, TinyGraphs) {
  // Single node, no edges.
  const CHIndex one = CHIndex::Build(1, {});
  EXPECT_EQ(one.Distance(0, 0), 0.0);
  EXPECT_EQ(one.Path(0, 0), std::vector<uint32_t>{0});
  // Two nodes, one edge.
  const CHIndex two = CHIndex::Build(2, {{0, 1, 2.5}});
  EXPECT_EQ(two.Distance(0, 1), 2.5);
  EXPECT_EQ(two.Distance(1, 0), 2.5);
  EXPECT_EQ(two.ShortcutCount(), 0u);
  // A line a-b-c: contracting the middle node must keep distances exact.
  const CHIndex line = CHIndex::Build(3, {{0, 1, 1.25}, {1, 2, 2.75}});
  EXPECT_EQ(line.Distance(0, 2), 1.25 + 2.75);
  EXPECT_EQ(line.Path(0, 2), (std::vector<uint32_t>{0, 1, 2}));
}

TEST(CHIndexTest, RanksAreAPermutation) {
  const Rect world({0, 0}, {5000, 5000});
  Rng rng(91);
  const RoadNetwork net =
      RoadNetwork::RandomGrid(world, 8, 8, 0.2, 0.1, 0.1, &rng);
  const CHIndex ch = net.BuildCHIndex();
  std::vector<bool> seen(ch.NodeCount(), false);
  for (uint32_t v = 0; v < ch.NodeCount(); ++v) {
    const uint32_t r = ch.Rank(v);
    ASSERT_LT(r, ch.NodeCount());
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(SyntheticNetworkTest, GridAndPlanarAreConnectedAndSized) {
  Rng rng(101);
  SyntheticNetworkOptions grid;
  grid.topology = SyntheticNetworkOptions::Topology::kGrid;
  grid.nodes = 900;
  const RoadNetwork g = MakeSyntheticNetwork(grid, &rng);
  EXPECT_EQ(g.NodeCount(), 900u);  // 30 x 30
  EXPECT_TRUE(g.IsConnected());

  SyntheticNetworkOptions planar;
  planar.topology = SyntheticNetworkOptions::Topology::kRandomPlanar;
  planar.nodes = 1200;
  const RoadNetwork p = MakeSyntheticNetwork(planar, &rng);
  EXPECT_EQ(p.NodeCount(), 1200u);
  EXPECT_TRUE(p.IsConnected());
  // Road-like sparsity: average degree stays small.
  EXPECT_LT(p.EdgeCount(), 6 * p.NodeCount());
}

TEST(SyntheticNetworkTest, DeterministicForFixedSeed) {
  SyntheticNetworkOptions opt;
  opt.topology = SyntheticNetworkOptions::Topology::kRandomPlanar;
  opt.nodes = 500;
  Rng r1(111), r2(111);
  const RoadNetwork a = MakeSyntheticNetwork(opt, &r1);
  const RoadNetwork b = MakeSyntheticNetwork(opt, &r2);
  ASSERT_EQ(a.NodeCount(), b.NodeCount());
  ASSERT_EQ(a.EdgeCount(), b.EdgeCount());
  for (uint32_t v = 0; v < a.NodeCount(); ++v) {
    EXPECT_EQ(a.NodePos(v).x, b.NodePos(v).x);
    EXPECT_EQ(a.NodePos(v).y, b.NodePos(v).y);
    ASSERT_EQ(a.Neighbors(v).size(), b.Neighbors(v).size());
  }
}

}  // namespace
}  // namespace mpn
