// Differential property test for the spatial-index backends (ctest label
// `unit`): replays the lifecycle fuzzer's seed-derived plans through the
// full engine on the dynamic RTree and on both packed layouts (STR and
// Hilbert), asserting Engine::ResultDigest bit-identity — across 1/2/4
// verify-thread counts and 1/2 process shards. This is the engine-wide
// enforcement of the index bit-identity contract (packed_rtree.h states
// the per-query argument; packed_rtree_test.cc checks single queries).
//
// The same plans also pin the lane-aggregation ISA dispatch: the scalar,
// SSE2 and AVX2 folds must all produce the reference digest.
//
// Widen the seed set with MPN_INDEX_DIFF_SEEDS (a count or an explicit
// comma-separated list) and run the binary directly.
#include <gtest/gtest.h>

#include "engine_fuzz_util.h"
#include "mpn/tile_verify.h"

namespace mpn {
namespace {

using fuzz::FuzzPlan;
using fuzz::MakeFuzzPlan;
using fuzz::MakeFuzzWorld;
using fuzz::RunClusterPlan;
using fuzz::RunEnginePlan;
using fuzz::World;

std::vector<uint64_t> DiffSeeds() {
  return fuzz::SeedsFromEnv("MPN_INDEX_DIFF_SEEDS",
                            {0x1D001, 0x1D002, 0x1D003});
}

class IndexDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(IndexDifferentialTest, PackedIndexesProduceIdenticalDigests) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t n_groups = static_cast<size_t>(rng.UniformInt(3, 6));
  const size_t group_size = static_cast<size_t>(rng.UniformInt(1, 3));
  const size_t horizon = static_cast<size_t>(rng.UniformInt(40, 90));
  const World w = MakeFuzzWorld(&rng, n_groups, group_size, horizon);
  const FuzzPlan plan = MakeFuzzPlan(&rng, n_groups, horizon);

  // Reference: the dynamic tree, single-threaded.
  const uint64_t reference = RunEnginePlan(w, plan, 1);
  for (IndexKind kind : {IndexKind::kPackedStr, IndexKind::kPackedHilbert}) {
    for (size_t threads : {1u, 2u, 4u}) {
      EXPECT_EQ(RunEnginePlan(w, plan, threads, KernelKind::kSoA,
                              /*parallel_verify=*/false, kind),
                reference)
          << IndexKindName(kind) << " digest diverged from dynamic at "
          << threads << " threads (seed 0x" << std::hex << seed << ")";
    }
    // And across process shards (crash injection disabled: this test is
    // about index equivalence, not recovery).
    for (size_t workers : {1u, 2u}) {
      EXPECT_EQ(RunClusterPlan(w, plan, workers, 2, KernelKind::kSoA,
                               /*with_crashes=*/false, kind),
                reference)
          << IndexKindName(kind) << " digest diverged at " << workers
          << " shard(s) (seed 0x" << std::hex << seed << ")";
    }
  }
}

TEST_P(IndexDifferentialTest, LaneIsaPathsProduceIdenticalDigests) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t n_groups = static_cast<size_t>(rng.UniformInt(3, 6));
  const size_t group_size = static_cast<size_t>(rng.UniformInt(1, 3));
  const size_t horizon = static_cast<size_t>(rng.UniformInt(40, 90));
  const World w = MakeFuzzWorld(&rng, n_groups, group_size, horizon);
  const FuzzPlan plan = MakeFuzzPlan(&rng, n_groups, horizon);

  SetLaneIsaForTesting("scalar");
  const uint64_t reference =
      RunEnginePlan(w, plan, 2, KernelKind::kSoA, /*parallel_verify=*/false,
                    IndexKind::kPackedStr);
  // "sse2" and "avx2" resolve to whatever the hardware can honor (each
  // falls back down), so on any machine at least one wider path than the
  // scalar reference is exercised when the build has SSE2.
  for (const char* isa :
       {"sse2", "avx2", static_cast<const char*>(nullptr)}) {
    SetLaneIsaForTesting(isa);
    EXPECT_EQ(RunEnginePlan(w, plan, 2, KernelKind::kSoA,
                            /*parallel_verify=*/false, IndexKind::kPackedStr),
              reference)
        << "lane ISA '" << (isa ? isa : "auto")
        << "' (resolved: " << LaneIsaName() << ") digest diverged (seed 0x"
        << std::hex << seed << ")";
  }
  SetLaneIsaForTesting(nullptr);  // restore auto-detect for other tests
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexDifferentialTest,
                         testing::ValuesIn(DiffSeeds()), fuzz::SeedName);

}  // namespace
}  // namespace mpn
